// E10 — Extensions beyond the paper's core protocol, both anchored in its
// text: (a) garbage collection of stable storage ("logging progress ...
// allows output commit and garbage collection", §2), and (b) reliable
// delivery by sender-based retransmission ("they can be retrieved from the
// senders' volatile logs", §2 fn. 3).
//
// Expected shapes: (a) with GC on, the retained log/checkpoint footprint is
// bounded by the checkpoint cadence instead of growing with the run; K
// barely matters because stability — not release — drives collection.
// (b) with retransmission on, a pipeline completes every injected item
// despite crashes (vs. several percent in-transit loss without), at the
// cost of ack traffic and a few duplicate sends.
#include <iostream>
#include <set>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/failure_injector.h"
#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

namespace {

void gc_table(BenchJson& j) {
  Table t({"ckpt_ms", "gc", "max_log_retained", "records_reclaimed",
           "ckpts_retained_p99", "delivered"});
  for (SimTime ckpt_ms : {30, 100, 300}) {
    for (bool gc : {true, false}) {
      ProtocolConfig cfg;
      cfg.checkpoint_interval_us = ckpt_ms * 1000;
      cfg.garbage_collect = gc;
      ScenarioParams p;
      p.n = 6;
      p.seed = 5;
      p.protocol = cfg;
      p.injections = 200;
      p.load_end_us = 1'500'000;
      p.failures = 2;
      p.fail_to_us = 1'200'000;
      p.extra_run_us = 1'500'000;
      ScenarioResult r = run_scenario(p);
      // Without GC the retained size equals the full log; report the final
      // total via delivered as the comparison point.
      double max_retained = gc ? r.hist("storage.log_retained").max() : -1;
      t.row()
          .cell(static_cast<int64_t>(ckpt_ms))
          .cell(gc ? "on" : "off")
          .cell(gc ? format_double(max_retained, 0) : "= all delivered")
          .cell(r.counter("gc.records_reclaimed"))
          .cell(gc ? format_double(
                         r.hist("storage.checkpoints_retained").p99(), 0)
                   : "unbounded")
          .cell(r.counter("msgs.delivered"));
    }
  }
  t.print(std::cout, "stable-storage footprint (GC, Theorem-2 pivot rule)");
  j.table("stable-storage footprint (GC, Theorem-2 pivot rule)", t);
}

void reliability_table(BenchJson& j) {
  Table t({"restart_ms", "reliable", "items_done", "retransmits",
           "duplicates", "rollbacks"});
  constexpr int kItems = 120;
  for (SimTime restart_ms : {20, 80}) {
    for (bool reliable : {false, true}) {
      ClusterConfig cfg;
      cfg.n = 5;
      cfg.seed = 6;
      cfg.protocol.reliable_delivery = reliable;
      cfg.protocol.restart_delay_us = restart_ms * 1000;
      cfg.enable_oracle = false;
      Cluster cluster(cfg, make_pipeline_app({.output_every = 1}));
      cluster.start();
      inject_pipeline_load(cluster, kItems, 1'000, 400'000);
      apply_failure_plan(cluster,
                         FailurePlan::random(Rng(6).fork("e10"), cfg.n, 3,
                                             50'000, 380'000));
      cluster.run_for(2'000'000);
      cluster.drain();
      std::set<int64_t> done;
      for (const auto& o : cluster.outputs()) done.insert(o.payload.b);
      t.row()
          .cell(static_cast<int64_t>(restart_ms))
          .cell(reliable ? "yes" : "no")
          .cell(static_cast<int64_t>(done.size()))
          .cell(cluster.stats().counter("msgs.retransmitted"))
          .cell(cluster.stats().counter("msgs.duplicate"))
          .cell(cluster.stats().counter("rollback.count"));
    }
  }
  t.print(std::cout,
          "in-transit loss vs sender-based retransmission (120 items)");
  j.table("in-transit loss vs sender-based retransmission", t);
}

}  // namespace

int main() {
  std::cout << "E10: extensions — garbage collection & reliable delivery\n\n";
  BenchJson j("e10_extensions");
  gc_table(j);
  reliability_table(j);
  std::cout << "Reading: GC keeps the retained log proportional to the "
               "checkpoint cadence (the Theorem-2 pivot can never be "
               "orphaned, so older state is dead); retransmission converts "
               "crash-window losses into duplicates that receivers dedup, "
               "completing every item.\n";
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  return 0;
}
