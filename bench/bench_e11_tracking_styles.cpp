// E11 — Transitive vs direct dependency tracking (paper §5). The paper
// summarizes the related-work tradeoff in two sentences: direct tracking
// "piggybacks only the sender's current state interval index, and so is in
// general more scalable. The tradeoff is that, at the time of output commit
// and recovery, the system needs to assemble direct dependencies to obtain
// transitive dependencies." Both engines run the identical workload and
// failure plan here. Expected shape: direct tracking wins piggyback bytes
// (constant, independent of N), but pays assembly round-trips per output
// commit (higher commit latency, nonzero query/reply traffic) and cascading
// rollback announcements on recovery; the K-optimistic engine inverts every
// one of those columns.
#include <iostream>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/engine_registry.h"
#include "core/failure_injector.h"
#include "core/metrics.h"

using namespace koptlog;

namespace {

struct Row {
  double piggyback = 0;
  double commit_mean = 0, commit_p99 = 0;
  int64_t queries = 0, replies = 0;
  int64_t announcements = 0, rollbacks = 0;
  int64_t outputs = 0;
};

Row run_engine(bool direct, int n, int failures, uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.enable_oracle = false;
  std::unique_ptr<Cluster> cluster_ptr = make_cluster_with_engine(
      direct ? "direct" : "kopt", cfg, make_client_server_app({}));
  Cluster& cluster = *cluster_ptr;
  cluster.start();
  inject_client_requests(cluster, 40 * n, 1'000, 900'000, seed * 13 + 1);
  if (failures > 0) {
    apply_failure_plan(cluster,
                       FailurePlan::random(Rng(seed).fork("e11"), n, failures,
                                           100'000, 800'000));
  }
  cluster.run_for(2'000'000);
  cluster.drain();
  Row r;
  r.piggyback = cluster.stats().histogram("msg.piggyback_bytes").mean();
  r.commit_mean = cluster.stats().histogram("output.commit_latency_us").mean();
  r.commit_p99 = cluster.stats().histogram("output.commit_latency_us").p99();
  r.queries = cluster.stats().counter("ddt.queries");
  r.replies = cluster.stats().counter("ddt.replies");
  r.announcements = cluster.stats().counter("announce.sent");
  r.rollbacks = cluster.stats().counter("rollback.count");
  r.outputs = static_cast<int64_t>(cluster.outputs().size());
  return r;
}

}  // namespace

int main() {
  std::cout << "E11: transitive (K-optimistic, Thm 2) vs direct dependency "
               "tracking (§5)\n(client-server workload, constant per-process "
               "load)\n\n";
  Table t({"N", "failures", "engine", "piggyback_B", "commit_mean_us",
           "commit_p99_us", "dep_queries", "announcements", "rollbacks",
           "outputs"});
  for (int n : {4, 8, 16}) {
    for (int failures : {0, 3}) {
      for (bool direct : {false, true}) {
        Row r = run_engine(direct, n, failures, 7);
        t.row()
            .cell(static_cast<int64_t>(n))
            .cell(static_cast<int64_t>(failures))
            .cell(direct ? "direct (JZ-style)" : "transitive (K-opt)")
            .cell(r.piggyback, 1)
            .cell(r.commit_mean, 0)
            .cell(r.commit_p99, 0)
            .cell(r.queries)
            .cell(r.announcements)
            .cell(r.rollbacks)
            .cell(r.outputs);
      }
    }
  }
  t.print(std::cout, "dependency-tracking styles, one table");
  BenchJson j("e11_tracking_styles");
  j.param("seeds", 7).param("workload", "clientserver");
  j.table("dependency-tracking styles", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: direct tracking's piggyback is constant in N; the "
               "bill arrives at output commit (assembly queries, higher "
               "latency) and at recovery (every rollback announced). The "
               "paper's Theorem-2 vectors pay a few piggybacked bytes to "
               "make both costs local.\n";
  return 0;
}
