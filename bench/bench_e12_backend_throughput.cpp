// E12 — execution-backend throughput: the same uniform workload on the
// deterministic single-thread Simulator backend and on the real-thread
// ThreadedScheduler backend at 1/2/4 shards, across the K dial. The
// numerator is scheduler events actually executed, the denominator
// wall-clock time; both backends record protocol events and the merged
// trace is audited (Theorems 1-4), so every row's throughput is for a run
// whose correctness was re-verified, not assumed.
//
// Reading the numbers: the threaded backend paces its timers against the
// scaled virtual clock (time_scale real us per virtual us), so its wall
// time is max(pacing, work). At the compressed scale used here the load
// window shrinks to a few real milliseconds and the workers are
// work-bound — shard count and K, not pacing, set the rate. The sim
// backend has no pacing at all: it is pure event-loop work.
#include <chrono>
#include <iostream>
#include <string>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/metrics.h"
#include "exec/threaded_cluster.h"
#include "obs/audit.h"
#include "obs/trace_io.h"

using namespace koptlog;

namespace {

constexpr int kN = 8;
constexpr int kInjections = 400;
constexpr int kTtl = 6;
constexpr SimTime kLoadEnd = 400'000;
constexpr double kTimeScale = 0.01;  // 100x faster than nominal

struct Row {
  uint64_t events = 0;
  double wall_ms = 0.0;
  size_t outputs = 0;
  std::string verdict;

  double kevents_per_s() const {
    return wall_ms > 0.0 ? static_cast<double>(events) / wall_ms : 0.0;
  }
};

ClusterConfig base_config(int k) {
  ClusterConfig cfg;
  cfg.n = kN;
  cfg.seed = 12;
  cfg.protocol.k = k;
  cfg.record_events = true;  // both backends pay for recording: fair rows
  cfg.enable_oracle = false;
  return cfg;
}

std::string audit_verdict(const Recording& rec, int n) {
  Trace trace;
  trace.n = n;
  trace.events = rec.merged();
  AuditReport rep = audit_trace(trace);
  return rep.ok() ? "audit ok" : "AUDIT FAIL";
}

template <typename HostT, typename EventsFn>
Row timed_run(HostT& cluster, EventsFn events_executed) {
  auto t0 = std::chrono::steady_clock::now();
  cluster.start();
  inject_uniform_load(cluster, kInjections, 1'000, kLoadEnd, kTtl,
                      cluster.config().seed + 1);
  cluster.run_for(kLoadEnd);
  cluster.drain();
  cluster.shutdown();
  auto t1 = std::chrono::steady_clock::now();
  Row row;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events = events_executed();
  row.outputs = cluster.outputs().size();
  row.verdict = audit_verdict(*cluster.recording(), cluster.size());
  return row;
}

Row run_sim(int k) {
  Cluster cluster(base_config(k), make_uniform_app({}));
  return timed_run(cluster,
                   [&] { return static_cast<uint64_t>(cluster.sim().events_executed()); });
}

Row run_threaded(int k, int shards) {
  ThreadedOptions opt;
  opt.shards = shards;
  opt.time_scale = kTimeScale;
  ThreadedCluster cluster(base_config(k), opt, make_uniform_app({}));
  return timed_run(cluster, [&] { return cluster.events_executed(); });
}

std::string k_name(int k) { return k >= kN ? "N" : std::to_string(k); }

}  // namespace

int main() {
  std::cout << "E12: backend throughput (n=" << kN << ", " << kInjections
            << " injections, ttl=" << kTtl << ", threaded time_scale="
            << kTimeScale << ")\n\n";

  Table t({"backend", "shards", "K", "events", "wall_ms", "kev_per_s",
           "outputs", "verdict"});
  for (int k : {0, 2, kN}) {
    Row sim = run_sim(k);
    t.row()
        .cell("sim")
        .cell("-")
        .cell(k_name(k))
        .cell(static_cast<int64_t>(sim.events))
        .cell(sim.wall_ms, 1)
        .cell(sim.kevents_per_s(), 1)
        .cell(static_cast<int64_t>(sim.outputs))
        .cell(sim.verdict);
    for (int shards : {1, 2, 4}) {
      Row thr = run_threaded(k, shards);
      t.row()
          .cell("threaded")
          .cell(shards)
          .cell(k_name(k))
          .cell(static_cast<int64_t>(thr.events))
          .cell(thr.wall_ms, 1)
          .cell(thr.kevents_per_s(), 1)
          .cell(static_cast<int64_t>(thr.outputs))
          .cell(thr.verdict);
    }
  }
  t.print(std::cout, "events/sec by backend, shard count and K");
  BenchJson j("e12_backend_throughput");
  j.param("n", static_cast<int64_t>(kN))
      .param("injections", static_cast<int64_t>(kInjections))
      .param("ttl", static_cast<int64_t>(kTtl))
      .param("load_end_us", static_cast<int64_t>(kLoadEnd))
      .param("time_scale", kTimeScale);
  j.table("events/sec by backend, shard count and K", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: the sim backend is a zero-pacing upper bound for "
               "one core; the threaded rows show how shard count spreads "
               "the same protocol work across workers (cross-shard sends "
               "cost a mailbox hop, so speedup is sublinear), with every "
               "row's merged trace re-audited against Theorems 1-4.\n";
  return 0;
}
