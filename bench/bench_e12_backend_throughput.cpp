// E12 — execution-backend throughput: the same uniform workload on the
// deterministic single-thread Simulator backend and on the real-thread
// ThreadedScheduler backend at 1/2/4 shards, across the K dial. The
// numerator is scheduler events actually executed, the denominator
// wall-clock time; both backends record protocol events and the merged
// trace is audited (Theorems 1-4), so every row's throughput is for a run
// whose correctness was re-verified, not assumed.
//
// Reading the numbers: the threaded backend paces its timers against the
// scaled virtual clock (time_scale real us per virtual us), so its wall
// time is max(pacing, work). At the compressed scale used here the load
// window shrinks to a few real milliseconds and the workers are
// work-bound — shard count and K, not pacing, set the rate. The sim
// backend has no pacing at all: it is pure event-loop work.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/metrics.h"
#include "exec/threaded_cluster.h"
#include "obs/audit.h"
#include "obs/health/health.h"
#include "obs/health/health_sampler.h"
#include "obs/trace_io.h"

using namespace koptlog;

namespace {

constexpr int kN = 8;
constexpr int kInjections = 400;
constexpr int kTtl = 6;
constexpr SimTime kLoadEnd = 400'000;
constexpr double kTimeScale = 0.01;  // 100x faster than nominal

// Mailbox shard-scaling sweep. The cluster rows above are handler-bound —
// a protocol event costs microseconds of engine work, a mailbox hop tens
// of nanoseconds — so end-to-end rates cannot separate the two spines.
// The sweep measures the spine itself in the regime the batching targets:
// a closed-loop submit storm pumped straight into the shard schedulers
// (kStormProducers driver threads, batches of kStormBatch, a bounded
// in-flight window per shard so the run is steady-state hand-off rather
// than flood-then-chew) while a live protocol load runs on the same
// cluster. Events/sec counts scheduler events executed over the storm
// window; the merged protocol trace is re-audited afterwards, so every
// row doubles as a check that the protocol stayed correct while its
// spine was saturated.
constexpr int kSweepN = 16;
constexpr int kSweepInjections = 400;
constexpr int kSweepTtl = 8;
constexpr SimTime kSweepLoadEnd = 100'000;
// Nominal speed on purpose: the storm lasts real seconds, and a compressed
// clock would stretch that into *hours* of virtual time — every periodic
// protocol timer would fire millions of catch-up rounds and drown the
// measurement in gossip.
constexpr double kSweepTimeScale = 1.0;
constexpr int kStormProducers = 4;
constexpr int kStormBatch = 128;
constexpr int kStormBatches = 2'000;  // per producer
constexpr uint64_t kStormWindow = 512;
constexpr int kSweepReps = 4;  // best-of (one shared core: noisy OS slices)

struct Row {
  uint64_t events = 0;
  double wall_ms = 0.0;
  size_t outputs = 0;
  int64_t wakeups = 0;
  int64_t drains = 0;
  int64_t max_batch = 0;
  int64_t stalls = 0;
  std::string verdict;

  double kevents_per_s() const {
    return wall_ms > 0.0 ? static_cast<double>(events) / wall_ms : 0.0;
  }
};

ClusterConfig base_config(int k) {
  ClusterConfig cfg;
  cfg.n = kN;
  cfg.seed = 12;
  cfg.protocol.k = k;
  cfg.record_events = true;  // both backends pay for recording: fair rows
  cfg.enable_oracle = false;
  return cfg;
}

std::string audit_verdict(const Recording& rec, int n) {
  Trace trace;
  trace.n = n;
  trace.events = rec.merged();
  AuditReport rep = audit_trace(trace);
  return rep.ok() ? "audit ok" : "AUDIT FAIL";
}

template <typename HostT, typename EventsFn>
Row timed_run(HostT& cluster, EventsFn events_executed) {
  auto t0 = std::chrono::steady_clock::now();
  cluster.start();
  inject_uniform_load(cluster, kInjections, 1'000, kLoadEnd, kTtl,
                      cluster.config().seed + 1);
  cluster.run_for(kLoadEnd);
  cluster.drain();
  cluster.shutdown();
  auto t1 = std::chrono::steady_clock::now();
  Row row;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events = events_executed();
  row.outputs = cluster.outputs().size();
  row.verdict = audit_verdict(*cluster.recording(), cluster.size());
  return row;
}

Row run_sim(int k) {
  Cluster cluster(base_config(k), make_uniform_app({}));
  return timed_run(cluster,
                   [&] { return static_cast<uint64_t>(cluster.sim().events_executed()); });
}

Row run_threaded(int k, int shards) {
  ThreadedOptions opt;
  opt.shards = shards;
  opt.time_scale = kTimeScale;
  ThreadedCluster cluster(base_config(k), opt, make_uniform_app({}));
  return timed_run(cluster, [&] { return cluster.events_executed(); });
}

std::string k_name(int k) { return k >= kN ? "N" : std::to_string(k); }

// --- Mailbox shard-scaling sweep -------------------------------------------

// With `health_out` non-empty the run carries live telemetry: every shard
// instrumented, a 5ms sampler tick, and the sidecar written while the storm
// is in flight — the exact configuration whose overhead the
// telemetry_overhead_pct headline metric reports.
constexpr int64_t kHealthIntervalUs = 5'000;

Row run_sweep_once(int k, int shards, MailboxPolicy policy,
                   const std::string& health_out = "") {
  ClusterConfig cfg;
  cfg.n = kSweepN;
  cfg.seed = 12;
  cfg.protocol.k = k;
  cfg.record_events = true;
  cfg.enable_oracle = false;
  ThreadedOptions opt;
  opt.shards = shards;
  opt.time_scale = kSweepTimeScale;
  opt.mailbox = policy;
  HealthRegistry health;  // must outlive the cluster (cells + probes)
  std::unique_ptr<HealthTimeseriesSink> health_sink;
  if (!health_out.empty()) opt.health = &health;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  if (!health_out.empty()) {
    health_sink = std::make_unique<HealthTimeseriesSink>(
        health,
        HealthSampler::Options{.interval_us = kHealthIntervalUs,
                               .history = 4096},
        health_out);
    if (!health_sink->ok()) {
      Row row;
      row.verdict = "HEALTH SIDECAR OPEN FAILED";
      return row;
    }
  }
  cluster.start();
  // Run the protocol load to completion first, then storm the spine while
  // the cluster is live (periodic gossip keeps ticking). Interleaving the
  // two phases would let microsecond-scale protocol handlers evict the
  // worker's cache between drains and measure handler cost, not spine cost.
  inject_uniform_load(cluster, kSweepInjections, 1'000, kSweepLoadEnd,
                      kSweepTtl, cfg.seed + 1);
  cluster.run_for(kSweepLoadEnd + 10'000);

  // Closed-loop storm: each producer submits batches of no-op events
  // round-robin across shards, holding per-shard in-flight below
  // kStormWindow so the worker keeps draining hot, recycled nodes instead
  // of chewing a cold backlog after the fact. The same window is enforced
  // for both policies (bench-side, not via --mailbox-capacity, which only
  // the batched spine honors), so the offered load is identical.
  const int nshards = cluster.shards();
  // Per-shard storm accounting: each storm event bumps its shard's counter
  // when it runs, so the in-flight window tracks storm work only — the
  // scheduler's own executed() also counts concurrent protocol events,
  // which would silently widen the window and turn the steady-state
  // hand-off into a flood.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> ran, submitted;
  for (int s = 0; s < nshards; ++s) {
    ran.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    submitted.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  const uint64_t base = cluster.events_executed();
  const uint64_t storm_total = static_cast<uint64_t>(kStormProducers) *
                               kStormBatches * kStormBatch;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (int p = 0; p < kStormProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int b = 0; b < kStormBatches; ++b) {
        const int s = (p + b) % nshards;
        ThreadedScheduler& target = cluster.shard_scheduler(s);
        std::atomic<uint64_t>& shard_ran = *ran[static_cast<size_t>(s)];
        std::vector<Scheduler::TimedAction> batch;
        batch.reserve(kStormBatch);
        for (int i = 0; i < kStormBatch; ++i)
          batch.push_back({0, [&shard_ran] {
                             shard_ran.fetch_add(1, std::memory_order_relaxed);
                           }});
        std::atomic<uint64_t>& sub = *submitted[static_cast<size_t>(s)];
        sub.fetch_add(kStormBatch, std::memory_order_relaxed);
        while (sub.load(std::memory_order_relaxed) -
                   shard_ran.load(std::memory_order_relaxed) >
               kStormWindow)
          std::this_thread::yield();
        target.schedule_batch(std::move(batch));
      }
    });
  }
  for (auto& t : producers) t.join();
  uint64_t done = 0;
  while (done < storm_total) {
    done = 0;
    for (int s = 0; s < nshards; ++s)
      done += ran[static_cast<size_t>(s)]->load(std::memory_order_relaxed);
    std::this_thread::yield();
  }
  auto t1 = std::chrono::steady_clock::now();
  // Throughput numerator: everything the shard workers executed over the
  // storm window — the storm itself plus concurrent protocol events.
  done = cluster.events_executed() - base;

  cluster.drain();
  cluster.shutdown();
  // Stop the sampler before the cluster is torn down: its probes read live
  // scheduler state.
  if (health_sink != nullptr) health_sink->close();
  Row row;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events = done;
  row.outputs = cluster.outputs().size();
  row.wakeups = cluster.stats().counter("mailbox.wakeups");
  row.drains = cluster.stats().counter("mailbox.drains");
  row.max_batch = cluster.stats().counter("mailbox.max_drain_batch");
  row.stalls = cluster.stats().counter("mailbox.producer_stalls");
  row.verdict = audit_verdict(*cluster.recording(), cluster.size());
  return row;
}

// Best of kSweepReps: every rep's trace must audit green, the throughput
// reported is the fastest rep (the box has one core, so a rep can lose a
// third of its rate to unrelated OS scheduling).
Row run_sweep(int k, int shards, MailboxPolicy policy,
              const std::string& health_out = "") {
  Row best;
  for (int rep = 0; rep < kSweepReps; ++rep) {
    Row r = run_sweep_once(k, shards, policy, health_out);
    if (r.verdict != "audit ok") return r;
    if (best.events == 0 || r.kevents_per_s() > best.kevents_per_s())
      best = r;
  }
  return best;
}

const char* policy_name(MailboxPolicy p) {
  return p == MailboxPolicy::kBatched ? "batched" : "mutex";
}

}  // namespace

int main() {
  std::cout << "E12: backend throughput (n=" << kN << ", " << kInjections
            << " injections, ttl=" << kTtl << ", threaded time_scale="
            << kTimeScale << ")\n\n";

  Table t({"backend", "shards", "K", "events", "wall_ms", "kev_per_s",
           "outputs", "verdict"});
  for (int k : {0, 2, kN}) {
    Row sim = run_sim(k);
    t.row()
        .cell("sim")
        .cell("-")
        .cell(k_name(k))
        .cell(static_cast<int64_t>(sim.events))
        .cell(sim.wall_ms, 1)
        .cell(sim.kevents_per_s(), 1)
        .cell(static_cast<int64_t>(sim.outputs))
        .cell(sim.verdict);
    for (int shards : {1, 2, 4}) {
      Row thr = run_threaded(k, shards);
      t.row()
          .cell("threaded")
          .cell(shards)
          .cell(k_name(k))
          .cell(static_cast<int64_t>(thr.events))
          .cell(thr.wall_ms, 1)
          .cell(thr.kevents_per_s(), 1)
          .cell(static_cast<int64_t>(thr.outputs))
          .cell(thr.verdict);
    }
  }
  t.print(std::cout, "events/sec by backend, shard count and K");

  // Shard-scaling sweep: the same closed-loop submit storm through the
  // batched two-level mailbox and through the pre-change mutex mailbox
  // (kept as a runtime-selectable baseline), 1..8 shards, K in {2, N}.
  // The wakeups / drains / max_batch columns are the mechanism: the
  // batched spine coalesces a whole batch into one CAS splice and at most
  // one futex wake, the mutex spine pays a lock round-trip and a notify
  // per submitted event.
  std::cout << "\n";
  Table sweep({"mailbox", "shards", "K", "events", "wall_ms", "kev_per_s",
               "wakeups", "drains", "max_batch", "stalls", "verdict"});
  double batched_at_4 = 0.0;
  double mutex_at_4 = 0.0;
  for (int k : {2, kSweepN}) {
    for (int shards : {1, 2, 4, 8}) {
      for (MailboxPolicy policy :
           {MailboxPolicy::kMutex, MailboxPolicy::kBatched}) {
        Row r = run_sweep(k, shards, policy);
        sweep.row()
            .cell(policy_name(policy))
            .cell(shards)
            .cell(k >= kSweepN ? "N" : std::to_string(k))
            .cell(static_cast<int64_t>(r.events))
            .cell(r.wall_ms, 1)
            .cell(r.kevents_per_s(), 1)
            .cell(r.wakeups)
            .cell(r.drains)
            .cell(r.max_batch)
            .cell(r.stalls)
            .cell(r.verdict);
        if (shards == 4 && k == 2) {
          (policy == MailboxPolicy::kBatched ? batched_at_4 : mutex_at_4) =
              r.kevents_per_s();
        }
      }
    }
  }
  // Telemetry overhead probe: the batched 4-shard K=2 storm with every
  // shard's health domain attached and a live 5ms sampler streaming the
  // HEALTH_e12_storm.jsonl sidecar mid-storm, A/B-interleaved against a
  // bare rerun of the same configuration (one core: throughput swings
  // ~20% between sweeps minutes apart, so the pair must share its noise
  // environment). Best-of on each side; the delta is the real cost of the
  // telemetry layer in the hottest configuration we have (budget: < 5%).
  constexpr int kOverheadReps = 6;
  Row base_row, health_row;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    Row b = run_sweep_once(2, 4, MailboxPolicy::kBatched);
    if (b.verdict == "audit ok" &&
        (base_row.events == 0 || b.kevents_per_s() > base_row.kevents_per_s()))
      base_row = b;
    Row h = run_sweep_once(2, 4, MailboxPolicy::kBatched,
                           "HEALTH_e12_storm.jsonl");
    if (h.verdict == "audit ok" &&
        (health_row.events == 0 ||
         h.kevents_per_s() > health_row.kevents_per_s()))
      health_row = h;
  }
  for (const auto& [label, r] :
       {std::pair<const char*, Row&>{"batched(a/b)", base_row},
        std::pair<const char*, Row&>{"batched+health", health_row}}) {
    sweep.row()
        .cell(label)
        .cell(4)
        .cell("2")
        .cell(static_cast<int64_t>(r.events))
        .cell(r.wall_ms, 1)
        .cell(r.kevents_per_s(), 1)
        .cell(r.wakeups)
        .cell(r.drains)
        .cell(r.max_batch)
        .cell(r.stalls)
        .cell(r.verdict);
  }
  sweep.print(std::cout,
              "mailbox storm sweep (" + std::to_string(kStormProducers) +
                  " producers x " + std::to_string(kStormBatches) +
                  " batches of " + std::to_string(kStormBatch) +
                  ", window " + std::to_string(kStormWindow) +
                  ", live n=" + std::to_string(kSweepN) +
                  " cluster, best of " + std::to_string(kSweepReps) + ")");
  double speedup = mutex_at_4 > 0.0 ? batched_at_4 / mutex_at_4 : 0.0;
  std::cout << "batched vs mutex at 4 shards, K=2: " << batched_at_4
            << " vs " << mutex_at_4 << " kev/s  (speedup x" << speedup
            << ")\n";
  double base_at_4 = base_row.kevents_per_s();
  double health_at_4 = health_row.kevents_per_s();
  double overhead_pct =
      base_at_4 > 0.0 ? 100.0 * (base_at_4 - health_at_4) / base_at_4 : 0.0;
  std::cout << "telemetry overhead at 4 shards, K=2 (interleaved best of "
            << kOverheadReps << "): " << base_at_4 << " -> " << health_at_4
            << " kev/s  (" << overhead_pct
            << "% — budget < 5%; sidecar HEALTH_e12_storm.jsonl)\n";

  BenchJson j("e12_backend_throughput");
  j.param("n", static_cast<int64_t>(kN))
      .param("injections", static_cast<int64_t>(kInjections))
      .param("ttl", static_cast<int64_t>(kTtl))
      .param("load_end_us", static_cast<int64_t>(kLoadEnd))
      .param("time_scale", kTimeScale)
      .param("sweep_n", static_cast<int64_t>(kSweepN))
      .param("sweep_injections", static_cast<int64_t>(kSweepInjections))
      .param("sweep_time_scale", kSweepTimeScale)
      .param("storm_producers", static_cast<int64_t>(kStormProducers))
      .param("storm_batch", static_cast<int64_t>(kStormBatch))
      .param("storm_batches", static_cast<int64_t>(kStormBatches))
      .param("storm_window", static_cast<int64_t>(kStormWindow))
      .param("sweep_reps", static_cast<int64_t>(kSweepReps))
      .param("health_interval_us", static_cast<int64_t>(kHealthIntervalUs))
      .param("overhead_reps", static_cast<int64_t>(kOverheadReps));
  j.metric("batched_kev_per_s_4shard", batched_at_4);
  j.metric("mutex_kev_per_s_4shard", mutex_at_4);
  j.metric("batched_over_mutex_4shard", speedup);
  j.metric("base_kev_per_s_4shard", base_at_4);
  j.metric("health_kev_per_s_4shard", health_at_4);
  j.metric("telemetry_overhead_pct", overhead_pct);
  j.table("events/sec by backend, shard count and K", t);
  j.table("mailbox storm sweep", sweep);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: the sim backend is a zero-pacing upper bound for "
               "one core; the threaded rows show how shard count spreads "
               "the same protocol work across workers (cross-shard sends "
               "cost a mailbox hop, so speedup is sublinear), with every "
               "row's merged trace re-audited against Theorems 1-4.\n";
  return 0;
}
