// E13 — durable storage: group-commit window × K × backend. The same
// multi-failure uniform workload runs on the cost-model backend (flush
// latency simulated, nothing on disk) and on the segmented on-disk WAL
// (real writes, real fsyncs, group commit batching appends into one fsync
// per window, in-sim restarts recovering from the analysis scan). The
// window dial is applied to both: it is the disk backend's
// --group-commit-us and the model's async_flush_base_us, so a row pair
// compares "simulated flush that takes W us" against "real fsync batched
// over a W us window".
//
// Columns: appends/sec is records flushed per wall second (the disk rows
// are fsync-bound — this is the durability throughput, not event-loop
// speed); fsync/msg is fsyncs per flushed record (group commit's whole
// point: << 1 under load); commit_mean/p99 come from the engine's
// output-commit latency histogram in *virtual* time, which responds to
// the window (a longer window delays the stability watermark, which
// delays output release — §2 "Output commit"). Every row's trace is
// re-audited (Theorems 1-4), so each throughput number is for a run whose
// correctness was verified, not assumed — a row that under-recovered
// after its mid-run failures would say AUDIT FAIL.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/metrics.h"
#include "obs/audit.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

namespace {

constexpr int kN = 6;
constexpr int kInjections = 300;
constexpr int kFailures = 2;
constexpr SimTime kLoadEnd = 600'000;

struct Row {
  int64_t flushed = 0;
  int64_t fsyncs = 0;
  int64_t recoveries = 0;
  double wall_ms = 0.0;
  double commit_mean_us = 0.0;
  double commit_p99_us = 0.0;
  size_t outputs = 0;
  std::string verdict;

  double appends_per_s() const {
    return wall_ms > 0.0 ? static_cast<double>(flushed) * 1e3 / wall_ms : 0.0;
  }
  double fsync_per_msg() const {
    return flushed > 0 ? static_cast<double>(fsyncs) /
                             static_cast<double>(flushed)
                       : 0.0;
  }
};

Row run_row(const std::string& backend, SimTime window_us, int k,
            uint64_t seed) {
  namespace fs = std::filesystem;
  ScenarioParams p;
  p.n = kN;
  p.seed = seed;
  p.protocol.k = k;
  p.injections = kInjections;
  p.load_end_us = kLoadEnd;
  p.failures = kFailures;
  p.fail_from_us = kLoadEnd / 8;
  p.fail_to_us = kLoadEnd;
  p.record_events = true;
  // One dial, both meanings: simulated flush latency vs. real batch window.
  p.protocol.storage.async_flush_base_us = window_us;
  p.protocol.storage_backend.group_commit_us = window_us;
  p.protocol.storage_backend.backend = backend;

  fs::path dir;
  if (backend == "disk") {
    dir = fs::temp_directory_path() /
          ("koptlog_bench_e13_" + std::to_string(window_us) + "_" +
           std::to_string(k));
    fs::remove_all(dir);
    fs::create_directories(dir);
    p.protocol.storage_backend.dir = dir.string();
  }

  auto t0 = std::chrono::steady_clock::now();
  ScenarioResult r = run_scenario(p);
  auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.flushed = r.counter("storage.records_flushed");
  row.fsyncs = r.counter("storage.fsyncs");
  row.recoveries = r.counter("storage.recoveries");
  row.outputs = r.outputs;
  row.commit_mean_us = r.hist("output.commit_latency_us").mean();
  row.commit_p99_us = r.hist("output.commit_latency_us").p99();
  AuditReport rep = audit_trace(r.trace);
  row.verdict = rep.ok() ? "audit ok" : "AUDIT FAIL";

  if (!dir.empty()) fs::remove_all(dir);
  return row;
}

std::string k_name(int k) { return k >= kN ? "N" : std::to_string(k); }

}  // namespace

int main() {
  std::cout << "E13: durable storage — group-commit window x K x backend (n="
            << kN << ", " << kInjections << " injections, " << kFailures
            << " failures)\n\n";

  Table t({"backend", "window_us", "K", "flushed", "fsyncs", "fsync_per_msg",
           "appends_per_s", "commit_mean_us", "commit_p99_us", "outputs",
           "recoveries", "verdict"});
  bool all_ok = true;
  for (SimTime window : {100, 300, 1000}) {
    for (int k : {0, 2, kN}) {
      for (const std::string& backend : {std::string("model"),
                                         std::string("disk")}) {
        Row r = run_row(backend, window, k, /*seed=*/13);
        all_ok = all_ok && r.verdict == "audit ok";
        t.row()
            .cell(backend)
            .cell(static_cast<int64_t>(window))
            .cell(k_name(k))
            .cell(r.flushed)
            .cell(r.fsyncs)
            .cell(r.fsync_per_msg(), 3)
            .cell(r.appends_per_s(), 0)
            .cell(r.commit_mean_us, 0)
            .cell(r.commit_p99_us, 0)
            .cell(static_cast<int64_t>(r.outputs))
            .cell(r.recoveries)
            .cell(r.verdict);
      }
    }
  }
  t.print(std::cout, "durable-storage sweep (every row's trace re-audited)");

  BenchJson j("e13_storage");
  j.param("n", kN)
      .param("injections", kInjections)
      .param("failures", kFailures)
      .param("load_end_us", static_cast<int64_t>(kLoadEnd));
  j.table("durable-storage sweep", t);
  std::string path = j.write_file();
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";

  std::cout << (all_ok ? "all rows audit ok\n" : "AUDIT FAILURES present\n");
  return all_ok ? 0 : 1;
}
