// E1 — Figure 1 walkthrough (paper §2-§3), printed as a narrative trace.
// The same script is asserted step-by-step in tests/figure1_test.cpp; this
// binary regenerates the figure's story so a reader can diff it against the
// paper: P4's dependency vector after m2, the failure of P1 at "X", r1's
// content, P3's rollback, P4's survival, the m6 delivery delay, m7's
// no-delay delivery at P5 (Corollary 1), and P4's output commit after the
// three logging-progress notifications.
#include <iostream>

#include "core/manual.h"
#include "core/metrics.h"

using namespace koptlog;

namespace {
void show(const char* what, const Process& p) {
  std::cout << "  " << what << ": P" << p.pid() << " at " << p.current().str()
            << "  tdv=" << p.tdv().str() << "\n";
}
}  // namespace

int main() {
  std::cout << "E1: Figure 1 walkthrough (6 processes)\n\n";
  ManualHarness h(6);
  std::vector<std::unique_ptr<Process>> p;
  for (ProcessId pid = 0; pid < 6; ++pid)
    p.push_back(h.make_process(pid, ProtocolConfig{}));
  p[0]->start(Entry{1, 2});
  p[1]->start(Entry{0, 1});
  p[2]->start(Entry{0, 1});
  p[3]->start(Entry{2, 5});
  p[4]->start(Entry{0, 1});
  p[5]->start(Entry{3, 8});
  h.tick(*p[1]);
  h.tick(*p[1]);
  h.tick(*p[2]);

  std::cout << "-- causal chain m0 -> m1 -> m2 --\n";
  AppPayload chain;
  chain.kind = ScriptedApp::kChain;
  chain.a = ScriptedApp::route({1, 3, 4});
  chain.b = 1;
  chain.c = 77;
  p[0]->handle_app_msg(h.env_msg(0, chain));
  AppMsg m0 = h.take_sent();
  std::cout << "  m0 sent from " << m0.born_of.str() << " to P1\n";
  p[1]->handle_app_msg(m0);
  AppMsg m1 = h.take_sent();
  std::cout << "  m1 sent from " << m1.born_of.str() << " to P3\n";
  p[3]->handle_app_msg(m1);
  AppMsg m2 = h.take_sent();
  std::cout << "  m2 sent from " << m2.born_of.str() << " to P4\n";
  p[4]->handle_app_msg(m2);
  show("after m2 (paper: {(1,3)_0,(0,4)_1,(2,6)_3,(0,2)_4})", *p[4]);
  std::cout << "  P4 buffered an output from (0,2)_4 ("
            << p[4]->output_buffer_size() << " pending)\n\n";

  std::cout << "-- P1 makes (0,4)_1 stable, executes (0,5)_1, fails at X --\n";
  p[1]->force_flush();
  AppPayload c2;
  c2.kind = ScriptedApp::kChain;
  c2.a = ScriptedApp::route({3});
  p[1]->handle_app_msg(h.env_msg(1, c2));
  AppMsg m3 = h.take_sent();
  p[3]->handle_app_msg(m3);
  h.tick(*p[3]);
  show("P3 now depends on (0,5)_1", *p[3]);
  p[1]->crash();
  p[1]->restart();
  Announcement r1 = h.announcements.back();
  std::cout << "  r1 = incarnation " << r1.ended.inc << " of P1 ended at "
            << r1.ended.str() << " (paper: (0,4)_1)\n";
  show("P1 recovered into incarnation 1", *p[1]);
  std::cout << "\n";

  std::cout << "-- r1 reaches P3: rollback --\n";
  p[3]->handle_announcement(r1);
  show("P3 rolled back (paper: to (2,6)_3, then redelivers)", *p[3]);
  std::cout << "  P3 rollbacks=" << p[3]->rollbacks()
            << ", announcements broadcast so far=" << h.announcements.size()
            << " (Theorem 1: non-failed rollback not announced)\n\n";

  std::cout << "-- m6 (new incarnation of P1) reaches P4 before r1 --\n";
  AppPayload c5;
  c5.kind = ScriptedApp::kChain;
  c5.a = ScriptedApp::route({1, 4});
  p[2]->handle_app_msg(h.env_msg(2, c5));
  AppMsg m5 = h.take_sent();
  p[1]->handle_app_msg(m5);
  AppMsg m6 = h.take_sent();
  p[4]->handle_app_msg(m6);
  std::cout << "  m6 from " << m6.born_of.str()
            << " held: P4 still holds (0,4)_1, receive buffer = "
            << p[4]->receive_buffer_size() << "\n";
  p[4]->handle_announcement(r1);
  std::cout << "  r1 certifies (0,4)_1 stable -> m6 delivered, buffer = "
            << p[4]->receive_buffer_size() << "\n";
  show("P4 survives (no rollback); entry overwritten by (1,6)_1", *p[4]);
  std::cout << "\n";

  std::cout << "-- m7 not delayed at P5 (Corollary 1) --\n";
  AppPayload c3;
  c3.kind = ScriptedApp::kChain;
  c3.a = ScriptedApp::route({5});
  p[1]->handle_app_msg(h.env_msg(1, c3));
  AppMsg m7 = h.take_sent();
  p[5]->handle_app_msg(m7);
  std::cout << "  m7 from " << m7.born_of.str()
            << " delivered at P5 with receive buffer = "
            << p[5]->receive_buffer_size()
            << " (Corollary 1: no existing entry, no wait)\n";
  show("P5", *p[5]);
  std::cout << "\n";

  std::cout << "-- P4's output commit (paper §2, output commit) --\n";
  p[4]->force_flush();
  std::cout << "  after P4's own flush: pending outputs = "
            << p[4]->output_buffer_size() << "\n";
  p[0]->force_flush();
  p[0]->broadcast_progress();
  p[4]->handle_log_progress(h.progresses.back());
  p[3]->force_flush();
  p[3]->broadcast_progress();
  p[4]->handle_log_progress(h.progresses.back());
  std::cout << "  after notifications from P0 and P3 (P1's came via r1): "
            << "pending outputs = " << p[4]->output_buffer_size()
            << ", committed = " << h.outputs.size() << "\n";
  if (!h.outputs.empty()) {
    std::cout << "  committed output tag=" << h.outputs[0].payload.b
              << " from " << h.outputs[0].born_of.str() << "\n";
  }
  BenchJson j("e1_figure1");
  j.param("n", 6);
  j.metric("outputs_committed", static_cast<int64_t>(h.outputs.size()));
  j.metric("announcements", static_cast<int64_t>(h.announcements.size()));
  j.metric("p3_rollbacks", p[3]->rollbacks());
  j.metric("p4_receive_buffered", static_cast<int64_t>(p[4]->receive_buffer_size()));
  if (!h.outputs.empty())
    j.metric("committed_tag", h.outputs[0].payload.b);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "\nE1 complete; see tests/figure1_test.cpp for the asserted "
               "version of every step.\n";
  return 0;
}
