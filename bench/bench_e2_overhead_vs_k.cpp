// E2 — Failure-free overhead across the K spectrum (paper §1, §4.1,
// Theorem 4). K is the maximum number of processes whose failures can
// revoke a released message; smaller K means messages wait longer in the
// send buffer for stability information, and pessimistic logging (the
// mechanism behind the K=0 guarantee) pays a synchronous write per
// delivery instead. Expected shape: send-buffer hold time and the fraction
// of delayed messages fall monotonically as K grows, reaching ~0 at K=N;
// pessimistic trades the hold time for blocking writes (slowest makespan
// when stable-storage writes are expensive).
#include <iostream>
#include <vector>

#include "baseline/pessimistic.h"
#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

namespace {

struct Agg {
  double hold_mean = 0, hold_p99 = 0, delayed_frac = 0, piggyback = 0;
  double risk = 0, sync_per_delivery = 0, makespan_ms = 0, recv_wait = 0;
};

Agg run_config(const ProtocolConfig& protocol, int n, int seeds) {
  Agg a;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
    ScenarioParams p;
    p.n = n;
    p.seed = seed;
    p.protocol = protocol;
    p.injections = 150;
    p.load_end_us = 800'000;
    ScenarioResult r = run_scenario(p);
    a.hold_mean += r.hist("send.hold_us").mean();
    a.hold_p99 += r.hist("send.hold_us").p99();
    double released = static_cast<double>(r.counter("msgs.released"));
    a.delayed_frac += released > 0
                          ? static_cast<double>(
                                r.counter("msgs.released_delayed")) / released
                          : 0;
    a.piggyback += r.hist("msg.piggyback_bytes").mean();
    a.risk += r.hist("send.risk").mean();
    double delivered = static_cast<double>(r.counter("msgs.delivered"));
    double sync = 0;
    // Sync writes accumulate in per-process storage; approximate from the
    // global announcement/journal counters plus pessimistic per-delivery
    // writes, which is what the counter below tracks directly.
    sync = static_cast<double>(r.counter("storage.sync_writes"));
    a.sync_per_delivery += delivered > 0 ? sync / delivered : 0;
    a.makespan_ms += static_cast<double>(r.drained_at) / 1000.0;
    a.recv_wait += r.hist("recv.wait_us").mean();
  }
  double d = seeds;
  a.hold_mean /= d;
  a.hold_p99 /= d;
  a.delayed_frac /= d;
  a.piggyback /= d;
  a.risk /= d;
  a.sync_per_delivery /= d;
  a.makespan_ms /= d;
  a.recv_wait /= d;
  return a;
}

}  // namespace

int main() {
  constexpr int kN = 8;
  constexpr int kSeeds = 3;
  std::cout << "E2: failure-free overhead vs degree of optimism K\n"
            << "(uniform workload, N=" << kN << ", " << kSeeds
            << " seeds averaged, no failures)\n\n";

  Table t({"K", "hold_mean_us", "hold_p99_us", "delayed_%", "piggyback_B",
           "risk_mean", "sync_wr/msg", "recv_wait_us", "makespan_ms"});

  std::vector<ProtocolConfig> configs;
  configs.push_back(pessimistic_baseline());
  for (int k : {0, 1, 2, 4, 6, kN}) configs.push_back(k_optimistic(k));

  for (const ProtocolConfig& cfg : configs) {
    Agg a = run_config(cfg, kN, kSeeds);
    t.row()
        .cell(k_label(cfg, kN))
        .cell(a.hold_mean, 1)
        .cell(a.hold_p99, 0)
        .cell(a.delayed_frac * 100.0, 1)
        .cell(a.piggyback, 1)
        .cell(a.risk, 2)
        .cell(a.sync_per_delivery, 2)
        .cell(a.recv_wait, 1)
        .cell(a.makespan_ms, 1);
  }
  t.print(std::cout, "failure-free overhead vs K");
  BenchJson j("e2_overhead_vs_k");
  j.param("n", kN).param("seeds", kSeeds).param("injections", 150)
      .param("load_end_us", static_cast<int64_t>(800'000));
  j.table("failure-free overhead vs K", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: hold time and delayed-fraction fall as K rises "
               "(0-optimistic holds every message until fully stable; "
               "N-optimistic releases immediately); 'pess' avoids holds by "
               "paying a synchronous write per delivery.\n";
  return 0;
}
