// E3 — Recovery efficiency across the K spectrum (paper §1 "fast and
// localized recovery", §4.1). Identical workload and failure plan at every
// K; what changes is how far a failure's damage spreads. Expected shape:
// rollback scope (processes rolled back, intervals undone, orphan messages
// discarded) shrinks monotonically as K falls, reaching zero at K=0 and for
// the pessimistic baseline; traditional optimistic (K=N) pays the largest
// rollback scope in exchange for its lower failure-free overhead (E2).
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/causal_graph.h"
#include "analysis/critical_path.h"
#include "baseline/pessimistic.h"
#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

int main() {
  constexpr int kN = 8;
  constexpr int kSeeds = 12;
  constexpr int kFailures = 3;
  std::cout << "E3: recovery efficiency vs degree of optimism K\n"
            << "(uniform workload, N=" << kN << ", " << kFailures
            << " failures per run, " << kSeeds << " seeds summed)\n\n";

  Table t({"K", "rollbacks", "undone_ivals", "orphan_msgs", "replayed",
           "outputs", "true_orphans", "lost_ivals", "cp_hops_max",
           "cp_settle_max_ms"});

  std::vector<ProtocolConfig> configs;
  configs.push_back(pessimistic_baseline());
  for (int k : {0, 1, 2, 4, kN}) configs.push_back(k_optimistic(k));

  for (const ProtocolConfig& cfg : configs) {
    int64_t rollbacks = 0, undone = 0, orphans = 0, replayed = 0;
    size_t outputs = 0, doomed = 0, lost = 0;
    int cp_hops_max = 0;
    SimTime cp_settle_max = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ScenarioParams p;
      p.n = kN;
      p.seed = seed;
      p.protocol = cfg;
      p.oracle = true;
      p.injections = 120;
      p.load_end_us = 700'000;
      p.failures = kFailures;
      p.fail_from_us = 100'000;
      p.fail_to_us = 800'000;
      p.record_events = true;
      ScenarioResult r = run_scenario(p);
      if (!r.oracle_ok) {
        std::cerr << "ORACLE VIOLATION: " << r.oracle_summary << "\n";
        return 1;
      }
      rollbacks += r.counter("rollback.count");
      undone += r.counter("rollback.undone_intervals");
      orphans += r.counter("msgs.discarded_orphan_recv") +
                 r.counter("msgs.discarded_orphan_send");
      replayed += r.counter("restart.replayed_msgs");
      outputs += r.outputs;
      doomed += r.true_orphans;
      lost += r.lost;
      // Recovery critical path over the recorded trace: how long a
      // dependency chain a failure dragged down, and how long until its
      // damage settled (last forced rollback/retransmit).
      analysis::CausalGraph graph(r.trace);
      analysis::CriticalPathSummary cp = analysis::summarize_critical_paths(
          analysis::compute_critical_paths(graph));
      cp_hops_max = std::max(cp_hops_max, cp.max_hops);
      cp_settle_max = std::max(cp_settle_max, cp.max_settle_us);
    }
    t.row()
        .cell(k_label(cfg, kN))
        .cell(rollbacks)
        .cell(undone)
        .cell(orphans)
        .cell(replayed)
        .cell(static_cast<int64_t>(outputs))
        .cell(static_cast<int64_t>(doomed))
        .cell(static_cast<int64_t>(lost))
        .cell(static_cast<int64_t>(cp_hops_max))
        .cell(static_cast<double>(cp_settle_max) / 1000.0, 1);
  }
  t.print(std::cout, "recovery scope vs K (same failure plans everywhere)");
  BenchJson j("e3_recovery_vs_k");
  j.param("n", kN).param("seeds", kSeeds).param("failures", kFailures)
      .param("injections", 120);
  j.table("recovery scope vs K", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout
      << "Reading: at K=0 and 'pess' no released message is ever revoked, so "
         "non-failed processes never roll back; rollback scope grows with K "
         "because more risk is in flight when a failure strikes.\n";
  return 0;
}
