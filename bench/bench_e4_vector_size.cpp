// E4 — Dependency-vector size under commit dependency tracking (Theorem 2,
// §3, and §6's scalability claim). With NULLing on, a vector carries only
// dependencies on intervals that are not yet known stable, so its live size
// is governed by how much *recent* (sub-logging-cadence) traffic a process
// has absorbed — not by N and not by the total communication history. With
// NULLing off (full transitive tracking) entries accumulate forever and the
// vector marches towards size N. Expected shape: the Theorem-2 rows stay
// flat as N grows and shrink as logging gets faster or traffic sparser; the
// full-TDV rows climb towards N everywhere.
#include <iostream>

#include "baseline/pessimistic.h"
#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

namespace {

ProtocolConfig fast_logging(bool thm2) {
  ProtocolConfig cfg = thm2 ? ProtocolConfig{} : full_tdv_baseline();
  cfg.flush_interval_us = 2'000;
  cfg.notify_interval_us = 4'000;
  return cfg;
}

void run_table_vs_n(BenchJson& j) {
  Table t({"N", "tracking", "state_tdv_mean", "sent_vec_mean", "sent_vec_p99",
           "vec_bytes_mean", "full_vec_bytes"});
  for (int n : {4, 8, 16, 32}) {
    for (bool thm2 : {true, false}) {
      ScenarioParams p;
      p.n = n;
      p.seed = 1;
      p.protocol = fast_logging(thm2);
      p.injections = 4 * n;  // sparse: a few concurrent lineages at a time
      p.load_end_us = 3'000'000;
      p.ttl = 6;
      ScenarioResult r = run_scenario(p);
      double full_bytes =
          static_cast<double>(DepVector::kWireHeaderBytes +
                              static_cast<size_t>(n) * DepVector::kWireEntryBytes);
      t.row()
          .cell(static_cast<int64_t>(n))
          .cell(thm2 ? "commit-dep (Thm 2)" : "full TDV")
          .cell(r.hist("tdv.non_null").mean(), 2)
          .cell(r.hist("send.risk").mean(), 2)
          .cell(r.hist("send.risk").p99(), 0)
          .cell(r.hist("msg.vector_bytes").mean(), 1)
          .cell(full_bytes, 0);
    }
  }
  t.print(std::cout,
          "vector size vs N, sparse traffic (Theorem 2 ablation)");
  j.table("vector size vs N, sparse traffic (Theorem 2 ablation)", t);
}

// The three wire encodings of the same dependency information, side by
// side on identical runs: dense (full size-N vector, the Strom–Yemini
// shape), NULL-omitted (§4.2: ship only non-NULL entries), and
// sparse-delta (per-channel deltas with varints and full-frame resyncs,
// wire/delta_codec.h — what the 1k-process runs ship). The delta column is
// metered passively at the route boundary, so all three describe the exact
// same message stream.
void run_table_encodings(BenchJson& j) {
  Table t({"N", "messages", "dense_B", "null_omit_B", "sparse_delta_B",
           "delta_vs_dense", "full_frames_pct"});
  for (int n : {8, 16, 32, 64}) {
    ScenarioParams p;
    p.n = n;
    p.seed = 5;
    p.protocol = fast_logging(true);
    p.injections = 4 * n;
    p.load_end_us = 2'000'000;
    p.ttl = 6;
    p.measure_tracking = true;
    ScenarioResult r = run_scenario(p);
    const double msgs = static_cast<double>(r.counter("track.msgs"));
    const double dense_bytes =
        static_cast<double>(DepVector::kWireHeaderBytes +
                            static_cast<size_t>(n) * DepVector::kWireEntryBytes);
    const double delta_bytes =
        msgs > 0 ? static_cast<double>(r.counter("track.bytes_sent")) / msgs
                 : 0.0;
    const double full_pct =
        msgs > 0
            ? 100.0 * static_cast<double>(r.counter("track.full_frames")) / msgs
            : 0.0;
    t.row()
        .cell(static_cast<int64_t>(n))
        .cell(static_cast<int64_t>(msgs))
        .cell(dense_bytes, 0)
        .cell(r.hist("msg.vector_bytes").mean(), 1)
        .cell(delta_bytes, 1)
        .cell(msgs > 0 ? delta_bytes / dense_bytes : 0.0, 3)
        .cell(full_pct, 1);
  }
  t.print(std::cout,
          "per-message tracking bytes: dense vs NULL-omitted vs sparse-delta");
  j.table("per-message tracking bytes: dense vs NULL-omitted vs sparse-delta",
          t);
}

void run_table_vs_density(BenchJson& j) {
  Table t({"injections", "tracking", "state_tdv_mean", "sent_vec_mean",
           "sent_vec_p99"});
  for (int injections : {50, 200, 800}) {
    for (bool thm2 : {true, false}) {
      ScenarioParams p;
      p.n = 16;
      p.seed = 2;
      p.protocol = fast_logging(thm2);
      p.injections = injections;
      p.load_end_us = 1'000'000;
      p.ttl = 8;
      ScenarioResult r = run_scenario(p);
      t.row()
          .cell(static_cast<int64_t>(injections))
          .cell(thm2 ? "commit-dep (Thm 2)" : "full TDV")
          .cell(r.hist("tdv.non_null").mean(), 2)
          .cell(r.hist("send.risk").mean(), 2)
          .cell(r.hist("send.risk").p99(), 0);
    }
  }
  t.print(std::cout, "vector size vs traffic density (N=16)");
  j.table("vector size vs traffic density (N=16)", t);
}

void run_table_vs_cadence(BenchJson& j) {
  Table t({"notify_ms", "flush_ms", "state_tdv_mean", "sent_vec_mean",
           "sent_vec_p99"});
  for (SimTime notify_ms : {2, 10, 50}) {
    for (SimTime flush_ms : {1, 10, 50}) {
      ProtocolConfig cfg;
      cfg.notify_interval_us = notify_ms * 1000;
      cfg.flush_interval_us = flush_ms * 1000;
      ScenarioParams p;
      p.n = 16;
      p.seed = 3;
      p.protocol = cfg;
      p.injections = 64;
      p.load_end_us = 3'000'000;
      p.ttl = 6;
      ScenarioResult r = run_scenario(p);
      t.row()
          .cell(static_cast<int64_t>(notify_ms))
          .cell(static_cast<int64_t>(flush_ms))
          .cell(r.hist("tdv.non_null").mean(), 2)
          .cell(r.hist("send.risk").mean(), 2)
          .cell(r.hist("send.risk").p99(), 0);
    }
  }
  t.print(std::cout,
          "vector size vs logging cadence (N=16, Theorem 2 on, sparse)");
  j.table("vector size vs logging cadence (N=16, Theorem 2 on, sparse)", t);
}

}  // namespace

int main() {
  std::cout << "E4: dependency-vector size under commit dependency "
               "tracking\n\n";
  BenchJson j("e4_vector_size");
  run_table_vs_n(j);
  run_table_encodings(j);
  run_table_vs_density(j);
  run_table_vs_cadence(j);
  std::cout << "Reading: with Theorem 2 the live entry count tracks the "
               "logging cadence and traffic density, staying nearly flat in "
               "N ('the vector size does not grow with the number of "
               "processes', §6); full transitive tracking accumulates towards "
               "N entries regardless.\n";
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  return 0;
}
