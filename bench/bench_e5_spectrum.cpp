// E5 — The pessimistic / K-optimistic / optimistic spectrum end to end
// (paper §1 and §4.1: "a telecommunications system needs to choose a
// parameter to control the overhead so that it can be responsive during
// normal operation, and also control the rollback scope so that it can
// recover reasonably fast"). A client-server service runs the same request
// stream under each configuration while the synchronous stable-storage
// write cost sweeps from cheap to expensive. Expected shape: pessimistic
// logging's makespan and output latency grow with the write cost (every
// delivery blocks on the disk) while the optimistic family is insensitive
// to it; under failures, rollback scope orders pess = K0 < K2 < KN.
#include <iostream>
#include <vector>

#include "baseline/pessimistic.h"
#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

namespace {

constexpr int kN = 6;

ScenarioResult run_one(ProtocolConfig cfg, SimTime sync_cost, int failures,
                       uint64_t seed) {
  cfg.storage.sync_write_us = sync_cost;
  ScenarioParams p;
  p.n = kN;
  p.seed = seed;
  p.protocol = cfg;
  p.workload = Workload::kClientServer;
  p.injections = 300;
  p.load_end_us = 900'000;
  p.failures = failures;
  p.fail_from_us = 150'000;
  p.fail_to_us = 800'000;
  return run_scenario(p);
}

std::vector<std::pair<std::string, ProtocolConfig>> spectrum() {
  return {{"pess", pessimistic_baseline()},
          {"K=0", k_optimistic(0)},
          {"K=2", k_optimistic(2)},
          {"K=N", ProtocolConfig::traditional_optimistic()}};
}

void failure_free_table(BenchJson& j) {
  Table t({"sync_us", "mode", "req_e2e_mean_us", "req_e2e_p99_us",
           "out_lat_mean_us", "sync_writes", "recv_wait_us"});
  for (SimTime sync_cost : {100, 500, 2000, 5000}) {
    for (auto& [name, cfg] : spectrum()) {
      ScenarioResult r = run_one(cfg, sync_cost, 0, 1);
      t.row()
          .cell(static_cast<int64_t>(sync_cost))
          .cell(name)
          .cell(r.hist("request.e2e_us").mean(), 0)
          .cell(r.hist("request.e2e_us").p99(), 0)
          .cell(r.hist("output.commit_latency_us").mean(), 0)
          .cell(r.counter("storage.sync_writes"))
          .cell(r.hist("recv.wait_us").mean(), 1);
    }
  }
  t.print(std::cout, "failure-free service cost vs stable-storage write cost");
  j.table("failure-free service cost vs stable-storage write cost", t);
}

void failure_table(BenchJson& j) {
  Table t({"mode", "rollbacks", "undone", "orphan_msgs", "outputs",
           "out_lat_p99_us"});
  for (auto& [name, cfg] : spectrum()) {
    int64_t rollbacks = 0, undone = 0, orphans = 0;
    size_t outputs = 0;
    double p99 = 0;
    constexpr int kSeeds = 3;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ScenarioResult r = run_one(cfg, 500, /*failures=*/3, seed);
      rollbacks += r.counter("rollback.count");
      undone += r.counter("rollback.undone_intervals");
      orphans += r.counter("msgs.discarded_orphan_recv");
      outputs += r.outputs;
      p99 += r.hist("output.commit_latency_us").p99();
    }
    t.row()
        .cell(name)
        .cell(rollbacks)
        .cell(undone)
        .cell(orphans)
        .cell(static_cast<int64_t>(outputs))
        .cell(p99 / kSeeds, 0);
  }
  t.print(std::cout, "recovery behaviour under 3 failures (sync=500us)");
  j.table("recovery behaviour under 3 failures (sync=500us)", t);
}

}  // namespace

int main() {
  std::cout << "E5: the pessimistic / K-optimistic / optimistic spectrum\n"
            << "(client-server workload, N=" << kN << ")\n\n";
  BenchJson j("e5_spectrum");
  failure_free_table(j);
  failure_table(j);
  std::cout << "Reading: pessimistic tracks the disk (sync writes per "
               "delivery); the optimistic family doesn't. Under failures the "
               "rollback scope grows with K — K is the knob that trades one "
               "against the other (§4.1).\n";
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  return 0;
}
