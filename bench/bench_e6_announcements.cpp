// E6 — Theorem 1 ablation (paper §3 "Applying Theorem 1"): announcing only
// failures vs. announcing every rollback (Strom-Yemini style). Both modes
// recover the same workload from the same failure plans; the difference is
// pure overhead. Expected shape: with cascading rollbacks, announce-all
// broadcasts strictly more announcements and accumulates larger incarnation
// end tables — "the number of rollback announcements and the size of
// incarnation end tables are reduced" (§3).
#include <iostream>

#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

int main() {
  constexpr int kN = 8;
  constexpr int kSeeds = 5;
  std::cout << "E6: failure-only announcements (Theorem 1) vs announce-all\n"
            << "(uniform workload, N=" << kN
            << ", 3 failures per run, slow logging to maximize cascades, "
            << kSeeds << " seeds summed)\n\n";

  Table t({"mode", "ann_sent", "ann_msgs_broadcast", "rollbacks",
           "undone_ivals", "outputs"});
  for (bool announce_all : {false, true}) {
    ProtocolConfig cfg;
    cfg.announce_all_rollbacks = announce_all;
    // A long volatile window makes failures orphan more peers, which is
    // what separates the two modes.
    cfg.flush_interval_us = 40'000;
    cfg.notify_interval_us = 60'000;
    cfg.checkpoint_interval_us = 400'000;
    int64_t ann = 0, rollbacks = 0, undone = 0;
    size_t outputs = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ScenarioParams p;
      p.n = kN;
      p.seed = seed;
      p.protocol = cfg;
      p.injections = 150;
      p.load_end_us = 700'000;
      p.failures = 3;
      ScenarioResult r = run_scenario(p);
      ann += r.counter("announce.sent");
      rollbacks += r.counter("rollback.count");
      undone += r.counter("rollback.undone_intervals");
      outputs += r.outputs;
    }
    t.row()
        .cell(announce_all ? "announce-all (SY)" : "failures-only (Thm 1)")
        .cell(ann)
        .cell(ann * (kN - 1))  // each announcement is broadcast to N-1 peers
        .cell(rollbacks)
        .cell(undone)
        .cell(static_cast<int64_t>(outputs));
  }
  t.print(std::cout, "announcement traffic (Theorem 1 ablation)");
  BenchJson j("e6_announcements");
  j.param("n", kN).param("seeds", kSeeds).param("failures", 3)
      .param("injections", 150);
  j.table("announcement traffic (Theorem 1 ablation)", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: both modes undo the same orphans; failure-only "
               "announcements cut the broadcast traffic to the number of "
               "actual failures.\n";
  return 0;
}
