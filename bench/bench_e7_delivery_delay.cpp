// E7 — Corollary 1 ablation (paper §3 "Applying Corollary 1"): the improved
// deliverability rule (overwrite a dependency entry as soon as the smaller
// entry is known *stable*; no wait at all when no entry exists) vs.
// Strom-Yemini's original rule (delay until the rollback announcements for
// all prior incarnations arrive). The race only exists when failure
// information propagates slowly relative to application traffic, so the
// control-plane latency is swept. Expected shape: under a slow control
// plane the SY rule delays deliveries for roughly the announcement latency
// while the Corollary-1 rule's waits stay near zero (stability facts flow
// continuously with logging-progress notifications, and most receivers
// hold no conflicting entry at all).
#include <iostream>

#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

int main() {
  constexpr int kN = 6;
  constexpr int kSeeds = 5;
  std::cout << "E7: delivery delay — Corollary 1 vs Strom-Yemini rule\n"
            << "(uniform workload, N=" << kN << ", 3 failures per run, "
            << kSeeds << " seeds averaged, control-plane latency swept)\n\n";

  Table t({"ann_latency_ms", "rule", "recv_wait_mean_us", "recv_wait_p99_us",
           "delayed_deliveries", "rollbacks"});
  for (SimTime ann_ms : {1, 10, 40}) {
    for (bool cor1 : {true, false}) {
      ProtocolConfig cfg;
      cfg.cor1_fast_delivery = cor1;
      if (!cor1) {
        // The SY rule needs every incarnation end announced to make
        // progress.
        cfg.announce_all_rollbacks = true;
      }
      // Fast logging keeps the Corollary-1 arm's stability information
      // fresh; the contested resource is the announcement itself.
      cfg.flush_interval_us = 2'000;
      cfg.notify_interval_us = 4'000;
      double wait_mean = 0, wait_p99 = 0;
      int64_t delayed = 0, rollbacks = 0;
      for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        ScenarioParams p;
        p.n = kN;
        p.seed = seed;
        p.protocol = cfg;
        p.fifo = !cor1;  // SY assumes FIFO channels
        p.injections = 150;
        p.load_end_us = 800'000;
        p.failures = 3;
        p.fail_to_us = 700'000;
        p.control_base_us = ann_ms * 1000;
        p.control_jitter_us = ann_ms * 500;
        ScenarioResult r = run_scenario(p);
        wait_mean += r.hist("recv.wait_us").mean();
        wait_p99 += r.hist("recv.wait_us").p99();
        // Count deliveries that actually waited (wait > 0).
        delayed += r.counter("recv.delayed");
        rollbacks += r.counter("rollback.count");
      }
      t.row()
          .cell(static_cast<int64_t>(ann_ms))
          .cell(cor1 ? "Corollary 1 (improved)" : "Strom-Yemini delay")
          .cell(wait_mean / kSeeds, 1)
          .cell(wait_p99 / kSeeds, 0)
          .cell(delayed)
          .cell(rollbacks);
    }
  }
  t.print(std::cout, "receiver-side delivery wait (Corollary 1 ablation)");
  BenchJson j("e7_delivery_delay");
  j.param("n", kN).param("seeds", kSeeds).param("failures", 3)
      .param("injections", 150);
  j.table("receiver-side delivery wait (Corollary 1 ablation)", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: the Corollary-1 rule replaces the wait for prior-"
               "incarnation announcements with already-flowing stability "
               "information, so its delays stay near zero even when "
               "announcements crawl.\n";
  return 0;
}
