// E8 — Output-commit latency (paper §2 "Output commit", §4.2: "an output
// can be viewed as a 0-optimistic message"). An output commits once every
// interval it depends on is stable, so its latency is governed by how fast
// stability information is produced (flush cadence) and spread
// (notification cadence) — and is independent of the message-release K.
// Expected shape: latency scales with flush+notify periods; K's columns are
// flat; the pessimistic mechanism commits almost immediately.
#include <iostream>

#include "analysis/causal_graph.h"
#include "baseline/pessimistic.h"
#include "core/metrics.h"
#include "scenario.h"
#include "sim/stats.h"

using namespace koptlog;
using namespace koptlog::bench;

int main() {
  constexpr int kN = 6;
  std::cout << "E8: output-commit latency vs K and logging cadence\n"
            << "(client-server workload, N=" << kN << ", no failures)\n\n";

  Table t({"flush/notify_ms", "K", "commit_mean_us", "commit_p99_us",
           "outputs", "hold_p50_us", "hold_p99_us"});
  for (SimTime cadence_ms : {2, 10, 40}) {
    std::vector<std::pair<std::string, ProtocolConfig>> modes = {
        {"pess", pessimistic_baseline()},
        {"0", k_optimistic(0)},
        {"2", k_optimistic(2)},
        {"N", ProtocolConfig::traditional_optimistic()}};
    for (auto& [name, cfg] : modes) {
      cfg.flush_interval_us = cadence_ms * 1000;
      cfg.notify_interval_us = cadence_ms * 1000;
      ScenarioParams p;
      p.n = kN;
      p.seed = 3;
      p.protocol = cfg;
      p.workload = Workload::kClientServer;
      p.injections = 250;
      p.load_end_us = 900'000;
      p.record_events = true;
      ScenarioResult r = run_scenario(p);
      // Send-buffer hold times from the recorded trace's message episodes
      // (the K-governed side of the latency story, alongside the
      // K-independent commit column).
      analysis::CausalGraph graph(r.trace);
      Histogram hold;
      for (const analysis::MsgEpisode& ep : graph.episodes()) {
        if (ep.send_ev < 0 || ep.release_ev < 0) continue;
        hold.add(static_cast<double>(
            r.trace.events[static_cast<size_t>(ep.release_ev)].t -
            r.trace.events[static_cast<size_t>(ep.send_ev)].t));
      }
      t.row()
          .cell(static_cast<int64_t>(cadence_ms))
          .cell(name)
          .cell(r.hist("output.commit_latency_us").mean(), 0)
          .cell(r.hist("output.commit_latency_us").p99(), 0)
          .cell(static_cast<int64_t>(r.outputs))
          .cell(hold.p50(), 0)
          .cell(hold.p99(), 0);
    }
  }
  t.print(std::cout, "output-commit latency");
  BenchJson j("e8_output_commit");
  j.param("n", kN).param("seed", 3).param("injections", 250)
      .param("workload", "clientserver");
  j.table("output-commit latency", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: outputs are 0-optimistic regardless of the system's "
               "K, so the logging cadence dominates commit latency at every "
               "K; smaller K helps a little on top (messages carry fewer "
               "live dependencies for receivers to inherit), and synchronous "
               "(pessimistic) logging commits fastest because every interval "
               "is stable on creation.\n";
  return 0;
}
