// E9 — Scalability with system size (paper §6: "the vector size does not
// grow with the number of processes and so the dependency tracking scheme
// has better scalability"). Two experiments:
//
//  1. The original piggyback sweep: message rate per process held constant
//     while N grows; with commit dependency tracking + a K bound the
//     per-message piggyback stays bounded while the full-TDV size-N vector
//     grows linearly.
//
//  2. The cluster-axis storm (the headline for the sparse/delta work): a
//     1000-process, million-message run whose merged trace must audit with
//     zero violations, reporting the bytes each encoding would ship per
//     message — dense O(N), NULL-omitted O(nnz), sparse-delta (per-channel
//     deltas, wire/delta_codec.h) — plus the announcement-message cost of
//     flat fan-out vs an --announce-fanout tree. A threaded spot-check runs
//     the same shape on real shard threads with tree dissemination on.
#include <iostream>

#include "app/workloads.h"
#include "baseline/pessimistic.h"
#include "core/failure_injector.h"
#include "core/metrics.h"
#include "exec/threaded_cluster.h"
#include "obs/audit.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

namespace {

void run_piggyback_sweep(BenchJson& j) {
  Table t({"N", "mode", "piggyback_mean_B", "piggyback_p99_B", "tdv_mean",
           "risk_p99"});
  for (int n : {4, 8, 16, 32, 64}) {
    struct Mode {
      std::string name;
      ProtocolConfig cfg;
    };
    std::vector<Mode> modes;
    modes.push_back({"K=2 (Thm 2)", k_optimistic(2)});
    modes.push_back({"K=4 (Thm 2)", k_optimistic(4)});
    modes.push_back({"K=N (Thm 2)", ProtocolConfig::traditional_optimistic()});
    modes.push_back({"full TDV", full_tdv_baseline()});
    for (auto& [name, cfg] : modes) {
      ScenarioParams p;
      p.n = n;
      p.seed = 4;
      p.protocol = cfg;
      p.injections = 25 * n;  // constant per-process load
      p.load_end_us = 700'000;
      p.ttl = 10;
      ScenarioResult r = run_scenario(p);
      t.row()
          .cell(static_cast<int64_t>(n))
          .cell(name)
          .cell(r.hist("msg.piggyback_bytes").mean(), 1)
          .cell(r.hist("msg.piggyback_bytes").p99(), 0)
          .cell(r.hist("tdv.non_null").mean(), 2)
          .cell(r.hist("send.risk").p99(), 0);
    }
  }
  t.print(std::cout, "piggyback bytes per message vs N");
  j.table("piggyback bytes per message vs N", t);
}

// Constant per-process load while N climbs to 1000; every run's merged
// trace goes through the full audit (zero violations required). The
// N=1000 row is the storm: >= 1M application messages.
void run_cluster_axis_storm(BenchJson& j, bool& all_audits_ok,
                            bool& storm_big_enough) {
  Table t({"N", "messages", "dense_B", "null_omit_B", "sparse_delta_B",
           "announce_msgs_flat", "announce_msgs_tree_d4", "audit"});
  for (int n : {100, 300, 1000}) {
    std::cout << "  N=" << n << ": running..." << std::flush;
    ScenarioParams p;
    p.n = n;
    p.seed = 9;
    p.protocol = k_optimistic(4);
    // The logging-progress broadcast costs every process N-1 control sends
    // per round, so rounds must be spaced wider as N grows or the rounds
    // alone are O(N^2) per unit time and the N=1000 run trips the
    // simulator's 200M-event livelock budget. But the cadence also bounds
    // how long entries stay non-NULL (Theorem 2), so stretching it too far
    // re-inflates nnz and with it every O(nnz) hot path — 10ms + 25us*N
    // (35ms at N=1000) keeps both curves in check. The shorter virtual
    // window compensates on the event side; the injection count, not the
    // window, sets the message total.
    p.protocol.notify_interval_us = 10'000 + static_cast<SimTime>(n) * 25;
    // Constant per-process injection load. The uniform workload amplifies
    // each injection into a ttl-deep send chain plus extra sends (~70
    // application messages per injection), so 20 injections/process is
    // ~1.4M messages at N=1000 — comfortably past the 1M storm gate
    // without hours of single-core sim time.
    p.injections = 20 * n;
    p.load_end_us = 1'000'000;
    p.ttl = 10;
    p.failures = 3;
    p.fail_from_us = 200'000;
    p.fail_to_us = 800'000;
    p.extra_run_us = 1'000'000;
    p.record_events = true;
    p.measure_tracking = true;
    ScenarioResult r = run_scenario(p);

    AuditReport rep = audit_trace(r.trace);
    all_audits_ok = all_audits_ok && rep.ok();
    const int64_t msgs = r.counter("track.msgs");
    if (n == 1000) storm_big_enough = msgs >= 1'000'000;
    const double dense_bytes =
        static_cast<double>(DepVector::kWireHeaderBytes +
                            static_cast<size_t>(n) * DepVector::kWireEntryBytes);
    const double delta_bytes =
        msgs > 0 ? static_cast<double>(r.counter("track.bytes_sent")) /
                       static_cast<double>(msgs)
                 : 0.0;
    // One announcement broadcast reaches N-1 processes either way; flat
    // fan-out makes the origin pay all N-1 sends, a D-ary shard tree caps
    // the per-node cost at D while the total stays N-1.
    const int64_t announces = r.counter("announce.sent");
    t.row()
        .cell(static_cast<int64_t>(n))
        .cell(msgs)
        .cell(dense_bytes, 0)
        .cell(r.hist("msg.vector_bytes").mean(), 1)
        .cell(delta_bytes, 1)
        .cell(announces * (n - 1))
        .cell(announces * (n - 1))  // same total; origin cost D, not N-1
        .cell(rep.ok() ? "OK"
                       : "FAIL(" + std::to_string(rep.violations.size()) + ")");
    std::cout << " " << msgs << " msgs, " << rep.events
              << " events audited, "
              << (rep.ok() ? "0 violations"
                           : std::to_string(rep.violations.size()) +
                                 " VIOLATIONS")
              << std::endl;
    if (!rep.ok()) std::cout << "    first: " << rep.violations.front() << "\n";
  }
  t.print(std::cout,
          "cluster-axis storm: per-message tracking bytes vs N "
          "(audited, 3 failures)");
  j.table(
      "cluster-axis storm: per-message tracking bytes vs N "
      "(audited, 3 failures)",
      t);
}

// The same shape on the threaded backend with tree dissemination on:
// real shard threads, announcements traversing a D-ary shard tree, merged
// trace audited. Small N — this is a spot-check that the tree path holds
// up outside the simulator, not a throughput run.
void run_threaded_spot_check(BenchJson& j, bool& ok) {
  Table t({"shards", "fanout", "messages", "tree_hops", "crashes", "audit"});
  for (int fanout : {0, 2}) {
    ClusterConfig cfg;
    cfg.n = 64;
    cfg.seed = 19;
    cfg.protocol = k_optimistic(4);
    cfg.record_events = true;
    cfg.measure_tracking = true;
    ThreadedOptions opt;
    opt.shards = 8;
    opt.time_scale = 0.02;
    opt.announce_fanout = fanout;
    ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
    cluster.start();
    const SimTime load_end = 400'000;
    inject_uniform_load(cluster, 800, 1'000, load_end, /*ttl=*/8, 20);
    apply_failure_plan(cluster,
                       FailurePlan::random(Rng(19).fork("fail"), cfg.n, 3,
                                           load_end / 10, load_end));
    cluster.run_for(load_end);
    cluster.drain();
    cluster.shutdown();
    Trace trace;
    trace.n = cfg.n;
    trace.events = cluster.recording()->merged();
    AuditReport rep = audit_trace(trace);
    ok = ok && rep.ok();
    t.row()
        .cell(static_cast<int64_t>(opt.shards))
        .cell(static_cast<int64_t>(fanout))
        .cell(cluster.stats().counter("track.msgs"))
        .cell(cluster.stats().counter("announce.tree_hops"))
        .cell(cluster.stats().counter("crash.count"))
        .cell(rep.ok() ? "OK"
                       : "FAIL(" + std::to_string(rep.violations.size()) + ")");
  }
  t.print(std::cout,
          "threaded spot-check: flat vs tree dissemination (N=64, audited)");
  j.table("threaded spot-check: flat vs tree dissemination (N=64, audited)",
          t);
}

}  // namespace

int main() {
  std::cout << "E9: piggyback scalability vs N (constant per-process load)\n\n";

  BenchJson j("e9_scalability");
  j.param("seed", 4).param("injections_per_process", 25)
      .param("load_end_us", static_cast<int64_t>(700'000))
      .param("storm_injections_per_process", 20)
      .param("storm_failures", 3);

  run_piggyback_sweep(j);

  std::cout << "\nrunning cluster-axis storm (N up to 1000, ~1.4M messages "
               "at the top; takes several minutes)...\n";
  bool audits_ok = true, storm_big_enough = false;
  run_cluster_axis_storm(j, audits_ok, storm_big_enough);

  bool threaded_ok = true;
  run_threaded_spot_check(j, threaded_ok);

  j.metric("storm_audits_ok", static_cast<int64_t>(audits_ok ? 1 : 0));
  j.metric("storm_ge_1m_messages",
           static_cast<int64_t>(storm_big_enough ? 1 : 0));
  j.metric("threaded_spot_check_ok",
           static_cast<int64_t>(threaded_ok ? 1 : 0));

  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: K bounds the released-message vector (risk_p99 <= "
               "K), so NULL-omitted and sparse-delta bytes stay flat in N "
               "while the dense vector grows linearly; the storm's merged "
               "trace audits clean at N=1000, and tree dissemination caps "
               "the origin's announcement cost at D sends.\n";
  if (!audits_ok || !storm_big_enough || !threaded_ok) {
    std::cout << "E9 FAILED: audit or storm-size gate not met\n";
    return 1;
  }
  return 0;
}
