// E9 — Scalability with system size (paper §6: "the vector size does not
// grow with the number of processes and so the dependency tracking scheme
// has better scalability"). Message rate per process is held constant while
// N grows; we measure the piggyback bytes actually shipped. Expected shape:
// with commit dependency tracking + a K bound the per-message piggyback
// stays bounded as N grows; the full-TDV size-N vector grows linearly.
#include <iostream>

#include "baseline/pessimistic.h"
#include "core/metrics.h"
#include "scenario.h"

using namespace koptlog;
using namespace koptlog::bench;

int main() {
  std::cout << "E9: piggyback scalability vs N (constant per-process load)\n\n";

  Table t({"N", "mode", "piggyback_mean_B", "piggyback_p99_B", "tdv_mean",
           "risk_p99"});
  for (int n : {4, 8, 16, 32, 64}) {
    struct Mode {
      std::string name;
      ProtocolConfig cfg;
    };
    std::vector<Mode> modes;
    modes.push_back({"K=2 (Thm 2)", k_optimistic(2)});
    modes.push_back({"K=4 (Thm 2)", k_optimistic(4)});
    modes.push_back({"K=N (Thm 2)", ProtocolConfig::traditional_optimistic()});
    modes.push_back({"full TDV", full_tdv_baseline()});
    for (auto& [name, cfg] : modes) {
      ScenarioParams p;
      p.n = n;
      p.seed = 4;
      p.protocol = cfg;
      p.injections = 25 * n;  // constant per-process load
      p.load_end_us = 700'000;
      p.ttl = 10;
      ScenarioResult r = run_scenario(p);
      t.row()
          .cell(static_cast<int64_t>(n))
          .cell(name)
          .cell(r.hist("msg.piggyback_bytes").mean(), 1)
          .cell(r.hist("msg.piggyback_bytes").p99(), 0)
          .cell(r.hist("tdv.non_null").mean(), 2)
          .cell(r.hist("send.risk").p99(), 0);
    }
  }
  t.print(std::cout, "piggyback bytes per message vs N");
  BenchJson j("e9_scalability");
  j.param("seed", 4).param("injections_per_process", 25)
      .param("load_end_us", static_cast<int64_t>(700'000));
  j.table("piggyback bytes per message vs N", t);
  if (std::string path = j.write_file(); !path.empty())
    std::cout << "wrote " << path << "\n";
  std::cout << "Reading: K bounds the released-message vector (risk_p99 <= "
               "K), so piggyback stays bounded while the full size-N vector "
               "grows linearly with the system.\n";
  return 0;
}
