// M1 — Micro-benchmarks of the hot protocol primitives and the simulation
// substrate (google-benchmark). These set the constant factors behind every
// experiment binary: dependency-vector merges, table queries, deliverability
// checks, simulator event throughput, and a small end-to-end cluster run.
#include <benchmark/benchmark.h>

#include "app/workloads.h"
#include "core/oracle.h"
#include "wire/codec.h"
#include "core/cluster.h"
#include "core/dep_vector.h"
#include "core/interval_table.h"
#include "sim/simulator.h"

using namespace koptlog;

namespace {

DepVector make_vector(int n, int live, uint64_t salt) {
  DepVector v(n);
  for (int i = 0; i < live; ++i) {
    auto j = static_cast<ProcessId>((salt + static_cast<uint64_t>(i) * 7) %
                                    static_cast<uint64_t>(n));
    v.set(j, Entry{static_cast<Incarnation>(i % 3),
                   static_cast<Sii>(100 + i)});
  }
  return v;
}

void BM_DepVectorMergeMax(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DepVector a = make_vector(n, n / 2, 1);
  DepVector b = make_vector(n, n / 2, 5);
  for (auto _ : state) {
    DepVector tmp = a;
    tmp.merge_max(b);
    benchmark::DoNotOptimize(tmp);
  }
}
BENCHMARK(BM_DepVectorMergeMax)->Arg(8)->Arg(64)->Arg(512);

void BM_DepVectorNonNullCount(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DepVector v = make_vector(n, n / 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.non_null_count());
  }
}
BENCHMARK(BM_DepVectorNonNullCount)->Arg(8)->Arg(64)->Arg(512);

void BM_EntrySetInsertMaxMerge(benchmark::State& state) {
  for (auto _ : state) {
    EntrySet se;
    for (Sii x = 0; x < 64; ++x)
      se.insert(Entry{static_cast<Incarnation>(x % 4), x});
    benchmark::DoNotOptimize(se);
  }
}
BENCHMARK(BM_EntrySetInsertMaxMerge);

void BM_EntrySetCoversAndOrphans(benchmark::State& state) {
  EntrySet se;
  for (Incarnation t = 0; t < 16; ++t) se.insert(Entry{t, 100 + t});
  for (auto _ : state) {
    benchmark::DoNotOptimize(se.covers(Entry{7, 99}));
    benchmark::DoNotOptimize(se.orphans(Entry{3, 200}));
  }
}
BENCHMARK(BM_EntrySetCoversAndOrphans);

void BM_SimulatorScheduleAndStep(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_at(static_cast<SimTime>((i * 37) % 4096), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_SimulatorScheduleAndStep);

void BM_EndToEndClusterRun(benchmark::State& state) {
  int64_t events = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = 4;
    cfg.seed = 9;
    cfg.enable_oracle = false;
    Cluster cluster(cfg, make_uniform_app({}));
    cluster.start();
    inject_uniform_load(cluster, 20, 1'000, 100'000, 6, 9);
    cluster.fail_at(50'000, 1);
    cluster.run_for(400'000);
    cluster.drain();
    events += static_cast<int64_t>(cluster.sim().events_executed());
  }
  state.counters["sim_events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndClusterRun)->Unit(benchmark::kMillisecond);

void BM_CodecEncodeAppMsg(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  AppMsg m;
  m.id = MsgId{0, 1};
  m.from = 0;
  m.to = 1;
  m.tdv = make_vector(n, n / 2, 7);
  m.born_of = IntervalId{0, 0, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_app_msg(m, true));
  }
}
BENCHMARK(BM_CodecEncodeAppMsg)->Arg(8)->Arg(64);

void BM_CodecRoundTripAppMsg(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  AppMsg m;
  m.id = MsgId{0, 1};
  m.from = 0;
  m.to = 1;
  m.tdv = make_vector(n, n / 2, 7);
  m.born_of = IntervalId{0, 0, 5};
  auto bytes = wire::encode_app_msg(m, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_app_msg(bytes, n, true));
  }
}
BENCHMARK(BM_CodecRoundTripAppMsg)->Arg(8)->Arg(64);

void BM_OracleDoomClosure(benchmark::State& state) {
  // A two-lane history with cross edges; doom queries exercise the memoized
  // reachability that verify() runs over every interval.
  Oracle o(2);
  o.on_process_start(IntervalId{0, 0, 1}, 0);
  o.on_process_start(IntervalId{1, 0, 1}, 0);
  constexpr Sii kLen = 2000;
  for (Sii x = 2; x <= kLen; ++x) {
    o.on_interval_start(IntervalId{0, 0, x}, IntervalId{1, 0, x - 1}, 0);
    o.on_interval_start(IntervalId{1, 0, x}, IntervalId{0, 0, x - 1}, 0);
  }
  o.on_crash(1, kLen - 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(o.doomed_count());
  }
}
BENCHMARK(BM_OracleDoomClosure);

}  // namespace

BENCHMARK_MAIN();
