// M1 — Micro-benchmarks of the hot protocol primitives and the simulation
// substrate (google-benchmark). These set the constant factors behind every
// experiment binary: dependency-vector merges, table queries, deliverability
// checks, simulator event throughput, and a small end-to-end cluster run.
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "app/workloads.h"
#include "core/oracle.h"
#include "wire/codec.h"
#include "core/cluster.h"
#include "core/dep_vector.h"
#include "core/interval_table.h"
#include "exec/mpsc_mailbox.h"
#include "obs/ring_recorder.h"
#include "exec/threaded_scheduler.h"
#include "sim/simulator.h"

using namespace koptlog;

namespace {

DepVector make_vector(int n, int live, uint64_t salt) {
  DepVector v(n);
  for (int i = 0; i < live; ++i) {
    auto j = static_cast<ProcessId>((salt + static_cast<uint64_t>(i) * 7) %
                                    static_cast<uint64_t>(n));
    v.set(j, Entry{static_cast<Incarnation>(i % 3),
                   static_cast<Sii>(100 + i)});
  }
  return v;
}

void BM_DepVectorMergeMax(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DepVector a = make_vector(n, n / 2, 1);
  DepVector b = make_vector(n, n / 2, 5);
  for (auto _ : state) {
    DepVector tmp = a;
    tmp.merge_max(b);
    benchmark::DoNotOptimize(tmp);
  }
}
BENCHMARK(BM_DepVectorMergeMax)->Arg(8)->Arg(64)->Arg(512);

// The sparse-representation payoff, measured not assumed: merge_max cost
// as a function of the LIVE entry count at fixed system size N=1000. The
// old dense representation paid O(N) regardless (the Arg(1000) row is the
// dense-equivalent upper bound, every entry live); the sparse two-pointer
// merge pays O(nnz), so the nnz=1..16 rows — the K-bounded regime every
// released message lives in — must sit orders of magnitude below it.
void BM_DepVectorMergeMaxSparse(benchmark::State& state) {
  constexpr int n = 1000;
  const int nnz = static_cast<int>(state.range(0));
  DepVector a = make_vector(n, nnz, 1);
  DepVector b = make_vector(n, nnz, 5);
  for (auto _ : state) {
    DepVector tmp = a;
    tmp.merge_max(b);
    benchmark::DoNotOptimize(tmp);
  }
  state.counters["nnz"] = static_cast<double>(a.non_null_count());
}
BENCHMARK(BM_DepVectorMergeMaxSparse)->Arg(1)->Arg(4)->Arg(16)->Arg(1000);

void BM_DepVectorNonNullCount(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DepVector v = make_vector(n, n / 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.non_null_count());
  }
}
BENCHMARK(BM_DepVectorNonNullCount)->Arg(8)->Arg(64)->Arg(512);

void BM_EntrySetInsertMaxMerge(benchmark::State& state) {
  for (auto _ : state) {
    EntrySet se;
    for (Sii x = 0; x < 64; ++x)
      se.insert(Entry{static_cast<Incarnation>(x % 4), x});
    benchmark::DoNotOptimize(se);
  }
}
BENCHMARK(BM_EntrySetInsertMaxMerge);

void BM_EntrySetCoversAndOrphans(benchmark::State& state) {
  EntrySet se;
  for (Incarnation t = 0; t < 16; ++t) se.insert(Entry{t, 100 + t});
  for (auto _ : state) {
    benchmark::DoNotOptimize(se.covers(Entry{7, 99}));
    benchmark::DoNotOptimize(se.orphans(Entry{3, 200}));
  }
}
BENCHMARK(BM_EntrySetCoversAndOrphans);

void BM_SimulatorScheduleAndStep(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_at(static_cast<SimTime>((i * 37) % 4096), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_SimulatorScheduleAndStep);

void BM_EndToEndClusterRun(benchmark::State& state) {
  int64_t events = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = 4;
    cfg.seed = 9;
    cfg.enable_oracle = false;
    Cluster cluster(cfg, make_uniform_app({}));
    cluster.start();
    inject_uniform_load(cluster, 20, 1'000, 100'000, 6, 9);
    cluster.fail_at(50'000, 1);
    cluster.run_for(400'000);
    cluster.drain();
    events += static_cast<int64_t>(cluster.sim().events_executed());
  }
  state.counters["sim_events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndClusterRun)->Unit(benchmark::kMillisecond);

void BM_CodecEncodeAppMsg(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  AppMsg m;
  m.id = MsgId{0, 1};
  m.from = 0;
  m.to = 1;
  m.tdv = make_vector(n, n / 2, 7);
  m.born_of = IntervalId{0, 0, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_app_msg(m, true));
  }
}
BENCHMARK(BM_CodecEncodeAppMsg)->Arg(8)->Arg(64);

void BM_CodecRoundTripAppMsg(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  AppMsg m;
  m.id = MsgId{0, 1};
  m.from = 0;
  m.to = 1;
  m.tdv = make_vector(n, n / 2, 7);
  m.born_of = IntervalId{0, 0, 5};
  auto bytes = wire::encode_app_msg(m, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_app_msg(bytes, n, true));
  }
}
BENCHMARK(BM_CodecRoundTripAppMsg)->Arg(8)->Arg(64);

// --- Mailbox primitives -----------------------------------------------------
// The two-level threaded-backend spine: lock-free MPSC push/drain cost, the
// same pattern under a mutex (the kMutex baseline shape), and producer
// contention at 1..8 threads. These set the constant factors behind the
// e12 shard-scaling sweep.

struct MailItem {
  SimTime t = 0;
  uint64_t seq = 0;
};

void BM_MailboxMpscPushDrain(benchmark::State& state) {
  // Single-threaded round trip: push `batch` items, drain them all. Measures
  // the uncontended CAS + exchange + reversal cost per item.
  const int batch = static_cast<int>(state.range(0));
  MpscMailbox<MailItem> box;
  int64_t items = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      box.push(MailItem{static_cast<SimTime>(i), static_cast<uint64_t>(i)});
    }
    items += static_cast<int64_t>(box.drain([](MailItem&&) {}));
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_MailboxMpscPushDrain)->Arg(1)->Arg(64)->Arg(1024);

void BM_MailboxMutexPushDrain(benchmark::State& state) {
  // The same round trip through a mutex-guarded FIFO — the per-item critical
  // section the kMutex scheduler policy pays on every cross-shard submit.
  const int batch = static_cast<int>(state.range(0));
  std::mutex mu;
  std::queue<MailItem> q;
  int64_t items = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      std::lock_guard<std::mutex> lk(mu);
      q.push(MailItem{static_cast<SimTime>(i), static_cast<uint64_t>(i)});
    }
    while (true) {
      std::lock_guard<std::mutex> lk(mu);
      if (q.empty()) break;
      q.pop();
      ++items;
    }
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_MailboxMutexPushDrain)->Arg(1)->Arg(64)->Arg(1024);

// --- Ring recorder ----------------------------------------------------------
// The streaming observability hot path: what a shard pays to record one
// protocol event into its SPSC ring while a collector thread drains it.
// Recording must stay cheap enough to be passive; this pins the constant.

void BM_RingRecorderRecordDrain(benchmark::State& state) {
  // Uncontended round trip: record `batch`, drain `batch`.
  const size_t batch = static_cast<size_t>(state.range(0));
  RingRecorder ring(0, /*capacity=*/4096);
  ProtocolEvent e;
  e.kind = EventKind::kSend;
  e.at = Entry{0, 1};
  int64_t items = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) ring.record(e);
    items += static_cast<int64_t>(
        ring.drain(batch, [](const ProtocolEvent&) {}));
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_RingRecorderRecordDrain)->Arg(1)->Arg(64)->Arg(1024);

void BM_RingRecorderProducerUnderLiveDrain(benchmark::State& state) {
  // The deployed shape: producer records flat out while the collector
  // thread drains concurrently. Measures producer-side cost including
  // cache-line ping-pong on head/tail — the number the recording-passivity
  // claim rides on.
  RingRecorder ring(0, /*capacity=*/4096);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (ring.drain(256, [](const ProtocolEvent&) {}) == 0) {
        std::this_thread::yield();
      }
    }
    while (ring.drain(256, [](const ProtocolEvent&) {}) > 0) {
    }
  });
  ProtocolEvent e;
  e.kind = EventKind::kSend;
  e.at = Entry{0, 1};
  int64_t items = 0;
  for (auto _ : state) {
    ring.record(e);
    ++items;
  }
  stop.store(true, std::memory_order_release);
  consumer.join();
  state.SetItemsProcessed(items);
  state.counters["dropped"] =
      static_cast<double>(ring.dropped());
}
BENCHMARK(BM_RingRecorderProducerUnderLiveDrain);

void BM_MailboxMpscContention(benchmark::State& state) {
  // `producers` threads hammer one mailbox while this thread drains until
  // every item has arrived — the cross-shard submit path under contention.
  const int producers = static_cast<int>(state.range(0));
  constexpr int kPerProducer = 4096;
  int64_t items = 0;
  for (auto _ : state) {
    MpscMailbox<MailItem> box;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&box, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          box.push(MailItem{static_cast<SimTime>(i),
                            static_cast<uint64_t>(p) << 32 |
                                static_cast<uint64_t>(i)});
        }
      });
    }
    const size_t want = static_cast<size_t>(producers) * kPerProducer;
    size_t got = 0;
    while (got < want) {
      size_t n = box.drain([](MailItem&&) {});
      if (n == 0) std::this_thread::yield();
      got += n;
    }
    for (std::thread& t : threads) t.join();
    items += static_cast<int64_t>(got);
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_MailboxMpscContention)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MailboxMutexContention(benchmark::State& state) {
  // Identical producer/consumer pattern through a shared mutex-guarded FIFO.
  const int producers = static_cast<int>(state.range(0));
  constexpr int kPerProducer = 4096;
  int64_t items = 0;
  for (auto _ : state) {
    std::mutex mu;
    std::queue<MailItem> q;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&mu, &q, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          std::lock_guard<std::mutex> lk(mu);
          q.push(MailItem{static_cast<SimTime>(i),
                          static_cast<uint64_t>(p) << 32 |
                              static_cast<uint64_t>(i)});
        }
      });
    }
    const size_t want = static_cast<size_t>(producers) * kPerProducer;
    size_t got = 0;
    while (got < want) {
      bool popped = false;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (!q.empty()) {
          q.pop();
          popped = true;
        }
      }
      if (popped) {
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
    for (std::thread& t : threads) t.join();
    items += static_cast<int64_t>(got);
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_MailboxMutexContention)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ThreadedSchedulerPump(benchmark::State& state, MailboxPolicy policy) {
  // End-to-end submit→execute through a live ThreadedScheduler: per item this
  // pays the mailbox push, the wake handshake, and the deadline-queue pop.
  MonotonicClock clock(1.0);
  ThreadedScheduler sched(clock, "bench", policy);
  sched.start();
  constexpr int kBurst = 1024;
  int64_t items = 0;
  for (auto _ : state) {
    const uint64_t base = sched.executed();
    for (int i = 0; i < kBurst; ++i) sched.schedule_at(0, [] {});
    while (sched.executed() < base + kBurst) std::this_thread::yield();
    items += kBurst;
  }
  sched.stop_and_join();
  state.SetItemsProcessed(items);
}
BENCHMARK_CAPTURE(BM_ThreadedSchedulerPump, batched, MailboxPolicy::kBatched)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThreadedSchedulerPump, mutex, MailboxPolicy::kMutex)
    ->Unit(benchmark::kMillisecond);

void BM_OracleDoomClosure(benchmark::State& state) {
  // A two-lane history with cross edges; doom queries exercise the memoized
  // reachability that verify() runs over every interval.
  Oracle o(2);
  o.on_process_start(IntervalId{0, 0, 1}, 0);
  o.on_process_start(IntervalId{1, 0, 1}, 0);
  constexpr Sii kLen = 2000;
  for (Sii x = 2; x <= kLen; ++x) {
    o.on_interval_start(IntervalId{0, 0, x}, IntervalId{1, 0, x - 1}, 0);
    o.on_interval_start(IntervalId{1, 0, x}, IntervalId{0, 0, x - 1}, 0);
  }
  o.on_crash(1, kLen - 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(o.doomed_count());
  }
}
BENCHMARK(BM_OracleDoomClosure);

}  // namespace

BENCHMARK_MAIN();
