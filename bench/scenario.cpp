#include "scenario.h"

#include "app/workloads.h"
#include "common/check.h"
#include "core/cluster.h"
#include "core/engine_registry.h"
#include "core/failure_injector.h"

namespace koptlog::bench {

ScenarioResult run_scenario(const ScenarioParams& params) {
  ClusterConfig cfg;
  cfg.n = params.n;
  cfg.seed = params.seed;
  cfg.protocol = params.protocol;
  cfg.fifo = params.fifo;
  cfg.enable_oracle = params.oracle;
  cfg.control_latency.base_us = params.control_base_us;
  cfg.control_latency.jitter_us = params.control_jitter_us;
  cfg.record_events = params.record_events;
  cfg.measure_tracking = params.measure_tracking;

  Cluster::AppFactory factory;
  switch (params.workload) {
    case Workload::kUniform:
      factory = make_uniform_app({.extra_send_denominator = 3, .output_every = 7});
      break;
    case Workload::kPipeline:
      factory = make_pipeline_app({.output_every = 2});
      break;
    case Workload::kClientServer:
      factory = make_client_server_app({.output_every = 1});
      break;
  }

  std::unique_ptr<Cluster> cluster_ptr =
      make_cluster_with_engine(params.engine, cfg, factory);
  KOPT_CHECK_MSG(cluster_ptr != nullptr,
                 "unknown engine '" << params.engine << "'");
  Cluster& cluster = *cluster_ptr;
  cluster.start();

  switch (params.workload) {
    case Workload::kUniform:
      inject_uniform_load(cluster, params.injections, 1'000,
                          params.load_end_us, params.ttl, params.seed * 7 + 1);
      break;
    case Workload::kPipeline:
      inject_pipeline_load(cluster, params.injections, 1'000,
                           params.load_end_us);
      break;
    case Workload::kClientServer:
      inject_client_requests(cluster, params.injections, 1'000,
                             params.load_end_us, params.seed * 11 + 3);
      break;
  }

  if (params.failures > 0) {
    apply_failure_plan(
        cluster, FailurePlan::random(Rng(params.seed).fork("bench-failures"),
                                     params.n, params.failures,
                                     params.fail_from_us, params.fail_to_us));
  }

  cluster.run_for(params.load_end_us + params.extra_run_us);
  cluster.drain();

  ScenarioResult res;
  res.stats = cluster.stats();
  res.drained_at = cluster.sim().now();
  res.outputs = cluster.outputs().size();
  // End-to-end request latency: client-server and pipeline outputs carry
  // the injection time in payload.c.
  for (const auto& out : cluster.outputs()) {
    if (out.payload.c > 0 && out.committed_at >= out.payload.c) {
      res.stats.sample("request.e2e_us",
                       static_cast<double>(out.committed_at - out.payload.c));
    }
  }
  if (params.record_events && cluster.recording() != nullptr) {
    res.trace.n = params.n;
    res.trace.events = cluster.recording()->merged();
  }
  if (params.oracle) {
    Oracle::Report rep = cluster.oracle()->verify(false);
    res.oracle_ok = rep.ok;
    res.oracle_summary = rep.summary();
    res.intervals = rep.intervals;
    res.true_orphans = rep.doomed;
    res.lost = rep.lost;
  }
  return res;
}

std::string k_label(const ProtocolConfig& protocol, int n) {
  if (protocol.pessimistic_sync_logging) return "pess";
  if (protocol.k >= n) return "N";
  return std::to_string(protocol.k);
}

}  // namespace koptlog::bench
