// Shared scenario runner for the experiment binaries: builds a cluster,
// applies a workload and failure plan, runs to quiescence, and returns the
// aggregate metrics each experiment tabulates.
#pragma once

#include <string>

#include "core/config.h"
#include "obs/trace_io.h"
#include "sim/stats.h"

namespace koptlog::bench {

enum class Workload { kUniform, kPipeline, kClientServer };

struct ScenarioParams {
  int n = 8;
  uint64_t seed = 1;
  ProtocolConfig protocol;
  bool fifo = false;
  bool oracle = false;  ///< ground-truth pass (adds true-orphan counts)
  Workload workload = Workload::kUniform;
  int injections = 200;
  SimTime load_end_us = 1'000'000;
  int ttl = 8;
  int failures = 0;
  SimTime fail_from_us = 100'000;
  SimTime fail_to_us = 900'000;
  SimTime extra_run_us = 1'000'000;  ///< slack after load before draining
  /// Control-plane (announcements, notifications) latency; raising this
  /// models slow failure-information propagation, which is what makes the
  /// Corollary-1 vs Strom-Yemini delivery race visible (E7).
  SimTime control_base_us = 150;
  SimTime control_jitter_us = 100;
  /// Recovery engine, resolved through EngineRegistry. Entries with a
  /// preset (pessimistic, strom-yemini) override `protocol`.
  std::string engine = "kopt";
  /// Record typed protocol events and return them in ScenarioResult::trace
  /// (feeds the analysis columns: critical path, hold times).
  bool record_events = false;
  /// Meter the sparse/delta wire encoding at the route boundary (passive;
  /// fills the track.* counters — see wire::TrackingMeter).
  bool measure_tracking = false;
};

struct ScenarioResult {
  Stats stats;
  SimTime drained_at = 0;     ///< simulated makespan (load + drain)
  size_t outputs = 0;         ///< distinct committed outputs
  size_t intervals = 0;       ///< oracle: intervals that ever existed
  size_t true_orphans = 0;    ///< oracle: intervals doomed by failures
  size_t lost = 0;            ///< oracle: intervals lost in crashes
  bool oracle_ok = true;
  std::string oracle_summary;
  /// The run's merged event stream (empty unless params.record_events).
  Trace trace;

  // Convenience accessors over `stats`.
  int64_t counter(const std::string& name) const { return stats.counter(name); }
  const Histogram& hist(const std::string& name) const {
    return stats.histogram(name);
  }
};

ScenarioResult run_scenario(const ScenarioParams& params);

/// Label for K columns: "pess", "0", "1", ..., "N".
std::string k_label(const ProtocolConfig& protocol, int n);

}  // namespace koptlog::bench
