// Figure-1 walkthrough — drive the protocol by hand with the manual
// harness, one event at a time, recreating the paper's worked example
// (§2-§3). Unlike the Cluster (which owns a simulator, a network and
// timers), the ManualHarness gives you the raw Process objects: you deliver
// every message yourself and inspect vectors between steps. It is the best
// way to *learn* the protocol; see bench/bench_e1_figure1.cpp for the full
// narrative and tests/figure1_test.cpp for the asserted version.
#include <iostream>

#include "core/manual.h"

using namespace koptlog;

int main() {
  // Six processes; starting incarnations/indices match the figure.
  ManualHarness h(6);
  std::vector<std::unique_ptr<Process>> p;
  for (ProcessId pid = 0; pid < 6; ++pid)
    p.push_back(h.make_process(pid, ProtocolConfig{}));
  p[0]->start(Entry{1, 2});
  p[1]->start(Entry{0, 1});
  p[2]->start(Entry{0, 1});
  p[3]->start(Entry{2, 5});
  p[4]->start(Entry{0, 1});
  p[5]->start(Entry{3, 8});
  h.tick(*p[1]);  // filler deliveries advance interval indices
  h.tick(*p[1]);

  // Step 1: a causal chain P0 -> P1 -> P3 -> P4. Each hop's delivery
  // starts a new state interval and merges the piggybacked vector.
  AppPayload chain;
  chain.kind = ScriptedApp::kChain;
  chain.a = ScriptedApp::route({1, 3, 4});
  p[0]->handle_app_msg(h.env_msg(0, chain));
  AppMsg m0 = h.take_sent();
  p[1]->handle_app_msg(m0);
  AppMsg m1 = h.take_sent();
  p[3]->handle_app_msg(m1);
  AppMsg m2 = h.take_sent();
  p[4]->handle_app_msg(m2);
  std::cout << "P4 after the chain: " << p[4]->tdv().str()
            << "   <- the paper's {(1,3)_0,(0,4)_1,(2,6)_3,(0,2)_4}\n";

  // Step 2: P1 flushes (making (0,4)_1 stable) and then crashes with one
  // more interval, (0,5)_1, still volatile.
  p[1]->force_flush();
  h.tick(*p[1]);
  p[1]->crash();
  p[1]->restart();
  Announcement r1 = h.announcements.back();
  std::cout << "P1 failed; r1 announces incarnation " << r1.ended.inc
            << " ended at index " << r1.ended.sii << "\n";

  // Step 3: r1 reaches P4. P4 depends only on the *surviving* (0,4)_1, so
  // it does not roll back — and by Theorem 2 it may drop the entry, since
  // r1 doubles as a notification that (0,4)_1 is stable (Corollary 1).
  p[4]->handle_announcement(r1);
  std::cout << "P4 after r1: rollbacks=" << p[4]->rollbacks()
            << ", tdv=" << p[4]->tdv().str() << "\n";

  // Step 4: a message from P1's new incarnation reaches P5, which holds no
  // entry for P1 at all — delivered instantly, no waiting for r1.
  AppPayload to5;
  to5.kind = ScriptedApp::kChain;
  to5.a = ScriptedApp::route({5});
  p[1]->handle_app_msg(h.env_msg(1, to5));
  AppMsg m7 = h.take_sent();
  p[5]->handle_app_msg(m7);
  std::cout << "P5 delivered m7 from incarnation " << m7.born_of.inc
            << " without delay: buffer=" << p[5]->receive_buffer_size()
            << ", tdv=" << p[5]->tdv().str() << "\n";

  std::cout << "\nDone. Next: bench_e1_figure1 (full narrative), "
               "tests/figure1_test.cpp (assertions).\n";
  return 0;
}
