// Quickstart: write a PWD application, run it on a K-optimistic logging
// cluster, crash a process, and watch the recovery layer put the world back
// together.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The application below is a tiny replicated counter: every request
// increments a local counter and forwards a share to a pseudo-random peer;
// every 5th delivery reports the counter to the outside world. The only
// contract the recovery layer asks of you:
//   * on_deliver must be deterministic in (state, message) — it is replayed
//     after failures;
//   * snapshot()/restore() must round-trip your state;
//   * state_hash() must digest it (used to verify replay fidelity).
#include <cstring>
#include <iostream>

#include "core/cluster.h"

using namespace koptlog;

namespace {

class CounterApp final : public Application {
 public:
  void on_deliver(AppContext& ctx, ProcessId from,
                  const AppPayload& msg) override {
    (void)from;
    counter_ += msg.a;
    ++deliveries_;
    if (msg.ttl > 0) {
      AppPayload fwd;
      fwd.a = msg.a / 2;
      fwd.ttl = msg.ttl - 1;
      // Deterministic pseudo-random peer: derived from state, not rand().
      auto peer = static_cast<ProcessId>(
          hash_combine(static_cast<uint64_t>(counter_),
                       static_cast<uint64_t>(deliveries_)) %
          static_cast<uint64_t>(ctx.system_size()));
      if (peer == ctx.self()) peer = (peer + 1) % ctx.system_size();
      ctx.send(peer, fwd);
    }
    if (deliveries_ % 5 == 0) {
      AppPayload report;
      report.a = counter_;
      ctx.output(report);  // committed only when it can never be revoked
    }
  }

  std::vector<uint8_t> snapshot() const override {
    std::vector<uint8_t> out(sizeof(counter_) + sizeof(deliveries_));
    std::memcpy(out.data(), &counter_, sizeof(counter_));
    std::memcpy(out.data() + sizeof(counter_), &deliveries_,
                sizeof(deliveries_));
    return out;
  }
  void restore(std::span<const uint8_t> bytes) override {
    std::memcpy(&counter_, bytes.data(), sizeof(counter_));
    std::memcpy(&deliveries_, bytes.data() + sizeof(counter_),
                sizeof(deliveries_));
  }
  uint64_t state_hash() const override {
    return hash_combine(static_cast<uint64_t>(counter_),
                        static_cast<uint64_t>(deliveries_));
  }

 private:
  int64_t counter_ = 0;
  int64_t deliveries_ = 0;
};

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 2026;
  cfg.protocol.k = 2;  // the degree of optimism — try 0 or cfg.n!
  cfg.enable_oracle = true;

  Cluster cluster(cfg, [](ProcessId) { return std::make_unique<CounterApp>(); });
  cluster.start();

  // The outside world sends 25 requests over the first 100 ms.
  for (int i = 0; i < 25; ++i) {
    AppPayload req;
    req.a = 100 + i;
    req.ttl = 6;
    cluster.inject_at(1'000 + i * 4'000, static_cast<ProcessId>(i % cfg.n),
                      req);
  }

  // Process 1 crashes mid-run and restarts automatically.
  cluster.fail_at(50'000, 1);

  cluster.run_for(500'000);
  cluster.drain();  // finish every in-flight message and output

  std::cout << "delivered " << cluster.stats().counter("msgs.delivered")
            << " messages, committed " << cluster.outputs().size()
            << " outputs\n"
            << "crashes: " << cluster.stats().counter("crash.count")
            << ", peer rollbacks: "
            << cluster.stats().counter("rollback.count")
            << ", orphan messages discarded: "
            << cluster.stats().counter("msgs.discarded_orphan_recv") << "\n";

  // The ground-truth oracle re-derives every dependency and checks the
  // paper's theorems against what actually happened.
  Oracle::Report report = cluster.oracle()->verify(/*strict_thm4=*/true);
  std::cout << "oracle: " << report.summary() << "\n";
  return report.ok ? 0 : 1;
}
