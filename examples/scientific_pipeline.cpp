// Scientific pipeline scenario — the paper's other motivating workload
// (§4.1): a long-running computation where the primary metric is total
// execution time, failures are rare, and optimistic logging is usually the
// right choice because the failure-free overhead dominates.
//
// A 6-stage pipeline processes a batch of items; stage 3 crashes twice.
// The run is shown twice:
//   1. traditional optimistic (K=N): minimal overhead, failure triggers a
//      rollback cascade downstream of the crash, replay fixes everything;
//   2. pessimistic: no cascade, but every item pays the synchronous write
//      at every stage.
// Both runs enable reliable delivery (sender-based retransmission, the
// paper's §2 fn. 3 remedy for lost in-transit messages), so BOTH complete
// all 120 items exactly once: the recovery contract changes the cost
// profile — rollbacks and replay vs. synchronous writes — never the
// answer.
#include <iostream>
#include <set>

#include "app/workloads.h"
#include "baseline/pessimistic.h"
#include "core/cluster.h"

using namespace koptlog;

namespace {

struct RunResult {
  std::set<int64_t> item_ids;  // committed output item ids
  int64_t rollbacks = 0;
  int64_t undone = 0;
  int64_t replayed = 0;
  int64_t sync_writes = 0;
  SimTime finished_at = 0;
};

RunResult run_pipeline(const ProtocolConfig& protocol) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 4242;
  cfg.protocol = protocol;
  cfg.protocol.storage.sync_write_us = 1'500;
  cfg.protocol.reliable_delivery = true;
  cfg.enable_oracle = true;

  Cluster cluster(cfg, make_pipeline_app({.output_every = 1}));
  cluster.start();
  inject_pipeline_load(cluster, 120, 1'000, 400'000);
  cluster.fail_at(120'000, 3);
  cluster.fail_at(260'000, 3);
  cluster.run_for(1'500'000);
  cluster.drain();

  Oracle::Report rep = cluster.oracle()->verify();
  if (!rep.ok) {
    std::cerr << "oracle violation!\n" << rep.summary() << "\n";
    std::exit(1);
  }

  RunResult r;
  for (const auto& o : cluster.outputs()) r.item_ids.insert(o.payload.b);
  r.rollbacks = cluster.stats().counter("rollback.count");
  r.undone = cluster.stats().counter("rollback.undone_intervals");
  r.replayed = cluster.stats().counter("restart.replayed_msgs");
  r.sync_writes = cluster.stats().counter("storage.sync_writes");
  r.finished_at = cluster.sim().now();
  return r;
}

void report(const char* name, const RunResult& r) {
  std::cout << name << ":\n"
            << "  items completed      : " << r.item_ids.size() << "\n"
            << "  peer rollbacks       : " << r.rollbacks << "\n"
            << "  intervals undone     : " << r.undone << "\n"
            << "  messages replayed    : " << r.replayed << "\n"
            << "  synchronous writes   : " << r.sync_writes << "\n"
            << "  finished at (sim ms) : " << r.finished_at / 1000 << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Scientific pipeline: 6 stages, 120 items, stage 3 crashes "
               "twice.\n\n";
  RunResult optimistic = run_pipeline(ProtocolConfig::traditional_optimistic());
  report("traditional optimistic (K=N)", optimistic);
  RunResult pessimistic = run_pipeline(pessimistic_baseline());
  report("pessimistic (sync logging)", pessimistic);

  bool identical = optimistic.item_ids == pessimistic.item_ids &&
                   optimistic.item_ids.size() == 120;
  std::cout << "all 120 items completed exactly once in both runs? "
            << (identical ? "yes" : "NO") << " (optimistic "
            << optimistic.item_ids.size() << "/120, pessimistic "
            << pessimistic.item_ids.size()
            << "/120) — the recovery layer changes the cost profile, never "
               "the answer.\n";
  return identical ? 0 : 1;
}
