// Telecom switch scenario — the paper's motivating application (§1, §4.1):
// a continuously-running, service-providing system that must stay
// responsive during normal operation *and* recover fast when software
// faults crash a call server.
//
// The same call-processing workload (client-server request/reply with
// outside-world call-setup confirmations) runs under four recovery
// configurations, with an identical burst of three crashes:
//
//     pessimistic  — classical telecom choice [Huang & Wang 95]
//     K=0          — same no-revocation guarantee, asynchronous logging
//     K=2          — the paper's tunable middle ground
//     K=N          — traditional optimistic logging
//
// Watch the two costs move in opposite directions as K grows: call-setup
// latency (failure-free overhead) falls, rollback disruption (recovery
// cost) rises. K is the knob.
#include <iostream>

#include "app/workloads.h"
#include "baseline/pessimistic.h"
#include "core/cluster.h"
#include "core/failure_injector.h"
#include "core/metrics.h"

using namespace koptlog;

namespace {

struct Outcome {
  double call_setup_p99_us = 0;
  double call_setup_mean_us = 0;
  int64_t rollbacks = 0;
  int64_t dropped_calls = 0;  // orphan messages discarded
  size_t confirmations = 0;
};

Outcome run_switch(const ProtocolConfig& protocol, const char* /*name*/) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 7;
  cfg.protocol = protocol;
  // A switch under load: expensive stable storage (3 ms per synchronous
  // write — think replicated stable storage) is exactly the regime where
  // pessimistic logging hurts, while the optimistic family amortizes the
  // same storage through frequent asynchronous flushes.
  cfg.protocol.storage.sync_write_us = 3'000;
  cfg.protocol.flush_interval_us = 2'000;
  cfg.protocol.notify_interval_us = 4'000;
  cfg.enable_oracle = false;

  Cluster cluster(cfg, make_client_server_app({.output_every = 1}));
  cluster.start();
  inject_client_requests(cluster, 400, 1'000, 1'200'000, /*seed=*/99);
  apply_failure_plan(cluster, FailurePlan::random(Rng(7).fork("faults"), cfg.n,
                                                  5, 150'000, 1'100'000));
  cluster.run_for(2'500'000);
  cluster.drain();

  Outcome out;
  Histogram e2e;
  for (const auto& o : cluster.outputs()) {
    if (o.payload.c > 0 && o.committed_at >= o.payload.c)
      e2e.add(static_cast<double>(o.committed_at - o.payload.c));
  }
  out.call_setup_mean_us = e2e.mean();
  out.call_setup_p99_us = e2e.p99();
  out.rollbacks = cluster.stats().counter("rollback.count");
  out.dropped_calls = cluster.stats().counter("msgs.discarded_orphan_recv");
  out.confirmations = cluster.outputs().size();
  return out;
}

}  // namespace

int main() {
  std::cout
      << "Telecom switch: 6 call servers, 400 call setups, 5 crashes,\n"
      << "3 ms synchronous stable-storage writes. Pick your K.\n\n";

  Table t({"config", "setup_mean_us", "setup_p99_us", "rollbacks",
           "orphaned_msgs", "confirmed_calls"});
  std::vector<std::pair<const char*, ProtocolConfig>> configs = {
      {"pessimistic", pessimistic_baseline()},
      {"K=0", k_optimistic(0)},
      {"K=2", k_optimistic(2)},
      {"K=N (optimistic)", ProtocolConfig::traditional_optimistic()}};
  for (auto& [name, protocol] : configs) {
    Outcome o = run_switch(protocol, name);
    t.row()
        .cell(name)
        .cell(o.call_setup_mean_us, 0)
        .cell(o.call_setup_p99_us, 0)
        .cell(o.rollbacks)
        .cell(o.dropped_calls)
        .cell(static_cast<int64_t>(o.confirmations));
  }
  t.print(std::cout, "one workload, four recovery contracts");
  std::cout
      << "The paper's point (§4.1): neither extreme fits every release of a\n"
      << "switch. K-optimistic logging makes the tradeoff a runtime "
         "parameter.\n";
  return 0;
}
