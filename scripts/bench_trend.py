#!/usr/bin/env python3
"""Fold BENCH_*.json files from multiple runs into trajectory tables.

Every bench binary writes a machine-readable BENCH_<name>.json next to its
stdout report (see BenchJson in src/core/metrics.h). To track how the
numbers move across commits, snapshot those files into one directory per
run (e.g. trends/2026-08-08/BENCH_*.json) and point this tool at the run
directories (or at individual files — each file is one run):

    scripts/bench_trend.py trends/*/            # dirs: label = dir name
    scripts/bench_trend.py old/BENCH_e13_storage.json BENCH_e13_storage.json

For each bench name it prints one trajectory table per headline metric and
per numeric table column: rows are the (label, row-key) points, columns are
the runs in the order given, plus the delta between the first and last run.
Non-numeric cells (verdicts) are folded into a per-run "flags" line that
calls out anything that is not "ok"-ish, so an AUDIT FAIL in an old
snapshot is loud. Stdlib only; no third-party deps.
"""

import argparse
import json
import os
import sys
from collections import OrderedDict

#: The BENCH_*.json contract (BenchJson in src/core/metrics.h). --check
#: fails a file that drifts from this shape, so the committed trend
#: snapshots stay foldable by this tool and comparable across commits.
SCHEMA_KEYS = {"bench": str, "params": dict, "metrics": dict, "tables": list}


def check_health_file(path, problems):
    """Validate one HEALTH_*.jsonl sidecar (schema v1, see
    src/obs/health/health_io.h): meta header first with ascending bucket
    bounds, then per-domain sample lines whose t_us never regresses and
    whose histogram bucket arrays match the meta (finite bounds + overflow).
    A torn final line — a live writer mid-append — is tolerated."""
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().split("\n")
    except OSError as e:
        problems.append(f"{path}: unreadable: {e}")
        return
    # A trailing newline leaves one empty entry; anything after it that
    # fails to parse is the tolerated torn tail.
    torn_ok = bool(lines) and lines[-1] != ""
    lines = [l for l in lines if l]
    if not lines:
        problems.append(f"{path}: empty sidecar")
        return
    n_buckets = None
    last_t = {}
    n_samples = 0
    for i, line in enumerate(lines):
        is_last = i == len(lines) - 1
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if not (is_last and torn_ok):
                problems.append(f"{path}: line {i + 1}: not valid JSON")
            continue
        kind = doc.get("kind")
        if i == 0:
            if kind != "health_meta":
                problems.append(
                    f"{path}: first line must be the health_meta header")
                continue
        if kind == "health_meta":
            if doc.get("v") != 1:
                problems.append(f"{path}: unsupported schema version "
                                f"{doc.get('v')!r} (want 1)")
            bounds = doc.get("buckets")
            if not isinstance(bounds, list) or not bounds or \
                    any(not is_number(b) for b in bounds) or \
                    any(a >= b for a, b in zip(bounds, bounds[1:])):
                problems.append(
                    f"{path}: health_meta buckets must be an ascending "
                    f"numeric list")
            else:
                n_buckets = len(bounds) + 1  # finite bounds + overflow
            continue
        if kind != "health":
            continue  # interleaved trace lines are legal
        if doc.get("v") != 1:
            problems.append(
                f"{path}: line {i + 1}: health line v={doc.get('v')!r}")
            continue
        dom = doc.get("dom")
        t_us = doc.get("t_us")
        if not isinstance(dom, str) or not dom or not is_number(t_us):
            problems.append(f"{path}: line {i + 1}: missing dom/t_us")
            continue
        if t_us < last_t.get(dom, 0):
            problems.append(
                f"{path}: line {i + 1}: t_us regressed for dom '{dom}' "
                f"({t_us} < {last_t[dom]})")
        last_t[dom] = t_us
        n_samples += 1
        for name, h in doc.get("h", {}).items():
            b = h.get("b") if isinstance(h, dict) else None
            if n_buckets is not None and (
                    not isinstance(b, list) or len(b) != n_buckets):
                problems.append(
                    f"{path}: line {i + 1}: histogram '{name}' has "
                    f"{len(b) if isinstance(b, list) else 'no'} buckets, "
                    f"want {n_buckets}")
    if n_buckets is None:
        problems.append(f"{path}: no health_meta header found")
    if n_samples == 0:
        problems.append(f"{path}: no health sample lines")


def load_health(path):
    """Fold one HEALTH_*.jsonl into {'dom/metric': final_value}: counters
    and gauges by value, histograms by observation count — the cumulative
    totals of the run, comparable across snapshots."""
    out = {}
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail
                if doc.get("kind") != "health":
                    continue
                dom = doc.get("dom", "?")
                for name, v in doc.get("c", {}).items():
                    out[f"{dom}/{name}"] = v
                for name, v in doc.get("g", {}).items():
                    out[f"{dom}/{name}"] = v
                for name, h in doc.get("h", {}).items():
                    if isinstance(h, dict):
                        out[f"{dom}/{name}.n"] = h.get("n")
    except OSError:
        pass
    return out


def health_files_in(path):
    if os.path.isdir(path):
        return [os.path.join(path, n) for n in sorted(os.listdir(path))
                if n.startswith("HEALTH_") and n.endswith(".jsonl")]
    base = os.path.basename(path)
    if base.startswith("HEALTH_") and base.endswith(".jsonl"):
        return [path]
    return []


def check_doc(path, doc, problems):
    """Validate one BENCH_*.json document against the BenchJson schema."""
    for key, typ in SCHEMA_KEYS.items():
        if key not in doc:
            problems.append(f"{path}: missing required key '{key}'")
        elif not isinstance(doc[key], typ):
            problems.append(
                f"{path}: '{key}' is {type(doc[key]).__name__}, "
                f"want {typ.__name__}")
    for k, v in doc.get("metrics", {}).items():
        if not is_number(v):
            problems.append(f"{path}: metric '{k}' is not numeric")
    for t in doc.get("tables", []):
        if not isinstance(t, dict):
            problems.append(f"{path}: table entry is not an object")
            continue
        title = t.get("title")
        if not isinstance(title, str) or not title:
            problems.append(f"{path}: table without a 'title' string")
            title = "<untitled>"
        cols = t.get("columns")
        if not isinstance(cols, list) or not all(
                isinstance(c, str) for c in cols):
            problems.append(
                f"{path}: table '{title}' needs a list of column names")
            continue
        rows = t.get("rows")
        if not isinstance(rows, list):
            problems.append(f"{path}: table '{title}' needs a 'rows' list")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(cols):
                problems.append(
                    f"{path}: table '{title}' row {i} does not match its "
                    f"{len(cols)} columns")


def check_runs(paths):
    """--check: every BENCH_*.json in the given paths must parse and match
    the schema, and every HEALTH_*.jsonl sidecar must match the health
    series schema. Returns a problem list (empty = pass)."""
    problems = []
    n_files = 0
    for path in paths:
        health = health_files_in(path)
        if os.path.isdir(path):
            files = [os.path.join(path, n) for n in sorted(os.listdir(path))
                     if n.startswith("BENCH_") and n.endswith(".json")]
            if not files and not health:
                problems.append(f"{path}: no BENCH_*.json files")
        elif health:
            files = []
        else:
            files = [path]
        for f in files:
            n_files += 1
            try:
                with open(f, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as e:
                problems.append(f"{f}: unreadable: {e}")
                continue
            check_doc(f, doc, problems)
        for f in health:
            n_files += 1
            check_health_file(f, problems)
    if n_files == 0:
        problems.append("no BENCH_*.json files found")
    return problems, n_files


def load_run(path):
    """Return (label, {bench_name: doc}) for a run directory or file."""
    docs = {}
    if os.path.isdir(path):
        label = os.path.basename(os.path.normpath(path))
        names = sorted(os.listdir(path))
        files = [os.path.join(path, n) for n in names
                 if n.startswith("BENCH_") and n.endswith(".json")]
    else:
        label = os.path.basename(path)
        files = [path]
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {f}: {e}", file=sys.stderr)
            continue
        name = doc.get("bench")
        if not name:
            print(f"warning: skipping {f}: no 'bench' field", file=sys.stderr)
            continue
        docs[name] = doc
    return label, docs


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def looks_like_status(v):
    return isinstance(v, str) and any(
        w in v.lower() for w in ("ok", "fail", "audit", "error"))


def param_column_count(columns, rows):
    """A table's leading columns name the parameter point (backend, window,
    K, ...) and the rest carry metrics. Treat everything up to the last
    non-status string column as the point, so rows match across runs even
    when the table gained or lost rows."""
    last = -1
    for i in range(len(columns)):
        vals = [r[i] for r in rows if i < len(r)]
        if any(isinstance(v, str) for v in vals) \
                and not any(looks_like_status(v) for v in vals):
            last = i
    return last + 1 if last >= 0 else 1


def row_key(columns, row, nparams):
    parts = [f"{col}={cell}"
             for col, cell in zip(columns[:nparams], row[:nparams])]
    return " ".join(parts) if parts else "row0"


def print_table(title, col_labels, rows):
    widths = [len(c) for c in ["point"] + col_labels]
    body = []
    for point, cells in rows:
        line = [point] + [fmt(c) for c in cells]
        widths = [max(w, len(s)) for w, s in zip(widths, line)]
        body.append(line)
    print(f"== {title} ==")
    header = ["point"] + col_labels
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for line in body:
        print("  ".join(s.rjust(w) for s, w in zip(line, widths)))
    print()


def delta(first, last):
    if not (is_number(first) and is_number(last)):
        return None
    if first == 0:
        return None
    return f"{100.0 * (last - first) / abs(first):+.1f}%"


def main():
    ap = argparse.ArgumentParser(
        description="fold BENCH_*.json across runs into trajectory tables")
    ap.add_argument("runs", nargs="+",
                    help="run directories (BENCH_*.json inside) or files")
    ap.add_argument("--bench", help="only this bench name (e.g. e13_storage)")
    ap.add_argument("--metric", help="only columns whose name contains this")
    ap.add_argument("--check", action="store_true",
                    help="validate every BENCH_*.json against the BenchJson "
                         "schema and every HEALTH_*.jsonl against the health "
                         "series schema; exit nonzero on drift (CI mode)")
    ap.add_argument("--max-delta", type=float, metavar="PCT",
                    help="regression threshold: exit nonzero if any folded "
                         "health-series metric moved more than PCT%% between "
                         "the first and last run")
    args = ap.parse_args()

    if args.check:
        problems, n_files = check_runs(args.runs)
        if problems:
            print(f"bench_trend --check: {len(problems)} problem(s):",
                  file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"bench_trend --check: {n_files} file(s) OK")
        return 0

    runs = [load_run(p) for p in args.runs]
    runs = [(label, docs) for label, docs in runs if docs]
    have_health = any(health_files_in(p) for p in args.runs)
    if not runs and not have_health:
        print("no BENCH_*.json or HEALTH_*.jsonl found in the given paths",
              file=sys.stderr)
        return 1

    bench_names = OrderedDict()
    for _, docs in runs:
        for name in docs:
            bench_names.setdefault(name, True)

    run_labels = [label for label, _ in runs]
    for name in bench_names:
        if args.bench and name != args.bench:
            continue
        print(f"#### {name} ({len(runs)} run(s): {', '.join(run_labels)})\n")

        # Headline metrics trajectory.
        metric_keys = OrderedDict()
        for _, docs in runs:
            for k in docs.get(name, {}).get("metrics", {}):
                metric_keys.setdefault(k, True)
        metric_rows = []
        for k in metric_keys:
            if args.metric and args.metric not in k:
                continue
            vals = [docs.get(name, {}).get("metrics", {}).get(k)
                    for _, docs in runs]
            metric_rows.append((k, vals + [delta(vals[0], vals[-1])]))
        if metric_rows:
            print_table("metrics", run_labels + ["delta"], metric_rows)

        # Per-table numeric columns, keyed by the row's parameter point.
        table_titles = OrderedDict()
        for _, docs in runs:
            for t in docs.get(name, {}).get("tables", []):
                table_titles.setdefault(t["title"], True)
        for title in table_titles:
            per_run = []
            for _, docs in runs:
                tab = next((t for t in docs.get(name, {}).get("tables", [])
                            if t["title"] == title), None)
                if tab is None:
                    per_run.append({})
                    continue
                nparams = param_column_count(tab["columns"], tab["rows"])
                indexed = OrderedDict()
                for row in tab["rows"]:
                    indexed[row_key(tab["columns"], row, nparams)] = \
                        dict(zip(tab["columns"], row))
                per_run.append((tab["columns"], indexed))

            columns = next((c for c in per_run if c), None)
            if columns is None:
                continue
            col_names, _ = columns
            points = OrderedDict()
            for entry in per_run:
                if entry:
                    for p in entry[1]:
                        points.setdefault(p, True)

            nparams = param_column_count(
                col_names,
                [list(r.values()) for entry in per_run if entry
                 for r in entry[1].values()])
            numeric_cols = [c for c in col_names[nparams:]
                            if any(entry and any(
                                is_number(entry[1].get(p, {}).get(c))
                                for p in points)
                                for entry in per_run)]
            # Status columns (verdicts): call out anything that isn't ok.
            flags = []
            for c in col_names:
                if c in numeric_cols:
                    continue
                col_vals = [row.get(c) for entry in per_run if entry
                            for row in entry[1].values()]
                if not any(looks_like_status(v) for v in col_vals):
                    continue
                for (label, _), entry in zip(runs, per_run):
                    if not entry:
                        continue
                    for p, row in entry[1].items():
                        v = row.get(c)
                        if isinstance(v, str) and "ok" not in v.lower():
                            flags.append(f"{label} {p}: {c}={v}")
            for c in numeric_cols:
                if args.metric and args.metric not in c:
                    continue
                rows = []
                for p in points:
                    vals = [entry[1].get(p, {}).get(c) if entry else None
                            for entry in per_run]
                    rows.append((p, vals + [delta(vals[0], vals[-1])]))
                print_table(f"{title} :: {c}", run_labels + ["delta"], rows)
            if flags:
                print("flags:")
                for f in flags:
                    print(f"  !! {f}")
                print()

    # Health sidecar trajectories: the final cumulative value of every
    # dom/metric across runs, with the same first->last delta column the
    # BENCH tables get. --max-delta turns big moves into a CI failure.
    health_runs = []
    for path in args.runs:
        series = {}
        for f in health_files_in(path):
            name = os.path.basename(f)[len("HEALTH_"):-len(".jsonl")]
            for key, v in load_health(f).items():
                series[f"{name} {key}"] = v
        if series:
            label = os.path.basename(os.path.normpath(path))
            health_runs.append((label, series))
    regressions = []
    if health_runs:
        print(f"#### health series ({len(health_runs)} run(s): "
              f"{', '.join(l for l, _ in health_runs)})\n")
        keys = OrderedDict()
        for _, series in health_runs:
            for k in series:
                keys.setdefault(k, True)
        rows = []
        for k in keys:
            if args.metric and args.metric not in k:
                continue
            vals = [series.get(k) for _, series in health_runs]
            d = delta(vals[0], vals[-1])
            rows.append((k, vals + [d]))
            if args.max_delta is not None and d is not None:
                moved = abs(float(d.rstrip("%")))
                if moved > args.max_delta:
                    regressions.append(f"{k}: {d} (limit {args.max_delta}%)")
        print_table("health metrics",
                    [l for l, _ in health_runs] + ["delta"], rows)
    if regressions:
        print(f"bench_trend --max-delta: {len(regressions)} metric(s) over "
              f"threshold:", file=sys.stderr)
        for r in regressions:
            print(f"  !! {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
