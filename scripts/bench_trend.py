#!/usr/bin/env python3
"""Fold BENCH_*.json files from multiple runs into trajectory tables.

Every bench binary writes a machine-readable BENCH_<name>.json next to its
stdout report (see BenchJson in src/core/metrics.h). To track how the
numbers move across commits, snapshot those files into one directory per
run (e.g. trends/2026-08-08/BENCH_*.json) and point this tool at the run
directories (or at individual files — each file is one run):

    scripts/bench_trend.py trends/*/            # dirs: label = dir name
    scripts/bench_trend.py old/BENCH_e13_storage.json BENCH_e13_storage.json

For each bench name it prints one trajectory table per headline metric and
per numeric table column: rows are the (label, row-key) points, columns are
the runs in the order given, plus the delta between the first and last run.
Non-numeric cells (verdicts) are folded into a per-run "flags" line that
calls out anything that is not "ok"-ish, so an AUDIT FAIL in an old
snapshot is loud. Stdlib only; no third-party deps.
"""

import argparse
import json
import os
import sys
from collections import OrderedDict

#: The BENCH_*.json contract (BenchJson in src/core/metrics.h). --check
#: fails a file that drifts from this shape, so the committed trend
#: snapshots stay foldable by this tool and comparable across commits.
SCHEMA_KEYS = {"bench": str, "params": dict, "metrics": dict, "tables": list}


def check_doc(path, doc, problems):
    """Validate one BENCH_*.json document against the BenchJson schema."""
    for key, typ in SCHEMA_KEYS.items():
        if key not in doc:
            problems.append(f"{path}: missing required key '{key}'")
        elif not isinstance(doc[key], typ):
            problems.append(
                f"{path}: '{key}' is {type(doc[key]).__name__}, "
                f"want {typ.__name__}")
    for k, v in doc.get("metrics", {}).items():
        if not is_number(v):
            problems.append(f"{path}: metric '{k}' is not numeric")
    for t in doc.get("tables", []):
        if not isinstance(t, dict):
            problems.append(f"{path}: table entry is not an object")
            continue
        title = t.get("title")
        if not isinstance(title, str) or not title:
            problems.append(f"{path}: table without a 'title' string")
            title = "<untitled>"
        cols = t.get("columns")
        if not isinstance(cols, list) or not all(
                isinstance(c, str) for c in cols):
            problems.append(
                f"{path}: table '{title}' needs a list of column names")
            continue
        rows = t.get("rows")
        if not isinstance(rows, list):
            problems.append(f"{path}: table '{title}' needs a 'rows' list")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(cols):
                problems.append(
                    f"{path}: table '{title}' row {i} does not match its "
                    f"{len(cols)} columns")


def check_runs(paths):
    """--check: every BENCH_*.json in the given paths must parse and match
    the schema. Returns a problem list (empty = pass)."""
    problems = []
    n_files = 0
    for path in paths:
        if os.path.isdir(path):
            files = [os.path.join(path, n) for n in sorted(os.listdir(path))
                     if n.startswith("BENCH_") and n.endswith(".json")]
            if not files:
                problems.append(f"{path}: no BENCH_*.json files")
        else:
            files = [path]
        for f in files:
            n_files += 1
            try:
                with open(f, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as e:
                problems.append(f"{f}: unreadable: {e}")
                continue
            check_doc(f, doc, problems)
    if n_files == 0:
        problems.append("no BENCH_*.json files found")
    return problems, n_files


def load_run(path):
    """Return (label, {bench_name: doc}) for a run directory or file."""
    docs = {}
    if os.path.isdir(path):
        label = os.path.basename(os.path.normpath(path))
        names = sorted(os.listdir(path))
        files = [os.path.join(path, n) for n in names
                 if n.startswith("BENCH_") and n.endswith(".json")]
    else:
        label = os.path.basename(path)
        files = [path]
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {f}: {e}", file=sys.stderr)
            continue
        name = doc.get("bench")
        if not name:
            print(f"warning: skipping {f}: no 'bench' field", file=sys.stderr)
            continue
        docs[name] = doc
    return label, docs


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def looks_like_status(v):
    return isinstance(v, str) and any(
        w in v.lower() for w in ("ok", "fail", "audit", "error"))


def param_column_count(columns, rows):
    """A table's leading columns name the parameter point (backend, window,
    K, ...) and the rest carry metrics. Treat everything up to the last
    non-status string column as the point, so rows match across runs even
    when the table gained or lost rows."""
    last = -1
    for i in range(len(columns)):
        vals = [r[i] for r in rows if i < len(r)]
        if any(isinstance(v, str) for v in vals) \
                and not any(looks_like_status(v) for v in vals):
            last = i
    return last + 1 if last >= 0 else 1


def row_key(columns, row, nparams):
    parts = [f"{col}={cell}"
             for col, cell in zip(columns[:nparams], row[:nparams])]
    return " ".join(parts) if parts else "row0"


def print_table(title, col_labels, rows):
    widths = [len(c) for c in ["point"] + col_labels]
    body = []
    for point, cells in rows:
        line = [point] + [fmt(c) for c in cells]
        widths = [max(w, len(s)) for w, s in zip(widths, line)]
        body.append(line)
    print(f"== {title} ==")
    header = ["point"] + col_labels
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for line in body:
        print("  ".join(s.rjust(w) for s, w in zip(line, widths)))
    print()


def delta(first, last):
    if not (is_number(first) and is_number(last)):
        return None
    if first == 0:
        return None
    return f"{100.0 * (last - first) / abs(first):+.1f}%"


def main():
    ap = argparse.ArgumentParser(
        description="fold BENCH_*.json across runs into trajectory tables")
    ap.add_argument("runs", nargs="+",
                    help="run directories (BENCH_*.json inside) or files")
    ap.add_argument("--bench", help="only this bench name (e.g. e13_storage)")
    ap.add_argument("--metric", help="only columns whose name contains this")
    ap.add_argument("--check", action="store_true",
                    help="validate every BENCH_*.json against the BenchJson "
                         "schema and exit nonzero on drift (CI mode)")
    args = ap.parse_args()

    if args.check:
        problems, n_files = check_runs(args.runs)
        if problems:
            print(f"bench_trend --check: {len(problems)} problem(s):",
                  file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"bench_trend --check: {n_files} file(s) OK")
        return 0

    runs = [load_run(p) for p in args.runs]
    runs = [(label, docs) for label, docs in runs if docs]
    if not runs:
        print("no BENCH_*.json found in the given paths", file=sys.stderr)
        return 1

    bench_names = OrderedDict()
    for _, docs in runs:
        for name in docs:
            bench_names.setdefault(name, True)

    run_labels = [label for label, _ in runs]
    for name in bench_names:
        if args.bench and name != args.bench:
            continue
        print(f"#### {name} ({len(runs)} run(s): {', '.join(run_labels)})\n")

        # Headline metrics trajectory.
        metric_keys = OrderedDict()
        for _, docs in runs:
            for k in docs.get(name, {}).get("metrics", {}):
                metric_keys.setdefault(k, True)
        metric_rows = []
        for k in metric_keys:
            if args.metric and args.metric not in k:
                continue
            vals = [docs.get(name, {}).get("metrics", {}).get(k)
                    for _, docs in runs]
            metric_rows.append((k, vals + [delta(vals[0], vals[-1])]))
        if metric_rows:
            print_table("metrics", run_labels + ["delta"], metric_rows)

        # Per-table numeric columns, keyed by the row's parameter point.
        table_titles = OrderedDict()
        for _, docs in runs:
            for t in docs.get(name, {}).get("tables", []):
                table_titles.setdefault(t["title"], True)
        for title in table_titles:
            per_run = []
            for _, docs in runs:
                tab = next((t for t in docs.get(name, {}).get("tables", [])
                            if t["title"] == title), None)
                if tab is None:
                    per_run.append({})
                    continue
                nparams = param_column_count(tab["columns"], tab["rows"])
                indexed = OrderedDict()
                for row in tab["rows"]:
                    indexed[row_key(tab["columns"], row, nparams)] = \
                        dict(zip(tab["columns"], row))
                per_run.append((tab["columns"], indexed))

            columns = next((c for c in per_run if c), None)
            if columns is None:
                continue
            col_names, _ = columns
            points = OrderedDict()
            for entry in per_run:
                if entry:
                    for p in entry[1]:
                        points.setdefault(p, True)

            nparams = param_column_count(
                col_names,
                [list(r.values()) for entry in per_run if entry
                 for r in entry[1].values()])
            numeric_cols = [c for c in col_names[nparams:]
                            if any(entry and any(
                                is_number(entry[1].get(p, {}).get(c))
                                for p in points)
                                for entry in per_run)]
            # Status columns (verdicts): call out anything that isn't ok.
            flags = []
            for c in col_names:
                if c in numeric_cols:
                    continue
                col_vals = [row.get(c) for entry in per_run if entry
                            for row in entry[1].values()]
                if not any(looks_like_status(v) for v in col_vals):
                    continue
                for (label, _), entry in zip(runs, per_run):
                    if not entry:
                        continue
                    for p, row in entry[1].items():
                        v = row.get(c)
                        if isinstance(v, str) and "ok" not in v.lower():
                            flags.append(f"{label} {p}: {c}={v}")
            for c in numeric_cols:
                if args.metric and args.metric not in c:
                    continue
                rows = []
                for p in points:
                    vals = [entry[1].get(p, {}).get(c) if entry else None
                            for entry in per_run]
                    rows.append((p, vals + [delta(vals[0], vals[-1])]))
                print_table(f"{title} :: {c}", run_labels + ["delta"], rows)
            if flags:
                print("flags:")
                for f in flags:
                    print(f"  !! {f}")
                print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
