#!/usr/bin/env bash
# Validate the JSONL trace schema end to end: capture a sample trace from a
# seeded multi-failure koptlog_sim run, require the strict parser to accept
# it (koptlog_audit --parse-only), require the full audit to pass, and
# require the parser to *reject* a corrupted copy. Run after any change to
# src/obs/ or to the schema documented in DESIGN.md §"Observability".
#
# Also runs under ctest (test "trace_schema_check"): the harness sets
# KOPTLOG_SCHEMA_NO_BUILD=1 and BUILD_DIR to reuse the binaries it already
# built, so schema drift fails tier-1 instead of only failing by hand.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [[ -z "${KOPTLOG_SCHEMA_NO_BUILD:-}" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target koptlog_sim koptlog_audit -j "$(nproc)"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
TRACE="$TMP/sample.jsonl"

"$BUILD_DIR/tools/koptlog_sim" --n 5 --k 2 --injections 40 --failures 2 \
  --seed 7 --no-oracle --trace-out "$TRACE" >/dev/null

echo "== schema: strict parse of the captured trace"
"$BUILD_DIR/tools/koptlog_audit" --parse-only "$TRACE"

echo "== audit: Theorems 1-4 invariants on the captured trace"
"$BUILD_DIR/tools/koptlog_audit" "$TRACE"

echo "== negative: malformed lines must be rejected"
# Truncate a field mid-line and drop the required "at" from another line.
sed -e '3s/"at":\[[0-9-]*,[0-9-]*\]/"at":[0]/' \
    -e '5s/"seq":[0-9]*,//' "$TRACE" > "$TMP/corrupt.jsonl"
if "$BUILD_DIR/tools/koptlog_audit" --parse-only --quiet "$TMP/corrupt.jsonl"; then
  echo "FAIL: parser accepted a corrupted trace" >&2
  exit 1
fi
echo "rejected, as it must be"

echo "== negative: a dropped failure announcement must fail the audit"
grep -v '"kind":"failure_announce"' "$TRACE" > "$TMP/no_announce.jsonl"
if "$BUILD_DIR/tools/koptlog_audit" --quiet "$TMP/no_announce.jsonl"; then
  echo "FAIL: audit passed a trace with suppressed announcements" >&2
  exit 1
fi
echo "caught, as it must be"

echo "trace schema OK"
