#!/usr/bin/env bash
# Kill -9 a --storage=disk run mid-flight and verify the storage directory
# it leaves behind: koptlog_fsck must find every process directory either
# clean or recoverably damaged (torn tails to truncate — the crash-recovery
# contract), never hard-inconsistent; --repair must then make a second scan
# come back entirely clean. Runs under ctest as "storage_kill_fsck"
# (label "storage") with KOPTLOG_SCHEMA_NO_BUILD=1 + BUILD_DIR set by the
# harness to reuse the already-built binaries.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [[ -z "${KOPTLOG_SCHEMA_NO_BUILD:-}" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target koptlog_sim koptlog_fsck -j "$(nproc)"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
DIR="$TMP/storage"

echo "== launch a disk-backed run and kill -9 it mid-flight"
# Big enough that the fsync-bound run takes tens of seconds; the kill at
# ~1s lands mid-run with segments, checkpoints and journal all in flight.
"$BUILD_DIR/tools/koptlog_sim" --n 5 --k 2 --injections 20000 --failures 3 \
  --seed 9 --no-oracle --storage disk --storage-dir "$DIR" >/dev/null &
SIM_PID=$!
sleep 1
if ! kill -9 "$SIM_PID" 2>/dev/null; then
  echo "FAIL: run finished before the kill — grow the workload" >&2
  exit 1
fi
wait "$SIM_PID" 2>/dev/null || true
[[ -d "$DIR" ]] || { echo "FAIL: no storage directory written" >&2; exit 1; }

echo "== fsck: the killed run's directory must not be hard-inconsistent"
"$BUILD_DIR/tools/koptlog_fsck" "$DIR"

echo "== fsck --repair, then a second scan must be entirely clean"
"$BUILD_DIR/tools/koptlog_fsck" --repair --quiet "$DIR"
OUT=$("$BUILD_DIR/tools/koptlog_fsck" --quiet "$DIR")
echo "$OUT"
if [[ "$OUT" != "fsck: ok" ]]; then
  echo "FAIL: damage survived --repair" >&2
  exit 1
fi

echo "kill + fsck OK"
