#!/usr/bin/env bash
# End-to-end gate for the runtime health telemetry layer (DESIGN §6.5):
#   1. a threaded 4-shard ring-mode run with --health-out must exit 0 and
#      write a schema-valid sidecar (meta header first, per-shard series);
#   2. the sidecar must contain per-shard drain-latency and mailbox-
#      occupancy series for every shard;
#   3. koptlog_top --once must render those series in its table;
#   4. the Prometheus snapshot (--metrics-out) must carry the health
#      series next to the protocol metrics, and never appear torn;
#   5. a sim-backend run with telemetry ON must stay bit-for-bit
#      deterministic (same seed twice -> identical protocol traces).
#
# Under ctest (test "health_telemetry") the harness sets
# KOPTLOG_SCHEMA_NO_BUILD=1 and BUILD_DIR to reuse the binaries it built.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [[ -z "${KOPTLOG_SCHEMA_NO_BUILD:-}" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target koptlog_sim koptlog_top -j "$(nproc)"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
HEALTH="$TMP/health.jsonl"
METRICS="$TMP/metrics.txt"

echo "== threaded 4-shard run with health telemetry"
"$BUILD_DIR/tools/koptlog_sim" --backend threaded --shards 4 --n 8 \
  --injections 200 --failures 1 --seed 7 \
  --record ring --health-out "$HEALTH" --health-interval-us 50000 \
  --metrics-out "$METRICS" | tee "$TMP/sim.out"
grep -q "wrote $HEALTH" "$TMP/sim.out"

echo "== sidecar schema: meta header first, then health lines"
head -n 1 "$HEALTH" | grep -q '"kind":"health_meta"'
head -n 1 "$HEALTH" | grep -q '"v":1'
grep -q '"kind":"health"' "$HEALTH"

echo "== per-shard drain-latency and occupancy series present"
for s in 0 1 2 3; do
  grep '"dom":"shard'$s'"' "$HEALTH" | grep -q 'sched.drain_latency_us'
  grep '"dom":"shard'$s'"' "$HEALTH" | grep -q 'sched.inbox_pending'
done
grep -q '"dom":"cluster"' "$HEALTH"
grep -q '"dom":"obs"' "$HEALTH"

echo "== koptlog_top --once renders the series"
"$BUILD_DIR/tools/koptlog_top" --once "$HEALTH" > "$TMP/top.out"
grep -q "^shard0 sched.drain_latency_us h" "$TMP/top.out"
grep -q "^shard3 sched.inbox_pending g" "$TMP/top.out"
grep -q "^obs collector.collected c" "$TMP/top.out"

echo "== follow mode renders frames (bounded by --iterations)"
"$BUILD_DIR/tools/koptlog_top" --iterations 2 --interval-ms 50 \
  "$HEALTH" > "$TMP/follow.out"
grep -q "koptlog_top" "$TMP/follow.out"
grep -q "sched.drain_latency_us" "$TMP/follow.out"

echo "== torn final line tolerated"
head -c $(( $(wc -c < "$HEALTH") - 5 )) "$HEALTH" > "$TMP/torn.jsonl"
"$BUILD_DIR/tools/koptlog_top" --once "$TMP/torn.jsonl" > /dev/null

echo "== Prometheus snapshot carries health series"
grep -q "koptlog_health_sched_drain_latency_us" "$METRICS"
grep -q 'dom="shard0"' "$METRICS"
if ls "$METRICS.tmp" >/dev/null 2>&1; then
  echo "ERROR: leftover temp snapshot $METRICS.tmp" >&2
  exit 1
fi

echo "== sim backend with telemetry on stays deterministic"
run_sim() {
  "$BUILD_DIR/tools/koptlog_sim" --n 4 --k 2 --injections 60 --failures 1 \
    --seed 11 --no-oracle --trace-out "$1" \
    --health-out "$2" --health-interval-us 20000 > /dev/null
}
run_sim "$TMP/sim_a.jsonl" "$TMP/health_a.jsonl"
run_sim "$TMP/sim_b.jsonl" "$TMP/health_b.jsonl"
cmp "$TMP/sim_a.jsonl" "$TMP/sim_b.jsonl"

echo "PASS"
