#!/usr/bin/env bash
# End-to-end gate for the streaming observability pipeline:
#   1. a threaded ring-mode run with --live-audit must exit 0, report the
#      ring counters, and stream a JSONL trace that the batch auditor
#      accepts post-hoc;
#   2. koptlog_audit --follow over that (finished) file must agree;
#   3. a torn final line must be reported but not fail the audit;
#   4. an appended orphan-commit line must flip --follow to exit 1 with
#      the offending event's stable id in the diagnostic.
#
# Under ctest (test "live_audit_follow") the harness sets
# KOPTLOG_SCHEMA_NO_BUILD=1 and BUILD_DIR to reuse the binaries it built.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [[ -z "${KOPTLOG_SCHEMA_NO_BUILD:-}" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target koptlog_sim koptlog_audit -j "$(nproc)"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
TRACE="$TMP/ring.jsonl"

echo "== ring-mode threaded run with live audit"
"$BUILD_DIR/tools/koptlog_sim" --backend threaded --shards 4 --n 6 \
  --failures 3 --injections 200 --seed 9 \
  --record ring --ring-capacity 4096 --live-audit \
  --trace-out "$TRACE" | tee "$TMP/sim.out"
grep -q "live audit: audit OK" "$TMP/sim.out"
grep -q "ring " "$TMP/sim.out"

echo "== streamed trace re-audits green (batch)"
"$BUILD_DIR/tools/koptlog_audit" "$TRACE"

echo "== --follow on the finished file agrees"
"$BUILD_DIR/tools/koptlog_audit" --follow --idle-timeout-ms 300 "$TRACE"

echo "== torn final line: reported, not fatal"
head -c $(( $(wc -c < "$TRACE") - 7 )) "$TRACE" > "$TMP/torn.jsonl"
"$BUILD_DIR/tools/koptlog_audit" "$TMP/torn.jsonl" 2> "$TMP/torn.err"
grep -q "torn final line" "$TMP/torn.err"

echo "== injected orphan commit: --follow exits 1 and cites the event"
cp "$TRACE" "$TMP/bad.jsonl"
# A fresh announcement ends P0's (fictitious) incarnation 40 at sii 500000
# — far above anything the real run committed, so no real output is
# retroactively orphaned — then a commit ships a vector carrying the dead
# (40,999999)_0. The auditor must convict the commit, by id.
cat >> "$TMP/bad.jsonl" <<'EOF'
{"kind":"failure_announce","t":99999999,"p":0,"seq":999998,"at":[40,500000],"ended":[40,500000],"fail":true}
{"kind":"output_commit","t":99999999,"p":1,"seq":999999,"at":[0,1],"msg":[1,999999],"ref":[1,0,1],"tdv":[[0,40,999999]]}
EOF
if "$BUILD_DIR/tools/koptlog_audit" --follow --idle-timeout-ms 300 \
    "$TMP/bad.jsonl" 2> "$TMP/bad.err"; then
  echo "ERROR: --follow accepted an orphan commit" >&2
  exit 1
fi
grep -q "VIOLATION" "$TMP/bad.err"
grep -q "P1#999999" "$TMP/bad.err"

echo "live_audit_follow_test: all checks passed"
