#!/usr/bin/env bash
# Perf smoke for the threaded backend's communication spine: runs bench_e12
# (which re-audits every row's trace) and checks the batched-mailbox storm
# rows scale sanely with shard count — 4-shard throughput must not collapse
# below 1-shard throughput. It also asserts the headline comparison: the
# batched spine must beat the pre-change mutex-mailbox baseline at 4 shards.
#
#   scripts/perf_smoke.sh                 # uses ./build
#   BUILD_DIR=build-rel scripts/perf_smoke.sh
#   KOPTLOG_PERF_SHARD_RATIO=1.0 scripts/perf_smoke.sh   # strict scaling
#
# KOPTLOG_PERF_SHARD_RATIO is the minimum allowed 4-shard/1-shard ratio.
# The default is 0.5: on a single-core CI box every shard worker timeslices
# one CPU, so 4 shards cannot beat 1 shard in wall-clock terms — the check
# guards against a collapse (a contention regression making more shards
# dramatically slower), not for linear scaling. On real multi-core hardware
# set it to 1.0.
#
# Wired as an optional ctest (label "perf") behind -DKOPTLOG_PERF_TESTS=ON;
# it is not part of the default test tier.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
MIN_SHARD_RATIO=${KOPTLOG_PERF_SHARD_RATIO:-0.5}
BENCH="$BUILD_DIR/bench/bench_e12_backend_throughput"

if [[ ! -x "$BENCH" ]]; then
  echo "perf_smoke: $BENCH not built (cmake --build $BUILD_DIR --target bench_e12_backend_throughput)" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "perf_smoke: running bench_e12 (this re-audits every row's trace)..."
(cd "$WORK" && "$(cd "$(dirname "$BENCH")" && pwd)/$(basename "$BENCH")" > bench.log) || {
  cat "$WORK/bench.log" >&2
  echo "perf_smoke: bench_e12 FAILED" >&2
  exit 1
}

python3 - "$WORK/BENCH_e12_backend_throughput.json" "$MIN_SHARD_RATIO" << 'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
min_ratio = float(sys.argv[2])

sweep = next(t for t in doc["tables"] if "storm sweep" in t["title"])
col = {name: i for i, name in enumerate(sweep["columns"])}
rate = {}
for row in sweep["rows"]:
    key = (row[col["mailbox"]], int(row[col["shards"]]), row[col["K"]])
    rate[key] = float(row[col["kev_per_s"]])
    if row[col["verdict"]] != "audit ok":
        sys.exit(f"perf_smoke: FAIL — row {key} verdict {row[col['verdict']]!r}")

one = rate[("batched", 1, "2")]
four = rate[("batched", 4, "2")]
mutex_four = rate[("mutex", 4, "2")]
shard_ratio = four / one
speedup = doc["metrics"]["batched_over_mutex_4shard"]
print(f"perf_smoke: batched 1-shard {one:.0f} kev/s, 4-shard {four:.0f} kev/s "
      f"(ratio {shard_ratio:.2f}, floor {min_ratio})")
print(f"perf_smoke: batched vs mutex at 4 shards: {four:.0f} vs "
      f"{mutex_four:.0f} kev/s (speedup x{speedup:.2f})")
if shard_ratio < min_ratio:
    sys.exit(f"perf_smoke: FAIL — 4-shard throughput regressed below "
             f"{min_ratio}x the 1-shard rate")
if speedup < 1.0:
    sys.exit("perf_smoke: FAIL — batched spine slower than the mutex baseline")
print("perf_smoke: OK")
EOF
