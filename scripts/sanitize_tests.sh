#!/usr/bin/env bash
# Sanitizer test variants, each in its own build directory:
#
#   scripts/sanitize_tests.sh            # asan: address,undefined
#   scripts/sanitize_tests.sh asan
#   scripts/sanitize_tests.sh tsan      # thread: the threaded backend suite
#   scripts/sanitize_tests.sh storage   # asan: the durable-storage suite
#   KOPTLOG_SANITIZE=thread scripts/sanitize_tests.sh
#
# asan runs the runtime-component + observability unit tests (the JSONL
# reader — batch and streaming — parses untrusted input; the ring recorder
# and live auditor ride along). tsan rebuilds with -fsanitize=thread and
# runs the threaded execution backend's suite (ctest label "threaded"):
# ThreadedScheduler units, whole-cluster multi-failure runs whose traces
# must audit clean, and the SPSC ring-recorder/collector stress — the
# acceptance gate for the real-thread backend and the streaming pipeline. storage runs everything labelled "storage" under asan: the
# on-disk WAL round-trip/recovery tests, the format fuzz-smoke (the
# analysis scan parses whatever a crash left on disk — untrusted input),
# the model-vs-disk restart-equivalence gate, and the kill -9 + fsck
# script.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=${1:-${KOPTLOG_SANITIZE:-address}}
case "$MODE" in
  asan|address|ON) MODE=address ;;
  tsan|thread) MODE=thread ;;
  storage) MODE=storage ;;
  *)
    echo "usage: $0 [asan|tsan|storage]  (or KOPTLOG_SANITIZE=address|thread|storage)" >&2
    exit 2
    ;;
esac

if [[ "$MODE" == storage ]]; then
  BUILD_DIR=${BUILD_DIR:-build-asan}
  cmake -B "$BUILD_DIR" -S . -DKOPTLOG_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" \
    --target koptlog_storage_tests koptlog_sim koptlog_fsck -j "$(nproc)"
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -L storage
elif [[ "$MODE" == thread ]]; then
  BUILD_DIR=${BUILD_DIR:-build-tsan}
  cmake -B "$BUILD_DIR" -S . -DKOPTLOG_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" --target koptlog_threaded_tests -j "$(nproc)"
  export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -L threaded
else
  BUILD_DIR=${BUILD_DIR:-build-asan}
  cmake -B "$BUILD_DIR" -S . -DKOPTLOG_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" --target koptlog_tests -j "$(nproc)"

  # Unit tests for the runtime components + the deterministic Figure 1
  # walkthrough + the observability layer (event recording, JSONL parsing,
  # exporters, trace audit): the highest-value surface for UB/ASan — the
  # JSONL reader in particular parses untrusted input — and fast enough to
  # gate on. Everything else still runs in the regular (unsanitized) job.
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R 'SendBuffer|ReceiveBuffer|OutputBuffer|ReliableChannel|ReplayEngine|Figure1|Determinism|EventKind|EventRecorder|Recording|RingRecorder|StreamingTraceParser|TraceIo|TraceGolden|Export|Audit|CodecFuzz'
fi
