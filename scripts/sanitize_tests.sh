#!/usr/bin/env bash
# Sanitizer test variant: build with -fsanitize=address,undefined
# (KOPTLOG_SANITIZE=ON) in a dedicated build directory and run the unit
# tests plus the Figure 1 trace tests under it.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DKOPTLOG_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target koptlog_tests -j "$(nproc)"

# Unit tests for the runtime components + the deterministic Figure 1
# walkthrough + the observability layer (event recording, JSONL parsing,
# exporters, trace audit): the highest-value surface for UB/ASan — the
# JSONL reader in particular parses untrusted input — and fast enough to
# gate on. Everything else still runs in the regular (unsanitized) job.
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R 'SendBuffer|ReceiveBuffer|OutputBuffer|ReliableChannel|ReplayEngine|Figure1|Determinism|EventKind|EventRecorder|Recording|TraceIo|TraceGolden|Export|Audit'
