#include "analysis/causal_graph.h"

#include <algorithm>
#include <limits>

namespace koptlog::analysis {

namespace {

/// Does announcement `a` (by the interval's process) kill interval (inc,sii)?
bool kills(const Entry& a, const IntervalId& iv) {
  return a.inc >= iv.inc && iv.sii > a.sii;
}

}  // namespace

CausalGraph::CausalGraph(const Trace& trace) : trace_(&trace) {
  const int n = trace.n;
  announced_.resize(static_cast<size_t>(n));
  facts_.resize(static_cast<size_t>(n));

  // Pass 1: announcements (the dead predicate needs them before any closure
  // question can be answered) and per-kind indices.
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const ProtocolEvent& e = trace.events[i];
    switch (e.kind) {
      case EventKind::kFailureAnnounce:
        announces_.push_back(static_cast<int>(i));
        if (e.pid >= 0 && e.pid < n)
          announced_[static_cast<size_t>(e.pid)].push_back(e.ended);
        break;
      case EventKind::kRollback:
        rollbacks_.push_back(static_cast<int>(i));
        break;
      case EventKind::kOutputCommit:
        commits_.push_back(static_cast<int>(i));
        commits_by_id_.try_emplace(e.msg, static_cast<int>(i));
        break;
      case EventKind::kCheckpoint:
        checkpoints_.push_back(static_cast<int>(i));
        break;
      case EventKind::kRetransmit:
        retransmits_.push_back(static_cast<int>(i));
        break;
      default:
        break;
    }
  }

  // Pass 2: interval graph, message episodes, deliveries, stability facts.
  std::vector<OptEntry> cur(static_cast<size_t>(n));
  // Open episode per (sender, msg id): index into episodes_.
  std::map<MsgId, int> open;
  auto close_open_as = [&](ProcessId sender, MsgEpisode::End end,
                           SimTime at) {
    for (auto& [id, idx] : open) {
      MsgEpisode& ep = episodes_[static_cast<size_t>(idx)];
      if (ep.sender != sender || ep.end != MsgEpisode::End::kUnreleased)
        continue;
      ep.end = end;
      ep.doomed_at = at;
    }
  };

  for (size_t i = 0; i < trace.events.size(); ++i) {
    const ProtocolEvent& e = trace.events[i];
    size_t p = static_cast<size_t>(e.pid);
    switch (e.kind) {
      case EventKind::kDeliver: {
        IntervalId iv{e.pid, e.at.inc, e.at.sii};
        if (intervals_.count(iv) == 0) {
          IntervalNode node;
          node.id = iv;
          node.created_by = static_cast<int>(i);
          node.t = e.t;
          if (cur[p]) node.parents.push_back({e.pid, cur[p]->inc, cur[p]->sii});
          if (e.ref.pid != kEnvironment) {
            node.msg_parent = static_cast<int>(node.parents.size());
            node.parents.push_back(e.ref);
          }
          node.via_msg = e.msg;
          intervals_.emplace(iv, std::move(node));
        }
        deliveries_by_id_[e.msg].push_back(static_cast<int>(i));
        cur[p] = e.at;
        break;
      }
      case EventKind::kIncarnationBump: {
        IntervalId iv{e.pid, e.at.inc, e.at.sii};
        if (intervals_.count(iv) == 0) {
          IntervalNode node;
          node.id = iv;
          node.created_by = static_cast<int>(i);
          node.t = e.t;
          if (cur[p]) node.parents.push_back({e.pid, cur[p]->inc, cur[p]->sii});
          intervals_.emplace(iv, std::move(node));
        }
        cur[p] = e.at;
        break;
      }
      case EventKind::kRollback:
        cur[p] = e.at;
        break;
      case EventKind::kFailureAnnounce:
        cur[p] = e.at;
        // A genuine failure wipes the sender's volatile send buffer: every
        // still-open episode of this sender dies here.
        if (e.from_failure)
          close_open_as(e.pid, MsgEpisode::End::kCrashWiped, e.t);
        break;
      case EventKind::kSend: {
        auto it = open.find(e.msg);
        if (it != open.end() &&
            episodes_[static_cast<size_t>(it->second)].end ==
                MsgEpisode::End::kUnreleased) {
          // Re-send of a message whose previous copy silently vanished
          // (e.g. discarded as an orphan): close the stale episode.
          episodes_[static_cast<size_t>(it->second)].end =
              MsgEpisode::End::kDiscarded;
          episodes_[static_cast<size_t>(it->second)].doomed_at = e.t;
        }
        MsgEpisode ep;
        ep.id = e.msg;
        ep.sender = e.pid;
        ep.send_ev = static_cast<int>(i);
        episodes_.push_back(ep);
        open[e.msg] = static_cast<int>(episodes_.size()) - 1;
        episodes_by_id_[e.msg].push_back(static_cast<int>(episodes_.size()) -
                                         1);
        break;
      }
      case EventKind::kBufferHold:
        if (e.recv_side) {
          recv_holds_by_id_[e.msg].push_back(static_cast<int>(i));
        } else if (auto it = open.find(e.msg); it != open.end()) {
          MsgEpisode& ep = episodes_[static_cast<size_t>(it->second)];
          if (ep.sender == e.pid && ep.hold_ev < 0)
            ep.hold_ev = static_cast<int>(i);
        }
        break;
      case EventKind::kBufferRelease: {
        auto it = open.find(e.msg);
        int idx = -1;
        if (it != open.end() &&
            episodes_[static_cast<size_t>(it->second)].sender == e.pid &&
            episodes_[static_cast<size_t>(it->second)].end ==
                MsgEpisode::End::kUnreleased) {
          idx = it->second;
        } else {
          // Release without a recorded send (truncated trace): synthesize.
          MsgEpisode ep;
          ep.id = e.msg;
          ep.sender = e.pid;
          episodes_.push_back(ep);
          idx = static_cast<int>(episodes_.size()) - 1;
          episodes_by_id_[e.msg].push_back(idx);
        }
        MsgEpisode& ep = episodes_[static_cast<size_t>(idx)];
        ep.end = MsgEpisode::End::kReleased;
        ep.release_ev = static_cast<int>(i);
        open.erase(e.msg);
        // Stability facts (Theorem 2 observed): entries live at send and
        // NULL at release were nulled by the sender's log knowledge, so by
        // e.t the sender covered them.
        if (ep.send_ev >= 0) {
          const DepVector& at_send =
              trace.events[static_cast<size_t>(ep.send_ev)].tdv;
          for (ProcessId j = 0; j < at_send.size() && j < e.tdv.size(); ++j) {
            const OptEntry& before = at_send.at(j);
            if (!before || e.tdv.at(j)) continue;
            facts_[p].push_back(StabilityFact{e.pid, j, *before, e.t,
                                              static_cast<int>(i)});
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Episodes still open at trace end: classify. If a send-vector entry is
  // dead per the recorded announcements, the sender discarded the message
  // as an orphan; the earliest killing announcement's time lower-bounds
  // when.
  for (MsgEpisode& ep : episodes_) {
    if (ep.end != MsgEpisode::End::kUnreleased || ep.send_ev < 0) continue;
    const DepVector& v = trace.events[static_cast<size_t>(ep.send_ev)].tdv;
    SimTime doom = std::numeric_limits<SimTime>::max();
    for (ProcessId j = 0; j < v.size(); ++j) {
      const OptEntry& d = v.at(j);
      if (!d) continue;
      if (auto k = killer_of(IntervalId{j, d->inc, d->sii})) {
        doom = std::min(doom, trace.events[static_cast<size_t>(*k)].t);
      }
    }
    if (doom != std::numeric_limits<SimTime>::max()) {
      ep.end = MsgEpisode::End::kDiscarded;
      ep.doomed_at = doom;
    }
  }

  // Crash-wiped classification may also apply to episodes whose sender
  // failed *after* an orphan announcement; keep whichever fate struck
  // first — close_open_as already handled the crash case in stream order.

  for (auto& f : facts_) {
    std::stable_sort(f.begin(), f.end(),
                     [](const StabilityFact& a, const StabilityFact& b) {
                       return a.t < b.t;
                     });
  }
}

const IntervalNode* CausalGraph::interval(const IntervalId& id) const {
  auto it = intervals_.find(id);
  return it == intervals_.end() ? nullptr : &it->second;
}

bool CausalGraph::is_dead(const IntervalId& iv) const {
  if (iv.pid < 0 || iv.pid >= n()) return false;  // environment
  for (const Entry& a : announced_[static_cast<size_t>(iv.pid)]) {
    if (kills(a, iv)) return true;
  }
  return false;
}

std::optional<int> CausalGraph::killer_of(const IntervalId& iv) const {
  if (iv.pid < 0 || iv.pid >= n()) return std::nullopt;
  for (int idx : announces_) {
    const ProtocolEvent& e = trace_->events[static_cast<size_t>(idx)];
    if (e.pid == iv.pid && kills(e.ended, iv)) return idx;
  }
  return std::nullopt;
}

std::vector<IntervalId> CausalGraph::path_to_dead(
    const IntervalId& root) const {
  // Depth-first with an explicit parent map; stop at the first dead node.
  std::unordered_map<IntervalId, IntervalId, IntervalIdHash> came_from;
  std::vector<IntervalId> stack{root};
  std::unordered_map<IntervalId, bool, IntervalIdHash> seen;
  seen[root] = true;
  while (!stack.empty()) {
    IntervalId iv = stack.back();
    stack.pop_back();
    if (is_dead(iv)) {
      std::vector<IntervalId> path{iv};
      while (path.back() != root) path.push_back(came_from.at(path.back()));
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto it = intervals_.find(iv);
    if (it == intervals_.end()) continue;  // pre-trace leaf
    for (const IntervalId& parent : it->second.parents) {
      if (seen.emplace(parent, true).second) {
        came_from.emplace(parent, iv);
        stack.push_back(parent);
      }
    }
  }
  return {};
}

std::vector<IntervalId> CausalGraph::closure(const IntervalId& root) const {
  std::vector<IntervalId> out;
  std::vector<IntervalId> stack{root};
  std::unordered_map<IntervalId, bool, IntervalIdHash> seen;
  seen[root] = true;
  while (!stack.empty()) {
    IntervalId iv = stack.back();
    stack.pop_back();
    out.push_back(iv);
    auto it = intervals_.find(iv);
    if (it == intervals_.end()) continue;
    for (const IntervalId& parent : it->second.parents) {
      if (seen.emplace(parent, true).second) stack.push_back(parent);
    }
  }
  return out;
}

std::vector<int> CausalGraph::episodes_of(const MsgId& id) const {
  auto it = episodes_by_id_.find(id);
  return it == episodes_by_id_.end() ? std::vector<int>{} : it->second;
}

std::vector<int> CausalGraph::deliveries_of(const MsgId& id) const {
  auto it = deliveries_by_id_.find(id);
  return it == deliveries_by_id_.end() ? std::vector<int>{} : it->second;
}

std::vector<int> CausalGraph::recv_holds_of(const MsgId& id) const {
  auto it = recv_holds_by_id_.find(id);
  return it == recv_holds_by_id_.end() ? std::vector<int>{} : it->second;
}

std::optional<int> CausalGraph::departure_of(const MsgId& id) const {
  auto it = episodes_by_id_.find(id);
  if (it == episodes_by_id_.end()) return std::nullopt;
  int first_send = -1;
  int last_release = -1;
  for (int idx : it->second) {
    const MsgEpisode& ep = episodes_[static_cast<size_t>(idx)];
    if (ep.send_ev >= 0 && first_send < 0) first_send = ep.send_ev;
    if (ep.release_ev >= 0) last_release = ep.release_ev;
  }
  if (last_release >= 0) return last_release;
  if (first_send >= 0) return first_send;
  return std::nullopt;
}

const std::vector<StabilityFact>& CausalGraph::facts_of(
    ProcessId owner) const {
  static const std::vector<StabilityFact> kEmpty;
  if (owner < 0 || owner >= n()) return kEmpty;
  return facts_[static_cast<size_t>(owner)];
}

std::optional<SimTime> CausalGraph::covered_at(ProcessId owner, ProcessId j,
                                               const Entry& e,
                                               SimTime from) const {
  for (const StabilityFact& f : facts_of(owner)) {
    if (f.t < from) continue;
    if (f.j == j && f.stable.inc == e.inc && e.sii <= f.stable.sii)
      return f.t;
  }
  return std::nullopt;
}

std::optional<int> CausalGraph::commit_of(const MsgId& output) const {
  auto it = commits_by_id_.find(output);
  if (it == commits_by_id_.end()) return std::nullopt;
  return it->second;
}

}  // namespace koptlog::analysis
