// CausalGraph — the in-memory index the trace-analytics layer (explain /
// critical-path / what-if / space-time SVG) queries. Built once from a
// parsed JSONL trace (obs/trace_io.h), it reconstructs:
//
//  * the interval graph: one node per state interval that a deliver or
//    incarnation_bump created, with its parents (the process's previous
//    interval, plus the sender's birth interval for deliveries) — the same
//    reconstruction the orphan audit uses, kept here with creation times
//    and creating-event indices so queries can attribute *when* and *why*;
//  * message episodes: each send→(hold)→release lifetime of a message in
//    its sender's send buffer. Replay after a crash re-sends with the same
//    MsgId, so one id can have several episodes; each is paired by stream
//    order at the sender. Episodes that never release are classified
//    (crash-wiped / discarded-as-orphan / unreleased);
//  * stability facts (Theorem 2 observed from outside): when an episode's
//    vector has entry (j, e) live at send and NULL at release, the sender
//    provably knew "incarnation e.inc of P_j is stable up to ≥ e.sii" by
//    the release time. These facts are the sound nulling timeline the
//    what-if K replay runs the send-buffer rule against;
//  * the dead-interval predicate from announcements alone (Theorem 1), and
//    closure walks that return the *path* to a dead ancestor, not just the
//    verdict (explain-orphan, critical-path need the hops).
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/trace_io.h"

namespace koptlog::analysis {

struct IntervalNode {
  IntervalId id;
  /// Index into Trace::events of the creating deliver/incarnation_bump;
  /// -1 for pre-trace intervals (process start, truncated history).
  int created_by = -1;
  SimTime t = 0;
  /// [previous own interval, sender's birth interval (deliveries only)].
  std::vector<IntervalId> parents;
  /// Deliveries only: the message whose delivery started this interval.
  std::optional<MsgId> via_msg;
  /// Index in `parents` of the delivering message's birth interval;
  /// -1 when the delivery came from the environment (or not a delivery).
  int msg_parent = -1;
};

/// One send-buffer lifetime of a message at its sender.
struct MsgEpisode {
  enum class End {
    kReleased,    ///< buffer_release recorded
    kCrashWiped,  ///< sender failed (volatile buffer) before any release
    kDiscarded,   ///< some send-vector entry is dead: orphan discard
    kUnreleased,  ///< trace ends with the message still parked
  };
  MsgId id;
  ProcessId sender = 0;
  int send_ev = -1;     ///< kSend event index (-1: release without a send)
  int hold_ev = -1;     ///< send-side kBufferHold, if any
  int release_ev = -1;  ///< kBufferRelease, -1 unless kReleased
  End end = End::kUnreleased;
  /// kCrashWiped / kDiscarded: when the episode's fate was sealed — the
  /// sender's failure announcement, or the earliest announcement that made
  /// a send-vector entry dead (a lower bound on the discard time).
  SimTime doomed_at = 0;
};

/// One observed nulling: by `t`, process `owner` knew incarnation
/// `stable.inc` of P_j stable up to index ≥ `stable.sii` (so it NULLs any
/// entry (stable.inc, x ≤ stable.sii) per EntrySet::covers).
struct StabilityFact {
  ProcessId owner = 0;
  ProcessId j = 0;
  Entry stable;
  SimTime t = 0;
  int source_ev = -1;  ///< the buffer_release that demonstrated it
};

class CausalGraph {
 public:
  explicit CausalGraph(const Trace& trace);

  const Trace& trace() const { return *trace_; }
  int n() const { return trace_->n; }

  // ---- intervals ----
  const IntervalNode* interval(const IntervalId& id) const;
  const std::unordered_map<IntervalId, IntervalNode, IntervalIdHash>&
  intervals() const {
    return intervals_;
  }

  /// Theorem 1's orphan predicate over recorded announcements: (t,x) of
  /// P_j is dead iff some announcement (s,x') of P_j has s >= t and x' < x.
  bool is_dead(const IntervalId& iv) const;
  /// Event index of the earliest announcement whose predicate kills `iv`
  /// (nullopt when alive).
  std::optional<int> killer_of(const IntervalId& iv) const;

  /// Walk the closure of `root` (memoized); if it contains a dead interval,
  /// return the parent-edge path root -> ... -> dead ancestor (front() is
  /// root, back() is the dead interval). Empty when the closure is clean.
  std::vector<IntervalId> path_to_dead(const IntervalId& root) const;

  /// Every interval in the closure of `root` (including root), depth-first,
  /// each visited once. Pre-trace intervals appear as leaves.
  std::vector<IntervalId> closure(const IntervalId& root) const;

  // ---- messages ----
  const std::vector<MsgEpisode>& episodes() const { return episodes_; }
  /// Episode indices for one message id, in stream order at the sender.
  std::vector<int> episodes_of(const MsgId& id) const;
  /// Deliver event indices for one message id (one per receiver that
  /// accepted it; duplicates are discarded before delivery).
  std::vector<int> deliveries_of(const MsgId& id) const;
  /// Receive-side kBufferHold event indices for one message id.
  std::vector<int> recv_holds_of(const MsgId& id) const;
  /// The event a wire departure is drawn from: the last buffer_release of
  /// the id, else its first send (mirrors the Perfetto exporter's rule).
  std::optional<int> departure_of(const MsgId& id) const;

  // ---- stability facts ----
  /// All facts owned by `owner`, in nondecreasing time order.
  const std::vector<StabilityFact>& facts_of(ProcessId owner) const;
  /// Earliest time ≥ `from` at which `owner` provably covered (j, e);
  /// nullopt when never observed.
  std::optional<SimTime> covered_at(ProcessId owner, ProcessId j,
                                    const Entry& e, SimTime from) const;

  // ---- event indices by kind ----
  const std::vector<int>& announce_events() const { return announces_; }
  const std::vector<int>& rollback_events() const { return rollbacks_; }
  const std::vector<int>& commit_events() const { return commits_; }
  const std::vector<int>& checkpoint_events() const { return checkpoints_; }
  const std::vector<int>& retransmit_events() const { return retransmits_; }

  /// Commit event index for an output id, if recorded (first commit wins;
  /// replay duplicates are suppressed upstream of the recorder anyway).
  std::optional<int> commit_of(const MsgId& output) const;

 private:
  const Trace* trace_;
  std::unordered_map<IntervalId, IntervalNode, IntervalIdHash> intervals_;
  std::vector<MsgEpisode> episodes_;
  std::map<MsgId, std::vector<int>> episodes_by_id_;
  std::map<MsgId, std::vector<int>> deliveries_by_id_;
  std::map<MsgId, std::vector<int>> recv_holds_by_id_;
  std::map<MsgId, int> commits_by_id_;
  std::vector<std::vector<Entry>> announced_;  ///< per announcing process
  std::vector<std::vector<StabilityFact>> facts_;  ///< per owner
  std::vector<int> announces_, rollbacks_, commits_, checkpoints_,
      retransmits_;
  mutable std::unordered_map<IntervalId, int, IntervalIdHash> dead_memo_;
};

}  // namespace koptlog::analysis
