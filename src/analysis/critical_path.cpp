#include "analysis/critical_path.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/ids.h"

namespace koptlog::analysis {

namespace {

bool killed_by(const ProtocolEvent& announce, const IntervalId& iv) {
  return announce.pid == iv.pid && announce.ended.inc >= iv.inc &&
         iv.sii > announce.ended.sii;
}

/// Longest path (root..dead) among the intervals `rollback` undid whose
/// dead endpoint this announcement is responsible for. Empty when the
/// rollback was forced by some other announcement.
std::vector<IntervalId> chain_for_rollback(const CausalGraph& g,
                                           const ProtocolEvent& announce,
                                           const ProtocolEvent& rollback) {
  std::vector<IntervalId> best;
  for (const auto& [iv, node] : g.intervals()) {
    if (iv.pid != rollback.pid || iv.inc != rollback.ended.inc ||
        iv.sii <= rollback.ended.sii)
      continue;
    std::vector<IntervalId> path = g.path_to_dead(iv);
    if (path.empty() || !killed_by(announce, path.back())) continue;
    if (path.size() > best.size() ||
        (path.size() == best.size() && !best.empty() && path[0] < best[0]))
      best = std::move(path);
  }
  return best;
}

}  // namespace

std::vector<FailureImpact> compute_critical_paths(const CausalGraph& g) {
  const Trace& tr = g.trace();
  std::vector<FailureImpact> impacts;
  for (int a_idx : g.announce_events()) {
    const ProtocolEvent& a = tr.events[static_cast<size_t>(a_idx)];
    FailureImpact im;
    im.announce_ev = a_idx;
    im.pid = a.pid;
    im.ended = a.ended;
    im.t = a.t;
    im.from_failure = a.from_failure;
    im.settled_at = a.t;

    std::vector<IntervalId> best_chain;
    int best_terminal = -1;
    SimTime best_end = a.t;
    for (int r_idx : g.rollback_events()) {
      const ProtocolEvent& r = tr.events[static_cast<size_t>(r_idx)];
      if (r.t < a.t || r.pid == a.pid) continue;
      std::vector<IntervalId> chain = chain_for_rollback(g, a, r);
      if (chain.empty()) continue;
      im.forced_rollbacks.push_back(r_idx);
      im.settled_at = std::max(im.settled_at, r.t);
      // Terminal = latest forced event; ties go to the longer chain.
      if (best_terminal < 0 || r.t > best_end ||
          (r.t == best_end && chain.size() > best_chain.size())) {
        best_chain = std::move(chain);
        best_terminal = r_idx;
        best_end = r.t;
      }
    }
    for (int rt_idx : g.retransmit_events()) {
      const ProtocolEvent& rt = tr.events[static_cast<size_t>(rt_idx)];
      if (rt.peer != a.pid || rt.t < a.t) continue;
      // Attribute to the latest announcement by this process not after the
      // retransmit: skip if a later qualifying announcement exists.
      bool superseded = false;
      for (int other : g.announce_events()) {
        if (other == a_idx) continue;
        const ProtocolEvent& o = tr.events[static_cast<size_t>(other)];
        if (o.pid == a.pid && o.t <= rt.t && o.t >= a.t && other > a_idx)
          superseded = true;
      }
      if (superseded) continue;
      im.forced_retransmits.push_back(rt_idx);
      im.settled_at = std::max(im.settled_at, rt.t);
      if (best_terminal < 0 || rt.t > best_end) {
        best_chain.clear();
        best_terminal = rt_idx;
        best_end = rt.t;
      }
    }

    im.terminal_ev = best_terminal;
    // path_to_dead runs root -> dead; the report reads forward in time:
    // dead interval first, terminal undone interval last.
    std::reverse(best_chain.begin(), best_chain.end());
    for (const IntervalId& iv : best_chain) {
      const IntervalNode* node = g.interval(iv);
      PathHop hop;
      hop.iv = iv;
      hop.t = node != nullptr ? node->t : a.t;
      if (node != nullptr) hop.via = node->via_msg;
      im.critical.push_back(hop);
    }
    impacts.push_back(std::move(im));
  }
  return impacts;
}

void print_critical_paths(const CausalGraph& g,
                          const std::vector<FailureImpact>& impacts,
                          std::ostream& os) {
  if (impacts.empty()) {
    os << "no failure or rollback announcements in this trace\n";
    return;
  }
  for (const FailureImpact& im : impacts) {
    os << (im.from_failure ? "failure" : "rollback") << ": P" << im.pid
       << " incarnation " << im.ended.inc << " ended at " << im.ended.str()
       << " (t=" << im.t << ")  ["
       << format_event_ref(g.trace(), static_cast<size_t>(im.announce_ev))
       << "]\n";
    os << "  forced " << im.forced_rollbacks.size() << " rollback(s), "
       << im.forced_retransmits.size() << " retransmit(s); settled at t="
       << im.settled_at << " (+" << (im.settled_at - im.t) << " us)\n";
    if (im.critical.empty()) {
      os << "  critical path: none (no dependency chain recorded)\n";
      continue;
    }
    os << "  critical path (" << im.critical.size() << " hops):\n";
    SimTime prev = im.t;
    for (size_t i = 0; i < im.critical.size(); ++i) {
      const PathHop& hop = im.critical[i];
      os << "    " << (i == 0 ? "dead " : "  -> ") << hop.iv.str();
      if (i != 0 && hop.via) {
        os << " via delivery of " << format_msg_id(*hop.via);
      }
      os << "  t=" << hop.t << " (+" << (hop.t - prev) << ")\n";
      prev = hop.t;
    }
    if (im.terminal_ev >= 0) {
      const ProtocolEvent& term =
          g.trace().events[static_cast<size_t>(im.terminal_ev)];
      os << "    end: "
         << (term.kind == EventKind::kRollback ? "rollback at P"
                                               : "retransmit by P")
         << term.pid;
      if (term.kind == EventKind::kRollback) {
        os << " to " << term.ended.str() << ", undone " << term.undone;
      } else {
        os << " of " << format_msg_id(term.msg);
      }
      os << "  t=" << term.t << " (+" << (term.t - prev) << ")  ["
         << format_event_ref(g.trace(), static_cast<size_t>(im.terminal_ev))
         << "]\n";
    }
  }
}

bool write_critical_path_perfetto(const CausalGraph& g,
                                  const std::vector<FailureImpact>& impacts,
                                  const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };
  emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":9000,\"tid\":0,"
       "\"args\":{\"name\":\"recovery critical paths\"}}");
  int tid = 0;
  for (const FailureImpact& im : impacts) {
    ++tid;
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":9000,\"tid\":" +
         std::to_string(tid) + ",\"args\":{\"name\":\"" +
         json_escape((im.from_failure ? "failure P" : "rollback P") +
                     std::to_string(im.pid) + " " + im.ended.str()) +
         "\"}}");
    auto slice = [&](const std::string& name, SimTime t, SimTime end,
                     const std::string& args) {
      emit("{\"ph\":\"X\",\"pid\":9000,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + std::to_string(t) + ",\"dur\":" +
           std::to_string(end > t ? end - t : 1) + ",\"name\":\"" +
           json_escape(name) + "\",\"args\":{" + args + "}}");
    };
    slice("announce " + im.ended.str() + "_" + std::to_string(im.pid), im.t,
          im.settled_at, "\"forced_rollbacks\":" +
                             std::to_string(im.forced_rollbacks.size()) +
                             ",\"forced_retransmits\":" +
                             std::to_string(im.forced_retransmits.size()));
    for (size_t i = 0; i < im.critical.size(); ++i) {
      const PathHop& hop = im.critical[i];
      std::string args = "\"hop\":" + std::to_string(i);
      if (hop.via)
        args += ",\"via\":\"" + json_escape(format_msg_id(*hop.via)) + "\"";
      slice(hop.iv.str(), hop.t, im.settled_at, args);
    }
  }
  os << "\n]}\n";
  return static_cast<bool>(os);
}

CriticalPathSummary summarize_critical_paths(
    const std::vector<FailureImpact>& impacts) {
  CriticalPathSummary s;
  s.announcements = static_cast<int>(impacts.size());
  for (const FailureImpact& im : impacts) {
    s.forced_rollbacks += static_cast<int>(im.forced_rollbacks.size());
    s.forced_retransmits += static_cast<int>(im.forced_retransmits.size());
    s.max_hops = std::max(s.max_hops, static_cast<int>(im.critical.size()));
    s.max_settle_us = std::max(s.max_settle_us, im.settled_at - im.t);
  }
  return s;
}

}  // namespace koptlog::analysis
