// Recovery critical path: for every failure/rollback announcement in a
// trace, which rollbacks and retransmits did it force, and along which
// dependency chain? A rollback is attributed to announcement F when one of
// the intervals it undid transitively depends on an interval F declared
// dead (Theorem 1); a retransmit is attributed to the latest preceding
// announcement by the process that lost the message. The critical path is
// the longest such chain, from the announcement through the dead interval
// and its dependents to the terminal rollback/retransmit, with per-hop
// time attribution — reported as a table and as annotated Perfetto slices.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/causal_graph.h"

namespace koptlog::analysis {

struct PathHop {
  IntervalId iv;
  SimTime t = 0;  ///< creation time (the announcement's time for hop 0)
  /// Delivery that propagated the dependency into this hop, if any.
  std::optional<MsgId> via;
};

struct FailureImpact {
  int announce_ev = -1;
  ProcessId pid = 0;  ///< the announcing (failed / rolled-back) process
  Entry ended;
  SimTime t = 0;
  bool from_failure = false;
  std::vector<int> forced_rollbacks;    ///< rollback event indices
  std::vector<int> forced_retransmits;  ///< retransmit event indices
  /// Time of the last forced event (== t when nothing was forced).
  SimTime settled_at = 0;
  /// Longest dependency chain, forward: dead interval first, the undone
  /// interval of the terminal rollback last. Empty for retransmit-only or
  /// harmless announcements.
  std::vector<PathHop> critical;
  int terminal_ev = -1;  ///< the rollback/retransmit the path ends in
};

std::vector<FailureImpact> compute_critical_paths(const CausalGraph& g);

void print_critical_paths(const CausalGraph& g,
                          const std::vector<FailureImpact>& impacts,
                          std::ostream& os);

/// Chrome-JSON trace: one thread per announcement, one slice per hop plus
/// flow arrows, loadable next to the simulator's own Perfetto export.
/// Returns false when the file cannot be written.
bool write_critical_path_perfetto(const CausalGraph& g,
                                  const std::vector<FailureImpact>& impacts,
                                  const std::string& path);

/// Scalar digest for bench tables (BENCH json columns).
struct CriticalPathSummary {
  int announcements = 0;
  int forced_rollbacks = 0;
  int forced_retransmits = 0;
  int max_hops = 0;          ///< longest critical chain (intervals)
  SimTime max_settle_us = 0; ///< max settled_at - t over announcements
};

CriticalPathSummary summarize_critical_paths(
    const std::vector<FailureImpact>& impacts);

}  // namespace koptlog::analysis
