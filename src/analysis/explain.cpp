#include "analysis/explain.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/ids.h"

namespace koptlog::analysis {

namespace {

std::string ref(const CausalGraph& g, int ev) {
  return "[" + format_event_ref(g.trace(), static_cast<size_t>(ev)) + "]";
}

std::string n_entries(int n) {
  std::ostringstream os;
  os << n << (n == 1 ? " live entry" : " live entries");
  return os.str();
}

/// Which stability source made (j, e) NULLable for `owner`? Corollary 1
/// (failure/rollback announcement), Corollary 2 (checkpoint), or plain
/// Theorem-2 log flush + logging-progress notification. Returns the
/// one-line attribution; `ev` gets the supporting event index when one
/// exists in the trace.
std::string nulling_source(const CausalGraph& g, ProcessId owner, ProcessId j,
                           const Entry& e, int& ev) {
  ev = -1;
  const Trace& tr = g.trace();
  for (int idx : g.announce_events()) {
    const ProtocolEvent& a = tr.events[static_cast<size_t>(idx)];
    if (a.pid == j && a.ended.inc == e.inc && a.ended.sii >= e.sii) {
      ev = idx;
      return "announcement that incarnation " + std::to_string(e.inc) +
             " of P" + std::to_string(j) + " ended at " + a.ended.str() +
             " implies stability up to its end (Corollary 1)";
    }
  }
  for (int idx : g.checkpoint_events()) {
    const ProtocolEvent& c = tr.events[static_cast<size_t>(idx)];
    if (c.pid == j && c.at.inc == e.inc && c.at.sii >= e.sii) {
      ev = idx;
      return "checkpoint of P" + std::to_string(j) + " at " + c.at.str() +
             " covers it (Corollary 2)";
    }
  }
  std::string base =
      j == owner ? "own interval logged (sender-local log flush, Theorem 2)"
                 : "log flush at P" + std::to_string(j) +
                       " + logging-progress notification (Theorem 2)";
  if (auto t = g.covered_at(owner, j, e, 0)) {
    base += "; P" + std::to_string(owner) + " observably knew by t=" +
            std::to_string(*t);
  }
  return base;
}

/// Per-process lexicographic max over the cross-process intervals in the
/// closure of `root` — the dependency set the commit had to wait on when
/// the trace carries no send-time vector for the output.
std::map<ProcessId, Entry> closure_deps(const CausalGraph& g,
                                        const IntervalId& root) {
  std::map<ProcessId, Entry> deps;
  for (const IntervalId& iv : g.closure(root)) {
    if (iv.pid < 0) continue;
    auto [it, fresh] = deps.try_emplace(iv.pid, iv.entry());
    if (!fresh && it->second < iv.entry()) it->second = iv.entry();
  }
  return deps;
}

void print_closure(const CausalGraph& g, const IntervalId& root,
                   std::ostream& os) {
  std::vector<IntervalId> cl = g.closure(root);
  std::sort(cl.begin(), cl.end());
  os << "commit closure (" << cl.size() << " intervals):\n";
  for (const IntervalId& iv : cl) {
    os << "  " << iv.str();
    const IntervalNode* node = g.interval(iv);
    if (node == nullptr) {
      os << "  (pre-trace)";
    } else if (node->via_msg) {
      os << "  started by delivery of " << format_msg_id(*node->via_msg)
         << " " << ref(g, node->created_by);
    } else {
      os << "  " << ref(g, node->created_by);
    }
    os << '\n';
  }
}

}  // namespace

bool explain_commit(const CausalGraph& g, const MsgId& output,
                    std::ostream& os) {
  auto commit = g.commit_of(output);
  if (!commit) return false;
  const ProtocolEvent& e =
      g.trace().events[static_cast<size_t>(*commit)];
  os << "output " << format_msg_id(output) << " committed by P" << e.pid
     << " at t=" << e.t << " from interval " << e.ref.str() << "  "
     << ref(g, *commit) << '\n';
  os << "vector at commit: "
     << (e.tdv.non_null_count() == 0
             ? "all NULL — every dependency stable (outputs are 0-optimistic)"
             : e.tdv.str())
     << '\n';

  // Prefer the recorded send-time vector; outputs recorded only at commit
  // fall back to the dependency set implied by the interval closure.
  DepVector at_emit;
  bool from_send = false;
  for (int ep_idx : g.episodes_of(output)) {
    const MsgEpisode& ep = g.episodes()[static_cast<size_t>(ep_idx)];
    if (ep.send_ev >= 0) {
      at_emit = g.trace().events[static_cast<size_t>(ep.send_ev)].tdv;
      from_send = true;
    }
  }
  os << "dependencies at emission"
     << (from_send ? " (recorded send vector):" : " (from closure):") << '\n';
  int listed = 0;
  auto explain_entry = [&](ProcessId j, const Entry& dep) {
    int src_ev = -1;
    std::string why = nulling_source(g, e.pid, j, dep, src_ev);
    os << "  P" << j << ' ' << dep.str() << ": " << why;
    if (src_ev >= 0) os << "  " << ref(g, src_ev);
    os << '\n';
    ++listed;
  };
  if (from_send) {
    for (ProcessId j = 0; j < at_emit.size(); ++j) {
      if (at_emit.at(j)) explain_entry(j, *at_emit.at(j));
    }
  } else {
    for (const auto& [j, dep] : closure_deps(g, e.ref)) explain_entry(j, dep);
  }
  if (listed == 0) os << "  (none)\n";
  print_closure(g, e.ref, os);
  return true;
}

bool explain_hold(const CausalGraph& g, const MsgId& msg, std::ostream& os) {
  std::vector<int> eps = g.episodes_of(msg);
  if (eps.empty()) return false;
  const Trace& tr = g.trace();
  os << "message " << format_msg_id(msg) << " — " << eps.size()
     << (eps.size() == 1 ? " send-buffer episode" : " send-buffer episodes")
     << '\n';
  int no = 0;
  for (int idx : eps) {
    const MsgEpisode& ep = g.episodes()[static_cast<size_t>(idx)];
    os << "episode " << ++no << ":\n";
    const ProtocolEvent* send = nullptr;
    if (ep.send_ev >= 0) {
      send = &tr.events[static_cast<size_t>(ep.send_ev)];
      os << "  sent by P" << ep.sender << " to P" << send->peer << " at t="
         << send->t << " from " << send->ref.str() << "  "
         << ref(g, ep.send_ev) << '\n';
      os << "  K limit " << send->k_limit << "; "
         << n_entries(send->tdv.non_null_count()) << " at send:\n";
      for (ProcessId j = 0; j < send->tdv.size(); ++j) {
        if (send->tdv.at(j)) {
          os << "    P" << j << ' ' << send->tdv.at(j)->str() << '\n';
        }
      }
    }
    if (ep.hold_ev >= 0) {
      const ProtocolEvent& h = tr.events[static_cast<size_t>(ep.hold_ev)];
      os << "  parked: " << n_entries(h.k_reached) << " > K=" << h.k_limit
         << "  " << ref(g, ep.hold_ev) << '\n';
    }
    switch (ep.end) {
      case MsgEpisode::End::kReleased: {
        const ProtocolEvent& r =
            tr.events[static_cast<size_t>(ep.release_ev)];
        if (send != nullptr) {
          int nulled = 0;
          for (ProcessId j = 0; j < send->tdv.size(); ++j) {
            if (!send->tdv.at(j) || (j < r.tdv.size() && r.tdv.at(j)))
              continue;
            int src_ev = -1;
            std::string why =
                nulling_source(g, ep.sender, j, *send->tdv.at(j), src_ev);
            if (nulled++ == 0) os << "  nulled while parked:\n";
            os << "    P" << j << ' ' << send->tdv.at(j)->str() << ": "
               << why;
            if (src_ev >= 0) os << "  " << ref(g, src_ev);
            os << '\n';
          }
        }
        os << "  released at t=" << r.t << " with " << n_entries(r.k_reached)
           << " <= K=" << r.k_limit << "  " << ref(g, ep.release_ev) << '\n';
        break;
      }
      case MsgEpisode::End::kCrashWiped:
        os << "  never released: sender failed at t=" << ep.doomed_at
           << "; the volatile send buffer was wiped\n";
        break;
      case MsgEpisode::End::kDiscarded:
        os << "  never released: a send-vector dependency was announced "
              "dead (orphan discard), doomed by t="
           << ep.doomed_at << '\n';
        break;
      case MsgEpisode::End::kUnreleased:
        os << "  still parked when the trace ends\n";
        break;
    }
  }
  for (int d : g.recv_holds_of(msg)) {
    const ProtocolEvent& h = tr.events[static_cast<size_t>(d)];
    os << "receive-side hold at P" << h.pid
       << " (out-of-order arrival)  " << ref(g, d) << '\n';
  }
  return true;
}

bool explain_orphan(const CausalGraph& g, const IntervalId& iv,
                    std::ostream& os) {
  const bool known = g.interval(iv) != nullptr;
  if (!known && !g.is_dead(iv)) return false;
  std::vector<IntervalId> path = g.path_to_dead(iv);
  if (path.empty()) {
    os << "interval " << iv.str()
       << " is not an orphan: no dead interval in its recorded closure "
          "(Theorem 1)\n";
    return true;
  }
  const IntervalId& dead = path.back();
  os << "interval " << iv.str() << " is an orphan (Theorem 1)\n";
  if (path.size() == 1) {
    os << "  it was announced dead directly\n";
  } else {
    os << "  dependency path to a dead interval:\n";
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const IntervalNode* node = g.interval(path[i]);
      os << "    " << path[i].str() << " <- " << path[i + 1].str();
      if (node != nullptr && node->via_msg && node->msg_parent >= 0 &&
          path[i + 1] == node->parents[static_cast<size_t>(node->msg_parent)]) {
        os << "  (delivery of " << format_msg_id(*node->via_msg) << ' '
           << ref(g, node->created_by) << ')';
      } else {
        os << "  (same-process predecessor)";
      }
      os << '\n';
    }
  }
  if (auto k = g.killer_of(dead)) {
    const ProtocolEvent& a = g.trace().events[static_cast<size_t>(*k)];
    os << "  killed by announcement of P" << a.pid << ": incarnation "
       << a.ended.inc << " ended at " << a.ended.str()
       << (a.from_failure ? " (failure)" : " (rollback)") << ", and "
       << dead.str() << " lies beyond it  " << ref(g, *k) << '\n';
  }
  for (int idx : g.rollback_events()) {
    const ProtocolEvent& r = g.trace().events[static_cast<size_t>(idx)];
    if (r.pid == iv.pid && r.ended.inc == iv.inc && iv.sii > r.ended.sii) {
      os << "  rolled back: P" << r.pid << " restored to " << r.ended.str()
         << ", undoing " << r.undone << " log records  " << ref(g, idx)
         << '\n';
    }
  }
  return true;
}

}  // namespace koptlog::analysis
