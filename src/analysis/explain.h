// Explain queries: human-readable causal answers over a CausalGraph.
//
//  * explain_commit: why was this output released to the environment? Shows
//    the emitting interval's commit closure and, for every dependency-vector
//    entry that was live when the output entered the buffer, which stability
//    source nulled it — a failure announcement (Corollary 1), a checkpoint
//    (Corollary 2), or ordinary log flush + logging-progress notification
//    (Theorem 2).
//  * explain_hold: what kept this message parked in the send buffer, and
//    which event finally dropped its non-NULL count to <= K?
//  * explain_orphan: the transitive dependency path (Theorem 1) from a
//    failure announcement to an interval it doomed.
//
// Each query writes a report to the stream and returns false when the
// addressed entity is not present in the trace (callers map that to a
// distinct exit code).
#pragma once

#include <iosfwd>

#include "analysis/causal_graph.h"

namespace koptlog::analysis {

bool explain_commit(const CausalGraph& g, const MsgId& output,
                    std::ostream& os);
bool explain_hold(const CausalGraph& g, const MsgId& msg, std::ostream& os);
bool explain_orphan(const CausalGraph& g, const IntervalId& iv,
                    std::ostream& os);

}  // namespace koptlog::analysis
