#include "analysis/spacetime_svg.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/ids.h"

namespace koptlog::analysis {

namespace {

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// The earliest wire departure of `m`: the first release across its
/// episodes, else the first send. departure_of() (= the *last* release)
/// would deadlock the layer fixed point on crash-replay traces, where a
/// re-send's release lands causally after the delivery the first copy
/// already fed.
std::optional<int> first_departure(const CausalGraph& g, const MsgId& m) {
  int best_release = -1;
  int best_send = -1;
  for (int idx : g.episodes_of(m)) {
    const MsgEpisode& ep = g.episodes()[static_cast<size_t>(idx)];
    if (ep.release_ev >= 0 &&
        (best_release < 0 || ep.release_ev < best_release))
      best_release = ep.release_ev;
    if (ep.send_ev >= 0 && (best_send < 0 || ep.send_ev < best_send))
      best_send = ep.send_ev;
  }
  if (best_release >= 0) return best_release;
  if (best_send >= 0) return best_send;
  return std::nullopt;
}

/// Causal layers: per-process order plus "deliver strictly after the
/// departure of its message". Fixed-point because departures can appear
/// later in file order than the deliveries they feed (the file is merged
/// by (t, pid, seq), not causally sorted).
std::vector<int> causal_layers(const CausalGraph& g) {
  const Trace& tr = g.trace();
  std::vector<int> layer(tr.events.size(), 0);
  // Event indices per process, in stream order.
  std::vector<std::vector<int>> per_proc(static_cast<size_t>(tr.n));
  for (size_t i = 0; i < tr.events.size(); ++i) {
    const ProtocolEvent& e = tr.events[i];
    if (e.pid >= 0 && e.pid < tr.n)
      per_proc[static_cast<size_t>(e.pid)].push_back(static_cast<int>(i));
  }
  bool changed = true;
  for (int pass = 0; changed && pass < 1000; ++pass) {
    changed = false;
    for (const auto& evs : per_proc) {
      int prev = -1;
      for (int idx : evs) {
        const ProtocolEvent& e = tr.events[static_cast<size_t>(idx)];
        int want = prev + 1;
        if (e.kind == EventKind::kDeliver && e.peer != kEnvironment) {
          if (auto dep = first_departure(g, e.msg)) {
            want = std::max(want, layer[static_cast<size_t>(*dep)] + 1);
          }
        }
        if (want > layer[static_cast<size_t>(idx)]) {
          layer[static_cast<size_t>(idx)] = want;
          changed = true;
        }
        prev = layer[static_cast<size_t>(idx)];
      }
    }
  }
  return layer;
}

}  // namespace

std::string render_spacetime_svg(const CausalGraph& g,
                                 const SvgOptions& opts) {
  const Trace& tr = g.trace();
  std::vector<int> layer = causal_layers(g);
  int max_layer = 0;
  for (int l : layer) max_layer = std::max(max_layer, l);

  const int x0 = 70;   // left margin (process labels)
  const int y0 = 40;   // top margin
  const int width = x0 + (max_layer + 2) * opts.dx;
  const int body = y0 + tr.n * opts.dy;
  const int height = body + (opts.legend ? 46 : 10);
  auto ex = [&](int idx) { return x0 + layer[static_cast<size_t>(idx)] * opts.dx; };
  auto py = [&](ProcessId p) { return y0 + static_cast<int>(p) * opts.dy; };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\" font-family=\"monospace\" font-size=\"11\">\n";
  os << "<defs>\n"
        "<marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" "
        "markerWidth=\"7\" markerHeight=\"7\" orient=\"auto-start-reverse\">"
        "<path d=\"M 0 0 L 10 5 L 0 10 z\" fill=\"context-stroke\"/>"
        "</marker>\n</defs>\n";

  // Process lines + labels.
  for (ProcessId p = 0; p < tr.n; ++p) {
    int y = py(p);
    os << "<line x1=\"" << (x0 - 14) << "\" y1=\"" << y << "\" x2=\""
       << (width - 10) << "\" y2=\"" << y
       << "\" stroke=\"#888\" stroke-width=\"1\"/>\n";
    os << "<text x=\"12\" y=\"" << (y + 4) << "\" fill=\"#000\">P" << p
       << "</text>\n";
  }

  // Message arrows first, so glyphs draw on top of them.
  for (size_t i = 0; i < tr.events.size(); ++i) {
    const ProtocolEvent& e = tr.events[i];
    if (e.kind != EventKind::kDeliver) continue;
    int x2 = ex(static_cast<int>(i));
    int y2 = py(e.pid);
    std::string label = xml_escape(format_msg_id(e.msg));
    if (e.peer == kEnvironment) {
      // Environment injection: a short stub from above the line.
      os << "<line x1=\"" << (x2 - 14) << "\" y1=\"" << (y2 - 22)
         << "\" x2=\"" << x2 << "\" y2=\"" << y2
         << "\" stroke=\"#aaa\" stroke-dasharray=\"3,2\" "
            "marker-end=\"url(#arrow)\"/>\n";
      os << "<text x=\"" << (x2 - 24) << "\" y=\"" << (y2 - 26)
         << "\" fill=\"#aaa\">" << label << "</text>\n";
      continue;
    }
    auto dep = first_departure(g, e.msg);
    if (!dep) continue;
    int x1 = ex(*dep);
    int y1 = py(tr.events[static_cast<size_t>(*dep)].pid);
    os << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
       << "\" y2=\"" << y2
       << "\" stroke=\"#1661be\" stroke-width=\"1\" "
          "marker-end=\"url(#arrow)\"/>\n";
    os << "<text x=\"" << ((x1 + x2) / 2 + 3) << "\" y=\""
       << ((y1 + y2) / 2 - 3) << "\" fill=\"#1661be\">" << label
       << "</text>\n";
  }

  // Event glyphs.
  for (size_t i = 0; i < tr.events.size(); ++i) {
    const ProtocolEvent& e = tr.events[i];
    int x = ex(static_cast<int>(i));
    int y = py(e.pid);
    switch (e.kind) {
      case EventKind::kCheckpoint:
        os << "<rect x=\"" << (x - 5) << "\" y=\"" << (y - 5)
           << "\" width=\"10\" height=\"10\" fill=\"#000\"><title>checkpoint "
           << xml_escape(e.at.str()) << "</title></rect>\n";
        break;
      case EventKind::kFailureAnnounce: {
        const char* color = e.from_failure ? "#c00020" : "#d07000";
        os << "<g stroke=\"" << color << "\" stroke-width=\"2\">"
           << "<line x1=\"" << (x - 6) << "\" y1=\"" << (y - 6) << "\" x2=\""
           << (x + 6) << "\" y2=\"" << (y + 6) << "\"/>"
           << "<line x1=\"" << (x - 6) << "\" y1=\"" << (y + 6) << "\" x2=\""
           << (x + 6) << "\" y2=\"" << (y - 6) << "\"/>"
           << "<title>" << (e.from_failure ? "failure" : "rollback")
           << " announce: ended " << xml_escape(e.ended.str())
           << "</title></g>\n";
        break;
      }
      case EventKind::kRollback:
        os << "<path d=\"M " << x << ' ' << (y - 7) << " L " << (x + 7) << ' '
           << (y + 6) << " L " << (x - 7) << ' ' << (y + 6)
           << " Z\" fill=\"none\" stroke=\"#d07000\" stroke-width=\"2\">"
           << "<title>rollback to " << xml_escape(e.ended.str())
           << ", undone " << e.undone << "</title></path>\n";
        break;
      case EventKind::kIncarnationBump:
        os << "<path d=\"M " << x << ' ' << (y - 7) << " L " << (x + 7) << ' '
           << y << " L " << x << ' ' << (y + 7) << " L " << (x - 7) << ' '
           << y << " Z\" fill=\"#fff\" stroke=\"#000\">"
           << "<title>incarnation bump to " << xml_escape(e.at.str())
           << "</title></path>\n";
        break;
      case EventKind::kOutputCommit:
        os << "<circle cx=\"" << x << "\" cy=\"" << y
           << "\" r=\"7\" fill=\"none\" stroke=\"#0a7a28\" "
              "stroke-width=\"2\"/>\n";
        os << "<circle cx=\"" << x << "\" cy=\"" << y
           << "\" r=\"3\" fill=\"#0a7a28\"><title>output commit "
           << xml_escape(format_msg_id(e.msg)) << "</title></circle>\n";
        os << "<text x=\"" << (x - 18) << "\" y=\"" << (y + 20)
           << "\" fill=\"#0a7a28\">" << xml_escape(format_msg_id(e.msg))
           << "</text>\n";
        break;
      case EventKind::kBufferHold:
        os << "<circle cx=\"" << x << "\" cy=\"" << y
           << "\" r=\"4\" fill=\"#fff\" stroke=\"#777\"><title>"
           << (e.recv_side ? "recv" : "send") << "-side hold "
           << xml_escape(format_msg_id(e.msg)) << "</title></circle>\n";
        break;
      case EventKind::kSend:
      case EventKind::kDeliver:
      case EventKind::kBufferRelease:
        os << "<circle cx=\"" << x << "\" cy=\"" << y
           << "\" r=\"2\" fill=\"#444\"><title>"
           << event_kind_name(e.kind) << ' '
           << xml_escape(format_msg_id(e.msg)) << "</title></circle>\n";
        break;
      case EventKind::kRetransmit:
        os << "<circle cx=\"" << x << "\" cy=\"" << y
           << "\" r=\"4\" fill=\"none\" stroke=\"#1661be\" "
              "stroke-dasharray=\"2,2\"><title>retransmit "
           << xml_escape(format_msg_id(e.msg)) << "</title></circle>\n";
        break;
      case EventKind::kStorageFlush:
        os << "<rect x=\"" << (x - 2) << "\" y=\"" << (y - 2)
           << "\" width=\"4\" height=\"4\" fill=\"#8a5cad\"><title>"
              "storage flush: durable lsn " << e.lsn
           << "</title></rect>\n";
        break;
      case EventKind::kStorageRecover:
        os << "<rect x=\"" << (x - 5) << "\" y=\"" << (y - 5)
           << "\" width=\"10\" height=\"10\" fill=\"none\" "
              "stroke=\"#8a5cad\" stroke-width=\"2\"><title>"
              "storage recover: " << e.lsn
           << " log records</title></rect>\n";
        break;
      case EventKind::kProgressNotify:
        os << "<circle cx=\"" << x << "\" cy=\"" << y
           << "\" r=\"3\" fill=\"none\" stroke=\"#8a5cad\"><title>"
              "progress notify: " << e.lsn
           << " stable entries</title></circle>\n";
        break;
      case EventKind::kRecorderDrop:
        os << "<text x=\"" << (x - 4) << "\" y=\"" << (y + 4)
           << "\" fill=\"#c00020\" font-weight=\"bold\">!<title>"
              "recorder overflow: " << e.undone
           << " events lost</title></text>\n";
        break;
    }
  }

  if (opts.legend) {
    int y = body + 16;
    os << "<text x=\"12\" y=\"" << y
       << "\" fill=\"#333\">\xE2\x96\xA0 checkpoint   \xC3\x97 failure/rollback "
          "announce   \xE2\x96\xB3 rollback   \xE2\x97\x87 incarnation bump   "
          "\xE2\x97\x8E output commit</text>\n";
    os << "<text x=\"12\" y=\"" << (y + 18)
       << "\" fill=\"#333\">arrows: message departure \xE2\x86\x92 delivery "
          "(x = causal layer, not wall time)</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace koptlog::analysis
