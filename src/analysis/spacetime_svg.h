// Figure-1-style space-time diagram of a recorded trace: one horizontal
// line per process, message arrows from the wire departure (last
// buffer_release, else first send) to each delivery, and glyphs for
// checkpoints (filled square), failure/rollback announcements (X),
// rollbacks (triangle), incarnation bumps (diamond) and output commits
// (double circle).
//
// The x axis is a causal layer, not wall time: each event sits one slot
// after its per-process predecessor and strictly after the departure of
// the message it delivers (the seeded Figure-1 trace stamps every event
// t=0, so timestamps cannot spread the picture). All coordinates are
// integers and the layout is a deterministic fixed point, so the output
// is byte-stable — tests pin a golden SVG of the Figure-1 trace.
#pragma once

#include <string>

#include "analysis/causal_graph.h"

namespace koptlog::analysis {

struct SvgOptions {
  int dx = 56;        ///< horizontal pixels per causal layer
  int dy = 64;        ///< vertical pixels per process line
  bool legend = true;
};

std::string render_spacetime_svg(const CausalGraph& g,
                                 const SvgOptions& opts = {});

}  // namespace koptlog::analysis
