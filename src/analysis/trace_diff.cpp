#include "analysis/trace_diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "obs/ids.h"

namespace koptlog::analysis {

namespace {

const char* end_name(MsgEpisode::End e) {
  switch (e) {
    case MsgEpisode::End::kReleased:
      return "released";
    case MsgEpisode::End::kCrashWiped:
      return "crash-wiped";
    case MsgEpisode::End::kDiscarded:
      return "orphan-discarded";
    case MsgEpisode::End::kUnreleased:
      return "unreleased";
  }
  return "?";
}

/// Modal k_limit over kSend events; -1 when no send carries one.
int modal_k(const CausalGraph& g) {
  std::map<int, int> votes;
  for (const ProtocolEvent& e : g.trace().events) {
    if (e.kind == EventKind::kSend && e.k_limit >= 0) ++votes[e.k_limit];
  }
  int best = -1, best_votes = 0;
  for (const auto& [k, v] : votes) {
    if (v > best_votes) {
      best = k;
      best_votes = v;
    }
  }
  return best;
}

std::optional<SimTime> event_time(const CausalGraph& g, int ev) {
  if (ev < 0) return std::nullopt;
  return g.trace().events[static_cast<size_t>(ev)].t;
}

/// (id, occurrence) -> episode, occurrence in sender stream order.
std::map<std::pair<MsgId, int>, const MsgEpisode*> keyed_episodes(
    const CausalGraph& g) {
  std::map<std::pair<MsgId, int>, const MsgEpisode*> out;
  std::map<MsgId, int> seen;
  for (const MsgEpisode& ep : g.episodes()) {
    out.emplace(std::make_pair(ep.id, seen[ep.id]++), &ep);
  }
  return out;
}

std::map<MsgId, SimTime> commit_times(const CausalGraph& g) {
  std::map<MsgId, SimTime> out;
  for (int ev : g.commit_events()) {
    const ProtocolEvent& e = g.trace().events[static_cast<size_t>(ev)];
    out.emplace(e.msg, e.t);  // first commit wins
  }
  return out;
}

std::string signed_us(SimTime v) {
  return (v >= 0 ? "+" : "") + std::to_string(v) + " us";
}

}  // namespace

TraceDiff diff_traces(const CausalGraph& a, const CausalGraph& b) {
  TraceDiff d;
  d.n_a = a.n();
  d.n_b = b.n();
  d.k_a = modal_k(a);
  d.k_b = modal_k(b);
  d.episodes_a = static_cast<int>(a.episodes().size());
  d.episodes_b = static_cast<int>(b.episodes().size());

  auto ka = keyed_episodes(a);
  auto kb = keyed_episodes(b);
  for (const auto& [key, ea] : ka) {
    auto it = kb.find(key);
    if (it == kb.end()) {
      ++d.only_a;
      continue;
    }
    const MsgEpisode* eb = it->second;
    ++d.matched;
    EpisodeDelta delta;
    delta.id = key.first;
    delta.occurrence = key.second;
    delta.sender = ea->sender;
    delta.send_a = event_time(a, ea->send_ev);
    delta.send_b = event_time(b, eb->send_ev);
    delta.release_a = event_time(a, ea->release_ev);
    delta.release_b = event_time(b, eb->release_ev);
    delta.end_a = ea->end;
    delta.end_b = eb->end;
    if (auto shift = delta.release_shift()) d.release_shift_us.add(
        static_cast<double>(*shift));
    bool moved = delta.release_shift().value_or(0) != 0;
    if (delta.end_changed() || moved) {
      d.changed.push_back(std::move(delta));
    } else {
      ++d.identical;
    }
  }
  for (const auto& [key, eb] : kb) {
    if (!ka.count(key)) ++d.only_b;
  }
  // Fate changes first, then by release-shift magnitude.
  std::stable_sort(d.changed.begin(), d.changed.end(),
                   [](const EpisodeDelta& x, const EpisodeDelta& y) {
                     if (x.end_changed() != y.end_changed())
                       return x.end_changed();
                     return std::llabs(x.release_shift().value_or(0)) >
                            std::llabs(y.release_shift().value_or(0));
                   });

  auto ca = commit_times(a);
  auto cb = commit_times(b);
  d.commits_a = static_cast<int>(ca.size());
  d.commits_b = static_cast<int>(cb.size());
  for (const auto& [id, ta] : ca) {
    auto it = cb.find(id);
    if (it == cb.end()) {
      d.commit_changed.push_back({id, ta, std::nullopt});
      continue;
    }
    ++d.commits_matched;
    d.commit_shift_us.add(static_cast<double>(it->second - ta));
    if (it->second != ta) d.commit_changed.push_back({id, ta, it->second});
  }
  for (const auto& [id, tb] : cb) {
    if (!ca.count(id)) d.commit_changed.push_back({id, std::nullopt, tb});
  }
  std::stable_sort(d.commit_changed.begin(), d.commit_changed.end(),
                   [](const CommitDelta& x, const CommitDelta& y) {
                     bool xone = !x.t_a || !x.t_b, yone = !y.t_a || !y.t_b;
                     if (xone != yone) return xone;
                     SimTime xs = (x.t_a && x.t_b) ? *x.t_b - *x.t_a : 0;
                     SimTime ys = (y.t_a && y.t_b) ? *y.t_b - *y.t_a : 0;
                     return std::llabs(xs) > std::llabs(ys);
                   });

  bool commits_one_sided = d.commits_matched != d.commits_a ||
                           d.commits_matched != d.commits_b;
  d.comparable = d.n_a == d.n_b && d.only_a == 0 && d.only_b == 0 &&
                 !commits_one_sided;
  return d;
}

void print_trace_diff(const TraceDiff& d, std::ostream& os, int top) {
  auto k_str = [](int k) {
    return k < 0 ? std::string("?") : std::to_string(k);
  };
  os << "A: n=" << d.n_a << " K=" << k_str(d.k_a) << ", " << d.episodes_a
     << " episodes, " << d.commits_a << " commits\n"
     << "B: n=" << d.n_b << " K=" << k_str(d.k_b) << ", " << d.episodes_b
     << " episodes, " << d.commits_b << " commits\n";
  if (!d.comparable) {
    os << "note: traces are not one-to-one (different processes, message "
          "sets or outputs) — deltas below are positional, not pure K "
          "effects\n";
  }
  os << "episodes: " << d.matched << " matched (" << d.identical
     << " identical, " << d.changed.size() << " changed)";
  if (d.only_a || d.only_b) {
    os << ", " << d.only_a << " only in A, " << d.only_b << " only in B";
  }
  os << "\n";
  if (d.release_shift_us.count() > 0) {
    os << "release shift (B - A): n=" << d.release_shift_us.count()
       << " mean " << signed_us(static_cast<SimTime>(
                           std::llround(d.release_shift_us.mean())))
       << ", p50 " << signed_us(static_cast<SimTime>(
                           std::llround(d.release_shift_us.p50())))
       << ", max " << signed_us(static_cast<SimTime>(
                           std::llround(d.release_shift_us.max())))
       << "\n";
  }
  int shown = 0;
  for (const EpisodeDelta& e : d.changed) {
    if (shown++ >= top) {
      os << "  ... " << (d.changed.size() - static_cast<size_t>(top))
         << " more changed episodes\n";
      break;
    }
    os << "  " << format_msg_id(e.id);
    if (e.occurrence > 0) os << " (resend #" << e.occurrence << ")";
    os << " from P" << e.sender << ": " << end_name(e.end_a);
    if (e.release_a) os << " @" << *e.release_a;
    os << " -> " << end_name(e.end_b);
    if (e.release_b) os << " @" << *e.release_b;
    if (auto shift = e.release_shift()) os << "  (" << signed_us(*shift) << ")";
    os << "\n";
  }
  os << "commits: " << d.commits_matched << " matched, "
     << d.commit_changed.size() << " changed\n";
  if (d.commit_shift_us.count() > 0) {
    os << "commit shift (B - A): mean "
       << signed_us(static_cast<SimTime>(
              std::llround(d.commit_shift_us.mean())))
       << ", p50 " << signed_us(static_cast<SimTime>(
                           std::llround(d.commit_shift_us.p50())))
       << ", max " << signed_us(static_cast<SimTime>(
                           std::llround(d.commit_shift_us.max())))
       << "\n";
  }
  shown = 0;
  for (const CommitDelta& c : d.commit_changed) {
    if (shown++ >= top) {
      os << "  ... " << (d.commit_changed.size() - static_cast<size_t>(top))
         << " more changed commits\n";
      break;
    }
    os << "  " << format_msg_id(c.output) << ": ";
    if (c.t_a && c.t_b) {
      os << "commit @" << *c.t_a << " -> @" << *c.t_b << "  ("
         << signed_us(*c.t_b - *c.t_a) << ")";
    } else if (c.t_a) {
      os << "committed in A @" << *c.t_a << ", never in B";
    } else {
      os << "never in A, committed in B @" << *c.t_b;
    }
    os << "\n";
  }
}

}  // namespace koptlog::analysis
