// Trace diff: compare two recorded runs hop by hop — which messages were
// parked longer or shorter in the send buffer, which episodes changed fate
// (released vs crash-wiped vs orphan-discarded), and how output commits
// shifted. The intended use is two same-seed runs at different K (the
// commit-latency vs logging-overhead dial, Theorem 4): the workload and
// failure schedule match event for event, so every delta is attributable
// to the K bound alone. The diff is purely positional, though — any two
// traces can be compared, and non-matching message sets are reported
// rather than rejected.
//
// Matching: a message episode is keyed by (MsgId, occurrence index) —
// replay after a crash re-sends with the same MsgId, so the i-th episode
// of an id in A pairs with the i-th in B (stream order at the sender,
// CausalGraph::episodes_of). Commits are keyed by output id (first commit
// wins, as in CausalGraph::commit_of).
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "analysis/causal_graph.h"
#include "sim/stats.h"

namespace koptlog::analysis {

/// One matched episode whose fate or timing differs between the traces.
struct EpisodeDelta {
  MsgId id;
  int occurrence = 0;  ///< which episode of this id (0 = first send)
  ProcessId sender = 0;
  std::optional<SimTime> send_a, send_b;        ///< kSend times
  std::optional<SimTime> release_a, release_b;  ///< kBufferRelease times
  MsgEpisode::End end_a = MsgEpisode::End::kUnreleased;
  MsgEpisode::End end_b = MsgEpisode::End::kUnreleased;

  bool end_changed() const { return end_a != end_b; }
  /// Both released: release-time shift B - A (hold-duration delta when the
  /// sends line up, which same-seed runs guarantee).
  std::optional<SimTime> release_shift() const {
    if (!release_a || !release_b) return std::nullopt;
    return *release_b - *release_a;
  }
};

/// One output committed in both traces at different times, or in only one.
struct CommitDelta {
  MsgId output;
  std::optional<SimTime> t_a, t_b;
};

struct TraceDiff {
  int n_a = 0, n_b = 0;
  /// Modal k_limit over kSend events (-1: no sends recorded). Two
  /// same-seed different-K traces show their K here.
  int k_a = -1, k_b = -1;
  int episodes_a = 0, episodes_b = 0;

  int matched = 0;    ///< episode pairs matched by (id, occurrence)
  int identical = 0;  ///< matched, same end, same release time
  int only_a = 0, only_b = 0;
  std::vector<EpisodeDelta> changed;  ///< end or release-time differs,
                                      ///< largest |shift| first
  Histogram release_shift_us;  ///< B - A over both-released pairs

  int commits_a = 0, commits_b = 0;
  int commits_matched = 0;
  std::vector<CommitDelta> commit_changed;  ///< moved or one-sided
  Histogram commit_shift_us;  ///< B - A over both-committed outputs

  /// Same processes, same episode keys, same committed outputs — the
  /// precondition for reading the deltas as pure K effects.
  bool comparable = true;
};

TraceDiff diff_traces(const CausalGraph& a, const CausalGraph& b);

/// Human-readable report; at most `top` per-episode and per-commit rows.
void print_trace_diff(const TraceDiff& d, std::ostream& os, int top = 12);

}  // namespace koptlog::analysis
