#include "analysis/whatif.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/ids.h"

namespace koptlog::analysis {

namespace {

/// Replay one episode's release rule at bound `k`. Returns the release
/// time, or nullopt when the live count never drops to <= k (or the
/// episode is doomed first).
std::optional<SimTime> replay_episode(const CausalGraph& g,
                                      const MsgEpisode& ep, int k,
                                      int& live_at_send) {
  const ProtocolEvent& send =
      g.trace().events[static_cast<size_t>(ep.send_ev)];
  std::vector<SimTime> null_times;
  int live = 0;
  int never = 0;
  for (ProcessId j = 0; j < send.tdv.size(); ++j) {
    if (!send.tdv.at(j)) continue;
    ++live;
    if (auto t = g.covered_at(ep.sender, j, *send.tdv.at(j), send.t)) {
      null_times.push_back(*t);
    } else {
      ++never;
    }
  }
  live_at_send = live;
  std::optional<SimTime> release;
  if (live <= k) {
    release = send.t;  // the engine checks the buffer right at enqueue
  } else {
    int need = live - k;
    if (need <= static_cast<int>(null_times.size())) {
      std::sort(null_times.begin(), null_times.end());
      release = null_times[static_cast<size_t>(need) - 1];
    }
  }
  // An episode the recorded run lost (sender crash wiped the buffer, or an
  // orphan discard) cannot release once its fate struck.
  if (release && (ep.end == MsgEpisode::End::kCrashWiped ||
                  ep.end == MsgEpisode::End::kDiscarded) &&
      *release >= ep.doomed_at) {
    release.reset();
  }
  return release;
}

/// Chain shift per interval: nullopt = blocked behind a message the replay
/// never releases. Iterative DFS (traces can chain thousands of intervals).
class ShiftMap {
 public:
  ShiftMap(const CausalGraph& g,
           const std::map<int, std::optional<SimTime>>& episode_delta)
      : g_(g), delta_(episode_delta) {}

  /// `blocked` out-param distinguishes "no shift" from "never happens".
  SimTime shift_of(const IntervalId& iv, bool& blocked) {
    compute(iv);
    const std::optional<SimTime>& s = memo_.at(iv);
    blocked = !s.has_value();
    return s.value_or(0);
  }

 private:
  void compute(const IntervalId& root) {
    std::vector<IntervalId> stack{root};
    while (!stack.empty()) {
      IntervalId iv = stack.back();
      if (memo_.count(iv)) {
        stack.pop_back();
        continue;
      }
      const IntervalNode* node = g_.interval(iv);
      if (node == nullptr) {  // pre-trace leaf: nothing shifted it
        memo_[iv] = SimTime{0};
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (const IntervalId& p : node->parents) {
        if (memo_.count(p) == 0 && !in_progress_.count(p)) {
          stack.push_back(p);
          ready = false;
        }
      }
      if (!ready) {
        in_progress_.insert(iv);
        continue;
      }
      std::optional<SimTime> shift = SimTime{0};
      for (size_t pi = 0; pi < node->parents.size(); ++pi) {
        auto it = memo_.find(node->parents[pi]);
        // A parent still in_progress would mean a cycle; the interval DAG
        // has none, but a malformed trace shouldn't hang us.
        std::optional<SimTime> ps =
            it != memo_.end() ? it->second : std::optional<SimTime>{0};
        // The delivery edge additionally carries the message's own delay.
        if (static_cast<int>(pi) == node->msg_parent && node->via_msg && ps) {
          if (auto dep = departure_delta(*node->via_msg); dep.has_value()) {
            if (dep->has_value()) {
              ps = *ps + **dep;
            } else {
              ps.reset();  // message never released in replay
            }
          }
        }
        if (!shift) continue;
        if (!ps) {
          shift.reset();
        } else {
          shift = std::max(*shift, *ps);
        }
      }
      memo_[iv] = shift;
      in_progress_.erase(iv);
      stack.pop_back();
    }
  }

  /// Outer optional: is there a released episode to attribute at all?
  /// Inner optional: its replay delay, nullopt when replay never releases.
  std::optional<std::optional<SimTime>> departure_delta(const MsgId& msg) {
    auto dep = g_.departure_of(msg);
    if (!dep) return std::nullopt;
    auto it = delta_.find(*dep);
    if (it == delta_.end()) return std::nullopt;  // departure was a raw send
    return it->second;
  }

  const CausalGraph& g_;
  const std::map<int, std::optional<SimTime>>& delta_;
  std::map<IntervalId, std::optional<SimTime>> memo_;
  std::set<IntervalId> in_progress_;
};

}  // namespace

WhatIfResult whatif_replay(const CausalGraph& g, int k) {
  const Trace& tr = g.trace();
  WhatIfResult res;
  res.k = k;
  // Release-event index -> replay delay vs recorded (nullopt: never).
  std::map<int, std::optional<SimTime>> episode_delta;
  for (size_t i = 0; i < g.episodes().size(); ++i) {
    const MsgEpisode& ep = g.episodes()[i];
    if (ep.send_ev < 0) continue;
    const ProtocolEvent& send = tr.events[static_cast<size_t>(ep.send_ev)];
    int eff_k = k >= 0 ? k : send.k_limit;
    WhatIfEpisode we;
    we.episode = static_cast<int>(i);
    we.send_t = send.t;
    we.replay_release = replay_episode(g, ep, eff_k, we.live_at_send);
    if (ep.release_ev >= 0) {
      we.recorded_release = tr.events[static_cast<size_t>(ep.release_ev)].t;
      episode_delta[ep.release_ev] =
          we.replay_release
              ? std::optional<SimTime>{*we.replay_release -
                                       *we.recorded_release}
              : std::nullopt;
    }
    ++res.sends;
    if (we.replay_release) {
      ++res.released;
      res.hold_us.add(static_cast<double>(*we.replay_release - we.send_t));
    } else {
      ++res.never_released;
    }
    res.episodes.push_back(we);
  }

  ShiftMap shifts(g, episode_delta);
  for (int c_idx : g.commit_events()) {
    const ProtocolEvent& c = tr.events[static_cast<size_t>(c_idx)];
    bool blocked = false;
    SimTime shift = shifts.shift_of(c.ref, blocked);
    if (blocked) {
      ++res.commits_blocked;
      continue;
    }
    res.commit_shift_us.add(static_cast<double>(shift));
    // The stability timeline (log flushes, announcements) is K-independent,
    // so an emission delayed by `shift` waits that much less for its
    // dependencies to stabilize.
    std::optional<SimTime> send_t;
    for (int ei : g.episodes_of(c.msg)) {
      const MsgEpisode& ep = g.episodes()[static_cast<size_t>(ei)];
      if (ep.send_ev >= 0)
        send_t = tr.events[static_cast<size_t>(ep.send_ev)].t;
    }
    if (send_t) {
      SimTime recorded_lat = c.t - *send_t;
      res.commit_latency_us.add(
          static_cast<double>(std::max<SimTime>(recorded_lat - shift, 0)));
    }
  }
  return res;
}

std::vector<WhatIfResult> whatif_sweep(const CausalGraph& g,
                                       const std::vector<int>& ks) {
  std::vector<WhatIfResult> out;
  out.reserve(ks.size());
  for (int k : ks) out.push_back(whatif_replay(g, k));
  return out;
}

WhatIfCheck whatif_self_check(const CausalGraph& g) {
  WhatIfCheck check;
  WhatIfResult res = whatif_replay(g, -1);
  for (const WhatIfEpisode& we : res.episodes) {
    const MsgEpisode& ep = g.episodes()[static_cast<size_t>(we.episode)];
    std::ostringstream os;
    if (we.recorded_release.has_value() != we.replay_release.has_value()) {
      os << "episode of " << format_msg_id(ep.id) << " sent at t="
         << we.send_t << ": recorded "
         << (we.recorded_release ? "released" : "never released")
         << " but replay "
         << (we.replay_release ? "released" : "never released");
    } else if (we.recorded_release && we.replay_release &&
               *we.recorded_release != *we.replay_release) {
      os << "episode of " << format_msg_id(ep.id) << " sent at t="
         << we.send_t << ": recorded release t=" << *we.recorded_release
         << " but replay t=" << *we.replay_release;
    } else {
      continue;
    }
    check.ok = false;
    check.detail = os.str();
    break;
  }
  return check;
}

void print_whatif(const std::vector<WhatIfResult>& results,
                  std::ostream& os) {
  os << std::left << std::setw(6) << "K'" << std::right << std::setw(7)
     << "sends" << std::setw(9) << "released" << std::setw(7) << "never"
     << std::setw(11) << "hold_p50" << std::setw(11) << "hold_p99"
     << std::setw(11) << "hold_max" << std::setw(10) << "shift_p50"
     << std::setw(10) << "shift_p99" << std::setw(9) << "lat_p50"
     << std::setw(9) << "lat_p99" << std::setw(9) << "blocked" << '\n';
  for (const WhatIfResult& r : results) {
    os << std::left << std::setw(6)
       << (r.k >= 0 ? std::to_string(r.k) : std::string("rec"))
       << std::right << std::setw(7) << r.sends << std::setw(9) << r.released
       << std::setw(7) << r.never_released << std::setw(11)
       << static_cast<int64_t>(r.hold_us.p50()) << std::setw(11)
       << static_cast<int64_t>(r.hold_us.p99()) << std::setw(11)
       << static_cast<int64_t>(r.hold_us.max()) << std::setw(10)
       << static_cast<int64_t>(r.commit_shift_us.p50()) << std::setw(10)
       << static_cast<int64_t>(r.commit_shift_us.p99()) << std::setw(9)
       << static_cast<int64_t>(r.commit_latency_us.p50()) << std::setw(9)
       << static_cast<int64_t>(r.commit_latency_us.p99()) << std::setw(9)
       << r.commits_blocked << '\n';
  }
}

}  // namespace koptlog::analysis
