// What-if K replay: re-run ONLY the send-buffer release rule (Theorem 4's
// "<= K non-NULL entries") over a recorded trace for alternative K values,
// without re-simulating the cluster.
//
// The replay's nulling timeline is the graph's stability facts: every
// recorded release proves, entry by entry, when its sender knew a remote
// interval stable (see StabilityFact). For an episode sent at t0 with L
// live entries, the replay nulls the m-th entry at its fact time and
// releases at the first instant the live count is <= K'. Because the real
// engine re-checks the buffer at exactly those instants, replay at the
// *recorded* K reproduces the recorded release times bit for bit — the
// property whatif_self_check verifies and tests pin.
//
// Commit latency is propagated to first order: each delivery inherits
// max(receiver chain shift, sender chain shift + release delay of the
// delivering message), and an output commit shifts by its emitting
// interval's chain shift. Episodes the recorded run never released
// (crash-wiped / orphan-discarded) never release in replay either; a
// replay release on or after the episode's doom time is suppressed.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/causal_graph.h"
#include "sim/stats.h"

namespace koptlog::analysis {

struct WhatIfEpisode {
  int episode = -1;  ///< index into CausalGraph::episodes()
  SimTime send_t = 0;
  int live_at_send = 0;
  std::optional<SimTime> recorded_release;
  std::optional<SimTime> replay_release;
};

struct WhatIfResult {
  int k = 0;  ///< the K' this result replays (-1: each episode's recorded K)
  int sends = 0;           ///< episodes with a recorded send
  int released = 0;        ///< episodes the replay releases
  int never_released = 0;  ///< parked past trace end / doomed first
  int commits_blocked = 0; ///< commits depending on a never-released message
  Histogram hold_us;          ///< replay release - send, released episodes
  Histogram commit_shift_us;  ///< commit-time shift vs the recorded run
  Histogram commit_latency_us;  ///< estimated send->commit latency
  std::vector<WhatIfEpisode> episodes;
};

/// Replay every sent episode at K' = `k`, or at each episode's own recorded
/// k_limit when `k` < 0 (the self-check configuration).
WhatIfResult whatif_replay(const CausalGraph& g, int k);

std::vector<WhatIfResult> whatif_sweep(const CausalGraph& g,
                                       const std::vector<int>& ks);

/// The exactness property: replay at the recorded K must reproduce the
/// recorded buffer_release events exactly — same set of released episodes,
/// same release times. `detail` names the first mismatch.
struct WhatIfCheck {
  bool ok = true;
  std::string detail;
};
WhatIfCheck whatif_self_check(const CausalGraph& g);

void print_whatif(const std::vector<WhatIfResult>& results, std::ostream& os);

}  // namespace koptlog::analysis
