#include "app/workloads.h"

#include <cstring>

#include "common/check.h"

namespace koptlog {

// ---------------------------------------------------------------------------
// HashChainApp
// ---------------------------------------------------------------------------

std::vector<uint8_t> HashChainApp::snapshot() const {
  std::vector<uint8_t> out(sizeof(chain_) + sizeof(count_));
  std::memcpy(out.data(), &chain_, sizeof(chain_));
  std::memcpy(out.data() + sizeof(chain_), &count_, sizeof(count_));
  return out;
}

void HashChainApp::restore(std::span<const uint8_t> bytes) {
  KOPT_CHECK(bytes.size() == sizeof(chain_) + sizeof(count_));
  std::memcpy(&chain_, bytes.data(), sizeof(chain_));
  std::memcpy(&count_, bytes.data() + sizeof(chain_), sizeof(count_));
}

uint64_t HashChainApp::state_hash() const {
  return hash_combine(chain_, static_cast<uint64_t>(count_));
}

uint64_t HashChainApp::absorb(ProcessId from, const AppPayload& p) {
  uint64_t h = chain_;
  h = hash_combine(h, static_cast<uint64_t>(from));
  h = hash_combine(h, static_cast<uint64_t>(p.kind));
  h = hash_combine(h, static_cast<uint64_t>(p.a));
  h = hash_combine(h, static_cast<uint64_t>(p.b));
  h = hash_combine(h, static_cast<uint64_t>(p.ttl));
  chain_ = h;
  ++count_;
  return h;
}

namespace {

ProcessId pick_peer(uint64_t h, ProcessId self, int n) {
  auto t = static_cast<ProcessId>(h % static_cast<uint64_t>(n));
  if (t == self) t = static_cast<ProcessId>((t + 1) % n);
  return t;
}

// ---------------------------------------------------------------------------
// Uniform random messaging
// ---------------------------------------------------------------------------

class UniformApp final : public HashChainApp {
 public:
  explicit UniformApp(UniformParams params) : params_(params) {}

  void on_deliver(AppContext& ctx, ProcessId from,
                  const AppPayload& p) override {
    uint64_t h = absorb(from, p);
    if (p.kind == kToken && p.ttl > 0) {
      AppPayload hop;
      hop.kind = kToken;
      hop.a = static_cast<int64_t>(h);
      hop.b = p.b;  // request lineage id
      hop.ttl = p.ttl - 1;
      ctx.send(pick_peer(h, ctx.self(), ctx.system_size()), hop);
      if (params_.extra_send_denominator > 0 &&
          (h >> 33) % static_cast<uint64_t>(params_.extra_send_denominator) ==
              0) {
        hop.a = static_cast<int64_t>(h ^ 0x5bd1e995u);
        ctx.send(pick_peer(h >> 17, ctx.self(), ctx.system_size()), hop);
      }
    }
    if (params_.output_every > 0 && count_ % params_.output_every == 0) {
      AppPayload out;
      out.kind = kOutputKind;
      out.a = static_cast<int64_t>(chain_);
      out.b = count_;
      ctx.output(out);
    }
  }

 private:
  UniformParams params_;
};

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

class PipelineApp final : public HashChainApp {
 public:
  explicit PipelineApp(PipelineParams params) : params_(params) {}

  void on_deliver(AppContext& ctx, ProcessId from,
                  const AppPayload& p) override {
    uint64_t h = absorb(from, p);
    if (p.kind != kPipeItem) return;
    if (ctx.self() + 1 < ctx.system_size()) {
      AppPayload next;
      next.kind = kPipeItem;
      next.a = static_cast<int64_t>(h);  // transformed item
      next.b = p.b;                      // item id
      next.c = p.c;                      // item birth time
      next.ttl = p.ttl;
      ctx.send(ctx.self() + 1, next);
    } else if (params_.output_every > 0 &&
               count_ % params_.output_every == 0) {
      AppPayload out;
      out.kind = kOutputKind;
      out.a = static_cast<int64_t>(h);
      out.b = p.b;
      out.c = p.c;
      ctx.output(out);
    }
  }

 private:
  PipelineParams params_;
};

// ---------------------------------------------------------------------------
// Client-server
// ---------------------------------------------------------------------------

class ClientServerApp final : public HashChainApp {
 public:
  explicit ClientServerApp(ClientServerParams params) : params_(params) {}

  void on_deliver(AppContext& ctx, ProcessId from,
                  const AppPayload& p) override {
    uint64_t h = absorb(from, p);
    switch (p.kind) {
      case kRequest: {
        ProcessId owner = static_cast<ProcessId>(
            static_cast<uint64_t>(p.a) % static_cast<uint64_t>(ctx.system_size()));
        if (owner == ctx.self()) {
          emit_reply_output(ctx, h, p.c);
        } else {
          AppPayload sub;
          sub.kind = kSubRequest;
          sub.a = p.a;
          sub.b = ctx.self();  // reply-to
          sub.c = p.c;         // request birth time (end-to-end latency)
          ctx.send(owner, sub);
        }
        break;
      }
      case kSubRequest: {
        AppPayload rep;
        rep.kind = kReply;
        rep.a = static_cast<int64_t>(h);  // "result"
        rep.b = p.a;
        rep.c = p.c;
        ctx.send(static_cast<ProcessId>(p.b), rep);
        break;
      }
      case kReply:
        emit_reply_output(ctx, h, p.c);
        break;
      default:
        break;
    }
  }

 private:
  void emit_reply_output(AppContext& ctx, uint64_t h, int64_t birth) {
    ++replies_;
    if (params_.output_every > 0 && replies_ % params_.output_every == 0) {
      AppPayload out;
      out.kind = kOutputKind;
      out.a = static_cast<int64_t>(h);
      out.b = replies_;
      out.c = birth;  // request birth time, for end-to-end latency
      ctx.output(out);
    }
  }

  // replies_ is part of deterministic state: fold it into the snapshot.
 public:
  std::vector<uint8_t> snapshot() const override {
    std::vector<uint8_t> out = HashChainApp::snapshot();
    size_t base = out.size();
    out.resize(base + sizeof(replies_));
    std::memcpy(out.data() + base, &replies_, sizeof(replies_));
    return out;
  }
  void restore(std::span<const uint8_t> bytes) override {
    KOPT_CHECK(bytes.size() >= sizeof(replies_));
    size_t base = bytes.size() - sizeof(replies_);
    HashChainApp::restore(bytes.subspan(0, base));
    std::memcpy(&replies_, bytes.data() + base, sizeof(replies_));
  }
  uint64_t state_hash() const override {
    return hash_combine(HashChainApp::state_hash(),
                        static_cast<uint64_t>(replies_));
  }

 private:
  ClientServerParams params_;
  int64_t replies_ = 0;
};

}  // namespace

ClusterHost::AppFactory make_uniform_app(UniformParams params) {
  return [params](ProcessId) { return std::make_unique<UniformApp>(params); };
}

ClusterHost::AppFactory make_pipeline_app(PipelineParams params) {
  return [params](ProcessId) { return std::make_unique<PipelineApp>(params); };
}

ClusterHost::AppFactory make_client_server_app(ClientServerParams params) {
  return
      [params](ProcessId) { return std::make_unique<ClientServerApp>(params); };
}

// ---------------------------------------------------------------------------
// Load generators
// ---------------------------------------------------------------------------

void inject_uniform_load(ClusterHost& cluster, int count, SimTime from, SimTime to,
                         int ttl, uint64_t seed) {
  KOPT_CHECK(from < to);
  Rng rng = Rng(seed).fork("uniform-load");
  for (int i = 0; i < count; ++i) {
    AppPayload p;
    p.kind = kToken;
    p.a = static_cast<int64_t>(rng.next_u64());
    p.b = i;  // lineage id
    p.ttl = ttl;
    SimTime t = from + static_cast<SimTime>(
                           rng.next_below(static_cast<uint64_t>(to - from)));
    auto target = static_cast<ProcessId>(
        rng.next_below(static_cast<uint64_t>(cluster.size())));
    cluster.inject_at(t, target, p);
  }
}

void inject_pipeline_load(ClusterHost& cluster, int count, SimTime from,
                          SimTime to) {
  KOPT_CHECK(from < to && count > 0);
  SimTime span = to - from;
  for (int i = 0; i < count; ++i) {
    AppPayload p;
    p.kind = kPipeItem;
    p.a = i * 1315423911;
    p.b = i;
    p.c = from + span * i / count;  // birth time
    p.ttl = 0;
    cluster.inject_at(p.c, 0, p);
  }
}

void inject_client_requests(ClusterHost& cluster, int count, SimTime from,
                            SimTime to, uint64_t seed) {
  KOPT_CHECK(from < to);
  Rng rng = Rng(seed).fork("client-load");
  for (int i = 0; i < count; ++i) {
    AppPayload p;
    p.kind = kRequest;
    p.a = static_cast<int64_t>(rng.next_u64() >> 1);
    p.b = i;
    SimTime t = from + static_cast<SimTime>(
                           rng.next_below(static_cast<uint64_t>(to - from)));
    p.c = t;  // birth time
    auto target = static_cast<ProcessId>(
        rng.next_below(static_cast<uint64_t>(cluster.size())));
    cluster.inject_at(t, target, p);
  }
}

}  // namespace koptlog
