// Deterministic PWD workloads. Every application here is a pure state
// machine over (state, delivered message): recovery replay reconstructs
// byte-identical state and re-issues identical sends/outputs, which the
// oracle verifies by hash. Branching decisions are derived from a hash
// chain threaded through the state — pseudo-random traffic, fully
// replay-deterministic.
//
// Workloads terminate: every injected request carries a TTL (or a fixed
// pipeline length), so the cluster can drain.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/application.h"
#include "core/cluster_host.h"

namespace koptlog {

/// Payload kinds shared by the built-in workloads.
enum PayloadKind : int32_t {
  kToken = 1,      ///< uniform workload hop
  kPipeItem = 2,   ///< pipeline stage item
  kRequest = 3,    ///< client-server: request from the outside world
  kSubRequest = 4, ///< client-server: owner lookup
  kReply = 5,      ///< client-server: owner's reply
  kOutputKind = 99 ///< outside-world outputs
};

/// Base class: a 16-byte state (hash chain + delivery count) with
/// snapshot/restore and an order-sensitive hash.
class HashChainApp : public Application {
 public:
  std::vector<uint8_t> snapshot() const override;
  void restore(std::span<const uint8_t> bytes) override;
  uint64_t state_hash() const override;

  uint64_t chain() const { return chain_; }
  int64_t count() const { return count_; }

 protected:
  /// Fold the delivered message into the hash chain; returns the new chain
  /// value (the source of all branching decisions).
  uint64_t absorb(ProcessId from, const AppPayload& p);

  uint64_t chain_ = 0x9e3779b97f4a7c15ull;
  int64_t count_ = 0;
};

// --- Uniform random messaging -------------------------------------------

struct UniformParams {
  int extra_send_denominator = 4;  ///< extra fan-out with prob 1/den (0=never)
  int output_every = 10;           ///< emit an output every k-th delivery
};

/// Each token hop lands on a pseudo-random peer and decrements a TTL;
/// occasionally a hop fans out to a second peer. The communication graph is
/// dense and irregular — the general case for dependency tracking.
ClusterHost::AppFactory make_uniform_app(UniformParams params = {});

// --- Pipeline -------------------------------------------------------------

struct PipelineParams {
  int output_every = 1;  ///< last stage emits an output every k-th item
};

/// Items enter at stage 0 and flow through every process in order; the last
/// stage emits an output. Long dependency chains across all processes —
/// the worst case for rollback propagation.
ClusterHost::AppFactory make_pipeline_app(PipelineParams params = {});

// --- Client-server --------------------------------------------------------

struct ClientServerParams {
  int output_every = 1;  ///< reply handler emits an output every k-th reply
};

/// Outside-world requests hit a front-end process, which consults the
/// hash-owner of the key and answers the outside world — the
/// service-providing shape the paper's telecom motivation describes (§4.1).
ClusterHost::AppFactory make_client_server_app(ClientServerParams params = {});

// --- Load generators -------------------------------------------------------

/// Inject `count` token messages at seeded-random times in [from, to) to
/// seeded-random processes, each with the given TTL.
void inject_uniform_load(ClusterHost& cluster, int count, SimTime from, SimTime to,
                         int ttl, uint64_t seed);

/// Inject `count` pipeline items at stage 0, evenly spaced over [from, to).
void inject_pipeline_load(ClusterHost& cluster, int count, SimTime from,
                          SimTime to);

/// Inject `count` client requests at seeded-random front-ends and times.
void inject_client_requests(ClusterHost& cluster, int count, SimTime from,
                            SimTime to, uint64_t seed);

}  // namespace koptlog
