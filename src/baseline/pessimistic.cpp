#include "baseline/pessimistic.h"

namespace koptlog {

ProtocolConfig pessimistic_baseline() { return ProtocolConfig::pessimistic(); }

ProtocolConfig strom_yemini_baseline() {
  return ProtocolConfig::strom_yemini();
}

ProtocolConfig full_tdv_baseline() {
  ProtocolConfig c;  // Theorems 1 and Corollary 1 applied...
  c.null_stable_entries = false;  // ...but no commit dependency tracking.
  return c;
}

ProtocolConfig k_optimistic(int k) { return ProtocolConfig::k_optimistic(k); }

}  // namespace koptlog
