// Baseline configurations the paper compares against. All baselines run on
// the same recovery engine (core/process.*) with different ProtocolConfig
// settings, so failure-free overhead and recovery-scope comparisons are
// mechanism-for-mechanism fair:
//
//  * pessimistic_baseline()   — classical pessimistic logging [Borg et al.,
//    Huang & Wang]: synchronous log-before-send, no dependency tracking on
//    the wire, 0 revocable messages, localized recovery.
//  * strom_yemini_baseline()  — traditional optimistic logging [Strom &
//    Yemini 1985]: size-N vectors (no Theorem-2 NULLing), delivery delayed
//    until prior-incarnation announcements arrive (no Corollary 1), every
//    rollback announced (no Theorem 1). Requires FIFO channels.
//  * full_tdv_baseline()      — ablation: the improved asynchronous
//    protocol but with commit dependency tracking disabled (entries never
//    NULLed), isolating Theorem 2's contribution to vector size.
#pragma once

#include "core/config.h"

namespace koptlog {

ProtocolConfig pessimistic_baseline();
ProtocolConfig strom_yemini_baseline();
ProtocolConfig full_tdv_baseline();

/// The paper's own contribution with degree of optimism K.
ProtocolConfig k_optimistic(int k);

}  // namespace koptlog
