// Internal invariant checking. Violations indicate a bug in the library (or
// a test oracle mismatch), so they throw — tests can assert on them and the
// simulation never continues past a corrupted state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace koptlog {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace koptlog

// KOPT_CHECK(cond) / KOPT_CHECK_MSG(cond, streamed-message)
#define KOPT_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond))                                                       \
      ::koptlog::detail::fail_check(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define KOPT_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream kopt_check_os;                                \
      kopt_check_os << msg;                                            \
      ::koptlog::detail::fail_check(#cond, __FILE__, __LINE__,         \
                                    kopt_check_os.str());              \
    }                                                                  \
  } while (0)
