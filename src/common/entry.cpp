#include "common/entry.h"

#include <ostream>
#include <sstream>

namespace koptlog {

std::string Entry::str() const {
  std::ostringstream os;
  os << '(' << inc << ',' << sii << ')';
  return os.str();
}

std::string to_string(const OptEntry& e) { return e ? e->str() : "NULL"; }

std::ostream& operator<<(std::ostream& os, const Entry& e) {
  return os << e.str();
}

std::string IntervalId::str() const {
  std::ostringstream os;
  os << '(' << inc << ',' << sii << ")_" << pid;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntervalId& id) {
  return os << id.str();
}

}  // namespace koptlog
