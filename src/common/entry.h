// Entry: the (incarnation, state-interval-index) pair the paper writes as
// (t, x). Dependency vectors, incarnation end tables and logging-progress
// tables are all built from entries.
#pragma once

#include <compare>
#include <iosfwd>
#include <optional>
#include <string>

#include "common/types.h"

namespace koptlog {

/// One (t, x) pair. The paper's NULL entry is represented by
/// std::optional<Entry> == nullopt; NULL compares lexicographically smaller
/// than every real entry (see lex_less below).
struct Entry {
  Incarnation inc = 0;
  Sii sii = 0;

  friend auto operator<=>(const Entry&, const Entry&) = default;

  std::string str() const;
};

/// Optional entry: nullopt plays the role of the paper's NULL, which is
/// "lexicographically smaller than any non-null entry" (Section 4.2).
using OptEntry = std::optional<Entry>;

/// Lexicographic order with NULL smallest, exactly as the protocol uses it
/// for the max() in Deliver_message and the min() in Check_deliverability.
inline bool lex_less(const OptEntry& a, const OptEntry& b) {
  if (!a) return b.has_value();
  if (!b) return false;
  return *a < *b;
}

inline const OptEntry& lex_max(const OptEntry& a, const OptEntry& b) {
  return lex_less(a, b) ? b : a;
}

inline const OptEntry& lex_min(const OptEntry& a, const OptEntry& b) {
  return lex_less(a, b) ? a : b;
}

std::string to_string(const OptEntry& e);
std::ostream& operator<<(std::ostream& os, const Entry& e);

/// Globally unique name of one state interval: the x-th interval of the
/// t-th incarnation of process P_i — the paper's (t, x)_i.
struct IntervalId {
  ProcessId pid = 0;
  Incarnation inc = 0;
  Sii sii = 0;

  friend auto operator<=>(const IntervalId&, const IntervalId&) = default;

  Entry entry() const { return Entry{inc, sii}; }
  std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const IntervalId& id);

struct IntervalIdHash {
  size_t operator()(const IntervalId& id) const noexcept {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(id.pid));
    mix(static_cast<uint64_t>(id.inc));
    mix(static_cast<uint64_t>(id.sii));
    return static_cast<size_t>(h);
  }
};

}  // namespace koptlog
