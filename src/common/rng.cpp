#include "common/rng.h"

#include <cmath>

namespace koptlog {

uint64_t Rng::next_u64() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rng::next_below(uint64_t bound) {
  if (bound <= 1) return 0;
  // Plain modulo reduction; the bias is negligible for simulation use.
  return next_u64() % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

int64_t Rng::next_range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::next_exponential(double mean) {
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork(std::string_view label) const {
  uint64_t h = fnv1a64(label.data(), label.size(), state_ ^ 0xa5a5a5a5a5a5a5a5ull);
  return Rng(h);
}

uint64_t fnv1a64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace koptlog
