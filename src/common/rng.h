// Deterministic random number generation. Every stochastic component of the
// simulation (network latencies, workload branching, failure times) draws
// from its own named stream so that runs are reproducible from a single
// seed and insensitive to unrelated code changes.
#pragma once

#include <cstdint>
#include <string_view>

namespace koptlog {

/// splitmix64: tiny, fast, high-quality 64-bit PRNG. Used both as a
/// generator and as a seed-mixing function for derived streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next_u64();

  /// Uniform in [0, bound).
  uint64_t next_below(uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi);

  /// True with probability p.
  bool next_bernoulli(double p) { return next_double() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Derive an independent child stream from this seed and a label; does not
  /// advance this generator.
  Rng fork(std::string_view label) const;

 private:
  uint64_t state_;
};

/// Stable 64-bit FNV-1a hash of a byte span; used for stream derivation and
/// for application state hashing (replay-determinism checks).
uint64_t fnv1a64(const void* data, size_t len, uint64_t seed = 1469598103934665603ull);

inline uint64_t hash_combine(uint64_t h, uint64_t v) {
  // Asymmetric mix of h and v through the splitmix64 finalizer (plain
  // FNV-over-v with seed h is symmetric for tiny operands).
  uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace koptlog
