#include "common/trace.h"

namespace koptlog {

Tracer::Sink Tracer::string_sink(std::string& out) {
  return [&out](SimTime t, ProcessId pid, const std::string& line) {
    out += std::to_string(t);
    out += " P";
    out += std::to_string(pid);
    out += ' ';
    out += line;
    out += '\n';
  };
}

}  // namespace koptlog
