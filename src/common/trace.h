// Lightweight structured trace log. The cluster installs a sink so tests
// and examples can observe protocol events (deliveries, rollbacks,
// announcements) without coupling to stdout; disabled by default.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/types.h"

namespace koptlog {

enum class TraceLevel { kOff = 0, kInfo = 1, kDebug = 2 };

class Tracer {
 public:
  using Sink = std::function<void(SimTime, ProcessId, const std::string&)>;

  Tracer() = default;

  void set_sink(Sink sink, TraceLevel level) {
    sink_ = std::move(sink);
    level_ = level;
  }

  bool enabled(TraceLevel level) const {
    return sink_ && static_cast<int>(level) <= static_cast<int>(level_);
  }

  void emit(SimTime t, ProcessId pid, const std::string& line) const {
    if (sink_) sink_(t, pid, line);
  }

  /// Convenience: trace with ostream formatting, evaluated lazily.
  template <typename Fn>
  void log(TraceLevel level, SimTime t, ProcessId pid, Fn&& fn) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    fn(os);
    emit(t, pid, os.str());
  }

  /// A sink that appends "t pid line" rows to a std::string buffer.
  static Sink string_sink(std::string& out);

 private:
  Sink sink_;
  TraceLevel level_ = TraceLevel::kOff;
};

}  // namespace koptlog
