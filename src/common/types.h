// Fundamental identifier and time types shared by every koptlog module.
#pragma once

#include <cstdint>
#include <limits>

namespace koptlog {

/// Index of a process in the system, 0-based. The paper writes P_i.
using ProcessId = int32_t;

/// Sentinel process id for the outside world (clients / output sink).
/// Messages injected from the environment carry an empty dependency vector:
/// the outside world is always stable and never rolls back.
inline constexpr ProcessId kEnvironment = -1;

/// Incarnation (a.k.a. version) number of a process. Incremented on every
/// rollback, whether caused by a local failure or by orphan detection.
using Incarnation = int32_t;

/// State-interval index. A new state interval starts at every message
/// delivery (the only source of nondeterminism under the PWD model).
/// Interval indices are shared across incarnations of one process: after a
/// rollback to interval x, the next incarnation continues at x+1.
using Sii = int64_t;

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Monotonic per-simulation sequence number used to break event-time ties
/// deterministically and to identify messages.
using SeqNo = uint64_t;

}  // namespace koptlog
