// Application interface — the PWD (piecewise deterministic) state machine
// that runs on top of the recovery layer. All nondeterminism must come from
// message deliveries: on_deliver must be a deterministic function of the
// current state and the delivered message, because recovery replays logged
// messages and expects to reconstruct the identical state (and identical
// re-sends).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/protocol_msg.h"

namespace koptlog {

/// Handed to the application during on_start/on_deliver; collects the sends
/// and outside-world outputs the handler produces.
class AppContext {
 public:
  virtual ~AppContext() = default;

  /// Send a message to another process (asynchronously, through the
  /// recovery layer's send buffer) under the system-wide degree of
  /// optimism K.
  virtual void send(ProcessId to, const AppPayload& payload) = 0;

  /// Same, but with a per-message degree of optimism (§4.2: "different
  /// values of K can in fact be applied to different messages in the same
  /// system"): this message is released only once at most `k` of its
  /// dependency entries remain live. k=0 makes it unrevokable, like an
  /// output.
  virtual void send_with_k(ProcessId to, const AppPayload& payload, int k) = 0;

  /// Emit an outside-world output; the recovery layer commits it only once
  /// every interval it depends on is stable (0-optimistic, §4.2).
  virtual void output(const AppPayload& payload) = 0;

  virtual ProcessId self() const = 0;
  virtual int system_size() const = 0;
};

class Application {
 public:
  virtual ~Application() = default;

  /// Runs once at process start, before the initial checkpoint; may send.
  virtual void on_start(AppContext& ctx) { (void)ctx; }

  /// Deterministic transition: called once per delivered message, both
  /// during normal execution and during recovery replay.
  virtual void on_deliver(AppContext& ctx, ProcessId from,
                          const AppPayload& payload) = 0;

  /// State snapshot/restore for checkpointing.
  virtual std::vector<uint8_t> snapshot() const = 0;
  virtual void restore(std::span<const uint8_t> bytes) = 0;

  /// Order-sensitive digest of the full application state; replay
  /// determinism tests require the recovered hash to equal the hash the
  /// state had when the restored interval was first executed.
  virtual uint64_t state_hash() const = 0;
};

using ApplicationFactory =
    std::unique_ptr<Application> (*)(ProcessId pid, uint64_t seed);

}  // namespace koptlog
