#include "core/cluster.h"

#include <sstream>
#include <utility>

#include "common/check.h"

namespace koptlog {

namespace {
Cluster::EngineFactory default_engine() {
  return [](ProcessId pid, const ClusterConfig& cfg, ClusterApi& api,
            std::unique_ptr<Application> app) -> std::unique_ptr<RecoveryProcess> {
    return std::make_unique<Process>(pid, cfg.n, cfg.protocol, api,
                                     std::move(app));
  };
}
}  // namespace

Cluster::Cluster(ClusterConfig cfg, const AppFactory& factory)
    : Cluster(cfg, factory, default_engine()) {}

Cluster::Cluster(ClusterConfig cfg, const AppFactory& factory,
                 const EngineFactory& engine_factory)
    : cfg_(cfg),
      rng_(Rng(cfg.seed).fork("cluster")),
      data_net_(sim_, Rng(cfg.seed).fork("data-net"), cfg.data_latency,
                cfg.fifo),
      control_net_(sim_, Rng(cfg.seed).fork("control-net"),
                   cfg.control_latency, /*fifo=*/false) {
  KOPT_CHECK(cfg.n > 0);
  if (cfg_.enable_oracle) oracle_ = std::make_unique<Oracle>(cfg_.n);
  if (cfg_.record_events)
    recording_ = std::make_unique<Recording>(cfg_.n, cfg_.recording);
  if (cfg_.measure_tracking)
    meter_ = std::make_unique<wire::TrackingMeter>(cfg_.n,
                                                   cfg_.tracking_channels);
  processes_.reserve(static_cast<size_t>(cfg_.n));
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    processes_.push_back(engine_factory(pid, cfg_, *this, factory(pid)));
  }
}

Cluster::~Cluster() = default;

Process& Cluster::process(ProcessId pid) {
  auto* p = dynamic_cast<Process*>(processes_[static_cast<size_t>(pid)].get());
  KOPT_CHECK_MSG(p != nullptr, "engine at P" << pid << " is not a Process");
  return *p;
}

const Process& Cluster::process(ProcessId pid) const {
  const auto* p =
      dynamic_cast<const Process*>(processes_[static_cast<size_t>(pid)].get());
  KOPT_CHECK_MSG(p != nullptr, "engine at P" << pid << " is not a Process");
  return *p;
}

void Cluster::start() {
  for (auto& p : processes_) p->start_process();
  if (cfg_.protocol.coordinated_checkpoints) schedule_checkpoint_round();
}

void Cluster::schedule_checkpoint_round() {
  sim_.schedule_after(cfg_.protocol.checkpoint_interval_us, [this] {
    if (draining_) return;
    stats_.inc("checkpoint.rounds");
    // One marker per process on the control plane: the round's checkpoints
    // form a recovery line whose skew is one control latency.
    for (ProcessId to = 0; to < cfg_.n; ++to) {
      constexpr size_t kMarkerBytes = 8;
      control_net_.send(0, to, kMarkerBytes, [this, to] {
        RecoveryProcess& p = engine(to);
        if (!p.alive()) return;  // it checkpoints at restart time anyway
        p.executor().submit([&p] { p.checkpoint_now(); });
      });
    }
    schedule_checkpoint_round();
  });
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

void Cluster::route_app_msg(AppMsg msg) {
  KOPT_CHECK(msg.to >= 0 && msg.to < cfg_.n);
  size_t bytes = msg.wire_bytes(cfg_.protocol.null_stable_entries);
  if (meter_) {
    // Passive: what the delta encoding would have shipped. The latency
    // charge below still uses the protocol's own wire accounting.
    int64_t full_before = meter_->full_frames();
    size_t delta_bytes = meter_->on_route(msg);
    stats_.inc("track.bytes_sent", static_cast<int64_t>(delta_bytes));
    stats_.inc("track.nnz", msg.tdv.non_null_count());
    stats_.inc("track.msgs");
    if (meter_->full_frames() != full_before) stats_.inc("track.full_frames");
  }
  ProcessId from = msg.from;
  ProcessId to = msg.to;
  data_net_.send(from, to, bytes, [this, m = std::move(msg)]() mutable {
    RecoveryProcess& p = engine(m.to);
    if (!p.alive()) {
      // The paper leaves lost in-transit messages out of scope (§2 fn. 3):
      // messages addressed to a crashed process are dropped.
      stats_.inc("msgs.dropped_receiver_down");
      return;
    }
    p.executor().submit([&p, m = std::move(m)] { p.handle_app_msg(m); });
  });
}

void Cluster::deliver_control_announcement(ProcessId to, const Announcement& a) {
  RecoveryProcess& p = engine(to);
  if (!p.alive()) return;  // re-delivered from all_announcements_ on restart
  p.executor().submit([&p, a] { p.handle_announcement(a); });
}

void Cluster::broadcast_announcement(const Announcement& a) {
  all_announcements_.push_back(a);
  for (ProcessId to = 0; to < cfg_.n; ++to) {
    if (to == a.from) continue;
    control_net_.send(a.from, to, Announcement::kWireBytes,
                      [this, to, a] { deliver_control_announcement(to, a); });
  }
}

void Cluster::broadcast_log_progress(const LogProgressMsg& lp) {
  for (ProcessId to = 0; to < cfg_.n; ++to) {
    if (to == lp.from) continue;
    control_net_.send(lp.from, to, lp.wire_bytes(), [this, to, lp] {
      RecoveryProcess& p = engine(to);
      if (!p.alive()) return;  // periodic re-broadcasts make this harmless
      p.executor().submit([&p, lp] { p.handle_log_progress(lp); });
    });
  }
}

void Cluster::send_ack(ProcessId acker, ProcessId sender, MsgId id) {
  KOPT_CHECK(sender >= 0 && sender < cfg_.n);
  constexpr size_t kAckBytes = 4 + 4 + 8;
  // Acks ride the (lossy-to-down-receivers) data network: a lost ack only
  // costs one extra retransmission.
  data_net_.send(acker, sender, kAckBytes, [this, sender, id] {
    RecoveryProcess& p = engine(sender);
    if (!p.alive()) return;
    p.executor().submit([&p, id] { p.handle_ack(id); });
  });
}

void Cluster::send_dep_query(const DepQuery& q) {
  KOPT_CHECK(q.target.pid >= 0 && q.target.pid < cfg_.n);
  stats_.inc("ddt.queries");
  control_net_.send(q.requester, q.target.pid, DepQuery::kWireBytes,
                    [this, q] {
                      RecoveryProcess& p = engine(q.target.pid);
                      if (!p.alive()) return;  // the requester re-asks
                      p.executor().submit([&p, q] { p.handle_dep_query(q); });
                    });
}

void Cluster::send_dep_reply(ProcessId to, const DepReply& r) {
  KOPT_CHECK(to >= 0 && to < cfg_.n);
  stats_.inc("ddt.replies");
  control_net_.send(r.owner, to, r.wire_bytes(), [this, to, r] {
    RecoveryProcess& p = engine(to);
    if (!p.alive()) return;
    p.executor().submit([&p, r] { p.handle_dep_reply(r); });
  });
}

void Cluster::commit_output(const OutputRecord& rec) {
  SimTime now = sim_.now();
  stats_.inc("outputs.committed_total");
  // Exactly-once at the outside world: recovery replay re-emits outputs
  // with identical ids; the sink drops the duplicates.
  if (!committed_ids_.insert(rec.id).second) {
    stats_.inc("outputs.duplicate_suppressed");
    return;
  }
  stats_.inc("outputs.committed");
  stats_.sample("output.commit_latency_us",
                static_cast<double>(now - rec.created_at));
  outputs_.push_back(CommittedOutput{rec.id, rec.born_of.pid, rec.payload,
                                     rec.born_of, now});
  if (oracle_) oracle_->on_output_committed(rec.id, rec.born_of, now);
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

void Cluster::inject(ProcessId to, const AppPayload& payload) {
  KOPT_CHECK(to >= 0 && to < cfg_.n);
  AppMsg m;
  m.id = MsgId{kEnvironment, ++env_seq_};
  m.from = kEnvironment;
  m.to = to;
  m.payload = payload;
  m.tdv = DepVector(cfg_.n);  // the outside world is always stable
  m.born_of = IntervalId{kEnvironment, 0, 0};
  m.sent_at = sim_.now();
  stats_.inc("env.injected");
  route_app_msg(std::move(m));
}

void Cluster::inject_at(SimTime t, ProcessId to, const AppPayload& payload) {
  sim_.schedule_at(t, [this, to, payload] { inject(to, payload); });
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

void Cluster::fail_at(SimTime t, ProcessId pid) {
  KOPT_CHECK(pid >= 0 && pid < cfg_.n);
  sim_.schedule_at(t, [this, pid] {
    RecoveryProcess& p = engine(pid);
    if (!p.alive()) {
      stats_.inc("crash.skipped_already_down");
      return;
    }
    p.crash();
    sim_.schedule_after(cfg_.protocol.restart_delay_us, [this, pid] {
      RecoveryProcess& p2 = engine(pid);
      KOPT_CHECK(!p2.alive());
      p2.restart();
      // Reliable announcement delivery: catch the restarted process up on
      // every announcement ever broadcast (its journal makes the
      // already-processed ones no-ops).
      for (const Announcement& a : all_announcements_) {
        if (a.from == pid) continue;
        p2.executor().submit([&p2, a] { p2.handle_announcement(a); });
      }
    });
  });
}

// ---------------------------------------------------------------------------
// Running
// ---------------------------------------------------------------------------

void Cluster::run_for(SimTime dt) { sim_.run_until(sim_.now() + dt); }

void Cluster::drain() {
  draining_ = true;
  constexpr int kMaxRounds = 60;
  for (int round = 0; round < kMaxRounds; ++round) {
    sim_.run();
    bool dirty = false;
    for (auto& up : processes_) {
      RecoveryProcess& p = *up;
      if (!p.alive()) {
        dirty = true;  // restart event still pending
        continue;
      }
      if (!p.quiescent()) dirty = true;
      p.executor().submit([&p] { p.drain_tick(); });
    }
    sim_.run();
    if (!dirty) return;
  }
  std::ostringstream os;
  for (auto& up : processes_) {
    RecoveryProcess& p = *up;
    os << "P" << p.pid() << (p.alive() ? "" : " DOWN")
       << (p.quiescent() ? "" : " busy") << "; "
       << "  [at " << p.current().str()
       << " recv=" << p.receive_buffer_size()
       << " send=" << p.send_buffer_size()
       << " out=" << p.output_buffer_size()
       << " vol=" << p.storage().log().volatile_count() << "] ";
  }
  KOPT_CHECK_MSG(false, "cluster failed to drain: " << os.str());
}

}  // namespace koptlog
