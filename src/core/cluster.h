// Cluster — hosts N recovery-layer processes on one deterministic
// simulator: routes application messages through the data network, provides
// the reliable control plane for announcements and logging-progress
// notifications, injects environment messages (the outside world's
// requests), records committed outputs, drives failures/restarts, and owns
// the ground-truth oracle and metrics. One of two ClusterHost backends —
// the bit-for-bit reproducible one (exec/threaded_cluster.h is the other).
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "common/types.h"
#include "core/application.h"
#include "core/cluster_api.h"
#include "core/cluster_host.h"
#include "core/config.h"
#include "core/process.h"
#include "core/recovery_process.h"
#include "net/network.h"
#include "obs/event_recorder.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "wire/delta_codec.h"

namespace koptlog {

class Cluster final : public ClusterApi, public ClusterHost {
 public:
  using AppFactory = ClusterHost::AppFactory;
  using EngineFactory = ClusterHost::EngineFactory;
  using CommittedOutput = koptlog::CommittedOutput;

  Cluster(ClusterConfig cfg, const AppFactory& factory);
  Cluster(ClusterConfig cfg, const AppFactory& factory,
          const EngineFactory& engine_factory);
  ~Cluster() override;

  /// Start every process (Initialize + initial checkpoint + timers).
  void start() override;

  // ---- ClusterApi ----
  Scheduler& scheduler() override { return sim_; }
  Stats& stats() override { return stats_; }
  const Tracer& tracer() const override { return tracer_; }
  void route_app_msg(AppMsg msg) override;
  void broadcast_announcement(const Announcement& a) override;
  void broadcast_log_progress(const LogProgressMsg& lp) override;
  void send_ack(ProcessId acker, ProcessId sender, MsgId id) override;
  void send_dep_query(const DepQuery& q) override;
  void send_dep_reply(ProcessId to, const DepReply& r) override;
  void commit_output(const OutputRecord& rec) override;
  Oracle* oracle() override { return oracle_.get(); }
  EventRecorder* recorder(ProcessId pid) override {
    return recording_ ? &recording_->recorder(pid) : nullptr;
  }
  bool draining() const override { return draining_; }

  // ---- environment (outside world) ----
  void inject(ProcessId to, const AppPayload& payload);
  void inject_at(SimTime t, ProcessId to, const AppPayload& payload) override;

  // ---- failure injection ----
  void fail_at(SimTime t, ProcessId pid) override;

  // ---- running ----
  /// Advance simulated time by `dt`.
  void run_for(SimTime dt) override;
  /// Finish the run: stop periodic timers, repeatedly force flushes and
  /// progress notifications until every buffer in the system is empty and
  /// the event queue is dry. All sent non-orphan messages are then
  /// delivered and all pending outputs committed.
  void drain() override;

  // ---- inspection ----
  /// The concrete simulator (tests single-step it; the abstract seam is
  /// scheduler()).
  Simulator& sim() { return sim_; }
  SimTime now_us() const override { return sim_.now(); }
  /// The hosted engine, protocol-agnostic.
  RecoveryProcess& engine(ProcessId pid) {
    return *processes_[static_cast<size_t>(pid)];
  }
  /// Typed accessor for the default K-optimistic engine (checked downcast).
  Process& process(ProcessId pid);
  const Process& process(ProcessId pid) const;
  int size() const override { return cfg_.n; }
  const ClusterConfig& config() const override { return cfg_; }
  Network& data_network() { return data_net_; }

  const std::vector<CommittedOutput>& outputs() const override {
    return outputs_;
  }
  const std::vector<Announcement>& announcements() const {
    return all_announcements_;
  }

  void set_trace(Tracer::Sink sink, TraceLevel level) {
    tracer_.set_sink(std::move(sink), level);
  }

  const Recording* recording() const override { return recording_.get(); }
  Recording* recording_mut() override { return recording_.get(); }

  /// Non-null iff cfg.measure_tracking: the passive delta-encoding meter
  /// fed by route_app_msg (totals also land in stats() as track.*).
  const wire::TrackingMeter* tracking_meter() const { return meter_.get(); }

 private:
  void deliver_control_announcement(ProcessId to, const Announcement& a);
  void schedule_checkpoint_round();

  ClusterConfig cfg_;
  Simulator sim_;
  Rng rng_;
  Stats stats_;
  Tracer tracer_;
  Network data_net_;
  Network control_net_;
  std::unique_ptr<Oracle> oracle_;
  std::unique_ptr<Recording> recording_;
  std::unique_ptr<wire::TrackingMeter> meter_;
  std::vector<std::unique_ptr<RecoveryProcess>> processes_;
  std::vector<CommittedOutput> outputs_;
  std::set<MsgId> committed_ids_;
  std::vector<Announcement> all_announcements_;
  SeqNo env_seq_ = 0;
  bool draining_ = false;
};

}  // namespace koptlog
