// Cluster — hosts N recovery-layer processes on one simulator: routes
// application messages through the data network, provides the reliable
// control plane for announcements and logging-progress notifications,
// injects environment messages (the outside world's requests), records
// committed outputs, drives failures/restarts, and owns the ground-truth
// oracle and metrics.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "common/types.h"
#include "core/application.h"
#include "core/cluster_api.h"
#include "core/config.h"
#include "core/process.h"
#include "core/recovery_process.h"
#include "net/network.h"
#include "obs/event_recorder.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace koptlog {

struct ClusterConfig {
  int n = 4;
  uint64_t seed = 1;
  ProtocolConfig protocol;
  LatencyModel data_latency{};
  LatencyModel control_latency{.base_us = 150, .per_byte_us = 0.0,
                               .jitter_us = 100, .jitter = Jitter::kUniform};
  bool fifo = false;           ///< FIFO data channels (Strom–Yemini regime)
  bool enable_oracle = true;   ///< ground-truth checking (small runs)
  bool record_events = false;  ///< typed protocol-event recording (src/obs/)
};

class Cluster final : public ClusterApi {
 public:
  using AppFactory = std::function<std::unique_ptr<Application>(ProcessId)>;
  /// Builds one recovery engine per process; defaults to the paper's
  /// Process. The direct-tracking engine (src/direct/) plugs in here.
  using EngineFactory = std::function<std::unique_ptr<RecoveryProcess>(
      ProcessId, const ClusterConfig&, ClusterApi&,
      std::unique_ptr<Application>)>;

  Cluster(ClusterConfig cfg, const AppFactory& factory);
  Cluster(ClusterConfig cfg, const AppFactory& factory,
          const EngineFactory& engine_factory);
  ~Cluster() override;

  /// Start every process (Initialize + initial checkpoint + timers).
  void start();

  // ---- ClusterApi ----
  Simulator& sim() override { return sim_; }
  Stats& stats() override { return stats_; }
  const Tracer& tracer() const override { return tracer_; }
  void route_app_msg(AppMsg msg) override;
  void broadcast_announcement(const Announcement& a) override;
  void broadcast_log_progress(const LogProgressMsg& lp) override;
  void send_ack(ProcessId acker, ProcessId sender, MsgId id) override;
  void send_dep_query(const DepQuery& q) override;
  void send_dep_reply(ProcessId to, const DepReply& r) override;
  void commit_output(const OutputRecord& rec) override;
  Oracle* oracle() override { return oracle_.get(); }
  EventRecorder* recorder(ProcessId pid) override {
    return recording_ ? &recording_->recorder(pid) : nullptr;
  }
  bool draining() const override { return draining_; }

  // ---- environment (outside world) ----
  /// Send a request from the outside world to process `to`, now. Injected
  /// messages carry an empty dependency vector: the outside world is
  /// always stable (it never rolls back).
  void inject(ProcessId to, const AppPayload& payload);
  void inject_at(SimTime t, ProcessId to, const AppPayload& payload);

  // ---- failure injection ----
  /// Crash `pid` at absolute time `t`; it restarts automatically after
  /// protocol.restart_delay_us (plus replay work). A no-op if the process
  /// is already down at `t`.
  void fail_at(SimTime t, ProcessId pid);

  // ---- running ----
  /// Advance simulated time by `dt`.
  void run_for(SimTime dt);
  /// Finish the run: stop periodic timers, repeatedly force flushes and
  /// progress notifications until every buffer in the system is empty and
  /// the event queue is dry. All sent non-orphan messages are then
  /// delivered and all pending outputs committed.
  void drain();

  // ---- inspection ----
  /// The hosted engine, protocol-agnostic.
  RecoveryProcess& engine(ProcessId pid) {
    return *processes_[static_cast<size_t>(pid)];
  }
  /// Typed accessor for the default K-optimistic engine (checked downcast).
  Process& process(ProcessId pid);
  const Process& process(ProcessId pid) const;
  int size() const { return cfg_.n; }
  const ClusterConfig& config() const { return cfg_; }
  Network& data_network() { return data_net_; }

  struct CommittedOutput {
    MsgId id;
    ProcessId pid = 0;
    AppPayload payload;
    IntervalId born_of;
    SimTime committed_at = 0;
  };
  const std::vector<CommittedOutput>& outputs() const { return outputs_; }
  const std::vector<Announcement>& announcements() const {
    return all_announcements_;
  }

  void set_trace(Tracer::Sink sink, TraceLevel level) {
    tracer_.set_sink(std::move(sink), level);
  }

  /// Non-null iff cfg.record_events was set.
  const Recording* recording() const { return recording_.get(); }

 private:
  void deliver_control_announcement(ProcessId to, const Announcement& a);
  void schedule_checkpoint_round();

  ClusterConfig cfg_;
  Simulator sim_;
  Rng rng_;
  Stats stats_;
  Tracer tracer_;
  Network data_net_;
  Network control_net_;
  std::unique_ptr<Oracle> oracle_;
  std::unique_ptr<Recording> recording_;
  std::vector<std::unique_ptr<RecoveryProcess>> processes_;
  std::vector<CommittedOutput> outputs_;
  std::set<MsgId> committed_ids_;
  std::vector<Announcement> all_announcements_;
  SeqNo env_seq_ = 0;
  bool draining_ = false;
};

}  // namespace koptlog
