// ClusterApi — the services a recovery-layer process needs from its host
// cluster: the clock/scheduler seam, message routing, reliable control
// broadcast, the outside-world output sink, metrics, and (optionally) the
// ground-truth oracle. Splitting this interface from Cluster breaks the
// Process <-> Cluster include cycle and lets tests host a Process on a
// minimal harness.
//
// Everything here is expressed against the abstract Scheduler, never the
// concrete Simulator: the same engine code runs on the deterministic
// simulator backend (core/cluster.h) and on the threaded backend
// (exec/threaded_cluster.h), where scheduler() returns the calling
// process's shard event loop and stats() its unshared per-process bag.
#pragma once

#include "common/trace.h"
#include "common/types.h"
#include "core/oracle.h"
#include "core/output.h"
#include "core/protocol_msg.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace koptlog {

class EventRecorder;

class ClusterApi {
 public:
  virtual ~ClusterApi() = default;

  virtual Scheduler& scheduler() = 0;
  virtual Stats& stats() = 0;
  virtual const Tracer& tracer() const = 0;

  /// Route an application message through the (lossy to crashed receivers,
  /// possibly non-FIFO) data network.
  virtual void route_app_msg(AppMsg msg) = 0;

  /// Reliable control broadcast: delivered to every other process,
  /// including processes that are currently down (queued until restart).
  virtual void broadcast_announcement(const Announcement& a) = 0;
  virtual void broadcast_log_progress(const LogProgressMsg& lp) = 0;

  /// Receipt acknowledgment for reliable_delivery mode: `acker` tells
  /// `sender` that message `id` arrived (possibly as a duplicate or an
  /// orphan — either way, stop retransmitting it). May be lost; the
  /// retransmission timer covers ack loss.
  virtual void send_ack(ProcessId acker, ProcessId sender, MsgId id) = 0;

  /// Direct-dependency-tracking assembly traffic (paper §5). Routed on the
  /// control network; lost when the peer is down (the requester re-asks).
  virtual void send_dep_query(const DepQuery& q) = 0;
  virtual void send_dep_reply(ProcessId to, const DepReply& r) = 0;

  /// The outside world accepted a committed output (sink dedups by id).
  virtual void commit_output(const OutputRecord& rec) = 0;

  /// Null when ground-truth checking is disabled.
  virtual Oracle* oracle() = 0;

  /// Typed protocol-event sink for `pid`; null when recording is disabled.
  /// Recording must stay passive — emitting events may not perturb the run.
  virtual EventRecorder* recorder(ProcessId pid) {
    (void)pid;
    return nullptr;
  }

  /// True once the harness enters its drain phase: periodic timers stop
  /// rescheduling so the event queue can run dry.
  virtual bool draining() const = 0;
};

}  // namespace koptlog
