// ClusterHost — the backend-agnostic driver surface of a hosted cluster:
// what workload generators, failure plans, tests and the koptlog_sim CLI
// need, independent of *how* the N processes execute. Two hosts implement
// it: Cluster (core/cluster.h) runs everything on the deterministic
// single-threaded Simulator; ThreadedCluster (exec/threaded_cluster.h)
// runs one real event-loop thread per shard of processes. Drivers written
// against this interface run unchanged on both.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/application.h"
#include "core/config.h"
#include "core/protocol_msg.h"
#include "net/latency_model.h"
#include "obs/event_recorder.h"
#include "sim/stats.h"

namespace koptlog {

class ClusterApi;
class RecoveryProcess;

struct ClusterConfig {
  int n = 4;
  uint64_t seed = 1;
  ProtocolConfig protocol;
  LatencyModel data_latency{};
  LatencyModel control_latency{.base_us = 150, .per_byte_us = 0.0,
                               .jitter_us = 100, .jitter = Jitter::kUniform};
  bool fifo = false;           ///< FIFO data channels (Strom–Yemini regime)
  bool enable_oracle = true;   ///< ground-truth checking (small runs)
  bool record_events = false;  ///< typed protocol-event recording (src/obs/)
  /// Meter the per-channel delta encoding of every routed message's
  /// dependency vector (wire/delta_codec.h): stats-only observation at the
  /// route boundary — the protocol's own wire accounting, latencies and
  /// decisions are untouched, so determinism is preserved. Feeds the
  /// track.* counters and bench E4/E9's sparse-delta bytes column.
  bool measure_tracking = false;
  /// Channel-state cap for the meter (LRU basis compaction); per shard on
  /// the threaded backend.
  size_t tracking_channels = 4096;
  /// Recorder storage when record_events is set: unbounded vectors for
  /// post-hoc merge (default) or bounded SPSC rings for live streaming
  /// through an EventCollector (obs/collector.h).
  RecordingOptions recording;
};

struct CommittedOutput {
  MsgId id;
  ProcessId pid = 0;
  AppPayload payload;
  IntervalId born_of;
  SimTime committed_at = 0;
};

class ClusterHost {
 public:
  /// Builds one application instance per process.
  using AppFactory = std::function<std::unique_ptr<Application>(ProcessId)>;
  /// Builds one recovery engine per process; defaults to the paper's
  /// Process. The direct-tracking engine (src/direct/) plugs in here.
  using EngineFactory = std::function<std::unique_ptr<RecoveryProcess>(
      ProcessId, const ClusterConfig&, ClusterApi&,
      std::unique_ptr<Application>)>;

  virtual ~ClusterHost() = default;

  /// Start every process (Initialize + initial checkpoint + timers).
  virtual void start() = 0;
  virtual int size() const = 0;
  virtual const ClusterConfig& config() const = 0;

  // ---- environment (outside world) ----
  /// Send a request from the outside world to process `to` at time `t`.
  /// Injected messages carry an empty dependency vector: the outside world
  /// is always stable (it never rolls back).
  virtual void inject_at(SimTime t, ProcessId to, const AppPayload& payload) = 0;

  // ---- failure injection ----
  /// Crash `pid` at time `t`; it restarts automatically after
  /// protocol.restart_delay_us (plus replay work). A no-op if the process
  /// is already down at `t`.
  virtual void fail_at(SimTime t, ProcessId pid) = 0;

  // ---- running ----
  /// Advance (simulated or scaled-real) time by `dt` microseconds.
  virtual void run_for(SimTime dt) = 0;
  /// Finish the run: stop periodic timers, repeatedly force flushes and
  /// progress notifications until every buffer in the system is empty.
  virtual void drain() = 0;
  /// Stop the backend's machinery. On the threaded backend this joins the
  /// shard worker threads and must precede stats()/recording() reads; on
  /// the simulator it is a no-op.
  virtual void shutdown() {}

  // ---- inspection ----
  virtual SimTime now_us() const = 0;
  virtual Stats& stats() = 0;
  virtual const std::vector<CommittedOutput>& outputs() const = 0;
  /// Non-null iff config().record_events was set.
  virtual const Recording* recording() const = 0;
  /// Mutable access for a streaming EventCollector that drains the ring
  /// recorders while the run is live. Same nullability as recording().
  virtual Recording* recording_mut() = 0;
};

}  // namespace koptlog
