// ProtocolConfig — every tunable of the recovery layer, including the
// paper's degree of optimism K and the three Strom–Yemini modifications
// (each individually toggleable so the benches can ablate them).
#pragma once

#include <limits>

#include "common/types.h"
#include "storage/stable_storage.h"

namespace koptlog {

struct ProtocolConfig {
  /// Degree of optimism: given any released message, at most K process
  /// failures can revoke it (Theorem 4). 0 = pessimistic guarantee,
  /// N (or kUnboundedK) = traditional optimistic logging.
  int k = kUnboundedK;
  static constexpr int kUnboundedK = std::numeric_limits<int>::max();

  /// Theorem 2 (commit dependency tracking): NULL out dependency entries on
  /// intervals known stable. Off = full transitive tracking (size-N vector
  /// on the wire), the Strom–Yemini regime. Must be on for finite K.
  bool null_stable_entries = true;

  /// Corollary 1: a dependency entry may be overwritten by (or acquired
  /// over) a newer incarnation as soon as the older entry is known *stable*
  /// — and immediately when there is no existing entry. Off = Strom–
  /// Yemini's original rule: delay delivery until the rollback
  /// announcements for all prior incarnations have arrived.
  bool cor1_fast_delivery = true;

  /// Theorem 1 off: every rolled-back process (not only failed ones)
  /// broadcasts a rollback announcement, Strom–Yemini style.
  bool announce_all_rollbacks = false;

  /// Direct-tracking engine only: hold each received message this long
  /// before delivering it, so rollback announcements (which travel on the
  /// low-latency control plane) outrun the data plane. Without transitive
  /// tracking this conservative window is what keeps rollback cascades
  /// finite: messages from a just-ended incarnation are discarded at the
  /// end of the hold instead of being delivered and re-orphaned. The added
  /// delivery latency is part of direct tracking's price (bench E11).
  SimTime ddt_delivery_hold_us = 1'000;

  /// Garbage collection of stable storage (paper §2: logging-progress
  /// information "is accumulated locally at each process to allow output
  /// commit and garbage collection"). At every checkpoint, the newest
  /// checkpoint whose dependency entries are all known stable can never be
  /// orphaned (Theorem 2's argument), so everything older — checkpoints
  /// and log records alike — is reclaimed.
  bool garbage_collect = true;

  /// Reliable delivery via sender-based retransmission (paper §2 fn. 3:
  /// lost in-transit messages "can be retrieved from the senders' volatile
  /// logs"). Released messages are kept until the receiver acknowledges
  /// them and re-sent periodically; receivers deduplicate by id, orphaned
  /// copies are dropped, and replay after a sender crash regenerates the
  /// retransmission state. Off by default (the paper's base model).
  bool reliable_delivery = false;
  SimTime retransmit_interval_us = 50'000;

  /// Classical pessimistic logging (the K=0 baseline's mechanism): every
  /// delivered message is synchronously logged before the application
  /// handler may send. Each interval is stable the moment it exists, so no
  /// dependency ever propagates, messages release immediately, and no
  /// failure can revoke anything — at the price of one blocking
  /// stable-storage write per delivery.
  bool pessimistic_sync_logging = false;

  // --- timers (simulated microseconds) ---
  SimTime flush_interval_us = 5'000;        ///< async log flush period
  SimTime checkpoint_interval_us = 100'000; ///< checkpoint period
  SimTime notify_interval_us = 10'000;      ///< logging-progress broadcast period

  /// Paper §2: "each process takes independent or coordinated checkpoints
  /// [4]". Independent (default): every process runs its own checkpoint
  /// timer. Coordinated: the cluster broadcasts a marker round every
  /// checkpoint_interval_us and processes checkpoint on receipt, so the
  /// checkpoints of a round form a recovery line whose skew is one
  /// control-plane latency. Under message logging both are correct; the
  /// coordinated line keeps every process's replay distance similar.
  bool coordinated_checkpoints = false;

  // --- processing costs ---
  SimTime deliver_cost_us = 10;     ///< app handler service time
  SimTime restart_delay_us = 20'000;///< failure detection + checkpoint reload
  SimTime replay_per_msg_us = 5;    ///< replaying one logged message

  StorageCosts storage;

  /// Storage backend selection: the cost-model simulation (default) or the
  /// durable segmented on-disk log (see storage/storage_backend.h).
  StorageOptions storage_backend;

  /// Convenience presets.
  static ProtocolConfig k_optimistic(int k) {
    ProtocolConfig c;
    c.k = k;
    return c;
  }
  static ProtocolConfig traditional_optimistic() { return ProtocolConfig{}; }
  static ProtocolConfig strom_yemini() {
    ProtocolConfig c;
    c.null_stable_entries = false;
    c.cor1_fast_delivery = false;
    c.announce_all_rollbacks = true;
    return c;
  }
  static ProtocolConfig pessimistic() {
    ProtocolConfig c;
    c.k = 0;
    c.pessimistic_sync_logging = true;
    return c;
  }
};

}  // namespace koptlog
