#include "core/dep_vector.h"

#include <sstream>

#include "common/check.h"

namespace koptlog {

void DepVector::merge_max(const DepVector& other) {
  KOPT_CHECK(entries_.size() == other.entries_.size());
  for (size_t j = 0; j < entries_.size(); ++j) {
    entries_[j] = lex_max(entries_[j], other.entries_[j]);
  }
}

int DepVector::non_null_count() const {
  int n = 0;
  for (const auto& e : entries_)
    if (e) ++n;
  return n;
}

std::string DepVector::str() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (size_t j = 0; j < entries_.size(); ++j) {
    if (!entries_[j]) continue;
    if (!first) os << ", ";
    first = false;
    os << entries_[j]->str() << '_' << j;
  }
  os << '}';
  return os.str();
}

}  // namespace koptlog
