#include "core/dep_vector.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace koptlog {

const DepVector::Slot* DepVector::find(ProcessId j) const {
  uint32_t i = lower_bound(j);
  const Slot* s = slots();
  return (i < nnz_ && s[i].pid == j) ? &s[i] : nullptr;
}

uint32_t DepVector::lower_bound(ProcessId j) const {
  const Slot* s = slots();
  uint32_t lo = 0, hi = nnz_;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (s[mid].pid < j) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void DepVector::spill_to_heap() {
  heap_.assign(inline_.begin(), inline_.begin() + nnz_);
  heap_.reserve(static_cast<size_t>(nnz_) * 2);
  on_heap_ = true;
}

void DepVector::insert_or_assign(ProcessId j, Entry e) {
  uint32_t i = lower_bound(j);
  Slot* s = slots();
  if (i < nnz_ && s[i].pid == j) {
    s[i].entry = e;
    return;
  }
  if (!on_heap_ && nnz_ == kInlineSlots) {
    spill_to_heap();
  }
  if (on_heap_) {
    heap_.insert(heap_.begin() + i, Slot{j, e});
  } else {
    for (uint32_t k = nnz_; k > i; --k) inline_[k] = inline_[k - 1];
    inline_[i] = Slot{j, e};
  }
  ++nnz_;
}

void DepVector::clear(ProcessId j) {
  uint32_t i = lower_bound(j);
  Slot* s = slots();
  if (i >= nnz_ || s[i].pid != j) return;
  if (on_heap_) {
    heap_.erase(heap_.begin() + i);
  } else {
    for (uint32_t k = i; k + 1 < nnz_; ++k) inline_[k] = inline_[k + 1];
  }
  --nnz_;
}

void DepVector::adopt(std::vector<Slot>&& merged) {
  nnz_ = static_cast<uint32_t>(merged.size());
  if (merged.size() <= kInlineSlots) {
    std::copy(merged.begin(), merged.end(), inline_.begin());
    on_heap_ = false;
    heap_.clear();
  } else {
    heap_ = std::move(merged);
    on_heap_ = true;
  }
}

bool DepVector::try_merge_max(const DepVector& other) {
  if (n_ != other.n_) return false;
  if (other.nnz_ == 0) return true;
  // Sorted two-pointer merge: NULL (absent) loses to any entry, so every
  // slot present on either side survives; a pid present on both keeps the
  // lexicographic max.
  std::vector<Slot> merged;
  merged.reserve(static_cast<size_t>(nnz_) + other.nnz_);
  const Slot* a = slots();
  const Slot* b = other.slots();
  uint32_t i = 0, k = 0;
  while (i < nnz_ && k < other.nnz_) {
    if (a[i].pid < b[k].pid) {
      merged.push_back(a[i++]);
    } else if (b[k].pid < a[i].pid) {
      merged.push_back(b[k++]);
    } else {
      merged.push_back(Slot{a[i].pid, std::max(a[i].entry, b[k].entry)});
      ++i;
      ++k;
    }
  }
  while (i < nnz_) merged.push_back(a[i++]);
  while (k < other.nnz_) merged.push_back(b[k++]);
  adopt(std::move(merged));
  return true;
}

void DepVector::merge_max(const DepVector& other) {
  KOPT_CHECK(try_merge_max(other));
}

std::string DepVector::str() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for_each([&](ProcessId j, const Entry& e) {
    if (!first) os << ", ";
    first = false;
    os << e.str() << '_' << j;
  });
  os << '}';
  return os.str();
}

bool operator==(const DepVector& a, const DepVector& b) {
  if (a.n_ != b.n_ || a.nnz_ != b.nnz_) return false;
  const DepVector::Slot* sa = a.slots();
  const DepVector::Slot* sb = b.slots();
  return std::equal(sa, sa + a.nnz_, sb);
}

}  // namespace koptlog
