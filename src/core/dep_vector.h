// DepVector — the transitive dependency vector tdv[1..N] of paper Figure 2,
// with NULL entries (commit dependency tracking, Theorem 2). A NULL entry
// means "no dependency on any non-stable interval of that process"; the
// number of non-NULL entries is exactly the number of processes whose
// failure could revoke a message carrying the vector (Theorem 4), and the
// protocol's K bounds it at release time.
#pragma once

#include <string>
#include <vector>

#include "common/entry.h"
#include "common/types.h"

namespace koptlog {

class DepVector {
 public:
  DepVector() = default;
  explicit DepVector(int n) : entries_(static_cast<size_t>(n)) {}

  int size() const { return static_cast<int>(entries_.size()); }

  const OptEntry& at(ProcessId j) const { return entries_[static_cast<size_t>(j)]; }
  void set(ProcessId j, OptEntry e) { entries_[static_cast<size_t>(j)] = e; }
  void clear(ProcessId j) { entries_[static_cast<size_t>(j)].reset(); }

  /// Deliver_message: tdv[j] = max(tdv[j], m.tdv[j]) for all j.
  void merge_max(const DepVector& other);

  int non_null_count() const;
  bool all_null() const { return non_null_count() == 0; }

  /// Serialized size with NULL omission: a small header plus one
  /// (pid, inc, sii) triple per non-NULL entry. This is the piggyback cost
  /// the benches report (paper §1: "the size of the vector piggybacked on a
  /// message indicates the number of processes whose failures may revoke
  /// the message").
  size_t wire_bytes() const {
    return kWireHeaderBytes +
           static_cast<size_t>(non_null_count()) * kWireEntryBytes;
  }

  /// Serialized size without NULL omission (full size-N vector), for the
  /// Theorem-2 ablation and the Strom–Yemini baseline.
  size_t wire_bytes_full() const {
    return kWireHeaderBytes + entries_.size() * kWireEntryBytes;
  }

  std::string str() const;

  friend bool operator==(const DepVector&, const DepVector&) = default;

  static constexpr size_t kWireHeaderBytes = 2;
  static constexpr size_t kWireEntryBytes = 2 + 4 + 8;  // pid, inc, sii

 private:
  std::vector<OptEntry> entries_;
};

}  // namespace koptlog
