// DepVector — the transitive dependency vector tdv[1..N] of paper Figure 2,
// with NULL entries (commit dependency tracking, Theorem 2). A NULL entry
// means "no dependency on any non-stable interval of that process"; the
// number of non-NULL entries is exactly the number of processes whose
// failure could revoke a message carrying the vector (Theorem 4), and the
// protocol's K bounds it at release time.
//
// Representation: §4.2's NULL-omission taken to its conclusion — only the
// non-NULL entries are stored, as a pid-sorted sparse array with
// small-vector inline storage (no heap allocation up to kInlineSlots
// entries, which covers the common K-bounded case). Every operation the
// protocol runs per message — merge_max, non_null_count, orphan/stability
// scans via for_each — is O(nnz), independent of the system size N, which
// is what lets the cluster axis scale to thousands of processes. Point
// lookups (at/set/clear) are O(log nnz) binary searches. The logical size
// N is kept only for wire accounting and index validation.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/entry.h"
#include "common/types.h"

namespace koptlog {

class DepVector {
 public:
  /// One stored (necessarily non-NULL) entry: dependency on interval
  /// (entry.inc, entry.sii) of process `pid`.
  struct Slot {
    ProcessId pid = 0;
    Entry entry;

    friend bool operator==(const Slot&, const Slot&) = default;
  };

  /// Inline capacity: vectors with at most this many live entries never
  /// touch the heap. Sized for the protocol's sweet spot — K bounds the
  /// live count of every released message, and K is small.
  static constexpr int kInlineSlots = 8;

  DepVector() = default;
  explicit DepVector(int n) : n_(n) {}

  DepVector(const DepVector&) = default;
  DepVector(DepVector&&) noexcept = default;
  DepVector& operator=(const DepVector&) = default;
  DepVector& operator=(DepVector&&) noexcept = default;

  /// Logical size N (the paper's system size), NOT the live entry count.
  int size() const { return n_; }

  /// Entry for process j, NULL when absent. O(log nnz). Out-of-range j is
  /// simply NULL (the sparse form has no slot to overrun).
  OptEntry at(ProcessId j) const {
    const Slot* s = find(j);
    return s != nullptr ? OptEntry{s->entry} : OptEntry{};
  }

  void set(ProcessId j, OptEntry e) {
    if (e) {
      insert_or_assign(j, *e);
    } else {
      clear(j);
    }
  }
  void clear(ProcessId j);

  /// Deliver_message: tdv[j] = max(tdv[j], m.tdv[j]) for all j — realized
  /// as an O(nnz_a + nnz_b) sorted two-pointer merge over the non-NULL
  /// entries (NULL is the lexicographic minimum, so absent slots never
  /// win). Aborts on mismatched logical sizes; see try_merge_max for the
  /// wire-facing variant.
  void merge_max(const DepVector& other);

  /// merge_max with a typed error instead of an abort: returns false and
  /// leaves *this untouched when the logical sizes differ — the shape a
  /// hostile or mis-framed wire vector shows up as. Internal callers keep
  /// merge_max (a size mismatch there is a program bug).
  [[nodiscard]] bool try_merge_max(const DepVector& other);

  int non_null_count() const { return static_cast<int>(nnz_); }
  bool all_null() const { return nnz_ == 0; }

  /// Iterate the non-NULL entries in ascending pid order: fn(pid, entry).
  /// O(nnz) — the replacement for dense index loops on every hot path.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const Slot* s = slots();
    for (uint32_t i = 0; i < nnz_; ++i) fn(s[i].pid, s[i].entry);
  }

  /// True when fn(pid, entry) holds for some non-NULL entry; stops at the
  /// first hit. O(nnz) worst case — the orphan/deliverability predicates.
  template <typename Fn>
  bool any_of(Fn&& fn) const {
    const Slot* s = slots();
    for (uint32_t i = 0; i < nnz_; ++i) {
      if (fn(s[i].pid, s[i].entry)) return true;
    }
    return false;
  }

  /// Serialized size with NULL omission: a small header plus one
  /// (pid, inc, sii) triple per non-NULL entry. This is the piggyback cost
  /// the benches report (paper §1: "the size of the vector piggybacked on a
  /// message indicates the number of processes whose failures may revoke
  /// the message").
  size_t wire_bytes() const {
    return kWireHeaderBytes + static_cast<size_t>(nnz_) * kWireEntryBytes;
  }

  /// Serialized size without NULL omission (full size-N vector), for the
  /// Theorem-2 ablation and the Strom–Yemini baseline.
  size_t wire_bytes_full() const {
    return kWireHeaderBytes + static_cast<size_t>(n_) * kWireEntryBytes;
  }

  std::string str() const;

  /// Logical equality: same N, same non-NULL entries. (Member-wise default
  /// would compare dead inline slots and inline-vs-heap placement.)
  friend bool operator==(const DepVector& a, const DepVector& b);

  static constexpr size_t kWireHeaderBytes = 2;
  static constexpr size_t kWireEntryBytes = 2 + 4 + 8;  // pid, inc, sii

 private:
  const Slot* slots() const {
    return on_heap_ ? heap_.data() : inline_.data();
  }
  Slot* slots() { return on_heap_ ? heap_.data() : inline_.data(); }

  /// Slot for pid j, or nullptr. Binary search over the sorted slots.
  const Slot* find(ProcessId j) const;
  /// Index of the first slot with pid >= j (== nnz_ when none).
  uint32_t lower_bound(ProcessId j) const;

  void insert_or_assign(ProcessId j, Entry e);
  /// Move inline slots to the heap so a 9th entry fits.
  void spill_to_heap();
  /// Replace the whole slot array (merge_max result); `merged` is sorted.
  void adopt(std::vector<Slot>&& merged);

  int n_ = 0;
  uint32_t nnz_ = 0;
  bool on_heap_ = false;
  std::array<Slot, kInlineSlots> inline_{};
  std::vector<Slot> heap_;
};

}  // namespace koptlog
