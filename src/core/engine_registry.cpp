#include "core/engine_registry.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "baseline/pessimistic.h"
#include "direct/direct_process.h"

namespace koptlog {

namespace {

Cluster::EngineFactory kopt_factory() {
  return [](ProcessId pid, const ClusterConfig& cfg, ClusterApi& api,
            std::unique_ptr<Application> app)
             -> std::unique_ptr<RecoveryProcess> {
    return std::make_unique<Process>(pid, cfg.n, cfg.protocol, api,
                                     std::move(app));
  };
}

}  // namespace

EngineRegistry::EngineRegistry() {
  entries_["kopt"] = Entry{
      kopt_factory(),
      "K-optimistic logging (the paper's protocol)",
      nullptr,
  };
  entries_["direct"] = Entry{
      DirectProcess::factory(),
      "direct dependency tracking with on-demand assembly (paper section 5)",
      nullptr,
  };
  entries_["pessimistic"] = Entry{
      kopt_factory(),
      "pessimistic baseline: synchronous log-before-send, K=0",
      [](ClusterConfig& cfg) { cfg.protocol = pessimistic_baseline(); },
  };
  entries_["strom-yemini"] = Entry{
      kopt_factory(),
      "traditional optimistic baseline (Strom-Yemini 1985, FIFO channels)",
      [](ClusterConfig& cfg) {
        cfg.protocol = strom_yemini_baseline();
        cfg.fifo = true;
      },
  };
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry reg;
  return reg;
}

bool EngineRegistry::add(const std::string& name, Entry entry) {
  return entries_.emplace(name, std::move(entry)).second;
}

const EngineRegistry::Entry* EngineRegistry::find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

namespace {

/// Classic two-row Levenshtein distance; inputs are short engine names.
size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::vector<std::string> EngineRegistry::suggestions(
    const std::string& name) const {
  constexpr size_t kMaxDistance = 2;
  std::vector<std::pair<size_t, std::string>> scored;
  for (const auto& [candidate, entry] : entries_) {
    size_t d = edit_distance(name, candidate);
    if (d <= kMaxDistance) scored.emplace_back(d, candidate);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::string> out;
  out.reserve(scored.size());
  for (auto& [d, candidate] : scored) out.push_back(std::move(candidate));
  return out;
}

std::string EngineRegistry::names_joined(char sep) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) os << sep;
    first = false;
    os << name;
  }
  return os.str();
}

std::unique_ptr<Cluster> make_cluster_with_engine(
    const std::string& engine, ClusterConfig cfg,
    const Cluster::AppFactory& app) {
  const EngineRegistry::Entry* entry = EngineRegistry::instance().find(engine);
  if (entry == nullptr) return nullptr;
  if (entry->configure) entry->configure(cfg);
  return std::make_unique<Cluster>(cfg, app, entry->factory);
}

}  // namespace koptlog
