#include "core/engine_registry.h"

#include <sstream>

#include "baseline/pessimistic.h"
#include "direct/direct_process.h"

namespace koptlog {

namespace {

Cluster::EngineFactory kopt_factory() {
  return [](ProcessId pid, const ClusterConfig& cfg, ClusterApi& api,
            std::unique_ptr<Application> app)
             -> std::unique_ptr<RecoveryProcess> {
    return std::make_unique<Process>(pid, cfg.n, cfg.protocol, api,
                                     std::move(app));
  };
}

}  // namespace

EngineRegistry::EngineRegistry() {
  entries_["kopt"] = Entry{
      kopt_factory(),
      "K-optimistic logging (the paper's protocol)",
      nullptr,
  };
  entries_["direct"] = Entry{
      DirectProcess::factory(),
      "direct dependency tracking with on-demand assembly (paper section 5)",
      nullptr,
  };
  entries_["pessimistic"] = Entry{
      kopt_factory(),
      "pessimistic baseline: synchronous log-before-send, K=0",
      [](ClusterConfig& cfg) { cfg.protocol = pessimistic_baseline(); },
  };
  entries_["strom-yemini"] = Entry{
      kopt_factory(),
      "traditional optimistic baseline (Strom-Yemini 1985, FIFO channels)",
      [](ClusterConfig& cfg) {
        cfg.protocol = strom_yemini_baseline();
        cfg.fifo = true;
      },
  };
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry reg;
  return reg;
}

bool EngineRegistry::add(const std::string& name, Entry entry) {
  return entries_.emplace(name, std::move(entry)).second;
}

const EngineRegistry::Entry* EngineRegistry::find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::string EngineRegistry::names_joined(char sep) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) os << sep;
    first = false;
    os << name;
  }
  return os.str();
}

std::unique_ptr<Cluster> make_cluster_with_engine(
    const std::string& engine, ClusterConfig cfg,
    const Cluster::AppFactory& app) {
  const EngineRegistry::Entry* entry = EngineRegistry::instance().find(engine);
  if (entry == nullptr) return nullptr;
  if (entry->configure) entry->configure(cfg);
  return std::make_unique<Cluster>(cfg, app, entry->factory);
}

}  // namespace koptlog
