// EngineRegistry — the named string -> engine-factory table every CLI and
// bench resolves recovery engines through, replacing the ad-hoc
// `a.engine == "direct" ? ... : ...` lambda plumbing around
// Cluster::EngineFactory. Built-in engines (kopt, direct) and the preset
// configurations that run on the kopt engine (pessimistic, strom-yemini)
// register in the constructor; out-of-core engines (experiments, tests)
// call add() at startup.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"

namespace koptlog {

class EngineRegistry {
 public:
  struct Entry {
    Cluster::EngineFactory factory;
    std::string description;
    /// Optional protocol preset the engine name implies (the pessimistic
    /// and Strom–Yemini baselines run on the kopt engine with a pinned
    /// ProtocolConfig). Callers apply it before constructing the cluster;
    /// entries without one leave the caller's config — notably K — alone.
    std::function<void(ClusterConfig&)> configure;
  };

  static EngineRegistry& instance();

  /// Registers a new engine; returns false (no change) if `name` is taken.
  bool add(const std::string& name, Entry entry);
  /// Nullptr when unknown. The pointer stays valid for the program's life.
  const Entry* find(const std::string& name) const;
  /// Registered names, sorted (usage strings, error messages).
  std::vector<std::string> names() const;
  /// "kopt|direct|..." for one-line usage text.
  std::string names_joined(char sep = '|') const;
  /// All entries, name-sorted (--list-engines descriptions).
  const std::map<std::string, Entry>& entries() const { return entries_; }
  /// Registered names within edit distance 2 of `name` (closest first),
  /// for "unknown engine 'kotp' — did you mean kopt?" diagnostics.
  std::vector<std::string> suggestions(const std::string& name) const;

 private:
  EngineRegistry();
  std::map<std::string, Entry> entries_;
};

/// Resolve `engine` and build a cluster with it, applying the entry's
/// preset to `cfg` first. Returns nullptr when the name is unknown.
std::unique_ptr<Cluster> make_cluster_with_engine(
    const std::string& engine, ClusterConfig cfg,
    const Cluster::AppFactory& app);

}  // namespace koptlog
