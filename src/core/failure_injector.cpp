#include "core/failure_injector.h"

#include "common/check.h"
#include "core/cluster_host.h"

namespace koptlog {

FailurePlan FailurePlan::random(Rng rng, int n, int count, SimTime from,
                                SimTime to) {
  KOPT_CHECK(n > 0 && from < to);
  FailurePlan plan;
  plan.crashes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    FailureEvent ev;
    ev.at = from + static_cast<SimTime>(
                       rng.next_below(static_cast<uint64_t>(to - from)));
    ev.pid = static_cast<ProcessId>(rng.next_below(static_cast<uint64_t>(n)));
    plan.crashes.push_back(ev);
  }
  return plan;
}

FailurePlan FailurePlan::spaced(const std::vector<ProcessId>& pids,
                                SimTime from, SimTime to) {
  KOPT_CHECK(from < to);
  FailurePlan plan;
  SimTime span = to - from;
  auto count = static_cast<SimTime>(pids.size());
  for (size_t i = 0; i < pids.size(); ++i) {
    plan.crashes.push_back(FailureEvent{
        from + span * static_cast<SimTime>(i) / count, pids[i]});
  }
  return plan;
}

void apply_failure_plan(ClusterHost& cluster, const FailurePlan& plan) {
  for (const FailureEvent& ev : plan.crashes) cluster.fail_at(ev.at, ev.pid);
}

}  // namespace koptlog
