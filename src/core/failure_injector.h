// Failure plans: deterministic sets of (time, process) crash events,
// either scripted or drawn from a seeded RNG. Applied to a Cluster before
// (or during) a run; each crash automatically restarts after the configured
// restart delay.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace koptlog {

class ClusterHost;

struct FailureEvent {
  SimTime at = 0;
  ProcessId pid = 0;
};

struct FailurePlan {
  std::vector<FailureEvent> crashes;

  /// `count` crashes of uniformly random processes at uniformly random
  /// times in [from, to).
  static FailurePlan random(Rng rng, int n, int count, SimTime from,
                            SimTime to);

  /// One crash of each listed process, evenly spaced over [from, to).
  static FailurePlan spaced(const std::vector<ProcessId>& pids, SimTime from,
                            SimTime to);
};

/// Schedule every crash in the plan on the cluster.
void apply_failure_plan(ClusterHost& cluster, const FailurePlan& plan);

}  // namespace koptlog
