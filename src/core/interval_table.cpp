#include "core/interval_table.h"

#include <limits>
#include <sstream>

namespace koptlog {

void EntrySet::insert(Entry e) {
  auto [it, inserted] = by_inc_.try_emplace(e.inc, e.sii);
  if (!inserted && it->second < e.sii) it->second = e.sii;
}

std::optional<Sii> EntrySet::index_of(Incarnation t) const {
  auto it = by_inc_.find(t);
  if (it == by_inc_.end()) return std::nullopt;
  return it->second;
}

bool EntrySet::covers(Entry e) const {
  auto it = by_inc_.find(e.inc);
  return it != by_inc_.end() && e.sii <= it->second;
}

bool EntrySet::orphans(Entry dep) const {
  for (auto it = by_inc_.lower_bound(dep.inc); it != by_inc_.end(); ++it) {
    if (it->second < dep.sii) return true;
  }
  return false;
}

size_t EntrySet::compact_dominated() {
  // Walk incarnations from highest to lowest tracking the smallest sii seen
  // so far; an entry survives only if it ends strictly earlier than every
  // later incarnation (those are the entries that can convict orphans the
  // later ones cannot).
  size_t removed = 0;
  Sii min_sii = std::numeric_limits<Sii>::max();
  for (auto it = by_inc_.rbegin(); it != by_inc_.rend();) {
    if (it->second >= min_sii) {
      it = decltype(it){by_inc_.erase(std::next(it).base())};
      ++removed;
    } else {
      min_sii = it->second;
      ++it;
    }
  }
  return removed;
}

std::optional<Incarnation> EntrySet::max_incarnation() const {
  if (by_inc_.empty()) return std::nullopt;
  return by_inc_.rbegin()->first;
}

std::string EntrySet::str() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [inc, sii] : by_inc_) {
    if (!first) os << ", ";
    first = false;
    os << '(' << inc << ',' << sii << ')';
  }
  os << '}';
  return os.str();
}

size_t IntervalTable::total_entries() const {
  size_t n = 0;
  for (const auto& s : sets_) n += s.size();
  return n;
}

}  // namespace koptlog
