// IntervalTable — the per-incarnation entry sets the paper keeps twice per
// process: iet[j] (incarnation end table: which interval each incarnation
// of P_j ended at) and log[j] (logging progress: the highest interval of
// each incarnation of P_j known stable). Both use the Insert(se,(t,x'))
// routine of Figure 3: one entry per incarnation, keeping the larger index.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/entry.h"
#include "common/types.h"

namespace koptlog {

/// Entry set for ONE remote process: incarnation -> highest known index.
class EntrySet {
 public:
  /// Figure 3's Insert: max-merge per incarnation.
  void insert(Entry e);

  bool empty() const { return by_inc_.empty(); }
  size_t size() const { return by_inc_.size(); }

  /// Index recorded for incarnation t, if any.
  std::optional<Sii> index_of(Incarnation t) const;

  /// Log-table query (Check_deliverability / Check_send_buffer / Receive_log):
  /// is (t,x) known stable, i.e. ∃(t,x') with x <= x'?
  bool covers(Entry e) const;

  /// IET query (Check_orphan): does a dependency on (t,x) point at a
  /// rolled-back interval, i.e. ∃(s,x') with s >= t and x' < x? (If any
  /// incarnation s >= t ended at x' < x, then incarnation t ended at or
  /// before x', so interval (t,x) was rolled back.)
  bool orphans(Entry dep) const;

  /// Highest incarnation present (SY delay mode wants "have I seen the end
  /// announcement of incarnation t-1 yet").
  std::optional<Incarnation> max_incarnation() const;

  /// Drop every entry (s0,x0) dominated by a later incarnation's entry
  /// (s1,x1) with s1 > s0 and x1 <= x0: any dependency (t,x) the dropped
  /// entry would convict as an orphan (s0 >= t, x0 < x) is also convicted
  /// by the dominating one (s1 > s0 >= t, x1 <= x0 < x), so orphans() is
  /// unchanged — it is the IET's only query under Corollary 1 delivery.
  /// NOT safe for tables read through index_of/covers (the Strom–Yemini
  /// coupling, the log table): those need exact per-incarnation history.
  /// Returns the number of entries removed.
  size_t compact_dominated();

  const std::map<Incarnation, Sii>& entries() const { return by_inc_; }

  std::string str() const;

 private:
  std::map<Incarnation, Sii> by_inc_;
};

/// One EntrySet per process in the system: the paper's iet[1..N] or
/// log[1..N] array.
class IntervalTable {
 public:
  IntervalTable() = default;
  explicit IntervalTable(int n) : sets_(static_cast<size_t>(n)) {}

  int size() const { return static_cast<int>(sets_.size()); }
  EntrySet& of(ProcessId j) { return sets_[static_cast<size_t>(j)]; }
  const EntrySet& of(ProcessId j) const { return sets_[static_cast<size_t>(j)]; }

  void insert(ProcessId j, Entry e) { of(j).insert(e); }

  /// Total entries across all processes (IET size metric, bench E6).
  size_t total_entries() const;

  void clear() {
    for (auto& s : sets_) s = EntrySet{};
  }

 private:
  std::vector<EntrySet> sets_;
};

}  // namespace koptlog
