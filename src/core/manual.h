// Manual single-stepping harness: hosts Process instances without a
// Cluster, capturing everything they emit (routed messages, announcements,
// progress notifications, committed outputs) so callers — protocol tests,
// the Figure-1 walkthrough example and bench — can shuttle messages by hand
// and inspect every intermediate state. draining() is always true, which
// disables the periodic timers: flushes, checkpoints and notifications
// happen only when the caller asks for them.
#pragma once

#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/application.h"
#include "core/cluster_api.h"
#include "core/process.h"
#include "obs/event_recorder.h"
#include "sim/simulator.h"

namespace koptlog {

/// Scriptable application: delivering a kSendCmd payload makes it send, a
/// kOutCmd payload makes it emit an output. Tests drive interval creation
/// (and hence dependency propagation) one delivery at a time.
class ScriptedApp final : public Application {
 public:
  static constexpr int32_t kSendCmd = 100;  ///< a = target pid, b = tag
  static constexpr int32_t kOutCmd = 101;   ///< b = tag
  static constexpr int32_t kNoop = 102;
  static constexpr int32_t kData = 103;
  /// a = target pid, b = tag, c = per-message K (§4.2).
  static constexpr int32_t kSendKCmd = 105;
  /// Causal relay: `a` encodes the remaining route as little-endian decimal
  /// digits (digit = pid+1, 0 = end); each hop forwards from within the
  /// interval the delivery started. If `b` is 1, the final hop emits an
  /// output (tagged `c`). This is how the Figure-1 test builds message
  /// chains like m0 -> m1 -> m2 whose piggybacked vectors accumulate.
  static constexpr int32_t kChain = 104;

  /// Encode a route for kChain: hops visited in order.
  static int64_t route(std::initializer_list<ProcessId> hops) {
    int64_t r = 0;
    int64_t mul = 1;
    for (ProcessId pid : hops) {
      r += (pid + 1) * mul;
      mul *= 10;
    }
    return r;
  }

  void on_deliver(AppContext& ctx, ProcessId from,
                  const AppPayload& p) override {
    (void)from;
    chain_ = hash_combine(chain_, static_cast<uint64_t>(p.kind));
    chain_ = hash_combine(chain_, static_cast<uint64_t>(p.a));
    chain_ = hash_combine(chain_, static_cast<uint64_t>(p.b));
    if (p.kind == kSendCmd) {
      AppPayload data;
      data.kind = kData;
      data.b = p.b;
      ctx.send(static_cast<ProcessId>(p.a), data);
    } else if (p.kind == kSendKCmd) {
      AppPayload data;
      data.kind = kData;
      data.b = p.b;
      ctx.send_with_k(static_cast<ProcessId>(p.a), data,
                      static_cast<int>(p.c));
    } else if (p.kind == kChain) {
      auto next = static_cast<ProcessId>(p.a % 10 - 1);
      if (next >= 0) {
        AppPayload hop = p;
        hop.a = p.a / 10;
        ctx.send(next, hop);
      } else if (p.b == 1) {
        AppPayload out;
        out.kind = kOutputKind_;
        out.b = p.c;
        ctx.output(out);
      }
    } else if (p.kind == kOutCmd) {
      AppPayload out;
      out.kind = kOutputKind_;
      out.b = p.b;
      ctx.output(out);
    }
  }

  std::vector<uint8_t> snapshot() const override {
    std::vector<uint8_t> out(sizeof(chain_));
    std::memcpy(out.data(), &chain_, sizeof(chain_));
    return out;
  }
  void restore(std::span<const uint8_t> bytes) override {
    std::memcpy(&chain_, bytes.data(), sizeof(chain_));
  }
  uint64_t state_hash() const override { return chain_; }

 private:
  static constexpr int32_t kOutputKind_ = 99;
  uint64_t chain_ = 1;
};

class ManualHarness final : public ClusterApi {
 public:
  explicit ManualHarness(int n) : n_(n) {}

  Scheduler& scheduler() override { return sim_; }
  /// The concrete simulator, for tests that single-step time.
  Simulator& sim() { return sim_; }
  Stats& stats() override { return stats_; }
  const Tracer& tracer() const override { return tracer_; }
  void route_app_msg(AppMsg msg) override { sent.push_back(std::move(msg)); }
  void broadcast_announcement(const Announcement& a) override {
    announcements.push_back(a);
  }
  void broadcast_log_progress(const LogProgressMsg& lp) override {
    progresses.push_back(lp);
  }
  void commit_output(const OutputRecord& rec) override {
    outputs.push_back(rec);
  }
  void send_ack(ProcessId acker, ProcessId sender, MsgId id) override {
    acks.emplace_back(acker, sender, id);
  }
  void send_dep_query(const DepQuery& q) override { queries.push_back(q); }
  void send_dep_reply(ProcessId to, const DepReply& r) override {
    replies.emplace_back(to, r);
  }
  Oracle* oracle() override { return nullptr; }
  EventRecorder* recorder(ProcessId pid) override {
    return recording_ ? &recording_->recorder(pid) : nullptr;
  }
  bool draining() const override { return true; }

  /// Turn on typed protocol-event recording for every hosted process.
  void enable_event_recording() {
    if (!recording_) recording_ = std::make_unique<Recording>(n_);
  }
  const Recording* recording() const { return recording_.get(); }

  /// Create a process owned by the caller. Service/storage costs are
  /// zeroed: with costs, released messages and outputs leave the process at
  /// the end of its busy window (a scheduled simulator event), but manual
  /// stepping never runs the simulator — zero costs keep handler effects
  /// synchronously visible, which is what step-by-step protocol scripts
  /// want.
  std::unique_ptr<Process> make_process(ProcessId pid, ProtocolConfig cfg) {
    cfg.deliver_cost_us = 0;
    cfg.replay_per_msg_us = 0;
    cfg.storage.sync_write_us = 0;
    cfg.storage.checkpoint_write_us = 0;
    cfg.storage.async_flush_base_us = 0;
    cfg.storage.async_flush_per_msg_us = 0;
    return std::make_unique<Process>(pid, n_, cfg, *this,
                                     std::make_unique<ScriptedApp>());
  }

  /// An environment message carrying no dependencies.
  AppMsg env_msg(ProcessId to, AppPayload payload) {
    AppMsg m;
    m.id = MsgId{kEnvironment, ++env_seq_};
    m.from = kEnvironment;
    m.to = to;
    m.payload = payload;
    m.tdv = DepVector(n_);
    m.born_of = IntervalId{kEnvironment, 0, 0};
    m.sent_at = sim_.now();
    return m;
  }

  /// Deliver a filler (creates one interval at `p` and nothing else).
  void tick(RecoveryProcess& p) {
    AppPayload noop;
    noop.kind = ScriptedApp::kNoop;
    p.handle_app_msg(env_msg(p.pid(), noop));
  }

  /// Instruct `p` (via one delivery) to send a message to `to`; returns the
  /// message `p` released, removing it from the sent queue. The command
  /// delivery itself starts a new interval at `p`.
  AppMsg command_send(RecoveryProcess& p, ProcessId to, int64_t tag = 0) {
    AppPayload cmd;
    cmd.kind = ScriptedApp::kSendCmd;
    cmd.a = to;
    cmd.b = tag;
    size_t before = sent.size();
    p.handle_app_msg(env_msg(p.pid(), cmd));
    if (sent.size() == before + 1) {
      AppMsg m = std::move(sent.back());
      sent.pop_back();
      return m;
    }
    // Held in the send buffer (K bound) — caller will release it later.
    return AppMsg{};
  }

  /// Instruct `p` to emit an output (buffered until its deps are stable).
  void command_output(RecoveryProcess& p, int64_t tag = 0) {
    AppPayload cmd;
    cmd.kind = ScriptedApp::kOutCmd;
    cmd.b = tag;
    p.handle_app_msg(env_msg(p.pid(), cmd));
  }

  /// Pop the most recently released message.
  AppMsg take_sent() {
    AppMsg m = std::move(sent.back());
    sent.pop_back();
    return m;
  }

  std::vector<AppMsg> sent;
  std::vector<Announcement> announcements;
  std::vector<LogProgressMsg> progresses;
  std::vector<OutputRecord> outputs;
  std::vector<std::tuple<ProcessId, ProcessId, MsgId>> acks;
  std::vector<DepQuery> queries;
  std::vector<std::pair<ProcessId, DepReply>> replies;

 private:
  int n_;
  Simulator sim_;
  Stats stats_;
  Tracer tracer_;
  std::unique_ptr<Recording> recording_;
  SeqNo env_seq_ = 0;
};

}  // namespace koptlog
