#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace koptlog {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Row& Table::Row::cell(const std::string& v) {
  cells_.push_back(Cell{v, false, 0.0});
  return *this;
}

Table::Row& Table::Row::cell(double v, int precision) {
  cells_.push_back(Cell{format_double(v, precision), true, v});
  return *this;
}

Table::Row& Table::Row::cell(int64_t v) {
  cells_.push_back(Cell{std::to_string(v), true, static_cast<double>(v)});
  return *this;
}

Table::Row::~Row() { table_.add_row(std::move(cells_)); }

void Table::add_row(std::vector<Cell> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].text.size());
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2)
         << (c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    std::vector<std::string> texts;
    texts.reserve(row.size());
    for (const Cell& c : row) texts.push_back(c.text);
    print_row(texts);
  }
  os << '\n';
}

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  if (v == static_cast<int64_t>(v) && std::abs(v) < 9.0e15)
    return std::to_string(static_cast<int64_t>(v));
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string json_cell(const Table::Cell& c) {
  return c.numeric ? json_number(c.num) : json_quote(c.text);
}

}  // namespace

BenchJson& BenchJson::param(const std::string& key, const std::string& v) {
  params_.emplace_back(key, json_quote(v));
  return *this;
}

BenchJson& BenchJson::param(const std::string& key, int64_t v) {
  params_.emplace_back(key, std::to_string(v));
  return *this;
}

BenchJson& BenchJson::param(const std::string& key, double v) {
  params_.emplace_back(key, json_number(v));
  return *this;
}

BenchJson& BenchJson::metric(const std::string& key, double v) {
  metrics_.emplace_back(key, json_number(v));
  return *this;
}

BenchJson& BenchJson::metric(const std::string& key, int64_t v) {
  metrics_.emplace_back(key, std::to_string(v));
  return *this;
}

BenchJson& BenchJson::table(const std::string& title, const Table& t) {
  tables_.push_back(NamedTable{title, t.columns(), t.rows()});
  return *this;
}

void BenchJson::write(std::ostream& os) const {
  os << "{\n  \"bench\": " << json_quote(name_);
  auto write_map =
      [&](const char* key,
          const std::vector<std::pair<std::string, std::string>>& kv) {
        os << ",\n  " << json_quote(key) << ": {";
        for (size_t i = 0; i < kv.size(); ++i) {
          if (i) os << ", ";
          os << json_quote(kv[i].first) << ": " << kv[i].second;
        }
        os << "}";
      };
  write_map("params", params_);
  write_map("metrics", metrics_);
  os << ",\n  \"tables\": [";
  for (size_t ti = 0; ti < tables_.size(); ++ti) {
    const NamedTable& t = tables_[ti];
    os << (ti ? ",\n    {" : "\n    {") << "\"title\": " << json_quote(t.title)
       << ", \"columns\": [";
    for (size_t c = 0; c < t.columns.size(); ++c) {
      if (c) os << ", ";
      os << json_quote(t.columns[c]);
    }
    os << "], \"rows\": [";
    for (size_t r = 0; r < t.rows.size(); ++r) {
      if (r) os << ", ";
      os << "[";
      for (size_t c = 0; c < t.rows[r].size(); ++c) {
        if (c) os << ", ";
        os << json_cell(t.rows[r][c]);
      }
      os << "]";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

std::string BenchJson::write_file() const {
  std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) return "";
  write(out);
  return out ? path : "";
}

void print_stats(const Stats& stats, std::ostream& os) {
  os << "counters:\n";
  for (const auto& [name, v] : stats.counters())
    os << "  " << name << " = " << v << '\n';
  os << "histograms:\n";
  for (const auto& [name, h] : stats.histograms()) {
    os << "  " << name << ": n=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.p50() << " p99=" << h.p99() << " max=" << h.max()
       << '\n';
  }
}

}  // namespace koptlog
