#include "core/metrics.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace koptlog {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Row& Table::Row::cell(const std::string& v) {
  cells_.push_back(v);
  return *this;
}

Table::Row& Table::Row::cell(double v, int precision) {
  cells_.push_back(format_double(v, precision));
  return *this;
}

Table::Row& Table::Row::cell(int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::Row::~Row() { table_.add_row(std::move(cells_)); }

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2)
         << (c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

void print_stats(const Stats& stats, std::ostream& os) {
  os << "counters:\n";
  for (const auto& [name, v] : stats.counters())
    os << "  " << name << " = " << v << '\n';
  os << "histograms:\n";
  for (const auto& [name, h] : stats.histograms()) {
    os << "  " << name << ": n=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.p50() << " p99=" << h.p99() << " max=" << h.max()
       << '\n';
  }
}

}  // namespace koptlog
