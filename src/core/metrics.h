// Table formatting for the benchmark harness: every experiment binary
// prints one or more fixed-width tables (rows = parameter points, columns =
// metrics), mirroring how the paper's evaluation would be reported.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace koptlog {

class Table {
 public:
  /// One cell: the formatted text that print() emits, plus the numeric
  /// value when the cell came from a number — so machine-readable exports
  /// (BenchJson) emit real JSON numbers instead of re-parsing strings.
  struct Cell {
    std::string text;
    bool numeric = false;
    double num = 0.0;
  };

  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Append one row; builder style so benches read naturally.
  class Row {
   public:
    explicit Row(Table& t) : table_(t) {}
    Row& cell(const std::string& v);
    Row& cell(const char* v) { return cell(std::string(v)); }
    Row& cell(double v, int precision = 2);
    Row& cell(int64_t v);
    Row& cell(int v) { return cell(static_cast<int64_t>(v)); }
    ~Row();

   private:
    Table& table_;
    std::vector<Cell> cells_;
  };

  Row row() { return Row(*this); }
  void add_row(std::vector<Cell> cells);

  void print(std::ostream& os, const std::string& title = "") const;

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

std::string format_double(double v, int precision = 2);

/// Dump every counter and histogram in a Stats bag (debugging aid).
void print_stats(const Stats& stats, std::ostream& os);

/// Machine-readable companion to the printed tables: every bench_e* binary
/// records its parameter point, headline metrics and result tables here and
/// writes BENCH_<name>.json next to its stdout report, so plots and
/// regression tooling never scrape fixed-width text.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson& param(const std::string& key, const std::string& v);
  BenchJson& param(const std::string& key, int64_t v);
  BenchJson& param(const std::string& key, int v) {
    return param(key, static_cast<int64_t>(v));
  }
  BenchJson& param(const std::string& key, double v);
  BenchJson& metric(const std::string& key, double v);
  BenchJson& metric(const std::string& key, int64_t v);
  BenchJson& table(const std::string& title, const Table& t);

  void write(std::ostream& os) const;
  /// Write BENCH_<name>.json in the working directory; returns the path
  /// (empty on I/O failure).
  std::string write_file() const;

 private:
  struct NamedTable {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<Table::Cell>> rows;
  };
  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;  // pre-encoded
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<NamedTable> tables_;
};

}  // namespace koptlog
