// Table formatting for the benchmark harness: every experiment binary
// prints one or more fixed-width tables (rows = parameter points, columns =
// metrics), mirroring how the paper's evaluation would be reported.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace koptlog {

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Append one row; builder style so benches read naturally.
  class Row {
   public:
    explicit Row(Table& t) : table_(t) {}
    Row& cell(const std::string& v);
    Row& cell(double v, int precision = 2);
    Row& cell(int64_t v);
    ~Row();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  Row row() { return Row(*this); }
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 2);

/// Dump every counter and histogram in a Stats bag (debugging aid).
void print_stats(const Stats& stats, std::ostream& os);

}  // namespace koptlog
