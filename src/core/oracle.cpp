#include "core/oracle.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/check.h"

namespace koptlog {

Oracle::Oracle(int n) : n_(n), chains_(static_cast<size_t>(n)) {
  KOPT_CHECK(n > 0);
}

const Oracle::Node* Oracle::find(const IntervalId& iv) const {
  auto it = nodes_.find(iv);
  return it == nodes_.end() ? nullptr : &it->second;
}

Oracle::Node& Oracle::node_at(const IntervalId& iv) {
  auto it = nodes_.find(iv);
  KOPT_CHECK_MSG(it != nodes_.end(), "unknown interval " << iv.str());
  return it->second;
}

void Oracle::record_violation(std::string v) {
  online_violations_.push_back(std::move(v));
}

void Oracle::add_node(Node n) {
  KOPT_CHECK_MSG(nodes_.find(n.id) == nodes_.end(),
                 "duplicate interval " << n.id.str());
  auto& chain = chains_[static_cast<size_t>(n.id.pid)];
  if (!chain.empty()) {
    KOPT_CHECK_MSG(n.id.sii == chain.back().sii + 1,
                   "non-contiguous interval " << n.id.str() << " after "
                                              << chain.back().str());
    n.prev = chain.back();
  }
  chain.push_back(n.id);
  nodes_.emplace(n.id, std::move(n));
}

void Oracle::on_process_start(IntervalId initial, uint64_t app_hash) {
  Node n;
  n.id = initial;
  n.app_hash = app_hash;
  n.recovery_interval = true;  // no delivering message, like restart points
  add_node(std::move(n));
}

void Oracle::on_interval_start(IntervalId iv, IntervalId sender_iv,
                               uint64_t app_hash) {
  Node n;
  n.id = iv;
  n.app_hash = app_hash;
  if (sender_iv.pid != kEnvironment) n.sender_iv = sender_iv;
  add_node(std::move(n));
}

void Oracle::on_interval_finalized(IntervalId iv, uint64_t app_hash) {
  node_at(iv).app_hash = app_hash;
}

void Oracle::on_recovery_interval(IntervalId iv, uint64_t app_hash) {
  Node n;
  n.id = iv;
  n.app_hash = app_hash;
  n.recovery_interval = true;
  add_node(std::move(n));
}

void Oracle::on_interval_replayed(IntervalId iv, uint64_t app_hash) {
  const Node* n = find(iv);
  if (n == nullptr) {
    record_violation("replayed unknown interval " + iv.str());
    return;
  }
  if (n->undone || n->lost) {
    record_violation("replayed dead interval " + iv.str());
    return;
  }
  if (n->app_hash != app_hash) {
    std::ostringstream os;
    os << "PWD replay divergence at " << iv.str() << ": hash "
       << n->app_hash << " != " << app_hash;
    record_violation(os.str());
  }
}

void Oracle::on_stable_watermark(ProcessId pid, Entry watermark, SimTime when) {
  auto& chain = chains_[static_cast<size_t>(pid)];
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    Node& n = node_at(*it);
    if (n.id.sii > watermark.sii) continue;
    if (n.stable) break;  // stability is a monotone prefix property
    n.stable = true;
    n.stable_time = when;
  }
}

void Oracle::pop_chain_suffix(ProcessId pid, Sii keep_upto, bool lost) {
  auto& chain = chains_[static_cast<size_t>(pid)];
  while (!chain.empty() && chain.back().sii > keep_upto) {
    Node& n = node_at(chain.back());
    // A recovery/bookkeeping interval holds no application state and no
    // dependency on it ever propagates (it is never a message's or
    // output's born_of, and flush watermarks skip it); losing one in a
    // crash destroys nothing, so it counts as undone, not lost.
    if (lost && !n.recovery_interval) {
      if (n.stable) {
        record_violation("stable interval lost in crash: " + n.id.str());
      }
      n.lost = true;
      lost_.push_back(n.id);
      ++doom_generation_;
    } else {
      n.undone = true;
      ++undone_count_;
    }
    chain.pop_back();
  }
}

void Oracle::on_rollback(ProcessId pid, Sii restored_sii) {
  pop_chain_suffix(pid, restored_sii, /*lost=*/false);
}

void Oracle::on_crash(ProcessId pid, Sii survivor_sii) {
  pop_chain_suffix(pid, survivor_sii, /*lost=*/true);
}

void Oracle::on_entry_nulled(ProcessId at, ProcessId owner, Entry e,
                             SimTime when) {
  (void)at;
  (void)when;
  // Theorem 3: an entry may be dropped only once the named interval is
  // truly stable. (The interval may later be undone — a stable orphan —
  // that's fine; Theorem 2's proof only needs non-stable dependencies.)
  const Node* n = find(IntervalId{owner, e.inc, e.sii});
  if (n == nullptr) {
    record_violation("nulled entry names unknown interval " + e.str() + "_" +
                     std::to_string(owner));
    return;
  }
  if (!n->stable) {
    record_violation("Theorem 3 violated: nulled non-stable dependency " +
                     n->id.str());
  }
}

void Oracle::on_msg_released(const AppMsg& m, int non_null, int k,
                             SimTime when) {
  if (non_null > k) {
    std::ostringstream os;
    os << "K bound violated: released " << m.id.seq << " from P" << m.from
       << " with " << non_null << " live entries, K=" << k;
    record_violation(os.str());
  }
  ReleaseRecord r;
  r.id = m.id;
  r.born_of = m.born_of;
  r.k = k;
  r.when = when;
  m.tdv.for_each(
      [&](ProcessId j, const Entry&) { r.non_null_pids.push_back(j); });
  releases_.push_back(std::move(r));
}

void Oracle::on_msg_discarded(const AppMsg& m) {
  discards_.emplace_back(m.id, m.born_of);
}

void Oracle::on_output_committed(MsgId id, IntervalId born_of, SimTime when) {
  commits_.push_back(CommitRecord{id, born_of, when});
}

// ---------------------------------------------------------------------------
// Doom (true orphanhood): reachability to a lost interval via parents.
// ---------------------------------------------------------------------------

bool Oracle::doomed(const IntervalId& iv) const {
  const Node* n = find(iv);
  KOPT_CHECK_MSG(n != nullptr, "doomed() on unknown interval " << iv.str());
  return doomed_impl(*n);
}

bool Oracle::doomed_impl(const Node& root) const {
  auto memo_valid = [this](const Node& n) {
    return n.doom_gen == doom_generation_ && n.doom_memo != 0;
  };
  if (memo_valid(root)) return root.doom_memo == 1;

  std::vector<const Node*> stack{&root};
  while (!stack.empty()) {
    const Node* n = stack.back();
    if (memo_valid(*n)) {
      stack.pop_back();
      continue;
    }
    if (n->lost) {
      n->doom_memo = 1;
      n->doom_gen = doom_generation_;
      stack.pop_back();
      continue;
    }
    bool pending = false;
    bool doomed_parent = false;
    auto consider = [&](const std::optional<IntervalId>& p) {
      if (doomed_parent || !p) return;
      const Node* pn = find(*p);
      KOPT_CHECK_MSG(pn != nullptr, "dangling parent " << p->str());
      if (memo_valid(*pn)) {
        if (pn->doom_memo == 1) doomed_parent = true;
      } else if (pn->lost) {
        doomed_parent = true;
      } else {
        stack.push_back(pn);
        pending = true;
      }
    };
    consider(n->prev);
    consider(n->sender_iv);
    if (doomed_parent) {
      n->doom_memo = 1;
      n->doom_gen = doom_generation_;
      stack.pop_back();
    } else if (!pending) {
      n->doom_memo = 2;
      n->doom_gen = doom_generation_;
      stack.pop_back();
    }
    // else: parents pushed; revisit n once they are resolved.
  }
  return root.doom_memo == 1;
}

size_t Oracle::doomed_count() const {
  size_t c = 0;
  for (const auto& [id, n] : nodes_) {
    if (doomed_impl(n)) ++c;
  }
  return c;
}

bool Oracle::is_stable(const IntervalId& iv) const {
  const Node* n = find(iv);
  return n != nullptr && n->stable;
}

std::optional<SimTime> Oracle::stable_at(const IntervalId& iv) const {
  const Node* n = find(iv);
  if (n == nullptr || !n->stable) return std::nullopt;
  return n->stable_time;
}

// ---------------------------------------------------------------------------
// End-of-run verification
// ---------------------------------------------------------------------------

Oracle::Report Oracle::verify(bool strict_thm4) const {
  Report rep;
  rep.intervals = nodes_.size();
  rep.lost = lost_.size();
  rep.undone = undone_count_;
  rep.released_messages = releases_.size();
  rep.discarded_messages = discards_.size();
  rep.committed_outputs = commits_.size();
  rep.violations = online_violations_;

  // 1. No surviving interval is doomed (Theorems 1/2: every orphan was
  //    eventually detected and undone).
  for (const auto& chain : chains_) {
    for (const IntervalId& iv : chain) {
      if (doomed(iv)) {
        rep.violations.push_back("surviving orphan interval " + iv.str());
      }
    }
  }

  // 2. Exactness: undone <=> doomed (modulo bookkeeping intervals swept
  //    away with an undone suffix, and intervals lost to the crash itself).
  size_t doomed_total = 0;
  for (const auto& [id, n] : nodes_) {
    bool d = doomed_impl(n);
    if (d) ++doomed_total;
    if (d && !n.undone && !n.lost) {
      rep.violations.push_back("orphan interval never rolled back: " +
                               id.str());
    }
    if (n.undone && !n.recovery_interval && !d) {
      rep.violations.push_back("spurious rollback of " + id.str());
    }
  }
  rep.doomed = doomed_total;

  // 3. Discards were sound: a discarded message's sending interval must be
  //    a true orphan.
  for (const auto& [id, born_of] : discards_) {
    if (!doomed(born_of)) {
      std::ostringstream os;
      os << "discarded non-orphan message " << id.seq << " from "
         << born_of.str();
      rep.violations.push_back(os.str());
    }
  }

  // 4. Output-commit safety: a committed output's interval is never
  //    revoked.
  for (const CommitRecord& c : commits_) {
    if (doomed(c.born_of)) {
      std::ostringstream os;
      os << "committed output " << c.id.seq << " from orphan interval "
         << c.born_of.str();
      rep.violations.push_back(os.str());
    }
  }

  // 5. Strict Theorem 4: at release, every dependency of the message that
  //    was not yet stable belongs to one of its <= K non-NULL entries.
  if (strict_thm4) {
    for (const ReleaseRecord& r : releases_) {
      std::unordered_set<ProcessId> live(r.non_null_pids.begin(),
                                         r.non_null_pids.end());
      // BFS over the true dependency closure of the sending interval.
      std::vector<const Node*> stack;
      std::unordered_set<const Node*> seen;
      const Node* root = find(r.born_of);
      if (root == nullptr) continue;
      stack.push_back(root);
      seen.insert(root);
      while (!stack.empty()) {
        const Node* n = stack.back();
        stack.pop_back();
        bool stable_at_release = n->stable && n->stable_time <= r.when;
        if (!stable_at_release && live.count(n->id.pid) == 0) {
          std::ostringstream os;
          os << "Theorem 4 violated: msg " << r.id.seq << " from "
             << r.born_of.str() << " released with non-stable dependency "
             << n->id.str() << " outside its " << r.non_null_pids.size()
             << " live entries";
          rep.violations.push_back(os.str());
          break;
        }
        auto visit = [&](const std::optional<IntervalId>& p) {
          if (!p) return;
          const Node* pn = find(*p);
          if (pn != nullptr && seen.insert(pn).second) stack.push_back(pn);
        };
        visit(n->prev);
        visit(n->sender_iv);
      }
    }
  }

  rep.ok = rep.violations.empty();
  return rep;
}

std::vector<Oracle::NodeView> Oracle::nodes() const {
  std::vector<NodeView> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) {
    NodeView v;
    v.id = n.id;
    v.prev = n.prev;
    v.sender = n.sender_iv;
    v.stable = n.stable;
    v.undone = n.undone;
    v.lost = n.lost;
    v.recovery = n.recovery_interval;
    out.push_back(v);
  }
  std::sort(out.begin(), out.end(), [](const NodeView& a, const NodeView& b) {
    if (a.id.pid != b.id.pid) return a.id.pid < b.id.pid;
    if (a.id.sii != b.id.sii) return a.id.sii < b.id.sii;
    return a.id.inc < b.id.inc;
  });
  return out;
}

std::string Oracle::Report::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATIONS") << ": intervals=" << intervals
     << " lost=" << lost << " undone=" << undone << " doomed=" << doomed
     << " released=" << released_messages
     << " discarded=" << discarded_messages
     << " outputs=" << committed_outputs;
  if (!ok) {
    os << "\n";
    size_t shown = 0;
    for (const auto& v : violations) {
      os << "  ! " << v << "\n";
      if (++shown >= 20) {
        os << "  ... (" << violations.size() - shown << " more)\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace koptlog
