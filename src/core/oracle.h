// Oracle — ground-truth observer of the whole simulation, independent of
// the protocol's own bookkeeping. It records the true transitive-dependency
// graph over state intervals (every delivery links an interval to its
// same-process predecessor and to the sender's interval), which intervals
// became stable when, and which were lost or undone. Tests use it to verify
// the paper's theorems against the protocol's actual behaviour:
//   Thm 1/2 — every true orphan is eventually undone, and nothing else is;
//   Thm 3   — a dependency entry is NULLed only once the named interval is
//             truly stable;
//   Thm 4   — at release, every non-stable dependency of a message belongs
//             to one of its <= K non-NULL entries.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/entry.h"
#include "common/types.h"
#include "core/protocol_msg.h"

namespace koptlog {

class Oracle {
 public:
  explicit Oracle(int n);

  // ---- facts reported by the substrate/processes ----

  /// Process starts; its first interval `initial` exists and becomes stable
  /// with the initial checkpoint (Corollary 3).
  void on_process_start(IntervalId initial, uint64_t app_hash);

  /// A delivery started interval `iv`; `sender_iv` is the interval the
  /// message was sent from (pid kEnvironment = injected from outside).
  /// Registered before the application handler runs, so stability/NULLing
  /// events fired from inside the handler can already see the interval.
  void on_interval_start(IntervalId iv, IntervalId sender_iv,
                         uint64_t app_hash);

  /// The application handler for `iv` finished; record the settled state
  /// hash (the one replay must reproduce).
  void on_interval_finalized(IntervalId iv, uint64_t app_hash);

  /// Recovery replayed interval `iv`; the reconstructed state hash must
  /// equal the hash recorded when the interval first executed (PWD model).
  void on_interval_replayed(IntervalId iv, uint64_t app_hash);

  /// A rollback created recovery interval `iv` (no delivering message).
  void on_recovery_interval(IntervalId iv, uint64_t app_hash);

  /// Flush/checkpoint completion: every interval of `pid` with index <=
  /// watermark.sii (on the current chain) is now on stable storage.
  void on_stable_watermark(ProcessId pid, Entry watermark, SimTime when);

  /// Process pid rolled back to interval index `restored_sii`: every chain
  /// interval beyond it is undone.
  void on_rollback(ProcessId pid, Sii restored_sii);

  /// Process pid crashed; intervals beyond `survivor_sii` (the volatile
  /// suffix) are lost and can never be reconstructed.
  void on_crash(ProcessId pid, Sii survivor_sii);

  /// Process `at` NULLed its dependency entry on interval (e)_owner.
  void on_entry_nulled(ProcessId at, ProcessId owner, Entry e, SimTime when);

  /// The sender released message m with `non_null` live entries under
  /// degree of optimism `k`.
  void on_msg_released(const AppMsg& m, int non_null, int k, SimTime when);

  /// A process discarded message m as orphan.
  void on_msg_discarded(const AppMsg& m);

  /// The outside world committed output `id` emitted by `born_of`.
  void on_output_committed(MsgId id, IntervalId born_of, SimTime when);

  // ---- queries / verification ----

  /// True if `iv` transitively depends on a lost interval (is doomed).
  bool doomed(const IntervalId& iv) const;

  bool is_stable(const IntervalId& iv) const;
  std::optional<SimTime> stable_at(const IntervalId& iv) const;

  size_t interval_count() const { return nodes_.size(); }
  size_t lost_count() const { return lost_.size(); }
  size_t undone_count() const { return undone_count_; }
  size_t doomed_count() const;

  struct Report {
    bool ok = true;
    std::vector<std::string> violations;
    size_t intervals = 0;
    size_t lost = 0;
    size_t undone = 0;
    size_t doomed = 0;
    size_t released_messages = 0;
    size_t discarded_messages = 0;
    size_t committed_outputs = 0;

    std::string summary() const;
  };

  /// End-of-run verification. `strict_thm4` additionally recomputes, for
  /// every released message, the true dependency closure and checks that
  /// all dependencies outside the message's non-NULL set were stable at
  /// release time (expensive; use on small runs).
  Report verify(bool strict_thm4 = false) const;

  /// Violations recorded online (replay hash mismatches, Thm-3 breaches,
  /// K-bound breaches). Folded into verify()'s report.
  const std::vector<std::string>& online_violations() const {
    return online_violations_;
  }

  /// Read-only view of one recorded interval, for visualization/export
  /// (core/timeline.h renders these as space-time diagrams).
  struct NodeView {
    IntervalId id;
    std::optional<IntervalId> prev;
    std::optional<IntervalId> sender;
    bool stable = false;
    bool undone = false;
    bool lost = false;
    bool recovery = false;
  };

  /// Every interval ever recorded, sorted by (pid, sii, inc).
  std::vector<NodeView> nodes() const;

  int system_size() const { return n_; }

 private:
  struct Node {
    IntervalId id;
    std::optional<IntervalId> prev;       // same-process predecessor
    std::optional<IntervalId> sender_iv;  // cross-process parent
    uint64_t app_hash = 0;
    bool stable = false;
    bool undone = false;
    bool lost = false;
    /// Interval created by a rollback/restart itself (no delivering
    /// message, no log record): exempt from the undone=>doomed check.
    bool recovery_interval = false;
    SimTime stable_time = -1;
    // doom memoization: 0 unknown, 1 doomed, 2 safe; valid while
    // doom_gen matches the oracle's generation counter.
    mutable int doom_memo = 0;
    mutable uint64_t doom_gen = 0;
  };

  struct ReleaseRecord {
    MsgId id;
    IntervalId born_of;
    std::vector<ProcessId> non_null_pids;
    int k = 0;
    SimTime when = 0;
  };

  struct CommitRecord {
    MsgId id;
    IntervalId born_of;
    SimTime when = 0;
  };

  const Node* find(const IntervalId& iv) const;
  Node& node_at(const IntervalId& iv);
  bool doomed_impl(const Node& n) const;
  void record_violation(std::string v);
  void add_node(Node n);
  void pop_chain_suffix(ProcessId pid, Sii keep_upto, bool lost);

  int n_;
  std::unordered_map<IntervalId, Node, IntervalIdHash> nodes_;
  /// Current (surviving) chain of each process, in execution order.
  std::vector<std::vector<IntervalId>> chains_;
  std::vector<IntervalId> lost_;
  size_t undone_count_ = 0;
  /// Bumped whenever the lost set grows; invalidates doom memoization.
  uint64_t doom_generation_ = 1;
  std::vector<ReleaseRecord> releases_;
  std::vector<std::pair<MsgId, IntervalId>> discards_;
  std::vector<CommitRecord> commits_;
  std::vector<std::string> online_violations_;
};

}  // namespace koptlog
