// Outside-world output records. An output is a 0-optimistic message
// (paper §4.2): it stays in the process's output buffer until every entry
// of its dependency vector is NULL — i.e. every interval it depends on is
// stable — and only then is it committed to the outside world.
#pragma once

#include "common/entry.h"
#include "common/types.h"
#include "core/dep_vector.h"
#include "core/protocol_msg.h"

namespace koptlog {

struct OutputRecord {
  /// (pid, deterministic output counter): replay after a failure re-emits
  /// the same outputs with the same ids, and the outside-world sink
  /// deduplicates by id (exactly-once commit).
  MsgId id;
  AppPayload payload;
  DepVector tdv;
  IntervalId born_of;  ///< interval that emitted the output
  SimTime created_at = 0;
};

}  // namespace koptlog
