#include "core/process.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "core/oracle.h"
#include "obs/event_recorder.h"

namespace koptlog {

namespace {
/// Names used in the shared Stats bag. Aggregated across processes.
constexpr const char* kSent = "msgs.sent";
constexpr const char* kReceived = "msgs.received";
constexpr const char* kDuplicate = "msgs.duplicate";
constexpr const char* kDelivered = "msgs.delivered";
constexpr const char* kDiscardedRecv = "msgs.discarded_orphan_recv";
constexpr const char* kDiscardedSend = "msgs.discarded_orphan_send";
constexpr const char* kDiscardedOutput = "outputs.discarded_orphan";
constexpr const char* kRollbacks = "rollback.count";
constexpr const char* kUndone = "rollback.undone_intervals";
constexpr const char* kRestarts = "restart.count";
constexpr const char* kAnnSent = "announce.sent";
constexpr const char* kProgressSent = "log_progress.sent";
constexpr const char* kRecvWaitUs = "recv.wait_us";
constexpr const char* kTdvNonNull = "tdv.non_null";
}  // namespace

Process::Process(ProcessId pid, int n, const ProtocolConfig& cfg,
                 ClusterApi& api, std::unique_ptr<Application> app)
    : pid_(pid),
      n_(n),
      cfg_(cfg),
      effective_k_(std::min<int>(cfg.k, n)),
      api_(api),
      exec_(api.scheduler()),
      app_(std::move(app)),
      storage_(cfg.storage,
               make_storage_backend(cfg.storage_backend, cfg.storage, pid, n,
                                    api.scheduler(), &api.stats())),
      rt_{pid_, n_, api_, exec_, storage_},
      channel_(rt_, cfg_.reliable_delivery, recv_),
      send_buffer_(rt_, cfg_.null_stable_entries, channel_),
      output_buffer_(rt_, cfg_.null_stable_entries),
      replay_(rt_, cfg_, [this] { return alive_; }),
      tdv_(n),
      iet_(n),
      log_(n) {
  KOPT_CHECK(pid >= 0 && pid < n);
  KOPT_CHECK(app_ != nullptr);
  // Finite K requires commit dependency tracking: without NULLing, a
  // message's entry count never drops, so it could be held forever.
  if (!cfg_.null_stable_entries)
    KOPT_CHECK_MSG(effective_k_ >= n_,
                   "K < N requires null_stable_entries (Theorem 2)");
}

void Process::start(Entry initial) {
  KOPT_CHECK(!alive_);
  KOPT_CHECK(initial.sii >= 1);
  alive_ = true;
  current_ = initial;
  storage_.set_durable_max_inc(initial.inc);
  if (Oracle* orc = oracle())
    orc->on_process_start(IntervalId{pid_, current_.inc, current_.sii},
                          app_->state_hash());
  // Corollary 3: no dependency entries at start; the first interval is
  // stable by way of the initial checkpoint taken right below.
  app_->on_start(*this);
  do_checkpoint();
  schedule_timers();
  apply_stability_info();
}

// ---------------------------------------------------------------------------
// Application-facing context
// ---------------------------------------------------------------------------

void Process::send(ProcessId to, const AppPayload& payload) {
  send_impl(to, payload, effective_k_);
}

void Process::send_with_k(ProcessId to, const AppPayload& payload, int k) {
  KOPT_CHECK_MSG(cfg_.null_stable_entries || k >= n_,
                 "per-message K < N requires null_stable_entries (Thm 2)");
  send_impl(to, payload, std::min(k, n_));
}

void Process::send_impl(ProcessId to, const AppPayload& payload, int k_limit) {
  KOPT_CHECK(to >= 0 && to < n_);
  AppMsg m;
  m.id = MsgId{pid_, ++send_seq_};
  m.from = pid_;
  m.to = to;
  m.payload = payload;
  m.tdv = tdv_;
  m.born_of = IntervalId{pid_, current_.inc, current_.sii};
  m.sent_at = api_.scheduler().now();
  api_.stats().inc(kSent);
  const MsgId id = m.id;
  const DepVector snapshot = m.tdv;
  if (!send_buffer_.enqueue(std::move(m), api_.scheduler().now(), k_limit)) return;
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kSend;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.tdv = snapshot;
    e.msg = id;
    e.peer = to;
    e.ref = IntervalId{pid_, current_.inc, current_.sii};
    e.k_limit = k_limit;
    rec->record(std::move(e));
  }
  check_send_buffer();
}

void Process::output(const AppPayload& payload) {
  OutputRecord rec;
  rec.id = MsgId{pid_, ++output_seq_};
  rec.payload = payload;
  rec.tdv = tdv_;
  rec.born_of = IntervalId{pid_, current_.inc, current_.sii};
  rec.created_at = api_.scheduler().now();
  output_buffer_.push(std::move(rec));
  check_output_buffer();
}

// ---------------------------------------------------------------------------
// Dependency predicates
// ---------------------------------------------------------------------------

bool Process::orphan_vec(const DepVector& v) const {
  return v.any_of(
      [&](ProcessId j, const Entry& e) { return iet_.of(j).orphans(e); });
}

bool Process::deliverable(const AppMsg& m) const {
  if (!cfg_.cor1_fast_delivery) return sy_deliverable(m);
  // Check_deliverability (Figure 2): delivering m must not leave us
  // depending on two incarnations of the same process unless the smaller
  // entry is known stable (Corollary 1). A NULL on either side means no
  // conflict — in particular a message from a new incarnation is delivered
  // without any wait when we hold no entry for that process at all. Only
  // the message's non-NULL entries can conflict, so the scan is O(nnz).
  return !m.tdv.any_of([&](ProcessId j, const Entry& theirs) {
    OptEntry ours = tdv_.at(j);
    if (!ours || ours->inc == theirs.inc) return false;
    const Entry& smaller = std::min(*ours, theirs);
    return !log_.of(j).covers(smaller);
  });
}

bool Process::sy_deliverable(const AppMsg& m) const {
  // Strom–Yemini's original coupling: acquiring a dependency on incarnation
  // t of P_j requires having received the rollback announcements for every
  // incarnation of P_j before t (so the lexicographic-max overwrite is
  // known safe). Assumes every rollback is announced and FIFO channels.
  return !m.tdv.any_of([&](ProcessId j, const Entry& theirs) {
    OptEntry ours = tdv_.at(j);
    Incarnation from = ours ? ours->inc : 0;
    for (Incarnation s = from; s < theirs.inc; ++s) {
      if (!iet_.of(j).index_of(s)) return true;
    }
    return false;
  });
}

// ---------------------------------------------------------------------------
// Receiving and delivering
// ---------------------------------------------------------------------------

void Process::discard_orphan_recv(const AppMsg& m) {
  api_.stats().inc(kDiscardedRecv);
  if (Oracle* orc = oracle()) orc->on_msg_discarded(m);
  channel_.ack_discarded(m);
}

void Process::handle_app_msg(const AppMsg& m) {
  if (!alive_) return;  // raced with a crash; counts as an in-transit loss
  api_.stats().inc(kReceived);
  if (recv_.seen(m.id)) {
    api_.stats().inc(kDuplicate);
    channel_.reack_duplicate(m);
    return;
  }
  // Check_orphan({m}).
  if (orphan_vec(m.tdv)) {
    discard_orphan_recv(m);
    trace([&](std::ostream& os) {
      os << "discard orphan msg from P" << m.from << ' ' << m.born_of.str();
    });
    return;
  }
  recv_.push(m, api_.scheduler().now());
  try_deliver();
  if (recv_.buffered(m.id)) {
    if (EventRecorder* rec = recorder()) {
      ProtocolEvent e;
      e.kind = EventKind::kBufferHold;
      e.t = api_.scheduler().now();
      e.at = m.born_of.entry();
      e.msg = m.id;
      e.peer = m.from;
      e.recv_side = true;
      rec->record(std::move(e));
    }
  }
}

void Process::try_deliver() {
  recv_.drain_deliverable(
      [&] { return alive_; },
      [&](const AppMsg& m) { return orphan_vec(m.tdv); },
      [&](const AppMsg& m) { discard_orphan_recv(m); },
      [&](const AppMsg& m) { return deliverable(m); },
      [&](ReceiveBuffer::Buffered&& b) {
        api_.stats().sample(
            kRecvWaitUs, static_cast<double>(api_.scheduler().now() - b.arrived_at));
        if (api_.scheduler().now() > b.arrived_at) api_.stats().inc("recv.delayed");
        deliver(b.msg);
      });
}

void Process::deliver(const AppMsg& m) {
  // Deliver_message (Figure 2).
  exec_.occupy(cfg_.deliver_cost_us);
  tdv_.merge_max(m.tdv);
  ++current_.sii;
  tdv_.set(pid_, current_);
  recv_.mark_delivered(m.id);
  IntervalId iv{pid_, current_.inc, current_.sii};
  storage_.log().append(LogRecord{m, iv});
  ++deliveries_;
  api_.stats().inc(kDelivered);
  if (Oracle* orc = oracle())
    orc->on_interval_start(iv, m.born_of, app_->state_hash());
  if (cfg_.pessimistic_sync_logging) {
    // "Logs all delivered messages before sending a message" (§1): the new
    // interval is stable before the application can talk to anyone, so the
    // sends below carry no dependencies at all.
    replay_.flush_volatile();
    replay_.charge_sync_write(storage_.costs().sync_write_us);
    note_own_stable(current_);
    if (cfg_.null_stable_entries) {
      if (Oracle* orc = oracle())
        orc->on_entry_nulled(pid_, pid_, current_, api_.scheduler().now());
      tdv_.clear(pid_);
    }
  }
  api_.stats().sample(kTdvNonNull, static_cast<double>(tdv_.non_null_count()));
  if (EventRecorder* rec = recorder()) {
    // Before the app handler, so the interval's own sends sequence after it.
    ProtocolEvent e;
    e.kind = EventKind::kDeliver;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.tdv = tdv_;
    e.msg = m.id;
    e.peer = m.from;
    e.ref = m.born_of;
    rec->record(std::move(e));
  }
  run_app_handler(m.from, m.payload);
  if (Oracle* orc = oracle())
    orc->on_interval_finalized(iv, app_->state_hash());
  trace([&](std::ostream& os) {
    os << "deliver " << m.id.seq << " from P" << m.from << " -> interval "
       << iv.str() << " tdv=" << tdv_.str();
  });
}

void Process::run_app_handler(ProcessId from, const AppPayload& payload) {
  app_->on_deliver(*this, from, payload);
}

// ---------------------------------------------------------------------------
// Send buffer, output buffer, stability information
// ---------------------------------------------------------------------------

void Process::null_stable_entries(DepVector& v) {
  // Collect first (clearing mid-iteration would invalidate the sparse
  // walk); the common case finds nothing and allocates nothing.
  std::vector<std::pair<ProcessId, Entry>> stable;
  v.for_each([&](ProcessId j, const Entry& e) {
    if (log_.of(j).covers(e)) stable.emplace_back(j, e);
  });
  for (const auto& [j, e] : stable) {
    if (Oracle* orc = oracle())
      orc->on_entry_nulled(pid_, j, e, api_.scheduler().now());
    v.clear(j);
  }
}

void Process::check_send_buffer() {
  // Check_send_buffer (Figure 2): NULL entries that became stable, then
  // release every message with at most K live entries.
  send_buffer_.release_eligible(
      cfg_.null_stable_entries
          ? std::function<void(DepVector&)>(
                [this](DepVector& v) { null_stable_entries(v); })
          : std::function<void(DepVector&)>());
}

void Process::check_output_buffer() {
  output_buffer_.check(
      [this](ProcessId j, const Entry& e) { return log_.of(j).covers(e); });
}

void Process::apply_stability_info() {
  if (!alive_) return;
  if (cfg_.null_stable_entries) null_stable_entries(tdv_);
  check_send_buffer();
  check_output_buffer();
  try_deliver();
}

void Process::discard_orphans_from_buffers() {
  recv_.discard_if([&](const AppMsg& m) { return orphan_vec(m.tdv); },
                   [&](const AppMsg& m) { discard_orphan_recv(m); });
  send_buffer_.discard_if([&](const AppMsg& m) { return orphan_vec(m.tdv); },
                          [&](const AppMsg& m) {
                            api_.stats().inc(kDiscardedSend);
                            if (Oracle* orc = oracle())
                              orc->on_msg_discarded(m);
                          });
  output_buffer_.discard_if(
      [&](const DepVector& v) { return orphan_vec(v); },
      [&](const OutputRecord&) { api_.stats().inc(kDiscardedOutput); });
}

// ---------------------------------------------------------------------------
// Announcements and logging-progress notifications
// ---------------------------------------------------------------------------

void Process::handle_announcement(const Announcement& a) {
  if (!alive_) return;  // the cluster re-queues announcements for us
  if (!replay_.note_remote_announcement(a)) return;
  process_announcement_body(a);
}

void Process::process_announcement_body(const Announcement& a) {
  iet_.insert(a.from, a.ended);
  log_.insert(a.from, a.ended);  // Corollary 1: (t, x0) is stable
  trace([&](std::ostream& os) {
    os << "announcement from P" << a.from << " ended " << a.ended.str();
  });
  discard_orphans_from_buffers();
  if (orphan_vec(tdv_)) rollback();
  apply_stability_info();
}

void Process::handle_log_progress(const LogProgressMsg& lp) {
  if (!alive_) return;
  for (const Entry& e : lp.stable) log_.insert(lp.from, e);
  apply_stability_info();
}

void Process::handle_ack(const MsgId& id) {
  if (!alive_) return;
  channel_.on_ack(id);
}

void Process::retransmit_unacked() {
  if (!alive_ || !cfg_.reliable_delivery) return;
  channel_.retransmit([&](const AppMsg& m) { return orphan_vec(m.tdv); });
}

void Process::broadcast_progress() {
  if (!alive_) return;
  LogProgressMsg lp;
  lp.from = pid_;
  for (const auto& [inc, sii] : log_.of(pid_).entries())
    lp.stable.push_back(Entry{inc, sii});
  if (lp.stable.empty()) return;
  api_.stats().inc(kProgressSent);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kProgressNotify;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.lsn = static_cast<int64_t>(lp.stable.size());
    rec->record(std::move(e));
  }
  api_.broadcast_log_progress(lp);
}

// ---------------------------------------------------------------------------
// Checkpointing and flushing
// ---------------------------------------------------------------------------

void Process::do_checkpoint() {
  replay_.take_checkpoint([&](Checkpoint& cp) {
    channel_.ack_stable_records();
    cp.at = current_;
    cp.tdv = tdv_;
    cp.log_pos = storage_.log().size();
    cp.send_seq = send_seq_;
    cp.output_seq = output_seq_;
    cp.app_state = app_->snapshot();
    cp.app_hash = app_->state_hash();
    cp.self_watermarks = log_.of(pid_).entries();
  });
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kCheckpoint;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.tdv = tdv_;
    rec->record(std::move(e));
  }
  // Corollary 2: the checkpoint makes everything up to `current_` stable,
  // which in turn NULLs our own entry in apply_stability_info().
  note_own_stable(current_);
  if (cfg_.garbage_collect) garbage_collect();
  apply_stability_info();
}

void Process::garbage_collect() {
  // The newest checkpoint whose every dependency entry is NULL or covered
  // by the log tables can never be orphaned: by Theorem 2's argument, an
  // orphaned state must still hold a dependency entry on some non-stable
  // (lost) interval, and this checkpoint holds none. Rollback/restart will
  // therefore never need anything older than it.
  replay_.garbage_collect([&](const Checkpoint& cp) {
    return !cp.tdv.any_of(
        [&](ProcessId j, const Entry& e) { return !log_.of(j).covers(e); });
  });
  // The iet grows one entry per announced incarnation forever; fold away
  // the dominated ones while we are already collecting garbage (safe only
  // under Corollary 1 — the Strom–Yemini coupling reads exact
  // per-incarnation history via index_of, see EntrySet::compact_dominated).
  if (cfg_.cor1_fast_delivery) {
    for (ProcessId j = 0; j < n_; ++j) iet_.of(j).compact_dominated();
  }
}

void Process::note_own_stable(Entry watermark) {
  log_.insert(pid_, watermark);
  if (Oracle* orc = oracle())
    orc->on_stable_watermark(pid_, watermark, api_.scheduler().now());
}

void Process::start_async_flush() {
  replay_.start_async_flush([this](size_t upto, Entry watermark,
                                   size_t durable_lsn) {
    // The completion's stability claim is driven by what the backend made
    // durable: `durable_lsn` is the bound the fsync (or the model's
    // simulated DMA) actually covered, and it must reach the issued bound
    // before the watermark may be published.
    KOPT_CHECK(durable_lsn >= upto);
    // A rollback may have truncated (and regrown, in a new incarnation) the
    // log since this flush was issued — the watermark is then void; garbage
    // collection may have reclaimed the prefix — the flush already happened.
    if (upto > storage_.log().size() || upto <= storage_.log().base() ||
        storage_.log().at(upto - 1).started.entry() != watermark)
      return;
    replay_.complete_flush(upto);
    if (storage_.durable()) {
      if (EventRecorder* rec = recorder()) {
        ProtocolEvent e;
        e.kind = EventKind::kStorageFlush;
        e.t = api_.scheduler().now();
        e.at = current_;
        e.lsn = static_cast<int64_t>(durable_lsn);
        rec->record(std::move(e));
      }
    }
    channel_.ack_stable_records();
    note_own_stable(watermark);
    apply_stability_info();
  });
}

void Process::force_flush() {
  if (!alive_) return;
  if (storage_.log().volatile_count() > 0) {
    replay_.flush_volatile();
    storage_.count_async_flush();
    channel_.ack_stable_records();
    note_own_stable(
        storage_.log().at(storage_.log().size() - 1).started.entry());
  }
  apply_stability_info();
}

// ---------------------------------------------------------------------------
// Rollback / crash / restart
// ---------------------------------------------------------------------------

void Process::announce(Entry ended, bool from_failure) {
  Announcement a{pid_, ended, from_failure};
  replay_.record_own_announcement(a);
  iet_.insert(pid_, ended);
  log_.insert(pid_, ended);
  api_.stats().inc(kAnnSent);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kFailureAnnounce;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.ended = ended;
    e.from_failure = from_failure;
    rec->record(std::move(e));
  }
  api_.broadcast_announcement(a);
}

size_t Process::restore_and_replay(bool is_restart) {
  // "Restore the latest checkpoint with tdv such that ¬(condition I)" —
  // generalized to the full incarnation end table so that overlapping
  // failures are handled uniformly. The initial checkpoint has an empty
  // vector and can never be orphaned, so a restore point always exists.
  auto idx = storage_.checkpoints().latest_where(
      [&](const Checkpoint& cp) { return !orphan_vec(cp.tdv); });
  KOPT_CHECK_MSG(idx.has_value(), "no non-orphan checkpoint");
  const Checkpoint& cp = storage_.checkpoints().at(*idx);
  app_->restore(cp.app_state);
  KOPT_CHECK_MSG(app_->state_hash() == cp.app_hash,
                 "checkpoint hash mismatch at P" << pid_);
  current_ = cp.at;
  tdv_ = cp.tdv;
  send_seq_ = cp.send_seq;
  output_seq_ = cp.output_seq;

  size_t pos = replay_.replay(
      cp.log_pos, storage_.log().size(),
      [&](const LogRecord& r) {
        // Condition (I): the first orphan delivery ends the replayable
        // prefix. At restart this cannot happen: announcement processing
        // truncates the log synchronously, so no stable record is ever
        // orphaned by a journaled announcement.
        if (!orphan_vec(r.msg.tdv)) return false;
        KOPT_CHECK_MSG(!is_restart, "orphan record in stable log at restart");
        return true;
      },
      [&](const LogRecord& r) {
        tdv_.merge_max(r.msg.tdv);
        current_ = r.started.entry();
        tdv_.set(pid_, current_);
        recv_.mark_delivered(r.msg.id);
        run_app_handler(r.msg.from, r.msg.payload);
        if (Oracle* orc = oracle())
          orc->on_interval_replayed(r.started, app_->state_hash());
      });
  storage_.checkpoints().discard_after(*idx);
  return pos;
}

void Process::rollback() {
  // Rollback (Figure 3), triggered by orphan detection on our own vector.
  ++rollbacks_;
  api_.stats().inc(kRollbacks);
  Incarnation ending_inc = current_.inc;
  SeqNo send_seq_before = send_seq_;
  SeqNo output_seq_before = output_seq_;
  trace([&](std::ostream& os) {
    os << "ROLLBACK from " << current_.str() << " tdv=" << tdv_.str();
  });

  // "Log all the unlogged messages to the stable storage" — flushed without
  // publishing a watermark: the about-to-be-undone suffix must not be
  // claimed stable.
  size_t nvol = replay_.flush_volatile();
  replay_.charge_sync_write(storage_.costs().sync_write_us +
                            static_cast<SimTime>(nvol) *
                                storage_.costs().async_flush_per_msg_us);

  size_t stop = restore_and_replay(/*is_restart=*/false);
  // Replay regenerated the original ids for the kept prefix; from here on,
  // new-incarnation sends must not reuse ids the undone era handed out.
  send_seq_ = std::max(send_seq_, send_seq_before);
  output_seq_ = std::max(output_seq_, output_seq_before);

  if (Oracle* orc = oracle()) orc->on_rollback(pid_, current_.sii);

  // "Among remaining logged messages, discard orphans and add non-orphans
  // to Receive buffer" (they will be delivered again, in the new
  // incarnation).
  std::vector<LogRecord> dropped = storage_.log().truncate_from(stop);
  recv_.set_acked_upto(std::min(recv_.acked_upto(), storage_.log().size()));
  api_.stats().inc(kUndone, static_cast<int64_t>(dropped.size()));
  for (LogRecord& rec : dropped) {
    recv_.unmark_delivered(rec.msg.id);
    recv_.unmark_acked(rec.msg.id);
    if (orphan_vec(rec.msg.tdv)) {
      discard_orphan_recv(rec.msg);
    } else {
      // The message stays on stable storage (it was flushed above) until
      // its redelivery is stable: a crash in between must not lose it.
      storage_.park(rec.msg);
      recv_.push(std::move(rec.msg), api_.scheduler().now());
    }
  }
  channel_.ack_stable_records();
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kRollback;
    e.t = api_.scheduler().now();
    e.at = current_;  // the restored position
    e.ended = Entry{ending_inc, current_.sii};
    e.undone = static_cast<int64_t>(dropped.size());
    rec->record(std::move(e));
  }

  // The kept prefix is stable up to the restored interval; record and (in
  // the Strom–Yemini configuration) announce the incarnation's end.
  note_own_stable(Entry{ending_inc, current_.sii});
  if (cfg_.announce_all_rollbacks)
    announce(Entry{ending_inc, current_.sii}, /*from_failure=*/false);

  current_.inc = replay_.bump_incarnation_durably();
  ++current_.sii;
  tdv_.set(pid_, current_);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kIncarnationBump;
    e.t = api_.scheduler().now();
    e.at = current_;
    rec->record(std::move(e));
  }
  if (Oracle* orc = oracle())
    orc->on_recovery_interval(IntervalId{pid_, current_.inc, current_.sii},
                              app_->state_hash());
  trace([&](std::ostream& os) {
    os << "rolled back; new incarnation starts at " << current_.str();
  });
}

void Process::crash() {
  KOPT_CHECK_MSG(alive_, "crash of a process that is already down");
  alive_ = false;
  // Everything volatile is gone.
  std::vector<LogRecord> lost = replay_.on_crash();
  recv_.clear();
  send_buffer_.clear();
  output_buffer_.clear();
  channel_.clear();
  tdv_ = DepVector(n_);
  iet_.clear();
  log_.clear();
  replay_.report_crash_to_oracle();
  trace([&](std::ostream& os) {
    os << "CRASH (lost " << lost.size() << " volatile records)";
  });
}

void Process::restart() {
  KOPT_CHECK(!alive_);
  alive_ = true;
  api_.stats().inc(kRestarts);

  // Under a durable backend, restart from the media: the analysis scan
  // rebuilds the stable image (log, checkpoints, journal, parked messages,
  // incarnation high-water mark) from what fsyncs actually covered,
  // replacing the in-memory copy. Restart is derivable purely from stable
  // state, so this exercises the full recovery path on every in-sim
  // restart; under the model backend recover() is a no-op and the
  // in-memory state *is* the stable image.
  if (storage_.recover()) {
    if (EventRecorder* rec = recorder()) {
      ProtocolEvent e;
      e.kind = EventKind::kStorageRecover;
      e.t = api_.scheduler().now();
      e.at = current_;
      e.lsn = static_cast<int64_t>(storage_.log().size());
      rec->record(std::move(e));
    }
  }

  // Rebuild the synchronously-journaled state: incarnation end table and
  // logging-progress facts carried by announcements.
  replay_.restore_announcements([&](const Announcement& a) {
    iet_.insert(a.from, a.ended);
    log_.insert(a.from, a.ended);
  });
  // Rebuild our own per-incarnation stability watermarks from stable
  // storage itself: every surviving log record and checkpoint names the
  // interval it belongs to, and everything on stable storage is, by
  // definition, stable. Checkpoints additionally carry the watermark table
  // as of their taking, which preserves the information for records that
  // garbage collection has reclaimed. Without this, a crash would forget
  // that old incarnations' intervals are stable and remote
  // outputs/deliveries waiting on that fact would stall forever.
  for (size_t i = storage_.log().base(); i < storage_.log().stable_count();
       ++i) {
    log_.insert(pid_, storage_.log().at(i).started.entry());
  }
  for (size_t i = 0; i < storage_.checkpoints().size(); ++i) {
    const Checkpoint& cp = storage_.checkpoints().at(i);
    log_.insert(pid_, cp.at);
    for (const auto& [inc, sii] : cp.self_watermarks)
      log_.insert(pid_, Entry{inc, sii});
  }

  size_t stop = restore_and_replay(/*is_restart=*/true);
  KOPT_CHECK(stop == storage_.log().size());
  // Everything on stable storage is (re-)acknowledged — the pre-crash acks
  // may never have reached their senders.
  channel_.ack_stable_records();
  // Parked messages (undone by a pre-crash rollback, redelivery not yet
  // stable) go back into the receive buffer; orphaned ones are dropped.
  {
    std::vector<MsgId> to_unpark;
    for (const auto& [id, msg] : storage_.parked()) {
      if (recv_.delivered(id)) continue;  // replayed already
      if (orphan_vec(msg.tdv)) {
        api_.stats().inc(kDiscardedRecv);
        if (Oracle* orc = oracle()) orc->on_msg_discarded(msg);
        to_unpark.push_back(id);
        if (cfg_.reliable_delivery && msg.from != kEnvironment)
          api_.send_ack(pid_, msg.from, id);
      } else {
        recv_.push(msg, api_.scheduler().now());
      }
    }
    for (const MsgId& id : to_unpark) storage_.unpark(id);
  }

  // The failure announcement must name the highest incarnation that ever
  // existed (durably journaled): intervals of *any* incarnation s <= fa.inc
  // with index beyond fa.sii are rolled back.
  Entry fa{storage_.durable_max_inc(), current_.sii};
  announce(fa, /*from_failure=*/true);
  note_own_stable(fa);

  current_.inc = replay_.bump_incarnation_durably();
  ++current_.sii;
  tdv_.set(pid_, current_);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kIncarnationBump;
    e.t = api_.scheduler().now();
    e.at = current_;
    rec->record(std::move(e));
  }
  if (Oracle* orc = oracle())
    orc->on_recovery_interval(IntervalId{pid_, current_.inc, current_.sii},
                              app_->state_hash());
  schedule_timers();
  apply_stability_info();
  trace([&](std::ostream& os) {
    os << "RESTART complete; announced " << fa.str() << ", now at "
       << current_.str();
  });
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void Process::schedule_timers() {
  replay_.arm_periodic(cfg_.flush_interval_us, [this] { start_async_flush(); });
  // In coordinated mode the cluster's marker rounds drive checkpoints.
  if (!cfg_.coordinated_checkpoints) {
    replay_.arm_periodic(cfg_.checkpoint_interval_us, [this] {
      exec_.submit([this] {
        if (alive_) do_checkpoint();
      });
    });
  }
  replay_.arm_periodic(cfg_.notify_interval_us, [this] { broadcast_progress(); });
  if (cfg_.reliable_delivery)
    replay_.arm_periodic(cfg_.retransmit_interval_us,
                         [this] { retransmit_unacked(); });
}

void Process::trace(const std::function<void(std::ostream&)>& fn) const {
  api_.tracer().log(TraceLevel::kDebug, api_.scheduler().now(), pid_, fn);
}

}  // namespace koptlog
