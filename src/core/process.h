// Process — one participant in the K-optimistic logging protocol: the
// complete recovery layer of paper Figures 2 and 3 (Strom–Yemini optimistic
// recovery plus the paper's three improvements, each toggleable via
// ProtocolConfig), sitting between a PWD application and the cluster's
// network/storage substrate.
//
// The engine composes the shared runtime components (src/runtime/): the
// send/receive/output buffers, the reliable channel, and the
// checkpoint/replay machinery own the buffering, accounting and
// stable-storage mechanics; this class supplies the K-optimistic *policy* —
// the transitive dependency vector, the incarnation end table,
// deliverability (Corollary 1), orphan detection over vectors, and the
// Theorem 2 commit-dependency NULLing step.
//
// Implementation notes relative to the paper's listing:
//  * Incarnation numbers are durably journaled when incremented, so a
//    crash after a rollback can never reuse an incarnation number (the
//    failure announcement names the highest incarnation that ever existed;
//    without this, orphan detection has a naming collision).
//  * Flush watermarks advance only to the last *logged record's* interval,
//    never to the bookkeeping interval a rollback/restart starts (that
//    interval is only reconstructable from a checkpoint, so only a
//    checkpoint may claim it stable).
//  * Restart additionally verifies that no logged record is orphaned by
//    the journaled incarnation end table — by protocol order (announcement
//    processing truncates the log before anything else can intervene) this
//    can never trigger, so it is an invariant check, not a filter.
//  * Receivers deduplicate messages by replay-stable id: recovery replay
//    re-executes application sends, which regenerates identical messages;
//    duplicates are dropped at the receiver (and when re-enqueueing into
//    the local send buffer).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/entry.h"
#include "common/types.h"
#include "core/application.h"
#include "core/cluster_api.h"
#include "core/config.h"
#include "core/dep_vector.h"
#include "core/interval_table.h"
#include "core/output.h"
#include "core/protocol_msg.h"
#include "core/recovery_process.h"
#include "runtime/output_buffer.h"
#include "runtime/receive_buffer.h"
#include "runtime/reliable_channel.h"
#include "runtime/replay_engine.h"
#include "runtime/runtime_services.h"
#include "runtime/send_buffer.h"
#include "sim/executor.h"
#include "storage/stable_storage.h"

namespace koptlog {

class Process final : public RecoveryProcess, private AppContext {
 public:
  Process(ProcessId pid, int n, const ProtocolConfig& cfg, ClusterApi& api,
          std::unique_ptr<Application> app);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Initialize (Figure 2): empty dependency vector (Corollary 3), run the
  /// application's on_start, take the initial checkpoint, start timers.
  /// `initial` lets tests begin mid-history (e.g. the Figure 1 scenario
  /// starts with P0 in incarnation 1 and P3 in incarnation 2).
  void start(Entry initial = Entry{0, 1});
  void start_process() override { start(); }

  // ---- events, invoked by the cluster through the executor ----
  void handle_app_msg(const AppMsg& m) override;
  void handle_announcement(const Announcement& a) override;
  void handle_log_progress(const LogProgressMsg& lp) override;
  /// Reliable-delivery mode: the receiver confirmed message `id`.
  void handle_ack(const MsgId& id) override;
  /// Dependency-assembly queries belong to the direct-tracking engine;
  /// this protocol carries transitive information on the messages
  /// themselves and never needs them.
  void handle_dep_query(const DepQuery&) override {}
  void handle_dep_reply(const DepReply&) override {}

  // ---- failure injection (cluster) ----
  /// Crash now: every volatile structure is lost.
  void crash() override;
  /// Restart (Figure 3): restore, replay, announce; cluster schedules this
  /// config.restart_delay_us after the crash.
  void restart() override;

  // ---- drain support ----
  /// Synchronously flush the volatile log and publish the new watermark.
  void force_flush();
  /// Broadcast this process's logging-progress notification now.
  void broadcast_progress();
  /// Reliable-delivery mode: re-send every unacknowledged non-orphan
  /// released message now (also runs on the retransmission timer).
  void retransmit_unacked();
  /// Take a checkpoint now (checkpoint timer / coordinated marker).
  /// Flushes the volatile log, snapshots application + recovery state,
  /// applies Corollary 2 and runs garbage collection.
  void checkpoint_now() override {
    if (alive_) do_checkpoint();
  }

  void drain_tick() override {
    force_flush();
    broadcast_progress();
    retransmit_unacked();
  }
  bool quiescent() const override {
    return recv_.empty() && send_buffer_.empty() && output_buffer_.empty() &&
           channel_.empty() && storage_.parked().empty() &&
           storage_.log().volatile_count() == 0;
  }

  // ---- inspection (tests, benches, examples) ----
  bool alive() const override { return alive_; }
  ProcessId pid() const override { return pid_; }
  Entry current() const override { return current_; }
  const DepVector& tdv() const { return tdv_; }
  const IntervalTable& iet() const { return iet_; }
  const IntervalTable& log_table() const { return log_; }
  const StableStorage& storage() const override { return storage_; }
  Executor& executor() override { return exec_; }
  const Application& app() const { return *app_; }
  size_t receive_buffer_size() const override { return recv_.size(); }
  size_t send_buffer_size() const override { return send_buffer_.size(); }
  size_t output_buffer_size() const override { return output_buffer_.size(); }
  size_t unacked_count() const { return channel_.unacked_count(); }
  int64_t deliveries() const override { return deliveries_; }
  int64_t rollbacks() const override { return rollbacks_; }

  /// Is this message deliverable right now? (exposed for tests)
  bool deliverable(const AppMsg& m) const;
  /// Does this vector depend on an interval our IET says was rolled back?
  bool orphan_vec(const DepVector& v) const;

 private:
  // ---- AppContext (application-facing) ----
  void send(ProcessId to, const AppPayload& payload) override;
  void send_with_k(ProcessId to, const AppPayload& payload, int k) override;
  void send_impl(ProcessId to, const AppPayload& payload, int k_limit);
  void output(const AppPayload& payload) override;
  ProcessId self() const override { return pid_; }
  int system_size() const override { return n_; }

  // ---- protocol internals ----
  void deliver(const AppMsg& m);
  void try_deliver();
  bool sy_deliverable(const AppMsg& m) const;
  void run_app_handler(ProcessId from, const AppPayload& payload);

  /// NULL every entry of `v` covered by stability knowledge (Theorem 2's
  /// commit dependency step), auditing each with the oracle.
  void null_stable_entries(DepVector& v);
  void check_send_buffer();
  void check_output_buffer();
  /// Null local tdv entries covered by log_, then re-examine all buffers.
  /// Called after any new stability information (Receive_log, Corollary 1
  /// on announcements, local flush/checkpoint).
  void apply_stability_info();
  void discard_orphans_from_buffers();
  /// A received (or undone) message turned out to be an orphan: count it,
  /// report it, and release the sender from retransmitting it.
  void discard_orphan_recv(const AppMsg& m);

  void do_checkpoint();
  /// Reclaim checkpoints and log records that recovery can never need
  /// again (see ProtocolConfig::garbage_collect).
  void garbage_collect();
  void start_async_flush();
  /// Record the fact that every interval up to `watermark` is now stable.
  void note_own_stable(Entry watermark);

  void rollback();
  /// Restore the latest non-orphan checkpoint and replay the non-orphan
  /// logged prefix. Returns the log position replay stopped at.
  size_t restore_and_replay(bool is_restart);
  void announce(Entry ended, bool from_failure);
  void process_announcement_body(const Announcement& a);

  void schedule_timers();
  Oracle* oracle() { return api_.oracle(); }
  EventRecorder* recorder() { return api_.recorder(pid_); }
  void trace(const std::function<void(std::ostream&)>& fn) const;

  // ---- identity & collaborators ----
  const ProcessId pid_;
  const int n_;
  const ProtocolConfig cfg_;
  const int effective_k_;
  ClusterApi& api_;
  Executor exec_;
  std::unique_ptr<Application> app_;
  StableStorage storage_;
  RuntimeServices rt_;

  // ---- shared runtime components (mechanism) ----
  ReceiveBuffer recv_;
  ReliableChannel channel_;
  SendBuffer send_buffer_;
  OutputBuffer output_buffer_;
  ReplayEngine replay_;

  // ---- K-optimistic policy state (volatile, lost on crash) ----
  bool alive_ = false;
  Entry current_{0, 1};
  DepVector tdv_;
  IntervalTable iet_;
  IntervalTable log_;
  SeqNo send_seq_ = 0;
  SeqNo output_seq_ = 0;

  // ---- metrics ----
  int64_t deliveries_ = 0;
  int64_t rollbacks_ = 0;
};

}  // namespace koptlog
