// Process — one participant in the K-optimistic logging protocol: the
// complete recovery layer of paper Figures 2 and 3 (Strom–Yemini optimistic
// recovery plus the paper's three improvements, each toggleable via
// ProtocolConfig), sitting between a PWD application and the cluster's
// network/storage substrate.
//
// Implementation notes relative to the paper's listing:
//  * Incarnation numbers are durably journaled when incremented, so a
//    crash after a rollback can never reuse an incarnation number (the
//    failure announcement names the highest incarnation that ever existed;
//    without this, orphan detection has a naming collision).
//  * Flush watermarks advance only to the last *logged record's* interval,
//    never to the bookkeeping interval a rollback/restart starts (that
//    interval is only reconstructable from a checkpoint, so only a
//    checkpoint may claim it stable).
//  * Restart additionally verifies that no logged record is orphaned by
//    the journaled incarnation end table — by protocol order (announcement
//    processing truncates the log before anything else can intervene) this
//    can never trigger, so it is an invariant check, not a filter.
//  * Receivers deduplicate messages by replay-stable id: recovery replay
//    re-executes application sends, which regenerates identical messages;
//    duplicates are dropped at the receiver (and when re-enqueueing into
//    the local send buffer).
#pragma once

#include <functional>
#include <memory>
#include <map>
#include <set>
#include <vector>

#include "common/entry.h"
#include "common/types.h"
#include "core/application.h"
#include "core/cluster_api.h"
#include "core/config.h"
#include "core/dep_vector.h"
#include "core/interval_table.h"
#include "core/output.h"
#include "core/protocol_msg.h"
#include "core/recovery_process.h"
#include "sim/executor.h"
#include "storage/stable_storage.h"

namespace koptlog {

class Process final : public RecoveryProcess, private AppContext {
 public:
  Process(ProcessId pid, int n, const ProtocolConfig& cfg, ClusterApi& api,
          std::unique_ptr<Application> app);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Initialize (Figure 2): empty dependency vector (Corollary 3), run the
  /// application's on_start, take the initial checkpoint, start timers.
  /// `initial` lets tests begin mid-history (e.g. the Figure 1 scenario
  /// starts with P0 in incarnation 1 and P3 in incarnation 2).
  void start(Entry initial = Entry{0, 1});
  void start_process() override { start(); }

  // ---- events, invoked by the cluster through the executor ----
  void handle_app_msg(const AppMsg& m) override;
  void handle_announcement(const Announcement& a) override;
  void handle_log_progress(const LogProgressMsg& lp) override;
  /// Reliable-delivery mode: the receiver confirmed message `id`.
  void handle_ack(const MsgId& id) override;
  /// Dependency-assembly queries belong to the direct-tracking engine;
  /// this protocol carries transitive information on the messages
  /// themselves and never needs them.
  void handle_dep_query(const DepQuery&) override {}
  void handle_dep_reply(const DepReply&) override {}

  // ---- failure injection (cluster) ----
  /// Crash now: every volatile structure is lost.
  void crash() override;
  /// Restart (Figure 3): restore, replay, announce; cluster schedules this
  /// config.restart_delay_us after the crash.
  void restart() override;

  // ---- drain support ----
  /// Synchronously flush the volatile log and publish the new watermark.
  void force_flush();
  /// Broadcast this process's logging-progress notification now.
  void broadcast_progress();
  /// Reliable-delivery mode: re-send every unacknowledged non-orphan
  /// released message now (also runs on the retransmission timer).
  void retransmit_unacked();
  /// Take a checkpoint now (checkpoint timer / coordinated marker).
  /// Flushes the volatile log, snapshots application + recovery state,
  /// applies Corollary 2 and runs garbage collection.
  void checkpoint_now() override {
    if (alive_) do_checkpoint();
  }

  void drain_tick() override {
    force_flush();
    broadcast_progress();
    retransmit_unacked();
  }
  bool quiescent() const override {
    return receive_buffer_.empty() && send_buffer_.empty() &&
           output_buffer_.empty() && unacked_.empty() &&
           storage_.parked().empty() &&
           storage_.log().volatile_count() == 0;
  }

  // ---- inspection (tests, benches, examples) ----
  bool alive() const override { return alive_; }
  ProcessId pid() const override { return pid_; }
  Entry current() const { return current_; }
  const DepVector& tdv() const { return tdv_; }
  const IntervalTable& iet() const { return iet_; }
  const IntervalTable& log_table() const { return log_; }
  const StableStorage& storage() const { return storage_; }
  Executor& executor() override { return exec_; }
  const Application& app() const { return *app_; }
  size_t receive_buffer_size() const { return receive_buffer_.size(); }
  size_t send_buffer_size() const { return send_buffer_.size(); }
  size_t output_buffer_size() const { return output_buffer_.size(); }
  size_t unacked_count() const { return unacked_.size(); }
  int64_t deliveries() const { return deliveries_; }
  int64_t rollbacks() const { return rollbacks_; }

  /// Is this message deliverable right now? (exposed for tests)
  bool deliverable(const AppMsg& m) const;
  /// Does this vector depend on an interval our IET says was rolled back?
  bool orphan_vec(const DepVector& v) const;

 private:
  struct BufferedSend {
    AppMsg msg;
    SimTime queued_at = 0;
    /// Release threshold for this message: the system K, or a per-message
    /// override (§4.2).
    int k_limit = 0;
  };
  struct BufferedRecv {
    AppMsg msg;
    SimTime arrived_at = 0;
  };

  // ---- AppContext (application-facing) ----
  void send(ProcessId to, const AppPayload& payload) override;
  void send_with_k(ProcessId to, const AppPayload& payload, int k) override;
  void send_impl(ProcessId to, const AppPayload& payload, int k_limit);
  void output(const AppPayload& payload) override;
  ProcessId self() const override { return pid_; }
  int system_size() const override { return n_; }

  // ---- protocol internals ----
  void deliver(const AppMsg& m);
  void try_deliver();
  bool sy_deliverable(const AppMsg& m) const;
  void run_app_handler(ProcessId from, const AppPayload& payload);

  void check_send_buffer();
  void check_output_buffer();
  /// Null local tdv entries covered by log_, then re-examine all buffers.
  /// Called after any new stability information (Receive_log, Corollary 1
  /// on announcements, local flush/checkpoint).
  void apply_stability_info();
  void discard_orphans_from_buffers();

  void do_checkpoint();
  /// Reclaim checkpoints and log records that recovery can never need
  /// again (see ProtocolConfig::garbage_collect).
  void garbage_collect();
  void start_async_flush();
  void finish_flush(size_t upto, Entry watermark, uint64_t epoch);
  /// Record the fact that every interval up to `watermark` is now stable.
  void note_own_stable(Entry watermark);

  /// Account a blocking stable-storage write: service time + counters.
  void charge_sync_write(SimTime cost);

  /// reliable_delivery: acknowledge (and unpark) every record that has
  /// newly reached stable storage. Acks are deferred to stability so that a
  /// crash can never lose a message whose sender already stopped
  /// retransmitting it.
  void ack_stable_records();
  /// Tell the sender of `m` to stop retransmitting it (orphans are
  /// discarded on both ends, so receipt-of-an-orphan is final too).
  void ack_discarded(const AppMsg& m);

  void rollback();
  /// Restore the latest non-orphan checkpoint and replay the non-orphan
  /// logged prefix. Returns the log position replay stopped at.
  size_t restore_and_replay(bool is_restart);
  void bump_incarnation_durably();
  void announce(Entry ended, bool from_failure);
  void process_announcement_body(const Announcement& a);

  void schedule_timers();
  size_t wire_bytes(const AppMsg& m) const {
    return m.wire_bytes(cfg_.null_stable_entries);
  }
  Oracle* oracle() { return api_.oracle(); }
  void trace(const std::function<void(std::ostream&)>& fn) const;

  // ---- identity & collaborators ----
  const ProcessId pid_;
  const int n_;
  const ProtocolConfig cfg_;
  const int effective_k_;
  ClusterApi& api_;
  Executor exec_;
  std::unique_ptr<Application> app_;
  StableStorage storage_;

  // ---- volatile protocol state (lost on crash) ----
  bool alive_ = false;
  Entry current_{0, 1};
  DepVector tdv_;
  IntervalTable iet_;
  IntervalTable log_;
  std::vector<BufferedRecv> receive_buffer_;
  std::vector<BufferedSend> send_buffer_;
  std::vector<OutputRecord> output_buffer_;
  /// reliable_delivery: released-but-unacknowledged messages, the "sender's
  /// volatile log" of paper §2 fn. 3. Lost on crash; recovery replay
  /// regenerates it.
  std::map<MsgId, AppMsg> unacked_;
  std::set<MsgId> delivered_ids_;
  /// Ids whose delivery is stable (ack already sent); duplicates of these
  /// are re-acked in case the first ack was lost.
  std::set<MsgId> acked_ids_;
  /// Log position up to which ack_stable_records() has scanned.
  size_t acked_upto_ = 0;
  std::set<std::pair<ProcessId, Entry>> processed_announcements_;
  SeqNo send_seq_ = 0;
  SeqNo output_seq_ = 0;
  bool in_replay_ = false;
  /// Bumped on crash; stale timer firings and async-flush completions check
  /// it and become no-ops. (Rollbacks don't bump it: finish_flush detects a
  /// truncated log by re-checking the watermark record's identity.)
  uint64_t epoch_ = 0;

  // ---- metrics ----
  int64_t deliveries_ = 0;
  int64_t rollbacks_ = 0;
};

}  // namespace koptlog
