// Wire-level message types exchanged by recovery-layer processes:
// application messages with piggybacked dependency vectors, failure /
// rollback announcements, and logging-progress notifications.
#pragma once

#include <cstdint>
#include <vector>

#include "common/entry.h"
#include "common/types.h"
#include "core/dep_vector.h"

namespace koptlog {

/// Unique, replay-stable message identity: the sender plus a deterministic
/// per-sender send counter. Replay after a failure re-executes application
/// sends, which regenerates byte-identical messages with identical ids;
/// receivers discard duplicates by id.
struct MsgId {
  ProcessId src = 0;
  SeqNo seq = 0;

  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

/// Application-level payload. Fixed shape so that workloads stay trivially
/// serializable and deterministic; the fields' meaning is workload-defined.
struct AppPayload {
  int32_t kind = 0;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  int32_t ttl = 0;

  static constexpr size_t kWireBytes = 4 + 8 + 8 + 8 + 4;

  friend bool operator==(const AppPayload&, const AppPayload&) = default;
};

/// An application message as it travels through the recovery layer. `tdv`
/// is the piggybacked dependency vector; while the message sits in the
/// sender's send buffer, Check_send_buffer keeps NULLing entries that became
/// stable, and the message is released once <= K entries remain (§4.2).
struct AppMsg {
  MsgId id;
  ProcessId from = 0;
  ProcessId to = 0;
  AppPayload payload;
  DepVector tdv;
  /// The sender state interval the message was sent from — (t,x)_i of the
  /// send. Used by the ground-truth oracle, and by receivers only for
  /// tracing (the protocol itself relies solely on tdv).
  IntervalId born_of;
  SimTime sent_at = 0;

  /// Exact encoded size (wire/codec.h round-trips it; tests pin equality):
  /// from(4) + to(4) + id.seq(8) + born_of inc(4) + sii(8) + payload +
  /// NULL-omitting or full vector.
  size_t wire_bytes(bool null_omission) const {
    constexpr size_t kHeader = 4 + 4 + 8 + 4 + 8;
    return kHeader + AppPayload::kWireBytes +
           (null_omission ? tdv.wire_bytes() : tdv.wire_bytes_full());
  }
};

/// Rollback/failure announcement r_i: "incarnation `ended.inc` of process
/// `from` ended at interval index `ended.sii`". By Corollary 1 it doubles
/// as a logging-progress notification that (t, x0) is stable.
struct Announcement {
  ProcessId from = 0;
  Entry ended;
  /// True when sent by a genuinely failed process (Figure 3 Restart);
  /// false for the non-failure rollback announcements that only the
  /// Strom–Yemini-style configuration (announce_all_rollbacks) sends.
  bool from_failure = true;

  static constexpr size_t kWireBytes = 4 + 4 + 8 + 1;
};

/// Periodic logging-progress notification: the sender's stable watermark
/// for each of its incarnations (paper §2 "Logging progress notification").
struct LogProgressMsg {
  ProcessId from = 0;
  std::vector<Entry> stable;  // one entry per incarnation, max index

  size_t wire_bytes() const { return 4 + 2 + stable.size() * (4 + 8); }
};

/// Direct-dependency-tracking assembly (paper §5): ask the owner of
/// interval `target` whether the owner's state up to `target` is stable,
/// and which cross-process intervals it (still) depends on.
struct DepQuery {
  ProcessId requester = 0;
  IntervalId target;
  SeqNo query_id = 0;

  static constexpr size_t kWireBytes = 4 + 4 + 4 + 8 + 8;
};

struct DepReply {
  enum class Status : int32_t {
    kUnknown,     ///< the owner has not (yet) seen this interval
    kRolledBack,  ///< the interval was undone or lost — dependents are orphans
    kPending,     ///< exists but not yet stable; ask again later
    kStable,      ///< stable; `deps` lists its live cross-process parents
  };
  ProcessId owner = 0;
  SeqNo query_id = 0;
  IntervalId target;
  Status status = Status::kUnknown;
  /// Cross-process intervals the owner's chain up to `target` directly
  /// depends on and does not yet know to be stable (already-stable ones
  /// are pruned at the owner — they cannot make anyone an orphan).
  std::vector<IntervalId> deps;

  size_t wire_bytes() const { return 34 + deps.size() * 16; }
};

}  // namespace koptlog
