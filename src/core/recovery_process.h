// RecoveryProcess — the event surface a recovery-layer engine exposes to
// the Cluster. Two engines implement it: Process (the paper's K-optimistic
// logging with transitive/commit dependency tracking) and DirectProcess
// (the related-work comparison point of paper §5: direct dependency
// tracking with constant-size piggybacks and assembly at commit/recovery
// time).
#pragma once

#include "common/types.h"
#include "core/protocol_msg.h"
#include "sim/executor.h"

namespace koptlog {

class RecoveryProcess {
 public:
  virtual ~RecoveryProcess() = default;

  /// Initialize: initial checkpoint, timers.
  virtual void start_process() = 0;

  // ---- events, invoked by the cluster through the executor ----
  virtual void handle_app_msg(const AppMsg& m) = 0;
  virtual void handle_announcement(const Announcement& a) = 0;
  virtual void handle_log_progress(const LogProgressMsg& lp) = 0;
  virtual void handle_ack(const MsgId& id) = 0;
  virtual void handle_dep_query(const DepQuery& q) = 0;
  virtual void handle_dep_reply(const DepReply& r) = 0;

  // ---- failure injection ----
  virtual void crash() = 0;
  virtual void restart() = 0;

  /// Take a checkpoint now (coordinated-checkpointing marker receipt).
  virtual void checkpoint_now() = 0;

  // ---- drain support ----
  /// One drain round: force pending stability/communication work so the
  /// system can reach quiescence (flush, notify, retransmit, re-query...).
  virtual void drain_tick() = 0;
  /// True when every local buffer is empty (used to detect quiescence).
  virtual bool quiescent() const = 0;

  virtual bool alive() const = 0;
  virtual ProcessId pid() const = 0;
  virtual Executor& executor() = 0;
};

}  // namespace koptlog
