// RecoveryProcess — the event surface a recovery-layer engine exposes to
// the Cluster. Two engines implement it: Process (the paper's K-optimistic
// logging with transitive/commit dependency tracking) and DirectProcess
// (the related-work comparison point of paper §5: direct dependency
// tracking with constant-size piggybacks and assembly at commit/recovery
// time).
#pragma once

#include <cstdint>

#include "common/entry.h"
#include "common/types.h"
#include "core/protocol_msg.h"
#include "sim/executor.h"

namespace koptlog {

class StableStorage;

class RecoveryProcess {
 public:
  virtual ~RecoveryProcess() = default;

  /// Initialize: initial checkpoint, timers.
  virtual void start_process() = 0;

  // ---- events, invoked by the cluster through the executor ----
  virtual void handle_app_msg(const AppMsg& m) = 0;
  virtual void handle_announcement(const Announcement& a) = 0;
  virtual void handle_log_progress(const LogProgressMsg& lp) = 0;
  virtual void handle_ack(const MsgId& id) = 0;
  virtual void handle_dep_query(const DepQuery& q) = 0;
  virtual void handle_dep_reply(const DepReply& r) = 0;

  // ---- failure injection ----
  virtual void crash() = 0;
  virtual void restart() = 0;

  /// Take a checkpoint now (coordinated-checkpointing marker receipt).
  virtual void checkpoint_now() = 0;

  // ---- drain support ----
  /// One drain round: force pending stability/communication work so the
  /// system can reach quiescence (flush, notify, retransmit, re-query...).
  virtual void drain_tick() = 0;
  /// True when every local buffer is empty (used to detect quiescence).
  virtual bool quiescent() const = 0;

  virtual bool alive() const = 0;
  virtual ProcessId pid() const = 0;
  virtual Executor& executor() = 0;

  // ---- engine-agnostic inspection (tests, benches, diagnostics) ----
  /// The interval this process is currently in (incarnation, index).
  virtual Entry current() const = 0;
  /// The process's stable storage (log, checkpoints, cost counters).
  virtual const StableStorage& storage() const = 0;
  /// Arrivals waiting for a deliverability decision (buffered or held).
  virtual size_t receive_buffer_size() const = 0;
  /// Sends waiting for their release condition (0 for engines that release
  /// immediately).
  virtual size_t send_buffer_size() const = 0;
  /// Outputs whose commit condition is not yet established.
  virtual size_t output_buffer_size() const = 0;
  virtual int64_t deliveries() const = 0;
  virtual int64_t rollbacks() const = 0;
};

}  // namespace koptlog
