#include "core/timeline.h"

#include <map>
#include <sstream>
#include <vector>

namespace koptlog {

namespace {

char marker(const Oracle::NodeView& v) {
  if (v.lost) return '!';
  if (v.undone) return '~';
  if (v.recovery) return '*';
  if (v.stable) return '#';
  return ' ';
}

std::string dot_id(const IntervalId& iv) {
  std::ostringstream os;
  os << "p" << iv.pid << "_i" << iv.inc << "_x" << iv.sii;
  return os.str();
}

}  // namespace

std::string to_ascii(const Oracle& oracle, TimelineOptions opts) {
  std::map<ProcessId, std::vector<Oracle::NodeView>> lanes;
  for (const Oracle::NodeView& v : oracle.nodes()) lanes[v.id.pid].push_back(v);

  std::ostringstream os;
  os << "space-time diagram ('#' stable, '~' undone, '!' lost, '*' "
        "recovery, ' ' volatile)\n";
  for (const auto& [pid, nodes] : lanes) {
    if (nodes.size() < opts.min_intervals) continue;
    os << 'P' << pid << " |";
    size_t shown = 0;
    size_t cap = opts.ascii_max_per_process;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (cap > 0 && shown >= cap) {
        os << "... +" << nodes.size() - i << " more";
        break;
      }
      const Oracle::NodeView& v = nodes[i];
      os << marker(v) << '(' << v.id.inc << ',' << v.id.sii << ")|";
      ++shown;
    }
    os << '\n';
  }
  return os.str();
}

std::string to_dot(const Oracle& oracle, TimelineOptions opts) {
  std::vector<Oracle::NodeView> nodes = oracle.nodes();
  std::map<ProcessId, std::vector<const Oracle::NodeView*>> lanes;
  for (const Oracle::NodeView& v : nodes) lanes[v.id.pid].push_back(&v);

  std::ostringstream os;
  os << "digraph koptlog {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontsize=10, height=0.25];\n"
     << "  edge [fontsize=8];\n";
  for (const auto& [pid, lane] : lanes) {
    if (lane.size() < opts.min_intervals) continue;
    os << "  subgraph cluster_p" << pid << " {\n"
       << "    label=\"P" << pid << "\";\n"
       << "    color=lightgray;\n";
    for (const Oracle::NodeView* v : lane) {
      os << "    " << dot_id(v->id) << " [label=\"(" << v->id.inc << ','
         << v->id.sii << ")\"";
      if (v->lost) {
        os << ", style=filled, fillcolor=\"#e57373\"";  // lost: red
      } else if (v->undone) {
        os << ", style=filled, fillcolor=\"#e0e0e0\", fontcolor=gray";
      } else if (v->stable) {
        os << ", style=filled, fillcolor=\"#aed581\"";  // stable: green
      }
      if (v->recovery) os << ", shape=diamond";
      os << "];\n";
    }
    os << "  }\n";
  }
  // Chain edges (solid) and message edges (dashed).
  for (const Oracle::NodeView& v : nodes) {
    if (v.prev) {
      os << "  " << dot_id(*v.prev) << " -> " << dot_id(v.id) << ";\n";
    }
    if (v.sender) {
      os << "  " << dot_id(*v.sender) << " -> " << dot_id(v.id)
         << " [style=dashed, color=\"#1976d2\", constraint=false];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace koptlog
