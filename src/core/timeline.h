// Timeline export — regenerate Figure-1-style space-time diagrams from any
// run. The ground-truth oracle already holds every state interval with its
// chain and message parents plus its fate (stable / undone / lost), which is
// exactly the information the paper's Figure 1 depicts: shaded boxes for
// stable intervals, message arrows, rollbacks and failure points.
//
// Two renderers:
//  * to_ascii — one lane per process, intervals in execution order with a
//    status marker; quick to eyeball in a terminal.
//  * to_dot   — Graphviz digraph: chain edges solid, message edges dashed;
//    stable intervals filled, undone gray, lost red, recovery points
//    diamonds. `dot -Tsvg run.dot -o run.svg` gives the paper's figure for
//    your own run.
#pragma once

#include <string>

#include "core/oracle.h"

namespace koptlog {

struct TimelineOptions {
  /// Omit processes with fewer than this many intervals (declutters DOT).
  size_t min_intervals = 0;
  /// Cap per-process intervals in the ASCII rendering (0 = no cap).
  size_t ascii_max_per_process = 24;
};

/// Legend: each interval prints as M(t,x) with marker M:
///   '#' stable   '~' undone (rolled back)   '!' lost in a crash
///   '*' recovery/bookkeeping interval       ' ' live but volatile
std::string to_ascii(const Oracle& oracle, TimelineOptions opts = {});

std::string to_dot(const Oracle& oracle, TimelineOptions opts = {});

}  // namespace koptlog
