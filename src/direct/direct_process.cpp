#include "direct/direct_process.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/oracle.h"
#include "obs/event_recorder.h"

namespace koptlog {

namespace {
constexpr const char* kSent = "msgs.sent";
constexpr const char* kReleased = "msgs.released";
constexpr const char* kReceived = "msgs.received";
constexpr const char* kDuplicate = "msgs.duplicate";
constexpr const char* kDelivered = "msgs.delivered";
constexpr const char* kDiscardedRecv = "msgs.discarded_orphan_recv";
constexpr const char* kDiscardedOutput = "outputs.discarded_orphan";
constexpr const char* kRollbacks = "rollback.count";
constexpr const char* kUndone = "rollback.undone_intervals";
constexpr const char* kRestarts = "restart.count";
constexpr const char* kAnnSent = "announce.sent";
constexpr const char* kPiggyback = "msg.piggyback_bytes";
}  // namespace

DirectProcess::DirectProcess(ProcessId pid, int n, const ProtocolConfig& cfg,
                             ClusterApi& api, std::unique_ptr<Application> app)
    : pid_(pid),
      n_(n),
      cfg_(cfg),
      api_(api),
      exec_(api.scheduler()),
      app_(std::move(app)),
      storage_(cfg.storage,
               make_storage_backend(cfg.storage_backend, cfg.storage, pid, n,
                                    api.scheduler(), &api.stats())),
      rt_{pid_, n_, api_, exec_, storage_},
      replay_(rt_, cfg_, [this] { return alive_; }),
      iet_(n),
      log_(n),
      commit_stable_(n) {
  KOPT_CHECK(pid >= 0 && pid < n);
  KOPT_CHECK(app_ != nullptr);
}

Cluster::EngineFactory DirectProcess::factory() {
  return [](ProcessId pid, const ClusterConfig& cfg, ClusterApi& api,
            std::unique_ptr<Application> app) -> std::unique_ptr<RecoveryProcess> {
    return std::make_unique<DirectProcess>(pid, cfg.n, cfg.protocol, api,
                                           std::move(app));
  };
}

void DirectProcess::start_process() {
  KOPT_CHECK(!alive_);
  alive_ = true;
  current_ = Entry{0, 1};
  segments_ = {{1, 0}};
  storage_.set_durable_max_inc(0);
  if (Oracle* orc = oracle())
    orc->on_process_start(IntervalId{pid_, 0, 1}, app_->state_hash());
  app_->on_start(*this);
  do_checkpoint();
  schedule_timers();
}

// ---------------------------------------------------------------------------
// Application context: constant-size piggyback, immediate release
// ---------------------------------------------------------------------------

void DirectProcess::send(ProcessId to, const AppPayload& payload) {
  KOPT_CHECK(to >= 0 && to < n_);
  AppMsg m;
  m.id = MsgId{pid_, ++send_seq_};
  m.from = pid_;
  m.to = to;
  m.payload = payload;
  m.tdv = DepVector(0);  // nothing but the sender's interval id travels
  m.born_of = IntervalId{pid_, current_.inc, current_.sii};
  m.sent_at = api_.scheduler().now();
  api_.stats().inc(kSent);
  api_.stats().inc(kReleased);
  api_.stats().sample(kPiggyback,
                      static_cast<double>(m.wire_bytes(/*null_omission=*/true)));
  if (EventRecorder* rec = recorder()) {
    // Direct tracking releases immediately: the send IS the wire departure.
    ProtocolEvent e;
    e.kind = EventKind::kSend;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.msg = m.id;
    e.peer = to;
    e.ref = m.born_of;
    rec->record(std::move(e));
  }
  api_.route_app_msg(std::move(m));
}

void DirectProcess::output(const AppPayload& payload) {
  PendingCommit pc;
  pc.rec.id = MsgId{pid_, ++output_seq_};
  pc.rec.payload = payload;
  pc.rec.tdv = DepVector(0);
  pc.rec.born_of = IntervalId{pid_, current_.inc, current_.sii};
  pc.rec.created_at = api_.scheduler().now();
  // A recovery replay may re-emit an output whose pending entry survived.
  for (const PendingCommit& existing : pending_) {
    if (existing.rec.id == pc.rec.id) return;
  }
  pc.unresolved.insert(pc.rec.born_of);
  pending_.push_back(std::move(pc));
}

// ---------------------------------------------------------------------------
// Delivery
// ---------------------------------------------------------------------------

void DirectProcess::handle_app_msg(const AppMsg& m) {
  if (!alive_) return;
  api_.stats().inc(kReceived);
  if (recv_.delivered(m.id) || held_ids_.count(m.id) != 0) {
    api_.stats().inc(kDuplicate);
    return;
  }
  // Direct orphan check: is the *sending* interval known rolled back?
  // (Transitive orphans are caught by cascading rollback announcements.)
  if (m.from != kEnvironment && born_of_rolled_back(m.born_of)) {
    api_.stats().inc(kDiscardedRecv);
    if (Oracle* orc = oracle()) orc->on_msg_discarded(m);
    return;
  }
  hold_for_delivery(m);
}

void DirectProcess::hold_for_delivery(const AppMsg& m) {
  // The conservative window: announcements ride the faster control plane,
  // so by the time the hold expires, a message from a just-rolled-back
  // incarnation is recognizably an orphan instead of a cascade seed.
  if (cfg_.ddt_delivery_hold_us <= 0) {
    deliver(m);
    return;
  }
  held_ids_.insert(m.id);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kBufferHold;
    e.t = api_.scheduler().now();
    e.at = m.born_of.entry();
    e.msg = m.id;
    e.peer = m.from;
    e.recv_side = true;
    rec->record(std::move(e));
  }
  uint64_t epoch = replay_.epoch();
  api_.scheduler().schedule_after(cfg_.ddt_delivery_hold_us, [this, m, epoch] {
    if (epoch != replay_.epoch() || !alive_) return;
    held_ids_.erase(m.id);
    if (recv_.delivered(m.id)) return;
    if (m.from != kEnvironment && born_of_rolled_back(m.born_of)) {
      api_.stats().inc(kDiscardedRecv);
      if (Oracle* orc = oracle()) orc->on_msg_discarded(m);
      return;
    }
    exec_.submit([this, m] {
      if (!alive_ || recv_.delivered(m.id)) return;
      if (m.from != kEnvironment && born_of_rolled_back(m.born_of)) {
        api_.stats().inc(kDiscardedRecv);
        if (Oracle* orc = oracle()) orc->on_msg_discarded(m);
        return;
      }
      deliver(m);
    });
  });
}

void DirectProcess::deliver(const AppMsg& m) {
  exec_.occupy(cfg_.deliver_cost_us);
  ++current_.sii;
  recv_.mark_delivered(m.id);
  IntervalId iv{pid_, current_.inc, current_.sii};
  storage_.log().append(LogRecord{m, iv});
  ++deliveries_;
  api_.stats().inc(kDelivered);
  if (Oracle* orc = oracle())
    orc->on_interval_start(iv, m.born_of, app_->state_hash());
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kDeliver;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.msg = m.id;
    e.peer = m.from;
    e.ref = m.born_of;
    rec->record(std::move(e));
  }
  app_->on_deliver(*this, m.from, m.payload);
  if (Oracle* orc = oracle())
    orc->on_interval_finalized(iv, app_->state_hash());
}

// ---------------------------------------------------------------------------
// Announcements and rollback cascades
// ---------------------------------------------------------------------------

void DirectProcess::handle_announcement(const Announcement& a) {
  if (!alive_) return;
  if (!replay_.note_remote_announcement(a)) return;
  iet_.insert(a.from, a.ended);
  log_.insert(a.from, a.ended);
  maybe_rollback();
  commit_tick();
}

void DirectProcess::maybe_rollback() {
  const MessageLog& log = storage_.log();
  for (size_t p = log.base(); p < log.size(); ++p) {
    const AppMsg& m = log.at(p).msg;
    if (m.from != kEnvironment && born_of_rolled_back(m.born_of)) {
      if (getenv("KOPT_DDT_DEBUG")) {
        fprintf(stderr,
                "P%d t=%lld rollback: record %s (msg id %d:%llu sent_at=%lld) "
                "born_of %s flagged\n",
                pid_, (long long)api_.scheduler().now(), log.at(p).started.str().c_str(),
                m.id.src, (unsigned long long)m.id.seq, (long long)m.sent_at,
                m.born_of.str().c_str());
      }
      rollback_to_before(p);
      return;
    }
  }
}

void DirectProcess::rollback_to_before(size_t first_orphan_pos) {
  ++rollbacks_;
  api_.stats().inc(kRollbacks);
  Incarnation ending_inc = current_.inc;

  size_t nvol = replay_.flush_volatile();
  replay_.charge_sync_write(storage_.costs().sync_write_us +
                            static_cast<SimTime>(nvol) *
                                storage_.costs().async_flush_per_msg_us);

  // Restore the latest checkpoint at or before the first orphaned record.
  auto idx = storage_.checkpoints().latest_where(
      [&](const Checkpoint& cp) { return cp.log_pos <= first_orphan_pos; });
  KOPT_CHECK_MSG(idx.has_value(), "no checkpoint before the orphan point");
  const Checkpoint& cp = storage_.checkpoints().at(*idx);
  SeqNo send_seq_before = send_seq_;
  SeqNo output_seq_before = output_seq_;
  app_->restore(cp.app_state);
  KOPT_CHECK(app_->state_hash() == cp.app_hash);
  current_ = cp.at;
  send_seq_ = cp.send_seq;
  output_seq_ = cp.output_seq;
  while (!segments_.empty() && segments_.back().first > current_.sii)
    segments_.pop_back();
  KOPT_CHECK(!segments_.empty() && segments_.back().second == current_.inc);

  replay_.replay(cp.log_pos, first_orphan_pos, nullptr,
                 [&](const LogRecord& r) {
                   current_ = r.started.entry();
                   recv_.mark_delivered(r.msg.id);
                   app_->on_deliver(*this, r.msg.from, r.msg.payload);
                   if (Oracle* orc = oracle())
                     orc->on_interval_replayed(r.started, app_->state_hash());
                 });
  storage_.checkpoints().discard_after(*idx);

  if (Oracle* orc = oracle()) orc->on_rollback(pid_, current_.sii);

  std::vector<LogRecord> dropped =
      storage_.log().truncate_from(first_orphan_pos);
  api_.stats().inc(kUndone, static_cast<int64_t>(dropped.size()));
  std::vector<AppMsg> redeliver;
  for (LogRecord& rec : dropped) {
    recv_.unmark_delivered(rec.msg.id);
    if (rec.msg.from != kEnvironment && born_of_rolled_back(rec.msg.born_of)) {
      api_.stats().inc(kDiscardedRecv);
      if (Oracle* orc = oracle()) orc->on_msg_discarded(rec.msg);
    } else {
      redeliver.push_back(std::move(rec.msg));
    }
  }

  // Pending outputs emitted by undone intervals are gone.
  std::erase_if(pending_, [&](const PendingCommit& pc) {
    return pc.rec.born_of.sii > current_.sii;
  });

  stable_up_to_ = current_.sii;
  log_.insert(pid_, Entry{ending_inc, current_.sii});
  if (Oracle* orc = oracle())
    orc->on_stable_watermark(pid_, Entry{ending_inc, current_.sii},
                             api_.scheduler().now());

  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kRollback;
    e.t = api_.scheduler().now();
    e.at = current_;  // the restored position
    e.ended = Entry{ending_inc, current_.sii};
    e.undone = static_cast<int64_t>(dropped.size());
    rec->record(std::move(e));
  }

  // Without transitive tracking every rollback MUST be announced — this is
  // the cascade that reaches transitive orphans (paper §5's tradeoff).
  announce(Entry{ending_inc, current_.sii}, /*from_failure=*/false);

  current_.inc = replay_.bump_incarnation_durably();
  ++current_.sii;
  segments_.emplace_back(current_.sii, current_.inc);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kIncarnationBump;
    e.t = api_.scheduler().now();
    e.at = current_;
    rec->record(std::move(e));
  }
  if (Oracle* orc = oracle())
    orc->on_recovery_interval(IntervalId{pid_, current_.inc, current_.sii},
                              app_->state_hash());

  // New-incarnation sends must not reuse ids the undone era handed out.
  send_seq_ = std::max(send_seq_, send_seq_before);
  output_seq_ = std::max(output_seq_, output_seq_before);

  // Redeliveries take the same conservative-hold path as fresh arrivals:
  // announcements already in flight get to veto them first. This is what
  // keeps the rollback cascade finite.
  for (AppMsg& m : redeliver) {
    recv_.unmark_delivered(m.id);
    hold_for_delivery(m);
  }
}

// ---------------------------------------------------------------------------
// Crash / restart
// ---------------------------------------------------------------------------

void DirectProcess::crash() {
  KOPT_CHECK(alive_);
  alive_ = false;
  std::vector<LogRecord> lost = replay_.on_crash();
  (void)lost;
  recv_.clear();
  held_ids_.clear();
  pending_.clear();
  iet_.clear();
  log_.clear();
  commit_stable_.clear();
  replay_.report_crash_to_oracle();
}

void DirectProcess::rebuild_segments_from_storage() {
  // The segment list changes only at rollbacks/restarts, and each of those
  // synchronously journals its own announcement — so the journal replays
  // the chain's incarnation structure exactly.
  segments_ = {{1, 0}};
  for (const Announcement& a : storage_.announcement_journal()) {
    if (a.from != pid_) continue;
    segments_.emplace_back(a.ended.sii + 1, a.ended.inc + 1);
  }
}

void DirectProcess::restart() {
  KOPT_CHECK(!alive_);
  alive_ = true;
  api_.stats().inc(kRestarts);
  // Durable backend: rebuild the stable image from the media (see
  // Process::restart for the rationale).
  if (storage_.recover()) {
    if (EventRecorder* rec = recorder()) {
      ProtocolEvent e;
      e.kind = EventKind::kStorageRecover;
      e.t = api_.scheduler().now();
      e.at = current_;
      e.lsn = static_cast<int64_t>(storage_.log().size());
      rec->record(std::move(e));
    }
  }
  replay_.restore_announcements([&](const Announcement& a) {
    iet_.insert(a.from, a.ended);
    log_.insert(a.from, a.ended);
  });
  rebuild_segments_from_storage();

  // Restore the latest checkpoint and replay every stable record.
  KOPT_CHECK(!storage_.checkpoints().empty());
  const Checkpoint& cp = storage_.checkpoints().latest();
  app_->restore(cp.app_state);
  KOPT_CHECK(app_->state_hash() == cp.app_hash);
  current_ = cp.at;
  send_seq_ = cp.send_seq;
  output_seq_ = cp.output_seq;
  for (const auto& [inc, sii] : cp.self_watermarks)
    log_.insert(pid_, Entry{inc, sii});
  replay_.replay(
      cp.log_pos, storage_.log().size(),
      [&](const LogRecord& r) {
        KOPT_CHECK_MSG(r.msg.from == kEnvironment ||
                           !born_of_rolled_back(r.msg.born_of),
                       "orphan record in stable log at restart");
        return false;
      },
      [&](const LogRecord& r) {
        current_ = r.started.entry();
        recv_.mark_delivered(r.msg.id);
        app_->on_deliver(*this, r.msg.from, r.msg.payload);
        if (Oracle* orc = oracle())
          orc->on_interval_replayed(r.started, app_->state_hash());
      });
  stable_up_to_ = current_.sii;

  Entry fa{storage_.durable_max_inc(), current_.sii};
  announce(fa, /*from_failure=*/true);
  log_.insert(pid_, fa);
  if (Oracle* orc = oracle())
    orc->on_stable_watermark(pid_, fa, api_.scheduler().now());

  current_.inc = replay_.bump_incarnation_durably();
  ++current_.sii;
  segments_.emplace_back(current_.sii, current_.inc);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kIncarnationBump;
    e.t = api_.scheduler().now();
    e.at = current_;
    rec->record(std::move(e));
  }
  if (Oracle* orc = oracle())
    orc->on_recovery_interval(IntervalId{pid_, current_.inc, current_.sii},
                              app_->state_hash());
  schedule_timers();
}

// ---------------------------------------------------------------------------
// Stability bookkeeping
// ---------------------------------------------------------------------------

std::optional<Incarnation> DirectProcess::incarnation_at(Sii x) const {
  if (x > current_.sii || segments_.empty() || x < segments_.front().first)
    return std::nullopt;
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), x,
      [](Sii v, const std::pair<Sii, Incarnation>& s) { return v < s.first; });
  --it;
  return it->second;
}

void DirectProcess::note_stable_up_to(Sii x) {
  if (x <= stable_up_to_) return;
  stable_up_to_ = x;
  std::optional<Incarnation> inc = incarnation_at(x);
  KOPT_CHECK(inc.has_value());
  log_.insert(pid_, Entry{*inc, x});
  if (Oracle* orc = oracle())
    orc->on_stable_watermark(pid_, Entry{*inc, x}, api_.scheduler().now());
}

void DirectProcess::do_checkpoint() {
  replay_.take_checkpoint([&](Checkpoint& cp) {
    cp.at = current_;
    cp.tdv = DepVector(n_);
    cp.log_pos = storage_.log().size();
    cp.send_seq = send_seq_;
    cp.output_seq = output_seq_;
    cp.app_state = app_->snapshot();
    cp.app_hash = app_->state_hash();
    cp.self_watermarks = log_.of(pid_).entries();
  });
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kCheckpoint;
    e.t = api_.scheduler().now();
    e.at = current_;
    rec->record(std::move(e));
  }
  note_stable_up_to(current_.sii);
  commit_tick();
}

void DirectProcess::start_async_flush() {
  replay_.start_async_flush([this](size_t upto, Entry, size_t durable_lsn) {
    KOPT_CHECK(durable_lsn >= upto);
    if (upto > storage_.log().size() || upto <= storage_.log().base()) return;
    // Truncation since issue voids the flush (same record-identity check as
    // the main engine, via the started entry's chain membership).
    Entry last = storage_.log().at(upto - 1).started.entry();
    std::optional<Incarnation> inc = incarnation_at(last.sii);
    if (!inc || *inc != last.inc) return;
    storage_.log().flush_to(upto);
    if (storage_.durable()) {
      if (EventRecorder* rec = recorder()) {
        ProtocolEvent e;
        e.kind = EventKind::kStorageFlush;
        e.t = api_.scheduler().now();
        e.at = current_;
        e.lsn = static_cast<int64_t>(durable_lsn);
        rec->record(std::move(e));
      }
    }
    note_stable_up_to(last.sii);
    commit_tick();
  });
}

void DirectProcess::force_flush() {
  if (!alive_) return;
  if (storage_.log().volatile_count() > 0) {
    replay_.flush_volatile();
    storage_.count_async_flush();
    note_stable_up_to(
        storage_.log().at(storage_.log().size() - 1).started.sii);
  }
}

void DirectProcess::broadcast_progress() {
  if (!alive_) return;
  LogProgressMsg lp;
  lp.from = pid_;
  for (const auto& [inc, sii] : log_.of(pid_).entries())
    lp.stable.push_back(Entry{inc, sii});
  if (lp.stable.empty()) return;
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kProgressNotify;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.lsn = static_cast<int64_t>(lp.stable.size());
    rec->record(std::move(e));
  }
  api_.broadcast_log_progress(lp);
}

void DirectProcess::handle_log_progress(const LogProgressMsg& lp) {
  if (!alive_) return;
  for (const Entry& e : lp.stable) log_.insert(lp.from, e);
}

void DirectProcess::announce(Entry ended, bool from_failure) {
  Announcement a{pid_, ended, from_failure};
  replay_.record_own_announcement(a);
  iet_.insert(pid_, ended);
  log_.insert(pid_, ended);
  api_.stats().inc(kAnnSent);
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kFailureAnnounce;
    e.t = api_.scheduler().now();
    e.at = current_;
    e.ended = ended;
    e.from_failure = from_failure;
    rec->record(std::move(e));
  }
  api_.broadcast_announcement(a);
}

// ---------------------------------------------------------------------------
// Output commit: transitive closure assembly (the §5 tradeoff)
// ---------------------------------------------------------------------------

DepReply DirectProcess::answer_query(const IntervalId& target) const {
  DepReply r;
  r.owner = pid_;
  r.target = target;
  if (born_of_rolled_back(target)) {
    r.status = DepReply::Status::kRolledBack;
    return r;
  }
  std::optional<Incarnation> inc = incarnation_at(target.sii);
  if (!inc) {
    r.status = target.inc < current_.inc ? DepReply::Status::kRolledBack
                                         : DepReply::Status::kUnknown;
    return r;
  }
  if (*inc != target.inc) {
    r.status = DepReply::Status::kRolledBack;
    return r;
  }
  if (target.sii > stable_up_to_) {
    r.status = DepReply::Status::kPending;
    return r;
  }
  r.status = DepReply::Status::kStable;
  // Cross-process direct dependencies of the chain up to the target,
  // collapsed Johnson-style to the per-process lexicographic maximum: on
  // one chain, a later interval subsumes every earlier one (its stability
  // implies theirs, and a rollback that undoes an earlier one undoes it
  // too), so the closure fixpoint only ever needs the maxima. The log scan
  // is the assembly cost the paper calls out (§5).
  std::map<ProcessId, Entry> maxima;
  const MessageLog& log = storage_.log();
  for (size_t p = log.base(); p < log.size(); ++p) {
    const LogRecord& rec = log.at(p);
    if (rec.started.sii > target.sii) break;
    const IntervalId& born = rec.msg.born_of;
    if (born.pid == kEnvironment || born.pid == pid_) continue;
    if (commit_stable_.of(born.pid).covers(born.entry())) continue;
    auto [it, inserted] = maxima.try_emplace(born.pid, born.entry());
    if (!inserted && it->second < born.entry()) it->second = born.entry();
  }
  for (const auto& [owner_pid, entry] : maxima)
    r.deps.push_back(IntervalId{owner_pid, entry.inc, entry.sii});
  return r;
}

void DirectProcess::handle_dep_query(const DepQuery& q) {
  if (!alive_) return;
  DepReply r = answer_query(q.target);
  r.query_id = q.query_id;
  api_.send_dep_reply(q.requester, r);
}

void DirectProcess::apply_reply(const DepReply& r) {
  std::vector<size_t> discard;
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingCommit& pc = pending_[i];
    auto it = pc.unresolved.find(r.target);
    if (it == pc.unresolved.end()) continue;
    switch (r.status) {
      case DepReply::Status::kRolledBack:
        discard.push_back(i);
        break;
      case DepReply::Status::kStable:
        pc.unresolved.erase(it);
        pc.resolved.insert(r.target);
        for (const IntervalId& dep : r.deps) {
          if (commit_stable_.of(dep.pid).covers(dep.entry())) continue;
          // One chain's later interval subsumes its earlier ones: keep only
          // the per-process maximum in the working sets.
          bool subsumed = false;
          for (const IntervalId& have : pc.resolved) {
            if (have.pid == dep.pid && !(have.entry() < dep.entry())) {
              subsumed = true;
              break;
            }
          }
          if (subsumed) continue;
          for (auto uit = pc.unresolved.begin();
               uit != pc.unresolved.end() && !subsumed;) {
            if (uit->pid == dep.pid) {
              if (!(uit->entry() < dep.entry())) {
                subsumed = true;
                break;
              }
              uit = pc.unresolved.erase(uit);  // dep supersedes it
            } else {
              ++uit;
            }
          }
          if (!subsumed) pc.unresolved.insert(dep);
        }
        break;
      case DepReply::Status::kPending:
      case DepReply::Status::kUnknown:
        break;  // ask again on the next tick
    }
  }
  for (auto it = discard.rbegin(); it != discard.rend(); ++it) {
    api_.stats().inc(kDiscardedOutput);
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(*it));
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->unresolved.empty()) {
      try_commit(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void DirectProcess::handle_dep_reply(const DepReply& r) {
  if (!alive_) return;
  apply_reply(r);
}

void DirectProcess::try_commit(PendingCommit& pc) {
  // The whole transitive closure is stable: nothing it depends on can ever
  // be lost, so the output can never be revoked.
  for (const IntervalId& iv : pc.resolved)
    commit_stable_.insert(iv.pid, iv.entry());
  if (EventRecorder* rec = recorder()) {
    ProtocolEvent e;
    e.kind = EventKind::kOutputCommit;
    e.t = api_.scheduler().now();
    e.at = pc.rec.born_of.entry();
    e.msg = pc.rec.id;
    e.ref = pc.rec.born_of;
    rec->record(std::move(e));
  }
  api_.commit_output(pc.rec);
}

void DirectProcess::commit_tick() {
  if (!alive_) return;
  // Gather the union of unresolved targets across all pending outputs:
  // each distinct interval is resolved at most once per tick (a reply
  // applies to every pending output that waits on it).
  std::set<IntervalId> to_ask;
  std::vector<size_t> discard;
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingCommit& pc = pending_[i];
    bool doomed = false;
    for (const IntervalId& target : pc.unresolved) {
      if (born_of_rolled_back(target)) {
        doomed = true;
        break;
      }
      to_ask.insert(target);
    }
    if (doomed) discard.push_back(i);
  }
  for (auto it = discard.rbegin(); it != discard.rend(); ++it) {
    api_.stats().inc(kDiscardedOutput);
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(*it));
  }
  std::vector<DepReply> local;
  for (const IntervalId& target : to_ask) {
    if (target.pid == pid_) {
      local.push_back(answer_query(target));
    } else {
      DepQuery q;
      q.requester = pid_;
      q.target = target;
      q.query_id = ++query_seq_;
      api_.send_dep_query(q);
    }
  }
  for (const DepReply& r : local) apply_reply(r);
}

// ---------------------------------------------------------------------------
// Timers, drain
// ---------------------------------------------------------------------------

void DirectProcess::schedule_timers() {
  replay_.arm_periodic(cfg_.flush_interval_us, [this] { start_async_flush(); });
  if (!cfg_.coordinated_checkpoints) {
    replay_.arm_periodic(cfg_.checkpoint_interval_us, [this] {
      exec_.submit([this] {
        if (alive_) do_checkpoint();
      });
    });
  }
  replay_.arm_periodic(cfg_.notify_interval_us, [this] {
    broadcast_progress();
    commit_tick();
  });
}

void DirectProcess::drain_tick() {
  force_flush();
  broadcast_progress();
  commit_tick();
}

bool DirectProcess::quiescent() const {
  return pending_.empty() && held_ids_.empty() &&
         storage_.log().volatile_count() == 0;
}

}  // namespace koptlog
