// DirectProcess — the related-work comparison engine of paper §5: direct
// dependency tracking in the style of Johnson & Zwaenepoel [6,7] and
// Sistla & Welch [10]. Messages piggyback ONLY the sender's current state
// interval id (constant size — "in general more scalable"), and the price
// is paid elsewhere, exactly as the paper says: "at the time of output
// commit and recovery, the system needs to assemble direct dependencies to
// obtain transitive dependencies".
//
// Concretely, relative to the K-optimistic engine (core/process.*):
//  * no dependency vector, no deliverability rule: every non-orphan
//    message is delivered immediately;
//  * orphan detection is only *direct*: a process rolls back when a logged
//    delivery's sending interval is announced rolled-back. Transitive
//    orphans are reached by CASCADING announcements — every rollback must
//    be announced (Theorem 1 cannot apply without transitive tracking);
//  * output commit assembles the transitive closure at commit time by
//    querying each dependency's owner (DepQuery/DepReply on the control
//    plane): an interval resolves once its owner reports it stable,
//    handing back the cross-process intervals it in turn depends on.
//    An output commits when the whole closure has resolved stable.
//
// The engine shares the checkpoint/replay/flush machinery (and the
// delivered-id bookkeeping) with the main protocol through the
// src/runtime/ components; what stays here is the §5 policy — the
// incarnation-segment chain, direct orphan checks, the conservative
// delivery hold, and the query-based commit closure.
//
// The engine runs under the same Cluster, workloads, failure injector and
// ground-truth oracle as the main protocol, so bench_e11 can put the §5
// tradeoff on one table.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/application.h"
#include "core/cluster.h"
#include "core/cluster_api.h"
#include "core/config.h"
#include "core/interval_table.h"
#include "core/output.h"
#include "core/recovery_process.h"
#include "runtime/receive_buffer.h"
#include "runtime/replay_engine.h"
#include "runtime/runtime_services.h"
#include "sim/executor.h"
#include "storage/stable_storage.h"

namespace koptlog {

class DirectProcess final : public RecoveryProcess, private AppContext {
 public:
  DirectProcess(ProcessId pid, int n, const ProtocolConfig& cfg,
                ClusterApi& api, std::unique_ptr<Application> app);

  void start_process() override;
  void handle_app_msg(const AppMsg& m) override;
  void handle_announcement(const Announcement& a) override;
  void handle_log_progress(const LogProgressMsg& lp) override;
  void handle_ack(const MsgId&) override {}  // reliable mode not supported
  void handle_dep_query(const DepQuery& q) override;
  void handle_dep_reply(const DepReply& r) override;
  void crash() override;
  void restart() override;
  void checkpoint_now() override {
    if (alive_) do_checkpoint();
  }
  void drain_tick() override;
  bool quiescent() const override;
  bool alive() const override { return alive_; }
  ProcessId pid() const override { return pid_; }
  Executor& executor() override { return exec_; }

  // ---- inspection ----
  Entry current() const override { return current_; }
  int64_t deliveries() const override { return deliveries_; }
  int64_t rollbacks() const override { return rollbacks_; }
  size_t pending_commits() const { return pending_.size(); }
  const StableStorage& storage() const override { return storage_; }
  /// Arrivals parked in the conservative hold window.
  size_t receive_buffer_size() const override { return held_ids_.size(); }
  /// Direct tracking releases every send immediately.
  size_t send_buffer_size() const override { return 0; }
  size_t output_buffer_size() const override { return pending_.size(); }

  /// Cluster engine factory for ClusterConfig-driven construction.
  static Cluster::EngineFactory factory();

  /// Synchronously flush the volatile log (drain support, tests).
  void force_flush();
  /// Broadcast this process's stability watermarks now.
  void broadcast_progress();

 private:
  struct PendingCommit {
    OutputRecord rec;
    /// Intervals whose stability (and onward deps) are not yet known.
    std::set<IntervalId> unresolved;
    std::set<IntervalId> resolved;
  };

  // AppContext
  void send(ProcessId to, const AppPayload& payload) override;
  void send_with_k(ProcessId to, const AppPayload& payload, int) override {
    send(to, payload);  // direct tracking has no K; everything is optimistic
  }
  void output(const AppPayload& payload) override;
  ProcessId self() const override { return pid_; }
  int system_size() const override { return n_; }

  void deliver(const AppMsg& m);
  /// Park an arrival for the conservative hold window, then orphan-check
  /// and deliver it.
  void hold_for_delivery(const AppMsg& m);
  bool born_of_rolled_back(const IntervalId& iv) const {
    return iet_.of(iv.pid).orphans(iv.entry());
  }

  /// Which incarnation was live at chain index x (from the segment list);
  /// nullopt if x is beyond the current chain.
  std::optional<Incarnation> incarnation_at(Sii x) const;
  /// Answer a dependency query about one of our intervals.
  DepReply answer_query(const IntervalId& target) const;
  void apply_reply(const DepReply& r);
  /// Issue queries (or resolve locally) for every unresolved target.
  void commit_tick();
  void try_commit(PendingCommit& pc);

  void rollback_to_before(size_t first_orphan_pos);
  void maybe_rollback();  // scan the log against the current IET
  void rebuild_segments_from_storage();
  void note_stable_up_to(Sii x);
  void do_checkpoint();
  void start_async_flush();
  void announce(Entry ended, bool from_failure);
  void schedule_timers();
  Oracle* oracle() { return api_.oracle(); }
  EventRecorder* recorder() { return api_.recorder(pid_); }

  const ProcessId pid_;
  const int n_;
  const ProtocolConfig cfg_;
  ClusterApi& api_;
  Executor exec_;
  std::unique_ptr<Application> app_;
  StableStorage storage_;
  RuntimeServices rt_;

  // ---- shared runtime components (mechanism) ----
  /// Used for its delivered-id bookkeeping only: direct tracking delivers
  /// immediately, so nothing is ever buffered awaiting deliverability.
  ReceiveBuffer recv_;
  ReplayEngine replay_;

  bool alive_ = false;
  Entry current_{0, 1};
  /// Current chain as (first index, incarnation) segments, oldest first.
  std::vector<std::pair<Sii, Incarnation>> segments_;
  Sii stable_up_to_ = 0;
  IntervalTable iet_;
  IntervalTable log_;  ///< remote stability knowledge (progress + announcements)
  /// Intervals whose full transitive closure is known stable (learned from
  /// successful commits); prunes future assemblies on both ends.
  IntervalTable commit_stable_;
  std::set<MsgId> held_ids_;  ///< in the conservative hold window
  std::vector<PendingCommit> pending_;
  SeqNo send_seq_ = 0;
  SeqNo output_seq_ = 0;
  SeqNo query_seq_ = 0;

  int64_t deliveries_ = 0;
  int64_t rollbacks_ = 0;
};

}  // namespace koptlog
