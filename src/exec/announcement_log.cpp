#include "exec/announcement_log.h"

#include "common/check.h"

namespace koptlog {

struct AnnouncementLog::Chunk {
  Announcement items[kChunkSize];
};

AnnouncementLog::AnnouncementLog() : chunks_(kMaxChunks) {
  for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
}

AnnouncementLog::~AnnouncementLog() {
  for (auto& c : chunks_) delete c.load(std::memory_order_relaxed);
}

size_t AnnouncementLog::append(const Announcement& a) {
  std::lock_guard<std::mutex> lk(append_mu_);
  size_t i = size_.load(std::memory_order_relaxed);  // writer-owned under mu
  size_t ci = i / kChunkSize;
  KOPT_CHECK_MSG(ci < kMaxChunks, "announcement log full (" << i << " entries)");
  Chunk* chunk = chunks_[ci].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    // Release so a reader that locates the chunk through this pointer sees
    // fully-constructed storage.
    chunks_[ci].store(chunk, std::memory_order_release);
  }
  chunk->items[i % kChunkSize] = a;
  // Publish: the element write above happens-before any reader's
  // acquire-load of the new size.
  size_.store(i + 1, std::memory_order_release);
  return i;
}

const Announcement& AnnouncementLog::at(size_t i) const {
  KOPT_CHECK(i < size_.load(std::memory_order_acquire));
  Chunk* chunk = chunks_[i / kChunkSize].load(std::memory_order_acquire);
  return chunk->items[i % kChunkSize];
}

}  // namespace koptlog
