// AnnouncementLog — the ThreadedCluster's reliable announcement history as
// an append-only chunked log with lock-free reads. Broadcasting shards
// append under a short mutex (pointer bump + one element write); readers —
// the per-shard restart catch-up replaying from a per-process cursor —
// walk `[cursor, size())` directly against the immutable chunks, with no
// lock and no O(history) copy.
//
// Publication protocol: an entry is written into its chunk slot BEFORE the
// size counter's release-store publishes it; readers acquire-load size()
// and only touch indices below it. Chunks are allocated once and never
// move, so a published entry's address is stable for the log's lifetime.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/protocol_msg.h"

namespace koptlog {

class AnnouncementLog {
 public:
  AnnouncementLog();
  ~AnnouncementLog();

  AnnouncementLog(const AnnouncementLog&) = delete;
  AnnouncementLog& operator=(const AnnouncementLog&) = delete;

  /// Thread-safe. Returns the appended entry's index; the entry is visible
  /// to size()/at() readers on every thread before append returns.
  size_t append(const Announcement& a);

  /// Entries published so far (acquire; safe from any thread).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Read entry `i`; requires i < a size() observed by this thread.
  const Announcement& at(size_t i) const;

 private:
  struct Chunk;
  static constexpr size_t kChunkSize = 256;
  static constexpr size_t kMaxChunks = 4096;  // 1M announcements

  std::mutex append_mu_;
  std::atomic<size_t> size_{0};
  std::vector<std::atomic<Chunk*>> chunks_;
};

}  // namespace koptlog
