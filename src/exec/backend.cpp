#include "exec/backend.h"

#include "core/cluster.h"
#include "exec/threaded_cluster.h"

namespace koptlog {

const std::vector<BackendInfo>& backend_table() {
  static const std::vector<BackendInfo> kTable = {
      {"sim",
       "deterministic discrete-event simulator (bit-for-bit reproducible, "
       "ground-truth oracle available)"},
      {"threaded",
       "real threads, one event loop per shard of processes (wall-clock "
       "time; validate with koptlog_audit on a recorded trace)"},
  };
  return kTable;
}

bool is_backend(const std::string& name) {
  for (const BackendInfo& b : backend_table()) {
    if (b.name == name) return true;
  }
  return false;
}

bool is_mailbox_policy(const std::string& name) {
  return name == "batched" || name == "mutex";
}

std::unique_ptr<ClusterHost> make_backend_host(
    const BackendOptions& opt, const ClusterConfig& cfg,
    const ClusterHost::AppFactory& app,
    const ClusterHost::EngineFactory& engine_factory) {
  if (opt.name == "sim") {
    return std::make_unique<Cluster>(cfg, app, engine_factory);
  }
  if (opt.name == "threaded") {
    ThreadedOptions topt;
    topt.shards = opt.shards;
    topt.time_scale = opt.time_scale;
    topt.mailbox = opt.mailbox == "mutex" ? MailboxPolicy::kMutex
                                          : MailboxPolicy::kBatched;
    topt.mailbox_capacity = opt.mailbox_capacity;
    topt.announce_fanout = opt.announce_fanout;
    topt.health = opt.health;
    return std::make_unique<ThreadedCluster>(cfg, topt, app, engine_factory);
  }
  return nullptr;
}

}  // namespace koptlog
