// Execution-backend table: the named ways to host a cluster of recovery
// processes. Mirrors core/engine_registry.h one level down — the engine
// picks the *protocol*, the backend picks *how the processes execute*:
//
//   sim       one deterministic discrete-event Simulator (core/cluster.h)
//   threaded  one real event-loop thread per shard (exec/threaded_cluster.h)
//
// Drivers written against ClusterHost run on either.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cluster_host.h"

namespace koptlog {

class HealthRegistry;

struct BackendInfo {
  std::string name;
  std::string description;
};

/// The known backends, in presentation order (--list-backends).
const std::vector<BackendInfo>& backend_table();

/// True iff `name` is a row of backend_table().
bool is_backend(const std::string& name);

struct BackendOptions {
  std::string name = "sim";
  /// Threaded backend only: worker event loops (clamped to [1, n]).
  int shards = 2;
  /// Threaded backend only: real µs per virtual µs.
  double time_scale = 1.0;
  /// Threaded backend only: cross-shard mailbox implementation,
  /// "batched" (two-level lock-free, default) or "mutex" (the pre-change
  /// baseline, kept for benchmarking).
  std::string mailbox = "batched";
  /// Threaded backend only: per-shard occupancy bound (0 = unbounded).
  /// Driver-side injections block while a shard is at capacity.
  size_t mailbox_capacity = 0;
  /// Threaded backend only: announcement dissemination — 0 = flat
  /// per-shard fan-out, D >= 1 = D-ary tree over the shards (the origin
  /// sends O(D) hop messages instead of O(shards)).
  int announce_fanout = 0;
  /// Optional runtime health telemetry (obs/health); must outlive the
  /// host. The sim backend ignores it — its single thread has nothing the
  /// sampler could race, and determinism goldens must not move.
  HealthRegistry* health = nullptr;
};

/// True iff `name` names a mailbox policy ("batched" or "mutex").
bool is_mailbox_policy(const std::string& name);

/// Build a host for `opt.name`, applying any engine preset in
/// `engine_factory`'s entry beforehand is the caller's business (see
/// make_cluster_with_engine). Returns nullptr for an unknown backend name.
/// On the threaded backend the oracle is force-disabled; pass
/// cfg.record_events=true and audit the merged trace instead.
std::unique_ptr<ClusterHost> make_backend_host(
    const BackendOptions& opt, const ClusterConfig& cfg,
    const ClusterHost::AppFactory& app,
    const ClusterHost::EngineFactory& engine_factory);

}  // namespace koptlog
