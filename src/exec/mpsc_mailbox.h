// MpscMailbox — the lock-free multi-producer/single-consumer inbox behind
// ThreadedScheduler's batched mailbox policy. Producers push onto an
// intrusive Treiber stack with one CAS; the single consumer splices the
// whole stack off with one exchange and processes it as a batch, so the
// cross-thread critical section is O(1) per batch instead of a mutex
// acquisition per item.
//
// Ordering: drain() hands items back in push order (the spliced LIFO chain
// is reversed once, consumer-side). Callers that need a global order across
// producers must stamp items themselves (ThreadedScheduler re-sorts into
// its deadline queue by (t, seq)).
//
// Wake discipline: push() returns true iff the mailbox was empty before
// the push. Exactly the producer that makes the mailbox non-empty owes the
// consumer a wakeup — every later producer is covered by that wake, because
// the consumer always drains to empty. This is what lets a flood of pushes
// coalesce into one futex wake instead of one per item.
//
// Node recycling: producers allocating nodes that the consumer frees is the
// classic cross-thread malloc pathology — every delete bounces the owning
// arena's lock between threads. Instead the consumer returns drained nodes
// to a per-mailbox free stack (CAS push), and producers refill a
// thread-local cache by detaching the whole stack with one exchange. The
// detach-everything pop cannot suffer ABA (no node is ever dereferenced
// before ownership transfers), so no tagged pointers or DWCAS are needed.
// T must be move-assignable (recycled nodes are refilled by assignment).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

namespace koptlog {

template <typename T>
class MpscMailbox {
 public:
  struct Node {
    Node* next;
    T value;
  };

  MpscMailbox() = default;
  ~MpscMailbox() {
    // Only safe once producers and consumer have quiesced (the scheduler
    // joins its worker and forbids late pushes before destruction).
    drain([](T&&) {});
    delete_chain(head_.exchange(nullptr, std::memory_order_acquire));
    delete_chain(free_top_.exchange(nullptr, std::memory_order_acquire));
  }

  MpscMailbox(const MpscMailbox&) = delete;
  MpscMailbox& operator=(const MpscMailbox&) = delete;

  /// Take a recycled (or fresh) node holding `value`, ready to link into a
  /// chain for splice(). The caller owns it until spliced or released.
  Node* make_node(T value) {
    Node* n = acquire_node();
    n->next = nullptr;
    n->value = std::move(value);
    return n;
  }

  /// Thread-safe for any number of producers. Returns true iff the mailbox
  /// was empty, i.e. this producer owes the consumer a wakeup.
  bool push(T value) {
    Node* n = make_node(std::move(value));
    Node* h = head_.load(std::memory_order_relaxed);
    do {
      n->next = h;
    } while (!head_.compare_exchange_weak(h, n, std::memory_order_release,
                                          std::memory_order_relaxed));
    return h == nullptr;
  }

  /// Splice a pre-linked chain of nodes in with a single CAS (the batch
  /// counterpart of push). `first..last` must be linked via Node::next with
  /// last->next ignored. Returns true iff the mailbox was empty.
  bool splice(Node* first, Node* last) {
    Node* h = head_.load(std::memory_order_relaxed);
    do {
      last->next = h;
    } while (!head_.compare_exchange_weak(h, first, std::memory_order_release,
                                          std::memory_order_relaxed));
    return h == nullptr;
  }

  /// Consumer only: detach everything pushed so far and return it as a
  /// chain in push order (nullptr when empty). Ownership of the nodes
  /// transfers to the caller, who hands them back via recycle() — this is
  /// the zero-copy path ThreadedScheduler uses: the worker keeps the nodes
  /// alive in its deadline queue and only the (t, seq) keys move through
  /// the heap.
  Node* drain_chain() {
    Node* chain = head_.exchange(nullptr, std::memory_order_acquire);
    // The stack is newest-first; reverse once to recover push order.
    Node* rev = nullptr;
    while (chain != nullptr) {
      Node* next = chain->next;
      chain->next = rev;
      rev = chain;
      chain = next;
    }
    return rev;
  }

  /// Return a `first..last` chain of drained nodes (linked via next,
  /// last->next ignored) to the free stack for producers to reuse. Safe
  /// from any thread.
  void recycle(Node* first, Node* last) {
    if (first == nullptr) return;
    Node* h = free_top_.load(std::memory_order_relaxed);
    do {
      last->next = h;
    } while (!free_top_.compare_exchange_weak(
        h, first, std::memory_order_release, std::memory_order_relaxed));
  }

  /// Consumer only: take everything pushed so far and apply `fn` to each
  /// item in push order, then recycle the nodes. Returns the number of
  /// items drained.
  template <typename Fn>
  size_t drain(Fn&& fn) {
    Node* first = drain_chain();
    if (first == nullptr) return 0;
    size_t count = 0;
    Node* last = nullptr;
    for (Node* n = first; n != nullptr; n = n->next) {
      fn(std::move(n->value));
      last = n;
      ++count;
    }
    recycle(first, last);
    return count;
  }

  /// Racy by nature; exact only when producers are quiet.
  bool empty(std::memory_order order = std::memory_order_seq_cst) const {
    return head_.load(order) == nullptr;
  }

 private:
  // Thread-local node cache, shared across mailboxes of the same T: a
  // producer may refill from one mailbox's free stack and spend the nodes
  // on another — nodes are homogeneous heap objects, the value slot is
  // always overwritten. The destructor frees whatever the thread still
  // holds when it exits.
  struct FreeCache {
    Node* top = nullptr;
    ~FreeCache() { delete_chain(top); }
  };
  static FreeCache& tls_cache() {
    static thread_local FreeCache cache;
    return cache;
  }

  static void delete_chain(Node* n) {
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  Node* acquire_node() {
    FreeCache& cache = tls_cache();
    if (cache.top == nullptr) {
      // Detach the whole free stack at once; taking everything (instead of
      // popping one) is what makes the lock-free pop ABA-safe.
      cache.top = free_top_.exchange(nullptr, std::memory_order_acquire);
    }
    if (cache.top != nullptr) {
      Node* n = cache.top;
      cache.top = n->next;
      return n;
    }
    return new Node{nullptr, T{}};
  }

  std::atomic<Node*> head_{nullptr};
  std::atomic<Node*> free_top_{nullptr};
};

}  // namespace koptlog
