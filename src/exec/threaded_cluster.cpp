#include "exec/threaded_cluster.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/process.h"
#include "obs/health/health.h"

namespace koptlog {

namespace {
ThreadedCluster::EngineFactory default_engine() {
  return [](ProcessId pid, const ClusterConfig& cfg, ClusterApi& api,
            std::unique_ptr<Application> app) -> std::unique_ptr<RecoveryProcess> {
    return std::make_unique<Process>(pid, cfg.n, cfg.protocol, api,
                                     std::move(app));
  };
}
}  // namespace

// ---------------------------------------------------------------------------
// ShardApi
// ---------------------------------------------------------------------------

ThreadedCluster::ShardApi::ShardApi(ThreadedCluster& host, ProcessId pid)
    : host_(host),
      pid_(pid),
      data_rng_(Rng(host.cfg_.seed)
                    .fork("data-net")
                    .fork("p" + std::to_string(pid))),
      control_rng_(Rng(host.cfg_.seed)
                       .fork("control-net")
                       .fork("p" + std::to_string(pid))) {
  if (host.cfg_.measure_tracking) {
    meter_ = std::make_unique<wire::TrackingMeter>(host.cfg_.n,
                                                   host.cfg_.tracking_channels);
  }
}

Scheduler& ThreadedCluster::ShardApi::scheduler() {
  return host_.shard_of(pid_);
}

const Tracer& ThreadedCluster::ShardApi::tracer() const {
  return host_.tracer_;
}

bool ThreadedCluster::ShardApi::draining() const {
  return host_.draining_.load(std::memory_order_acquire);
}

EventRecorder* ThreadedCluster::ShardApi::recorder(ProcessId pid) {
  return host_.recording_ ? &host_.recording_->recorder(pid) : nullptr;
}

SimTime ThreadedCluster::ShardApi::data_arrival(ProcessId to, size_t bytes) {
  SimTime t =
      host_.clock_.now() + host_.cfg_.data_latency.sample(data_rng_, bytes);
  if (host_.cfg_.fifo) {
    SimTime& last = last_data_arrival_[to];
    if (t <= last) t = last + 1;
    last = t;
  }
  return t;
}

void ThreadedCluster::ShardApi::route_app_msg(AppMsg msg) {
  KOPT_CHECK(msg.to >= 0 && msg.to < host_.cfg_.n);
  size_t bytes = msg.wire_bytes(host_.cfg_.protocol.null_stable_entries);
  if (meter_) {
    // Passive: what the delta encoding would have shipped; the latency
    // charge below still uses the protocol's own wire accounting.
    size_t delta_bytes = meter_->on_route(msg);
    int nnz = msg.tdv.non_null_count();
    stats_.inc("track.bytes_sent", static_cast<int64_t>(delta_bytes));
    stats_.inc("track.nnz", nnz);
    stats_.inc("track.msgs");
    if (host_.h_track_bytes_ != nullptr) host_.h_track_bytes_->inc(delta_bytes);
    if (host_.h_track_nnz_ != nullptr)
      host_.h_track_nnz_->inc(static_cast<uint64_t>(nnz));
  }
  host_.deliver_app_at(data_arrival(msg.to, bytes), std::move(msg));
}

void ThreadedCluster::ShardApi::broadcast_announcement(const Announcement& a) {
  // Append to the reliable history BEFORE any delivery is scheduled: a
  // process that restarts later replays the log suffix past its cursor, so
  // no delivery dropped on a down process can ever be lost (duplicates are
  // absorbed by the receiver's announcement journal).
  host_.announce_log_.append(a);
  ThreadedCluster& host = host_;
  if (host.h_fanout_ != nullptr) host.h_fanout_->inc();
  if (host.opt_.announce_fanout >= 1 && host.shards() > 1) {
    // Tree dissemination: deliver to this shard's own processes right here
    // (we are on the origin shard's worker thread — position 0 of the
    // tree), then forward to at most D child shards. Each child delivers
    // locally and forwards onward, so the origin's cost is O(D) instead of
    // O(S).
    int origin_shard = host.shard_of_pid(pid_);
    host.deliver_announcement_local(origin_shard, a);
    host.forward_announcement_tree(origin_shard, 0, a);
    return;
  }
  // Flat fan-out: one job per destination *shard* (a multicast hop: one
  // control-latency sample and one mailbox push each), not one per
  // process; the job applies the announcement to every local process on
  // its own thread.
  for (int s = 0; s < host.shards(); ++s) {
    auto [lo, hi] = host.shard_pids_[static_cast<size_t>(s)];
    if (lo >= hi || (hi - lo == 1 && lo == a.from)) continue;
    SimTime lat =
        host.cfg_.control_latency.sample(control_rng_, Announcement::kWireBytes);
    host.shards_[static_cast<size_t>(s)]->schedule_at(
        host.clock_.now() + lat, [&host, lo, hi, a] {
          for (ProcessId to = lo; to < hi; ++to) {
            if (to == a.from) continue;
            RecoveryProcess& p = *host.slot(to).engine;
            if (!p.alive()) continue;  // restart catch-up replays the log
            p.executor().submit([&p, a] { p.handle_announcement(a); });
          }
        });
  }
}

void ThreadedCluster::deliver_announcement_local(int shard,
                                                 const Announcement& a) {
  auto [lo, hi] = shard_pids_[static_cast<size_t>(shard)];
  for (ProcessId to = lo; to < hi; ++to) {
    if (to == a.from) continue;
    RecoveryProcess& p = *slot(to).engine;
    if (!p.alive()) continue;  // restart catch-up replays the log
    p.executor().submit([&p, a] { p.handle_announcement(a); });
  }
}

void ThreadedCluster::forward_announcement_tree(int origin_shard, int position,
                                                const Announcement& a) {
  const int S = shards();
  const int D = opt_.announce_fanout;
  const int me = (origin_shard + position) % S;
  Rng& rng = shard_forward_rngs_[static_cast<size_t>(me)];
  for (int c = position * D + 1; c <= position * D + D && c < S; ++c) {
    const int child = (origin_shard + c) % S;
    SimTime lat = cfg_.control_latency.sample(rng, Announcement::kWireBytes);
    tree_hops_.fetch_add(1, std::memory_order_relaxed);
    if (h_tree_hops_ != nullptr) h_tree_hops_->inc();
    shards_[static_cast<size_t>(child)]->schedule_at(
        clock_.now() + lat, [this, origin_shard, c, child, a] {
          deliver_announcement_local(child, a);
          forward_announcement_tree(origin_shard, c, a);
        });
  }
}

void ThreadedCluster::ShardApi::broadcast_log_progress(
    const LogProgressMsg& lp) {
  ThreadedCluster& host = host_;
  // Per-destination latencies as before, but submitted as one batch per
  // destination shard: one inbox splice instead of n-1 contended pushes.
  std::vector<Scheduler::TimedAction> batch;
  for (int s = 0; s < host.shards(); ++s) {
    auto [lo, hi] = host.shard_pids_[static_cast<size_t>(s)];
    batch.clear();
    batch.reserve(static_cast<size_t>(hi - lo));
    for (ProcessId to = lo; to < hi; ++to) {
      if (to == lp.from) continue;
      SimTime lat =
          host.cfg_.control_latency.sample(control_rng_, lp.wire_bytes());
      batch.push_back({host.clock_.now() + lat, [&host, to, lp] {
                         RecoveryProcess& p = *host.slot(to).engine;
                         // Periodic re-broadcasts make a dropped one harmless.
                         if (!p.alive()) return;
                         p.executor().submit([&p, lp] { p.handle_log_progress(lp); });
                       }});
    }
    if (!batch.empty()) {
      host.shards_[static_cast<size_t>(s)]->schedule_batch(std::move(batch));
      batch = {};
    }
  }
}

void ThreadedCluster::ShardApi::send_ack(ProcessId acker, ProcessId sender,
                                         MsgId id) {
  KOPT_CHECK(sender >= 0 && sender < host_.cfg_.n);
  (void)acker;  // this api IS the acker; its rng samples the channel
  constexpr size_t kAckBytes = 4 + 4 + 8;
  ThreadedCluster& host = host_;
  host.shard_of(sender).schedule_at(
      data_arrival(sender, kAckBytes), [&host, sender, id] {
        RecoveryProcess& p = *host.slot(sender).engine;
        if (!p.alive()) return;
        p.executor().submit([&p, id] { p.handle_ack(id); });
      });
}

void ThreadedCluster::ShardApi::send_dep_query(const DepQuery& q) {
  KOPT_CHECK(q.target.pid >= 0 && q.target.pid < host_.cfg_.n);
  stats_.inc("ddt.queries");
  SimTime lat =
      host_.cfg_.control_latency.sample(control_rng_, DepQuery::kWireBytes);
  ThreadedCluster& host = host_;
  host.shard_of(q.target.pid).schedule_at(host.clock_.now() + lat, [&host, q] {
    RecoveryProcess& p = *host.slot(q.target.pid).engine;
    if (!p.alive()) return;  // the requester re-asks
    p.executor().submit([&p, q] { p.handle_dep_query(q); });
  });
}

void ThreadedCluster::ShardApi::send_dep_reply(ProcessId to,
                                               const DepReply& r) {
  KOPT_CHECK(to >= 0 && to < host_.cfg_.n);
  stats_.inc("ddt.replies");
  SimTime lat = host_.cfg_.control_latency.sample(control_rng_, r.wire_bytes());
  ThreadedCluster& host = host_;
  host.shard_of(to).schedule_at(host.clock_.now() + lat, [&host, to, r] {
    RecoveryProcess& p = *host.slot(to).engine;
    if (!p.alive()) return;
    p.executor().submit([&p, r] { p.handle_dep_reply(r); });
  });
}

void ThreadedCluster::ShardApi::commit_output(const OutputRecord& rec) {
  SimTime now = host_.clock_.now();
  stats_.inc("outputs.committed_total");
  {
    std::lock_guard<std::mutex> lk(host_.outputs_mu_);
    // Exactly-once at the outside world: recovery replay re-emits outputs
    // with identical ids; the sink drops the duplicates.
    if (!host_.committed_ids_.insert(rec.id).second) {
      stats_.inc("outputs.duplicate_suppressed");
      return;
    }
    host_.outputs_.push_back(CommittedOutput{rec.id, rec.born_of.pid,
                                             rec.payload, rec.born_of, now});
  }
  host_.committed_count_.fetch_add(1, std::memory_order_relaxed);
  stats_.inc("outputs.committed");
  stats_.sample("output.commit_latency_us",
                static_cast<double>(now - rec.created_at));
}

// ---------------------------------------------------------------------------
// ThreadedCluster
// ---------------------------------------------------------------------------

ThreadedCluster::ThreadedCluster(ClusterConfig cfg, ThreadedOptions opt,
                                 const AppFactory& factory)
    : ThreadedCluster(cfg, opt, factory, default_engine()) {}

ThreadedCluster::ThreadedCluster(ClusterConfig cfg, ThreadedOptions opt,
                                 const AppFactory& factory,
                                 const EngineFactory& engine_factory)
    : cfg_(cfg), opt_(opt), clock_(opt.time_scale) {
  KOPT_CHECK(cfg_.n > 0);
  // The ground-truth oracle assumes a single thread of control; on this
  // backend correctness is established post hoc by auditing the merged
  // event trace instead.
  cfg_.enable_oracle = false;
  opt_.shards = std::clamp(opt_.shards, 1, cfg_.n);
  shards_.reserve(static_cast<size_t>(opt_.shards));
  for (int s = 0; s < opt_.shards; ++s) {
    shards_.push_back(std::make_unique<ThreadedScheduler>(
        clock_, "shard-" + std::to_string(s), opt_.mailbox,
        opt_.mailbox_capacity));
  }
  KOPT_CHECK_MSG(opt_.announce_fanout >= 0,
                 "announce_fanout must be >= 0 (0 = flat fan-out)");
  shard_forward_rngs_.reserve(static_cast<size_t>(opt_.shards));
  for (int s = 0; s < opt_.shards; ++s) {
    shard_forward_rngs_.push_back(Rng(cfg_.seed)
                                      .fork("announce-tree")
                                      .fork("s" + std::to_string(s)));
  }
  shard_pids_.assign(static_cast<size_t>(opt_.shards),
                     {cfg_.n, 0});  // empty until a pid lands in the shard
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    auto& [lo, hi] = shard_pids_[static_cast<size_t>(shard_of_pid(pid))];
    lo = std::min(lo, pid);
    hi = std::max(hi, static_cast<ProcessId>(pid + 1));
  }
  if (opt_.health != nullptr) {
    for (int s = 0; s < opt_.shards; ++s) {
      shards_[static_cast<size_t>(s)]->attach_health(
          opt_.health->domain("shard" + std::to_string(s)));
    }
    HealthDomain* dom = opt_.health->domain("cluster");
    h_fanout_ = dom->counter("announce.fanout_batches");
    h_tree_hops_ = dom->counter("announce.tree_hops");
    if (cfg_.measure_tracking) {
      h_track_bytes_ = dom->counter("track.bytes_sent");
      h_track_nnz_ = dom->counter("track.nnz");
    }
    // announce_log_.size() and the commit counter are lock-free reads.
    dom->probe_counter("announce.log_size", [this] {
      return static_cast<uint64_t>(announce_log_.size());
    });
    dom->probe_counter("outputs.committed", [this] {
      return committed_count_.load(std::memory_order_relaxed);
    });
  }
  if (cfg_.record_events)
    recording_ = std::make_unique<Recording>(cfg_.n, cfg_.recording);
  slots_.resize(static_cast<size_t>(cfg_.n));
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    Slot& s = slot(pid);
    s.api = std::make_unique<ShardApi>(*this, pid);
    s.engine = engine_factory(pid, cfg_, *s.api, factory(pid));
  }
}

ThreadedCluster::~ThreadedCluster() { shutdown(); }

int ThreadedCluster::shard_of_pid(ProcessId pid) const {
  return static_cast<int>(static_cast<int64_t>(pid) * opt_.shards / cfg_.n);
}

void ThreadedCluster::start() {
  KOPT_CHECK(!started_ && !stopped_);
  started_ = true;
  for (auto& s : shards_) s->start();
  // Run each start_process on its owning shard (timers must be armed from
  // the thread that will run them); block until every process is up.
  for_each_engine_on_shard([](RecoveryProcess& p) { p.start_process(); });
  if (cfg_.protocol.coordinated_checkpoints) schedule_checkpoint_round();
}

void ThreadedCluster::schedule_checkpoint_round() {
  // The round timer lives on shard 0 and spends process 0's control rng —
  // both confined to shard 0's worker.
  shards_[0]->schedule_after(cfg_.protocol.checkpoint_interval_us, [this] {
    if (draining_.load(std::memory_order_acquire)) return;
    ShardApi& api0 = *slot(0).api;
    api0.stats_.inc("checkpoint.rounds");
    // Marker fan-out batched per destination shard, like the broadcasts.
    std::vector<Scheduler::TimedAction> batch;
    for (int s = 0; s < shards(); ++s) {
      auto [lo, hi] = shard_pids_[static_cast<size_t>(s)];
      batch.clear();
      for (ProcessId to = lo; to < hi; ++to) {
        constexpr size_t kMarkerBytes = 8;
        SimTime lat =
            cfg_.control_latency.sample(api0.control_rng_, kMarkerBytes);
        batch.push_back({clock_.now() + lat, [this, to] {
                           RecoveryProcess& p = *slot(to).engine;
                           if (!p.alive()) return;  // checkpoints at restart
                           p.executor().submit([&p] { p.checkpoint_now(); });
                         }});
      }
      if (!batch.empty()) {
        shards_[static_cast<size_t>(s)]->schedule_batch(std::move(batch));
        batch = {};
      }
    }
    schedule_checkpoint_round();
  });
}

void ThreadedCluster::deliver_app_at(SimTime t, AppMsg msg) {
  shard_of(msg.to).schedule_at(t, [this, m = std::move(msg)]() mutable {
    RecoveryProcess& p = *slot(m.to).engine;
    if (!p.alive()) {
      // The paper leaves lost in-transit messages out of scope (§2 fn. 3):
      // messages addressed to a crashed process are dropped.
      slot(m.to).api->stats_.inc("msgs.dropped_receiver_down");
      return;
    }
    p.executor().submit([&p, m = std::move(m)] { p.handle_app_msg(m); });
  });
}

void ThreadedCluster::inject_at(SimTime t, ProcessId to,
                                const AppPayload& payload) {
  KOPT_CHECK(to >= 0 && to < cfg_.n);
  // Build the message on the destination's shard at send time, then route
  // it through that process's api (same latency model as the simulator's
  // environment path; the extra hop stays on one shard).
  shard_of(to).schedule_at(t, [this, to, payload] {
    AppMsg m;
    m.id = MsgId{kEnvironment,
                 env_seq_.fetch_add(1, std::memory_order_relaxed) + 1};
    m.from = kEnvironment;
    m.to = to;
    m.payload = payload;
    m.tdv = DepVector(cfg_.n);  // the outside world is always stable
    m.born_of = IntervalId{kEnvironment, 0, 0};
    m.sent_at = clock_.now();
    ShardApi& api = *slot(to).api;
    api.stats_.inc("env.injected");
    api.route_app_msg(std::move(m));
  });
}

void ThreadedCluster::fail_at(SimTime t, ProcessId pid) {
  KOPT_CHECK(pid >= 0 && pid < cfg_.n);
  shard_of(pid).schedule_at(t, [this, pid] {
    RecoveryProcess& p = *slot(pid).engine;
    if (!p.alive()) {
      slot(pid).api->stats_.inc("crash.skipped_already_down");
      return;
    }
    p.crash();
    shard_of(pid).schedule_at(
        clock_.now() + cfg_.protocol.restart_delay_us, [this, pid] {
          Slot& s2 = slot(pid);
          RecoveryProcess& p2 = *s2.engine;
          KOPT_CHECK(!p2.alive());
          p2.restart();
          // Reliable announcement delivery: catch the restarted process up
          // on the log suffix past its replay cursor (everything below the
          // cursor was durably journaled before a prior restart; the
          // journal makes re-deliveries no-ops). Entries appended after
          // this size() snapshot had their per-shard delivery scheduled
          // afterwards, so they reach the now-alive process through the
          // normal fan-out path. No O(history) copy, no lock.
          size_t end = announce_log_.size();
          size_t replayed = 0;
          for (size_t i = s2.announce_cursor; i < end; ++i) {
            const Announcement& a = announce_log_.at(i);
            if (a.from == pid) continue;
            p2.executor().submit([&p2, a] { p2.handle_announcement(a); });
            ++replayed;
          }
          s2.api->stats_.inc("announce.catchup_replayed",
                             static_cast<int64_t>(replayed));
          // Advance the cursor only once the replayed announcements are
          // actually journaled: this trailing action runs after every
          // handler above (the executor is FIFO on this shard), and a crash
          // in between wipes it together with the still-queued handlers, so
          // the cursor can never run ahead of the durable journal.
          Slot* sp = &s2;
          p2.executor().submit([sp, end] {
            sp->announce_cursor = std::max(sp->announce_cursor, end);
          });
        });
  });
}

void ThreadedCluster::run_for(SimTime dt) {
  KOPT_CHECK(started_ && !stopped_);
  clock_.sleep_until(clock_.now() + dt);
}

void ThreadedCluster::wait_quiet() {
  auto hard_deadline = std::chrono::steady_clock::now() +
                       std::chrono::seconds(120);
  for (;;) {
    // Pass 1: every shard idle (queue empty, nothing mid-execution)...
    uint64_t before = 0;
    bool all_idle = true;
    for (auto& s : shards_) {
      before += s->executed();
      all_idle = all_idle && s->idle();
    }
    if (all_idle) {
      // ...and pass 2: still idle with no event executed in between. Then
      // nothing is in flight anywhere — only tasks create tasks, and the
      // driver thread is here. idle()'s lock also gives the driver a
      // happens-before edge over everything those tasks wrote.
      uint64_t after = 0;
      bool still_idle = true;
      for (auto& s : shards_) {
        after += s->executed();
        still_idle = still_idle && s->idle();
      }
      if (still_idle && after == before) return;
    }
    KOPT_CHECK_MSG(std::chrono::steady_clock::now() < hard_deadline,
                   "threaded cluster failed to quiesce within 120s real time");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Run `fn(engine)` for every process ON ITS OWNING SHARD THREAD and block
// until all have run. Even when wait_quiet() reports the system idle, the
// workers are not paused — a periodic timer (log-progress flush,
// retransmit) can start touching an engine at any moment, so the driver
// thread must never read engine state directly while workers live. The
// barrier state sits in a shared_ptr so a late notify_one cannot outlive it.
void ThreadedCluster::for_each_engine_on_shard(
    const std::function<void(RecoveryProcess&)>& fn) {
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    int remaining = 0;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = cfg_.n;
  for (ProcessId pid = 0; pid < cfg_.n; ++pid) {
    RecoveryProcess* p = slot(pid).engine.get();
    shard_of(pid).schedule_at(clock_.now(), [p, barrier, &fn] {
      fn(*p);
      {
        std::lock_guard<std::mutex> lk(barrier->mu);
        --barrier->remaining;
      }
      barrier->cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lk(barrier->mu);
  barrier->cv.wait(lk, [&barrier] { return barrier->remaining == 0; });
}

void ThreadedCluster::drain() {
  KOPT_CHECK(started_ && !stopped_);
  draining_.store(true, std::memory_order_release);
  constexpr int kMaxRounds = 60;
  for (int round = 0; round < kMaxRounds; ++round) {
    wait_quiet();
    // Probe + nudge each process from its own shard; `dirty` aggregates
    // under the probe mutex.
    std::mutex dirty_mu;
    bool dirty = false;
    for_each_engine_on_shard([&dirty_mu, &dirty](RecoveryProcess& p) {
      bool busy = !p.alive() || !p.quiescent();
      if (p.alive()) {
        RecoveryProcess* pp = &p;
        p.executor().submit([pp] { pp->drain_tick(); });
      }
      if (busy) {
        std::lock_guard<std::mutex> lk(dirty_mu);
        dirty = true;
      }
    });
    wait_quiet();
    if (!dirty) {
      final_now_ = clock_.now();
      return;
    }
  }
  std::mutex diag_mu;
  std::map<ProcessId, std::string> diags;
  for_each_engine_on_shard([&diag_mu, &diags](RecoveryProcess& p) {
    std::ostringstream os;
    os << "P" << p.pid() << (p.alive() ? "" : " DOWN")
       << (p.quiescent() ? "" : " busy") << "; "
       << "  [at " << p.current().str()
       << " recv=" << p.receive_buffer_size()
       << " send=" << p.send_buffer_size()
       << " out=" << p.output_buffer_size()
       << " vol=" << p.storage().log().volatile_count() << "] ";
    std::lock_guard<std::mutex> lk(diag_mu);
    diags[p.pid()] = os.str();
  });
  std::ostringstream os;
  for (const auto& [pid, s] : diags) os << s;
  KOPT_CHECK_MSG(false, "threaded cluster failed to drain: " << os.str());
}

void ThreadedCluster::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  if (final_now_ == 0) final_now_ = clock_.now();
  // Quiesce durable-storage flusher threads first: once drained they stop
  // posting completions, so no storage I/O can call schedule_at on a shard
  // whose event loop has already stopped (which would abort). Only after
  // start(): the barrier inside for_each_engine_on_shard is released by
  // the shard workers, which otherwise never ran.
  if (started_) {
    for_each_engine_on_shard([](RecoveryProcess& p) {
      if (StorageBackend* b = p.storage().backend()) b->quiesce();
    });
  }
  for (auto& s : shards_) s->stop_and_join();
  for (auto& s : slots_) merged_stats_.merge(s.api->stats_);
  // Mailbox contention/batching counters: totals summed across shards,
  // peaks taken as the max (exact — the workers are joined). These land in
  // the same Stats bag as everything else, so --metrics-out's Prometheus
  // dump and the benches pick them up for free.
  auto relaxed = [](const std::atomic<uint64_t>& v) {
    return static_cast<int64_t>(v.load(std::memory_order_relaxed));
  };
  int64_t max_occupancy = 0;
  int64_t max_drain_batch = 0;
  for (const auto& s : shards_) {
    const MailboxCounters& c = s->mailbox_counters();
    merged_stats_.inc("mailbox.pushes", relaxed(c.pushes));
    merged_stats_.inc("mailbox.batch_items", relaxed(c.batch_items));
    merged_stats_.inc("mailbox.batch_splices", relaxed(c.batch_splices));
    merged_stats_.inc("mailbox.drains", relaxed(c.drains));
    merged_stats_.inc("mailbox.drained_events", relaxed(c.drained_events));
    merged_stats_.inc("mailbox.wakeups", relaxed(c.wakeups));
    merged_stats_.inc("mailbox.producer_stalls", relaxed(c.producer_stalls));
    merged_stats_.inc("mailbox.producer_stall_us",
                      relaxed(c.producer_stall_us));
    merged_stats_.inc("mailbox.soft_overflows", relaxed(c.soft_overflows));
    max_occupancy = std::max(max_occupancy, relaxed(c.max_occupancy));
    max_drain_batch = std::max(max_drain_batch, relaxed(c.max_drain_batch));
  }
  merged_stats_.inc("mailbox.max_occupancy", max_occupancy);
  merged_stats_.inc("mailbox.max_drain_batch", max_drain_batch);
  merged_stats_.inc(
      "announce.tree_hops",
      static_cast<int64_t>(tree_hops_.load(std::memory_order_relaxed)));
}

SimTime ThreadedCluster::now_us() const {
  return stopped_ ? final_now_ : clock_.now();
}

Stats& ThreadedCluster::stats() {
  KOPT_CHECK_MSG(stopped_,
                 "call shutdown() before reading threaded-backend stats");
  return merged_stats_;
}

const std::vector<CommittedOutput>& ThreadedCluster::outputs() const {
  return outputs_;
}

RecoveryProcess& ThreadedCluster::engine(ProcessId pid) {
  KOPT_CHECK_MSG(stopped_,
                 "call shutdown() before inspecting threaded-backend engines");
  return *slots_[static_cast<size_t>(pid)].engine;
}

}  // namespace koptlog
