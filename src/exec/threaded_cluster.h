// ThreadedCluster — hosts N recovery-layer processes on real threads: the
// processes are block-partitioned into shards, each shard runs one
// ThreadedScheduler event loop, and the host routes application and
// control messages across shards by scheduling delivery tasks into the
// destination shard's two-level mailbox (lock-free MPSC inbox spliced into
// a worker-local deadline queue; see exec/threaded_scheduler.h).
// Broadcasts (announcements, log progress, checkpoint markers) fan out one
// batch submission per destination *shard* rather than one mailbox push
// per destination process.
//
// Everything a process touches is shard-confined: its engine state, its
// Executor, its EventRecorder and its Stats bag live on exactly one worker
// thread, so engine code runs unmodified and unsynchronized. The only
// shared state is the host's (append-only announcement log and mutex-
// guarded output sink, atomic drain flag and environment sequence).
//
// There is no oracle and no determinism here: a run is validated post hoc
// by merging the per-process recorders (deterministic (t, pid, seq) merge)
// and re-verifying Theorems 1-4 with the trace audit (obs/audit.h) —
// exactly the check a production deployment would run.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "core/cluster_api.h"
#include "core/cluster_host.h"
#include "core/recovery_process.h"
#include "exec/announcement_log.h"
#include "exec/threaded_scheduler.h"
#include "obs/event_recorder.h"
#include "wire/delta_codec.h"

namespace koptlog {

class HealthRegistry;
class HealthCounter;

struct ThreadedOptions {
  /// Worker event loops; processes are block-partitioned across them
  /// (shard = pid * shards / n). Clamped to [1, n].
  int shards = 2;
  /// Real microseconds per virtual microsecond (see MonotonicClock): 1.0
  /// runs the protocol's timers at nominal speed, 0.05 runs 20x faster.
  double time_scale = 1.0;
  /// Cross-shard mailbox implementation: the batched lock-free spine
  /// (default) or the pre-change single-mutex baseline (benchmarks).
  MailboxPolicy mailbox = MailboxPolicy::kBatched;
  /// Per-shard occupancy bound (0 = unbounded; batched policy only).
  /// Non-worker producers — the driver injecting load — block while a
  /// shard is at capacity; shard workers are exempt and spill over.
  size_t mailbox_capacity = 0;
  /// Optional runtime health telemetry (obs/health): when set, each shard
  /// attaches a "shard<i>" domain (drain latency/batch histograms, mailbox
  /// probes) and the host a "cluster" domain (announcement fan-out, output
  /// commits). Must outlive the cluster; null = zero instrumentation cost
  /// beyond one pointer test per executed event.
  HealthRegistry* health = nullptr;
  /// Announcement dissemination shape. 0 (default) = the flat fan-out: the
  /// origin schedules one delivery job per destination shard, O(S)
  /// messages from one process. D >= 1 = a D-ary dissemination tree over
  /// the shards rooted at the origin's shard: each shard delivers locally
  /// and forwards the announcement to at most D child shards, so the
  /// origin sends O(D) messages and the announcement reaches every shard
  /// in ceil(log_D(S)) hops. Restart catch-up is unaffected: the
  /// announcement is appended to the reliable log before the first hop,
  /// and re-delivery is idempotent (receiver journal).
  int announce_fanout = 0;
};

class ThreadedCluster final : public ClusterHost {
 public:
  using AppFactory = ClusterHost::AppFactory;
  using EngineFactory = ClusterHost::EngineFactory;

  /// The oracle is force-disabled (it assumes a single thread); set
  /// cfg.record_events and audit the merged trace instead.
  ThreadedCluster(ClusterConfig cfg, ThreadedOptions opt,
                  const AppFactory& factory);
  ThreadedCluster(ClusterConfig cfg, ThreadedOptions opt,
                  const AppFactory& factory,
                  const EngineFactory& engine_factory);
  ~ThreadedCluster() override;

  /// Launch the shard workers and start every process; returns once every
  /// process has initialized (alive, initial checkpoint taken).
  void start() override;

  int size() const override { return cfg_.n; }
  const ClusterConfig& config() const override { return cfg_; }
  int shards() const { return static_cast<int>(shards_.size()); }
  int shard_of_pid(ProcessId pid) const;

  /// Direct access to a shard's event loop, for drivers that pump raw
  /// events into the communication spine (bench_e12's mailbox storm).
  /// The scheduler is thread-safe; submissions ride the same two-level
  /// mailbox as protocol traffic.
  ThreadedScheduler& shard_scheduler(int idx) {
    return *shards_[static_cast<size_t>(idx)];
  }

  void inject_at(SimTime t, ProcessId to, const AppPayload& payload) override;
  void fail_at(SimTime t, ProcessId pid) override;

  /// Sleep the driver thread for `dt` virtual microseconds while the shard
  /// workers run.
  void run_for(SimTime dt) override;

  /// Quiesce: stop periodic timers, then alternate drain_tick rounds with
  /// whole-system quiet detection until every process is alive, quiescent
  /// and every shard queue is empty.
  void drain() override;

  /// Stop and join every shard worker, then merge the per-process stats.
  /// Idempotent; required before stats()/engine() reads.
  void shutdown() override;

  SimTime now_us() const override;

  /// Merged across processes; only available after shutdown().
  Stats& stats() override;

  const std::vector<CommittedOutput>& outputs() const override;
  const Recording* recording() const override { return recording_.get(); }
  Recording* recording_mut() override { return recording_.get(); }

  /// Engine inspection is only race-free once the workers are joined.
  RecoveryProcess& engine(ProcessId pid);

  /// Total events executed across all shard workers (atomic counter reads;
  /// exact once shutdown() has joined the workers). The throughput bench's
  /// numerator.
  uint64_t events_executed() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s->executed();
    return total;
  }

 private:
  /// The per-process view of the cluster: scheduler() is the owning
  /// shard's event loop, stats() an unshared per-process bag, and the rng
  /// streams used to sample this process's outbound latencies are private
  /// to its shard thread.
  class ShardApi final : public ClusterApi {
   public:
    ShardApi(ThreadedCluster& host, ProcessId pid);

    Scheduler& scheduler() override;
    Stats& stats() override { return stats_; }
    const Tracer& tracer() const override;
    void route_app_msg(AppMsg msg) override;
    void broadcast_announcement(const Announcement& a) override;
    void broadcast_log_progress(const LogProgressMsg& lp) override;
    void send_ack(ProcessId acker, ProcessId sender, MsgId id) override;
    void send_dep_query(const DepQuery& q) override;
    void send_dep_reply(ProcessId to, const DepReply& r) override;
    void commit_output(const OutputRecord& rec) override;
    Oracle* oracle() override { return nullptr; }
    EventRecorder* recorder(ProcessId pid) override;
    bool draining() const override;

   private:
    friend class ThreadedCluster;

    /// Arrival time at `to` for a data-plane message sent now: latency
    /// sampled from this process's private stream, clamped monotone per
    /// destination when cfg.fifo (best-effort FIFO — the receiving shard
    /// executes its queue in deadline order).
    SimTime data_arrival(ProcessId to, size_t bytes);

    ThreadedCluster& host_;
    ProcessId pid_;
    Rng data_rng_;
    Rng control_rng_;
    Stats stats_;
    std::map<ProcessId, SimTime> last_data_arrival_;
    /// Per-sender passive delta-encoding meter (cfg.measure_tracking);
    /// shard-confined like everything else in this api.
    std::unique_ptr<wire::TrackingMeter> meter_;
  };

  struct Slot {
    std::unique_ptr<ShardApi> api;
    std::unique_ptr<RecoveryProcess> engine;
    /// Restart catch-up replay cursor into announce_log_: every entry
    /// below it has been durably processed (journaled) by this process.
    /// Touched only on the owning shard thread — the restart task reads
    /// it, and a trailing executor action advances it once the replayed
    /// announcements have actually been handled (a crash in between drops
    /// that action along with the queued handlers, so the cursor never
    /// runs ahead of the journal).
    size_t announce_cursor = 0;
  };

  ThreadedScheduler& shard_of(ProcessId pid) {
    return *shards_[static_cast<size_t>(shard_of_pid(pid))];
  }
  Slot& slot(ProcessId pid) { return slots_[static_cast<size_t>(pid)]; }

  /// Schedule delivery of `msg` into its destination's shard at virtual
  /// time `t`; drops it there if the receiver is down.
  void deliver_app_at(SimTime t, AppMsg msg);
  void schedule_checkpoint_round();

  /// Hand `a` to every live process hosted on `shard` except its origin.
  /// Must run on that shard's worker thread.
  void deliver_announcement_local(int shard, const Announcement& a);
  /// Tree dissemination (opt_.announce_fanout >= 1): forward `a` to the
  /// children of tree position `position`. Positions are relative to the
  /// origin shard (position p lives on shard (origin_shard + p) % S), so
  /// every origin gets a balanced tree without coordination. Runs on
  /// position's shard thread; samples hop latencies from that shard's
  /// private forwarding rng.
  void forward_announcement_tree(int origin_shard, int position,
                                 const Announcement& a);

  /// Run `fn(engine)` for every process on its owning shard thread; blocks
  /// until all have run. The only race-free way for the driver to inspect
  /// engine state while workers live.
  void for_each_engine_on_shard(const std::function<void(RecoveryProcess&)>& fn);

  /// Block until every shard is simultaneously idle and no event executed
  /// between two consecutive idle passes (then nothing can be in flight:
  /// only tasks create tasks, and the driver thread is here). Stale
  /// periodic timers parked in queues are waited out — draining stops them
  /// from re-arming, so queues strictly shrink to empty.
  void wait_quiet();

  ClusterConfig cfg_;
  ThreadedOptions opt_;
  MonotonicClock clock_;
  std::vector<std::unique_ptr<ThreadedScheduler>> shards_;
  /// shard index -> [first pid, last pid) of the block partition.
  std::vector<std::pair<ProcessId, ProcessId>> shard_pids_;
  std::vector<Slot> slots_;
  std::unique_ptr<Recording> recording_;
  Tracer tracer_;  ///< never given a sink: shard-shared, so reads only

  AnnouncementLog announce_log_;
  /// One forwarding rng per shard, touched only by that shard's worker
  /// (the origin hop runs on the origin process's shard thread).
  std::vector<Rng> shard_forward_rngs_;
  std::atomic<uint64_t> tree_hops_{0};

  std::mutex outputs_mu_;
  std::vector<CommittedOutput> outputs_;
  std::set<MsgId> committed_ids_;

  std::atomic<SeqNo> env_seq_{0};
  std::atomic<uint64_t> committed_count_{0};  ///< health probe feed
  /// Health cells; set once in the ctor when opt_.health != nullptr, read
  /// by shard threads thereafter.
  HealthCounter* h_fanout_ = nullptr;
  HealthCounter* h_tree_hops_ = nullptr;
  HealthCounter* h_track_bytes_ = nullptr;
  HealthCounter* h_track_nnz_ = nullptr;
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool stopped_ = false;
  SimTime final_now_ = 0;
  Stats merged_stats_;
};

}  // namespace koptlog
