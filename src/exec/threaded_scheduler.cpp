#include "exec/threaded_scheduler.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace koptlog {

MonotonicClock::MonotonicClock(double time_scale)
    : start_(std::chrono::steady_clock::now()), scale_(time_scale) {
  KOPT_CHECK(time_scale > 0.0);
}

SimTime MonotonicClock::now() const {
  auto elapsed = std::chrono::steady_clock::now() - start_;
  double real_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          elapsed)
          .count();
  return static_cast<SimTime>(real_us / scale_);
}

std::chrono::steady_clock::time_point MonotonicClock::real_deadline(
    SimTime t) const {
  auto real_ns = static_cast<int64_t>(
      std::llround(static_cast<double>(t) * scale_ * 1000.0));
  return start_ + std::chrono::nanoseconds(real_ns);
}

void MonotonicClock::sleep_until(SimTime t) const {
  std::this_thread::sleep_until(real_deadline(t));
}

ThreadedScheduler::ThreadedScheduler(const MonotonicClock& clock,
                                     std::string name)
    : clock_(clock), name_(std::move(name)) {}

ThreadedScheduler::~ThreadedScheduler() { stop_and_join(); }

SeqNo ThreadedScheduler::schedule_at(SimTime t, Action fn) {
  KOPT_CHECK(fn != nullptr);
  SeqNo seq;
  {
    std::lock_guard<std::mutex> lk(mu_);
    KOPT_CHECK_MSG(!stop_, "schedule_at on stopped scheduler " << name_);
    seq = next_seq_++;
    queue_.push(Event{t, seq, std::move(fn)});
  }
  cv_.notify_one();
  return seq;
}

void ThreadedScheduler::start() {
  KOPT_CHECK(!worker_.joinable());
  worker_ = std::thread([this] { loop(); });
}

void ThreadedScheduler::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool ThreadedScheduler::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.empty() && !executing_;
}

size_t ThreadedScheduler::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ThreadedScheduler::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (stop_) break;
    if (queue_.empty()) {
      cv_.wait(lk);
      continue;
    }
    auto deadline = clock_.real_deadline(queue_.top().t);
    if (deadline > std::chrono::steady_clock::now()) {
      // A new earlier event or stop request re-evaluates the wait.
      cv_.wait_until(lk, deadline);
      continue;
    }
    // const_cast: priority_queue::top() is const, but we pop right after;
    // moving the action out avoids copying its captures.
    Action fn = std::move(const_cast<Event&>(queue_.top()).fn);
    queue_.pop();
    executing_ = true;
    lk.unlock();
    fn();      // may schedule on this or any other shard
    fn = nullptr;  // destroy captures outside the lock
    lk.lock();
    executing_ = false;
    executed_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace koptlog
