#include "exec/threaded_scheduler.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/health/health.h"

namespace koptlog {

namespace {
// Set for the lifetime of a worker's loop(): identifies shard workers so
// backpressure never blocks them (see header).
thread_local bool tl_on_worker = false;

void update_max(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

MonotonicClock::MonotonicClock(double time_scale)
    : start_(std::chrono::steady_clock::now()), scale_(time_scale) {
  KOPT_CHECK(time_scale > 0.0);
}

SimTime MonotonicClock::now() const {
  auto elapsed = std::chrono::steady_clock::now() - start_;
  double real_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          elapsed)
          .count();
  return static_cast<SimTime>(real_us / scale_);
}

std::chrono::steady_clock::time_point MonotonicClock::real_deadline(
    SimTime t) const {
  auto real_ns = static_cast<int64_t>(
      std::llround(static_cast<double>(t) * scale_ * 1000.0));
  return start_ + std::chrono::nanoseconds(real_ns);
}

void MonotonicClock::sleep_until(SimTime t) const {
  std::this_thread::sleep_until(real_deadline(t));
}

ThreadedScheduler::ThreadedScheduler(const MonotonicClock& clock,
                                     std::string name, MailboxPolicy policy,
                                     size_t capacity)
    : clock_(clock),
      name_(std::move(name)),
      policy_(policy),
      capacity_(capacity) {}

ThreadedScheduler::~ThreadedScheduler() { stop_and_join(); }

bool ThreadedScheduler::on_worker_thread() { return tl_on_worker; }

void ThreadedScheduler::attach_health(HealthDomain* dom) {
  KOPT_CHECK(!worker_.joinable());  // attach before start()
  if (dom == nullptr) return;
  h_drain_latency_ = dom->histogram("sched.drain_latency_us");
  h_drain_batch_ = dom->histogram("sched.drain_batch");
  // Pull metrics: evaluated on the sampler thread; pending() and the
  // MailboxCounters atomics are thread-safe reads.
  dom->probe_gauge("sched.inbox_pending",
                   [this] { return static_cast<int64_t>(pending()); });
  dom->probe_counter("sched.pushes", [this] {
    return counters_.pushes.load(std::memory_order_relaxed);
  });
  dom->probe_counter("sched.wakeups", [this] {
    return counters_.wakeups.load(std::memory_order_relaxed);
  });
  dom->probe_counter("sched.soft_overflows", [this] {
    return counters_.soft_overflows.load(std::memory_order_relaxed);
  });
  dom->probe_counter("sched.producer_stall_us", [this] {
    return counters_.producer_stall_us.load(std::memory_order_relaxed);
  });
}

void ThreadedScheduler::acquire_slot() {
  // Only called when capacity_ != 0: unbounded schedulers skip slot
  // accounting entirely (two fewer contended RMWs per event).
  if (occupancy_.load(std::memory_order_relaxed) >=
      static_cast<int64_t>(capacity_)) {
    if (tl_on_worker) {
      // A worker blocked on a full peer inbox while its own inbox fills up
      // would deadlock the pair; workers spill over the bound instead.
      counters_.soft_overflows.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Stall BEFORE reserving the slot: a stalled producer holds nothing
      // the worker cannot retire, so the occupancy floor is the visible
      // queue and the wait always terminates. The bound is therefore soft
      // by up to one in-flight reservation per concurrent producer.
      counters_.producer_stalls.fetch_add(1, std::memory_order_relaxed);
      auto t0 = std::chrono::steady_clock::now();
      stalled_producers_.fetch_add(1, std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> lk(cap_mu_);
        cap_cv_.wait(lk, [this] {
          return stop_.load(std::memory_order_acquire) ||
                 occupancy_.load(std::memory_order_relaxed) <
                     static_cast<int64_t>(capacity_);
        });
      }
      stalled_producers_.fetch_sub(1, std::memory_order_relaxed);
      auto stalled_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      counters_.producer_stall_us.fetch_add(static_cast<uint64_t>(stalled_us),
                                            std::memory_order_relaxed);
    }
  }
  int64_t occ = occupancy_.fetch_add(1, std::memory_order_relaxed) + 1;
  update_max(counters_.max_occupancy, static_cast<uint64_t>(occ));
}

void ThreadedScheduler::release_slot() {
  int64_t occ = occupancy_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (occ < static_cast<int64_t>(capacity_) &&
      stalled_producers_.load(std::memory_order_seq_cst) > 0) {
    // The lock/unlock pairs with the stalled producer's wait so the notify
    // cannot slip between its predicate check and its sleep.
    { std::lock_guard<std::mutex> lk(cap_mu_); }
    cap_cv_.notify_all();
  }
}

void ThreadedScheduler::wake_worker(bool was_empty) {
  // Only the push that made the inbox non-empty owes a wake (the worker
  // drains to empty, so every later push is covered by that one), and only
  // when the worker is actually parked. The fence orders our push before
  // the flag load; park() has the mirror fence between its flag store and
  // its final inbox check, so at least one side sees the other.
  if (!was_empty) return;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!worker_parked_.load(std::memory_order_relaxed)) return;
  counters_.wakeups.fetch_add(1, std::memory_order_relaxed);
  {
    // Pairs with park(): the worker holds wake_mu_ from its final inbox
    // check until the wait, so acquiring it here means the worker is either
    // already waiting (notify lands) or will re-check the inbox first.
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_one();
}

SeqNo ThreadedScheduler::schedule_at(SimTime t, Action fn) {
  KOPT_CHECK(fn != nullptr);
  KOPT_CHECK_MSG(!stop_.load(std::memory_order_acquire),
                 "schedule_at on stopped scheduler " << name_);
  if (policy_ == MailboxPolicy::kMutex) {
    SeqNo seq;
    {
      std::lock_guard<std::mutex> lk(mu_);
      seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
      queue_.push(Event{t, seq, std::move(fn)});
    }
    counters_.pushes.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
    return seq;
  }
  if (capacity_ != 0) acquire_slot();
  SeqNo seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  counters_.pushes.fetch_add(1, std::memory_order_relaxed);
  bool was_empty = inbox_.push(Event{t, seq, std::move(fn)});
  wake_worker(was_empty);
  return seq;
}

void ThreadedScheduler::schedule_batch(std::vector<TimedAction> batch) {
  if (batch.empty()) return;
  KOPT_CHECK_MSG(!stop_.load(std::memory_order_acquire),
                 "schedule_batch on stopped scheduler " << name_);
  if (policy_ == MailboxPolicy::kMutex) {
    // Faithful pre-change baseline: one lock acquisition and one wake per
    // item. Batching is a property of the batched mailbox, not of the call
    // shape, so the benchmark comparison measures what the old spine paid.
    for (TimedAction& item : batch) schedule_at(item.t, std::move(item.fn));
    return;
  }
  counters_.batch_splices.fetch_add(1, std::memory_order_relaxed);
  counters_.batch_items.fetch_add(batch.size(), std::memory_order_relaxed);
  // Pre-link the whole batch outside any shared state, then splice it into
  // the inbox with a single CAS. Slot accounting still runs per item so
  // backpressure sees the true occupancy — but if this (bounded, non-
  // worker) producer is about to stall, the chain built so far must be
  // spliced in first: slots already reserved for invisible events can
  // never be retired by the worker, and holding them while blocking on
  // them would deadlock the producer against itself.
  using Node = MpscMailbox<Event>::Node;
  Node* first = nullptr;
  Node* last = nullptr;
  auto flush_chain = [&] {
    if (first == nullptr) return;
    bool was_empty = inbox_.splice(first, last);
    wake_worker(was_empty);
    first = last = nullptr;
  };
  bool may_stall = capacity_ != 0 && !tl_on_worker;
  for (TimedAction& item : batch) {
    KOPT_CHECK(item.fn != nullptr);
    if (may_stall && occupancy_.load(std::memory_order_relaxed) >=
                         static_cast<int64_t>(capacity_)) {
      flush_chain();
    }
    if (capacity_ != 0) acquire_slot();
    SeqNo seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    Node* n = inbox_.make_node(Event{item.t, seq, std::move(item.fn)});
    // The inbox is drained newest-first then reversed, so link the chain
    // newest-first too: later items in front.
    n->next = first;
    first = n;
    if (last == nullptr) last = n;
  }
  flush_chain();
}

void ThreadedScheduler::start() {
  KOPT_CHECK(!worker_.joinable());
  worker_ = std::thread([this] { loop(); });
}

void ThreadedScheduler::stop_and_join() {
  if (policy_ == MailboxPolicy::kMutex) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  } else {
    {
      std::lock_guard<std::mutex> lk(wake_mu_);
      stop_.store(true, std::memory_order_release);
    }
    wake_cv_.notify_all();
    { std::lock_guard<std::mutex> lk(cap_mu_); }
    cap_cv_.notify_all();  // unblock stalled producers
  }
  if (worker_.joinable()) worker_.join();
}

bool ThreadedScheduler::idle() const {
  if (policy_ == MailboxPolicy::kMutex) {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.empty() && !executing_.load(std::memory_order_acquire);
  }
  // A seq number is taken before an event becomes visible and executed_
  // only catches up after the event's action returns, so equality means
  // nothing is in flight (a submit racing this check can only make the
  // scheduler look busy, never falsely idle).
  return next_seq_.load(std::memory_order_acquire) ==
         executed_.load(std::memory_order_acquire);
}

size_t ThreadedScheduler::pending() const {
  if (policy_ == MailboxPolicy::kMutex) {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
  }
  uint64_t submitted = next_seq_.load(std::memory_order_acquire);
  uint64_t done = executed_.load(std::memory_order_acquire);
  return submitted > done ? static_cast<size_t>(submitted - done) : 0;
}

void ThreadedScheduler::loop() {
  tl_on_worker = true;
  if (policy_ == MailboxPolicy::kMutex) {
    loop_mutex();
  } else {
    loop_batched();
  }
  tl_on_worker = false;
}

void ThreadedScheduler::park(bool has_deadline,
                             std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(wake_mu_);
  // Publish "parked" BEFORE the final inbox check (store, fence, load):
  // a producer pushes, fences, then loads the flag, so at least one side
  // sees the other — either the producer observes parked and notifies
  // under wake_mu_, or this check observes its push and skips the wait.
  worker_parked_.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!inbox_.empty(std::memory_order_relaxed) ||
      stop_.load(std::memory_order_acquire)) {
    worker_parked_.store(false, std::memory_order_relaxed);
    return;
  }
  if (has_deadline) {
    wake_cv_.wait_until(lk, deadline);
  } else {
    wake_cv_.wait(lk);
  }
  worker_parked_.store(false, std::memory_order_relaxed);
}

void ThreadedScheduler::retire_node(MpscMailbox<Event>::Node* n) {
  n->next = retire_first_;
  retire_first_ = n;
  if (retire_last_ == nullptr) retire_last_ = n;
  ++retire_count_;
  // Flush in batches: one CAS returns 64 nodes to producers, instead of a
  // free-stack CAS per executed event.
  if (retire_count_ >= 64) flush_retired();
}

void ThreadedScheduler::flush_retired() {
  if (retire_first_ == nullptr) return;
  inbox_.recycle(retire_first_, retire_last_);
  retire_first_ = retire_last_ = nullptr;
  retire_count_ = 0;
}

void ThreadedScheduler::loop_batched() {
  using Node = MpscMailbox<Event>::Node;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) break;
    // Level 1 -> level 2: splice the whole inbox into the local deadline
    // queue. One atomic exchange regardless of how many producers pushed,
    // and only (t, seq, node) keys enter the heap — the actions stay put
    // in their mailbox nodes until they run.
    Node* chain = inbox_.drain_chain();
    if (chain != nullptr) {
      size_t n = 0;
      while (chain != nullptr) {
        Node* next = chain->next;
        local_queue_.push(QueuedRef{chain->value.t, chain->value.seq, chain});
        chain = next;
        ++n;
      }
      counters_.drains.fetch_add(1, std::memory_order_relaxed);
      counters_.drained_events.fetch_add(n, std::memory_order_relaxed);
      update_max(counters_.max_drain_batch, n);
      if (h_drain_batch_ != nullptr) h_drain_batch_->observe(n);
      // Peak occupancy is sampled at drain edges (exact per-push tracking
      // is reserved for bounded mode, where acquire_slot maintains it).
      uint64_t in_flight = next_seq_.load(std::memory_order_relaxed) -
                           executed_.load(std::memory_order_relaxed);
      update_max(counters_.max_occupancy, in_flight);
    }
    if (local_queue_.empty()) {
      flush_retired();  // hand cached nodes back before sleeping
      park(/*has_deadline=*/false, {});
      continue;
    }
    auto deadline = clock_.real_deadline(local_queue_.top().t);
    if (deadline > std::chrono::steady_clock::now()) {
      // A push may carry an earlier deadline; park() re-checks the inbox
      // and a producer's wake re-runs the drain above.
      flush_retired();
      park(/*has_deadline=*/true, deadline);
      continue;
    }
    Node* node = local_queue_.top().node;
    const SimTime due = local_queue_.top().t;
    local_queue_.pop();
    Action fn = std::move(node->value.fn);
    node->value.fn = nullptr;  // the node may sit recycled for a while
    retire_node(node);
    if (h_drain_latency_ != nullptr &&
        ++drain_latency_tick_ % kDrainLatencySampleEvery == 0) {
      // Virtual-clock age of the action at execution: how far behind its
      // deadline the shard is running. The worker only executes due events,
      // so the difference is non-negative up to clock granularity.
      SimTime now = clock_.now();
      h_drain_latency_->observe(now > due ? static_cast<uint64_t>(now - due)
                                          : 0);
    }
    fn();          // may schedule on this or any other shard
    fn = nullptr;  // destroy captures before the event is accounted done
    executed_.fetch_add(1, std::memory_order_release);
    if (capacity_ != 0) release_slot();
  }
  // Drop events parked locally; their nodes join the free stack and are
  // freed by ~MpscMailbox (as are any inbox leftovers).
  while (!local_queue_.empty()) {
    Node* node = local_queue_.top().node;
    local_queue_.pop();
    node->value.fn = nullptr;  // release captures of never-run actions now
    retire_node(node);
  }
  flush_retired();
}

void ThreadedScheduler::loop_mutex() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) break;
    if (queue_.empty()) {
      cv_.wait(lk);
      continue;
    }
    auto deadline = clock_.real_deadline(queue_.top().t);
    if (deadline > std::chrono::steady_clock::now()) {
      // A new earlier event or stop request re-evaluates the wait.
      cv_.wait_until(lk, deadline);
      continue;
    }
    const SimTime due = queue_.top().t;
    Action fn = std::move(const_cast<Event&>(queue_.top()).fn);
    queue_.pop();
    executing_.store(true, std::memory_order_release);
    lk.unlock();
    if (h_drain_latency_ != nullptr &&
        ++drain_latency_tick_ % kDrainLatencySampleEvery == 0) {
      SimTime now = clock_.now();
      h_drain_latency_->observe(now > due ? static_cast<uint64_t>(now - due)
                                          : 0);
    }
    fn();
    fn = nullptr;  // destroy captures outside the lock
    lk.lock();
    executing_.store(false, std::memory_order_release);
    executed_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace koptlog
