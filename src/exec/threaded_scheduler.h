// ThreadedScheduler — the real-thread implementation of the Scheduler
// seam: one event-loop worker thread per shard of processes, a mutex-
// guarded deadline queue that doubles as the shard's cross-shard mailbox
// (any thread may schedule_at), and condition-variable timers against a
// shared scaled monotonic clock.
//
// Unlike the deterministic Simulator, time here is wall-clock: an event's
// deadline is a point on the shared MonotonicClock, the worker sleeps
// until it is due, and two runs interleave differently. Correctness of a
// run is therefore established post hoc — per-process obs/ recorders are
// merged and fed to the trace audit — not by replaying it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/scheduler.h"

namespace koptlog {

/// Shared time source for every shard of one ThreadedCluster: virtual
/// microseconds elapsed since construction, scaled from the steady clock.
/// `time_scale` is real microseconds per virtual microsecond — 1.0 runs
/// protocol timers at nominal speed, 0.05 runs them 20x faster (latencies,
/// service costs and timer periods all compress consistently).
class MonotonicClock final : public Clock {
 public:
  explicit MonotonicClock(double time_scale = 1.0);

  SimTime now() const override;

  /// The real-time point at which virtual time `t` is reached.
  std::chrono::steady_clock::time_point real_deadline(SimTime t) const;

  /// Block the calling thread until virtual time `t`.
  void sleep_until(SimTime t) const;

  double time_scale() const { return scale_; }

 private:
  std::chrono::steady_clock::time_point start_;
  double scale_;
};

class ThreadedScheduler final : public Scheduler {
 public:
  /// `name` labels the worker thread in diagnostics.
  ThreadedScheduler(const MonotonicClock& clock, std::string name);
  ~ThreadedScheduler();

  ThreadedScheduler(const ThreadedScheduler&) = delete;
  ThreadedScheduler& operator=(const ThreadedScheduler&) = delete;

  SimTime now() const override { return clock_.now(); }

  /// Thread-safe: any shard (or the driver thread) may enqueue. Deadlines
  /// in the past run as soon as the worker is free, in (t, seq) order.
  SeqNo schedule_at(SimTime t, Action fn) override;

  /// Launch the worker thread. Events scheduled before start() are kept.
  void start();

  /// Ask the worker to exit (pending events are dropped) and join it.
  /// Idempotent; also called by the destructor.
  void stop_and_join();

  /// Queue empty and no event mid-execution. A false return says nothing
  /// stable — use executed() deltas to detect a quiet system.
  bool idle() const;

  /// Events executed so far (monotone; use deltas across idle() passes to
  /// prove no work happened in between).
  uint64_t executed() const { return executed_.load(std::memory_order_acquire); }

  size_t pending() const;

  const std::string& name() const { return name_; }

 private:
  struct Event {
    SimTime t;
    SeqNo seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void loop();

  const MonotonicClock& clock_;
  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SeqNo next_seq_ = 0;
  bool executing_ = false;
  bool stop_ = false;
  std::atomic<uint64_t> executed_{0};
  std::thread worker_;
};

}  // namespace koptlog
