// ThreadedScheduler — the real-thread implementation of the Scheduler
// seam: one event-loop worker thread per shard of processes, fed through a
// two-level mailbox. Producers (other shards, the driver) push into a
// lock-free MPSC inbox; the owning worker splices the whole inbox off in
// one batch and merges it into a thread-local deadline queue, so the
// cross-thread critical section is one CAS per batch instead of a mutex
// acquisition plus O(log n) heap push per event under a contended lock.
// A condition variable is used only for parking: exactly the producer
// whose push made the inbox non-empty wakes the worker, so floods of
// pushes coalesce into one futex wake.
//
// The pre-change single-mutex mailbox survives as MailboxPolicy::kMutex so
// bench_e12 can measure the batched spine against the baseline it replaced.
//
// Backpressure (batched policy only): an optional occupancy bound. When
// the number of scheduled-but-unexecuted events reaches the bound,
// *non-worker* producers (the driver injecting load) block until the
// worker catches up — inject floods throttle the producer instead of
// growing the queue without bound. Shard workers are exempt (a worker
// blocked on a full peer inbox while its own inbox fills would deadlock);
// their over-capacity pushes are counted as soft overflows instead.
//
// Unlike the deterministic Simulator, time here is wall-clock: an event's
// deadline is a point on the shared MonotonicClock, the worker sleeps
// until it is due, and two runs interleave differently. Correctness of a
// run is therefore established post hoc — per-process obs/ recorders are
// merged and fed to the trace audit — not by replaying it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "exec/mpsc_mailbox.h"
#include "sim/scheduler.h"

namespace koptlog {

class HealthDomain;
class HealthHistogram;

/// Shared time source for every shard of one ThreadedCluster: virtual
/// microseconds elapsed since construction, scaled from the steady clock.
/// `time_scale` is real microseconds per virtual microsecond — 1.0 runs
/// protocol timers at nominal speed, 0.05 runs them 20x faster (latencies,
/// service costs and timer periods all compress consistently).
class MonotonicClock final : public Clock {
 public:
  explicit MonotonicClock(double time_scale = 1.0);

  SimTime now() const override;

  /// The real-time point at which virtual time `t` is reached.
  std::chrono::steady_clock::time_point real_deadline(SimTime t) const;

  /// Block the calling thread until virtual time `t`.
  void sleep_until(SimTime t) const;

  double time_scale() const { return scale_; }

 private:
  std::chrono::steady_clock::time_point start_;
  double scale_;
};

/// How a shard's cross-thread mailbox is implemented.
enum class MailboxPolicy {
  /// Two-level: lock-free MPSC inbox spliced into a worker-local deadline
  /// queue in batches; coalesced wakeups; optional occupancy bound.
  kBatched,
  /// The pre-batching baseline: one mutex guarding the deadline queue,
  /// taken by every producer and by the worker around every pop. Kept so
  /// benchmarks can measure the batched spine against what it replaced.
  kMutex,
};

/// Contention / batching counters a scheduler accumulates over its life.
/// All fields are monotone and cheap (relaxed atomics on the hot path);
/// exact totals once the worker is joined. ThreadedCluster folds them into
/// its merged Stats at shutdown (mailbox.* counters).
struct MailboxCounters {
  std::atomic<uint64_t> pushes{0};           ///< schedule_at calls
  std::atomic<uint64_t> batch_items{0};      ///< events via schedule_batch
  std::atomic<uint64_t> batch_splices{0};    ///< schedule_batch calls
  std::atomic<uint64_t> drains{0};           ///< non-empty inbox splices
  std::atomic<uint64_t> drained_events{0};   ///< events moved by drains
  std::atomic<uint64_t> max_drain_batch{0};  ///< largest single drain
  std::atomic<uint64_t> max_occupancy{0};    ///< peak scheduled-unexecuted
  std::atomic<uint64_t> wakeups{0};          ///< producer->worker cv wakes
  std::atomic<uint64_t> producer_stalls{0};  ///< bounded pushes that blocked
  std::atomic<uint64_t> producer_stall_us{0};  ///< real us spent blocked
  std::atomic<uint64_t> soft_overflows{0};   ///< worker pushes over capacity
};

class ThreadedScheduler final : public Scheduler {
 public:
  /// `name` labels the worker thread in diagnostics. `capacity` bounds
  /// occupancy for non-worker producers when > 0 (batched policy only).
  ThreadedScheduler(const MonotonicClock& clock, std::string name,
                    MailboxPolicy policy = MailboxPolicy::kBatched,
                    size_t capacity = 0);
  ~ThreadedScheduler();

  ThreadedScheduler(const ThreadedScheduler&) = delete;
  ThreadedScheduler& operator=(const ThreadedScheduler&) = delete;

  SimTime now() const override { return clock_.now(); }

  /// Thread-safe: any shard (or the driver thread) may enqueue. Deadlines
  /// in the past run as soon as the worker is free, in (t, seq) order.
  /// Under the batched policy with a capacity, non-worker callers block
  /// while the shard is at capacity.
  SeqNo schedule_at(SimTime t, Action fn) override;

  /// Submit a whole batch with one producer-side critical section (one CAS
  /// splice under kBatched, one lock acquisition under kMutex) and at most
  /// one wakeup. Items keep FIFO seq order within the batch.
  void schedule_batch(std::vector<TimedAction> batch) override;

  /// Launch the worker thread. Events scheduled before start() are kept.
  void start();

  /// Ask the worker to exit (pending events are dropped) and join it.
  /// Idempotent; also called by the destructor. Unblocks stalled producers.
  void stop_and_join();

  /// Queue empty and no event mid-execution. A false return says nothing
  /// stable — use executed() deltas to detect a quiet system.
  bool idle() const;

  /// Events executed so far (monotone; use deltas across idle() passes to
  /// prove no work happened in between).
  uint64_t executed() const { return executed_.load(std::memory_order_acquire); }

  /// Scheduled-but-unexecuted events (inbox + deadline queue).
  size_t pending() const;

  const std::string& name() const { return name_; }
  MailboxPolicy policy() const { return policy_; }
  size_t capacity() const { return capacity_; }
  const MailboxCounters& mailbox_counters() const { return counters_; }

  /// Wire this shard's hot-path telemetry into a health domain: drain
  /// latency + batch-size histograms (updated by the worker) and pull
  /// probes over pending() and the mailbox counters. Must be called before
  /// start(); with no domain attached the worker pays one pointer test per
  /// executed event.
  void attach_health(HealthDomain* dom);

  /// True on any thread currently running a ThreadedScheduler event loop
  /// (used to exempt shard workers from backpressure blocking).
  static bool on_worker_thread();

 private:
  struct Event {
    SimTime t;
    SeqNo seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  // The worker's deadline queue holds 24-byte keys referencing the mailbox
  // nodes in place: heap sifts move PODs, never the events' std::function
  // payloads, and the node is recycled only after its action ran.
  struct QueuedRef {
    SimTime t;
    SeqNo seq;
    MpscMailbox<Event>::Node* node;
  };
  struct LaterRef {
    bool operator()(const QueuedRef& a, const QueuedRef& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void loop();
  void loop_batched();
  void loop_mutex();
  /// Worker only: queue a retired node for recycling; flushed to the
  /// mailbox free stack in batches so producers can reuse the memory.
  void retire_node(MpscMailbox<Event>::Node* n);
  void flush_retired();

  /// Batched producers: account one more scheduled event, block while over
  /// capacity (non-worker threads only), update the occupancy peak.
  void acquire_slot();
  /// Batched worker: one event retired; wake stalled producers if the
  /// occupancy dropped back under the bound.
  void release_slot();
  /// Wake the worker if it owes us a wake (`was_empty`) and is parked.
  void wake_worker(bool was_empty);
  /// Park until woken or `has_deadline`'s `deadline` passes. Re-checks the
  /// inbox under wake_mu_ so a push can never be missed.
  void park(bool has_deadline, std::chrono::steady_clock::time_point deadline);

  const MonotonicClock& clock_;
  std::string name_;
  const MailboxPolicy policy_;
  const size_t capacity_;

  // --- batched-policy state --------------------------------------------
  MpscMailbox<Event> inbox_;
  std::priority_queue<QueuedRef, std::vector<QueuedRef>, LaterRef>
      local_queue_;  // worker-only
  // Worker-only retire chain: nodes whose actions ran, awaiting a batched
  // recycle back to the mailbox free stack.
  MpscMailbox<Event>::Node* retire_first_ = nullptr;
  MpscMailbox<Event>::Node* retire_last_ = nullptr;
  size_t retire_count_ = 0;
  /// Backpressure accounting; maintained only when capacity_ != 0.
  /// (Unbounded schedulers track in-flight work as next_seq_ - executed_:
  /// a seq is taken before an event becomes visible and executed_ catches
  /// up after its action returns, so equality means nothing is in flight.)
  std::atomic<int64_t> occupancy_{0};
  std::atomic<bool> worker_parked_{false};
  std::atomic<int> stalled_producers_{0};
  std::mutex wake_mu_;               // parking only, never guards the queue
  std::condition_variable wake_cv_;  // worker parks here
  std::mutex cap_mu_;
  std::condition_variable cap_cv_;   // bounded producers stall here

  // --- mutex-policy state (the pre-change mailbox) ---------------------
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;

  std::atomic<SeqNo> next_seq_{0};
  std::atomic<bool> executing_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> executed_{0};
  MailboxCounters counters_;
  // Health cells (obs/health). Set once by attach_health() before start();
  // the worker reads them without synchronisation thereafter.
  HealthHistogram* h_drain_latency_ = nullptr;
  HealthHistogram* h_drain_batch_ = nullptr;
  // Drain latency is sampled 1-in-kDrainLatencySampleEvery executed events:
  // at storm rates the per-event budget is a few ns, and a clock read plus
  // histogram observe per event costs ~40% throughput. Worker-local.
  static constexpr uint32_t kDrainLatencySampleEvery = 64;
  uint32_t drain_latency_tick_ = 0;
  std::thread worker_;
};

}  // namespace koptlog
