#include "net/latency_model.h"

#include <algorithm>
#include <cmath>

namespace koptlog {

SimTime LatencyModel::sample(Rng& rng, size_t bytes) const {
  double t = static_cast<double>(base_us) +
             per_byte_us * static_cast<double>(bytes);
  switch (jitter) {
    case Jitter::kNone:
      break;
    case Jitter::kUniform:
      if (jitter_us > 0)
        t += static_cast<double>(rng.next_below(static_cast<uint64_t>(jitter_us)));
      break;
    case Jitter::kExponential:
      if (jitter_us > 0)
        t += rng.next_exponential(static_cast<double>(jitter_us));
      break;
  }
  return std::max<SimTime>(1, static_cast<SimTime>(std::llround(t)));
}

}  // namespace koptlog
