// Message latency model: fixed propagation delay, per-byte serialization
// cost, and random jitter. Jitter is what makes channels non-FIFO, which the
// K-optimistic protocol explicitly tolerates (unlike Strom–Yemini).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/types.h"

namespace koptlog {

enum class Jitter { kNone, kUniform, kExponential };

struct LatencyModel {
  SimTime base_us = 100;        ///< propagation delay
  double per_byte_us = 0.01;    ///< bandwidth term
  SimTime jitter_us = 200;      ///< jitter scale (range or mean)
  Jitter jitter = Jitter::kUniform;

  /// Sample the one-way latency for a message of `bytes` bytes.
  SimTime sample(Rng& rng, size_t bytes) const;
};

}  // namespace koptlog
