#include "net/network.h"

#include <algorithm>

namespace koptlog {

void Network::send(ProcessId from, ProcessId to, size_t bytes,
                   std::function<void()> deliver) {
  ++messages_sent_;
  bytes_sent_ += static_cast<int64_t>(bytes);
  SimTime arrival = sim_.now() + latency_.sample(rng_, bytes);
  if (fifo_) {
    SimTime& last = last_arrival_[{from, to}];
    arrival = std::max(arrival, last + 1);
    last = arrival;
  }
  sim_.schedule_at(arrival, std::move(deliver));
}

}  // namespace koptlog
