// Simulated point-to-point network. The network is payload-agnostic: it
// computes an arrival time for a message of a given size and schedules the
// caller-supplied delivery action. Ordering per channel is configurable:
//   - non-FIFO (default): each message samples an independent latency, so
//     later sends may arrive first — the regime the K-optimistic protocol
//     is designed for;
//   - FIFO: arrival times per (from, to) channel are forced monotone — the
//     regime Strom–Yemini assumes.
#pragma once

#include <functional>
#include <map>
#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "net/latency_model.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace koptlog {

class Network {
 public:
  Network(Scheduler& sched, Rng rng, LatencyModel latency, bool fifo)
      : sim_(sched), rng_(rng), latency_(latency), fifo_(fifo) {}

  /// Send `bytes` from `from` to `to`; `deliver` runs at the arrival time.
  /// Whether the destination is alive is the receiver's business — the
  /// cluster drops packets addressed to crashed processes at delivery time.
  void send(ProcessId from, ProcessId to, size_t bytes,
            std::function<void()> deliver);

  bool fifo() const { return fifo_; }
  const LatencyModel& latency_model() const { return latency_; }

  int64_t messages_sent() const { return messages_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }

 private:
  Scheduler& sim_;
  Rng rng_;
  LatencyModel latency_;
  bool fifo_;
  int64_t messages_sent_ = 0;
  int64_t bytes_sent_ = 0;
  /// Last scheduled arrival per channel, for FIFO mode.
  std::map<std::pair<ProcessId, ProcessId>, SimTime> last_arrival_;
};

}  // namespace koptlog
