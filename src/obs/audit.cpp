#include "obs/audit.h"

#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/entry.h"

namespace koptlog {

namespace {

constexpr size_t kMaxViolations = 100;

std::string interval_str(const IntervalId& iv) {
  std::ostringstream os;
  os << '(' << iv.inc << ',' << iv.sii << ")_" << iv.pid;
  return os.str();
}

}  // namespace

std::string AuditReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "audit OK";
  } else {
    os << "audit FAILED (" << violations.size() << " violations)";
  }
  os << ": events=" << events << " intervals=" << intervals
     << " dead=" << dead_intervals << " announcements=" << announcements
     << " rollbacks=" << rollbacks << " releases=" << releases_checked
     << " commits=" << commits_checked << " outputs=" << distinct_outputs;
  if (dropped_events > 0) os << " dropped=" << dropped_events;
  if (!ok()) os << "\n  first: " << violations.front();
  return os.str();
}

AuditReport audit_trace(const Trace& trace) {
  AuditReport rep;
  rep.events = trace.events.size();
  const int n = trace.n;

  auto violate = [&](SimTime t, ProcessId pid, const std::string& what) {
    if (rep.violations.size() < kMaxViolations) {
      std::ostringstream os;
      os << "t=" << t << " P" << pid << ": " << what;
      rep.violations.push_back(os.str());
    } else if (rep.violations.size() == kMaxViolations) {
      rep.violations.push_back("... further violations suppressed");
    }
  };

  // ---- pass 1: the dead-interval predicate from announcements alone ----
  // Interval (t,x) of P_j is rolled back iff some announcement (s,x') of
  // P_j has s >= t and x' < x — the same predicate the engines' incarnation
  // end tables implement (EntrySet::orphans), reconstructed here purely
  // from failure_announce events (Theorem 1: announcements suffice).
  std::vector<std::vector<Entry>> announced(static_cast<size_t>(n));
  for (const ProtocolEvent& e : trace.events) {
    if (e.kind != EventKind::kFailureAnnounce) continue;
    ++rep.announcements;
    announced[static_cast<size_t>(e.pid)].push_back(e.ended);
  }
  auto is_dead = [&](const IntervalId& iv) {
    if (iv.pid < 0 || iv.pid >= n) return false;  // environment
    for (const Entry& a : announced[static_cast<size_t>(iv.pid)]) {
      if (a.inc >= iv.inc && iv.sii > a.sii) return true;
    }
    return false;
  };

  // ---- pass 2: stream scan — chain reconstruction + local checks ----
  // Per-process chain position is advanced only by the four chain-defining
  // kinds (deliver, rollback, failure_announce, incarnation_bump); buffer
  // and commit events are attributed to older intervals and must not
  // regress it.
  std::unordered_map<IntervalId, std::vector<IntervalId>, IntervalIdHash>
      parents;
  std::vector<OptEntry> cur(static_cast<size_t>(n));
  std::vector<std::optional<EventKind>> last_chain(static_cast<size_t>(n));
  std::vector<SimTime> prev_t(static_cast<size_t>(n),
                              std::numeric_limits<SimTime>::min());
  struct CommitSite {
    SimTime t = 0;
    ProcessId pid = 0;
    MsgId id;
    IntervalId ref;
  };
  std::vector<CommitSite> commits;
  std::set<MsgId> distinct_outputs;

  for (const ProtocolEvent& e : trace.events) {
    size_t p = static_cast<size_t>(e.pid);
    if (e.t < prev_t[p]) {
      violate(e.t, e.pid, "per-process timestamps regressed (" +
                              std::string(event_kind_name(e.kind)) + ")");
    }
    prev_t[p] = e.t;
    switch (e.kind) {
      case EventKind::kDeliver: {
        IntervalId iv{e.pid, e.at.inc, e.at.sii};
        if (parents.count(iv) != 0) {
          violate(e.t, e.pid,
                  "state interval " + interval_str(iv) + " created twice");
          break;
        }
        std::vector<IntervalId> ps;
        if (cur[p]) ps.push_back(IntervalId{e.pid, cur[p]->inc, cur[p]->sii});
        if (e.ref.pid != kEnvironment) ps.push_back(e.ref);
        parents.emplace(iv, std::move(ps));
        cur[p] = e.at;
        last_chain[p] = e.kind;
        break;
      }
      case EventKind::kIncarnationBump: {
        // Theorem 1's bookkeeping: a new incarnation exists only because an
        // incarnation ended, and that end must have been announced (restart)
        // or at least locally recorded as a rollback. A trace whose
        // announcement was dropped fails here — peers could never have
        // orphan-detected against the lost intervals.
        if (last_chain[p] != EventKind::kRollback &&
            last_chain[p] != EventKind::kFailureAnnounce) {
          violate(e.t, e.pid,
                  "incarnation bump to (" + std::to_string(e.at.inc) + "," +
                      std::to_string(e.at.sii) +
                      ") without a preceding rollback/failure announcement");
        }
        IntervalId iv{e.pid, e.at.inc, e.at.sii};
        if (parents.count(iv) != 0) {
          violate(e.t, e.pid,
                  "state interval " + interval_str(iv) + " created twice");
        } else {
          std::vector<IntervalId> ps;
          if (cur[p]) ps.push_back(IntervalId{e.pid, cur[p]->inc, cur[p]->sii});
          parents.emplace(iv, std::move(ps));
        }
        cur[p] = e.at;
        last_chain[p] = e.kind;
        break;
      }
      case EventKind::kRollback:
        ++rep.rollbacks;
        cur[p] = e.at;  // restored position
        last_chain[p] = e.kind;
        break;
      case EventKind::kFailureAnnounce:
        cur[p] = e.at;
        last_chain[p] = e.kind;
        break;
      case EventKind::kBufferRelease: {
        ++rep.releases_checked;
        // Theorem 4: at most K processes' failures can revoke a released
        // message.
        if (e.k_limit >= 0 && e.k_reached > e.k_limit) {
          violate(e.t, e.pid,
                  "release of msg " + std::to_string(e.msg.src) + ":" +
                      std::to_string(e.msg.seq) + " with " +
                      std::to_string(e.k_reached) + " live entries > K=" +
                      std::to_string(e.k_limit));
        }
        if (e.k_reached != e.tdv.non_null_count()) {
          violate(e.t, e.pid,
                  "release k_reached=" + std::to_string(e.k_reached) +
                      " disagrees with recorded vector (" +
                      std::to_string(e.tdv.non_null_count()) +
                      " non-NULL entries)");
        }
        break;
      }
      case EventKind::kBufferHold:
        // A send-side hold is only justified while over the bound.
        if (!e.recv_side && e.k_limit >= 0 && e.k_reached >= 0 &&
            e.k_reached <= e.k_limit) {
          violate(e.t, e.pid,
                  "send buffer held msg " + std::to_string(e.msg.src) + ":" +
                      std::to_string(e.msg.seq) + " at " +
                      std::to_string(e.k_reached) +
                      " live entries, within K=" + std::to_string(e.k_limit));
        }
        break;
      case EventKind::kOutputCommit: {
        ++rep.commits_checked;
        distinct_outputs.insert(e.msg);
        commits.push_back(CommitSite{e.t, e.pid, e.msg, e.ref});
        // Direct check on the recorded vector: a committed output must not
        // name a dead interval even if that interval never shows up in the
        // reconstructed graph (e.g. a truncated trace missing its deliver).
        // Pass 3's closure subsumes this on complete traces.
        e.tdv.for_each([&](ProcessId j, const Entry& d) {
          if (is_dead(IntervalId{j, d.inc, d.sii})) {
            violate(e.t, e.pid,
                    "output " + std::to_string(e.msg.src) + ":" +
                        std::to_string(e.msg.seq) +
                        " committed with dead dependency " +
                        interval_str(IntervalId{j, d.inc, d.sii}));
          }
        });
        break;
      }
      case EventKind::kRecorderDrop:
        // Overflow gap marker: the verdict below only covers the surviving
        // stream, so surface the loss in the report's coverage counters.
        rep.dropped_events += static_cast<uint64_t>(e.undone);
        break;
      case EventKind::kSend:
      case EventKind::kCheckpoint:
      case EventKind::kRetransmit:
      // Storage and progress events carry no protocol obligations; the
      // restart-equivalence test checks their semantics against the model
      // run.
      case EventKind::kStorageFlush:
      case EventKind::kStorageRecover:
      case EventKind::kProgressNotify:
        break;
    }
  }
  rep.intervals = parents.size();
  rep.distinct_outputs = distinct_outputs.size();
  for (const auto& [iv, ps] : parents) {
    if (is_dead(iv)) ++rep.dead_intervals;
  }

  // ---- pass 3: orphan-freedom of committed output (Theorems 1–3) ----
  // Transitive closure over the reconstructed graph; memoized, iterative
  // (chains grow with the run length). An interval with no recorded
  // creation event (process start, pre-trace history) is a leaf — it is
  // still tested against the dead predicate itself.
  enum : int { kInProgress = 0, kClean = 1, kDead = 2 };
  std::unordered_map<IntervalId, int, IntervalIdHash> memo;
  std::unordered_map<IntervalId, IntervalId, IntervalIdHash> culprit;
  auto closure_dead =
      [&](const IntervalId& root) -> std::optional<IntervalId> {
    std::vector<IntervalId> stack{root};
    while (!stack.empty()) {
      IntervalId iv = stack.back();
      auto mit = memo.find(iv);
      if (mit != memo.end() && mit->second != kInProgress) {
        stack.pop_back();
        continue;
      }
      if (mit == memo.end()) {
        if (is_dead(iv)) {
          memo[iv] = kDead;
          culprit.emplace(iv, iv);
          stack.pop_back();
          continue;
        }
        memo[iv] = kInProgress;
        auto pit = parents.find(iv);
        if (pit != parents.end()) {
          for (const IntervalId& parent : pit->second) {
            auto s = memo.find(parent);
            if (s == memo.end()) stack.push_back(parent);
          }
        }
        continue;  // revisit once parents are resolved
      }
      int verdict = kClean;
      std::optional<IntervalId> c;
      auto pit = parents.find(iv);
      if (pit != parents.end()) {
        for (const IntervalId& parent : pit->second) {
          auto s = memo.find(parent);
          if (s != memo.end() && s->second == kDead) {
            verdict = kDead;
            c = culprit.at(parent);
            break;
          }
        }
      }
      memo[iv] = verdict;
      if (c) culprit.emplace(iv, *c);
      stack.pop_back();
    }
    if (memo.at(root) != kDead) return std::nullopt;
    return culprit.at(root);
  };

  for (const CommitSite& c : commits) {
    std::optional<IntervalId> dead_dep = closure_dead(c.ref);
    if (dead_dep) {
      violate(c.t, c.pid,
              "output " + std::to_string(c.id.src) + ":" +
                  std::to_string(c.id.seq) + " committed from " +
                  interval_str(c.ref) + " but depends on rolled-back interval " +
                  interval_str(*dead_dep));
    }
  }

  return rep;
}

}  // namespace koptlog
