// Trace audit — re-verifies the paper's guarantees from a recorded event
// stream alone, with no oracle and no access to protocol internals. This is
// the production-shaped check: any deployment that can capture the JSONL
// event log can run it post hoc.
//
// Invariants checked (see DESIGN.md §"Observability"):
//  * Orphan-freedom of committed output (Theorems 1–3): reconstruct the
//    interval dependency graph from deliver/rollback/announce/bump events,
//    mark every interval killed by a failure announcement as dead — interval
//    (t,x) of P_j is dead iff some announcement (s,x') of P_j has s >= t and
//    x' < x, the paper's orphan predicate — and require that no
//    output_commit's transitive closure contains a dead interval.
//  * K bound (Theorem 4): every buffer_release reports at most klim live
//    entries, and the count matches its recorded vector; a send-side
//    buffer_hold must be over the bound (otherwise the hold was spurious).
//  * Incarnation accounting (Theorem 1's bookkeeping): every
//    incarnation_bump must be immediately preceded — among that process's
//    chain-defining events — by a rollback or failure_announce. A trace
//    with a dropped announcement fails here: the bump has no announced
//    cause, so peers could never have detected its orphans.
//  * Stream sanity: per-process timestamps are non-decreasing and no state
//    interval is created twice.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_io.h"

namespace koptlog {

struct AuditReport {
  std::vector<std::string> violations;

  // Coverage counters, so callers can assert the audit actually had
  // something to chew on (an empty trace passes vacuously).
  size_t events = 0;
  size_t intervals = 0;
  size_t commits_checked = 0;
  size_t distinct_outputs = 0;
  size_t releases_checked = 0;
  size_t announcements = 0;
  size_t rollbacks = 0;
  size_t dead_intervals = 0;
  /// Events lost to ring-recorder overflow, summed from recorder_drop gap
  /// markers. Nonzero means the verdict covers only the surviving stream.
  uint64_t dropped_events = 0;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

AuditReport audit_trace(const Trace& trace);

}  // namespace koptlog
