#include "obs/collector.h"

#include <chrono>

#include "common/check.h"
#include "obs/ring_recorder.h"

namespace koptlog {

EventCollector::EventCollector(Recording& recording,
                               std::vector<EventSink*> sinks, Options opt)
    : recording_(recording), sinks_(std::move(sinks)), opt_(opt) {
  KOPT_CHECK(recording_.mode() == RecordMode::kRing);
  if (opt_.batch == 0) opt_.batch = 1;
}

EventCollector::~EventCollector() { stop(); }

void EventCollector::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void EventCollector::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

size_t EventCollector::sweep() {
  size_t drained = 0;
  for (ProcessId pid = 0; pid < recording_.n(); ++pid) {
    RingRecorder* ring = recording_.ring(pid);
    drained += ring->drain(opt_.batch, [&](const ProtocolEvent& e) {
      for (EventSink* sink : sinks_) sink->on_event(e);
    });
  }
  events_collected_.fetch_add(drained, std::memory_order_relaxed);
  return drained;
}

void EventCollector::run() {
  using Clock = std::chrono::steady_clock;
  auto next_tick = Clock::now() + std::chrono::microseconds(
                                      opt_.tick_interval_us > 0
                                          ? opt_.tick_interval_us
                                          : int64_t{0});
  while (!stop_.load(std::memory_order_acquire)) {
    size_t drained = sweep();
    if (Clock::now() >= next_tick) {
      for (EventSink* sink : sinks_) sink->tick();
      next_tick = Clock::now() + std::chrono::microseconds(
                                     opt_.tick_interval_us > 0
                                         ? opt_.tick_interval_us
                                         : int64_t{0});
    }
    if (drained == 0 && opt_.idle_sleep_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(opt_.idle_sleep_us));
    }
  }
  // Producers are quiesced by contract: a bounded number of residual events
  // remain, so this terminates.
  while (sweep() > 0) {
  }
  for (EventSink* sink : sinks_) sink->tick();
  for (EventSink* sink : sinks_) sink->close();
}

}  // namespace koptlog
