// EventCollector — the consumer half of the streaming observability
// pipeline. One dedicated thread round-robins over a Recording's per-process
// ring recorders (obs/ring_recorder.h), draining each in bounded batches and
// feeding every drained event to each attached EventSink in turn, so sinks
// observe per-process streams in emission order (the only ordering the live
// audit and the JSONL re-audit need). Between drains it issues periodic
// tick()s — snapshot exports, file flushes — on a wall-clock cadence, and
// sleeps briefly when every ring is empty.
//
// Lifecycle: construct over a live host's Recording (ring mode), start()
// before the run generates events, stop() after the producers have quiesced
// (host shutdown/drain): stop drains every ring to empty, delivers a final
// tick, close()s the sinks and joins the thread. The destructor stops too,
// so early exits don't leak the thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/event_recorder.h"
#include "obs/event_sink.h"

namespace koptlog {

struct CollectorOptions {
  /// Max events taken from one ring before moving to the next, bounding
  /// how long any single ring waits while another is hot.
  size_t batch = 256;
  /// Wall-clock microseconds between sink tick()s (metrics snapshot
  /// cadence). <= 0 ticks on every idle loop.
  int64_t tick_interval_us = 1000000;
  /// Wall-clock sleep when all rings are empty.
  int64_t idle_sleep_us = 200;
};

class EventCollector {
 public:
  using Options = CollectorOptions;

  /// `recording` must be ring-mode and outlive the collector; `sinks` are
  /// borrowed, called only from the collector thread.
  EventCollector(Recording& recording, std::vector<EventSink*> sinks,
                 Options opt = {});
  ~EventCollector();

  EventCollector(const EventCollector&) = delete;
  EventCollector& operator=(const EventCollector&) = delete;

  void start();
  /// Drain to empty, final-tick and close the sinks, join. Idempotent.
  /// Producers must be quiesced first or the tail of the stream is lost.
  void stop();

  uint64_t events_collected() const {
    return events_collected_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  /// One sweep over all rings; returns the number of events drained.
  size_t sweep();

  Recording& recording_;
  std::vector<EventSink*> sinks_;
  Options opt_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<uint64_t> events_collected_{0};
};

}  // namespace koptlog
