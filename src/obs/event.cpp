#include "obs/event.h"

namespace koptlog {

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSend:            return "send";
    case EventKind::kDeliver:         return "deliver";
    case EventKind::kBufferHold:      return "buffer_hold";
    case EventKind::kBufferRelease:   return "buffer_release";
    case EventKind::kCheckpoint:      return "checkpoint";
    case EventKind::kFailureAnnounce: return "failure_announce";
    case EventKind::kRollback:        return "rollback";
    case EventKind::kOutputCommit:    return "output_commit";
    case EventKind::kRetransmit:      return "retransmit";
    case EventKind::kIncarnationBump: return "incarnation_bump";
    case EventKind::kStorageFlush:    return "storage_flush";
    case EventKind::kStorageRecover:  return "storage_recover";
    case EventKind::kProgressNotify:  return "progress_notify";
    case EventKind::kRecorderDrop:    return "recorder_drop";
  }
  return "unknown";
}

std::optional<EventKind> event_kind_from_name(std::string_view name) {
  for (int32_t k = 0; k < kEventKindCount; ++k) {
    if (event_kind_name(static_cast<EventKind>(k)) == name)
      return static_cast<EventKind>(k);
  }
  return std::nullopt;
}

}  // namespace koptlog
