// Typed protocol events — the structured observability surface of the
// recovery layer. Every protocol-significant action (paper Figures 2/3)
// emits one ProtocolEvent: a flat record stamped with sim time, process id,
// the state interval it belongs to, and (where meaningful) the dependency
// vector at that moment, post-NULLing. The stream is the ground truth the
// exporters (trace_io/export) serialize and the orphan-audit tool
// (audit.h, tools/koptlog_audit) re-verifies Theorems 1–4 against —
// independently of the simulator-side Oracle, which a production
// deployment cannot run.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/entry.h"
#include "common/types.h"
#include "core/dep_vector.h"
#include "core/protocol_msg.h"

namespace koptlog {

enum class EventKind : int32_t {
  kSend,             ///< application send entered the send buffer
  kDeliver,          ///< delivery started a new state interval
  kBufferHold,       ///< message parked (send-side K bound / receive-side)
  kBufferRelease,    ///< send buffer released a message (≤ K live entries)
  kCheckpoint,       ///< checkpoint taken at the current interval
  kFailureAnnounce,  ///< rollback/failure announcement broadcast
  kRollback,         ///< state restored; an incarnation ended
  kOutputCommit,     ///< output's dependencies all stable; sent to the world
  kRetransmit,       ///< reliable channel re-sent an unacknowledged message
  kIncarnationBump,  ///< recovery interval started in a new incarnation
  kStorageFlush,     ///< durable backend: a group-commit fsync completed
  kStorageRecover,   ///< durable backend: restart rebuilt state from media
  kProgressNotify,   ///< logging-progress announcement broadcast (Theorem 2's
                     ///< nulling input; flush-to-notify lag is measured to it)
  kRecorderDrop,     ///< ring recorder overflowed: `undone` events were lost
                     ///< between the previous record and this marker
};

/// Number of EventKind values; kinds are dense in [0, kEventKindCount).
/// The schema round-trip test iterates every kind through the JSONL
/// writer/parser via this bound, so adding a kind without wiring its
/// serialization fails loudly.
inline constexpr int32_t kEventKindCount =
    static_cast<int32_t>(EventKind::kRecorderDrop) + 1;

/// Stable wire name ("send", "deliver", ...) used in the JSONL schema.
std::string_view event_kind_name(EventKind k);
std::optional<EventKind> event_kind_from_name(std::string_view name);

/// One flat record. Only the fields meaningful for `kind` are populated
/// (and serialized — see trace_io for the per-kind schema); the rest keep
/// their defaults so records stay trivially comparable and mergeable.
struct ProtocolEvent {
  EventKind kind = EventKind::kSend;
  SimTime t = 0;
  /// Stamped by EventRecorder::record.
  ProcessId pid = 0;
  /// Per-process emission counter, stamped by EventRecorder::record;
  /// (t, pid, seq) orders a merged stream deterministically.
  uint64_t seq = 0;
  /// The (incarnation, sii) the event is attributed to: the process's
  /// current interval, or the message's birth interval for buffer events.
  Entry at;
  /// Dependency vector snapshot (post-NULLing); empty when not meaningful.
  DepVector tdv;
  /// Message or output id for message-shaped events.
  MsgId msg;
  /// The other process: receiver for send-side events, sender for
  /// deliver/hold; kEnvironment when none.
  ProcessId peer = kEnvironment;
  /// Cross-process interval reference — the sender's birth interval for
  /// deliver, the emitting interval for output commits.
  IntervalId ref{kEnvironment, 0, 0};
  /// FailureAnnounce/Rollback: the (incarnation, sii) that ended.
  Entry ended;
  int k_limit = -1;    ///< Send/BufferHold/BufferRelease: the K bound
  int k_reached = -1;  ///< BufferHold/BufferRelease: live entries observed
  int64_t undone = 0;  ///< Rollback: log records undone
  /// StorageFlush: log bound the fsync covered; StorageRecover: recovered
  /// log size. Only emitted by durable backends.
  int64_t lsn = 0;
  bool from_failure = false;  ///< FailureAnnounce: restart vs rollback
  bool recv_side = false;     ///< BufferHold: receive buffer vs send buffer

  friend bool operator==(const ProtocolEvent&, const ProtocolEvent&) = default;
};

}  // namespace koptlog
