#include "obs/event_recorder.h"

#include <algorithm>

namespace koptlog {

std::vector<ProtocolEvent> Recording::merged() const {
  std::vector<ProtocolEvent> out;
  out.reserve(total_events());
  for (const EventRecorder& r : recorders_) {
    out.insert(out.end(), r.events().begin(), r.events().end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProtocolEvent& a, const ProtocolEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.seq < b.seq;
                   });
  return out;
}

}  // namespace koptlog
