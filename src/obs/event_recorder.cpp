#include "obs/event_recorder.h"

#include <algorithm>

#include "obs/ring_recorder.h"

namespace koptlog {

Recording::Recording(int n, const RecordingOptions& opt) : mode_(opt.mode) {
  KOPT_CHECK(n > 0);
  recorders_.reserve(static_cast<size_t>(n));
  for (ProcessId pid = 0; pid < n; ++pid) {
    if (mode_ == RecordMode::kRing) {
      recorders_.push_back(
          std::make_unique<RingRecorder>(pid, opt.ring_capacity));
    } else {
      recorders_.push_back(std::make_unique<VectorRecorder>(pid));
    }
  }
}

RingRecorder* Recording::ring(ProcessId pid) {
  if (mode_ != RecordMode::kRing) return nullptr;
  return static_cast<RingRecorder*>(&recorder(pid));
}

uint64_t Recording::total_dropped() const {
  if (mode_ != RecordMode::kRing) return 0;
  uint64_t total = 0;
  for (const auto& r : recorders_) {
    total += static_cast<const RingRecorder*>(r.get())->dropped();
  }
  return total;
}

std::vector<ProtocolEvent> Recording::merged() const {
  std::vector<ProtocolEvent> out;
  out.reserve(total_events());
  for (const auto& r : recorders_) r->snapshot(out);
  std::stable_sort(out.begin(), out.end(),
                   [](const ProtocolEvent& a, const ProtocolEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.seq < b.seq;
                   });
  return out;
}

}  // namespace koptlog
