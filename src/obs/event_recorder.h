// EventRecorder / Recording — per-process append-only event logs and their
// deterministic merge. One recorder per process, no sharing on the produce
// side: a threaded backend hands each shard its processes' recorders with no
// synchronization and the streams are merged (or streamed) after the fact.
// Recording is passive — it never schedules work, touches protocol state or
// blocks the producer — so enabling it cannot perturb a run (the determinism
// regression pins this for both storage modes).
//
// Two storage modes behind the same `record()` interface:
//  * VectorRecorder — unbounded std::vector, the post-hoc default: the whole
//    run is kept and merged()/serialized at the end.
//  * RingRecorder (obs/ring_recorder.h) — bounded SPSC ring drained live by
//    a collector thread (obs/collector.h) into streaming sinks; memory is
//    capacity x processes and overflow drops events (with drop accounting)
//    instead of growing.
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "obs/event.h"

namespace koptlog {

class RingRecorder;

class EventRecorder {
 public:
  explicit EventRecorder(ProcessId pid) : pid_(pid) {}
  virtual ~EventRecorder() = default;

  /// Append one event, stamping the owning process id and the per-process
  /// emission sequence number. The ring recorder overrides this to weave
  /// overflow markers into the stream with correctly ordered stamps.
  virtual void record(ProtocolEvent e) {
    stamp(e);
    push(std::move(e));
  }

  ProcessId pid() const { return pid_; }
  /// Events accepted so far (a ring recorder's dropped events are counted
  /// separately, see RingRecorder::dropped()).
  virtual size_t size() const = 0;
  /// Append the retained events, in emission order, to `out`. For a ring
  /// recorder this is only the residual window and is only safe once the
  /// producer and consumer threads are quiesced.
  virtual void snapshot(std::vector<ProtocolEvent>& out) const = 0;
  virtual void clear() { next_seq_ = 0; }

 protected:
  /// Storage-specific append; `e` is already stamped.
  virtual void push(ProtocolEvent e) = 0;

  /// Stamp a recorder-synthesized event (ring overflow markers) without
  /// going through record().
  void stamp(ProtocolEvent& e) {
    e.pid = pid_;
    e.seq = next_seq_++;
  }

 private:
  ProcessId pid_;
  uint64_t next_seq_ = 0;
};

/// The unbounded in-memory recorder: keeps every event for post-hoc merge,
/// serialization and audit.
class VectorRecorder final : public EventRecorder {
 public:
  explicit VectorRecorder(ProcessId pid) : EventRecorder(pid) {}

  const std::vector<ProtocolEvent>& events() const { return events_; }
  size_t size() const override { return events_.size(); }
  void snapshot(std::vector<ProtocolEvent>& out) const override {
    out.insert(out.end(), events_.begin(), events_.end());
  }
  void clear() override {
    EventRecorder::clear();
    events_.clear();
  }

 protected:
  void push(ProtocolEvent e) override { events_.push_back(std::move(e)); }

 private:
  std::vector<ProtocolEvent> events_;
};

enum class RecordMode {
  kVector,  ///< unbounded, post-hoc (the default)
  kRing,    ///< bounded SPSC rings, drained live by an EventCollector
};

struct RecordingOptions {
  RecordMode mode = RecordMode::kVector;
  /// Per-process ring capacity (events), ring mode only. Rounded up to a
  /// power of two.
  size_t ring_capacity = 4096;
};

/// One recorder per process, mergeable into a single causally-ordered
/// stream: merged() sorts by (t, pid, seq), which is a deterministic total
/// order (per-process streams are already time- and seq-ordered).
class Recording {
 public:
  explicit Recording(int n) : Recording(n, RecordingOptions{}) {}
  Recording(int n, const RecordingOptions& opt);

  int n() const { return static_cast<int>(recorders_.size()); }
  RecordMode mode() const { return mode_; }

  EventRecorder& recorder(ProcessId pid) {
    KOPT_CHECK(pid >= 0 && pid < n());
    return *recorders_[static_cast<size_t>(pid)];
  }
  const EventRecorder& recorder(ProcessId pid) const {
    KOPT_CHECK(pid >= 0 && pid < n());
    return *recorders_[static_cast<size_t>(pid)];
  }
  /// Null unless mode() == kRing.
  RingRecorder* ring(ProcessId pid);

  size_t total_events() const {
    size_t total = 0;
    for (const auto& r : recorders_) total += r->size();
    return total;
  }

  /// Sum of overflow-dropped events across all ring recorders (0 in vector
  /// mode).
  uint64_t total_dropped() const;

  std::vector<ProtocolEvent> merged() const;

  void clear() {
    for (auto& r : recorders_) r->clear();
  }

 private:
  RecordMode mode_;
  std::vector<std::unique_ptr<EventRecorder>> recorders_;
};

}  // namespace koptlog
