// EventRecorder / Recording — per-process append-only event logs and their
// deterministic merge. One recorder per process, no sharing: a threaded
// backend can hand each shard its own recorder with no synchronization and
// merge after the fact, exactly like the deterministic simulator does here.
// Recording is passive — it never schedules work or touches protocol state —
// so enabling it cannot perturb a run (the determinism regression pins this).
#pragma once

#include <vector>

#include "common/check.h"
#include "obs/event.h"

namespace koptlog {

class EventRecorder {
 public:
  explicit EventRecorder(ProcessId pid) : pid_(pid) {}

  /// Append one event, stamping the owning process id and the per-process
  /// emission sequence number.
  void record(ProtocolEvent e) {
    e.pid = pid_;
    e.seq = next_seq_++;
    events_.push_back(std::move(e));
  }

  ProcessId pid() const { return pid_; }
  const std::vector<ProtocolEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  void clear() {
    events_.clear();
    next_seq_ = 0;
  }

 private:
  ProcessId pid_;
  uint64_t next_seq_ = 0;
  std::vector<ProtocolEvent> events_;
};

/// One recorder per process, mergeable into a single causally-ordered
/// stream: merged() sorts by (t, pid, seq), which is a deterministic total
/// order (per-process streams are already time- and seq-ordered).
class Recording {
 public:
  explicit Recording(int n) {
    KOPT_CHECK(n > 0);
    recorders_.reserve(static_cast<size_t>(n));
    for (ProcessId pid = 0; pid < n; ++pid) recorders_.emplace_back(pid);
  }

  int n() const { return static_cast<int>(recorders_.size()); }

  EventRecorder& recorder(ProcessId pid) {
    KOPT_CHECK(pid >= 0 && pid < n());
    return recorders_[static_cast<size_t>(pid)];
  }
  const EventRecorder& recorder(ProcessId pid) const {
    KOPT_CHECK(pid >= 0 && pid < n());
    return recorders_[static_cast<size_t>(pid)];
  }

  size_t total_events() const {
    size_t total = 0;
    for (const EventRecorder& r : recorders_) total += r.size();
    return total;
  }

  std::vector<ProtocolEvent> merged() const;

  void clear() {
    for (EventRecorder& r : recorders_) r.clear();
  }

 private:
  std::vector<EventRecorder> recorders_;
};

}  // namespace koptlog
