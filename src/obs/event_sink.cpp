#include "obs/event_sink.h"

#include <cstdio>
#include <sstream>

#include "obs/export.h"
#include "obs/health/health_io.h"
#include "obs/trace_io.h"

namespace koptlog {

// ---------------------------------------------------------------------------
// JsonlWriterSink
// ---------------------------------------------------------------------------

JsonlWriterSink::JsonlWriterSink(const std::string& path, int n) : out_(path) {
  if (!out_) return;
  out_ << "{\"kind\":\"meta\",\"version\":1,\"n\":" << n << "}\n";
  ok_ = out_.good();
}

void JsonlWriterSink::on_event(const ProtocolEvent& e) {
  if (!ok_) return;
  out_ << event_to_json(e) << '\n';
  ++events_written_;
}

void JsonlWriterSink::tick() {
  if (!ok_) return;
  out_.flush();
  ok_ = out_.good();
}

void JsonlWriterSink::close() {
  if (!out_.is_open()) return;
  out_.flush();
  ok_ = ok_ && out_.good();
  out_.close();
}

// ---------------------------------------------------------------------------
// MetricsSnapshotSink
// ---------------------------------------------------------------------------

MetricsSnapshotSink::MetricsSnapshotSink(std::string path)
    : path_(std::move(path)) {}

void MetricsSnapshotSink::on_event(const ProtocolEvent& e) {
  stats_.inc("obs.events_total");
  stats_.inc("obs.events_" + std::string(event_kind_name(e.kind)));

  if (e.pid < 0) return;
  const size_t p = static_cast<size_t>(e.pid);
  if (p >= per_process_.size()) per_process_.resize(p + 1);
  PerProcess& pp = per_process_[p];

  switch (e.kind) {
    case EventKind::kBufferHold:
      (e.recv_side ? pp.recv_hold_since : pp.send_hold_since)[e.msg] = e.t;
      break;
    case EventKind::kBufferRelease: {
      // A send-side hold ends with the sender's release of the same msg.
      auto it = pp.send_hold_since.find(e.msg);
      if (it != pp.send_hold_since.end()) {
        stats_.sample("obs.hold_time_us", static_cast<double>(e.t - it->second));
        pp.send_hold_since.erase(it);
      }
      break;
    }
    case EventKind::kDeliver: {
      // A recv-side hold ends with the receiver's deliver of the same msg.
      auto it = pp.recv_hold_since.find(e.msg);
      if (it != pp.recv_hold_since.end()) {
        stats_.sample("obs.recv_hold_time_us",
                      static_cast<double>(e.t - it->second));
        pp.recv_hold_since.erase(it);
      }
      break;
    }
    case EventKind::kStorageFlush:
      pp.last_flush = e.t;
      break;
    case EventKind::kProgressNotify:
      if (pp.last_flush >= 0) {
        stats_.sample("obs.flush_to_notify_us",
                      static_cast<double>(e.t - pp.last_flush));
      }
      break;
    case EventKind::kRollback:
      pp.last_rollback = e.t;
      break;
    case EventKind::kOutputCommit:
      if (pp.last_rollback >= 0) {
        stats_.sample("obs.rollback_to_recommit_us",
                      static_cast<double>(e.t - pp.last_rollback));
        pp.last_rollback = -1;
      }
      break;
    case EventKind::kRecorderDrop:
      stats_.inc("obs.dropped_events", e.undone);
      break;
    default:
      break;
  }
}

void MetricsSnapshotSink::tick() {
  if (path_.empty()) return;
  std::string err;
  bool ok = write_file_atomic(
      path_,
      [this](std::ostream& out) {
        write_prometheus_text(stats_, out);
        if (extra_) extra_(out);
      },
      err);
  if (ok) ++snapshots_written_;
}

void MetricsSnapshotSink::close() { tick(); }

// ---------------------------------------------------------------------------
// LiveAuditSink
// ---------------------------------------------------------------------------

LiveAuditSink::LiveAuditSink(LiveAudit& audit, bool announce)
    : audit_(audit), announce_(announce) {}

void LiveAuditSink::on_event(const ProtocolEvent& e) {
  audit_.on_event(e);
  if (announce_ && !announced_ && !audit_.ok()) {
    announced_ = true;
    std::fprintf(stderr, "live audit VIOLATION: %s\n",
                 audit_.first_violation().c_str());
  }
}

}  // namespace koptlog
