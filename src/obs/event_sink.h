// EventSink — consumers of the live event stream drained by the
// EventCollector (obs/collector.h). All calls arrive on the collector
// thread: on_event() once per drained event (per-process order preserved,
// cross-process interleaving unspecified), tick() periodically for
// wall-clock housekeeping (flush, snapshot export), close() exactly once
// after the final event.
//
// Three sinks cover the CLI surface:
//  * JsonlWriterSink — streams the trace to a growing JSONL file, flushed
//    on every tick so a koptlog_audit --follow (or a human with tail -f)
//    sees events while the run is live. The file is a valid trace stream
//    for read_trace_jsonl / audit_trace, modulo global (t, pid, seq) order,
//    which neither requires.
//  * MetricsSnapshotSink — folds the stream into per-kind counters and the
//    phase-latency histograms (buffer hold time, storage-flush-to-progress-
//    notify lag, rollback-to-recommit time) and rewrites a Prometheus text
//    file atomically (tmp + rename) on every tick, instead of only at exit.
//  * LiveAuditSink — feeds a LiveAudit and surfaces its first violation on
//    stderr the moment it happens (fail-fast for long runs).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/live_audit.h"
#include "sim/stats.h"

namespace koptlog {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const ProtocolEvent& e) = 0;
  virtual void tick() {}
  virtual void close() {}
};

class JsonlWriterSink final : public EventSink {
 public:
  /// Writes the meta header immediately; ok() reports open/write failures.
  JsonlWriterSink(const std::string& path, int n);

  bool ok() const { return ok_; }
  uint64_t events_written() const { return events_written_; }

  void on_event(const ProtocolEvent& e) override;
  void tick() override;
  void close() override;

 private:
  std::ofstream out_;
  bool ok_ = false;
  uint64_t events_written_ = 0;
};

class MetricsSnapshotSink final : public EventSink {
 public:
  /// `path` may be empty: latencies and counters still accumulate (for the
  /// end-of-run metrics dump) but no snapshot file is written.
  explicit MetricsSnapshotSink(std::string path);

  void on_event(const ProtocolEvent& e) override;
  /// Rewrite the snapshot file (atomic tmp + rename).
  void tick() override;
  void close() override;

  /// Stream-derived metrics so far; merge into the run's Stats after the
  /// collector stops.
  const Stats& stats() const { return stats_; }
  uint64_t snapshots_written() const { return snapshots_written_; }

  /// Appended to every snapshot after the Stats section (runtime health
  /// series — see obs/health/health_io.h). Runs on the collector thread.
  void set_extra(std::function<void(std::ostream&)> extra) {
    extra_ = std::move(extra);
  }

 private:
  struct PerProcess {
    /// Open buffer holds awaiting their release (send) / deliver (recv).
    std::map<MsgId, SimTime> send_hold_since;
    std::map<MsgId, SimTime> recv_hold_since;
    SimTime last_flush = -1;     ///< t of the latest storage_flush
    SimTime last_rollback = -1;  ///< t of the latest rollback, cleared on
                                 ///< the next output_commit
  };

  std::string path_;
  Stats stats_;
  std::vector<PerProcess> per_process_;
  uint64_t snapshots_written_ = 0;
  std::function<void(std::ostream&)> extra_;
};

class LiveAuditSink final : public EventSink {
 public:
  /// Does not own `audit`; the caller keeps it alive past close() to read
  /// the final report. When `announce` is set the first violation is
  /// printed to stderr as soon as it is detected.
  LiveAuditSink(LiveAudit& audit, bool announce);

  void on_event(const ProtocolEvent& e) override;

 private:
  LiveAudit& audit_;
  bool announce_;
  bool announced_ = false;
};

}  // namespace koptlog
