#include "obs/export.h"

#include <cmath>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

namespace koptlog {

namespace {

std::string interval_str(const IntervalId& iv) {
  std::ostringstream os;
  os << '(' << iv.inc << ',' << iv.sii << ")_" << iv.pid;
  return os.str();
}

std::string event_args(const ProtocolEvent& e) {
  std::ostringstream os;
  os << "{\"at\":\"(" << e.at.inc << ',' << e.at.sii << ")\"";
  switch (e.kind) {
    case EventKind::kSend:
    case EventKind::kBufferRelease:
    case EventKind::kRetransmit:
      os << ",\"msg\":\"" << e.msg.src << ':' << e.msg.seq << "\",\"to\":\"P"
         << e.peer << '"';
      if (e.kind == EventKind::kBufferRelease)
        os << ",\"k\":\"" << e.k_reached << '/' << e.k_limit << '"';
      break;
    case EventKind::kDeliver:
      os << ",\"msg\":\"" << e.msg.src << ':' << e.msg.seq << "\",\"from\":\"P"
         << e.peer << "\",\"born_of\":\"" << json_escape(interval_str(e.ref))
         << '"';
      break;
    case EventKind::kBufferHold:
      os << ",\"msg\":\"" << e.msg.src << ':' << e.msg.seq << "\",\"queue\":\""
         << (e.recv_side ? "recv" : "send") << '"';
      if (!e.recv_side) os << ",\"k\":\"" << e.k_reached << '/' << e.k_limit << '"';
      break;
    case EventKind::kCheckpoint:
      os << ",\"live_entries\":" << e.tdv.non_null_count();
      break;
    case EventKind::kFailureAnnounce:
      os << ",\"ended\":\"(" << e.ended.inc << ',' << e.ended.sii << ")\""
         << ",\"from_failure\":" << (e.from_failure ? "true" : "false");
      break;
    case EventKind::kRollback:
      os << ",\"ended\":\"(" << e.ended.inc << ',' << e.ended.sii << ")\""
         << ",\"undone\":" << e.undone;
      break;
    case EventKind::kOutputCommit:
      os << ",\"output\":\"" << e.msg.src << ':' << e.msg.seq
         << "\",\"born_of\":\"" << json_escape(interval_str(e.ref)) << '"';
      break;
    case EventKind::kIncarnationBump:
      break;
    case EventKind::kStorageFlush:
    case EventKind::kStorageRecover:
    case EventKind::kProgressNotify:
      os << ",\"lsn\":" << e.lsn;
      break;
    case EventKind::kRecorderDrop:
      os << ",\"lost\":" << e.undone;
      break;
  }
  os << '}';
  return os.str();
}

}  // namespace

void write_perfetto_json(const Trace& trace, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  os << "\n";
  // One track ("thread") per process under a single "koptlog" process.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"koptlog\"}}";
  first = false;
  for (ProcessId pid = 0; pid < trace.n; ++pid) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << pid
       << ",\"args\":{\"name\":\"P" << pid << "\"}}";
    sep();
    os << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << pid << ",\"args\":{\"sort_index\":" << pid << "}}";
  }
  // The event the wire departure is drawn from, per message id: the send
  // buffer's release when present (K-optimistic engines), otherwise the
  // send itself (direct tracking releases immediately).
  std::map<MsgId, const ProtocolEvent*> departures;
  for (const ProtocolEvent& e : trace.events) {
    if (e.kind == EventKind::kSend) {
      departures.emplace(e.msg, &e);  // keep the first; release overrides
    } else if (e.kind == EventKind::kBufferRelease) {
      departures[e.msg] = &e;
    }
  }
  for (const ProtocolEvent& e : trace.events) {
    sep();
    os << "{\"name\":\"" << event_kind_name(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << e.pid
       << ",\"ts\":" << e.t << ",\"args\":" << event_args(e) << "}";
  }
  // Flow arrows: departure -> each delivery of the same message id.
  uint64_t flow_id = 0;
  for (const ProtocolEvent& e : trace.events) {
    if (e.kind != EventKind::kDeliver) continue;
    auto it = departures.find(e.msg);
    if (it == departures.end()) continue;  // environment injection
    const ProtocolEvent& src = *it->second;
    ++flow_id;
    sep();
    os << "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":" << flow_id
       << ",\"pid\":0,\"tid\":" << src.pid << ",\"ts\":" << src.t << "}";
    sep();
    os << "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\","
          "\"id\":" << flow_id << ",\"pid\":0,\"tid\":" << e.pid
       << ",\"ts\":" << e.t << "}";
  }
  os << "\n]}\n";
}

void write_perfetto_json(const Recording& rec, std::ostream& os) {
  Trace trace;
  trace.n = rec.n();
  trace.events = rec.merged();
  write_perfetto_json(trace, os);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

namespace {

std::string prom_name(const std::string& raw) {
  std::string out = "koptlog_";
  for (char c : raw) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void write_prometheus_text(const Stats& stats, std::ostream& os) {
  for (const auto& [name, value] : stats.counters()) {
    std::string p = prom_name(name);
    os << "# TYPE " << p << " counter\n" << p << ' ' << value << '\n';
  }
  for (const auto& [name, h] : stats.histograms()) {
    std::string p = prom_name(name);
    os << "# TYPE " << p << " summary\n";
    for (double q : {0.5, 0.9, 0.99}) {
      os << p << "{quantile=\"" << prom_value(q) << "\"} "
         << prom_value(h.quantile(q)) << '\n';
    }
    os << p << "_sum " << prom_value(h.sum()) << '\n';
    os << p << "_count " << h.count() << '\n';
    os << "# TYPE " << p << "_min gauge\n"
       << p << "_min " << prom_value(h.min()) << '\n';
    os << "# TYPE " << p << "_max gauge\n"
       << p << "_max " << prom_value(h.max()) << '\n';
  }
}

}  // namespace koptlog
