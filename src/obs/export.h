// Human-tooling exporters for recorded protocol events and metrics:
//  * write_perfetto_json — Chrome trace-event / Perfetto JSON: one track
//    per process, one instant per event, and flow arrows connecting each
//    message's release to its delivery, so a Figure-1-style run opens
//    directly in chrome://tracing or ui.perfetto.dev.
//  * write_prometheus_text — every Stats counter and histogram in the
//    Prometheus text exposition format (counters, and summaries with
//    quantile/sum/count plus min/max gauges).
#pragma once

#include <iosfwd>

#include "obs/trace_io.h"
#include "sim/stats.h"

namespace koptlog {

void write_perfetto_json(const Trace& trace, std::ostream& os);
void write_perfetto_json(const Recording& rec, std::ostream& os);

void write_prometheus_text(const Stats& stats, std::ostream& os);

}  // namespace koptlog
