#include "obs/health/health.h"

#include <algorithm>

namespace koptlog {

// ---------------------------------------------------------------------------
// HealthHistogram
// ---------------------------------------------------------------------------

int HealthHistogram::bucket_for(uint64_t v) {
  for (int i = 0; i < kFiniteBuckets; ++i) {
    if (v <= bucket_bound(i)) return i;
  }
  return kFiniteBuckets;  // overflow bucket
}

void HealthHistogram::observe(uint64_t v) {
  buckets_[static_cast<size_t>(bucket_for(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double HealthHistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    // Target falls in bucket i: interpolate between its bounds, clamped to
    // the observed max so a lone large value doesn't report 2^k.
    double lo = i == 0 ? 0.0
                       : static_cast<double>(HealthHistogram::bucket_bound(
                             static_cast<int>(i) - 1));
    double hi = i < HealthHistogram::kFiniteBuckets
                    ? static_cast<double>(
                          HealthHistogram::bucket_bound(static_cast<int>(i)))
                    : static_cast<double>(max);
    double frac = static_cast<double>(rank - seen) /
                  static_cast<double>(buckets[i]);
    double v = lo + (hi - lo) * frac;
    return std::min(v, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// HealthDomain
// ---------------------------------------------------------------------------

HealthCounter* HealthDomain::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<HealthCounter>();
  return slot.get();
}

HealthGauge* HealthDomain::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<HealthGauge>();
  return slot.get();
}

HealthHistogram* HealthDomain::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HealthHistogram>();
  return slot.get();
}

void HealthDomain::probe_counter(const std::string& name,
                                 std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  counter_probes_.emplace_back(name, std::move(fn));
}

void HealthDomain::probe_gauge(const std::string& name,
                               std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  gauge_probes_.emplace_back(name, std::move(fn));
}

void HealthDomain::snapshot(HealthSample::Domain& out) const {
  std::lock_guard<std::mutex> lk(mu_);
  out.name = name_;
  out.counters.reserve(counters_.size() + counter_probes_.size());
  for (const auto& [name, cell] : counters_) {
    out.counters.emplace_back(name, cell->value());
  }
  for (const auto& [name, fn] : counter_probes_) {
    out.counters.emplace_back(name, fn());
  }
  out.gauges.reserve(gauges_.size() + gauge_probes_.size());
  for (const auto& [name, cell] : gauges_) {
    out.gauges.emplace_back(name, cell->value());
  }
  for (const auto& [name, fn] : gauge_probes_) {
    out.gauges.emplace_back(name, fn());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    HealthHistogramSnapshot snap;
    // Read bucket counts first, then count/sum/max: a concurrent observe()
    // bumps the bucket before the totals, so totals can only be >= the
    // bucket sum we read — readers treat count as authoritative.
    snap.buckets.resize(HealthHistogram::kBuckets);
    for (int i = 0; i < HealthHistogram::kBuckets; ++i) {
      snap.buckets[static_cast<size_t>(i)] = cell->bucket(i);
    }
    snap.count = cell->count();
    snap.sum = cell->sum();
    snap.max = cell->max();
    out.histograms.emplace_back(name, std::move(snap));
  }
}

// ---------------------------------------------------------------------------
// HealthRegistry
// ---------------------------------------------------------------------------

HealthDomain* HealthRegistry::domain(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = domains_[name];
  if (!slot) slot = std::make_unique<HealthDomain>(name);
  return slot.get();
}

HealthSample HealthRegistry::sample(int64_t t_us) const {
  HealthSample out;
  out.t_us = t_us;
  std::lock_guard<std::mutex> lk(mu_);
  out.domains.reserve(domains_.size());
  for (const auto& [name, dom] : domains_) {
    out.domains.emplace_back();
    dom->snapshot(out.domains.back());
  }
  return out;
}

std::vector<std::string> HealthRegistry::domain_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(domains_.size());
  for (const auto& [name, dom] : domains_) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// Metric catalog (--list-health)
// ---------------------------------------------------------------------------

const std::vector<HealthMetricInfo>& health_metric_catalog() {
  static const std::vector<HealthMetricInfo> kCatalog = {
      // Per-shard scheduler / mailbox (domain "shard<i>").
      {"shard<i>", "sched.drain_latency_us", "histogram",
       "virtual-clock age of each executed action at execution time"},
      {"shard<i>", "sched.drain_batch", "histogram",
       "events drained from the mailbox per wakeup"},
      {"shard<i>", "sched.inbox_pending", "gauge",
       "actions queued on the shard (mailbox + local queue)"},
      {"shard<i>", "sched.pushes", "counter", "cross-shard mailbox pushes"},
      {"shard<i>", "sched.wakeups", "counter",
       "condition-variable wakeups taken by the shard loop"},
      {"shard<i>", "sched.soft_overflows", "counter",
       "pushes beyond the mailbox capacity hint"},
      {"shard<i>", "sched.producer_stall_us", "counter",
       "cumulative producer wall time spent waiting on a full mailbox"},
      // Announcement fan-out (domain "cluster").
      {"cluster", "announce.fanout_batches", "counter",
       "announcement broadcasts fanned out to shards"},
      {"cluster", "announce.tree_hops", "counter",
       "shard-to-shard forwarding hops taken by tree dissemination"},
      {"cluster", "announce.log_size", "counter",
       "announcements appended to the shared log (probe)"},
      {"cluster", "outputs.committed", "counter",
       "outputs released by the commit oracle (probe)"},
      {"cluster", "track.bytes_sent", "counter",
       "delta-encoded dependency-tracking bytes metered at the route "
       "boundary (measure_tracking)"},
      {"cluster", "track.nnz", "counter",
       "non-NULL dependency entries across metered messages "
       "(measure_tracking)"},
      // Disk storage backend (domain "storage<p>").
      {"storage<p>", "wal.fsync_us", "histogram",
       "wall time of each WAL write+fsync"},
      {"storage<p>", "wal.window_fill", "histogram",
       "staged records flushed per group-commit window"},
      {"storage<p>", "wal.staged_bytes", "gauge",
       "bytes staged and not yet durable"},
      {"storage<p>", "wal.segment_rolls", "counter", "WAL segment rolls"},
      {"storage<p>", "wal.bytes_written", "counter",
       "bytes appended to the WAL"},
      // Obs pipeline (domain "obs").
      {"obs", "ring.occupancy", "gauge",
       "events buffered across all ring recorders (probe)"},
      {"obs", "ring.dropped", "counter",
       "events lost to ring overflow (probe)"},
      {"obs", "ring.accepted", "counter",
       "events accepted into rings (probe)"},
      {"obs", "collector.collected", "counter",
       "events drained by the collector (probe)"},
      {"obs", "collector.lag", "gauge",
       "accepted minus collected: how far the collector trails (probe)"},
  };
  return kCatalog;
}

}  // namespace koptlog
