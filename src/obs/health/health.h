// Runtime health telemetry: a lock-free, shard-confined time-series metrics
// registry (DESIGN §6.5).
//
// The registry is organised as named *domains* (one per shard worker, one per
// storage backend instance, one for the obs pipeline, ...). Each domain holds
// named cells — counters, gauges, and fixed-bucket log2 histograms — whose
// updates are single relaxed/relaxed-CAS atomic ops issued by the owning hot
// path. A sampler thread (health_sampler.h) walks the registry on a periodic
// tick and snapshots every cell into a bounded ring of timestamped samples.
//
// Design constraints, in order:
//   1. Recording-passive: cells never block, never allocate on the update
//      path, and touch nothing the protocol reads. With telemetry compiled
//      in but no registry attached, hot paths pay one nullptr test.
//   2. Exact conservation: everything is an integer. The sum of per-tick
//      deltas of any counter equals its final value (tested).
//   3. Shard-confined writes: a cell is updated by its owning thread (or a
//      bounded set of producers for MPSC seams); the only cross-thread reads
//      are the sampler's relaxed loads, which tolerate torn *series* (a
//      sample is not a consistent cut across cells) but never torn *values*.
//
// Cell addresses are stable for the lifetime of the registry: domains hand
// out pointers into node-stable maps, so hot paths hoist the lookup out of
// their loops and keep a raw pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace koptlog {

/// Monotone event count. Hot path: one relaxed fetch_add.
class HealthCounter {
 public:
  void inc(uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (occupancy, backlog bytes, ...). May go negative
/// transiently when add/sub race across producers; sampled as a signed value.
class HealthGauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t by) { v_.fetch_add(by, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket log2 histogram of non-negative integer observations
/// (latencies in us, batch sizes, ...). Bucket i counts values whose
/// upper bound is 2^i for i in [0, kFiniteBuckets); the last bucket is
/// the +inf overflow. All fields are integers so snapshot deltas conserve
/// exactly; `sum` and `max` let readers recover means and tails without
/// exemplars.
class HealthHistogram {
 public:
  static constexpr int kFiniteBuckets = 26;
  static constexpr int kBuckets = kFiniteBuckets + 1;

  /// Upper bound of finite bucket i (inclusive): 2^i.
  static uint64_t bucket_bound(int i) { return uint64_t{1} << i; }
  static int bucket_for(uint64_t v);

  void observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of one histogram (plain integers, no atomics).
struct HealthHistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // kBuckets entries

  /// Bucket-interpolated quantile (q in [0,1]) over this snapshot; 0 when
  /// empty. Exemplar-free: linear interpolation within the winning bucket.
  double quantile(double q) const;
};

/// One sampler tick: every cell of every domain, stamped with microseconds
/// since the sampler started (wall clock — deliberately not simulation time,
/// so sampling never reads cross-thread simulator state).
struct HealthSample {
  int64_t t_us = 0;
  struct Domain {
    std::string name;
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, HealthHistogramSnapshot>> histograms;
  };
  std::vector<Domain> domains;
};

/// A named group of cells owned by one subsystem instance. Cell creation and
/// iteration take a mutex; cell *updates* never do — callers keep the
/// returned pointers, which stay valid for the registry's lifetime.
class HealthDomain {
 public:
  explicit HealthDomain(std::string name) : name_(std::move(name)) {}
  HealthDomain(const HealthDomain&) = delete;
  HealthDomain& operator=(const HealthDomain&) = delete;

  const std::string& name() const { return name_; }

  HealthCounter* counter(const std::string& name);
  HealthGauge* gauge(const std::string& name);
  HealthHistogram* histogram(const std::string& name);

  /// Pull metrics: `fn` is evaluated on the *sampler* thread at each tick and
  /// must therefore be a thread-safe read (atomic loads, lock-free getters).
  void probe_counter(const std::string& name, std::function<uint64_t()> fn);
  void probe_gauge(const std::string& name, std::function<int64_t()> fn);

  void snapshot(HealthSample::Domain& out) const;

 private:
  const std::string name_;
  mutable std::mutex mu_;  // guards map shape + probe list, not cell values
  std::map<std::string, std::unique_ptr<HealthCounter>> counters_;
  std::map<std::string, std::unique_ptr<HealthGauge>> gauges_;
  std::map<std::string, std::unique_ptr<HealthHistogram>> histograms_;
  std::vector<std::pair<std::string, std::function<uint64_t()>>>
      counter_probes_;
  std::vector<std::pair<std::string, std::function<int64_t()>>> gauge_probes_;
};

/// Root of the telemetry tree. Owns the domains; `sample()` is what the
/// sampler thread (or a test) calls to take one tick.
class HealthRegistry {
 public:
  HealthRegistry() = default;
  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  /// Find-or-create. Domain pointers are stable for the registry lifetime.
  HealthDomain* domain(const std::string& name);

  /// Snapshot every domain; `t_us` is the caller's timestamp.
  HealthSample sample(int64_t t_us) const;

  std::vector<std::string> domain_names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<HealthDomain>> domains_;
};

/// One row of the --list-health catalog: where a metric lives and what it
/// means. Kept in code (not docs) so the CLI can print it.
struct HealthMetricInfo {
  std::string domain;  ///< domain name pattern, e.g. "shard<i>"
  std::string metric;
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  std::string help;
};

/// Catalog of every metric the built-in instrumentation emits.
const std::vector<HealthMetricInfo>& health_metric_catalog();

}  // namespace koptlog
