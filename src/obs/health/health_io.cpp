#include "obs/health/health_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/trace_io.h"  // json_escape

namespace koptlog {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

void write_health_meta(std::ostream& os) {
  os << "{\"kind\":\"health_meta\",\"v\":1,\"buckets\":[";
  for (int i = 0; i < HealthHistogram::kFiniteBuckets; ++i) {
    if (i) os << ',';
    os << HealthHistogram::bucket_bound(i);
  }
  os << "]}\n";
}

void write_health_sample(const HealthSample& sample, std::ostream& os) {
  for (const auto& dom : sample.domains) {
    os << "{\"kind\":\"health\",\"v\":1,\"t_us\":" << sample.t_us
       << ",\"dom\":\"" << json_escape(dom.name) << "\"";
    if (!dom.counters.empty()) {
      os << ",\"c\":{";
      bool first = true;
      for (const auto& [name, v] : dom.counters) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":" << v;
      }
      os << '}';
    }
    if (!dom.gauges.empty()) {
      os << ",\"g\":{";
      bool first = true;
      for (const auto& [name, v] : dom.gauges) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":" << v;
      }
      os << '}';
    }
    if (!dom.histograms.empty()) {
      os << ",\"h\":{";
      bool first = true;
      for (const auto& [name, h] : dom.histograms) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":{\"n\":" << h.count
           << ",\"sum\":" << h.sum << ",\"max\":" << h.max << ",\"b\":[";
        for (size_t i = 0; i < h.buckets.size(); ++i) {
          if (i) os << ',';
          os << h.buckets[i];
        }
        os << "]}";
      }
      os << '}';
    }
    os << "}\n";
  }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

namespace {

bool as_u64(const JsonValue* v, uint64_t& out) {
  int64_t s = 0;
  if (!json_as_int64(v, s) || s < 0) return false;
  out = static_cast<uint64_t>(s);
  return true;
}

bool parse_health_line(const JsonValue& v, HealthSeries::Tick& tick,
                       std::string& why) {
  int64_t t_us = 0;
  if (!json_as_int64(v.find("t_us"), t_us) || t_us < 0) {
    why = "missing or negative \"t_us\"";
    return false;
  }
  tick.t_us = t_us;
  const JsonValue* dom = v.find("dom");
  if (!dom || dom->type != JsonValue::Type::kStr || dom->str.empty()) {
    why = "missing \"dom\"";
    return false;
  }
  tick.domain.name = dom->str;
  if (const JsonValue* c = v.find("c")) {
    if (c->type != JsonValue::Type::kObj) {
      why = "\"c\" is not an object";
      return false;
    }
    for (const auto& [name, val] : c->obj) {
      uint64_t u = 0;
      if (!as_u64(&val, u)) {
        why = "counter \"" + name + "\" is not a non-negative integer";
        return false;
      }
      tick.domain.counters.emplace_back(name, u);
    }
  }
  if (const JsonValue* g = v.find("g")) {
    if (g->type != JsonValue::Type::kObj) {
      why = "\"g\" is not an object";
      return false;
    }
    for (const auto& [name, val] : g->obj) {
      int64_t s = 0;
      if (!json_as_int64(&val, s)) {
        why = "gauge \"" + name + "\" is not an integer";
        return false;
      }
      tick.domain.gauges.emplace_back(name, s);
    }
  }
  if (const JsonValue* h = v.find("h")) {
    if (h->type != JsonValue::Type::kObj) {
      why = "\"h\" is not an object";
      return false;
    }
    for (const auto& [name, val] : h->obj) {
      if (val.type != JsonValue::Type::kObj) {
        why = "histogram \"" + name + "\" is not an object";
        return false;
      }
      HealthHistogramSnapshot snap;
      if (!as_u64(val.find("n"), snap.count) ||
          !as_u64(val.find("sum"), snap.sum) ||
          !as_u64(val.find("max"), snap.max)) {
        why = "histogram \"" + name + "\" missing n/sum/max";
        return false;
      }
      const JsonValue* b = val.find("b");
      if (!b || b->type != JsonValue::Type::kArr ||
          b->arr.size() != static_cast<size_t>(HealthHistogram::kBuckets)) {
        why = "histogram \"" + name + "\" has wrong bucket count";
        return false;
      }
      snap.buckets.reserve(b->arr.size());
      for (const auto& bv : b->arr) {
        uint64_t u = 0;
        if (!as_u64(&bv, u)) {
          why = "histogram \"" + name + "\" bucket is not an integer";
          return false;
        }
        snap.buckets.push_back(u);
      }
      tick.domain.histograms.emplace_back(name, std::move(snap));
    }
  }
  return true;
}

}  // namespace

HealthSeries read_health_jsonl(std::istream& is,
                               std::vector<std::string>& errors) {
  HealthSeries out;
  std::string line;
  int lineno = 0;
  bool at_eof_tear = false;
  auto err = [&](const std::string& what) {
    errors.push_back("line " + std::to_string(lineno) + ": " + what);
  };
  while (std::getline(is, line)) {
    ++lineno;
    // A live writer may leave the final line unterminated; getline still
    // returns it at EOF. Detect that case and skip parse errors for it.
    at_eof_tear = is.eof() && !line.empty();
    if (line.empty()) continue;
    JsonValue v;
    std::string parse_err;
    if (!JsonParser(line).parse(v, parse_err)) {
      if (!at_eof_tear) err(parse_err);
      continue;
    }
    if (v.type != JsonValue::Type::kObj) {
      err("line is not a JSON object");
      continue;
    }
    const JsonValue* kind = v.find("kind");
    if (!kind || kind->type != JsonValue::Type::kStr) continue;
    if (kind->str == "health_meta") {
      int64_t ver = 0;
      if (!json_as_int64(v.find("v"), ver) || ver != 1) {
        err("unsupported health schema version (want 1)");
        continue;
      }
      const JsonValue* buckets = v.find("buckets");
      if (!buckets || buckets->type != JsonValue::Type::kArr) {
        err("health_meta missing \"buckets\"");
        continue;
      }
      out.bucket_bounds.clear();
      for (const auto& b : buckets->arr) {
        uint64_t u = 0;
        if (!as_u64(&b, u)) {
          err("health_meta bucket bound is not an integer");
          break;
        }
        out.bucket_bounds.push_back(u);
      }
      out.have_meta = true;
      continue;
    }
    if (kind->str != "health") continue;  // trace lines, etc.
    HealthSeries::Tick tick;
    std::string why;
    if (!parse_health_line(v, tick, why)) {
      err(why);
      continue;
    }
    out.ticks.push_back(std::move(tick));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus export
// ---------------------------------------------------------------------------

namespace {

std::string prom_name(const std::string& metric) {
  std::string out = "koptlog_health_";
  for (char c : metric) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

}  // namespace

void write_health_prometheus(const HealthSample& sample, std::ostream& os) {
  for (const auto& dom : sample.domains) {
    const std::string label = "{dom=\"" + dom.name + "\"}";
    for (const auto& [name, v] : dom.counters) {
      const std::string p = prom_name(name);
      os << "# TYPE " << p << " counter\n"
         << p << "_total" << label << " " << v << "\n";
    }
    for (const auto& [name, v] : dom.gauges) {
      const std::string p = prom_name(name);
      os << "# TYPE " << p << " gauge\n" << p << label << " " << v << "\n";
    }
    for (const auto& [name, h] : dom.histograms) {
      const std::string p = prom_name(name);
      os << "# TYPE " << p << " summary\n";
      for (double q : {0.5, 0.9, 0.99}) {
        os << p << "{dom=\"" << dom.name << "\",quantile=\"" << q << "\"} "
           << h.quantile(q) << "\n";
      }
      os << p << "_sum" << label << " " << h.sum << "\n"
         << p << "_count" << label << " " << h.count << "\n"
         << p << "_max" << label << " " << h.max << "\n";
    }
  }
}

// ---------------------------------------------------------------------------
// Atomic file replace
// ---------------------------------------------------------------------------

bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& body,
                       std::string& err) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      err = "cannot open " + tmp + " for writing";
      return false;
    }
    body(os);
    os.flush();
    if (!os.good()) {
      err = "write to " + tmp + " failed";
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    err = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace koptlog
