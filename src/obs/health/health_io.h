// Health sidecar JSONL (schema v1) + Prometheus export for HealthSamples.
//
// Sidecar layout: the first line is a meta header naming the histogram
// bucket bounds once, then one line per (tick, domain):
//
//   {"kind":"health_meta","v":1,"buckets":[1,2,4,...]}
//   {"kind":"health","v":1,"t_us":100000,"dom":"shard0",
//    "c":{"sched.pushes":12},"g":{"sched.inbox_pending":3},
//    "h":{"sched.drain_latency_us":{"n":9,"sum":110,"max":40,"b":[...]}}}
//
// `t_us` is microseconds since the sampler started (wall clock), monotone
// non-decreasing per domain. Values in "c"/"h" are cumulative, not deltas —
// a reader that wants rates subtracts adjacent ticks. The reader below
// tolerates a torn final line (a live writer mid-append), mirroring the
// trace reader's --follow semantics.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/health/health.h"

namespace koptlog {

/// Meta header line (bucket bounds). Write once, before any sample lines.
void write_health_meta(std::ostream& os);

/// One JSONL line per domain in the sample.
void write_health_sample(const HealthSample& sample, std::ostream& os);

/// Parsed sidecar: meta + flat list of per-domain ticks in file order.
struct HealthSeries {
  bool have_meta = false;
  std::vector<uint64_t> bucket_bounds;  // finite bounds from the meta line
  struct Tick {
    int64_t t_us = 0;
    HealthSample::Domain domain;
  };
  std::vector<Tick> ticks;
};

/// Read a health sidecar. Unknown "kind" lines are skipped (the sidecar may
/// be interleaved with a trace); a torn final line is tolerated silently;
/// malformed complete lines are reported in `errors`.
HealthSeries read_health_jsonl(std::istream& is,
                               std::vector<std::string>& errors);

/// Prometheus text exposition for the latest tick of each domain:
/// counters/gauges as koptlog_health_<metric>{dom="..."}, histograms as
/// summaries with interpolated q50/q90/q99 plus _sum/_count/_max.
void write_health_prometheus(const HealthSample& sample, std::ostream& os);

/// Write `body(os)` to `path` via temp-file + rename so concurrent readers
/// never observe a torn file. Returns false (with `err` set) on any I/O
/// failure; the temp file is cleaned up.
bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& body,
                       std::string& err);

}  // namespace koptlog
