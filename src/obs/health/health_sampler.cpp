#include "obs/health/health_sampler.h"

#include "obs/health/health_io.h"

namespace koptlog {

// ---------------------------------------------------------------------------
// HealthSampler
// ---------------------------------------------------------------------------

HealthSampler::HealthSampler(HealthRegistry& registry, Options opts)
    : registry_(registry),
      opts_(opts),
      start_(std::chrono::steady_clock::now()) {}

HealthSampler::~HealthSampler() { stop(); }

void HealthSampler::start(std::function<void(const HealthSample&)> on_sample) {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  on_sample_ = std::move(on_sample);
  start_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
}

void HealthSampler::stop() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  take_sample();  // final totals, even if no interval elapsed
  std::lock_guard<std::mutex> lk(run_mu_);
  started_ = false;
}

void HealthSampler::sample_now() { take_sample(); }

std::deque<HealthSample> HealthSampler::history() const {
  std::lock_guard<std::mutex> lk(mu_);
  return history_;
}

uint64_t HealthSampler::ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ticks_;
}

int64_t HealthSampler::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void HealthSampler::run() {
  std::unique_lock<std::mutex> lk(run_mu_);
  while (!stopping_) {
    cv_.wait_for(lk, std::chrono::microseconds(opts_.interval_us),
                 [this] { return stopping_; });
    if (stopping_) break;
    lk.unlock();
    take_sample();
    lk.lock();
  }
}

void HealthSampler::take_sample() {
  HealthSample s = registry_.sample(now_us());
  std::function<void(const HealthSample&)> cb;
  {
    std::lock_guard<std::mutex> lk(mu_);
    history_.push_back(s);
    while (history_.size() > opts_.history) history_.pop_front();
    ++ticks_;
    cb = on_sample_;
  }
  if (cb) cb(s);
}

// ---------------------------------------------------------------------------
// HealthTimeseriesSink
// ---------------------------------------------------------------------------

HealthTimeseriesSink::HealthTimeseriesSink(HealthRegistry& registry,
                                           HealthSampler::Options opts,
                                           const std::string& path)
    : sampler_(registry, opts) {
  if (path.empty()) {
    ok_ = true;
    sampler_.start();
    return;
  }
  have_path_ = true;
  out_.open(path, std::ios::trunc);
  if (!out_) return;  // ok_ stays false; caller diagnoses
  write_health_meta(out_);
  out_.flush();
  ok_ = out_.good();
  if (!ok_) return;
  // Sidecar writes happen on the sampler thread; nothing else touches out_
  // until close() has stopped the sampler.
  sampler_.start([this](const HealthSample& s) {
    write_health_sample(s, out_);
    out_.flush();  // tail -f / koptlog_top --follow see ticks promptly
  });
}

HealthTimeseriesSink::~HealthTimeseriesSink() { sampler_.stop(); }

void HealthTimeseriesSink::tick() {
  // Cadence is the sampler's own; nothing to do on collector ticks.
}

void HealthTimeseriesSink::close() {
  sampler_.stop();  // writes the final sample through the callback
  if (have_path_) out_.close();
}

}  // namespace koptlog
