// HealthSampler — the periodic tick that turns live registry cells into a
// bounded in-memory history and an append-only JSONL sidecar.
//
// The sampler owns its own thread (cadence must not depend on the collector
// tick or on simulation time): every `interval_us` of wall time it calls
// HealthRegistry::sample() stamped with microseconds-since-start, keeps the
// result in a bounded deque (oldest evicted), and hands it to an optional
// per-tick callback (the JSONL writer, a test). stop() takes one final
// sample before joining so short runs still record their totals.
//
// HealthTimeseriesSink adapts the sampler to the EventSink seam so the
// collector's lifecycle (start before the cluster, close after the final
// drain) drives the sidecar for free in ring mode; it ignores the event
// stream itself.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/event_sink.h"
#include "obs/health/health.h"

namespace koptlog {

class HealthSampler {
 public:
  struct Options {
    int64_t interval_us = 100000;  ///< 100ms default tick
    size_t history = 512;          ///< bounded in-memory sample ring
  };

  /// Does not own `registry`; it must outlive the sampler. Probes registered
  /// on the registry run on this sampler's thread — anything they capture
  /// must stay alive until stop() returns.
  HealthSampler(HealthRegistry& registry, Options opts);
  ~HealthSampler();

  /// `on_sample` (optional) runs on the sampler thread after each tick.
  void start(std::function<void(const HealthSample&)> on_sample = nullptr);

  /// Take a final sample, then join. Idempotent.
  void stop();

  /// Take one sample now (sampler thread not required; used by manual-drive
  /// mode and tests). Applies history bounds and the callback.
  void sample_now();

  /// Copy of the retained history, oldest first.
  std::deque<HealthSample> history() const;

  uint64_t ticks() const;

 private:
  void run();
  void take_sample();
  int64_t now_us() const;

  HealthRegistry& registry_;
  const Options opts_;
  std::function<void(const HealthSample&)> on_sample_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;  // guards history_, ticks_, and serialises samples
  std::deque<HealthSample> history_;
  uint64_t ticks_ = 0;

  std::mutex run_mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

/// EventSink wrapper: owns the sampler plus the sidecar ofstream. Attach to
/// the EventCollector in ring mode (start() on construction, final sample on
/// close()); in recorder-less modes call sampler() directly.
class HealthTimeseriesSink final : public EventSink {
 public:
  /// Opens `path` (truncating) and writes the meta header; ok() reports
  /// failures. Empty `path` keeps history in memory only.
  HealthTimeseriesSink(HealthRegistry& registry, HealthSampler::Options opts,
                       const std::string& path);
  ~HealthTimeseriesSink() override;

  bool ok() const { return ok_; }
  HealthSampler& sampler() { return sampler_; }

  void on_event(const ProtocolEvent&) override {}  // telemetry, not events
  void tick() override;
  void close() override;

 private:
  std::ofstream out_;
  bool ok_ = false;
  bool have_path_ = false;
  HealthSampler sampler_;
};

}  // namespace koptlog
