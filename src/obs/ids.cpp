#include "obs/ids.h"

#include <cctype>
#include <charconv>
#include <sstream>

namespace koptlog {

namespace {

/// Parse a decimal integer spanning [s.begin(), s.end()) exactly.
bool whole_int(std::string_view s, int64_t& out) {
  if (s.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string_view strip_p(std::string_view s) {
  if (!s.empty() && (s.front() == 'P' || s.front() == 'p')) s.remove_prefix(1);
  return s;
}

}  // namespace

std::string format_msg_id(const MsgId& id) {
  std::ostringstream os;
  if (id.src == kEnvironment) {
    os << "env:" << id.seq;
  } else {
    os << 'P' << id.src << ':' << id.seq;
  }
  return os.str();
}

std::string format_interval_id(const IntervalId& iv) { return iv.str(); }

std::string format_event_ref(const Trace& trace, size_t event_index) {
  std::ostringstream os;
  os << '#' << event_index;
  if (event_index < trace.events.size()) {
    const ProtocolEvent& e = trace.events[event_index];
    os << " t=" << e.t << " P" << e.pid << ' ' << event_kind_name(e.kind);
  }
  return os.str();
}

std::optional<MsgId> parse_msg_id(std::string_view s) {
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::string_view src_s = s.substr(0, colon);
  std::string_view seq_s = s.substr(colon + 1);
  int64_t src = 0, seq = 0;
  if (src_s == "env") {
    src = kEnvironment;
  } else if (!whole_int(strip_p(src_s), src)) {
    return std::nullopt;
  }
  if (!whole_int(seq_s, seq) || seq < 0) return std::nullopt;
  return MsgId{static_cast<ProcessId>(src), static_cast<SeqNo>(seq)};
}

std::optional<IntervalId> parse_interval_id(std::string_view s) {
  // "(inc,sii)_pid"
  if (!s.empty() && s.front() == '(') {
    size_t comma = s.find(',');
    size_t close = s.find(")_");
    if (comma == std::string_view::npos || close == std::string_view::npos ||
        comma > close)
      return std::nullopt;
    int64_t inc = 0, sii = 0, pid = 0;
    if (!whole_int(s.substr(1, comma - 1), inc)) return std::nullopt;
    if (!whole_int(s.substr(comma + 1, close - comma - 1), sii))
      return std::nullopt;
    if (!whole_int(strip_p(s.substr(close + 2)), pid)) return std::nullopt;
    return IntervalId{static_cast<ProcessId>(pid),
                      static_cast<Incarnation>(inc), sii};
  }
  // "pid:inc:sii"
  size_t c1 = s.find(':');
  if (c1 == std::string_view::npos) return std::nullopt;
  size_t c2 = s.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return std::nullopt;
  int64_t pid = 0, inc = 0, sii = 0;
  if (!whole_int(strip_p(s.substr(0, c1)), pid) ||
      !whole_int(s.substr(c1 + 1, c2 - c1 - 1), inc) ||
      !whole_int(s.substr(c2 + 1), sii))
    return std::nullopt;
  return IntervalId{static_cast<ProcessId>(pid),
                    static_cast<Incarnation>(inc), sii};
}

}  // namespace koptlog
