// Stable textual ids for addressing trace entities from tools and queries.
//
// A recorded trace already carries every identity the analysis layer needs;
// this header fixes the *spelling* so CLIs, reports and tests agree:
//
//   message / output   "P1:2"   (sender pid : per-sender seq; "env:4" for
//                               environment injections)
//   state interval     "(2,6)_3"  — the paper's (t,x)_i — also accepted as
//                               the colon form "3:2:6" (pid:inc:sii)
//   event              "#12"    — the 0-based position in the merged JSONL
//                               stream (line 14 of the file: meta header
//                               first, then events in file order). File
//                               order is the deterministic (t, pid, seq)
//                               merge, so the index is stable across
//                               re-reads and re-exports of the same trace.
//
// Parsers are strict but forgiving about the redundant "P" prefix; they
// return nullopt instead of guessing.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/entry.h"
#include "core/protocol_msg.h"
#include "obs/trace_io.h"

namespace koptlog {

std::string format_msg_id(const MsgId& id);
std::string format_interval_id(const IntervalId& iv);
/// "#12 t=0 P1 buffer_release" — index plus enough context to find it.
std::string format_event_ref(const Trace& trace, size_t event_index);

/// Accepts "P1:2", "1:2" and "env:4" (src may be -1 / "env").
std::optional<MsgId> parse_msg_id(std::string_view s);
/// Accepts "(2,6)_3" and "3:2:6".
std::optional<IntervalId> parse_interval_id(std::string_view s);

}  // namespace koptlog
