#include "obs/json.h"

#include <cctype>
#include <cmath>

namespace koptlog {

bool JsonParser::parse(JsonValue& out, std::string& err) {
  bool ok = value(out, err);
  if (!ok) return false;
  skip_ws();
  if (pos_ != text_.size()) {
    err = "trailing characters after JSON value";
    return false;
  }
  return true;
}

void JsonParser::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_])))
    ++pos_;
}

bool JsonParser::fail(std::string& err, const std::string& what) {
  err = what + " at offset " + std::to_string(pos_);
  return false;
}

bool JsonParser::literal(std::string_view word, std::string& err) {
  if (text_.substr(pos_, word.size()) != word) return fail(err, "bad literal");
  pos_ += word.size();
  return true;
}

bool JsonParser::string(std::string& out, std::string& err) {
  if (pos_ >= text_.size() || text_[pos_] != '"')
    return fail(err, "expected string");
  ++pos_;
  out.clear();
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= text_.size()) return fail(err, "bad escape");
    char esc = text_[pos_++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) return fail(err, "bad \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return fail(err, "bad \\u escape");
        }
        // Sufficient for this schema: control characters only.
        out += static_cast<char>(code & 0xff);
        break;
      }
      default:
        return fail(err, "bad escape");
    }
  }
  if (pos_ >= text_.size()) return fail(err, "unterminated string");
  ++pos_;  // closing quote
  return true;
}

bool JsonParser::number(JsonValue& out, std::string& err) {
  size_t start = pos_;
  if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '-' || text_[pos_] == '+'))
    ++pos_;
  if (pos_ == start) return fail(err, "expected number");
  std::string tok(text_.substr(start, pos_ - start));
  try {
    out.type = JsonValue::Type::kNum;
    out.num = std::stod(tok);
  } catch (...) {
    return fail(err, "bad number");
  }
  return true;
}

bool JsonParser::value(JsonValue& out, std::string& err) {
  skip_ws();
  if (pos_ >= text_.size()) return fail(err, "unexpected end of input");
  char c = text_[pos_];
  if (c == '{') {
    ++pos_;
    out.type = JsonValue::Type::kObj;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key, err)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail(err, "expected ':'");
      ++pos_;
      JsonValue v;
      if (!value(v, err)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail(err, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(err, "expected ',' or '}'");
    }
  }
  if (c == '[') {
    ++pos_;
    out.type = JsonValue::Type::kArr;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v, err)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail(err, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(err, "expected ',' or ']'");
    }
  }
  if (c == '"') {
    out.type = JsonValue::Type::kStr;
    return string(out.str, err);
  }
  if (c == 't') {
    out.type = JsonValue::Type::kBool;
    out.b = true;
    return literal("true", err);
  }
  if (c == 'f') {
    out.type = JsonValue::Type::kBool;
    out.b = false;
    return literal("false", err);
  }
  if (c == 'n') {
    out.type = JsonValue::Type::kNull;
    return literal("null", err);
  }
  return number(out, err);
}

bool json_as_int64(const JsonValue* v, int64_t& out) {
  if (!v || v->type != JsonValue::Type::kNum) return false;
  if (v->num != std::floor(v->num)) return false;
  out = static_cast<int64_t>(v->num);
  return true;
}

}  // namespace koptlog
