// Minimal JSON value + recursive-descent parser shared by the JSONL
// readers (trace schema in obs/trace_io.cpp, health sidecar in
// obs/health/health_io.cpp, koptlog_top). Sufficient for the repo's own
// line-oriented formats; not a general-purpose JSON library (\u escapes
// only cover the control characters our writers emit).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace koptlog {

struct JsonValue {
  enum class Type { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parse one complete JSON value; trailing non-whitespace is an error.
  bool parse(JsonValue& out, std::string& err);

 private:
  void skip_ws();
  bool fail(std::string& err, const std::string& what);
  bool literal(std::string_view word, std::string& err);
  bool string(std::string& out, std::string& err);
  bool number(JsonValue& out, std::string& err);
  bool value(JsonValue& out, std::string& err);

  std::string_view text_;
  size_t pos_ = 0;
};

/// Strict integer extraction: the value must exist, be a number, and have
/// no fractional part.
bool json_as_int64(const JsonValue* v, int64_t& out);

}  // namespace koptlog
