#include "obs/live_audit.h"

#include <limits>
#include <sstream>

namespace koptlog {

namespace {

constexpr size_t kMaxViolations = 100;

std::string interval_str(const IntervalId& iv) {
  std::ostringstream os;
  os << '(' << iv.inc << ',' << iv.sii << ")_" << iv.pid;
  return os.str();
}

std::string msg_str(const MsgId& id) {
  return std::to_string(id.src) + ":" + std::to_string(id.seq);
}

}  // namespace

std::string format_live_event_id(const ProtocolEvent& e) {
  return "P" + std::to_string(e.pid) + "#" + std::to_string(e.seq);
}

LiveAudit::LiveAudit(int n)
    : n_(n),
      announced_(static_cast<size_t>(n)),
      cur_(static_cast<size_t>(n)),
      last_chain_(static_cast<size_t>(n)),
      prev_t_(static_cast<size_t>(n), std::numeric_limits<SimTime>::min()),
      watermarks_(static_cast<size_t>(n)) {}

void LiveAudit::violate(const ProtocolEvent& e, const std::string& what) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(format_live_event_id(e) + " t=" +
                          std::to_string(e.t) + ": " + what);
  } else if (violations_.size() == kMaxViolations) {
    violations_.push_back("... further violations suppressed");
  }
}

bool LiveAudit::is_dead_locked(const IntervalId& iv) const {
  if (iv.pid < 0 || iv.pid >= n_) return false;  // environment
  for (const Entry& a : announced_[static_cast<size_t>(iv.pid)]) {
    if (a.inc >= iv.inc && iv.sii > a.sii) return true;
  }
  return false;
}

void LiveAudit::watermark_locked(const IntervalId& iv,
                                 const std::string& witness) {
  if (iv.pid < 0 || iv.pid >= n_) return;  // environment
  Watermark& wm = watermarks_[static_cast<size_t>(iv.pid)][iv.inc];
  if (iv.sii > wm.max_sii) {
    wm.max_sii = iv.sii;
    wm.witness = witness;
  }
}

void LiveAudit::fold_locked(const ProtocolEvent& site, const IntervalId& root,
                            const std::string& witness) {
  // Iterative DFS over intervals no earlier commit has folded. Every newly
  // visited interval is dead-checked against the announcements so far and
  // watermarked against the announcements still to come; the folded memo
  // makes total closure work linear in intervals, not commits x intervals.
  std::vector<IntervalId> stack{root};
  while (!stack.empty()) {
    IntervalId iv = stack.back();
    stack.pop_back();
    if (iv.pid == kEnvironment) continue;
    if (!folded_.emplace(iv, witness).second) continue;
    if (is_dead_locked(iv)) {
      violate(site, "commit " + witness +
                        " depends on rolled-back interval " + interval_str(iv));
    }
    watermark_locked(iv, witness);
    auto pit = parents_.find(iv);
    if (pit != parents_.end()) {
      for (const IntervalId& parent : pit->second) stack.push_back(parent);
    }
  }
}

void LiveAudit::on_event(const ProtocolEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  ++events_;
  if (e.pid < 0 || e.pid >= n_) return;  // not auditable; parser rejects these
  const size_t p = static_cast<size_t>(e.pid);
  if (e.t < prev_t_[p]) {
    violate(e, "per-process timestamps regressed (" +
                   std::string(event_kind_name(e.kind)) + ")");
  }
  prev_t_[p] = e.t;

  switch (e.kind) {
    case EventKind::kDeliver: {
      IntervalId iv{e.pid, e.at.inc, e.at.sii};
      if (parents_.count(iv) != 0) {
        violate(e, "state interval " + interval_str(iv) + " created twice");
        break;
      }
      std::vector<IntervalId> ps;
      if (cur_[p]) ps.push_back(IntervalId{e.pid, cur_[p]->inc, cur_[p]->sii});
      if (e.ref.pid != kEnvironment) ps.push_back(e.ref);
      // If a commit already folded this interval as a leaf (its creation
      // drained after the commit), resume the fold through the parent edges
      // that just materialized.
      auto fit = folded_.find(iv);
      if (fit != folded_.end()) {
        const std::string witness = fit->second;
        for (const IntervalId& parent : ps) fold_locked(e, parent, witness);
      }
      parents_.emplace(iv, std::move(ps));
      cur_[p] = e.at;
      last_chain_[p] = e.kind;
      break;
    }
    case EventKind::kIncarnationBump: {
      // Same bookkeeping rule as the batch audit: a bump with no announced
      // (or at least locally recorded) cause means peers could never have
      // orphan-detected against the lost intervals.
      if (last_chain_[p] != EventKind::kRollback &&
          last_chain_[p] != EventKind::kFailureAnnounce) {
        violate(e, "incarnation bump to (" + std::to_string(e.at.inc) + "," +
                       std::to_string(e.at.sii) +
                       ") without a preceding rollback/failure announcement");
      }
      IntervalId iv{e.pid, e.at.inc, e.at.sii};
      if (parents_.count(iv) != 0) {
        violate(e, "state interval " + interval_str(iv) + " created twice");
      } else {
        std::vector<IntervalId> ps;
        if (cur_[p])
          ps.push_back(IntervalId{e.pid, cur_[p]->inc, cur_[p]->sii});
        auto fit = folded_.find(iv);
        if (fit != folded_.end()) {
          const std::string witness = fit->second;
          for (const IntervalId& parent : ps) fold_locked(e, parent, witness);
        }
        parents_.emplace(iv, std::move(ps));
      }
      cur_[p] = e.at;
      last_chain_[p] = e.kind;
      break;
    }
    case EventKind::kRollback:
      ++rollbacks_;
      cur_[p] = e.at;  // restored position
      last_chain_[p] = e.kind;
      break;
    case EventKind::kFailureAnnounce: {
      ++announcements_;
      announced_[p].push_back(e.ended);
      cur_[p] = e.at;
      last_chain_[p] = e.kind;
      // The commit-then-announce direction: any incarnation x <= x' whose
      // committed watermark exceeds s is a committed output that this
      // announcement (s, x') just orphaned. The watermark's witness is the
      // earliest commit that depended on the maximal interval, so the
      // citation names a provably orphaned output.
      for (const auto& [inc, wm] : watermarks_[p]) {
        if (inc <= e.ended.inc && wm.max_sii > e.ended.sii) {
          violate(e, "failure announcement (" + std::to_string(e.ended.inc) +
                         "," + std::to_string(e.ended.sii) + ") of P" +
                         std::to_string(e.pid) +
                         " orphans already-committed output: commit " +
                         wm.witness + " depended on " +
                         interval_str(IntervalId{e.pid, inc, wm.max_sii}));
          break;
        }
      }
      break;
    }
    case EventKind::kBufferRelease: {
      ++releases_checked_;
      // Theorem 4: at most K processes' failures can revoke a released
      // message.
      if (e.k_limit >= 0 && e.k_reached > e.k_limit) {
        violate(e, "release of msg " + msg_str(e.msg) + " with " +
                       std::to_string(e.k_reached) +
                       " live entries > K=" + std::to_string(e.k_limit));
      }
      if (e.k_reached != e.tdv.non_null_count()) {
        violate(e, "release k_reached=" + std::to_string(e.k_reached) +
                       " disagrees with recorded vector (" +
                       std::to_string(e.tdv.non_null_count()) +
                       " non-NULL entries)");
      }
      break;
    }
    case EventKind::kBufferHold:
      // A send-side hold is only justified while over the bound.
      if (!e.recv_side && e.k_limit >= 0 && e.k_reached >= 0 &&
          e.k_reached <= e.k_limit) {
        violate(e, "send buffer held msg " + msg_str(e.msg) + " at " +
                       std::to_string(e.k_reached) +
                       " live entries, within K=" + std::to_string(e.k_limit));
      }
      break;
    case EventKind::kOutputCommit: {
      ++commits_checked_;
      distinct_outputs_.insert(e.msg);
      // Announce-then-commit direction: the recorded vector against the
      // announcements seen so far...
      e.tdv.for_each([&](ProcessId j, const Entry& d) {
        IntervalId iv{j, d.inc, d.sii};
        if (is_dead_locked(iv)) {
          violate(e, "output " + msg_str(e.msg) +
                         " committed with dead dependency " + interval_str(iv));
        }
        // ...and the watermark so a later announcement can convict this
        // commit even if iv never appears in the reconstructed graph.
        watermark_locked(iv, format_live_event_id(e));
      });
      // Transitive closure from the committing interval, shared via folded_.
      fold_locked(e, e.ref, format_live_event_id(e));
      break;
    }
    case EventKind::kRecorderDrop:
      dropped_events_ += static_cast<uint64_t>(e.undone);
      break;
    case EventKind::kSend:
    case EventKind::kCheckpoint:
    case EventKind::kRetransmit:
    case EventKind::kStorageFlush:
    case EventKind::kStorageRecover:
    case EventKind::kProgressNotify:
      break;
  }
}

bool LiveAudit::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.empty();
}

size_t LiveAudit::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.size();
}

std::string LiveAudit::first_violation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.empty() ? std::string() : violations_.front();
}

size_t LiveAudit::events_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

AuditReport LiveAudit::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  AuditReport rep;
  rep.violations = violations_;
  rep.events = events_;
  rep.intervals = parents_.size();
  rep.commits_checked = commits_checked_;
  rep.distinct_outputs = distinct_outputs_.size();
  rep.releases_checked = releases_checked_;
  rep.announcements = announcements_;
  rep.rollbacks = rollbacks_;
  rep.dropped_events = dropped_events_;
  for (const auto& [iv, ps] : parents_) {
    if (is_dead_locked(iv)) ++rep.dead_intervals;
  }
  return rep;
}

}  // namespace koptlog
