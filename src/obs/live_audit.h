// LiveAudit — the trace audit (obs/audit.h) restated as an online,
// incremental check: events are folded in one at a time as they stream out
// of the ring recorders (or out of a growing JSONL file), and the first
// violation is flagged the moment the contradicting event arrives, citing
// the offending event's stable id "P<pid>#<seq>" (per-process emission
// sequence — stable across merges, unlike a file line number).
//
// Same invariants as audit_trace, reformulated so nothing needs the whole
// trace up front:
//  * Dead-interval predicate (Theorem 1): announcements accumulate per
//    process; every committed dependency is checked against the
//    announcements seen *so far* the moment it commits.
//  * Orphan-freedom of committed output (Theorems 1–3), both directions in
//    time. Commit-then-announce — the genuinely dangerous direction, where
//    an output escapes before the failure that orphans it is announced — is
//    caught by commit-closure *watermarks*: when a commit's transitive
//    closure is walked, every interval in it is folded into a per-process,
//    per-incarnation high-water mark (max sii committed against, plus the
//    witnessing commit's event id). A later failure_announce (s,x') need
//    only compare against the watermark: any folded incarnation x <= x'
//    with watermark sii > s proves an already-committed output depended on
//    a now-dead interval. Closure work is shared across commits via a
//    folded-interval memo, so each interval is walked once per run, not
//    once per commit. A commit may also drain *before* the deliver that
//    creates one of its ancestor intervals (cross-process order is free):
//    the fold then stops at the not-yet-created interval, and resumes from
//    it — under the original commit's witness — the moment its creation
//    event materializes the missing parent edges.
//  * K bound (Theorem 4) and spurious send-side holds: stateless per-event
//    checks, identical to the batch audit.
//  * Incarnation-bump accounting, per-process timestamp monotonicity,
//    duplicate interval creation: per-process running state.
//
// Ordering contract: per-process event order must match emission order (the
// ring drain and the JSONL file both guarantee this); interleaving *across*
// processes is free — every check above is either process-local or
// commutative in cross-process order, which is exactly what makes the audit
// safe to run against a collector thread's arbitrary drain schedule.
//
// Memory: the parents graph and folded-set grow with the number of state
// intervals in the run (like the batch audit's); the recorders stay bounded,
// the auditor does not. See DESIGN.md §6.4.
//
// Thread safety: internally mutexed; on_event() is single-caller (the
// collector), report()/ok() may race with it from other threads.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/entry.h"
#include "obs/audit.h"
#include "obs/event.h"

namespace koptlog {

class LiveAudit {
 public:
  explicit LiveAudit(int n);

  /// Fold one event in. Events of the same process must arrive in emission
  /// (seq) order; cross-process interleaving is unconstrained.
  void on_event(const ProtocolEvent& e);

  bool ok() const;
  size_t violation_count() const;
  /// "" while ok(); otherwise "P<pid>#<seq> t=<t>: <what>".
  std::string first_violation() const;
  size_t events_seen() const;

  /// Snapshot of the running verdict in the batch audit's report shape
  /// (dead_intervals is recomputed on each call).
  AuditReport report() const;

 private:
  struct Watermark {
    int64_t max_sii = -1;
    std::string witness;  ///< event id of the commit that set max_sii
  };

  void violate(const ProtocolEvent& e, const std::string& what);
  bool is_dead_locked(const IntervalId& iv) const;
  /// Walk the commit closure from `root` on behalf of committed output
  /// `witness`, dead-checking and watermarking every interval not already
  /// folded. `site` is the event being processed (the commit itself, or the
  /// later deliver/bump that materialized a missing edge) — violations are
  /// cited against it.
  void fold_locked(const ProtocolEvent& site, const IntervalId& root,
                   const std::string& witness);
  void watermark_locked(const IntervalId& iv, const std::string& witness);

  mutable std::mutex mu_;
  const int n_;

  // Per-process running state (indexed by pid).
  std::vector<std::vector<Entry>> announced_;
  std::vector<OptEntry> cur_;
  std::vector<std::optional<EventKind>> last_chain_;
  std::vector<SimTime> prev_t_;
  /// pid -> incarnation -> highest sii any committed output depended on.
  std::vector<std::map<Incarnation, Watermark>> watermarks_;

  // Global interval graph, shared across commits.
  std::unordered_map<IntervalId, std::vector<IntervalId>, IntervalIdHash>
      parents_;
  /// Intervals some committed output transitively depends on, mapped to the
  /// witnessing commit's event id (the first commit to reach them).
  std::unordered_map<IntervalId, std::string, IntervalIdHash> folded_;

  // Report counters.
  std::vector<std::string> violations_;
  size_t events_ = 0;
  size_t commits_checked_ = 0;
  size_t releases_checked_ = 0;
  size_t announcements_ = 0;
  size_t rollbacks_ = 0;
  uint64_t dropped_events_ = 0;
  std::set<MsgId> distinct_outputs_;
};

/// The stable streaming event id: "P<pid>#<seq>".
std::string format_live_event_id(const ProtocolEvent& e);

}  // namespace koptlog
