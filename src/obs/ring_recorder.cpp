#include "obs/ring_recorder.h"

namespace koptlog {

namespace {
size_t round_up_pow2(size_t v) {
  size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

RingRecorder::RingRecorder(ProcessId pid, size_t capacity)
    : EventRecorder(pid), buf_(round_up_pow2(capacity < 2 ? 2 : capacity)) {
  mask_ = buf_.size() - 1;
}

bool RingRecorder::try_append(ProtocolEvent&& e) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const uint64_t occ = head - tail;
  if (occ >= buf_.size()) return false;
  buf_[static_cast<size_t>(head & mask_)] = std::move(e);
  head_.store(head + 1, std::memory_order_release);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (occ + 1 > max_occupancy_.load(std::memory_order_relaxed))
    max_occupancy_.store(occ + 1, std::memory_order_relaxed);
  return true;
}

void RingRecorder::record(ProtocolEvent e) {
  if (pending_drops_ > 0) {
    // The gap marker needs a slot of its own plus one for `e` (so it stays
    // adjacent to the gap it describes); it rides at the incoming event's
    // timestamp so per-process time stays non-decreasing.
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail + 2 <= buf_.size()) {
      ProtocolEvent gap;
      gap.kind = EventKind::kRecorderDrop;
      gap.t = e.t;
      gap.at = e.at;
      gap.undone = static_cast<int64_t>(pending_drops_);
      stamp(gap);
      pending_drops_ = 0;
      bool ok = try_append(std::move(gap));
      (void)ok;  // two free slots were just checked
    }
  }
  stamp(e);
  if (pending_drops_ == 0 && try_append(std::move(e))) return;
  ++pending_drops_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

void RingRecorder::push(ProtocolEvent e) { record(std::move(e)); }

void RingRecorder::snapshot(std::vector<ProtocolEvent>& out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  for (uint64_t i = tail_.load(std::memory_order_acquire); i != head; ++i) {
    out.push_back(buf_[static_cast<size_t>(i & mask_)]);
  }
}

void RingRecorder::clear() {
  EventRecorder::clear();
  for (ProtocolEvent& slot : buf_) slot = ProtocolEvent{};
  tail_.store(head_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  accepted_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  max_occupancy_.store(0, std::memory_order_relaxed);
  pending_drops_ = 0;
}

}  // namespace koptlog
