// RingRecorder — bounded single-producer/single-consumer event recorder.
//
// The producer is the one thread that hosts the owning process (a shard
// worker on the threaded backend, the simulator thread on the deterministic
// one); the consumer is the collector thread (obs/collector.h). record()
// never blocks and never allocates past the fixed ring: when the consumer
// falls behind, the incoming event is dropped and counted, and the next
// successful append is preceded by a synthesized kRecorderDrop marker
// carrying the loss count — the stream itself says where its gaps are, so a
// post-hoc audit of the drained JSONL knows its coverage.
//
// Memory is strictly capacity x sizeof(slot) per process: drained slots are
// reset to a default ProtocolEvent so DepVector payloads are returned to the
// allocator instead of lingering until the next overwrite.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/event_recorder.h"

namespace koptlog {

class RingRecorder final : public EventRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 2).
  RingRecorder(ProcessId pid, size_t capacity);

  size_t capacity() const { return buf_.size(); }

  /// Producer side: append, or drop-and-count on overflow. After drops, the
  /// next append is preceded by a kRecorderDrop marker (when two slots are
  /// free — the marker stays adjacent to the gap it describes).
  void record(ProtocolEvent e) override;

  /// Consumer side: pop up to `max` events in emission order into `fn`.
  /// Returns the number of events consumed. Safe against a concurrent
  /// producer; must only be called from one consumer thread.
  template <typename Fn>
  size_t drain(size_t max, Fn&& fn) {
    const uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t consumed = 0;
    while (tail != head && consumed < max) {
      ProtocolEvent& slot = buf_[static_cast<size_t>(tail & mask_)];
      fn(static_cast<const ProtocolEvent&>(slot));
      slot = ProtocolEvent{};  // release DepVector storage now, not later
      ++tail;
      ++consumed;
      // Publish per event, not per batch: freed slots become visible to the
      // producer immediately, shrinking the overflow window while a large
      // batch is mid-drain.
      tail_.store(tail, std::memory_order_release);
    }
    return consumed;
  }

  /// Events currently buffered (approximate under concurrency).
  size_t occupancy() const {
    return static_cast<size_t>(head_.load(std::memory_order_acquire) -
                               tail_.load(std::memory_order_acquire));
  }
  /// High-water mark of occupancy, maintained by the producer.
  size_t max_occupancy() const {
    return max_occupancy_.load(std::memory_order_relaxed);
  }
  /// Events lost to overflow so far.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Events accepted into the ring (monotone; not the current occupancy).
  size_t size() const override {
    return static_cast<size_t>(accepted_.load(std::memory_order_relaxed));
  }

  /// Residual (undrained) window, oldest first. Only safe when neither the
  /// producer nor the consumer is running.
  void snapshot(std::vector<ProtocolEvent>& out) const override;

  void clear() override;

 protected:
  void push(ProtocolEvent e) override;

 private:
  /// True if `e` was appended; false when the ring is full.
  bool try_append(ProtocolEvent&& e);

  std::vector<ProtocolEvent> buf_;
  uint64_t mask_ = 0;
  std::atomic<uint64_t> head_{0};  ///< next write index (producer)
  std::atomic<uint64_t> tail_{0};  ///< next read index (consumer)
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> max_occupancy_{0};
  /// Drops since the last successful append; producer-thread only. The next
  /// append converts it into a kRecorderDrop marker in-stream.
  uint64_t pending_drops_ = 0;
};

}  // namespace koptlog
