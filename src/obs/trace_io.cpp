#include "obs/trace_io.h"

#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

namespace koptlog {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_tdv(std::string& out, const DepVector& tdv) {
  out += ",\"tdv\":[";
  bool first = true;
  tdv.for_each([&](ProcessId j, const Entry& e) {
    if (!first) out += ',';
    first = false;
    out += '[';
    out += std::to_string(j);
    out += ',';
    out += std::to_string(e.inc);
    out += ',';
    out += std::to_string(e.sii);
    out += ']';
  });
  out += ']';
}

void append_msg(std::string& out, const MsgId& id) {
  out += ",\"msg\":[";
  out += std::to_string(id.src);
  out += ',';
  out += std::to_string(id.seq);
  out += ']';
}

void append_ref(std::string& out, const IntervalId& ref) {
  out += ",\"ref\":[";
  out += std::to_string(ref.pid);
  out += ',';
  out += std::to_string(ref.inc);
  out += ',';
  out += std::to_string(ref.sii);
  out += ']';
}

void append_peer(std::string& out, ProcessId peer) {
  out += ",\"peer\":";
  out += std::to_string(peer);
}

void append_entry(std::string& out, const char* key, const Entry& e) {
  out += ",\"";
  out += key;
  out += "\":[";
  out += std::to_string(e.inc);
  out += ',';
  out += std::to_string(e.sii);
  out += ']';
}

}  // namespace

std::string event_to_json(const ProtocolEvent& e) {
  std::string out;
  out.reserve(160);
  out += "{\"kind\":\"";
  out += event_kind_name(e.kind);
  out += "\",\"t\":";
  out += std::to_string(e.t);
  out += ",\"p\":";
  out += std::to_string(e.pid);
  out += ",\"seq\":";
  out += std::to_string(e.seq);
  append_entry(out, "at", e.at);
  switch (e.kind) {
    case EventKind::kSend:
      append_msg(out, e.msg);
      append_peer(out, e.peer);
      append_ref(out, e.ref);
      append_tdv(out, e.tdv);
      out += ",\"klim\":";
      out += std::to_string(e.k_limit);
      break;
    case EventKind::kDeliver:
      append_msg(out, e.msg);
      append_peer(out, e.peer);
      append_ref(out, e.ref);
      append_tdv(out, e.tdv);
      break;
    case EventKind::kBufferHold:
      append_msg(out, e.msg);
      out += ",\"queue\":\"";
      out += e.recv_side ? "recv" : "send";
      out += '"';
      out += ",\"klim\":";
      out += std::to_string(e.k_limit);
      out += ",\"krea\":";
      out += std::to_string(e.k_reached);
      break;
    case EventKind::kBufferRelease:
      append_msg(out, e.msg);
      append_peer(out, e.peer);
      append_ref(out, e.ref);
      append_tdv(out, e.tdv);
      out += ",\"klim\":";
      out += std::to_string(e.k_limit);
      out += ",\"krea\":";
      out += std::to_string(e.k_reached);
      break;
    case EventKind::kCheckpoint:
      append_tdv(out, e.tdv);
      break;
    case EventKind::kFailureAnnounce:
      append_entry(out, "ended", e.ended);
      out += ",\"fail\":";
      out += e.from_failure ? "true" : "false";
      break;
    case EventKind::kRollback:
      append_entry(out, "ended", e.ended);
      out += ",\"undone\":";
      out += std::to_string(e.undone);
      break;
    case EventKind::kOutputCommit:
      append_msg(out, e.msg);
      append_ref(out, e.ref);
      append_tdv(out, e.tdv);
      break;
    case EventKind::kRetransmit:
      append_msg(out, e.msg);
      append_peer(out, e.peer);
      break;
    case EventKind::kIncarnationBump:
      break;
    case EventKind::kStorageFlush:
    case EventKind::kStorageRecover:
    case EventKind::kProgressNotify:
      out += ",\"lsn\":";
      out += std::to_string(e.lsn);
      break;
    case EventKind::kRecorderDrop:
      out += ",\"lost\":";
      out += std::to_string(e.undone);
      break;
  }
  out += '}';
  return out;
}

void write_trace_jsonl(int n, const std::vector<ProtocolEvent>& events,
                       std::ostream& os) {
  os << "{\"kind\":\"meta\",\"version\":1,\"n\":" << n << "}\n";
  for (const ProtocolEvent& e : events) os << event_to_json(e) << '\n';
}

void write_trace_jsonl(const Recording& rec, std::ostream& os) {
  write_trace_jsonl(rec.n(), rec.merged(), os);
}

bool write_trace_jsonl_file(const Recording& rec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_jsonl(rec, out);
  return out.good();
}

// ---------------------------------------------------------------------------
// Reading: built on the shared JSON parser in obs/json.h
// ---------------------------------------------------------------------------

namespace {

// ---- field extraction with validation ----

bool as_int64(const JsonValue* v, int64_t& out) {
  return json_as_int64(v, out);
}

// Health sidecar lines (obs/health/health_io.h) may be interleaved with a
// trace when both are pointed at the same file; they are runtime telemetry,
// not protocol events, so the trace readers skip them silently.
bool is_health_line(const JsonValue& v) {
  const JsonValue* kind = v.find("kind");
  return kind && kind->type == JsonValue::Type::kStr &&
         (kind->str == "health" || kind->str == "health_meta");
}

bool as_entry(const JsonValue* v, Entry& out) {
  if (!v || v->type != JsonValue::Type::kArr || v->arr.size() != 2)
    return false;
  int64_t inc = 0, sii = 0;
  if (!as_int64(&v->arr[0], inc) || !as_int64(&v->arr[1], sii)) return false;
  out.inc = static_cast<Incarnation>(inc);
  out.sii = sii;
  return true;
}

bool as_interval(const JsonValue* v, IntervalId& out) {
  if (!v || v->type != JsonValue::Type::kArr || v->arr.size() != 3)
    return false;
  int64_t pid = 0, inc = 0, sii = 0;
  if (!as_int64(&v->arr[0], pid) || !as_int64(&v->arr[1], inc) ||
      !as_int64(&v->arr[2], sii))
    return false;
  out.pid = static_cast<ProcessId>(pid);
  out.inc = static_cast<Incarnation>(inc);
  out.sii = sii;
  return true;
}

bool as_msg(const JsonValue* v, MsgId& out) {
  if (!v || v->type != JsonValue::Type::kArr || v->arr.size() != 2)
    return false;
  int64_t src = 0, seq = 0;
  if (!as_int64(&v->arr[0], src) || !as_int64(&v->arr[1], seq)) return false;
  out.src = static_cast<ProcessId>(src);
  out.seq = static_cast<SeqNo>(seq);
  return true;
}

bool as_tdv(const JsonValue* v, int n, DepVector& out, std::string& why) {
  if (!v || v->type != JsonValue::Type::kArr) {
    why = "tdv must be an array of [pid,inc,sii] triples";
    return false;
  }
  out = DepVector(n);
  for (const JsonValue& item : v->arr) {
    IntervalId iv;
    if (!as_interval(&item, iv)) {
      why = "malformed tdv entry";
      return false;
    }
    if (iv.pid < 0 || iv.pid >= n) {
      why = "tdv entry pid out of range";
      return false;
    }
    out.set(iv.pid, Entry{iv.inc, iv.sii});
  }
  return true;
}

/// Builds one event from a parsed line; returns false with `why` set on any
/// schema violation.
bool event_from_json(const JsonValue& obj, int n, ProtocolEvent& e,
                     std::string& why) {
  const JsonValue* kind_v = obj.find("kind");
  if (!kind_v || kind_v->type != JsonValue::Type::kStr) {
    why = "missing or non-string \"kind\"";
    return false;
  }
  std::optional<EventKind> kind = event_kind_from_name(kind_v->str);
  if (!kind) {
    why = "unknown event kind \"" + kind_v->str + "\"";
    return false;
  }
  e.kind = *kind;

  int64_t t = 0, p = 0, seq = 0;
  if (!as_int64(obj.find("t"), t)) {
    why = "missing or malformed \"t\"";
    return false;
  }
  if (!as_int64(obj.find("p"), p) || p < 0 || p >= n) {
    why = "missing or out-of-range \"p\"";
    return false;
  }
  if (!as_int64(obj.find("seq"), seq) || seq < 0) {
    why = "missing or malformed \"seq\"";
    return false;
  }
  if (!as_entry(obj.find("at"), e.at)) {
    why = "missing or malformed \"at\"";
    return false;
  }
  e.t = t;
  e.pid = static_cast<ProcessId>(p);
  e.seq = static_cast<uint64_t>(seq);

  auto need_msg = [&] {
    if (as_msg(obj.find("msg"), e.msg)) return true;
    why = "missing or malformed \"msg\"";
    return false;
  };
  auto need_peer = [&] {
    int64_t peer = 0;
    if (!as_int64(obj.find("peer"), peer) || peer < -1 || peer >= n) {
      why = "missing or out-of-range \"peer\"";
      return false;
    }
    e.peer = static_cast<ProcessId>(peer);
    return true;
  };
  auto need_ref = [&] {
    if (!as_interval(obj.find("ref"), e.ref)) {
      why = "missing or malformed \"ref\"";
      return false;
    }
    if (e.ref.pid != kEnvironment && (e.ref.pid < 0 || e.ref.pid >= n)) {
      why = "\"ref\" pid out of range";
      return false;
    }
    return true;
  };
  auto need_tdv = [&] { return as_tdv(obj.find("tdv"), n, e.tdv, why); };
  auto need_int = [&](const char* key, auto& out) {
    int64_t v = 0;
    if (!as_int64(obj.find(key), v)) {
      why = std::string("missing or malformed \"") + key + "\"";
      return false;
    }
    out = static_cast<std::remove_reference_t<decltype(out)>>(v);
    return true;
  };
  auto need_ended = [&] {
    if (as_entry(obj.find("ended"), e.ended)) return true;
    why = "missing or malformed \"ended\"";
    return false;
  };

  switch (e.kind) {
    case EventKind::kSend:
      return need_msg() && need_peer() && need_ref() && need_tdv() &&
             need_int("klim", e.k_limit);
    case EventKind::kDeliver:
      return need_msg() && need_peer() && need_ref() && need_tdv();
    case EventKind::kBufferHold: {
      if (!need_msg() || !need_int("klim", e.k_limit) ||
          !need_int("krea", e.k_reached))
        return false;
      const JsonValue* q = obj.find("queue");
      if (!q || q->type != JsonValue::Type::kStr ||
          (q->str != "send" && q->str != "recv")) {
        why = "missing or malformed \"queue\" (want \"send\"|\"recv\")";
        return false;
      }
      e.recv_side = q->str == "recv";
      return true;
    }
    case EventKind::kBufferRelease:
      return need_msg() && need_peer() && need_ref() && need_tdv() &&
             need_int("klim", e.k_limit) && need_int("krea", e.k_reached);
    case EventKind::kCheckpoint:
      return need_tdv();
    case EventKind::kFailureAnnounce: {
      if (!need_ended()) return false;
      const JsonValue* f = obj.find("fail");
      if (!f || f->type != JsonValue::Type::kBool) {
        why = "missing or non-boolean \"fail\"";
        return false;
      }
      e.from_failure = f->b;
      return true;
    }
    case EventKind::kRollback:
      return need_ended() && need_int("undone", e.undone);
    case EventKind::kOutputCommit:
      return need_msg() && need_ref() && need_tdv();
    case EventKind::kRetransmit:
      return need_msg() && need_peer();
    case EventKind::kIncarnationBump:
      return true;
    case EventKind::kStorageFlush:
    case EventKind::kStorageRecover:
    case EventKind::kProgressNotify:
      return need_int("lsn", e.lsn);
    case EventKind::kRecorderDrop:
      return need_int("lost", e.undone);
  }
  why = "unhandled event kind";
  return false;
}

}  // namespace

Trace read_trace_jsonl(std::istream& is, std::vector<std::string>& errors) {
  Trace trace;
  std::string line;
  size_t lineno = 0;
  bool have_meta = false;
  auto err = [&](const std::string& what) {
    errors.push_back("line " + std::to_string(lineno) + ": " + what);
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    std::string parse_err;
    if (!JsonParser(line).parse(v, parse_err)) {
      err(parse_err);
      continue;
    }
    if (v.type != JsonValue::Type::kObj) {
      err("line is not a JSON object");
      continue;
    }
    if (is_health_line(v)) continue;
    if (!have_meta) {
      const JsonValue* kind = v.find("kind");
      if (!kind || kind->type != JsonValue::Type::kStr ||
          kind->str != "meta") {
        err("first line must be the meta header {\"kind\":\"meta\",...}");
        // Keep parsing with an unknown n so later errors still surface.
        trace.n = 1 << 20;
        have_meta = true;
        continue;
      }
      int64_t version = 0, n = 0;
      if (!as_int64(v.find("version"), version) || version != 1) {
        err("unsupported or missing trace version (want 1)");
      }
      if (!as_int64(v.find("n"), n) || n < 1) {
        err("meta header missing a positive \"n\"");
        n = 1 << 20;
      }
      trace.n = static_cast<int>(n);
      have_meta = true;
      continue;
    }
    ProtocolEvent e;
    std::string why;
    if (!event_from_json(v, trace.n, e, why)) {
      err(why);
      continue;
    }
    trace.events.push_back(std::move(e));
  }
  if (!have_meta) {
    errors.push_back("empty trace: no meta header");
  }
  return trace;
}

// ---------------------------------------------------------------------------
// StreamingTraceParser
// ---------------------------------------------------------------------------

StreamingTraceParser::StreamingTraceParser(EventFn on_event)
    : on_event_(std::move(on_event)) {}

StreamingTraceParser::~StreamingTraceParser() = default;

void StreamingTraceParser::parse_line(std::string_view line) {
  ++lineno_;
  if (line.empty()) return;
  auto err = [&](const std::string& what) {
    errors_.push_back("line " + std::to_string(lineno_) + ": " + what);
  };
  JsonValue v;
  std::string parse_err;
  if (!JsonParser(line).parse(v, parse_err)) {
    err(parse_err);
    return;
  }
  if (v.type != JsonValue::Type::kObj) {
    err("line is not a JSON object");
    return;
  }
  if (is_health_line(v)) return;
  if (!have_meta_) {
    const JsonValue* kind = v.find("kind");
    if (!kind || kind->type != JsonValue::Type::kStr || kind->str != "meta") {
      err("first line must be the meta header {\"kind\":\"meta\",...}");
      n_ = 1 << 20;  // keep parsing so later errors still surface
      have_meta_ = true;
      return;
    }
    int64_t version = 0, n = 0;
    if (!as_int64(v.find("version"), version) || version != 1) {
      err("unsupported or missing trace version (want 1)");
    }
    if (!as_int64(v.find("n"), n) || n < 1) {
      err("meta header missing a positive \"n\"");
      n = 1 << 20;
    }
    n_ = static_cast<int>(n);
    have_meta_ = true;
    return;
  }
  ProtocolEvent e;
  std::string why;
  if (!event_from_json(v, n_, e, why)) {
    err(why);
    return;
  }
  ++events_parsed_;
  if (on_event_) on_event_(e);
}

void StreamingTraceParser::feed(std::string_view chunk) {
  if (finished_) return;
  buf_.append(chunk.data(), chunk.size());
  size_t start = 0;
  for (size_t nl = buf_.find('\n', start); nl != std::string::npos;
       nl = buf_.find('\n', start)) {
    size_t len = nl - start;
    // Tolerate CRLF writers.
    if (len > 0 && buf_[start + len - 1] == '\r') --len;
    parse_line(std::string_view(buf_).substr(start, len));
    start = nl + 1;
  }
  buf_.erase(0, start);
}

void StreamingTraceParser::finish() {
  if (finished_) return;
  finished_ = true;
  if (buf_.empty()) return;
  // A complete object missing only its newline is accepted; anything else is
  // a torn tail (crashed or still-running writer), reported out of band.
  const size_t errors_before = errors_.size();
  const size_t parsed_before = events_parsed_;
  parse_line(buf_);
  if (errors_.size() != errors_before) {
    errors_.resize(errors_before);  // the fragment is torn, not malformed
    torn_ = std::move(buf_);
  } else if (events_parsed_ == parsed_before && !have_meta_) {
    torn_ = std::move(buf_);
  }
  buf_.clear();
}

}  // namespace koptlog
