// JSONL trace serialization and strict schema validation.
//
// A trace file is one JSON object per line. The first line is a meta
// header; every other line is one ProtocolEvent:
//
//   {"kind":"meta","version":1,"n":4}
//   {"kind":"send","t":0,"p":1,"seq":3,"at":[0,4],"msg":[1,2],"peer":3,
//    "ref":[1,0,4],"tdv":[[0,1,3],[1,0,4]],"klim":4}
//
// Common fields (every event line): kind, t (sim µs), p (process id),
// seq (per-process emission counter), at ([inc,sii] the event is
// attributed to). Encodings: msg = [src,seq]; ref = [pid,inc,sii];
// ended = [inc,sii]; tdv = the non-NULL entries as [pid,inc,sii] triples
// (NULL omission, Theorem 2's wire format). Per-kind required fields:
//
//   send             msg, peer, ref, tdv, klim
//   deliver          msg, peer, ref, tdv
//   buffer_hold      msg, queue ("send"|"recv"), klim, krea
//   buffer_release   msg, peer, ref, tdv, klim, krea
//   checkpoint       tdv
//   failure_announce ended, fail (bool)
//   rollback         ended, undone
//   output_commit    msg, ref, tdv
//   retransmit       msg, peer
//   incarnation_bump (none)
//
// The reader is strict: unknown kinds, missing required fields, malformed
// encodings and out-of-range process ids are schema violations, reported
// per line. Unknown *extra* fields are tolerated (schema evolution).
// No external JSON dependency: the writer emits by hand, the reader is a
// minimal recursive-descent parser sufficient for this schema.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/event_recorder.h"

namespace koptlog {

/// A parsed trace: the meta header's process count plus the event stream
/// in file order (per-process substreams preserve emission order).
struct Trace {
  int n = 0;
  std::vector<ProtocolEvent> events;
};

/// Serialize one event as a single JSON line (no trailing newline).
std::string event_to_json(const ProtocolEvent& e);

void write_trace_jsonl(int n, const std::vector<ProtocolEvent>& events,
                       std::ostream& os);
void write_trace_jsonl(const Recording& rec, std::ostream& os);
/// Returns false (and writes nothing) if the file cannot be opened.
bool write_trace_jsonl_file(const Recording& rec, const std::string& path);

/// Parse and validate a JSONL trace. Schema violations are appended to
/// `errors` as "line N: ..." strings; lines that fail validation are
/// skipped, valid ones are kept, so a caller can both report every problem
/// and still audit the salvageable stream. A clean parse leaves `errors`
/// untouched.
Trace read_trace_jsonl(std::istream& is, std::vector<std::string>& errors);

/// JSON string escaping (shared by the exporters).
std::string json_escape(std::string_view s);

}  // namespace koptlog
