// JSONL trace serialization and strict schema validation.
//
// A trace file is one JSON object per line. The first line is a meta
// header; every other line is one ProtocolEvent:
//
//   {"kind":"meta","version":1,"n":4}
//   {"kind":"send","t":0,"p":1,"seq":3,"at":[0,4],"msg":[1,2],"peer":3,
//    "ref":[1,0,4],"tdv":[[0,1,3],[1,0,4]],"klim":4}
//
// Common fields (every event line): kind, t (sim µs), p (process id),
// seq (per-process emission counter), at ([inc,sii] the event is
// attributed to). Encodings: msg = [src,seq]; ref = [pid,inc,sii];
// ended = [inc,sii]; tdv = the non-NULL entries as [pid,inc,sii] triples
// (NULL omission, Theorem 2's wire format). Per-kind required fields:
//
//   send             msg, peer, ref, tdv, klim
//   deliver          msg, peer, ref, tdv
//   buffer_hold      msg, queue ("send"|"recv"), klim, krea
//   buffer_release   msg, peer, ref, tdv, klim, krea
//   checkpoint       tdv
//   failure_announce ended, fail (bool)
//   rollback         ended, undone
//   output_commit    msg, ref, tdv
//   retransmit       msg, peer
//   incarnation_bump (none)
//   storage_flush    lsn
//   storage_recover  lsn
//   progress_notify  lsn
//   recorder_drop    lost (events dropped by a saturated ring recorder)
//
// The reader is strict: unknown kinds, missing required fields, malformed
// encodings and out-of-range process ids are schema violations, reported
// per line. Unknown *extra* fields are tolerated (schema evolution).
// No external JSON dependency: the writer emits by hand, the reader is a
// minimal recursive-descent parser sufficient for this schema.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/event_recorder.h"

namespace koptlog {

/// A parsed trace: the meta header's process count plus the event stream
/// in file order (per-process substreams preserve emission order).
struct Trace {
  int n = 0;
  std::vector<ProtocolEvent> events;
};

/// Serialize one event as a single JSON line (no trailing newline).
std::string event_to_json(const ProtocolEvent& e);

void write_trace_jsonl(int n, const std::vector<ProtocolEvent>& events,
                       std::ostream& os);
void write_trace_jsonl(const Recording& rec, std::ostream& os);
/// Returns false (and writes nothing) if the file cannot be opened.
bool write_trace_jsonl_file(const Recording& rec, const std::string& path);

/// Parse and validate a JSONL trace. Schema violations are appended to
/// `errors` as "line N: ..." strings; lines that fail validation are
/// skipped, valid ones are kept, so a caller can both report every problem
/// and still audit the salvageable stream. A clean parse leaves `errors`
/// untouched.
Trace read_trace_jsonl(std::istream& is, std::vector<std::string>& errors);

/// JSON string escaping (shared by the exporters).
std::string json_escape(std::string_view s);

/// Incremental JSONL parser for traces that are still being written
/// (koptlog_audit --follow, live re-audit of a streamed file). Feed byte
/// chunks as they arrive; every complete line is validated and dispatched to
/// the callback immediately, in file order. Mid-file garbage is a schema
/// error like in read_trace_jsonl; an *unterminated final fragment* is not —
/// it is either a line still being appended (keep feeding) or a torn tail
/// from a crashed writer, which finish() reports separately so an auditor
/// can tolerate it without masking real violations.
class StreamingTraceParser {
 public:
  using EventFn = std::function<void(const ProtocolEvent&)>;

  explicit StreamingTraceParser(EventFn on_event);
  ~StreamingTraceParser();

  void feed(std::string_view chunk);

  /// Declare end of input. If a buffered unterminated fragment parses as a
  /// valid event it is accepted (writer just omitted the last newline);
  /// otherwise it is recorded as a torn tail, not a schema error.
  void finish();

  bool have_meta() const { return have_meta_; }
  /// Process count from the meta header (0 until it is seen).
  int n() const { return n_; }
  size_t events_parsed() const { return events_parsed_; }
  const std::vector<std::string>& errors() const { return errors_; }
  /// Non-empty after finish() iff the input ended mid-line.
  const std::string& torn_tail() const { return torn_; }
  /// Bytes currently buffered awaiting a newline.
  size_t pending_bytes() const { return buf_.size(); }

 private:
  void parse_line(std::string_view line);

  EventFn on_event_;
  std::string buf_;
  std::vector<std::string> errors_;
  std::string torn_;
  size_t lineno_ = 0;
  int n_ = 0;
  bool have_meta_ = false;
  bool finished_ = false;
  size_t events_parsed_ = 0;
};

}  // namespace koptlog
