#include "runtime/output_buffer.h"

#include <utility>

#include "core/oracle.h"
#include "obs/event_recorder.h"

namespace koptlog {

void OutputBuffer::check(
    const std::function<bool(ProcessId, const Entry&)>& stable) {
  std::vector<OutputRecord> kept;
  kept.reserve(items_.size());
  for (OutputRecord& rec : items_) {
    bool ready = true;
    // Collect the stable entries first: clear() mid-walk would invalidate
    // the sparse iteration.
    std::vector<std::pair<ProcessId, Entry>> now_stable;
    rec.tdv.for_each([&](ProcessId j, const Entry& e) {
      if (stable(j, e)) {
        now_stable.emplace_back(j, e);
      } else {
        ready = false;
      }
    });
    if (null_stable_entries_) {
      for (const auto& [j, e] : now_stable) {
        if (Oracle* orc = rt_.oracle())
          orc->on_entry_nulled(rt_.pid, j, e, rt_.now());
        rec.tdv.clear(j);
      }
    }
    if (ready) {
      if (EventRecorder* erec = rt_.recorder()) {
        ProtocolEvent e;
        e.kind = EventKind::kOutputCommit;
        e.t = rt_.now();
        e.at = rec.born_of.entry();
        e.tdv = rec.tdv;  // fully NULL at commit time in the 0-opt sense
        e.msg = rec.id;
        e.ref = rec.born_of;
        erec->record(std::move(e));
      }
      rt_.dispatch_at_idle([rt = &rt_, r = std::move(rec)] {
        rt->api.commit_output(r);
      });
    } else {
      kept.push_back(std::move(rec));
    }
  }
  items_ = std::move(kept);
}

size_t OutputBuffer::discard_if(
    const std::function<bool(const DepVector&)>& orphan,
    const std::function<void(const OutputRecord&)>& on_discard) {
  return std::erase_if(items_, [&](const OutputRecord& rec) {
    if (!orphan(rec.tdv)) return false;
    on_discard(rec);
    return true;
  });
}

}  // namespace koptlog
