// OutputBuffer — 0-optimistic output commit (paper §4.2: an output is a
// message to the outside world with K = 0). A record stays buffered until
// every interval it depends on is known stable, as judged by the hosting
// engine's stability predicate; with commit dependency tracking on, entries
// are NULLed as they pass the test, so "ready" means "all entries NULL".
// Commits reach the outside world once the process's busy window drains.
#pragma once

#include <functional>
#include <vector>

#include "core/output.h"
#include "runtime/runtime_services.h"

namespace koptlog {

class OutputBuffer {
 public:
  OutputBuffer(RuntimeServices& rt, bool null_stable_entries)
      : rt_(rt), null_stable_entries_(null_stable_entries) {}

  void push(OutputRecord rec) { items_.push_back(std::move(rec)); }

  /// Commit every record whose dependencies all satisfy `stable`. With
  /// Theorem 2 on, stable entries are NULLed (oracle-audited); in the
  /// Strom–Yemini/full-TDV configurations entries are never NULLed, so
  /// stability is re-tested against `stable` each time.
  void check(const std::function<bool(ProcessId, const Entry&)>& stable);

  /// Drop every buffered orphan, reporting each to `on_discard`.
  size_t discard_if(const std::function<bool(const DepVector&)>& orphan,
                    const std::function<void(const OutputRecord&)>& on_discard);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Crash: the buffer is volatile (replay re-emits the outputs).
  void clear() { items_.clear(); }

 private:
  RuntimeServices& rt_;
  bool null_stable_entries_;
  std::vector<OutputRecord> items_;
};

}  // namespace koptlog
