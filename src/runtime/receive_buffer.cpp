#include "runtime/receive_buffer.h"

#include <algorithm>

namespace koptlog {

bool ReceiveBuffer::buffered(const MsgId& id) const {
  return std::any_of(items_.begin(), items_.end(),
                     [&](const Buffered& b) { return b.msg.id == id; });
}

void ReceiveBuffer::drain_deliverable(
    const std::function<bool()>& active,
    const std::function<bool(const AppMsg&)>& orphan,
    const std::function<void(const AppMsg&)>& on_discard,
    const std::function<bool(const AppMsg&)>& deliverable,
    const std::function<void(Buffered&&)>& deliver) {
  bool progress = true;
  while (progress && active()) {
    progress = false;
    for (size_t i = 0; i < items_.size(); ++i) {
      // Announcements processed since arrival may have orphaned it.
      if (orphan(items_[i].msg)) {
        on_discard(items_[i].msg);
        items_.erase(items_.begin() + static_cast<ptrdiff_t>(i));
        progress = true;
        break;
      }
      if (deliverable(items_[i].msg)) {
        Buffered b = std::move(items_[i]);
        items_.erase(items_.begin() + static_cast<ptrdiff_t>(i));
        deliver(std::move(b));
        progress = true;
        break;
      }
    }
  }
}

size_t ReceiveBuffer::discard_if(
    const std::function<bool(const AppMsg&)>& orphan,
    const std::function<void(const AppMsg&)>& on_discard) {
  return std::erase_if(items_, [&](const Buffered& b) {
    if (!orphan(b.msg)) return false;
    on_discard(b.msg);
    return true;
  });
}

}  // namespace koptlog
