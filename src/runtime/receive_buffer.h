// ReceiveBuffer — buffered arrivals awaiting a deliverability decision,
// plus the receiver-side duplicate/ack bookkeeping every engine needs:
// which message ids have been delivered (recovery replay regenerates
// identical messages, so duplicates must be dropped by id), which delivered
// ids have stable — and therefore acknowledged — deliveries, and how far
// the stable log has been scanned for acks. All of it is volatile: a crash
// clears the lot and replay/restart rebuilds it.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "common/types.h"
#include "core/protocol_msg.h"

namespace koptlog {

class ReceiveBuffer {
 public:
  struct Buffered {
    AppMsg msg;
    SimTime arrived_at = 0;
  };

  void push(AppMsg msg, SimTime now) {
    items_.push_back(Buffered{std::move(msg), now});
  }

  /// Is a message with this id sitting in the buffer?
  bool buffered(const MsgId& id) const;

  /// Duplicate suppression: already delivered, or already buffered.
  bool seen(const MsgId& id) const {
    return delivered_ids_.count(id) != 0 || buffered(id);
  }

  /// Repeatedly scan the buffer while `active`: a buffered orphan is
  /// reported to `on_discard` and dropped; the first deliverable message is
  /// handed to `deliver` (removed first — delivery may re-enter the
  /// buffer). Each removal restarts the scan, since a delivery can make
  /// earlier-buffered messages deliverable (or orphaned).
  void drain_deliverable(const std::function<bool()>& active,
                         const std::function<bool(const AppMsg&)>& orphan,
                         const std::function<void(const AppMsg&)>& on_discard,
                         const std::function<bool(const AppMsg&)>& deliverable,
                         const std::function<void(Buffered&&)>& deliver);

  /// Drop every buffered message matching `orphan`, reporting each to
  /// `on_discard`. Returns how many were dropped.
  size_t discard_if(const std::function<bool(const AppMsg&)>& orphan,
                    const std::function<void(const AppMsg&)>& on_discard);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // ---- delivered-id bookkeeping ----
  bool delivered(const MsgId& id) const { return delivered_ids_.count(id) != 0; }
  void mark_delivered(const MsgId& id) { delivered_ids_.insert(id); }
  void unmark_delivered(const MsgId& id) { delivered_ids_.erase(id); }

  // ---- stability-deferred ack bookkeeping ----
  /// Ids whose delivery is stable (ack already sent); duplicates of these
  /// are re-acked in case the first ack was lost.
  bool acked(const MsgId& id) const { return acked_ids_.count(id) != 0; }
  void mark_acked(const MsgId& id) { acked_ids_.insert(id); }
  void unmark_acked(const MsgId& id) { acked_ids_.erase(id); }

  /// Log position up to which stable records have been scanned for acks.
  size_t acked_upto() const { return acked_upto_; }
  void set_acked_upto(size_t pos) { acked_upto_ = pos; }

  /// Crash: every volatile structure is lost.
  void clear() {
    items_.clear();
    delivered_ids_.clear();
    acked_ids_.clear();
    acked_upto_ = 0;
  }

 private:
  std::vector<Buffered> items_;
  std::set<MsgId> delivered_ids_;
  std::set<MsgId> acked_ids_;
  size_t acked_upto_ = 0;
};

}  // namespace koptlog
