#include "runtime/reliable_channel.h"

#include "obs/event_recorder.h"

namespace koptlog {

void ReliableChannel::retransmit(
    const std::function<bool(const AppMsg&)>& orphan) {
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    if (orphan(it->second)) {
      it = unacked_.erase(it);
      continue;
    }
    rt_.stats().inc("msgs.retransmitted");
    if (EventRecorder* rec = rt_.recorder()) {
      ProtocolEvent e;
      e.kind = EventKind::kRetransmit;
      e.t = rt_.now();
      e.at = it->second.born_of.entry();
      e.msg = it->second.id;
      e.peer = it->second.to;
      rec->record(std::move(e));
    }
    rt_.api.route_app_msg(it->second);
    ++it;
  }
}

void ReliableChannel::ack_stable_records() {
  size_t upto = rt_.storage.log().stable_count();
  recv_.set_acked_upto(std::max(recv_.acked_upto(), rt_.storage.log().base()));
  for (size_t i = recv_.acked_upto(); i < upto; ++i) {
    const AppMsg& m = rt_.storage.log().at(i).msg;
    rt_.storage.unpark(m.id);
    if (enabled_ && m.from != kEnvironment) {
      recv_.mark_acked(m.id);
      rt_.api.send_ack(rt_.pid, m.from, m.id);
    }
  }
  recv_.set_acked_upto(upto);
}

void ReliableChannel::ack_discarded(const AppMsg& m) {
  rt_.storage.unpark(m.id);
  if (enabled_ && m.from != kEnvironment) rt_.api.send_ack(rt_.pid, m.from, m.id);
}

void ReliableChannel::reack_duplicate(const AppMsg& m) {
  if (enabled_ && recv_.acked(m.id) && m.from != kEnvironment)
    rt_.api.send_ack(rt_.pid, m.from, m.id);
}

}  // namespace koptlog
