#include "runtime/replay_engine.h"

#include <algorithm>
#include <optional>

#include "core/oracle.h"

namespace koptlog {

std::vector<LogRecord> ReplayEngine::on_crash() {
  ++epoch_;
  rt_.exec.reset();
  rt_.stats().inc("crash.count");
  processed_announcements_.clear();
  // The backend drops its staged (unflushed) records and voids pending
  // flush completions — mirroring exactly the volatile suffix lost here.
  if (StorageBackend* b = rt_.storage.backend()) b->on_crash();
  return rt_.storage.log().lose_volatile();
}

void ReplayEngine::report_crash_to_oracle() {
  if (Oracle* orc = rt_.oracle()) {
    Sii surv = rt_.storage.checkpoints().empty()
                   ? 0
                   : rt_.storage.checkpoints().latest().at.sii;
    if (rt_.storage.log().stable_count() > rt_.storage.log().base()) {
      surv = std::max(surv, rt_.storage.log()
                                .at(rt_.storage.log().stable_count() - 1)
                                .started.sii);
    }
    orc->on_crash(rt_.pid, surv);
  }
}

void ReplayEngine::charge_sync_write(SimTime cost) {
  rt_.exec.occupy(cost);
  rt_.storage.count_sync_write();
  rt_.stats().inc("storage.sync_writes");
}

Incarnation ReplayEngine::bump_incarnation_durably() {
  Incarnation next = rt_.storage.durable_max_inc() + 1;
  charge_sync_write(rt_.storage.costs().sync_write_us);
  rt_.storage.set_durable_max_inc(next);
  return next;
}

bool ReplayEngine::note_remote_announcement(const Announcement& a) {
  auto key = std::make_pair(a.from, a.ended);
  if (processed_announcements_.count(key) != 0) return false;
  processed_announcements_.insert(key);
  // "Synchronously log the received announcement" (Figure 3).
  charge_sync_write(rt_.storage.costs().sync_write_us);
  rt_.storage.journal_announcement(a);
  rt_.stats().inc("announce.received");
  return true;
}

void ReplayEngine::record_own_announcement(const Announcement& a) {
  charge_sync_write(rt_.storage.costs().sync_write_us);
  rt_.storage.journal_announcement(a);
  processed_announcements_.insert({a.from, a.ended});
}

void ReplayEngine::restore_announcements(
    const std::function<void(const Announcement&)>& apply) {
  for (const Announcement& a : rt_.storage.announcement_journal()) {
    apply(a);
    processed_announcements_.insert({a.from, a.ended});
  }
}

size_t ReplayEngine::flush_volatile() {
  size_t nvol = rt_.storage.log().volatile_count();
  // Make the bytes durable before the logical bookkeeping claims they are.
  if (StorageBackend* b = rt_.storage.backend()) b->sync_flush();
  rt_.storage.log().flush_all();
  rt_.storage.count_records_flushed(static_cast<int64_t>(nvol));
  rt_.stats().inc("storage.records_flushed", static_cast<int64_t>(nvol));
  return nvol;
}

void ReplayEngine::start_async_flush(
    const std::function<void(size_t upto, Entry watermark, size_t durable_lsn)>&
        finish) {
  size_t nvol = rt_.storage.log().volatile_count();
  if (nvol == 0) return;
  rt_.storage.count_async_flush();
  rt_.stats().inc("flush.count");
  rt_.stats().inc("storage.async_flushes");
  size_t upto = rt_.storage.log().size();
  // The watermark is the interval of the last *logged record*, not the
  // engine's current interval: a rollback/restart bookkeeping interval has
  // no record and is only reconstructable from a checkpoint, so a flush
  // must never claim it stable.
  Entry watermark = rt_.storage.log().at(upto - 1).started.entry();
  uint64_t epoch = epoch_;
  rt_.storage.backend()->request_flush(
      upto, nvol,
      [this, finish, upto, watermark, epoch](size_t durable_lsn) {
        if (epoch != epoch_ || !alive_()) return;
        finish(upto, watermark, durable_lsn);
      });
}

size_t ReplayEngine::complete_flush(size_t upto) {
  size_t before = rt_.storage.log().stable_count();
  rt_.storage.log().flush_to(upto);
  size_t delta = rt_.storage.log().stable_count() - before;
  rt_.storage.count_records_flushed(static_cast<int64_t>(delta));
  rt_.stats().inc("storage.records_flushed", static_cast<int64_t>(delta));
  return delta;
}

void ReplayEngine::take_checkpoint(
    const std::function<void(Checkpoint&)>& fill) {
  // "When a checkpoint is taken, all messages in the volatile buffer are
  // also written to stable storage at the same time so that stable state
  // intervals are always continuous" (§2).
  size_t nvol = flush_volatile();
  rt_.exec.occupy(rt_.storage.costs().checkpoint_write_us +
                  static_cast<SimTime>(nvol) *
                      rt_.storage.costs().async_flush_per_msg_us);
  rt_.storage.count_checkpoint();
  rt_.stats().inc("checkpoint.count");
  rt_.stats().inc("storage.checkpoints_taken");
  Checkpoint cp;
  fill(cp);
  rt_.storage.checkpoints().push(std::move(cp));
}

size_t ReplayEngine::replay(size_t from, size_t bound,
                            const std::function<bool(const LogRecord&)>& stop,
                            const std::function<void(const LogRecord&)>& apply) {
  size_t pos = from;
  while (pos < bound) {
    const LogRecord& r = rt_.storage.log().at(pos);
    if (stop && stop(r)) break;
    rt_.exec.occupy(cfg_.replay_per_msg_us);
    apply(r);
    rt_.stats().inc("restart.replayed_msgs");
    ++pos;
  }
  return pos;
}

void ReplayEngine::garbage_collect(
    const std::function<bool(const Checkpoint&)>& safe) {
  const CheckpointStore& cps = rt_.storage.checkpoints();
  std::optional<size_t> pivot;
  for (size_t i = cps.size(); i-- > 0;) {
    if (safe(cps.at(i))) {
      pivot = i;
      break;
    }
  }
  if (!pivot) return;
  const size_t reclaim_to =
      std::min(cps.at(*pivot).log_pos, rt_.storage.log().stable_count());
  size_t records = rt_.storage.log().discard_prefix(reclaim_to);
  size_t checkpoints = *pivot;
  if (checkpoints > 0) rt_.storage.checkpoints().discard_before(checkpoints);
  if (records > 0)
    rt_.stats().inc("gc.records_reclaimed", static_cast<int64_t>(records));
  if (checkpoints > 0)
    rt_.stats().inc("gc.checkpoints_reclaimed",
                    static_cast<int64_t>(checkpoints));
  rt_.stats().sample("storage.log_retained",
                     static_cast<double>(rt_.storage.log().retained_count()));
  rt_.stats().sample("storage.checkpoints_retained",
                     static_cast<double>(rt_.storage.checkpoints().size()));
}

void ReplayEngine::arm_periodic(SimTime period,
                                const std::function<void()>& tick) {
  if (period <= 0) return;
  uint64_t epoch = epoch_;
  rt_.scheduler().schedule_after(period, [this, epoch, period, tick] {
    if (epoch != epoch_ || !alive_() || rt_.api.draining()) return;
    tick();
    arm_periodic(period, tick);
  });
}

}  // namespace koptlog
