// ReplayEngine — the checkpoint/replay/stable-storage mechanism shared by
// every recovery engine: synchronous and asynchronous log flushes (with the
// epoch guard that voids completions raced by a crash), checkpoint capture,
// garbage collection, durable incarnation bumps, synchronously-journaled
// announcement bookkeeping, the logged-prefix replay loop, and the
// epoch-guarded periodic timers. What to replay, when a record is an
// orphan, and which checkpoint is safe remain the hosting engine's policy,
// supplied as predicates.
#pragma once

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "core/config.h"
#include "runtime/runtime_services.h"
#include "storage/checkpoint_store.h"
#include "storage/message_log.h"

namespace koptlog {

class ReplayEngine {
 public:
  /// `alive` probes the hosting engine: timers and flush completions become
  /// no-ops once the process is down.
  ReplayEngine(RuntimeServices& rt, const ProtocolConfig& cfg,
               std::function<bool()> alive)
      : rt_(rt), cfg_(cfg), alive_(std::move(alive)) {}

  /// Bumped on crash; stale timer firings and async-flush completions check
  /// it and become no-ops. (Rollbacks don't bump it: flush completions
  /// detect a truncated log by re-checking the watermark record's
  /// identity.)
  uint64_t epoch() const { return epoch_; }

  /// Crash: invalidate in-flight completions and timers, drop queued
  /// executor actions, lose the volatile log suffix. Returns the lost
  /// records so the oracle can mark the corresponding intervals lost.
  std::vector<LogRecord> on_crash();

  /// Report the crash's survivor boundary to the oracle: the latest
  /// checkpointed interval or the last stable log record, whichever is
  /// later.
  void report_crash_to_oracle();

  /// Account a blocking stable-storage write: service time + counters.
  void charge_sync_write(SimTime cost);

  /// Durably bump the incarnation number (synchronously journaled, so a
  /// crash can never reuse one). Returns the new incarnation.
  Incarnation bump_incarnation_durably();

  // ---- announcement journal (synchronously written, survives failures) ----
  /// A remote announcement arrived: dedup against the processed set, then
  /// synchronously journal it (Figure 3). Returns false for duplicates.
  bool note_remote_announcement(const Announcement& a);
  /// Journal and broadcast this process's own announcement.
  void record_own_announcement(const Announcement& a);
  /// Restart: replay the journal, rebuilding the processed set; `apply`
  /// re-applies each announcement to the engine's tables.
  void restore_announcements(const std::function<void(const Announcement&)>& apply);

  // ---- flushing ----
  /// Synchronously move the whole volatile log to stable storage (cost is
  /// charged by the caller — checkpoint, rollback and drain each charge
  /// differently). Returns how many records were flushed.
  size_t flush_volatile();

  /// Begin an asynchronous flush of the current volatile suffix; `finish`
  /// runs at completion — unless a crash bumped the epoch or the process is
  /// down — with the issued log bound, the interval of the last record it
  /// covers (the watermark a completed flush may claim stable), and the log
  /// bound the backend reports durable (>= upto; under the disk backend
  /// this is the bound the group-commit fsync actually covered).
  void start_async_flush(
      const std::function<void(size_t upto, Entry watermark,
                               size_t durable_lsn)>& finish);

  /// Flush-completion bookkeeping: records [0, upto) are now stable.
  /// Returns how many records newly became stable.
  size_t complete_flush(size_t upto);

  // ---- checkpoint / replay / GC ----
  /// Checkpoint mechanism (§2: volatile records are flushed with the
  /// checkpoint so stable state intervals stay continuous): flush, charge
  /// the checkpoint write, then push the checkpoint populated by `fill`.
  void take_checkpoint(const std::function<void(Checkpoint&)>& fill);

  /// Replay logged records [from, bound): each record not stopped by `stop`
  /// is charged replay cost and handed to `apply`. Returns the position
  /// replay stopped at.
  size_t replay(size_t from, size_t bound,
                const std::function<bool(const LogRecord&)>& stop,
                const std::function<void(const LogRecord&)>& apply);

  /// Reclaim checkpoints and log records that recovery can never need
  /// again: everything older than the newest checkpoint `safe` accepts
  /// (one that can never be orphaned).
  void garbage_collect(const std::function<bool(const Checkpoint&)>& safe);

  /// Arm a periodic timer bound to the current epoch: it stops firing on
  /// crash, death, or when the harness enters its drain phase.
  void arm_periodic(SimTime period, const std::function<void()>& tick);

 private:
  RuntimeServices& rt_;
  const ProtocolConfig& cfg_;
  std::function<bool()> alive_;
  std::set<std::pair<ProcessId, Entry>> processed_announcements_;
  uint64_t epoch_ = 0;
};

}  // namespace koptlog
