// RuntimeServices — the small context every runtime component works
// against: the hosting cluster's services (the clock/scheduler seam,
// stats, tracer, oracle), the per-process executor, and the process's
// stable storage. Components receive this instead of reaching into engine
// privates, so any RecoveryProcess engine can compose them — on either
// backend: scheduler() is the abstract seam, never the concrete Simulator.
#pragma once

#include "core/cluster_api.h"
#include "sim/executor.h"
#include "storage/stable_storage.h"

namespace koptlog {

struct RuntimeServices {
  ProcessId pid;
  int n;
  ClusterApi& api;
  Executor& exec;
  StableStorage& storage;

  Scheduler& scheduler() const { return api.scheduler(); }
  SimTime now() const { return api.scheduler().now(); }
  Stats& stats() const { return api.stats(); }
  Oracle* oracle() const { return api.oracle(); }
  EventRecorder* recorder() const { return api.recorder(pid); }

  /// Run `fn` once the process's current busy window (application work plus
  /// any blocking stable-storage writes) has drained: released messages and
  /// committed outputs leave the host only when the process is idle again.
  template <typename Fn>
  void dispatch_at_idle(Fn&& fn) const {
    SimTime ready = std::max(now(), exec.busy_until());
    if (ready > now()) {
      scheduler().schedule_at(ready, std::forward<Fn>(fn));
    } else {
      fn();
    }
  }
};

}  // namespace koptlog
