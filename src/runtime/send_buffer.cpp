#include "runtime/send_buffer.h"

#include <utility>

#include "core/oracle.h"
#include "obs/event_recorder.h"

namespace koptlog {

bool SendBuffer::enqueue(AppMsg msg, SimTime now, int k_limit) {
  for (const Buffered& b : items_) {
    if (b.msg.id == msg.id) return false;
  }
  items_.push_back(Buffered{std::move(msg), now, k_limit});
  return true;
}

void SendBuffer::release_eligible(
    const std::function<void(DepVector&)>& null_stable) {
  std::vector<Buffered> kept;
  kept.reserve(items_.size());
  for (Buffered& b : items_) {
    if (null_stable) null_stable(b.msg.tdv);
    int live = b.msg.tdv.non_null_count();
    if (live <= b.k_limit) {
      rt_.stats().inc("msgs.released");
      if (rt_.now() > b.queued_at)
        rt_.stats().inc("msgs.released_delayed");
      rt_.stats().sample("send.hold_us",
                         static_cast<double>(rt_.now() - b.queued_at));
      rt_.stats().sample("send.risk", static_cast<double>(live));
      rt_.stats().sample("msg.piggyback_bytes",
                         static_cast<double>(b.msg.wire_bytes(null_omission_)));
      rt_.stats().sample("msg.vector_bytes",
                         static_cast<double>(null_omission_
                                                 ? b.msg.tdv.wire_bytes()
                                                 : b.msg.tdv.wire_bytes_full()));
      if (Oracle* orc = rt_.oracle())
        orc->on_msg_released(b.msg, live, b.k_limit, rt_.now());
      if (EventRecorder* rec = rt_.recorder()) {
        ProtocolEvent e;
        e.kind = EventKind::kBufferRelease;
        e.t = rt_.now();
        e.at = b.msg.born_of.entry();
        e.tdv = b.msg.tdv;  // post-NULLing: this is what goes on the wire
        e.msg = b.msg.id;
        e.peer = b.msg.to;
        e.ref = b.msg.born_of;
        e.k_limit = b.k_limit;
        e.k_reached = live;
        rec->record(std::move(e));
      }
      channel_.track(b.msg);
      rt_.dispatch_at_idle([rt = &rt_, msg = std::move(b.msg)]() mutable {
        rt->api.route_app_msg(std::move(msg));
      });
    } else {
      if (!b.hold_reported) {
        b.hold_reported = true;
        if (EventRecorder* rec = rt_.recorder()) {
          ProtocolEvent e;
          e.kind = EventKind::kBufferHold;
          e.t = rt_.now();
          e.at = b.msg.born_of.entry();
          e.msg = b.msg.id;
          e.peer = b.msg.to;
          e.k_limit = b.k_limit;
          e.k_reached = live;
          e.recv_side = false;
          rec->record(std::move(e));
        }
      }
      kept.push_back(std::move(b));
    }
  }
  items_ = std::move(kept);
}

size_t SendBuffer::discard_if(
    const std::function<bool(const AppMsg&)>& orphan,
    const std::function<void(const AppMsg&)>& on_discard) {
  return std::erase_if(items_, [&](const Buffered& b) {
    if (!orphan(b.msg)) return false;
    on_discard(b.msg);
    return true;
  });
}

}  // namespace koptlog
