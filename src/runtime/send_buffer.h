// SendBuffer — queued outgoing messages with the per-message K release
// policy of paper §4.2 (Check_send_buffer, Figure 2). A message waits here
// until its dependency vector has at most k_limit live entries — the
// system-wide K, or a per-message override — then leaves the host once the
// process's busy window has drained. What counts as a "live" entry is the
// hosting engine's policy: it supplies the nulling step that erases entries
// covered by its stability knowledge.
#pragma once

#include <functional>
#include <vector>

#include "core/protocol_msg.h"
#include "runtime/reliable_channel.h"
#include "runtime/runtime_services.h"

namespace koptlog {

class SendBuffer {
 public:
  struct Buffered {
    AppMsg msg;
    SimTime queued_at = 0;
    /// Release threshold for this message: the system K, or a per-message
    /// override (§4.2).
    int k_limit = 0;
    /// One buffer_hold event per parked message, not one per re-check.
    bool hold_reported = false;
  };

  /// `null_omission` is the engine's wire format (Theorem 2 vectors omit
  /// NULL entries); `channel` tracks released messages for retransmission.
  SendBuffer(RuntimeServices& rt, bool null_omission, ReliableChannel& channel)
      : rt_(rt), null_omission_(null_omission), channel_(channel) {}

  /// Queue a message for release. A recovery replay re-executes application
  /// sends; if the original copy is still buffered, it is kept (it may
  /// already have more entries NULLed) and `msg` is dropped. Returns false
  /// for such duplicates, true if the message was queued.
  bool enqueue(AppMsg msg, SimTime now, int k_limit);

  /// Check_send_buffer (Figure 2): apply the engine's `null_stable` step to
  /// each buffered vector, then release every message with at most k_limit
  /// live entries.
  void release_eligible(const std::function<void(DepVector&)>& null_stable);

  /// Drop every buffered orphan, reporting each to `on_discard`.
  size_t discard_if(const std::function<bool(const AppMsg&)>& orphan,
                    const std::function<void(const AppMsg&)>& on_discard);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Crash: the buffer is volatile.
  void clear() { items_.clear(); }

 private:
  RuntimeServices& rt_;
  bool null_omission_;
  ReliableChannel& channel_;
  std::vector<Buffered> items_;
};

}  // namespace koptlog
