#include "sim/executor.h"

#include <utility>

namespace koptlog {

void Executor::submit(Action fn) {
  KOPT_CHECK(fn != nullptr);
  queue_.push_back(std::move(fn));
  if (!pump_scheduled_) schedule_pump();
}

void Executor::reset() {
  queue_.clear();
  busy_until_ = sim_.now();
  pump_scheduled_ = false;
  ++epoch_;
}

void Executor::schedule_pump() {
  pump_scheduled_ = true;
  uint64_t epoch = epoch_;
  sim_.schedule_at(std::max(sim_.now(), busy_until_), [this, epoch] {
    if (epoch != epoch_) return;  // crashed since scheduling
    pump();
  });
}

void Executor::pump() {
  pump_scheduled_ = false;
  if (queue_.empty()) return;
  if (sim_.now() < busy_until_) {
    schedule_pump();
    return;
  }
  Action fn = std::move(queue_.front());
  queue_.pop_front();
  fn();  // may call occupy() and submit()
  if (!queue_.empty() && !pump_scheduled_) schedule_pump();
}

}  // namespace koptlog
