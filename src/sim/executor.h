// Executor — per-process single-threaded service model. Actions submitted
// to a process run strictly in submission order; an action may call
// occupy() to model work (message handling cost, synchronous stable-storage
// writes), which delays every subsequent action. This is what turns
// pessimistic logging's synchronous writes into measurable failure-free
// overhead.
#pragma once

#include <deque>
#include <functional>

#include "common/check.h"
#include "sim/scheduler.h"

namespace koptlog {

class Executor {
 public:
  using Action = std::function<void()>;

  explicit Executor(Scheduler& sched) : sim_(sched) {}

  /// Enqueue an action; it runs when the process is next idle.
  void submit(Action fn);

  /// Called from inside a running action: the process is busy for `d` more
  /// microseconds.
  void occupy(SimTime d) {
    KOPT_CHECK(d >= 0);
    busy_until_ = std::max(busy_until_, sim_.now()) + d;
  }

  /// Drop all queued actions and reset the busy window (process crash).
  /// Bumps an epoch so that pump events already in the simulator queue
  /// become no-ops.
  void reset();

  SimTime busy_until() const { return busy_until_; }
  bool idle() const { return queue_.empty() && !pump_scheduled_; }

 private:
  void schedule_pump();
  void pump();

  Scheduler& sim_;
  std::deque<Action> queue_;
  SimTime busy_until_ = 0;
  bool pump_scheduled_ = false;
  uint64_t epoch_ = 0;
};

}  // namespace koptlog
