// Clock / Scheduler — the abstract time-and-scheduling seam every layer
// above sim/ programs against. Two implementations exist:
//
//   * Simulator (sim/simulator.h): the deterministic single-threaded
//     discrete-event queue — virtual time, (time, insertion-seq) order,
//     bit-for-bit reproducible runs. The testing backend.
//   * ThreadedScheduler (exec/threaded_scheduler.h): one real event-loop
//     thread per shard of processes over a shared monotonic clock —
//     wall-clock deadlines, cross-thread mailboxes. The production-shaped
//     backend, validated oracle-free by the trace audit.
//
// Contract differences callers may rely on:
//   * now() is monotone non-decreasing within one scheduler.
//   * schedule_at(t, fn) runs fn at a time >= max(t, now()). The simulator
//     rejects t < now() (a determinism bug); a real-time scheduler clamps —
//     by the time the call is made the deadline may already have passed.
//   * The returned SeqNo increases with submission order and breaks
//     same-deadline ties deterministically in the simulator; a threaded
//     scheduler only promises FIFO among same-deadline events of one shard.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/types.h"

namespace koptlog {

/// Read-only time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in (simulated or scaled-real) microseconds since start.
  virtual SimTime now() const = 0;
};

/// A Clock that can also run work at future times.
class Scheduler : public Clock {
 public:
  using Action = std::function<void()>;

  /// Schedule `fn` at absolute time `t`. Returns the event's sequence
  /// number (strictly increasing per scheduler).
  virtual SeqNo schedule_at(SimTime t, Action fn) = 0;

  /// Schedule `fn` after `delay` (>= 0) microseconds.
  SeqNo schedule_after(SimTime delay, Action fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  /// One item of a batch submission.
  struct TimedAction {
    SimTime t;
    Action fn;
  };

  /// Submit several events in one call. The default simply loops over
  /// schedule_at — on the deterministic Simulator a batch is by definition
  /// indistinguishable from its per-item expansion. Cross-thread backends
  /// override this to pay their producer-side synchronization once per
  /// batch instead of once per event (see ThreadedScheduler).
  virtual void schedule_batch(std::vector<TimedAction> batch) {
    for (TimedAction& item : batch) schedule_at(item.t, std::move(item.fn));
  }
};

}  // namespace koptlog
