#include "sim/simulator.h"

#include <utility>

namespace koptlog {

SeqNo Simulator::schedule_at(SimTime t, Action fn) {
  KOPT_CHECK_MSG(t >= now_, "cannot schedule into the past: t=" << t
                                                                << " now=" << now_);
  KOPT_CHECK(fn != nullptr);
  SeqNo seq = next_seq_++;
  queue_.push(Event{t, seq, std::move(fn)});
  return seq;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move the action out via const_cast, which
  // is safe because pop() immediately removes the element.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  KOPT_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

size_t Simulator::run(size_t max_events) {
  stopped_ = false;
  size_t n = 0;
  while (!stopped_ && n < max_events && step()) ++n;
  KOPT_CHECK_MSG(n < max_events, "event budget exhausted — livelock?");
  return n;
}

size_t Simulator::run_until(SimTime t_end, size_t max_events) {
  stopped_ = false;
  size_t n = 0;
  while (!stopped_ && n < max_events && !queue_.empty() &&
         queue_.top().time <= t_end) {
    step();
    ++n;
  }
  KOPT_CHECK_MSG(n < max_events, "event budget exhausted — livelock?");
  if (!stopped_ && now_ < t_end) now_ = t_end;
  return n;
}

}  // namespace koptlog
