// Deterministic single-threaded discrete-event simulator: the testing
// implementation of the Scheduler seam. Events fire in (time,
// insertion-sequence) order, so two runs with the same seed produce
// byte-identical histories.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/scheduler.h"

namespace koptlog {

class Simulator final : public Scheduler {
 public:
  using Action = Scheduler::Action;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const override { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Returns the event's
  /// sequence number (strictly increasing — also the FIFO tie-breaker).
  SeqNo schedule_at(SimTime t, Action fn) override;

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }

  /// Execute the next event; returns false when no events remain.
  bool step();

  /// Run until the queue drains, `stop()` is called, or `max_events` is hit.
  /// Returns the number of events executed.
  size_t run(size_t max_events = kDefaultEventBudget);

  /// Run events with time <= t_end. Afterwards now() == t_end if the run was
  /// not stopped early.
  size_t run_until(SimTime t_end, size_t max_events = kDefaultEventBudget);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  size_t events_executed() const { return executed_; }

  static constexpr size_t kDefaultEventBudget = 200'000'000;

 private:
  struct Event {
    SimTime time;
    SeqNo seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  SeqNo next_seq_ = 0;
  size_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace koptlog
