#include "sim/stats.h"

#include <cmath>

namespace koptlog {

void Histogram::add(double v) {
  // Canonicalize -0.0 to +0.0: tied samples must be bit-identical so the
  // on-demand sort (unstable) cannot reorder distinguishable zeros and
  // nearest-rank quantiles stay deterministic across runs.
  if (v == 0.0) v = 0.0;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < max_samples_) {
    samples_.push_back(v);
    sorted_ = false;
  }
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double clamped = std::min(std::max(q, 0.0), 1.0);
  size_t idx = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(samples_.size())));
  if (idx > 0) --idx;
  if (idx >= samples_.size()) idx = samples_.size() - 1;
  return samples_[idx];
}

void Histogram::clear() {
  samples_.clear();
  sorted_ = true;
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (double v : other.samples_) {
    if (samples_.size() >= max_samples_) break;
    samples_.push_back(v);
  }
  sorted_ = samples_.empty();
}

void Stats::merge(const Stats& other) {
  for (const auto& [name, v] : other.counters()) counters_[name] += v;
  for (const auto& [name, h] : other.histograms()) histograms_[name].merge(h);
}

int64_t Stats::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram& Stats::histogram(const std::string& name) const {
  static const Histogram kEmpty;
  auto it = histograms_.find(name);
  return it == histograms_.end() ? kEmpty : it->second;
}

}  // namespace koptlog
