// Metrics primitives used by the cluster and the benchmark harness:
// named counters and sample histograms with exact quantiles.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace koptlog {

/// Collects samples; quantiles are exact (sorted on demand). Simulation runs
/// are small enough that storing all samples is fine; a cap guards benches.
class Histogram {
 public:
  explicit Histogram(size_t max_samples = 1u << 22) : max_samples_(max_samples) {}

  void add(double v);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// q in [0,1]; nearest-rank over retained samples.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }

  void clear();

  /// Fold another histogram in (exact count/sum/min/max; retained samples
  /// appended up to the cap). The threaded backend keeps one Stats per
  /// process and merges after the workers are joined.
  void merge(const Histogram& other);

 private:
  size_t max_samples_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A string-keyed bag of counters and histograms. Cheap to copy for
/// before/after diffing in benches.
class Stats {
 public:
  void inc(const std::string& name, int64_t delta = 1) { counters_[name] += delta; }
  int64_t counter(const std::string& name) const;

  void sample(const std::string& name, double v) { histograms_[name].add(v); }
  const Histogram& histogram(const std::string& name) const;

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

  /// Fold another bag in: counters add, histograms merge.
  void merge(const Stats& other);

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace koptlog
