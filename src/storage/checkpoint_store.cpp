#include "storage/checkpoint_store.h"

namespace koptlog {

std::optional<size_t> CheckpointStore::latest_where(
    const std::function<bool(const Checkpoint&)>& pred) const {
  for (size_t i = checkpoints_.size(); i-- > 0;) {
    if (pred(checkpoints_[i])) return i;
  }
  return std::nullopt;
}

void CheckpointStore::discard_after(size_t keep) {
  KOPT_CHECK(keep < checkpoints_.size());
  checkpoints_.resize(keep + 1);
}

void CheckpointStore::discard_before(size_t keep) {
  KOPT_CHECK(keep < checkpoints_.size());
  checkpoints_.erase(checkpoints_.begin(),
                     checkpoints_.begin() + static_cast<ptrdiff_t>(keep));
}

}  // namespace koptlog
