#include "storage/checkpoint_store.h"

#include "storage/storage_backend.h"

namespace koptlog {

void CheckpointStore::push(Checkpoint cp) {
  cp.id = next_id_++;
  checkpoints_.push_back(std::move(cp));
  if (backend_) backend_->on_checkpoint(checkpoints_.back());
}

std::optional<size_t> CheckpointStore::latest_where(
    const std::function<bool(const Checkpoint&)>& pred) const {
  for (size_t i = checkpoints_.size(); i-- > 0;) {
    if (pred(checkpoints_[i])) return i;
  }
  return std::nullopt;
}

void CheckpointStore::discard_after(size_t keep) {
  KOPT_CHECK(keep < checkpoints_.size());
  if (backend_) {
    for (size_t i = keep + 1; i < checkpoints_.size(); ++i)
      backend_->on_discard_checkpoint(checkpoints_[i].id);
  }
  checkpoints_.resize(keep + 1);
}

void CheckpointStore::discard_before(size_t keep) {
  KOPT_CHECK(keep < checkpoints_.size());
  if (backend_) {
    for (size_t i = 0; i < keep; ++i)
      backend_->on_discard_checkpoint(checkpoints_[i].id);
  }
  checkpoints_.erase(checkpoints_.begin(),
                     checkpoints_.begin() + static_cast<ptrdiff_t>(keep));
}

void CheckpointStore::restore(std::vector<Checkpoint> checkpoints) {
  checkpoints_ = std::move(checkpoints);
  next_id_ = checkpoints_.empty() ? 1 : checkpoints_.back().id + 1;
}

}  // namespace koptlog
