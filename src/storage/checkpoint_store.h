// Per-process checkpoint store. A checkpoint captures the application state
// plus the recovery-layer state that replay needs (current index, dependency
// vector, send counter, log position). Several checkpoints are retained:
// Rollback may need to restore an older one when the latest checkpoint is
// itself orphaned (Figure 3: "Restore the latest checkpoint with tdv such
// that ...; Discard the checkpoints that follow").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/entry.h"
#include "core/dep_vector.h"

namespace koptlog {

class StorageBackend;

struct Checkpoint {
  /// Monotone per-process checkpoint id, assigned by CheckpointStore::push.
  /// Names the durable backend's checkpoint file, so discards can unlink it.
  uint64_t id = 0;
  Entry at;                        ///< current (t,x) when taken
  DepVector tdv;                   ///< dependency vector when taken
  size_t log_pos = 0;              ///< message-log length when taken
  SeqNo send_seq = 0;              ///< deterministic send counter
  SeqNo output_seq = 0;            ///< deterministic output counter
  std::vector<uint8_t> app_state;  ///< Application::snapshot()
  uint64_t app_hash = 0;           ///< Application::state_hash() when taken
  /// This process's own per-incarnation stable watermarks at checkpoint
  /// time. Restart rebuilds its stability table from these plus the
  /// retained log records — needed once garbage collection reclaims the
  /// old records that would otherwise carry the information.
  std::map<Incarnation, Sii> self_watermarks;
};

class CheckpointStore {
 public:
  /// Bound once by StableStorage; may be null (pure in-memory bookkeeping).
  void bind_backend(StorageBackend* b) { backend_ = b; }

  /// Assigns the checkpoint its id and mirrors it into the backend.
  void push(Checkpoint cp);

  size_t size() const { return checkpoints_.size(); }
  bool empty() const { return checkpoints_.empty(); }

  const Checkpoint& latest() const {
    KOPT_CHECK(!checkpoints_.empty());
    return checkpoints_.back();
  }

  const Checkpoint& at(size_t i) const { return checkpoints_[i]; }

  /// Index of the latest checkpoint satisfying `pred`, if any.
  std::optional<size_t> latest_where(
      const std::function<bool(const Checkpoint&)>& pred) const;

  /// Discard the checkpoints after index `keep` (Rollback).
  void discard_after(size_t keep);

  /// Garbage collection: discard the checkpoints before index `keep`.
  /// Later indices shift down by `keep`.
  void discard_before(size_t keep);

  /// Recovery: install the image a backend rebuilt from its media
  /// (sorted by id); the mirror hooks are not invoked.
  void restore(std::vector<Checkpoint> checkpoints);

 private:
  std::vector<Checkpoint> checkpoints_;
  uint64_t next_id_ = 1;
  StorageBackend* backend_ = nullptr;
};

}  // namespace koptlog
