// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven) for the on-disk
// record framing. Every record's payload is checksummed so torn writes and
// bit rot are detected at the first bad record during the recovery scan.
#pragma once

#include <cstddef>
#include <cstdint>

namespace koptlog::disk {

/// CRC-32 of `data[0..len)`, standard init/final XOR (zlib-compatible).
uint32_t crc32(const uint8_t* data, size_t len);

}  // namespace koptlog::disk
