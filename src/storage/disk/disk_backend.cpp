// DiskBackend — the durable storage backend: a segmented append-only WAL
// for message records (group-committed: one fsync per group_commit_us
// window), a synchronously-fsynced journal for announcements, incarnation
// bumps and parked messages, and one fsynced file per checkpoint.
//
// Volatility contract: an appended message record stays in an in-memory
// staging buffer until a flush covers it — what is on disk is exactly what
// has been fsynced, so a simulated crash (which clears the staging buffer)
// loses precisely the records the logical MessageLog loses. All
// non-message records (truncate, discard, journal, checkpoints) are
// written and fsynced synchronously: they correspond to the protocol's
// synchronous stable-storage writes.
//
// Threading: with opts.threaded_io the group-commit batch write + fsync
// runs on a dedicated flusher thread (keeping I/O off the shard event
// loop) and the completion is posted back through the scheduler;
// synchronous operations drain the flusher first so file order is
// preserved. Without it, everything runs inline on the caller
// (deterministic under the simulator: real I/O consumes no virtual time).
#include "storage/disk/disk_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/health/health.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "storage/disk/format.h"
#include "storage/disk/recovery.h"
#include "wire/codec.h"

namespace koptlog {

namespace fs = std::filesystem;
using disk::RecordType;

namespace {

std::string segment_name(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%06llu.seg",
                static_cast<unsigned long long>(index));
  return buf;
}

std::string checkpoint_name(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%06llu.ckpt",
                static_cast<unsigned long long>(id));
  return buf;
}

class DiskBackend final : public StorageBackend {
 public:
  DiskBackend(const StorageOptions& opts, ProcessId pid, int n,
              Scheduler& scheduler, Stats* stats)
      : opts_(opts),
        pid_(pid),
        n_(n),
        sched_(scheduler),
        stats_(stats),
        dir_(fs::path(opts.dir) / ("p" + std::to_string(pid))) {
    KOPT_CHECK_MSG(!opts_.dir.empty(), "disk backend requires a storage dir");
    std::error_code ec;
    if (!opts_.recover) fs::remove_all(dir_, ec);
    fs::create_directories(dir_, ec);
    if (opts_.recover) {
      // Continue an existing directory: repair torn tails now and position
      // the writers past the surviving state. The image itself is rebuilt
      // (again) when the host calls recover() at restart.
      disk::AnalysisResult r = disk::analyze_process_dir(dir_.string());
      disk::repair_process_dir(r);
      reopen_after_analysis(r);
    } else {
      open_fresh();
    }
    if (opts_.health != nullptr) {
      HealthDomain* dom =
          opts_.health->domain("storage" + std::to_string(pid_));
      h_fsync_ = dom->histogram("wal.fsync_us");
      h_window_ = dom->histogram("wal.window_fill");
      g_staged_ = dom->gauge("wal.staged_bytes");
      c_rolls_ = dom->counter("wal.segment_rolls");
      c_bytes_ = dom->counter("wal.bytes_written");
    }
    if (opts_.threaded_io) flusher_ = std::thread([this] { flusher_main(); });
  }

  ~DiskBackend() override {
    if (flusher_.joinable()) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      flusher_.join();
    }
    close_files();
  }

  const char* name() const override { return "disk"; }
  bool durable() const override { return true; }

  // ---- mutation mirror ----

  void on_append(size_t pos, const LogRecord& rec) override {
    staged_.push_back(
        Staged{pos, disk::frame_record(RecordType::kMessage,
                                       disk::encode_message(pos, rec))});
    staged_bytes_ += staged_.back().bytes.size();
    if (g_staged_ != nullptr)
      g_staged_->set(static_cast<int64_t>(staged_bytes_));
  }

  void on_truncate(size_t pos) override {
    // Drop the staged (still-volatile) records the truncation just undid:
    // they must never reach the WAL. A later window writes after the
    // truncate record in file order, so a stale staged record past the
    // re-delivered suffix would replay as a ghost of the undone
    // incarnation — and a post-restart announcement derived from it would
    // let peers commit against a rolled-back interval.
    std::erase_if(staged_, [this, pos](const Staged& s) {
      if (s.pos < pos) return false;
      staged_bytes_ -= s.bytes.size();
      return true;
    });
    if (g_staged_ != nullptr)
      g_staged_->set(static_cast<int64_t>(staged_bytes_));
    drain_flusher();
    write_wal_now(
        disk::frame_record(RecordType::kTruncate, disk::encode_pos(pos)));
  }

  void on_discard_prefix(size_t pos) override {
    drain_flusher();
    write_wal_now(
        disk::frame_record(RecordType::kDiscardPrefix, disk::encode_pos(pos)));
    // Leading segments whose message records all sit below the discard
    // point can never matter to a future scan (re-appended positions live
    // in later segments, and historical truncate records only ever affect
    // records from their own segment or earlier). Reclaim them.
    std::lock_guard<std::mutex> lk(io_mu_);
    while (segments_.size() > 1 && segments_.front().max_msg_pos < pos) {
      std::error_code ec;
      fs::remove(dir_ / segment_name(segments_.front().index), ec);
      segments_.pop_front();
      if (stats_) stats_->inc("storage.segments_reclaimed");
    }
  }

  void on_checkpoint(const Checkpoint& cp) override {
    drain_flusher();
    fs::path path = dir_ / checkpoint_name(cp.id);
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    KOPT_CHECK_MSG(fd >= 0, "cannot create " << path.string());
    write_all(fd, disk::frame_record(RecordType::kFileHeader,
                                     disk::encode_file_header(header())));
    write_all(fd, disk::frame_record(RecordType::kCheckpoint,
                                     disk::encode_checkpoint(cp, n_)));
    do_fsync(fd);
    ::close(fd);
  }

  void on_discard_checkpoint(uint64_t id) override {
    std::error_code ec;
    fs::remove(dir_ / checkpoint_name(id), ec);
  }

  void on_announcement(const Announcement& a) override {
    write_journal_now(disk::frame_record(RecordType::kAnnouncement,
                                         wire::encode_announcement(a)));
  }

  void on_incarnation(Incarnation inc) override {
    write_journal_now(disk::frame_record(RecordType::kIncarnation,
                                         disk::encode_incarnation(inc)));
  }

  void on_park(const AppMsg& m) override {
    write_journal_now(
        disk::frame_record(RecordType::kPark, disk::encode_park(m)));
  }

  void on_unpark(const MsgId& id) override {
    write_journal_now(
        disk::frame_record(RecordType::kUnpark, disk::encode_unpark(id)));
  }

  // ---- flushing ----

  void request_flush(size_t upto, size_t nvol, FlushDone done) override {
    (void)nvol;
    pending_.push_back(Pending{upto, std::move(done)});
    if (window_armed_) return;
    window_armed_ = true;
    uint64_t gen = gen_;
    sched_.schedule_after(opts_.group_commit_us, [this, gen] {
      if (gen != gen_) return;  // a crash voided this window
      window_armed_ = false;
      fire_window();
    });
  }

  void sync_flush() override {
    drain_flusher();
    if (staged_.empty()) return;
    std::vector<uint8_t> batch;
    size_t max_pos = 0;
    for (Staged& s : staged_) {
      batch.insert(batch.end(), s.bytes.begin(), s.bytes.end());
      max_pos = std::max(max_pos, s.pos);
    }
    staged_.clear();
    staged_bytes_ = 0;
    if (g_staged_ != nullptr) g_staged_->set(0);
    note_batch_max_pos(max_pos);
    write_wal_now(std::move(batch));
    // Any pending window completes later against an already-durable log —
    // its fire finds nothing left to write and just reports the bound.
  }

  void on_crash() override {
    ++gen_;  // voids the armed window and any in-flight threaded completion
    window_armed_ = false;
    staged_.clear();
    staged_bytes_ = 0;
    if (g_staged_ != nullptr) g_staged_->set(0);
    pending_.clear();
  }

  bool recover(RecoveredImage& out) override {
    drain_flusher();
    close_files();
    disk::AnalysisResult r = disk::analyze_process_dir(dir_.string());
    KOPT_CHECK_MSG(!r.report.hard_error(),
                   "storage recovery failed for P" << pid_ << ": "
                                                   << r.report.errors.front());
    disk::repair_process_dir(r);
    reopen_after_analysis(r);
    staged_.clear();
    staged_bytes_ = 0;
    if (g_staged_ != nullptr) g_staged_->set(0);
    pending_.clear();
    if (stats_) stats_->inc("storage.recoveries");
    if (!r.found_any) return false;
    if (stats_) {
      stats_->inc("storage.recovered_records",
                  static_cast<int64_t>(r.image.records.size()));
      stats_->inc("storage.recovered_checkpoints",
                  static_cast<int64_t>(r.image.checkpoints.size()));
    }
    out = std::move(r.image);
    return true;
  }

  void quiesce() override {
    std::unique_lock<std::mutex> lk(mu_);
    drained_cv_.wait(lk, [this] { return jobs_.empty() && in_flight_ == 0; });
    posting_enabled_ = false;
  }

 private:
  struct Staged {
    size_t pos;
    std::vector<uint8_t> bytes;
  };
  struct Pending {
    size_t upto;
    FlushDone done;
  };
  struct Job {
    std::vector<uint8_t> bytes;
    std::vector<FlushDone> dones;
    size_t flush_upto = 0;
    SimTime handoff = 0;
  };
  struct SegmentRt {
    uint64_t index = 0;
    size_t max_msg_pos = 0;
  };

  disk::FileHeader header(uint64_t start_lsn = 0) const {
    disk::FileHeader h;
    h.pid = pid_;
    h.n = n_;
    h.start_lsn = start_lsn;
    return h;
  }

  // ---- group-commit window ----

  void fire_window() {
    if (pending_.empty()) return;
    size_t flush_upto = 0;
    std::vector<FlushDone> dones;
    dones.reserve(pending_.size());
    for (Pending& p : pending_) {
      flush_upto = std::max(flush_upto, p.upto);
      dones.push_back(std::move(p.done));
    }
    pending_.clear();

    // Only records a request covers are written; later appends stay staged
    // (volatile) until their own flush — disk content tracks the logical
    // stable prefix exactly.
    std::vector<uint8_t> batch;
    size_t kept = 0;
    size_t written = 0;
    size_t max_pos = 0;
    for (size_t i = 0; i < staged_.size(); ++i) {
      Staged& s = staged_[i];
      if (s.pos < flush_upto) {
        batch.insert(batch.end(), s.bytes.begin(), s.bytes.end());
        max_pos = std::max(max_pos, s.pos);
        ++written;
      } else {
        // Compact in place; guard the self-move (kept == i) or the record's
        // bytes are emptied and a later window writes a hole the analysis
        // scan truncates the recovered log at.
        if (kept != i) staged_[kept] = std::move(s);
        ++kept;
      }
    }
    staged_.resize(kept);
    staged_bytes_ -= batch.size();
    if (g_staged_ != nullptr)
      g_staged_->set(static_cast<int64_t>(staged_bytes_));
    if (stats_)
      stats_->sample("storage.flush_batch_records", static_cast<double>(written));
    if (h_window_ != nullptr) h_window_->observe(written);
    // Publish the batch's position bound BEFORE the write is issued or
    // handed to the flusher: under threaded_io the flusher reads
    // seg_max_msg_pos_/next_start_lsn_ inside write_wal_now (under io_mu_),
    // so the update must happen under the same lock here on the staging
    // thread — the old unlocked note_msg_pos raced the flusher's segment
    // roll.
    if (written > 0) note_batch_max_pos(max_pos);

    if (opts_.threaded_io) {
      Job job;
      job.bytes = std::move(batch);
      job.dones = std::move(dones);
      job.flush_upto = flush_upto;
      job.handoff = sched_.now();
      {
        std::lock_guard<std::mutex> lk(mu_);
        jobs_.push_back(std::move(job));
      }
      cv_.notify_one();
      return;
    }
    if (!batch.empty()) write_wal_now(std::move(batch));
    for (FlushDone& d : dones) d(flush_upto);
  }

  void flusher_main() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ and drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
        ++in_flight_;
      }
      if (!job.bytes.empty()) write_wal_now(std::move(job.bytes));
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (posting_enabled_) {
          // Post the completion back onto the owning shard's event loop;
          // the deadline already passed, so it runs at the next turn.
          auto dones = std::make_shared<std::vector<FlushDone>>(
              std::move(job.dones));
          size_t upto = job.flush_upto;
          sched_.schedule_at(job.handoff, [dones, upto] {
            for (FlushDone& d : *dones) d(upto);
          });
        }
        --in_flight_;
      }
      drained_cv_.notify_all();
    }
  }

  void drain_flusher() {
    if (!opts_.threaded_io) return;
    std::unique_lock<std::mutex> lk(mu_);
    drained_cv_.wait(lk, [this] { return jobs_.empty() && in_flight_ == 0; });
  }

  // ---- file plumbing (io_mu_ serializes flusher vs. shard thread) ----

  void open_fresh() {
    std::lock_guard<std::mutex> lk(io_mu_);
    open_segment_locked(1, /*start_lsn=*/0);
    open_journal_locked(/*fresh=*/true);
  }

  void reopen_after_analysis(const disk::AnalysisResult& r) {
    std::lock_guard<std::mutex> lk(io_mu_);
    segments_.clear();
    for (const disk::SegmentReport& seg : r.report.segments) {
      if (seg.dropped || (seg.torn && seg.valid_bytes == 0)) continue;
      segments_.push_back(SegmentRt{seg.index, seg.has_msgs ? seg.max_msg_pos : 0});
    }
    // New writes go to a fresh segment past everything that survived.
    open_segment_locked(r.last_segment_index + 1,
                        r.image.base + r.image.records.size());
    open_journal_locked(/*fresh=*/r.report.journal_path.empty());
  }

  void open_segment_locked(uint64_t index, uint64_t start_lsn) {
    if (wal_fd_ >= 0) ::close(wal_fd_);
    fs::path path = dir_ / segment_name(index);
    wal_fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_APPEND, 0644);
    KOPT_CHECK_MSG(wal_fd_ >= 0, "cannot create " << path.string());
    seg_index_ = index;
    seg_written_ = 0;
    std::vector<uint8_t> hdr = disk::frame_record(
        RecordType::kFileHeader, disk::encode_file_header(header(start_lsn)));
    write_all(wal_fd_, hdr);
    do_fsync(wal_fd_);
    seg_written_ = hdr.size();
    segments_.push_back(SegmentRt{index, 0});
    next_start_lsn_ = start_lsn;
  }

  void open_journal_locked(bool fresh) {
    if (journal_fd_ >= 0) ::close(journal_fd_);
    fs::path path = dir_ / "journal.jrn";
    int flags = O_CREAT | O_WRONLY | O_APPEND | (fresh ? O_TRUNC : 0);
    journal_fd_ = ::open(path.c_str(), flags, 0644);
    KOPT_CHECK_MSG(journal_fd_ >= 0, "cannot open " << path.string());
    if (fresh) {
      write_all(journal_fd_,
                disk::frame_record(RecordType::kFileHeader,
                                   disk::encode_file_header(header())));
      do_fsync(journal_fd_);
    }
  }

  void close_files() {
    std::lock_guard<std::mutex> lk(io_mu_);
    if (wal_fd_ >= 0) ::close(wal_fd_);
    if (journal_fd_ >= 0) ::close(journal_fd_);
    wal_fd_ = -1;
    journal_fd_ = -1;
  }

  /// Append `bytes` to the WAL and fsync, rolling the segment first when
  /// it is over the size bound.
  void write_wal_now(std::vector<uint8_t> bytes) {
    std::lock_guard<std::mutex> lk(io_mu_);
    if (c_bytes_ != nullptr) c_bytes_->inc(bytes.size());
    if (seg_written_ >= opts_.segment_bytes) {
      segments_.back().max_msg_pos = seg_max_msg_pos_;
      do_fsync(wal_fd_);
      open_segment_locked(seg_index_ + 1, next_start_lsn_);
      if (stats_) stats_->inc("storage.segments_rolled");
      if (c_rolls_ != nullptr) c_rolls_->inc();
    }
    write_all(wal_fd_, bytes);
    seg_written_ += bytes.size();
    segments_.back().max_msg_pos =
        std::max(segments_.back().max_msg_pos, seg_max_msg_pos_);
    do_fsync(wal_fd_);
  }

  void write_journal_now(const std::vector<uint8_t>& bytes) {
    std::lock_guard<std::mutex> lk(io_mu_);
    write_all(journal_fd_, bytes);
    do_fsync(journal_fd_);
  }

  /// Track the highest message position headed for the current segment and
  /// the log bound new segments should stamp as their start_lsn. Callers on
  /// the staging thread must go through note_batch_max_pos: the flusher
  /// thread reads both fields under io_mu_ when it rolls a segment.
  void note_msg_pos_locked(size_t pos) {
    seg_max_msg_pos_ = std::max(seg_max_msg_pos_, pos);
    next_start_lsn_ = std::max(next_start_lsn_, static_cast<uint64_t>(pos + 1));
  }

  void note_batch_max_pos(size_t max_pos) {
    std::lock_guard<std::mutex> lk(io_mu_);
    note_msg_pos_locked(max_pos);
  }

  void write_all(int fd, const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
      KOPT_CHECK_MSG(w > 0, "storage write failed for P" << pid_);
      off += static_cast<size_t>(w);
    }
    if (stats_) stats_->inc("storage.bytes_written",
                            static_cast<int64_t>(bytes.size()));
  }

  void do_fsync(int fd) {
    if (h_fsync_ != nullptr) {
      auto t0 = std::chrono::steady_clock::now();
      KOPT_CHECK_MSG(::fsync(fd) == 0, "fsync failed for P" << pid_);
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      h_fsync_->observe(static_cast<uint64_t>(us));
    } else {
      KOPT_CHECK_MSG(::fsync(fd) == 0, "fsync failed for P" << pid_);
    }
    if (stats_) stats_->inc("storage.fsyncs");
  }

  const StorageOptions opts_;
  const ProcessId pid_;
  const int n_;
  Scheduler& sched_;
  Stats* stats_;
  const fs::path dir_;

  // Logical state (owned by the shard/caller thread).
  std::vector<Staged> staged_;
  size_t staged_bytes_ = 0;
  std::vector<Pending> pending_;
  bool window_armed_ = false;
  uint64_t gen_ = 0;

  // Health cells (obs/health); set once in the ctor, null when telemetry is
  // off. The histogram/gauge updates are lock-free and thread-safe.
  HealthHistogram* h_fsync_ = nullptr;
  HealthHistogram* h_window_ = nullptr;
  HealthGauge* g_staged_ = nullptr;
  HealthCounter* c_rolls_ = nullptr;
  HealthCounter* c_bytes_ = nullptr;

  // File state (io_mu_ serializes the flusher thread against sync ops).
  std::mutex io_mu_;
  int wal_fd_ = -1;
  int journal_fd_ = -1;
  uint64_t seg_index_ = 0;
  size_t seg_written_ = 0;
  size_t seg_max_msg_pos_ = 0;
  uint64_t next_start_lsn_ = 0;
  std::deque<SegmentRt> segments_;

  // Flusher thread (threaded_io only).
  std::thread flusher_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<Job> jobs_;
  int in_flight_ = 0;
  bool stop_ = false;
  bool posting_enabled_ = true;
};

}  // namespace

std::unique_ptr<StorageBackend> make_disk_backend(const StorageOptions& opts,
                                                  ProcessId pid, int n,
                                                  Scheduler& scheduler,
                                                  Stats* stats) {
  return std::make_unique<DiskBackend>(opts, pid, n, scheduler, stats);
}

}  // namespace koptlog
