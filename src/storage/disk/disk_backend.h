// Factory for the durable on-disk storage backend (see storage_backend.h
// for the seam contract and format.h / recovery.h for the media layout).
#pragma once

#include <memory>

#include "storage/storage_backend.h"

namespace koptlog {

/// Per-process durable backend rooted at `<opts.dir>/p<pid>/`. Unless
/// opts.recover is set, any pre-existing state in that directory is wiped.
std::unique_ptr<StorageBackend> make_disk_backend(const StorageOptions& opts,
                                                  ProcessId pid, int n,
                                                  Scheduler& scheduler,
                                                  Stats* stats);

}  // namespace koptlog
