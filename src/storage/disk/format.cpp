#include "storage/disk/format.h"

#include <utility>

#include "storage/disk/crc32.h"
#include "wire/codec.h"

namespace koptlog::disk {

// ---- framing -------------------------------------------------------------

std::vector<uint8_t> frame_record(RecordType type,
                                  std::span<const uint8_t> body) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<uint8_t>(type));
  payload.insert(payload.end(), body.begin(), body.end());

  wire::Encoder e;
  e.u32(static_cast<uint32_t>(payload.size()));
  e.u32(crc32(payload.data(), payload.size()));
  std::vector<uint8_t> out = e.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<ScannedRecord> RecordScanner::next() {
  if (failed_ || done_clean_) return std::nullopt;
  if (pos_ == bytes_.size()) {
    done_clean_ = true;
    return std::nullopt;
  }
  if (pos_ + kFrameOverhead > bytes_.size()) {
    failed_ = true;  // torn frame prefix
    return std::nullopt;
  }
  wire::Decoder d(bytes_.subspan(pos_, kFrameOverhead));
  uint32_t len = d.u32();
  uint32_t crc = d.u32();
  if (len == 0 || len > kMaxRecordLen ||
      pos_ + kFrameOverhead + len > bytes_.size()) {
    failed_ = true;  // implausible length or torn payload
    return std::nullopt;
  }
  std::span<const uint8_t> payload = bytes_.subspan(pos_ + kFrameOverhead, len);
  if (crc32(payload.data(), payload.size()) != crc) {
    failed_ = true;  // bit flip / garbage
    return std::nullopt;
  }
  ScannedRecord rec;
  rec.type = static_cast<RecordType>(payload[0]);
  rec.body.assign(payload.begin() + 1, payload.end());
  rec.offset = pos_;
  pos_ += kFrameOverhead + len;
  valid_ = pos_;
  return rec;
}

// ---- record bodies -------------------------------------------------------

std::vector<uint8_t> encode_file_header(const FileHeader& h) {
  wire::Encoder e;
  e.u32(h.version);
  e.i32(h.pid);
  e.i32(h.n);
  e.u64(h.start_lsn);
  return e.take();
}

std::optional<FileHeader> decode_file_header(std::span<const uint8_t> body) {
  wire::Decoder d(body);
  FileHeader h;
  h.version = d.u32();
  h.pid = d.i32();
  h.n = d.i32();
  h.start_lsn = d.u64();
  if (!d.done() || h.version != kFormatVersion || h.n <= 0) return std::nullopt;
  return h;
}

std::vector<uint8_t> encode_message(size_t pos, const LogRecord& rec) {
  // The app-msg codec covers everything replay needs except sent_at and the
  // delivery interval; full (non-NULL-omitting) vectors keep the decode
  // independent of protocol configuration.
  std::vector<uint8_t> msg = wire::encode_app_msg(rec.msg, /*null_omission=*/false);
  wire::Encoder e;
  e.u64(pos);
  e.i64(rec.msg.sent_at);
  e.i32(rec.started.pid);
  e.i32(rec.started.inc);
  e.i64(rec.started.sii);
  e.u32(static_cast<uint32_t>(msg.size()));
  std::vector<uint8_t> out = e.take();
  out.insert(out.end(), msg.begin(), msg.end());
  return out;
}

std::optional<std::pair<size_t, LogRecord>> decode_message(
    std::span<const uint8_t> body, int n) {
  constexpr size_t kPrefix = 8 + 8 + 4 + 4 + 8 + 4;
  if (body.size() < kPrefix) return std::nullopt;
  wire::Decoder d(body.first(kPrefix));
  LogRecord rec;
  size_t pos = d.u64();
  SimTime sent_at = d.i64();
  rec.started.pid = d.i32();
  rec.started.inc = d.i32();
  rec.started.sii = d.i64();
  uint32_t msg_len = d.u32();
  if (d.failed() || kPrefix + msg_len != body.size()) return std::nullopt;
  std::optional<AppMsg> m =
      wire::decode_app_msg(body.subspan(kPrefix, msg_len), n, false);
  if (!m) return std::nullopt;
  rec.msg = std::move(*m);
  rec.msg.sent_at = sent_at;
  return std::make_pair(pos, std::move(rec));
}

std::vector<uint8_t> encode_pos(size_t pos) {
  wire::Encoder e;
  e.u64(pos);
  return e.take();
}

std::optional<size_t> decode_pos(std::span<const uint8_t> body) {
  wire::Decoder d(body);
  size_t pos = d.u64();
  if (!d.done()) return std::nullopt;
  return pos;
}

std::vector<uint8_t> encode_incarnation(Incarnation inc) {
  wire::Encoder e;
  e.i32(inc);
  return e.take();
}

std::optional<Incarnation> decode_incarnation(std::span<const uint8_t> body) {
  wire::Decoder d(body);
  Incarnation inc = d.i32();
  if (!d.done()) return std::nullopt;
  return inc;
}

std::vector<uint8_t> encode_park(const AppMsg& m) {
  std::vector<uint8_t> msg = wire::encode_app_msg(m, /*null_omission=*/false);
  wire::Encoder e;
  e.i64(m.sent_at);
  e.u32(static_cast<uint32_t>(msg.size()));
  std::vector<uint8_t> out = e.take();
  out.insert(out.end(), msg.begin(), msg.end());
  return out;
}

std::optional<AppMsg> decode_park(std::span<const uint8_t> body, int n) {
  constexpr size_t kPrefix = 8 + 4;
  if (body.size() < kPrefix) return std::nullopt;
  wire::Decoder d(body.first(kPrefix));
  SimTime sent_at = d.i64();
  uint32_t msg_len = d.u32();
  if (d.failed() || kPrefix + msg_len != body.size()) return std::nullopt;
  std::optional<AppMsg> m =
      wire::decode_app_msg(body.subspan(kPrefix, msg_len), n, false);
  if (!m) return std::nullopt;
  m->sent_at = sent_at;
  return m;
}

std::vector<uint8_t> encode_unpark(const MsgId& id) {
  wire::Encoder e;
  e.i32(id.src);
  e.u64(id.seq);
  return e.take();
}

std::optional<MsgId> decode_unpark(std::span<const uint8_t> body) {
  wire::Decoder d(body);
  MsgId id;
  id.src = d.i32();
  id.seq = d.u64();
  if (!d.done()) return std::nullopt;
  return id;
}

std::vector<uint8_t> encode_checkpoint(const Checkpoint& cp, int n) {
  wire::Encoder e;
  e.u64(cp.id);
  e.i32(cp.at.inc);
  e.i64(cp.at.sii);
  wire::encode_dep_vector(e, cp.tdv, /*null_omission=*/false);
  e.u64(cp.log_pos);
  e.u64(cp.send_seq);
  e.u64(cp.output_seq);
  e.u64(cp.app_hash);
  e.u32(static_cast<uint32_t>(cp.app_state.size()));
  e.u16(static_cast<uint16_t>(cp.self_watermarks.size()));
  std::vector<uint8_t> out = e.take();
  out.insert(out.end(), cp.app_state.begin(), cp.app_state.end());
  wire::Encoder tail;
  for (const auto& [inc, sii] : cp.self_watermarks) {
    tail.i32(inc);
    tail.i64(sii);
  }
  const std::vector<uint8_t>& t = tail.bytes();
  out.insert(out.end(), t.begin(), t.end());
  (void)n;
  return out;
}

std::optional<Checkpoint> decode_checkpoint(std::span<const uint8_t> body,
                                            int n) {
  wire::Decoder d(body);
  Checkpoint cp;
  cp.id = d.u64();
  cp.at.inc = d.i32();
  cp.at.sii = d.i64();
  cp.tdv = DepVector(n);
  if (!wire::decode_dep_vector(d, cp.tdv, n)) return std::nullopt;
  cp.log_pos = d.u64();
  cp.send_seq = d.u64();
  cp.output_seq = d.u64();
  cp.app_hash = d.u64();
  uint32_t state_len = d.u32();
  uint16_t wm_count = d.u16();
  if (d.failed()) return std::nullopt;
  // Variable-length tail: app state bytes, then the watermark pairs.
  constexpr size_t kFixedHead = 8 + 4 + 8;  // id + at
  constexpr size_t kFixedMid = 8 + 8 + 8 + 8 + 4 + 2;
  size_t vec_bytes = 2 + static_cast<size_t>(n) * (2 + 4 + 8);
  size_t head = kFixedHead + vec_bytes + kFixedMid;
  size_t tail = static_cast<size_t>(state_len) +
                static_cast<size_t>(wm_count) * (4 + 8);
  if (head + tail != body.size()) return std::nullopt;
  cp.app_state.assign(body.begin() + static_cast<ptrdiff_t>(head),
                      body.begin() + static_cast<ptrdiff_t>(head + state_len));
  wire::Decoder wd(body.subspan(head + state_len));
  for (uint16_t i = 0; i < wm_count; ++i) {
    Incarnation inc = wd.i32();
    Sii sii = wd.i64();
    if (wd.failed()) return std::nullopt;
    cp.self_watermarks[inc] = sii;
  }
  if (!wd.done()) return std::nullopt;
  return cp;
}

}  // namespace koptlog::disk
