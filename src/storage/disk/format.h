// On-disk record format of the durable storage backend. Every file —
// WAL segments, the journal, checkpoint files — is a sequence of framed
// records:
//
//     [u32 len][u32 crc][u8 type][body ...]
//
// where len = 1 + body size and crc = CRC-32 over type||body. The recovery
// scan walks records sequentially and truncates at the first frame whose
// length is implausible or whose checksum fails — torn tails, bit flips
// and garbage are all caught there. Bodies reuse the fuzz-hardened
// src/wire/ codecs (little-endian, length-prefixed).
//
// Every file begins with a kFileHeader record naming the format version,
// the owning process and the system size N (needed to rebuild full
// dependency vectors when decoding), plus — for WAL segments — the logical
// log position at segment creation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "storage/checkpoint_store.h"
#include "storage/message_log.h"

namespace koptlog::disk {

inline constexpr uint32_t kFormatVersion = 1;
/// Frame prefix: u32 len + u32 crc.
inline constexpr size_t kFrameOverhead = 8;
/// Upper bound on one record's framed payload; anything larger is treated
/// as corruption by the scanner (a torn length field would otherwise make
/// it swallow the rest of the file as one "record").
inline constexpr uint32_t kMaxRecordLen = 1u << 26;

enum class RecordType : uint8_t {
  kFileHeader = 1,     ///< version, pid, n, start_lsn
  kMessage = 2,        ///< logical pos, sent_at, the logged delivery
  kTruncate = 3,       ///< rollback: drop records at positions >= pos
  kDiscardPrefix = 4,  ///< GC: records below pos are reclaimed
  kAnnouncement = 5,   ///< journal: synchronously-logged announcement
  kIncarnation = 6,    ///< journal: durable incarnation high-water mark
  kPark = 7,           ///< journal: undone message parked until redelivery
  kUnpark = 8,         ///< journal: parked message released
  kCheckpoint = 9,     ///< checkpoint file payload
};

struct FileHeader {
  uint32_t version = kFormatVersion;
  ProcessId pid = 0;
  int32_t n = 0;
  uint64_t start_lsn = 0;  ///< WAL: log size at segment creation; else 0
};

// ---- framing -------------------------------------------------------------

/// Frame `type`+`body` into one length-prefixed checksummed record.
std::vector<uint8_t> frame_record(RecordType type,
                                  std::span<const uint8_t> body);

/// One record pulled off a file image by the scanner.
struct ScannedRecord {
  RecordType type;
  std::vector<uint8_t> body;
  size_t offset = 0;  ///< byte offset of the frame in the file
};

/// Sequential scanner over one file's bytes. next() returns records until
/// the bytes run out or a frame fails validation; valid_bytes() is then the
/// prefix length that parsed cleanly (the truncation point), and clean()
/// tells whether the file ended exactly on a record boundary.
class RecordScanner {
 public:
  explicit RecordScanner(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  std::optional<ScannedRecord> next();
  size_t valid_bytes() const { return valid_; }
  bool clean() const { return done_clean_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  size_t valid_ = 0;
  bool done_clean_ = false;
  bool failed_ = false;
};

// ---- record bodies -------------------------------------------------------

std::vector<uint8_t> encode_file_header(const FileHeader& h);
std::optional<FileHeader> decode_file_header(std::span<const uint8_t> body);

std::vector<uint8_t> encode_message(size_t pos, const LogRecord& rec);
/// Returns (pos, record); `n` is the system size from the file header.
std::optional<std::pair<size_t, LogRecord>> decode_message(
    std::span<const uint8_t> body, int n);

std::vector<uint8_t> encode_pos(size_t pos);  ///< kTruncate / kDiscardPrefix
std::optional<size_t> decode_pos(std::span<const uint8_t> body);

std::vector<uint8_t> encode_incarnation(Incarnation inc);
std::optional<Incarnation> decode_incarnation(std::span<const uint8_t> body);

std::vector<uint8_t> encode_park(const AppMsg& m);
std::optional<AppMsg> decode_park(std::span<const uint8_t> body, int n);

std::vector<uint8_t> encode_unpark(const MsgId& id);
std::optional<MsgId> decode_unpark(std::span<const uint8_t> body);

std::vector<uint8_t> encode_checkpoint(const Checkpoint& cp, int n);
std::optional<Checkpoint> decode_checkpoint(std::span<const uint8_t> body,
                                            int n);

}  // namespace koptlog::disk
