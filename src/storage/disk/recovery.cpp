#include "storage/disk/recovery.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "storage/disk/format.h"
#include "wire/codec.h"

namespace koptlog::disk {

namespace fs = std::filesystem;

namespace {

std::vector<uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

std::optional<uint64_t> parse_index(const std::string& name,
                                    const std::string& prefix,
                                    const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

AnalysisResult analyze_process_dir(const std::string& dir) {
  AnalysisResult r;
  FsckReport& rep = r.report;
  fs::path root(dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return r;

  std::vector<std::pair<uint64_t, fs::path>> seg_paths;
  std::vector<fs::path> ckpt_paths;
  fs::path journal_path;
  for (const fs::directory_entry& e : fs::directory_iterator(root, ec)) {
    std::string name = e.path().filename().string();
    if (auto idx = parse_index(name, "wal-", ".seg")) {
      seg_paths.emplace_back(*idx, e.path());
    } else if (parse_index(name, "ckpt-", ".ckpt")) {
      ckpt_paths.push_back(e.path());
    } else if (name == "journal.jrn") {
      journal_path = e.path();
    }
  }
  std::sort(seg_paths.begin(), seg_paths.end());
  std::sort(ckpt_paths.begin(), ckpt_paths.end());

  // ---- WAL segments: replay structural records into a position map ----
  std::map<size_t, LogRecord> recs;
  size_t base_floor = 0;
  bool wal_broken = false;  // a torn segment drops everything after it
  for (const auto& [idx, path] : seg_paths) {
    SegmentReport seg;
    seg.path = path.string();
    seg.index = idx;
    std::vector<uint8_t> bytes = read_file(path);
    seg.file_bytes = bytes.size();
    if (wal_broken) {
      seg.dropped = true;
      rep.warnings.push_back("segment after corruption dropped: " + seg.path);
      rep.segments.push_back(std::move(seg));
      continue;
    }
    RecordScanner scan(bytes);
    bool first = true;
    while (auto rec = scan.next()) {
      if (first) {
        first = false;
        std::optional<FileHeader> h;
        if (rec->type == RecordType::kFileHeader)
          h = decode_file_header(rec->body);
        if (!h) {
          seg.torn = true;
          seg.valid_bytes = 0;
          break;
        }
        rep.pid = h->pid;
        rep.n = h->n;
        seg.start_lsn = h->start_lsn;
        r.found_any = true;
        ++seg.records;
        continue;
      }
      bool ok = false;
      switch (rec->type) {
        case RecordType::kMessage: {
          std::optional<std::pair<size_t, LogRecord>> m;
          if (rep.n > 0) m = decode_message(rec->body, rep.n);
          if (m) {
            seg.has_msgs = true;
            seg.max_msg_pos = std::max(seg.max_msg_pos, m->first);
            if (m->first >= base_floor) recs[m->first] = std::move(m->second);
            ++rep.msg_records;
            ok = true;
          }
          break;
        }
        case RecordType::kTruncate: {
          auto p = decode_pos(rec->body);
          if (p) {
            recs.erase(recs.lower_bound(*p), recs.end());
            ++rep.truncate_records;
            ok = true;
          }
          break;
        }
        case RecordType::kDiscardPrefix: {
          auto p = decode_pos(rec->body);
          if (p) {
            recs.erase(recs.begin(), recs.lower_bound(*p));
            base_floor = std::max(base_floor, *p);
            ++rep.discard_records;
            ok = true;
          }
          break;
        }
        default:
          break;
      }
      if (!ok) {
        // A record that frames correctly but does not decode is corruption
        // just the same: end the segment here.
        seg.torn = true;
        break;
      }
      ++seg.records;
      seg.valid_bytes = scan.valid_bytes();
    }
    if (!seg.torn) {
      seg.valid_bytes = scan.valid_bytes();
      seg.torn = !scan.clean();
    }
    if (seg.torn) {
      wal_broken = true;
      std::ostringstream os;
      os << "torn/corrupt records in " << seg.path << " (truncating at byte "
         << seg.valid_bytes << " of " << seg.file_bytes << ")";
      rep.warnings.push_back(os.str());
    }
    rep.segments.push_back(std::move(seg));
  }

  // ---- journal ----
  std::vector<Announcement> journal;
  std::map<MsgId, AppMsg> parked;
  Incarnation durable_max_inc = 0;
  if (!journal_path.empty()) {
    rep.journal_path = journal_path.string();
    std::vector<uint8_t> bytes = read_file(journal_path);
    rep.journal_file_bytes = bytes.size();
    RecordScanner scan(bytes);
    bool first = true;
    bool broken = false;
    while (auto rec = scan.next()) {
      if (first) {
        first = false;
        std::optional<FileHeader> h;
        if (rec->type == RecordType::kFileHeader)
          h = decode_file_header(rec->body);
        if (!h) {
          broken = true;
          break;
        }
        if (rep.n == 0) {
          rep.pid = h->pid;
          rep.n = h->n;
        }
        r.found_any = true;
        ++rep.journal_records;
        continue;
      }
      bool ok = false;
      switch (rec->type) {
        case RecordType::kAnnouncement: {
          auto a = wire::decode_announcement(rec->body);
          if (a) {
            journal.push_back(*a);
            ok = true;
          }
          break;
        }
        case RecordType::kIncarnation: {
          auto inc = decode_incarnation(rec->body);
          if (inc) {
            durable_max_inc = std::max(durable_max_inc, *inc);
            ok = true;
          }
          break;
        }
        case RecordType::kPark: {
          std::optional<AppMsg> m;
          if (rep.n > 0) m = decode_park(rec->body, rep.n);
          if (m) {
            parked[m->id] = std::move(*m);
            ok = true;
          }
          break;
        }
        case RecordType::kUnpark: {
          auto id = decode_unpark(rec->body);
          if (id) {
            parked.erase(*id);
            ok = true;
          }
          break;
        }
        default:
          break;
      }
      if (!ok) {
        broken = true;
        break;
      }
      ++rep.journal_records;
      rep.journal_valid_bytes = scan.valid_bytes();
    }
    if (!broken) {
      rep.journal_valid_bytes = scan.valid_bytes();
      broken = !scan.clean();
    }
    rep.journal_torn = broken;
    if (broken) {
      std::ostringstream os;
      os << "torn/corrupt journal tail in " << journal_path.string()
         << " (truncating at byte " << rep.journal_valid_bytes << " of "
         << rep.journal_file_bytes << ")";
      rep.warnings.push_back(os.str());
    }
  }

  // ---- contiguity: the surviving map must be one run from the base ----
  if (!recs.empty()) {
    size_t first_pos = recs.begin()->first;
    if (first_pos > base_floor) {
      // Records below first_pos lived only in segments deleted by prefix
      // GC whose discard record was itself reclaimed; the run's own start
      // is the authoritative base.
      base_floor = first_pos;
    }
    size_t expect = base_floor;
    for (auto it = recs.begin(); it != recs.end(); ++it, ++expect) {
      if (it->first != expect) {
        std::ostringstream os;
        os << "gap in recovered log at position " << expect
           << "; dropping records from " << it->first << " on";
        rep.warnings.push_back(os.str());
        recs.erase(it, recs.end());
        break;
      }
    }
  }
  r.image.base = base_floor;
  r.image.records.reserve(recs.size());
  for (auto& [pos, rec] : recs) r.image.records.push_back(std::move(rec));
  r.image.journal = std::move(journal);
  r.image.parked = std::move(parked);
  r.image.durable_max_inc = durable_max_inc;

  // ---- checkpoint files ----
  size_t log_end = r.image.base + r.image.records.size();
  for (const fs::path& path : ckpt_paths) {
    std::vector<uint8_t> bytes = read_file(path);
    RecordScanner scan(bytes);
    std::optional<Checkpoint> cp;
    auto h0 = scan.next();
    std::optional<FileHeader> header;
    if (h0 && h0->type == RecordType::kFileHeader)
      header = decode_file_header(h0->body);
    if (header) {
      if (rep.n == 0) {
        rep.pid = header->pid;
        rep.n = header->n;
      }
      r.found_any = true;
      auto body = scan.next();
      if (body && body->type == RecordType::kCheckpoint)
        cp = decode_checkpoint(body->body, rep.n);
      // Exactly header + checkpoint, ending on a record boundary.
      scan.next();
      if (!scan.clean()) cp.reset();
    }
    if (!cp) {
      rep.invalid_checkpoints.push_back(path.string());
      rep.warnings.push_back("invalid checkpoint file: " + path.string());
      continue;
    }
    if (cp->log_pos < r.image.base || cp->log_pos > log_end) {
      rep.stale_checkpoints.push_back(path.string());
      std::ostringstream os;
      os << "checkpoint " << path.string() << " references log position "
         << cp->log_pos << " outside recovered range [" << r.image.base << ", "
         << log_end << "]";
      rep.warnings.push_back(os.str());
      continue;
    }
    ++rep.checkpoints_valid;
    r.image.checkpoints.push_back(std::move(*cp));
  }
  std::sort(r.image.checkpoints.begin(), r.image.checkpoints.end(),
            [](const Checkpoint& a, const Checkpoint& b) { return a.id < b.id; });

  // ---- hard-inconsistency checks ----
  if (r.found_any && !r.image.records.empty() && r.image.checkpoints.empty()) {
    rep.errors.push_back(
        "log records recovered but no usable checkpoint: replay has no "
        "starting state");
  }
  for (const SegmentReport& seg : rep.segments) {
    if (!seg.dropped) r.last_segment_index = std::max(r.last_segment_index, seg.index);
  }
  return r;
}

void repair_process_dir(const AnalysisResult& r) {
  std::error_code ec;
  for (const SegmentReport& seg : r.report.segments) {
    if (seg.dropped) {
      fs::remove(seg.path, ec);
    } else if (seg.torn) {
      if (seg.valid_bytes == 0) {
        fs::remove(seg.path, ec);
      } else {
        fs::resize_file(seg.path, seg.valid_bytes, ec);
      }
    }
  }
  if (r.report.journal_torn && !r.report.journal_path.empty()) {
    if (r.report.journal_valid_bytes == 0) {
      fs::remove(r.report.journal_path, ec);
    } else {
      fs::resize_file(r.report.journal_path, r.report.journal_valid_bytes, ec);
    }
  }
  for (const std::string& p : r.report.invalid_checkpoints) fs::remove(p, ec);
  for (const std::string& p : r.report.stale_checkpoints) fs::remove(p, ec);
}

}  // namespace koptlog::disk
