// Analysis scan over one process's storage directory — the ARIES-style
// restart pass shared by the disk backend's recover() and the koptlog_fsck
// integrity tool. The scan is pure (read-only); repair_process_dir applies
// the truncations/unlinks the scan proposes.
//
// Scan semantics: WAL records replay into a position-keyed map — a message
// record sets its logical position (a later duplicate of the same position
// overwrites, so a re-appended post-rollback record wins), a truncate
// record erases every position >= pos, a discard-prefix record erases
// every position < pos and raises the base floor. The first framing/CRC
// failure in a segment ends that segment and drops every later segment
// (their ordering can no longer be trusted); the surviving map must be a
// contiguous run, which becomes the stable log image. Checkpoint files are
// validated independently and filtered against the recovered log bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/storage_backend.h"

namespace koptlog::disk {

struct SegmentReport {
  std::string path;
  uint64_t index = 0;
  uint64_t start_lsn = 0;
  size_t records = 0;        ///< valid records scanned (incl. header)
  size_t valid_bytes = 0;    ///< prefix that parsed cleanly
  size_t file_bytes = 0;
  bool torn = false;         ///< hit a bad frame before end of file
  bool dropped = false;      ///< follows a torn segment; wholly ignored
  bool has_msgs = false;
  size_t max_msg_pos = 0;    ///< only meaningful when has_msgs
};

struct FsckReport {
  ProcessId pid = -1;
  int n = 0;
  std::vector<SegmentReport> segments;
  size_t msg_records = 0;
  size_t truncate_records = 0;
  size_t discard_records = 0;
  size_t journal_records = 0;
  size_t journal_valid_bytes = 0;
  size_t journal_file_bytes = 0;
  bool journal_torn = false;
  std::string journal_path;
  size_t checkpoints_valid = 0;
  std::vector<std::string> invalid_checkpoints;  ///< paths failing validation
  std::vector<std::string> stale_checkpoints;    ///< valid but outside log bounds
  std::vector<std::string> warnings;  ///< cleanly-truncatable damage
  std::vector<std::string> errors;    ///< hard inconsistencies
  bool hard_error() const { return !errors.empty(); }
};

struct AnalysisResult {
  bool found_any = false;  ///< at least one file with a valid header
  RecoveredImage image;
  FsckReport report;
  uint64_t last_segment_index = 0;  ///< highest surviving segment index
};

/// Read-only scan of `<dir>` (one process's directory, the `p<pid>/` level).
AnalysisResult analyze_process_dir(const std::string& dir);

/// Apply the scan's repairs in place: truncate torn files at their valid
/// prefix, unlink dropped segments and invalid/stale checkpoint files.
void repair_process_dir(const AnalysisResult& r);

}  // namespace koptlog::disk
