#include "storage/message_log.h"

#include "storage/storage_backend.h"

namespace koptlog {

void MessageLog::append(LogRecord rec) {
  size_t pos = size();
  records_.push_back(std::move(rec));
  if (backend_) backend_->on_append(pos, records_.back());
}

std::vector<LogRecord> MessageLog::lose_volatile() {
  std::vector<LogRecord> lost(records_.begin() + static_cast<ptrdiff_t>(stable_prefix_),
                              records_.end());
  records_.resize(stable_prefix_);
  return lost;
}

std::vector<LogRecord> MessageLog::truncate_from(size_t pos) {
  KOPT_CHECK(pos >= base_ && pos <= size());
  size_t idx = pos - base_;
  std::vector<LogRecord> dropped(records_.begin() + static_cast<ptrdiff_t>(idx),
                                 records_.end());
  records_.resize(idx);
  if (stable_prefix_ > idx) stable_prefix_ = idx;
  if (backend_) backend_->on_truncate(pos);
  return dropped;
}

size_t MessageLog::discard_prefix(size_t pos) {
  if (pos <= base_) return 0;
  KOPT_CHECK_MSG(pos <= stable_count(),
                 "cannot GC volatile records (pos=" << pos << ", stable="
                                                    << stable_count() << ")");
  size_t n = pos - base_;
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(n));
  stable_prefix_ -= n;
  base_ = pos;
  if (backend_) backend_->on_discard_prefix(pos);
  return n;
}

void MessageLog::restore(std::vector<LogRecord> records, size_t base) {
  records_ = std::move(records);
  base_ = base;
  stable_prefix_ = records_.size();
}

}  // namespace koptlog
