#include "storage/message_log.h"

namespace koptlog {

std::vector<LogRecord> MessageLog::lose_volatile() {
  std::vector<LogRecord> lost(records_.begin() + static_cast<ptrdiff_t>(stable_prefix_),
                              records_.end());
  records_.resize(stable_prefix_);
  return lost;
}

std::vector<LogRecord> MessageLog::truncate_from(size_t pos) {
  KOPT_CHECK(pos >= base_ && pos <= size());
  size_t idx = pos - base_;
  std::vector<LogRecord> dropped(records_.begin() + static_cast<ptrdiff_t>(idx),
                                 records_.end());
  records_.resize(idx);
  if (stable_prefix_ > idx) stable_prefix_ = idx;
  return dropped;
}

size_t MessageLog::discard_prefix(size_t pos) {
  if (pos <= base_) return 0;
  KOPT_CHECK_MSG(pos <= stable_count(),
                 "cannot GC volatile records (pos=" << pos << ", stable="
                                                    << stable_count() << ")");
  size_t n = pos - base_;
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(n));
  stable_prefix_ -= n;
  base_ = pos;
  return n;
}

}  // namespace koptlog
