// Per-process message log: the delivered-message records that, together
// with checkpoints, make state intervals reconstructable. Records first
// land in a volatile buffer (optimistic logging) and move to stable storage
// on flush; a failure loses the volatile suffix, which is precisely what
// creates orphans.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/entry.h"
#include "core/protocol_msg.h"

namespace koptlog {

class StorageBackend;

/// One logged delivery: the full message (content + piggyback, needed to
/// re-run the deterministic merge during replay) plus the interval the
/// delivery started.
struct LogRecord {
  AppMsg msg;
  IntervalId started;  ///< (t,x)_i of the interval this delivery began
};

/// Record positions are *logical*: they keep their value across
/// garbage collection of the log's prefix (discard_prefix), so checkpoint
/// log positions never need rewriting.
///
/// Every structural mutation (append / truncate / discard) is mirrored into
/// the bound StorageBackend, which is what makes the bookkeeping durable;
/// restore() bypasses the mirror — it *comes from* the backend.
class MessageLog {
 public:
  /// Bound once by StableStorage; may be null (pure in-memory bookkeeping).
  void bind_backend(StorageBackend* b) { backend_ = b; }

  /// Append a freshly delivered message to the volatile buffer.
  void append(LogRecord rec);

  /// Move every volatile record to stable storage ("log all the unlogged
  /// messages"). Returns how many records were flushed.
  size_t flush_all() {
    size_t n = records_.size() - stable_prefix_;
    stable_prefix_ = records_.size();
    return n;
  }

  /// Asynchronous-flush completion: records [0, pos) are now stable.
  void flush_to(size_t pos) {
    KOPT_CHECK(pos <= size());
    if (pos > base_) stable_prefix_ = std::max(stable_prefix_, pos - base_);
  }

  /// One past the last logical position.
  size_t size() const { return base_ + records_.size(); }
  /// First retained logical position (grows with garbage collection).
  size_t base() const { return base_; }
  size_t stable_count() const { return base_ + stable_prefix_; }
  size_t volatile_count() const { return records_.size() - stable_prefix_; }
  size_t retained_count() const { return records_.size(); }

  const LogRecord& at(size_t pos) const {
    KOPT_CHECK_MSG(pos >= base_ && pos < size(),
                   "log position " << pos << " outside [" << base_ << ", "
                                   << size() << ")");
    return records_[pos - base_];
  }

  /// Crash: the volatile suffix is lost. Returns the lost records so the
  /// oracle can mark the corresponding intervals as lost.
  std::vector<LogRecord> lose_volatile();

  /// Rollback: drop every record at logical position >= pos (both stable
  /// and — by protocol order, already flushed — volatile ones). Returns the
  /// dropped records; the caller re-buffers the non-orphans.
  std::vector<LogRecord> truncate_from(size_t pos);

  /// Garbage collection: reclaim every (stable) record before logical
  /// position `pos`. Returns how many records were reclaimed.
  size_t discard_prefix(size_t pos);

  /// Recovery: install the stable image a backend rebuilt from its media.
  /// Every restored record is stable; the mirror hooks are not invoked.
  void restore(std::vector<LogRecord> records, size_t base);

 private:
  std::vector<LogRecord> records_;
  size_t stable_prefix_ = 0;  ///< physical index into records_
  size_t base_ = 0;           ///< logical position of records_[0]
  StorageBackend* backend_ = nullptr;
};

}  // namespace koptlog
