#include "storage/stable_storage.h"

namespace koptlog {

bool StableStorage::recover() {
  if (!backend_ || !backend_->durable()) return false;
  RecoveredImage img;
  if (!backend_->recover(img)) return false;
  log_.restore(std::move(img.records), img.base);
  checkpoints_.restore(std::move(img.checkpoints));
  journal_ = std::move(img.journal);
  parked_ = std::move(img.parked);
  // The recovered mark can only extend what we already hold: recover() runs
  // either on a fresh StableStorage or at restart, where the in-memory mark
  // was itself journaled through the backend.
  KOPT_CHECK(img.durable_max_inc >= durable_max_inc_);
  durable_max_inc_ = img.durable_max_inc;
  return true;
}

}  // namespace koptlog
