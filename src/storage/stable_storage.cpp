#include "storage/stable_storage.h"

// StableStorage is currently header-only; this translation unit anchors the
// module and keeps a stable home for future out-of-line definitions.
namespace koptlog {}
