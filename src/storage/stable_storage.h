// StableStorage — one per process: the checkpoint store, the message log,
// the synchronously-logged announcement journal (iet entries survive
// failures, Figure 3), and the stable-storage cost model that makes
// pessimistic vs. optimistic failure-free overhead measurable.
#pragma once

#include <map>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "core/protocol_msg.h"
#include "storage/checkpoint_store.h"
#include "storage/message_log.h"

namespace koptlog {

/// Cost model for stable-storage operations, in simulated microseconds.
/// Synchronous writes block the issuing process; asynchronous flushes are
/// modelled as background DMA and only delay the stability watermark.
struct StorageCosts {
  SimTime sync_write_us = 500;       ///< one synchronous record write
  SimTime async_flush_base_us = 300; ///< latency before a flush batch lands
  SimTime async_flush_per_msg_us = 5;
  SimTime checkpoint_write_us = 2000;
};

class StableStorage {
 public:
  explicit StableStorage(StorageCosts costs) : costs_(costs) {}

  MessageLog& log() { return log_; }
  const MessageLog& log() const { return log_; }

  CheckpointStore& checkpoints() { return checkpoints_; }
  const CheckpointStore& checkpoints() const { return checkpoints_; }

  /// Synchronously journal an announcement (own failure announcement or a
  /// received one). The journal survives failures; Restart replays it to
  /// rebuild the incarnation end table.
  void journal_announcement(const Announcement& a) { journal_.push_back(a); }
  const std::vector<Announcement>& announcement_journal() const { return journal_; }

  /// Undone-but-logged messages. A rollback truncates the undone suffix of
  /// the message log, but those messages were already on stable storage
  /// (the rollback flushes first) and will be redelivered; parking them
  /// keeps them crash-safe until the *redelivery* is stable, exactly as if
  /// they had never left the log. Unparked when the new record is flushed
  /// or the message turns out to be an orphan.
  void park(const AppMsg& msg) { parked_[msg.id] = msg; }
  void unpark(const MsgId& id) { parked_.erase(id); }
  const std::map<MsgId, AppMsg>& parked() const { return parked_; }

  /// Highest incarnation number ever used by this process, synchronously
  /// journaled at every increment so a crash can never cause an incarnation
  /// number to be reused (which would break orphan detection).
  Incarnation durable_max_inc() const { return durable_max_inc_; }
  void set_durable_max_inc(Incarnation inc) {
    KOPT_CHECK(inc >= durable_max_inc_);
    durable_max_inc_ = inc;
  }

  const StorageCosts& costs() const { return costs_; }

  /// Accounting for benches.
  int64_t sync_writes = 0;
  int64_t async_flushes = 0;
  int64_t records_flushed = 0;
  int64_t checkpoints_taken = 0;

 private:
  StorageCosts costs_;
  MessageLog log_;
  CheckpointStore checkpoints_;
  std::vector<Announcement> journal_;
  std::map<MsgId, AppMsg> parked_;
  Incarnation durable_max_inc_ = 0;
};

}  // namespace koptlog
