// StableStorage — one per process: the checkpoint store, the message log,
// the synchronously-logged announcement journal (iet entries survive
// failures, Figure 3), and the storage backend that makes it all durable —
// either the cost-model simulation or a real on-disk log (see
// storage_backend.h).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "core/protocol_msg.h"
#include "storage/checkpoint_store.h"
#include "storage/message_log.h"
#include "storage/storage_backend.h"

namespace koptlog {

/// Operation counters, read by tests and examples; the same counts are
/// mirrored into the cluster Stats bag (storage.* -> koptlog_storage_*).
struct StorageCounters {
  int64_t sync_writes = 0;
  int64_t async_flushes = 0;
  int64_t records_flushed = 0;
  int64_t checkpoints_taken = 0;
};

class StableStorage {
 public:
  /// `backend` may be null: pure in-memory bookkeeping, used by unit tests
  /// that never flush through the seam.
  explicit StableStorage(StorageCosts costs,
                         std::unique_ptr<StorageBackend> backend = nullptr)
      : costs_(costs), backend_(std::move(backend)) {
    log_.bind_backend(backend_.get());
    checkpoints_.bind_backend(backend_.get());
  }

  MessageLog& log() { return log_; }
  const MessageLog& log() const { return log_; }

  CheckpointStore& checkpoints() { return checkpoints_; }
  const CheckpointStore& checkpoints() const { return checkpoints_; }

  /// Synchronously journal an announcement (own failure announcement or a
  /// received one). The journal survives failures; Restart replays it to
  /// rebuild the incarnation end table.
  void journal_announcement(const Announcement& a) {
    journal_.push_back(a);
    if (backend_) backend_->on_announcement(a);
  }
  const std::vector<Announcement>& announcement_journal() const { return journal_; }

  /// Undone-but-logged messages. A rollback truncates the undone suffix of
  /// the message log, but those messages were already on stable storage
  /// (the rollback flushes first) and will be redelivered; parking them
  /// keeps them crash-safe until the *redelivery* is stable, exactly as if
  /// they had never left the log. Unparked when the new record is flushed
  /// or the message turns out to be an orphan.
  void park(const AppMsg& msg) {
    parked_[msg.id] = msg;
    if (backend_) backend_->on_park(msg);
  }
  /// Unparking an id that was never parked is a frequent no-op (every
  /// newly-stable record is offered); only a real erasure reaches the
  /// backend, so the durable journal doesn't pay a write per stable record.
  void unpark(const MsgId& id) {
    if (parked_.erase(id) > 0 && backend_) backend_->on_unpark(id);
  }
  const std::map<MsgId, AppMsg>& parked() const { return parked_; }

  /// Highest incarnation number ever used by this process, synchronously
  /// journaled at every increment so a crash can never cause an incarnation
  /// number to be reused (which would break orphan detection).
  Incarnation durable_max_inc() const { return durable_max_inc_; }
  void set_durable_max_inc(Incarnation inc) {
    KOPT_CHECK(inc >= durable_max_inc_);
    durable_max_inc_ = inc;
    if (backend_) backend_->on_incarnation(inc);
  }

  const StorageCosts& costs() const { return costs_; }

  /// The backend seam; null only in backend-less unit-test storage.
  StorageBackend* backend() const { return backend_.get(); }
  /// True when the backend really persists (restart recovers from media).
  bool durable() const { return backend_ && backend_->durable(); }

  /// Restart under a durable backend: replace the in-memory image with the
  /// one the backend's analysis scan rebuilds from its media. Returns false
  /// when there is nothing to recover from (model backend) — the in-memory
  /// state then *is* the stable image, exactly as before the seam.
  bool recover();

  // ---- accounting (benches, tests; mirrored into Stats by the callers) ----
  const StorageCounters& counters() const { return counters_; }
  void count_sync_write() { ++counters_.sync_writes; }
  void count_async_flush() { ++counters_.async_flushes; }
  void count_records_flushed(int64_t n) { counters_.records_flushed += n; }
  void count_checkpoint() { ++counters_.checkpoints_taken; }

 private:
  StorageCosts costs_;
  std::unique_ptr<StorageBackend> backend_;
  MessageLog log_;
  CheckpointStore checkpoints_;
  std::vector<Announcement> journal_;
  std::map<MsgId, AppMsg> parked_;
  Incarnation durable_max_inc_ = 0;
  StorageCounters counters_;
};

}  // namespace koptlog
