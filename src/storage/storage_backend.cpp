#include "storage/storage_backend.h"

#include <utility>

#include "common/check.h"
#include "sim/scheduler.h"
#include "storage/disk/disk_backend.h"

namespace koptlog {

namespace {

/// The cost-model backend: durability is simulated. Mutations are no-ops;
/// a flush request completes after the configured DMA delay. The scheduler
/// call it makes is byte-identical (same call, same time, same order) to
/// what ReplayEngine::start_async_flush issued before the seam existed, so
/// runs on the model backend stay bit-for-bit deterministic vs. the past.
class ModelBackend final : public StorageBackend {
 public:
  ModelBackend(const StorageCosts& costs, Scheduler& scheduler)
      : costs_(costs), sched_(scheduler) {}

  const char* name() const override { return "model"; }
  bool durable() const override { return false; }

  void on_append(size_t, const LogRecord&) override {}
  void on_truncate(size_t) override {}
  void on_discard_prefix(size_t) override {}
  void on_checkpoint(const Checkpoint&) override {}
  void on_discard_checkpoint(uint64_t) override {}
  void on_announcement(const Announcement&) override {}
  void on_incarnation(Incarnation) override {}
  void on_park(const AppMsg&) override {}
  void on_unpark(const MsgId&) override {}

  void request_flush(size_t upto, size_t nvol, FlushDone done) override {
    SimTime d = costs_.async_flush_base_us +
                static_cast<SimTime>(nvol) * costs_.async_flush_per_msg_us;
    sched_.schedule_after(d, [done = std::move(done), upto] { done(upto); });
  }

  void sync_flush() override {}
  void on_crash() override {}
  bool recover(RecoveredImage&) override { return false; }

 private:
  const StorageCosts costs_;
  Scheduler& sched_;
};

}  // namespace

std::unique_ptr<StorageBackend> make_storage_backend(const StorageOptions& opts,
                                                     const StorageCosts& costs,
                                                     ProcessId pid, int n,
                                                     Scheduler& scheduler,
                                                     Stats* stats) {
  if (opts.backend == "model")
    return std::make_unique<ModelBackend>(costs, scheduler);
  if (opts.backend == "disk")
    return make_disk_backend(opts, pid, n, scheduler, stats);
  KOPT_CHECK_MSG(false, "unknown storage backend '" << opts.backend << "'");
  return nullptr;
}

}  // namespace koptlog
