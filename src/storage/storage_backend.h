// StorageBackend — the seam between the protocol's logical stable-storage
// bookkeeping (MessageLog / CheckpointStore / StableStorage) and whatever
// makes that bookkeeping durable. Two backends implement it:
//
//  * the cost-model backend ("model", the default): durability is simulated.
//    Mutation hooks are no-ops and a flush request completes after the
//    configured async_flush_* delay — bit-for-bit identical to the
//    pre-seam behaviour, so golden traces and determinism regressions hold.
//  * the disk backend ("disk", src/storage/disk/): a real segmented
//    append-only log with CRC-checksummed records, a synchronously-fsynced
//    journal, checkpoint files, and group commit — one fsync per
//    group_commit_us window — with completion callbacks that fire only
//    after the fsync covering the requested LSN has actually returned.
//
// The logical containers mirror every mutation into the backend; restores
// (recovery) bypass the hooks. Positions are the MessageLog's logical
// positions ("LSNs"): they survive garbage collection of the prefix.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/protocol_msg.h"
#include "storage/checkpoint_store.h"
#include "storage/message_log.h"

namespace koptlog {

class Scheduler;
class Stats;
class HealthRegistry;

/// Cost model for stable-storage operations, in simulated microseconds.
/// Synchronous writes block the issuing process; asynchronous flushes are
/// modelled as background DMA and only delay the stability watermark.
struct StorageCosts {
  SimTime sync_write_us = 500;       ///< one synchronous record write
  SimTime async_flush_base_us = 300; ///< latency before a flush batch lands
  SimTime async_flush_per_msg_us = 5;
  SimTime checkpoint_write_us = 2000;
};

/// Which backend to construct and how. Carried by ProtocolConfig so every
/// harness (simulator, threaded, tools, benches) plumbs it the same way.
struct StorageOptions {
  std::string backend = "model";  ///< "model" or "disk"
  /// Disk backend: root directory; each process uses `<dir>/p<pid>/`.
  std::string dir;
  /// Disk backend: fsync coalescing window. Flush requests arriving within
  /// one window share a single fsync.
  SimTime group_commit_us = 300;
  /// Disk backend: roll to a new WAL segment once the current one exceeds
  /// this many bytes.
  size_t segment_bytes = 1u << 20;
  /// Disk backend: run file writes and fsyncs on a dedicated flusher thread
  /// (threaded execution backend — keeps I/O off the shard event loop).
  bool threaded_io = false;
  /// Disk backend: recover from an existing directory instead of starting
  /// fresh (wiping it). The host must then bring the process up via
  /// restart() rather than start().
  bool recover = false;
  /// Optional runtime health telemetry (obs/health): the disk backend
  /// attaches a "storage<pid>" domain (fsync latency, window fill, staged
  /// backlog, segment rolls). Must outlive the backend; null = off.
  HealthRegistry* health = nullptr;
};

/// Everything a durable backend reconstructs from disk at restart
/// (ARIES-style analysis scan): the stable log image, checkpoints, the
/// announcement journal, parked messages, and the incarnation high-water
/// mark. Model backends never produce one.
struct RecoveredImage {
  std::vector<LogRecord> records;  ///< stable records from `base` upward
  size_t base = 0;                 ///< logical position of records[0]
  std::vector<Checkpoint> checkpoints;  ///< sorted by id
  std::vector<Announcement> journal;
  std::map<MsgId, AppMsg> parked;
  Incarnation durable_max_inc = 0;
};

class StorageBackend {
 public:
  /// Flush completion: `durable_lsn` is the log bound an fsync has actually
  /// completed for — every record at a position below it is on stable
  /// storage. Always >= the request's `upto` when invoked.
  using FlushDone = std::function<void(size_t durable_lsn)>;

  virtual ~StorageBackend() = default;

  virtual const char* name() const = 0;
  /// True when the backend really persists (recover() can return state).
  virtual bool durable() const = 0;

  // ---- mutation mirror (called by the logical containers) ----
  virtual void on_append(size_t pos, const LogRecord& rec) = 0;
  virtual void on_truncate(size_t pos) = 0;
  virtual void on_discard_prefix(size_t pos) = 0;
  virtual void on_checkpoint(const Checkpoint& cp) = 0;
  virtual void on_discard_checkpoint(uint64_t id) = 0;
  virtual void on_announcement(const Announcement& a) = 0;
  virtual void on_incarnation(Incarnation inc) = 0;
  virtual void on_park(const AppMsg& m) = 0;
  virtual void on_unpark(const MsgId& id) = 0;

  // ---- flushing ----
  /// Request that the `nvol` volatile records below `upto` become durable;
  /// `done` fires (through the scheduler, on the process's event loop) once
  /// they are. The model backend completes after the simulated delay; the
  /// disk backend after the group-commit window's fsync returns.
  virtual void request_flush(size_t upto, size_t nvol, FlushDone done) = 0;
  /// Synchronously make everything appended so far durable (checkpoint,
  /// rollback and drain paths; the caller charges the simulated cost).
  virtual void sync_flush() = 0;

  /// Crash: whatever was appended but not yet made durable is lost.
  /// Pending flush completions must never fire.
  virtual void on_crash() = 0;

  /// Restart: rebuild the stable image from the backend's media. Returns
  /// false when there is nothing to recover from (model backend, or a
  /// fresh directory).
  virtual bool recover(RecoveredImage& out) = 0;

  /// Block until all in-flight background I/O has drained and stop issuing
  /// scheduler callbacks (threaded backend shutdown, before the shard
  /// event loops stop).
  virtual void quiesce() {}
};

/// Build the backend `opts` names. `n` is the system size (the disk
/// backend's codecs need it to rebuild full dependency vectors); `stats`
/// may be null (no metrics).
std::unique_ptr<StorageBackend> make_storage_backend(const StorageOptions& opts,
                                                     const StorageCosts& costs,
                                                     ProcessId pid, int n,
                                                     Scheduler& scheduler,
                                                     Stats* stats);

}  // namespace koptlog
