#include "wire/codec.h"

#include "common/check.h"

namespace koptlog::wire {

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

void Encoder::u16(uint16_t v) {
  out_.push_back(static_cast<uint8_t>(v));
  out_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::varu(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<uint8_t>(v));
}

uint64_t Decoder::varu() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t b = u8();
    if (failed_) return 0;
    // The 10th byte may only carry the 64th bit.
    if (shift == 63 && (b & 0xFE) != 0) {
      failed_ = true;
      return 0;
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  failed_ = true;  // continuation bit on the 10th byte: overlong
  return 0;
}

bool Decoder::take(size_t n) {
  if (failed_ || pos_ + n > in_.size()) {
    failed_ = true;
    return false;
  }
  return true;
}

uint8_t Decoder::u8() {
  if (!take(1)) return 0;
  return in_[pos_++];
}

uint16_t Decoder::u16() {
  if (!take(2)) return 0;
  uint16_t v = static_cast<uint16_t>(in_[pos_] | (in_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

uint32_t Decoder::u32() {
  if (!take(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t Decoder::u64() {
  if (!take(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 8;
  return v;
}

// ---------------------------------------------------------------------------
// Application messages
// ---------------------------------------------------------------------------

namespace {

void encode_vector(Encoder& e, const DepVector& v, bool null_omission) {
  if (null_omission) {
    e.u16(static_cast<uint16_t>(v.non_null_count()));
    v.for_each([&](ProcessId j, const Entry& ent) {
      e.u16(static_cast<uint16_t>(j));
      e.i32(ent.inc);
      e.i64(ent.sii);
    });
  } else {
    // The Strom-Yemini baseline ships the full size-N vector; NULL slots
    // travel as (-1,-1).
    e.u16(static_cast<uint16_t>(v.size()));
    for (ProcessId j = 0; j < v.size(); ++j) {
      e.u16(static_cast<uint16_t>(j));
      e.i32(v.at(j) ? v.at(j)->inc : -1);
      e.i64(v.at(j) ? v.at(j)->sii : -1);
    }
  }
}

bool decode_vector(Decoder& d, DepVector& v, int n) {
  uint16_t count = d.u16();
  if (static_cast<int>(count) > n) return false;
  for (uint16_t i = 0; i < count && !d.failed(); ++i) {
    uint16_t j = d.u16();
    int32_t inc = d.i32();
    int64_t sii = d.i64();
    if (static_cast<int>(j) >= n) return false;
    if (inc >= 0) v.set(static_cast<ProcessId>(j), Entry{inc, sii});
  }
  return !d.failed();
}

void encode_payload(Encoder& e, const AppPayload& p) {
  e.i32(p.kind);
  e.i64(p.a);
  e.i64(p.b);
  e.i64(p.c);
  e.i32(p.ttl);
}

AppPayload decode_payload(Decoder& d) {
  AppPayload p;
  p.kind = d.i32();
  p.a = d.i64();
  p.b = d.i64();
  p.c = d.i64();
  p.ttl = d.i32();
  return p;
}

}  // namespace

void encode_dep_vector(Encoder& e, const DepVector& v, bool null_omission) {
  encode_vector(e, v, null_omission);
}

bool decode_dep_vector(Decoder& d, DepVector& v, int n) {
  return decode_vector(d, v, n);
}

std::vector<uint8_t> encode_app_msg(const AppMsg& m, bool null_omission) {
  Encoder e;
  e.i32(m.from);
  e.i32(m.to);
  e.u64(m.id.seq);  // id.src == from
  e.i32(m.born_of.inc);
  e.i64(m.born_of.sii);  // born_of.pid == from
  encode_payload(e, m.payload);
  encode_vector(e, m.tdv, null_omission);
  return e.take();
}

std::optional<AppMsg> decode_app_msg(std::span<const uint8_t> bytes, int n,
                                     bool null_omission) {
  (void)null_omission;  // the count-prefixed format decodes either form
  Decoder d(bytes);
  AppMsg m;
  m.from = d.i32();
  m.to = d.i32();
  m.id = MsgId{m.from, d.u64()};
  m.born_of.pid = m.from;
  m.born_of.inc = d.i32();
  m.born_of.sii = d.i64();
  m.payload = decode_payload(d);
  m.tdv = DepVector(n);
  if (!decode_vector(d, m.tdv, n)) return std::nullopt;
  if (!d.done()) return std::nullopt;
  return m;
}

// ---------------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode_announcement(const Announcement& a) {
  Encoder e;
  e.i32(a.from);
  e.i32(a.ended.inc);
  e.i64(a.ended.sii);
  e.u8(a.from_failure ? 1 : 0);
  return e.take();
}

std::optional<Announcement> decode_announcement(std::span<const uint8_t> b) {
  Decoder d(b);
  Announcement a;
  a.from = d.i32();
  a.ended.inc = d.i32();
  a.ended.sii = d.i64();
  a.from_failure = d.u8() != 0;
  if (!d.done()) return std::nullopt;
  return a;
}

std::vector<uint8_t> encode_log_progress(const LogProgressMsg& lp) {
  Encoder e;
  e.i32(lp.from);
  e.u16(static_cast<uint16_t>(lp.stable.size()));
  for (const Entry& en : lp.stable) {
    e.i32(en.inc);
    e.i64(en.sii);
  }
  return e.take();
}

std::optional<LogProgressMsg> decode_log_progress(std::span<const uint8_t> b) {
  Decoder d(b);
  LogProgressMsg lp;
  lp.from = d.i32();
  uint16_t count = d.u16();
  for (uint16_t i = 0; i < count && !d.failed(); ++i) {
    Entry en;
    en.inc = d.i32();
    en.sii = d.i64();
    lp.stable.push_back(en);
  }
  if (!d.done()) return std::nullopt;
  return lp;
}

std::vector<uint8_t> encode_dep_query(const DepQuery& q) {
  Encoder e;
  e.i32(q.requester);
  e.i32(q.target.pid);
  e.i32(q.target.inc);
  e.i64(q.target.sii);
  e.u64(q.query_id);
  return e.take();
}

std::optional<DepQuery> decode_dep_query(std::span<const uint8_t> b) {
  Decoder d(b);
  DepQuery q;
  q.requester = d.i32();
  q.target.pid = d.i32();
  q.target.inc = d.i32();
  q.target.sii = d.i64();
  q.query_id = d.u64();
  if (!d.done()) return std::nullopt;
  return q;
}

std::vector<uint8_t> encode_dep_reply(const DepReply& r) {
  Encoder e;
  e.i32(r.owner);
  e.u64(r.query_id);
  e.i32(r.target.pid);
  e.i32(r.target.inc);
  e.i64(r.target.sii);
  e.i32(static_cast<int32_t>(r.status));
  e.u16(static_cast<uint16_t>(r.deps.size()));
  for (const IntervalId& iv : r.deps) {
    e.i32(iv.pid);
    e.i32(iv.inc);
    e.i64(iv.sii);
  }
  return e.take();
}

std::optional<DepReply> decode_dep_reply(std::span<const uint8_t> b) {
  Decoder d(b);
  DepReply r;
  r.owner = d.i32();
  r.query_id = d.u64();
  r.target.pid = d.i32();
  r.target.inc = d.i32();
  r.target.sii = d.i64();
  int32_t status = d.i32();
  if (status < 0 || status > 3) return std::nullopt;
  r.status = static_cast<DepReply::Status>(status);
  uint16_t count = d.u16();
  for (uint16_t i = 0; i < count && !d.failed(); ++i) {
    IntervalId iv;
    iv.pid = d.i32();
    iv.inc = d.i32();
    iv.sii = d.i64();
    r.deps.push_back(iv);
  }
  if (!d.done()) return std::nullopt;
  return r;
}

}  // namespace koptlog::wire
