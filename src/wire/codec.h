// Wire codec — byte-level serialization for everything the protocol puts
// on the network. The simulator charges latency by message size, and the
// benches report piggyback bytes; this codec makes those numbers real:
// tests assert that the analytic wire_bytes() estimates equal the encoded
// sizes, so the scalability results (E4/E9/E11) measure an actual encoding
// rather than a guess.
//
// Format: little-endian fixed-width integers, length-prefixed sequences,
// one tag byte per optional. Deliberately simple — the interesting part is
// the NULL-omitting dependency-vector encoding of paper §4.2 ("NULL entries
// can be omitted"): non-NULL entries are written as (pid, inc, sii)
// triples behind a count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/protocol_msg.h"

namespace koptlog::wire {

class Encoder {
 public:
  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

  /// LEB128 unsigned varint: 1 byte up to 127, 2 up to 16383, ... — the
  /// delta frames' workhorse (pids and LSNs are small in practice).
  void varu(uint64_t v);
  /// Zigzag-mapped signed varint (small magnitudes of either sign stay
  /// short).
  void vari(int64_t v) {
    varu((static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63));
  }

  const std::vector<uint8_t>& bytes() const { return out_; }
  std::vector<uint8_t> take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::vector<uint8_t> out_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const uint8_t> in) : in_(in) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }

  /// LEB128 unsigned varint. Overlong encodings (more than 10 bytes, or
  /// bits beyond the 64th) fail the stream like a truncation would.
  uint64_t varu();
  int64_t vari() {
    uint64_t z = varu();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  /// True once any read ran past the end (all subsequent reads return 0).
  bool failed() const { return failed_; }
  /// True when every byte has been consumed and nothing failed.
  bool done() const { return !failed_ && pos_ == in_.size(); }

 private:
  bool take(size_t n);
  std::span<const uint8_t> in_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// --- application messages ---------------------------------------------

/// Encode with NULL omission (the paper's variable-size vector) or as a
/// full size-N vector (the Strom-Yemini baseline).
std::vector<uint8_t> encode_app_msg(const AppMsg& m, bool null_omission);

/// `n` = system size (needed to rebuild the vector's NULL slots).
std::optional<AppMsg> decode_app_msg(std::span<const uint8_t> bytes, int n,
                                     bool null_omission);

// --- dependency vectors (exposed for the on-disk checkpoint codec) -------

/// Same encoding the app-msg piggyback uses: count-prefixed (pid, inc, sii)
/// triples, either NULL-omitting or full size-N with (-1,-1) NULL slots.
void encode_dep_vector(Encoder& e, const DepVector& v, bool null_omission);

/// `v` must be pre-sized to the system size `n`. Returns false on a
/// malformed stream (count or pid out of range, or truncated input).
bool decode_dep_vector(Decoder& d, DepVector& v, int n);

// --- control messages ---------------------------------------------------

std::vector<uint8_t> encode_announcement(const Announcement& a);
std::optional<Announcement> decode_announcement(std::span<const uint8_t> b);

std::vector<uint8_t> encode_log_progress(const LogProgressMsg& lp);
std::optional<LogProgressMsg> decode_log_progress(std::span<const uint8_t> b);

std::vector<uint8_t> encode_dep_query(const DepQuery& q);
std::optional<DepQuery> decode_dep_query(std::span<const uint8_t> b);

std::vector<uint8_t> encode_dep_reply(const DepReply& r);
std::optional<DepReply> decode_dep_reply(std::span<const uint8_t> b);

}  // namespace koptlog::wire
