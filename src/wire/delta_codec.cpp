#include "wire/delta_codec.h"

#include <limits>

#include "common/check.h"

namespace koptlog::wire {

namespace {

// Shared entry-payload validation: varint inc/sii must fit their in-memory
// types and be non-negative (a stored entry is never NULL on the wire).
bool decode_entry_payload(Decoder& d, Entry& out) {
  uint64_t inc = d.varu();
  uint64_t sii = d.varu();
  if (d.failed()) return false;
  if (inc > static_cast<uint64_t>(std::numeric_limits<int32_t>::max()))
    return false;
  if (sii > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()))
    return false;
  out.inc = static_cast<Incarnation>(inc);
  out.sii = static_cast<Sii>(sii);
  return true;
}

}  // namespace

void encode_full_frame(Encoder& e, const DepVector& v) {
  e.u8(kFrameFull);
  e.varu(static_cast<uint64_t>(v.size()));
  e.varu(static_cast<uint64_t>(v.non_null_count()));
  v.for_each([&](ProcessId j, const Entry& ent) {
    e.varu(static_cast<uint64_t>(j));
    e.varu(static_cast<uint64_t>(ent.inc));
    e.varu(static_cast<uint64_t>(ent.sii));
  });
}

void encode_delta_frame(Encoder& e, const DepVector& basis,
                        const DepVector& next) {
  KOPT_CHECK(basis.size() == next.size());
  e.u8(kFrameDelta);
  e.varu(static_cast<uint64_t>(next.size()));
  // Merged walk over both (sorted, sparse) sides, emitting the union of
  // changed pids in the globally ascending order the decoder validates.
  // Materialized once: nnz-sized, tiny in practice.
  std::vector<std::pair<ProcessId, Entry>> a, b;
  basis.for_each([&](ProcessId j, const Entry& en) { a.emplace_back(j, en); });
  next.for_each([&](ProcessId j, const Entry& en) { b.emplace_back(j, en); });
  auto walk = [&](auto&& emit) {
    size_t i = 0, k = 0;
    while (i < a.size() || k < b.size()) {
      bool take_a =
          k >= b.size() || (i < a.size() && a[i].first < b[k].first);
      bool take_b =
          i >= a.size() || (k < b.size() && b[k].first < a[i].first);
      if (take_a) {
        emit(a[i].first, OptEntry{});  // present before, NULL now
        ++i;
      } else if (take_b) {
        emit(b[k].first, OptEntry{b[k].second});  // newly non-NULL
        ++k;
      } else {
        if (!(a[i].second == b[k].second))
          emit(b[k].first, OptEntry{b[k].second});  // value changed
        ++i;
        ++k;
      }
    }
  };
  size_t changes = 0;
  walk([&](ProcessId, OptEntry) { ++changes; });
  e.varu(changes);
  walk([&](ProcessId j, OptEntry en) {
    e.varu(static_cast<uint64_t>(j));
    if (en) {
      e.u8(1);
      e.varu(static_cast<uint64_t>(en->inc));
      e.varu(static_cast<uint64_t>(en->sii));
    } else {
      e.u8(0);
    }
  });
}

std::vector<uint8_t> DeltaChannelEncoder::encode(const DepVector& v,
                                                 Incarnation sender_inc) {
  bool resync = !has_basis_ || sender_inc != basis_inc_ ||
                basis_.size() != v.size();
  Encoder full;
  encode_full_frame(full, v);
  std::vector<uint8_t> out;
  if (!resync) {
    Encoder delta;
    encode_delta_frame(delta, basis_, v);
    if (delta.size() < full.size()) {
      out = delta.take();
    }
  }
  if (out.empty()) {
    out = full.take();
    ++full_frames_;
  }
  basis_ = v;
  basis_inc_ = sender_inc;
  has_basis_ = true;
  return out;
}

std::optional<DepVector> DeltaChannelDecoder::decode(
    std::span<const uint8_t> bytes, int n) {
  Decoder d(bytes);
  uint8_t tag = d.u8();
  uint64_t wire_n = d.varu();
  if (d.failed() || wire_n != static_cast<uint64_t>(n)) return std::nullopt;

  if (tag == kFrameFull) {
    uint64_t nnz = d.varu();
    if (d.failed() || nnz > static_cast<uint64_t>(n)) return std::nullopt;
    DepVector v(n);
    int64_t prev_pid = -1;
    for (uint64_t i = 0; i < nnz; ++i) {
      uint64_t pid = d.varu();
      Entry en;
      if (!decode_entry_payload(d, en)) return std::nullopt;
      if (pid >= static_cast<uint64_t>(n)) return std::nullopt;
      if (static_cast<int64_t>(pid) <= prev_pid) return std::nullopt;
      prev_pid = static_cast<int64_t>(pid);
      v.set(static_cast<ProcessId>(pid), en);
    }
    if (!d.done()) return std::nullopt;
    basis_ = v;
    has_basis_ = true;
    return v;
  }

  if (tag == kFrameDelta) {
    // Hard error, not a guess: without the basis the delta refers to we
    // cannot know what the unchanged entries are.
    if (!has_basis_ || basis_.size() != n) return std::nullopt;
    uint64_t changes = d.varu();
    if (d.failed() || changes > static_cast<uint64_t>(n)) return std::nullopt;
    DepVector v = basis_;
    int64_t prev_pid = -1;
    for (uint64_t i = 0; i < changes; ++i) {
      uint64_t pid = d.varu();
      uint8_t kind = d.u8();
      if (d.failed() || pid >= static_cast<uint64_t>(n)) return std::nullopt;
      if (static_cast<int64_t>(pid) <= prev_pid) return std::nullopt;
      prev_pid = static_cast<int64_t>(pid);
      if (kind == 0) {
        v.clear(static_cast<ProcessId>(pid));
      } else if (kind == 1) {
        Entry en;
        if (!decode_entry_payload(d, en)) return std::nullopt;
        v.set(static_cast<ProcessId>(pid), en);
      } else {
        return std::nullopt;
      }
    }
    if (!d.done()) return std::nullopt;
    basis_ = v;
    has_basis_ = true;
    return v;
  }

  return std::nullopt;  // unknown tag
}

DeltaChannelTable::Channel& DeltaChannelTable::channel(ProcessId src,
                                                       ProcessId dst) {
  uint64_t k = key(src, dst);
  auto it = map_.find(k);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  if (map_.size() >= cap_) {
    auto& victim = lru_.back();
    map_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(k, Channel{});
  map_[k] = lru_.begin();
  return lru_.front().second;
}

size_t TrackingMeter::on_route(const AppMsg& msg) {
  DeltaChannelTable::Channel& ch = channels_.channel(msg.from, msg.to);
  std::vector<uint8_t> frame = ch.enc.encode(msg.tdv, msg.born_of.inc);
  // Self-check: what we metered must decode back to the vector we metered.
  // Cheap (nnz-sized) and catches basis drift immediately.
  std::optional<DepVector> back = ch.dec.decode(frame, n_);
  KOPT_CHECK(back.has_value() && *back == msg.tdv);
  ++messages_;
  bytes_ += static_cast<int64_t>(frame.size());
  nnz_ += msg.tdv.non_null_count();
  if (!frame.empty() && frame[0] == kFrameFull) ++full_frames_;
  return frame.size();
}

}  // namespace koptlog::wire
