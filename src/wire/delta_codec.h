// Delta dependency-vector codec — the wire-level half of scaling the
// cluster axis. A channel's consecutive vectors differ in only a handful
// of entries (the sender merges, NULLs, and advances a few pids per
// interval), so instead of re-shipping the whole NULL-omitted vector the
// sender encodes the *changes* against the last vector it sent on that
// channel, with varint pids/incarnations/LSNs:
//
//   full frame   = tag, varu n, varu nnz, nnz x (varu pid, varu inc,
//                  varu sii)            -- pids strictly ascending
//   delta frame  = tag, varu n, varu k, k x (varu pid, u8 kind,
//                  [varu inc, varu sii])  -- kind 0 NULLs the entry
//
// Resync: the first frame on a channel, and the first frame after the
// sender rolls back or restarts (its incarnation bumps), is a full frame —
// the receiver's basis may describe messages that no longer precede this
// one. The encoder also falls back to a full frame whenever the delta
// would be no smaller, which bounds worst-case overhead at one tag byte.
//
// The decoder is fuzz-hardened: a delta frame without an established basis
// is a hard error (never a guess), as are duplicate/unsorted pids, counts
// exceeding n, overlong varints, truncations and trailing bytes. Nothing
// is preallocated from attacker-controlled counts.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/dep_vector.h"
#include "wire/codec.h"

namespace koptlog::wire {

inline constexpr uint8_t kFrameFull = 0x01;
inline constexpr uint8_t kFrameDelta = 0x02;

/// Encode `v` as a standalone (basis-free) full sparse frame.
void encode_full_frame(Encoder& e, const DepVector& v);

/// Encode the changes turning `basis` into `next` (same logical size).
/// Entries present in basis but NULL in next are emitted as kind-0 changes.
void encode_delta_frame(Encoder& e, const DepVector& basis,
                        const DepVector& next);

// --- per-channel stateful endpoints ---------------------------------------

/// Sender side of one channel: owns the basis (the last vector shipped).
/// Losing this state is always safe — the next encode is a full resync.
class DeltaChannelEncoder {
 public:
  /// Encode `v` given the sender currently executes incarnation
  /// `sender_inc`. Emits a full frame on first use, after an incarnation
  /// change, or when the delta is no smaller; a delta frame otherwise.
  std::vector<uint8_t> encode(const DepVector& v, Incarnation sender_inc);

  bool has_basis() const { return has_basis_; }
  void reset() { has_basis_ = false; }
  /// Full frames emitted so far (resyncs + size fallbacks).
  int64_t full_frames() const { return full_frames_; }

 private:
  DepVector basis_;
  Incarnation basis_inc_ = -1;
  bool has_basis_ = false;
  int64_t full_frames_ = 0;
};

/// Receiver side of one channel. decode() returns nullopt on ANY malformed
/// frame — including a delta frame arriving before any full frame
/// established a basis (a decoder that guessed would silently corrupt
/// dependency tracking, the one thing a recovery protocol cannot absorb).
class DeltaChannelDecoder {
 public:
  std::optional<DepVector> decode(std::span<const uint8_t> bytes, int n);

  bool has_basis() const { return has_basis_; }
  void reset() { has_basis_ = false; }

 private:
  DepVector basis_;
  bool has_basis_ = false;
};

// --- channel-state table ---------------------------------------------------

/// Bounded (src,dst) -> channel-state map with LRU eviction: the basis
/// compaction that keeps a long run's per-channel memory from growing with
/// the number of channels ever used. Both endpoints of a channel are
/// evicted together, which keeps eviction safe: the encoder's next frame
/// after losing its basis is a full resync, which the basis-less decoder
/// accepts.
class DeltaChannelTable {
 public:
  struct Channel {
    DeltaChannelEncoder enc;
    DeltaChannelDecoder dec;
  };

  explicit DeltaChannelTable(size_t capacity) : cap_(capacity ? capacity : 1) {}

  /// The channel for (src,dst), created (possibly evicting the least
  /// recently used one) on first touch.
  Channel& channel(ProcessId src, ProcessId dst);

  size_t size() const { return map_.size(); }
  int64_t evictions() const { return evictions_; }

 private:
  static uint64_t key(ProcessId src, ProcessId dst) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
           static_cast<uint32_t>(dst);
  }

  size_t cap_;
  std::list<std::pair<uint64_t, Channel>> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, Channel>>::iterator>
      map_;
  int64_t evictions_ = 0;
};

// --- passive measurement ---------------------------------------------------

/// Measures what the delta encoding WOULD put on the wire, message by
/// message, without touching what the protocol actually ships: the route
/// boundary calls on_route(), the meter delta-encodes the piggybacked
/// vector on the message's channel (round-tripping through the decoder as
/// a self-check) and accumulates totals. Pure observation — safe to enable
/// in the deterministic simulator.
class TrackingMeter {
 public:
  TrackingMeter(int n, size_t max_channels)
      : n_(n), channels_(max_channels) {}

  /// Returns this message's delta-encoded tracking bytes.
  size_t on_route(const AppMsg& msg);

  int64_t messages() const { return messages_; }
  int64_t bytes() const { return bytes_; }
  int64_t nnz() const { return nnz_; }
  int64_t full_frames() const { return full_frames_; }
  int64_t evictions() const { return channels_.evictions(); }

 private:
  int n_;
  DeltaChannelTable channels_;
  int64_t messages_ = 0;
  int64_t bytes_ = 0;
  int64_t nnz_ = 0;
  int64_t full_frames_ = 0;
};

}  // namespace koptlog::wire
