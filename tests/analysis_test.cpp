// The trace-analytics layer (src/analysis/) against the checked-in golden
// Figure-1 trace and against real recorded cluster runs.
//
// Goldens: explain-commit, critical-path and the space-time SVG outputs on
// tests/golden/figure1_trace.jsonl are pinned byte-for-byte; regenerate
// deliberately with
//
//   KOPTLOG_REGEN_GOLDEN=1 ./koptlog_tests --gtest_filter='AnalysisGolden.*'
//
// Property: what-if K replay at the *recorded* K must reproduce the
// recorded send-buffer release events exactly (same released set, same
// times) — on Figure 1 and on randomized multi-failure cluster runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/causal_graph.h"
#include "analysis/critical_path.h"
#include "analysis/explain.h"
#include "analysis/spacetime_svg.h"
#include "analysis/whatif.h"
#include "app/workloads.h"
#include "core/cluster.h"
#include "obs/ids.h"
#include "obs/trace_io.h"

#ifndef KOPTLOG_TEST_DIR
#define KOPTLOG_TEST_DIR "."
#endif

namespace koptlog {
namespace {

using analysis::CausalGraph;

Trace load_figure1() {
  std::ifstream is(std::string(KOPTLOG_TEST_DIR) +
                   "/golden/figure1_trace.jsonl");
  EXPECT_TRUE(is.good());
  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(is, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  EXPECT_EQ(trace.n, 6);
  return trace;
}

void check_golden(const std::string& file, const std::string& actual) {
  std::string path = std::string(KOPTLOG_TEST_DIR) + "/golden/" + file;
  if (std::getenv("KOPTLOG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with KOPTLOG_REGEN_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(actual, buf.str())
      << "analysis output drifted; regenerate deliberately with "
         "KOPTLOG_REGEN_GOLDEN=1 and review the diff";
}

Trace record_cluster_run(uint64_t seed, int k, int failures) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = seed;
  cfg.protocol.k = k;
  cfg.enable_oracle = false;
  cfg.record_events = true;
  Cluster cluster(cfg, make_uniform_app({.output_every = 4}));
  cluster.start();
  inject_uniform_load(cluster, 120, 1'000, 600'000, 5, seed + 17);
  if (failures > 0) cluster.fail_at(200'000, 1);
  if (failures > 1) cluster.fail_at(380'000, 3);
  cluster.run_for(2'000'000);
  cluster.drain();
  Trace trace;
  trace.n = cfg.n;
  trace.events = cluster.recording()->merged();
  return trace;
}

// ---- stable ids ----

TEST(IdsTest, MsgIdRoundTrip) {
  EXPECT_EQ(format_msg_id(MsgId{1, 2}), "P1:2");
  EXPECT_EQ(format_msg_id(MsgId{kEnvironment, 4}), "env:4");
  EXPECT_EQ(parse_msg_id("P1:2"), (MsgId{1, 2}));
  EXPECT_EQ(parse_msg_id("1:2"), (MsgId{1, 2}));
  EXPECT_EQ(parse_msg_id("env:4"), (MsgId{kEnvironment, 4}));
  EXPECT_FALSE(parse_msg_id("P1").has_value());
  EXPECT_FALSE(parse_msg_id("P1:x").has_value());
  EXPECT_FALSE(parse_msg_id("").has_value());
}

TEST(IdsTest, IntervalIdRoundTrip) {
  IntervalId iv{3, 2, 6};
  EXPECT_EQ(parse_interval_id(format_interval_id(iv)), iv);
  EXPECT_EQ(parse_interval_id("(2,6)_3"), iv);
  EXPECT_EQ(parse_interval_id("3:2:6"), iv);
  EXPECT_EQ(parse_interval_id("P3:2:6"), iv);
  EXPECT_FALSE(parse_interval_id("(2,6)").has_value());
  EXPECT_FALSE(parse_interval_id("3:2").has_value());
}

// ---- causal graph over Figure 1 ----

TEST(CausalGraphTest, Figure1Reconstruction) {
  Trace trace = load_figure1();
  CausalGraph g(trace);

  // P3 delivered m1 into (2,6)_3 and m2 into (2,7)_3.
  const analysis::IntervalNode* iv26 = g.interval({3, 2, 6});
  ASSERT_NE(iv26, nullptr);
  ASSERT_TRUE(iv26->via_msg.has_value());
  EXPECT_EQ(*iv26->via_msg, (MsgId{1, 1}));
  ASSERT_GE(iv26->msg_parent, 0);
  EXPECT_EQ(iv26->parents[static_cast<size_t>(iv26->msg_parent)],
            (IntervalId{1, 0, 4}));

  // Theorem 1 over the single announcement (P1, ended (0,4)).
  EXPECT_FALSE(g.is_dead({1, 0, 4}));
  EXPECT_TRUE(g.is_dead({1, 0, 5}));
  EXPECT_FALSE(g.is_dead({1, 1, 6}));

  // (2,7)_3 is an orphan via its delivery of P1:2 from dead (0,5)_1.
  std::vector<IntervalId> path = g.path_to_dead({3, 2, 7});
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path.front(), (IntervalId{3, 2, 7}));
  EXPECT_EQ(path.back(), (IntervalId{1, 0, 5}));
  // The committed output's closure is clean.
  EXPECT_TRUE(g.path_to_dead({4, 0, 2}).empty());

  // Crash replay re-sends P1:1 and P3:1: two episodes each, all released.
  EXPECT_EQ(g.episodes_of(MsgId{1, 1}).size(), 2u);
  EXPECT_EQ(g.episodes_of(MsgId{3, 1}).size(), 2u);
  for (int idx : g.episodes_of(MsgId{1, 1})) {
    EXPECT_EQ(g.episodes()[static_cast<size_t>(idx)].end,
              analysis::MsgEpisode::End::kReleased);
  }
  EXPECT_TRUE(g.commit_of(MsgId{4, 1}).has_value());
  EXPECT_EQ(g.recv_holds_of(MsgId{1, 2}).size(), 1u);
  EXPECT_EQ(g.announce_events().size(), 1u);
  EXPECT_EQ(g.rollback_events().size(), 1u);
}

// ---- explain queries ----

TEST(AnalysisGolden, ExplainCommitFigure1) {
  Trace trace = load_figure1();
  CausalGraph g(trace);
  std::ostringstream os;
  ASSERT_TRUE(analysis::explain_commit(g, MsgId{4, 1}, os));
  check_golden("figure1_explain_commit.txt", os.str());
}

TEST(AnalysisGolden, CriticalPathFigure1) {
  Trace trace = load_figure1();
  CausalGraph g(trace);
  std::ostringstream os;
  analysis::print_critical_paths(g, analysis::compute_critical_paths(g), os);
  check_golden("figure1_critical_path.txt", os.str());
}

TEST(AnalysisGolden, SpacetimeSvgFigure1) {
  Trace trace = load_figure1();
  CausalGraph g(trace);
  check_golden("figure1_spacetime.svg", analysis::render_spacetime_svg(g));
}

TEST(ExplainTest, HoldAndOrphanQueries) {
  Trace trace = load_figure1();
  CausalGraph g(trace);
  std::ostringstream os;
  EXPECT_TRUE(analysis::explain_hold(g, MsgId{1, 1}, os));
  EXPECT_NE(os.str().find("2 send-buffer episodes"), std::string::npos);
  EXPECT_FALSE(analysis::explain_hold(g, MsgId{2, 9}, os));

  std::ostringstream orphan;
  EXPECT_TRUE(analysis::explain_orphan(g, {3, 2, 7}, orphan));
  EXPECT_NE(orphan.str().find("is an orphan"), std::string::npos);
  EXPECT_NE(orphan.str().find("(0,5)_1"), std::string::npos);
  std::ostringstream clean;
  EXPECT_TRUE(analysis::explain_orphan(g, {4, 0, 2}, clean));
  EXPECT_NE(clean.str().find("not an orphan"), std::string::npos);
  EXPECT_FALSE(analysis::explain_orphan(g, {5, 9, 9}, clean));
}

TEST(CriticalPathTest, Figure1Attribution) {
  Trace trace = load_figure1();
  CausalGraph g(trace);
  std::vector<analysis::FailureImpact> impacts =
      analysis::compute_critical_paths(g);
  ASSERT_EQ(impacts.size(), 1u);
  EXPECT_EQ(impacts[0].pid, 1);
  EXPECT_TRUE(impacts[0].from_failure);
  // P1's failure forced P3's rollback, through (0,5)_1 -> (2,7)_3.
  EXPECT_EQ(impacts[0].forced_rollbacks.size(), 1u);
  ASSERT_GE(impacts[0].critical.size(), 2u);
  EXPECT_EQ(impacts[0].critical.front().iv, (IntervalId{1, 0, 5}));
  EXPECT_EQ(impacts[0].critical.back().iv.pid, 3);
  analysis::CriticalPathSummary s =
      analysis::summarize_critical_paths(impacts);
  EXPECT_EQ(s.announcements, 1);
  EXPECT_EQ(s.forced_rollbacks, 1);
  EXPECT_GE(s.max_hops, 2);
}

// ---- what-if K replay ----

TEST(WhatIfTest, SelfCheckFigure1) {
  Trace trace = load_figure1();
  CausalGraph g(trace);
  analysis::WhatIfCheck check = analysis::whatif_self_check(g);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST(WhatIfTest, SweepExtremesFigure1) {
  Trace trace = load_figure1();
  CausalGraph g(trace);
  // K' = N: every vector satisfies <= N live entries at send, so every
  // episode releases immediately (unless already doomed at send time).
  analysis::WhatIfResult at_n = analysis::whatif_replay(g, trace.n);
  EXPECT_EQ(at_n.released + at_n.never_released, at_n.sends);
  EXPECT_EQ(at_n.hold_us.max(), 0.0);
  // K' = 0: messages whose live entries never gain a stability fact can
  // never release.
  analysis::WhatIfResult at_0 = analysis::whatif_replay(g, 0);
  EXPECT_GT(at_0.never_released, 0);
  EXPECT_LE(at_0.released, at_n.released);
}

/// The acceptance property on real recorded runs: replay at the recorded K
/// reproduces the recorded send-buffer release events bit for bit.
TEST(WhatIfTest, RecordedKMatchesRecordedReleasesOnClusterRuns) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    Trace trace = record_cluster_run(seed, /*k=*/2, /*failures=*/2);
    ASSERT_GT(trace.events.size(), 100u);
    CausalGraph g(trace);
    analysis::WhatIfCheck check = analysis::whatif_self_check(g);
    EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.detail;

    // And the full-N replay frees everything that was not doomed.
    analysis::WhatIfResult at_n = analysis::whatif_replay(g, trace.n);
    EXPECT_EQ(at_n.released + at_n.never_released, at_n.sends);
    EXPECT_EQ(at_n.hold_us.max(), 0.0);
  }
}

TEST(WhatIfTest, SweepRunsOnRecordedRun) {
  Trace trace = record_cluster_run(7, /*k=*/1, /*failures=*/1);
  CausalGraph g(trace);
  std::vector<analysis::WhatIfResult> sweep =
      analysis::whatif_sweep(g, {0, 1, 2, 5});
  ASSERT_EQ(sweep.size(), 4u);
  for (const analysis::WhatIfResult& r : sweep) {
    EXPECT_EQ(r.released + r.never_released, r.sends);
  }
  // More optimism never shrinks the released set.
  EXPECT_LE(sweep[0].released, sweep[3].released);
  std::ostringstream os;
  analysis::print_whatif(sweep, os);
  EXPECT_NE(os.str().find("hold_p50"), std::string::npos);
}

}  // namespace
}  // namespace koptlog
