// The orphan-audit path end to end: a multi-failure randomized cluster run
// recorded with the oracle OFF must serialize to JSONL, parse back, and
// pass audit_trace with every invariant exercised (nonzero coverage
// counters). Corruptions must be caught: a dropped FailureAnnounce (the
// Theorem-1 bookkeeping hole), a commit depending on a dead interval, and
// a BufferRelease over the K bound.
#include <gtest/gtest.h>

#include <sstream>

#include "app/workloads.h"
#include "core/cluster.h"
#include "obs/audit.h"
#include "obs/trace_io.h"

namespace koptlog {
namespace {

/// Seeded uniform-workload run with two failures, oracle off, recording on.
/// Returns the serialized JSONL text.
std::string record_multi_failure_run() {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = 4242;
  cfg.protocol.k = 2;
  cfg.enable_oracle = false;
  cfg.record_events = true;
  Cluster cluster(cfg, make_uniform_app({.output_every = 4}));
  cluster.start();
  inject_uniform_load(cluster, 150, 1'000, 600'000, 5, 17);
  cluster.fail_at(200'000, 1);
  cluster.fail_at(380'000, 3);
  cluster.run_for(2'000'000);
  cluster.drain();
  const Recording* rec = cluster.recording();
  EXPECT_NE(rec, nullptr);
  std::ostringstream os;
  write_trace_jsonl(*rec, os);
  return os.str();
}

Trace parse(const std::string& text) {
  std::istringstream is(text);
  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(is, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  return trace;
}

TEST(AuditTest, MultiFailureRunPassesWithFullCoverage) {
  std::string text = record_multi_failure_run();
  Trace trace = parse(text);
  AuditReport report = audit_trace(trace);
  EXPECT_TRUE(report.ok()) << report.summary();
  // The audit must have had real work on every invariant, not a vacuous
  // pass: intervals reconstructed, announcements seen (two failures),
  // orphans created and detected, K checked on released messages, commits
  // closed over.
  EXPECT_GT(report.events, 100u);
  EXPECT_GT(report.intervals, 50u);
  EXPECT_GE(report.announcements, 2u);
  EXPECT_GT(report.dead_intervals, 0u);
  EXPECT_GT(report.releases_checked, 0u);
  EXPECT_GT(report.commits_checked, 0u);
  EXPECT_GT(report.distinct_outputs, 0u);
}

TEST(AuditTest, DroppedFailureAnnounceIsDetected) {
  std::string text = record_multi_failure_run();
  // Hand-corrupt the trace: remove every failure_announce line, as if the
  // failed processes never told anyone. Theorem 1 says announcements are
  // the only orphan-detection signal, so the audit must refuse the trace:
  // the new incarnations have no announced cause.
  std::istringstream in(text);
  std::ostringstream kept;
  std::string line;
  int dropped = 0;
  while (std::getline(in, line)) {
    if (line.find("\"kind\":\"failure_announce\"") != std::string::npos) {
      ++dropped;
      continue;
    }
    kept << line << '\n';
  }
  ASSERT_GT(dropped, 0);
  Trace trace = parse(kept.str());
  AuditReport report = audit_trace(trace);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  bool mentions_bump = false;
  for (const std::string& v : report.violations) {
    if (v.find("bump") != std::string::npos) mentions_bump = true;
  }
  EXPECT_TRUE(mentions_bump) << report.violations[0];
}

TEST(AuditTest, CommitDependingOnDeadIntervalIsDetected) {
  // Hand-built four-event trace: P0's interval (0,1) is killed by P0's own
  // announcement (incarnation 0 ended at sii 0), yet P1 commits an output
  // whose vector still carries (0,1)_0 — the orphan commit Theorems 1-3
  // exist to prevent.
  Trace trace;
  trace.n = 2;
  ProtocolEvent e;
  e.kind = EventKind::kDeliver;
  e.t = 1;
  e.pid = 0;
  e.at = Entry{0, 1};
  e.msg = MsgId{kEnvironment, 1};
  e.peer = kEnvironment;
  e.ref = IntervalId{kEnvironment, 0, 0};
  e.tdv = DepVector(2);
  trace.events.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kDeliver;  // P1's interval inherits the dependency
  e.t = 1;
  e.pid = 1;
  e.at = Entry{0, 1};
  e.msg = MsgId{0, 1};
  e.peer = 0;
  e.ref = IntervalId{0, 0, 1};
  e.tdv = DepVector(2);
  trace.events.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kFailureAnnounce;
  e.t = 2;
  e.pid = 0;
  e.at = Entry{1, 1};
  e.ended = Entry{0, 0};
  e.from_failure = true;
  trace.events.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kIncarnationBump;
  e.t = 2;
  e.pid = 0;
  e.at = Entry{1, 1};
  trace.events.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kOutputCommit;
  e.t = 3;
  e.pid = 1;
  e.at = Entry{0, 1};
  e.msg = MsgId{1, 1};
  e.ref = IntervalId{1, 0, 1};
  DepVector tdv(2);
  tdv.set(0, Entry{0, 1});  // the dead interval
  tdv.set(1, Entry{0, 1});
  e.tdv = tdv;
  trace.events.push_back(e);

  AuditReport report = audit_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.dead_intervals, 1u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("commit"), std::string::npos)
      << report.violations[0];
}

TEST(AuditTest, ReleaseOverKBoundIsDetected) {
  // A buffer_release claiming K=1 but shipping two live entries.
  Trace trace;
  trace.n = 3;
  ProtocolEvent e;
  e.kind = EventKind::kBufferRelease;
  e.t = 1;
  e.pid = 0;
  e.at = Entry{0, 1};
  e.msg = MsgId{0, 1};
  e.peer = 1;
  e.ref = IntervalId{0, 0, 1};
  DepVector tdv(3);
  tdv.set(0, Entry{0, 1});
  tdv.set(2, Entry{0, 4});
  e.tdv = tdv;
  e.k_limit = 1;
  e.k_reached = 2;
  trace.events.push_back(e);
  AuditReport report = audit_trace(trace);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.releases_checked, 1u);

  // The same release is legal under K=2.
  trace.events[0].k_limit = 2;
  EXPECT_TRUE(audit_trace(trace).ok());

  // A release whose k_reached does not match its own vector is lying.
  trace.events[0].k_reached = 1;
  EXPECT_FALSE(audit_trace(trace).ok());
}

TEST(AuditTest, EmptyTraceIsVacuouslyOkWithZeroCoverage) {
  Trace trace;
  trace.n = 2;
  AuditReport report = audit_trace(trace);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.commits_checked, 0u);
  EXPECT_NE(report.summary().find("audit OK"), std::string::npos);
}

}  // namespace
}  // namespace koptlog
