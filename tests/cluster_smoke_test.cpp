#include <gtest/gtest.h>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/failure_injector.h"

namespace koptlog {
namespace {

ClusterConfig base_config(int n, uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.enable_oracle = true;
  return cfg;
}

TEST(ClusterSmokeTest, FailureFreeUniformRunDrainsAndVerifies) {
  ClusterConfig cfg = base_config(4, 1);
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 20, 1000, 50'000, /*ttl=*/6, /*seed=*/7);
  cluster.run_for(200'000);
  cluster.drain();

  EXPECT_GT(cluster.stats().counter("msgs.delivered"), 20);
  EXPECT_EQ(cluster.stats().counter("rollback.count"), 0);
  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_EQ(rep.lost, 0u);
}

TEST(ClusterSmokeTest, SingleFailureRecoversAndVerifies) {
  ClusterConfig cfg = base_config(4, 2);
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 30, 1000, 100'000, /*ttl=*/8, /*seed=*/9);
  cluster.fail_at(60'000, 1);
  cluster.run_for(400'000);
  cluster.drain();

  EXPECT_EQ(cluster.stats().counter("crash.count"), 1);
  EXPECT_EQ(cluster.stats().counter("restart.count"), 1);
  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(ClusterSmokeTest, PessimisticModeNeverRollsBackPeers) {
  ClusterConfig cfg = base_config(4, 3);
  cfg.protocol = ProtocolConfig::pessimistic();
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 30, 1000, 100'000, /*ttl=*/8, /*seed=*/5);
  cluster.fail_at(50'000, 0);
  cluster.fail_at(120'000, 2);
  cluster.run_for(500'000);
  cluster.drain();

  EXPECT_EQ(cluster.stats().counter("crash.count"), 2);
  // Pessimistic logging: recovery is fully localized.
  EXPECT_EQ(cluster.stats().counter("rollback.count"), 0);
  EXPECT_EQ(cluster.stats().counter("msgs.discarded_orphan_recv"), 0);
  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_EQ(rep.lost, 0u);  // nothing volatile existed to lose
}

TEST(ClusterSmokeTest, OutputsCommitExactlyOnceAcrossFailure) {
  ClusterConfig cfg = base_config(3, 4);
  Cluster cluster(cfg, make_client_server_app({}));
  cluster.start();
  inject_client_requests(cluster, 25, 1000, 150'000, /*seed=*/11);
  cluster.fail_at(80'000, 0);
  cluster.run_for(500'000);
  cluster.drain();

  // The sink saw each output id at most once.
  std::set<MsgId> seen;
  for (const auto& out : cluster.outputs()) {
    EXPECT_TRUE(seen.insert(out.id).second);
  }
  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(ClusterSmokeTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    ClusterConfig cfg = base_config(4, 77);
    Cluster cluster(cfg, make_uniform_app({}));
    cluster.start();
    inject_uniform_load(cluster, 15, 1000, 80'000, 6, 3);
    cluster.fail_at(40'000, 2);
    cluster.run_for(300'000);
    cluster.drain();
    return std::make_tuple(cluster.stats().counter("msgs.delivered"),
                           cluster.stats().counter("rollback.count"),
                           cluster.outputs().size(),
                           cluster.sim().events_executed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace koptlog
