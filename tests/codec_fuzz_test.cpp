// Seeded-corpus fuzz smoke of the wire codec's decoders. The decoders
// parse bytes that, in a real deployment, arrive off the network — so they
// must reject malformed input gracefully: return nullopt (or a value), but
// never crash, never read out of bounds (the asan job runs this file),
// and never allocate absurd amounts from a hostile length field.
//
// Three attack families per message type, all deterministic from a seed:
//   * truncation at every prefix length (torn reads, truncated vectors)
//   * random byte flips over valid encodings (corrupted counts,
//     hostile incarnation numbers, sign-flipped indices)
//   * random garbage of various lengths (no valid structure at all)
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "wire/codec.h"
#include "wire/delta_codec.h"

namespace koptlog {
namespace {

using wire::Encoder;

constexpr int kN = 6;  // system size for vector reconstruction

// --- corpus -----------------------------------------------------------------

AppMsg sample_app_msg(Rng& rng) {
  AppMsg m;
  m.from = static_cast<ProcessId>(rng.next_below(kN));
  m.to = static_cast<ProcessId>(rng.next_below(kN));
  // The wire format derives id.src and born_of.pid from `from`.
  m.id = MsgId{m.from, rng.next_u64() >> 8};
  m.payload.kind = static_cast<int32_t>(rng.next_range(-3, 120));
  m.payload.a = rng.next_range(-1'000'000, 1'000'000);
  m.payload.b = static_cast<int64_t>(rng.next_u64());
  m.payload.c = rng.next_range(0, 9);
  m.payload.ttl = static_cast<int32_t>(rng.next_range(0, 32));
  m.tdv = DepVector(kN);
  for (ProcessId j = 0; j < kN; ++j) {
    if (rng.next_bernoulli(0.5)) {
      m.tdv.set(j, Entry{static_cast<Incarnation>(rng.next_below(5)),
                         static_cast<Sii>(rng.next_below(1'000))});
    }
  }
  m.born_of = IntervalId{m.from, static_cast<Incarnation>(rng.next_below(4)),
                         static_cast<Sii>(rng.next_below(500))};
  return m;
}

Announcement sample_announcement(Rng& rng) {
  Announcement a;
  a.from = static_cast<ProcessId>(rng.next_below(kN));
  a.ended = Entry{static_cast<Incarnation>(rng.next_below(6)),
                  static_cast<Sii>(rng.next_below(2'000))};
  a.from_failure = rng.next_bernoulli(0.7);
  return a;
}

LogProgressMsg sample_log_progress(Rng& rng) {
  LogProgressMsg lp;
  lp.from = static_cast<ProcessId>(rng.next_below(kN));
  int incs = static_cast<int>(rng.next_below(5));
  for (int t = 0; t < incs; ++t) {
    lp.stable.push_back(Entry{static_cast<Incarnation>(t),
                              static_cast<Sii>(rng.next_below(800))});
  }
  return lp;
}

DepQuery sample_dep_query(Rng& rng) {
  DepQuery q;
  q.requester = static_cast<ProcessId>(rng.next_below(kN));
  q.target = IntervalId{static_cast<ProcessId>(rng.next_below(kN)),
                        static_cast<Incarnation>(rng.next_below(4)),
                        static_cast<Sii>(rng.next_below(900))};
  q.query_id = rng.next_u64() >> 8;
  return q;
}

DepReply sample_dep_reply(Rng& rng) {
  DepReply r;
  r.owner = static_cast<ProcessId>(rng.next_below(kN));
  r.query_id = rng.next_u64() >> 8;
  r.target = IntervalId{r.owner, static_cast<Incarnation>(rng.next_below(4)),
                        static_cast<Sii>(rng.next_below(900))};
  r.status = static_cast<DepReply::Status>(rng.next_below(4));
  int deps = static_cast<int>(rng.next_below(4));
  for (int i = 0; i < deps; ++i) {
    r.deps.push_back(IntervalId{static_cast<ProcessId>(rng.next_below(kN)),
                                static_cast<Incarnation>(rng.next_below(3)),
                                static_cast<Sii>(rng.next_below(700))});
  }
  return r;
}

// --- mutation harness -------------------------------------------------------

/// Run `decode` over (a) every truncation of `valid`, (b) `flips` random
/// byte-flip mutants, (c) `garbage` random byte strings. The decoder must
/// not crash; whatever it returns is discarded.
template <typename DecodeFn>
void hammer(const std::vector<uint8_t>& valid, Rng& rng, DecodeFn decode,
            int flips = 200, int garbage = 100) {
  // Truncations: every strict prefix, including empty.
  for (size_t len = 0; len < valid.size(); ++len) {
    (void)decode(std::span<const uint8_t>(valid.data(), len));
  }
  // Byte flips: 1-4 random mutations of a valid encoding. Length/count
  // fields get hit often at these sizes, yielding hostile element counts.
  for (int i = 0; i < flips; ++i) {
    std::vector<uint8_t> mutant = valid;
    int nmut = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < nmut && !mutant.empty(); ++m) {
      size_t pos = static_cast<size_t>(rng.next_below(mutant.size()));
      mutant[pos] = static_cast<uint8_t>(rng.next_below(256));
    }
    (void)decode(std::span<const uint8_t>(mutant));
  }
  // Pure garbage of assorted lengths.
  for (int i = 0; i < garbage; ++i) {
    std::vector<uint8_t> junk(rng.next_below(96));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.next_below(256));
    (void)decode(std::span<const uint8_t>(junk));
  }
}

/// Hostile length prefix: take a valid encoding and overwrite the two bytes
/// at `count_offset` with 0xFFFF, claiming ~65k elements in a short buffer.
/// The decoder must fail cleanly instead of over-reading or over-allocating.
template <typename DecodeFn>
void hostile_count(const std::vector<uint8_t>& valid, size_t count_offset,
                   DecodeFn decode) {
  ASSERT_GE(valid.size(), count_offset + 2);
  std::vector<uint8_t> mutant = valid;
  mutant[count_offset] = 0xFF;
  mutant[count_offset + 1] = 0xFF;
  auto result = decode(std::span<const uint8_t>(mutant));
  EXPECT_FALSE(result.has_value())
      << "decoder accepted a 0xFFFF element count in a "
      << mutant.size() << "-byte buffer";
}

// --- per-decoder fuzz smokes ------------------------------------------------

TEST(CodecFuzzTest, AppMsgDecoderSurvivesMutation) {
  Rng rng(0xF00D);
  for (int round = 0; round < 20; ++round) {
    AppMsg m = sample_app_msg(rng);
    for (bool null_omission : {true, false}) {
      std::vector<uint8_t> valid = wire::encode_app_msg(m, null_omission);
      hammer(valid, rng, [null_omission](std::span<const uint8_t> b) {
        return wire::decode_app_msg(b, kN, null_omission);
      });
    }
  }
}

TEST(CodecFuzzTest, AppMsgHostileVectorCount) {
  Rng rng(0xBEEF);
  AppMsg m = sample_app_msg(rng);
  std::vector<uint8_t> valid = wire::encode_app_msg(m, /*null_omission=*/true);
  // The NULL-omitting vector's non-null count is the final section's 2-byte
  // header: header(28) + payload(32) leaves the vector at offset 60.
  size_t vector_offset = valid.size() - m.tdv.wire_bytes();
  hostile_count(valid, vector_offset, [](std::span<const uint8_t> b) {
    return wire::decode_app_msg(b, kN, true);
  });
}

TEST(CodecFuzzTest, AnnouncementDecoderSurvivesMutation) {
  Rng rng(0xA11CE);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> valid =
        wire::encode_announcement(sample_announcement(rng));
    hammer(valid, rng, [](std::span<const uint8_t> b) {
      return wire::decode_announcement(b);
    });
  }
}

TEST(CodecFuzzTest, LogProgressDecoderSurvivesMutation) {
  Rng rng(0x10607);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> valid =
        wire::encode_log_progress(sample_log_progress(rng));
    hammer(valid, rng, [](std::span<const uint8_t> b) {
      return wire::decode_log_progress(b);
    });
  }
}

TEST(CodecFuzzTest, LogProgressHostileIncarnationCount) {
  Rng rng(0x51AB);
  LogProgressMsg lp = sample_log_progress(rng);
  lp.stable.push_back(Entry{9, 9});  // ensure at least one entry
  std::vector<uint8_t> valid = wire::encode_log_progress(lp);
  // Layout: from(4) then a 2-byte incarnation count.
  hostile_count(valid, 4, [](std::span<const uint8_t> b) {
    return wire::decode_log_progress(b);
  });
}

TEST(CodecFuzzTest, DepQueryDecoderSurvivesMutation) {
  Rng rng(0xDEC0);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> valid = wire::encode_dep_query(sample_dep_query(rng));
    hammer(valid, rng, [](std::span<const uint8_t> b) {
      return wire::decode_dep_query(b);
    });
  }
}

TEST(CodecFuzzTest, DepReplyDecoderSurvivesMutation) {
  Rng rng(0x12EF1);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> valid = wire::encode_dep_reply(sample_dep_reply(rng));
    hammer(valid, rng, [](std::span<const uint8_t> b) {
      return wire::decode_dep_reply(b);
    });
  }
}

// --- sparse/delta frames (wire/delta_codec.h) -------------------------------

DepVector sample_sparse_vector(Rng& rng, int n) {
  DepVector v(n);
  int live = static_cast<int>(rng.next_below(8));
  for (int i = 0; i < live; ++i) {
    v.set(static_cast<ProcessId>(rng.next_below(static_cast<uint64_t>(n))),
          Entry{static_cast<Incarnation>(rng.next_below(5)),
                static_cast<Sii>(rng.next_below(100'000))});
  }
  return v;
}

// A fresh decoder per input: full frames are self-contained, and any delta
// frame the mutation produces must be rejected (no basis), never guessed.
TEST(CodecFuzzTest, SparseFullFrameDecoderSurvivesMutation) {
  Rng rng(0x5FA25E);
  const int n = 64;
  for (int round = 0; round < 20; ++round) {
    Encoder e;
    wire::encode_full_frame(e, sample_sparse_vector(rng, n));
    hammer(e.bytes(), rng, [](std::span<const uint8_t> b) {
      wire::DeltaChannelDecoder dec;
      return dec.decode(b, 64);
    });
  }
}

// Stateful channel: establish a basis with a full frame, then hammer
// mutated delta frames against that SAME decoder — the hostile input now
// exercises the basis-merge path, and a malformed delta must not corrupt
// the channel into accepting garbage later.
TEST(CodecFuzzTest, DeltaFrameDecoderSurvivesMutationWithBasis) {
  Rng rng(0xDE17A);
  const int n = 64;
  for (int round = 0; round < 20; ++round) {
    wire::DeltaChannelEncoder enc;
    DepVector v1 = sample_sparse_vector(rng, n);
    std::vector<uint8_t> full = enc.encode(v1, 0);
    DepVector v2 = v1;
    v2.set(static_cast<ProcessId>(rng.next_below(n)),
           Entry{0, static_cast<Sii>(rng.next_below(1'000) + 200'000)});
    std::vector<uint8_t> delta = enc.encode(v2, 0);
    if (delta.empty() || delta[0] != wire::kFrameDelta) continue;
    wire::DeltaChannelDecoder dec;
    ASSERT_TRUE(dec.decode(full, n).has_value());
    hammer(delta, rng, [&dec, n](std::span<const uint8_t> b) {
      return dec.decode(b, n);
    });
    // The channel still decodes a fresh valid frame after all that abuse.
    wire::DeltaChannelEncoder enc2;
    auto ok = dec.decode(enc2.encode(v2, 0), n);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, v2);
  }
}

TEST(CodecFuzzTest, DeltaWithoutBasisIsRejectedNotGuessed) {
  const int n = 32;
  wire::DeltaChannelEncoder enc;
  DepVector v = DepVector(n);
  // Enough unchanged entries that the one-change delta beats the full frame.
  for (ProcessId j = 3; j < 28; j += 5) v.set(j, Entry{0, j});
  (void)enc.encode(v, 0);
  v.set(3, Entry{0, 8});
  std::vector<uint8_t> delta = enc.encode(v, 0);
  ASSERT_EQ(delta[0], wire::kFrameDelta);
  wire::DeltaChannelDecoder fresh;
  EXPECT_FALSE(fresh.decode(delta, n).has_value());
}

TEST(CodecFuzzTest, SparseFrameHostileEntryCount) {
  // Claim ~2^62 entries in a 16-byte buffer: the varint count must be
  // validated against n before anything is allocated or read.
  const int n = 64;
  Encoder e;
  e.u8(wire::kFrameFull);
  e.varu(static_cast<uint64_t>(n));
  e.varu(uint64_t{1} << 62);  // hostile nnz
  e.varu(1);
  e.varu(0);
  e.varu(5);
  wire::DeltaChannelDecoder dec;
  EXPECT_FALSE(dec.decode(e.bytes(), n).has_value());

  Encoder d;
  d.u8(wire::kFrameDelta);
  d.varu(static_cast<uint64_t>(n));
  d.varu(uint64_t{1} << 62);  // hostile change count
  wire::DeltaChannelDecoder dec2;
  EXPECT_FALSE(dec2.decode(d.bytes(), n).has_value());
}

TEST(CodecFuzzTest, SparseFrameRejectsDuplicateAndUnsortedPids) {
  const int n = 16;
  auto frame = [&](ProcessId p1, ProcessId p2) {
    Encoder e;
    e.u8(wire::kFrameFull);
    e.varu(static_cast<uint64_t>(n));
    e.varu(2);
    e.varu(static_cast<uint64_t>(p1));
    e.varu(0);
    e.varu(1);
    e.varu(static_cast<uint64_t>(p2));
    e.varu(0);
    e.varu(2);
    return e.take();
  };
  wire::DeltaChannelDecoder dec;
  EXPECT_TRUE(dec.decode(frame(2, 5), n).has_value());   // sorted: fine
  EXPECT_FALSE(dec.decode(frame(5, 5), n).has_value());  // duplicate
  EXPECT_FALSE(dec.decode(frame(5, 2), n).has_value());  // unsorted
  EXPECT_FALSE(dec.decode(frame(2, 99), n).has_value()); // pid >= n
}

TEST(CodecFuzzTest, SparseFrameRejectsTrailingBytes) {
  const int n = 8;
  Encoder e;
  wire::encode_full_frame(e, DepVector(n));
  std::vector<uint8_t> bytes = e.take();
  bytes.push_back(0x00);
  wire::DeltaChannelDecoder dec;
  EXPECT_FALSE(dec.decode(bytes, n).has_value());
}

/// Round-trip sanity alongside the fuzzing: valid encodings still decode to
/// equal values (guards against the fuzz fixes breaking the happy path).
TEST(CodecFuzzTest, ValidEncodingsStillRoundTrip) {
  Rng rng(0xCAFE);
  for (int round = 0; round < 50; ++round) {
    AppMsg m = sample_app_msg(rng);
    auto decoded =
        wire::decode_app_msg(wire::encode_app_msg(m, true), kN, true);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->id, m.id);
    EXPECT_EQ(decoded->payload, m.payload);
    EXPECT_EQ(decoded->tdv, m.tdv);

    Announcement a = sample_announcement(rng);
    auto da = wire::decode_announcement(wire::encode_announcement(a));
    ASSERT_TRUE(da.has_value());
    EXPECT_EQ(da->from, a.from);
    EXPECT_EQ(da->ended, a.ended);
    EXPECT_EQ(da->from_failure, a.from_failure);
  }
}

}  // namespace
}  // namespace koptlog
