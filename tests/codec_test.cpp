// Wire codec tests: round-trips for every message type, size equality with
// the analytic wire_bytes() estimates (so the benches report real encoded
// sizes), and robustness against truncated/garbage input.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "wire/codec.h"

namespace koptlog {
namespace {

using namespace wire;

AppMsg sample_msg(int n) {
  AppMsg m;
  m.id = MsgId{2, 77};
  m.from = 2;
  m.to = 5;
  m.payload = AppPayload{3, -123456789012345, 42, 9000, 7};
  m.tdv = DepVector(n);
  m.tdv.set(0, Entry{1, 3});
  m.tdv.set(4, Entry{0, 999999});
  m.born_of = IntervalId{2, 1, 17};
  return m;
}

TEST(CodecTest, AppMsgRoundTripNullOmission) {
  AppMsg m = sample_msg(8);
  auto bytes = encode_app_msg(m, true);
  auto back = decode_app_msg(bytes, 8, true);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, m.id);
  EXPECT_EQ(back->from, m.from);
  EXPECT_EQ(back->to, m.to);
  EXPECT_EQ(back->payload, m.payload);
  EXPECT_EQ(back->born_of, m.born_of);
  EXPECT_EQ(back->tdv, m.tdv);
}

TEST(CodecTest, AppMsgRoundTripFullVector) {
  AppMsg m = sample_msg(6);
  auto bytes = encode_app_msg(m, false);
  auto back = decode_app_msg(bytes, 6, false);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tdv, m.tdv);  // NULL slots survive the (-1,-1) encoding
}

TEST(CodecTest, AppMsgEncodedSizeMatchesEstimate) {
  for (int live = 0; live <= 8; ++live) {
    AppMsg m = sample_msg(8);
    m.tdv = DepVector(8);
    for (int j = 0; j < live; ++j)
      m.tdv.set(j, Entry{0, static_cast<Sii>(j + 1)});
    EXPECT_EQ(encode_app_msg(m, true).size(), m.wire_bytes(true))
        << "live=" << live;
    EXPECT_EQ(encode_app_msg(m, false).size(), m.wire_bytes(false))
        << "live=" << live;
  }
}

TEST(CodecTest, NullOmissionSavesExactlyTheNullSlots) {
  AppMsg m = sample_msg(32);
  size_t omitted = encode_app_msg(m, true).size();
  size_t full = encode_app_msg(m, false).size();
  EXPECT_EQ(full - omitted, (32u - 2u) * DepVector::kWireEntryBytes);
}

TEST(CodecTest, AnnouncementRoundTripAndSize) {
  Announcement a{3, Entry{2, 456}, true};
  auto bytes = encode_announcement(a);
  EXPECT_EQ(bytes.size(), Announcement::kWireBytes);
  auto back = decode_announcement(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, 3);
  EXPECT_EQ(back->ended, (Entry{2, 456}));
  EXPECT_TRUE(back->from_failure);
}

TEST(CodecTest, LogProgressRoundTripAndSize) {
  LogProgressMsg lp;
  lp.from = 1;
  lp.stable = {Entry{0, 10}, Entry{1, 25}, Entry{2, 26}};
  auto bytes = encode_log_progress(lp);
  EXPECT_EQ(bytes.size(), lp.wire_bytes());
  auto back = decode_log_progress(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, 1);
  ASSERT_EQ(back->stable.size(), 3u);
  EXPECT_EQ(back->stable[1], (Entry{1, 25}));
}

TEST(CodecTest, DepQueryRoundTripAndSize) {
  DepQuery q{4, IntervalId{2, 1, 99}, 1234};
  auto bytes = encode_dep_query(q);
  EXPECT_EQ(bytes.size(), DepQuery::kWireBytes);
  auto back = decode_dep_query(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requester, 4);
  EXPECT_EQ(back->target, (IntervalId{2, 1, 99}));
  EXPECT_EQ(back->query_id, 1234u);
}

TEST(CodecTest, DepReplyRoundTripAndSize) {
  DepReply r;
  r.owner = 2;
  r.query_id = 9;
  r.target = IntervalId{2, 0, 5};
  r.status = DepReply::Status::kStable;
  r.deps = {IntervalId{0, 0, 3}, IntervalId{3, 1, 8}};
  auto bytes = encode_dep_reply(r);
  EXPECT_EQ(bytes.size(), r.wire_bytes());
  auto back = decode_dep_reply(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, DepReply::Status::kStable);
  ASSERT_EQ(back->deps.size(), 2u);
  EXPECT_EQ(back->deps[1], (IntervalId{3, 1, 8}));
}

TEST(CodecTest, TruncatedInputFailsCleanly) {
  AppMsg m = sample_msg(8);
  auto bytes = encode_app_msg(m, true);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode_app_msg(prefix, 8, true).has_value())
        << "cut=" << cut;
  }
}

TEST(CodecTest, TrailingGarbageIsRejected) {
  Announcement a{1, Entry{0, 4}, false};
  auto bytes = encode_announcement(a);
  bytes.push_back(0xAB);
  EXPECT_FALSE(decode_announcement(bytes).has_value());
}

TEST(CodecTest, VectorEntryForOutOfRangeProcessIsRejected) {
  AppMsg m = sample_msg(8);
  auto bytes = encode_app_msg(m, true);
  // Decode claiming a smaller system: entry pid 4 is now out of range.
  EXPECT_FALSE(decode_app_msg(bytes, 3, true).has_value());
}

TEST(CodecTest, RandomizedRoundTripSweep) {
  Rng rng(2026);
  for (int iter = 0; iter < 200; ++iter) {
    int n = 1 + static_cast<int>(rng.next_below(32));
    AppMsg m;
    m.from = static_cast<ProcessId>(rng.next_below(static_cast<uint64_t>(n)));
    m.to = static_cast<ProcessId>(rng.next_below(static_cast<uint64_t>(n)));
    m.id = MsgId{m.from, rng.next_u64() >> 1};
    m.payload.kind = static_cast<int32_t>(rng.next_below(100));
    m.payload.a = static_cast<int64_t>(rng.next_u64());
    m.payload.b = static_cast<int64_t>(rng.next_u64());
    m.payload.c = static_cast<int64_t>(rng.next_u64());
    m.payload.ttl = static_cast<int32_t>(rng.next_below(16));
    m.born_of = IntervalId{m.from, static_cast<Incarnation>(rng.next_below(5)),
                           static_cast<Sii>(rng.next_below(1000) + 1)};
    m.tdv = DepVector(n);
    for (ProcessId j = 0; j < n; ++j) {
      if (rng.next_bernoulli(0.4)) {
        m.tdv.set(j, Entry{static_cast<Incarnation>(rng.next_below(4)),
                           static_cast<Sii>(rng.next_below(100000))});
      }
    }
    bool omission = rng.next_bernoulli(0.5);
    auto bytes = encode_app_msg(m, omission);
    EXPECT_EQ(bytes.size(), m.wire_bytes(omission));
    auto back = decode_app_msg(bytes, n, omission);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->tdv, m.tdv);
    EXPECT_EQ(back->payload, m.payload);
    EXPECT_EQ(back->born_of, m.born_of);
  }
}

}  // namespace
}  // namespace koptlog
