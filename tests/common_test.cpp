#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/entry.h"
#include "common/rng.h"

namespace koptlog {
namespace {

TEST(EntryTest, LexicographicOrderOnIncThenSii) {
  EXPECT_LT((Entry{0, 5}), (Entry{1, 2}));
  EXPECT_LT((Entry{1, 2}), (Entry{1, 3}));
  EXPECT_EQ((Entry{2, 7}), (Entry{2, 7}));
  EXPECT_GT((Entry{3, 1}), (Entry{2, 999}));
}

TEST(EntryTest, NullIsSmallerThanEverything) {
  OptEntry null;
  OptEntry small = Entry{0, 0};
  EXPECT_TRUE(lex_less(null, small));
  EXPECT_FALSE(lex_less(small, null));
  EXPECT_FALSE(lex_less(null, null));
}

TEST(EntryTest, LexMaxAndMinRespectNull) {
  OptEntry null;
  OptEntry a = Entry{1, 4};
  OptEntry b = Entry{0, 9};
  EXPECT_EQ(lex_max(null, a), a);
  EXPECT_EQ(lex_max(a, null), a);
  EXPECT_EQ(lex_max(a, b), a);
  EXPECT_EQ(lex_min(a, b), b);
  EXPECT_EQ(lex_min(null, a), null);
}

TEST(EntryTest, Formatting) {
  EXPECT_EQ((Entry{0, 4}).str(), "(0,4)");
  EXPECT_EQ(to_string(OptEntry{}), "NULL");
  EXPECT_EQ((IntervalId{3, 2, 6}).str(), "(2,6)_3");
}

TEST(IntervalIdTest, OrderingAndHash) {
  IntervalId a{0, 0, 1};
  IntervalId b{0, 0, 2};
  IntervalId c{1, 0, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  IntervalIdHash h;
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  EXPECT_EQ(h(a), h(IntervalId{0, 0, 1}));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkIndependentOfParentAdvance) {
  Rng a(7);
  Rng child1 = a.fork("net");
  a.next_u64();  // advancing the parent after forking...
  Rng a2(7);
  Rng child2 = a2.fork("net");
  // ...does not change what an identically-forked child produces.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, ForkDiffersByLabel) {
  Rng a(7);
  EXPECT_NE(a.fork("x").next_u64(), a.fork("y").next_u64());
}

TEST(RngTest, BoundsRespected) {
  Rng a(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.next_below(17), 17u);
    double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t r = a.next_range(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
  }
}

TEST(RngTest, ExponentialHasRoughlyRequestedMean) {
  Rng a(99);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += a.next_exponential(250.0);
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 250.0, 15.0);
}

TEST(RngTest, BernoulliRate) {
  Rng a(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += a.next_bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(HashTest, Fnv1aStableAndSensitive) {
  const char d1[] = "abc";
  const char d2[] = "abd";
  EXPECT_EQ(fnv1a64(d1, 3), fnv1a64(d1, 3));
  EXPECT_NE(fnv1a64(d1, 3), fnv1a64(d2, 3));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(CheckTest, ThrowsInvariantViolationWithContext) {
  try {
    KOPT_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace koptlog
