// Configuration presets and the trace facility.
#include <gtest/gtest.h>

#include "baseline/pessimistic.h"
#include "common/trace.h"
#include "core/config.h"

namespace koptlog {
namespace {

TEST(ConfigTest, DefaultIsTraditionalOptimistic) {
  ProtocolConfig cfg;
  EXPECT_EQ(cfg.k, ProtocolConfig::kUnboundedK);
  EXPECT_TRUE(cfg.null_stable_entries);
  EXPECT_TRUE(cfg.cor1_fast_delivery);
  EXPECT_FALSE(cfg.announce_all_rollbacks);
  EXPECT_FALSE(cfg.pessimistic_sync_logging);
  EXPECT_TRUE(cfg.garbage_collect);
  EXPECT_FALSE(cfg.reliable_delivery);
  EXPECT_FALSE(cfg.coordinated_checkpoints);
}

TEST(ConfigTest, KOptimisticPreset) {
  ProtocolConfig cfg = ProtocolConfig::k_optimistic(3);
  EXPECT_EQ(cfg.k, 3);
  EXPECT_TRUE(cfg.null_stable_entries);  // required for finite K
}

TEST(ConfigTest, StromYeminiPresetDisablesAllThreeImprovements) {
  ProtocolConfig cfg = ProtocolConfig::strom_yemini();
  EXPECT_FALSE(cfg.null_stable_entries);   // no Theorem 2
  EXPECT_FALSE(cfg.cor1_fast_delivery);    // no Corollary 1
  EXPECT_TRUE(cfg.announce_all_rollbacks); // no Theorem 1
  EXPECT_GE(cfg.k, 1 << 20);               // inherently N-optimistic
}

TEST(ConfigTest, PessimisticPreset) {
  ProtocolConfig cfg = ProtocolConfig::pessimistic();
  EXPECT_EQ(cfg.k, 0);
  EXPECT_TRUE(cfg.pessimistic_sync_logging);
}

TEST(ConfigTest, BaselineHelpersMatchPresets) {
  EXPECT_EQ(pessimistic_baseline().k, 0);
  EXPECT_FALSE(strom_yemini_baseline().cor1_fast_delivery);
  ProtocolConfig full = full_tdv_baseline();
  EXPECT_FALSE(full.null_stable_entries);
  EXPECT_TRUE(full.cor1_fast_delivery);  // ablation keeps the other two
  EXPECT_FALSE(full.announce_all_rollbacks);
  EXPECT_EQ(k_optimistic(2).k, 2);
}

TEST(TracerTest, DisabledByDefault) {
  Tracer t;
  EXPECT_FALSE(t.enabled(TraceLevel::kInfo));
  int calls = 0;
  t.log(TraceLevel::kInfo, 0, 0, [&](std::ostream&) { ++calls; });
  EXPECT_EQ(calls, 0);  // formatting is lazy: never evaluated when off
}

TEST(TracerTest, LevelFiltering) {
  Tracer t;
  std::string out;
  t.set_sink(Tracer::string_sink(out), TraceLevel::kInfo);
  EXPECT_TRUE(t.enabled(TraceLevel::kInfo));
  EXPECT_FALSE(t.enabled(TraceLevel::kDebug));
  t.log(TraceLevel::kDebug, 5, 1, [](std::ostream& os) { os << "hidden"; });
  t.log(TraceLevel::kInfo, 7, 2, [](std::ostream& os) { os << "shown"; });
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("7 P2 shown"), std::string::npos);
}

TEST(TracerTest, StringSinkFormat) {
  Tracer t;
  std::string out;
  t.set_sink(Tracer::string_sink(out), TraceLevel::kDebug);
  t.emit(42, 3, "hello");
  EXPECT_EQ(out, "42 P3 hello\n");
}

TEST(TracerTest, StringSinkAppendsOneRowPerEmit) {
  std::string out;
  Tracer::Sink sink = Tracer::string_sink(out);
  sink(0, 0, "first");
  sink(1'000'000, 12, "second row, with punctuation: (0,4)_1");
  EXPECT_EQ(out,
            "0 P0 first\n"
            "1000000 P12 second row, with punctuation: (0,4)_1\n");
}

}  // namespace
}  // namespace koptlog
