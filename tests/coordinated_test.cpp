// Coordinated checkpointing (paper §2: "each process takes independent or
// coordinated checkpoints [4]"): the cluster's marker rounds replace the
// per-process timers; each round's checkpoints form a recovery line.
#include <gtest/gtest.h>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/failure_injector.h"
#include "direct/direct_process.h"

namespace koptlog {
namespace {

TEST(CoordinatedCheckpoints, RoundsDriveEveryProcess) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 101;
  cfg.enable_oracle = true;
  cfg.protocol.coordinated_checkpoints = true;
  cfg.protocol.checkpoint_interval_us = 50'000;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 30, 1'000, 300'000, 6, 103);
  cluster.run_for(400'000);
  cluster.drain();
  int64_t rounds = cluster.stats().counter("checkpoint.rounds");
  EXPECT_GE(rounds, 7);
  // Every alive process checkpointed once per round (plus its initial
  // checkpoint at start).
  EXPECT_EQ(cluster.stats().counter("checkpoint.count"), cfg.n * (rounds + 1));
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(CoordinatedCheckpoints, RecoveryLineSkewIsOneControlLatency) {
  // With coordinated rounds, the per-round checkpoints land within the
  // control plane's latency spread of each other.
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 102;
  cfg.enable_oracle = false;
  cfg.protocol.coordinated_checkpoints = true;
  cfg.protocol.checkpoint_interval_us = 60'000;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 20, 1'000, 200'000, 6, 105);
  cluster.run_for(65'000);  // exactly one round has fired
  SimTime max_skew = cfg.control_latency.base_us + cfg.control_latency.jitter_us;
  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    // initial + the round's checkpoint:
    EXPECT_EQ(cluster.engine(pid).storage().counters().checkpoints_taken, 2)
        << "P" << pid << " within skew window " << max_skew;
  }
}

TEST(CoordinatedCheckpoints, SurvivesFailuresAndVerifies) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = 103;
  cfg.enable_oracle = true;
  cfg.protocol.coordinated_checkpoints = true;
  cfg.protocol.checkpoint_interval_us = 40'000;
  Cluster cluster(cfg, make_client_server_app({}));
  cluster.start();
  inject_client_requests(cluster, 50, 1'000, 300'000, 107);
  cluster.fail_at(100'000, 1);
  cluster.fail_at(220'000, 3);
  cluster.run_for(900'000);
  cluster.drain();
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_GT(cluster.stats().counter("gc.records_reclaimed"), 0);
}

TEST(CoordinatedCheckpoints, WorksWithTheDirectEngine) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 104;
  cfg.enable_oracle = true;
  cfg.protocol.coordinated_checkpoints = true;
  Cluster cluster(cfg, make_uniform_app({}), DirectProcess::factory());
  cluster.start();
  inject_uniform_load(cluster, 30, 1'000, 200'000, 6, 109);
  cluster.fail_at(90'000, 2);
  cluster.run_for(800'000);
  cluster.drain();
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(CoordinatedCheckpoints, IndependentModeUnchanged) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 105;
  cfg.enable_oracle = false;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 10, 1'000, 100'000, 5, 111);
  cluster.run_for(300'000);
  cluster.drain();
  EXPECT_EQ(cluster.stats().counter("checkpoint.rounds"), 0);
  EXPECT_GT(cluster.stats().counter("checkpoint.count"), 3);
}

}  // namespace
}  // namespace koptlog
