// Delta dependency-vector codec: frame round-trips, resync semantics,
// channel-table LRU eviction safety, and the passive TrackingMeter.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "wire/delta_codec.h"

namespace koptlog::wire {
namespace {

DepVector vec(int n, std::vector<std::pair<ProcessId, Entry>> entries) {
  DepVector v(n);
  for (const auto& [pid, e] : entries) v.set(pid, e);
  return v;
}

std::optional<DepVector> roundtrip_full(const DepVector& v) {
  Encoder e;
  encode_full_frame(e, v);
  DeltaChannelDecoder dec;
  return dec.decode(e.bytes(), v.size());
}

// --- varints ---------------------------------------------------------------

TEST(VarintTest, RoundTripsRepresentativeValues) {
  const uint64_t cases[] = {0,    1,    127,        128,
                            300,  16383, 16384,     uint64_t{1} << 32,
                            ~uint64_t{0}};
  for (uint64_t u : cases) {
    Encoder e;
    e.varu(u);
    Decoder d(e.bytes());
    EXPECT_EQ(d.varu(), u);
    EXPECT_TRUE(d.done());
  }
  const int64_t svals[] = {0, -1, 1, -64, 64, -1'000'000,
                           INT64_MIN, INT64_MAX};
  for (int64_t s : svals) {
    Encoder e;
    e.vari(s);
    Decoder d(e.bytes());
    EXPECT_EQ(d.vari(), s);
    EXPECT_TRUE(d.done());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  Encoder e;
  e.varu(127);
  EXPECT_EQ(e.size(), 1u);
  e.varu(128);
  EXPECT_EQ(e.size(), 3u);  // 1 + 2
}

TEST(VarintTest, OverlongEncodingFailsTheStream) {
  // Eleven continuation bytes: more than any u64 needs.
  std::vector<uint8_t> overlong(11, 0x80);
  overlong.push_back(0x01);
  Decoder d(overlong);
  d.varu();
  EXPECT_TRUE(d.failed());
  // Ten bytes whose last carries bits beyond the 64th.
  std::vector<uint8_t> wide(9, 0x80);
  wide.push_back(0x7F);
  Decoder d2(wide);
  d2.varu();
  EXPECT_TRUE(d2.failed());
}

// --- full frames -----------------------------------------------------------

TEST(DeltaCodecTest, FullFrameRoundTripsSparseVector) {
  DepVector v = vec(1000, {{3, Entry{0, 7}}, {400, Entry{2, 9}},
                           {999, Entry{1, 123456789}}});
  auto back = roundtrip_full(v);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v);
}

TEST(DeltaCodecTest, FullFrameRoundTripsAllNullAndDense) {
  auto empty = roundtrip_full(DepVector(64));
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(*empty, DepVector(64));

  DepVector dense(16);
  for (ProcessId j = 0; j < 16; ++j) dense.set(j, Entry{j % 3, j * 10});
  auto back = roundtrip_full(dense);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, dense);
}

TEST(DeltaCodecTest, FullFrameIsSmallForSparseLargeN) {
  // 3 live entries out of 1000: the frame must not scale with N.
  DepVector v = vec(1000, {{3, Entry{0, 7}}, {400, Entry{2, 9}},
                           {999, Entry{1, 5}}});
  Encoder e;
  encode_full_frame(e, v);
  EXPECT_LT(e.size(), 32u);
}

// --- channel encode/decode: resync and delta semantics ---------------------

TEST(DeltaChannelTest, FirstFrameIsFullThenDeltas) {
  const int n = 200;
  DeltaChannelEncoder enc;
  DeltaChannelDecoder dec;
  DepVector v1 = vec(n, {{1, Entry{0, 5}}, {50, Entry{0, 3}}});
  std::vector<uint8_t> f1 = enc.encode(v1, /*sender_inc=*/0);
  ASSERT_FALSE(f1.empty());
  EXPECT_EQ(f1[0], kFrameFull);
  auto d1 = dec.decode(f1, n);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(*d1, v1);

  // One entry advances: the next frame is a small delta.
  DepVector v2 = v1;
  v2.set(50, Entry{0, 4});
  std::vector<uint8_t> f2 = enc.encode(v2, 0);
  ASSERT_FALSE(f2.empty());
  EXPECT_EQ(f2[0], kFrameDelta);
  EXPECT_LT(f2.size(), f1.size());
  auto d2 = dec.decode(f2, n);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(*d2, v2);

  // An entry going NULL (stability) is also a delta change.
  DepVector v3 = v2;
  v3.clear(1);
  std::vector<uint8_t> f3 = enc.encode(v3, 0);
  EXPECT_EQ(f3[0], kFrameDelta);
  auto d3 = dec.decode(f3, n);
  ASSERT_TRUE(d3.has_value());
  EXPECT_EQ(*d3, v3);
}

TEST(DeltaChannelTest, IncarnationBumpForcesFullResync) {
  const int n = 100;
  DeltaChannelEncoder enc;
  DeltaChannelDecoder dec;
  DepVector v1 = vec(n, {{2, Entry{0, 9}}});
  EXPECT_EQ(enc.encode(v1, 0)[0], kFrameFull);
  (void)dec.decode(enc.encode(v1, 0), n);

  DepVector v2 = vec(n, {{2, Entry{0, 10}}});
  // Sender rolled back and restarted as incarnation 1: no delta allowed.
  std::vector<uint8_t> f = enc.encode(v2, /*sender_inc=*/1);
  EXPECT_EQ(f[0], kFrameFull);
  auto d = dec.decode(f, n);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, v2);
}

TEST(DeltaChannelTest, SizeChangeForcesFullResync) {
  DeltaChannelEncoder enc;
  EXPECT_EQ(enc.encode(vec(10, {{1, Entry{0, 1}}}), 0)[0], kFrameFull);
  EXPECT_EQ(enc.encode(vec(20, {{1, Entry{0, 2}}}), 0)[0], kFrameFull);
}

TEST(DeltaChannelTest, UnchangedVectorDeltaIsTiny) {
  const int n = 500;
  DeltaChannelEncoder enc;
  DepVector v = vec(n, {{7, Entry{0, 3}}, {8, Entry{0, 4}},
                        {499, Entry{1, 2}}});
  (void)enc.encode(v, 0);
  std::vector<uint8_t> f = enc.encode(v, 0);
  EXPECT_EQ(f[0], kFrameDelta);
  // tag + varu(n) + varu(0 changes)
  EXPECT_LE(f.size(), 4u);
}

TEST(DeltaChannelTest, FullFallbackWhenDeltaNoSmaller) {
  const int n = 50;
  DeltaChannelEncoder enc;
  DepVector v1 = vec(n, {{1, Entry{0, 1}}});
  (void)enc.encode(v1, 0);
  // Everything changed: the delta (with its per-change kind byte) cannot
  // beat the full frame, so the encoder ships full.
  DepVector v2 = vec(n, {{2, Entry{3, 100}}, {4, Entry{1, 7}},
                         {9, Entry{2, 8}}});
  std::vector<uint8_t> f = enc.encode(v2, 0);
  Encoder full;
  encode_full_frame(full, v2);
  EXPECT_LE(f.size(), full.size());
  EXPECT_GE(enc.full_frames(), f[0] == kFrameFull ? 2 : 1);
}

TEST(DeltaChannelTest, DeltaWithoutBasisIsHardError) {
  const int n = 30;
  DeltaChannelEncoder enc;
  // Enough unchanged entries that the one-change delta beats the full frame.
  DepVector v1 = vec(n, {{1, Entry{0, 1}}, {4, Entry{0, 2}}, {9, Entry{0, 3}},
                         {15, Entry{0, 4}}, {22, Entry{0, 5}}});
  (void)enc.encode(v1, 0);
  DepVector v2 = v1;
  v2.set(1, Entry{0, 2});
  std::vector<uint8_t> delta = enc.encode(v2, 0);
  ASSERT_EQ(delta[0], kFrameDelta);
  // A fresh decoder (restarted receiver) must reject it, not guess.
  DeltaChannelDecoder fresh;
  EXPECT_FALSE(fresh.decode(delta, n).has_value());
  EXPECT_FALSE(fresh.has_basis());
}

TEST(DeltaChannelTest, DecoderRejectsSizeMismatch) {
  DepVector v = vec(10, {{1, Entry{0, 1}}});
  Encoder e;
  encode_full_frame(e, v);
  DeltaChannelDecoder dec;
  EXPECT_FALSE(dec.decode(e.bytes(), 11).has_value());
  EXPECT_TRUE(dec.decode(e.bytes(), 10).has_value());
}

TEST(DeltaChannelTest, LongRandomWalkRoundTripsEveryFrame) {
  const int n = 300;
  Rng rng(77);
  DeltaChannelEncoder enc;
  DeltaChannelDecoder dec;
  DepVector v(n);
  Incarnation inc = 0;
  int64_t delta_frames = 0;
  for (int step = 0; step < 500; ++step) {
    // Mutate a few random entries; occasionally bump the incarnation.
    int muts = 1 + static_cast<int>(rng.next_range(0, 3));
    for (int m = 0; m < muts; ++m) {
      ProcessId j = static_cast<ProcessId>(rng.next_range(0, n - 1));
      if (rng.next_range(0, 4) == 0) {
        v.clear(j);
      } else {
        v.set(j, Entry{inc, static_cast<Sii>(rng.next_range(0, 1'000))});
      }
    }
    if (rng.next_range(0, 49) == 0) ++inc;
    std::vector<uint8_t> f = enc.encode(v, inc);
    auto back = dec.decode(f, n);
    ASSERT_TRUE(back.has_value()) << "step " << step;
    ASSERT_EQ(*back, v) << "step " << step;
    if (f[0] == kFrameDelta) ++delta_frames;
  }
  // The walk must actually exercise the delta path.
  EXPECT_GT(delta_frames, 400);
}

// --- channel table ---------------------------------------------------------

TEST(DeltaChannelTableTest, LruEvictionIsAlwaysSafe) {
  const int n = 40;
  DeltaChannelTable table(/*capacity=*/2);
  DepVector v = vec(n, {{1, Entry{0, 1}}});

  auto send_on = [&](ProcessId src, ProcessId dst) {
    DeltaChannelTable::Channel& ch = table.channel(src, dst);
    std::vector<uint8_t> f = ch.enc.encode(v, 0);
    auto back = table.channel(src, dst).dec.decode(f, n);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(*back, v);
  };

  send_on(0, 1);
  send_on(0, 2);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 0);
  send_on(0, 3);  // evicts (0,1) — the least recently used
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 1);
  // The evicted channel comes back cold: encoder resyncs with a full
  // frame, which the fresh decoder accepts. Round-trip still succeeds.
  send_on(0, 1);
  EXPECT_EQ(table.evictions(), 2);
  EXPECT_FALSE(table.channel(0, 1).enc.has_basis() &&
               table.channel(0, 1).dec.has_basis() &&
               table.size() != 2u);
}

TEST(DeltaChannelTableTest, TouchRefreshesRecency) {
  const int n = 10;
  DeltaChannelTable table(2);
  (void)table.channel(0, 1);
  (void)table.channel(0, 2);
  (void)table.channel(0, 1);  // refresh (0,1)
  (void)table.channel(0, 3);  // must evict (0,2), not (0,1)
  DepVector v = vec(n, {{1, Entry{0, 1}}});
  DeltaChannelTable::Channel& ch = table.channel(0, 1);  // no eviction
  EXPECT_EQ(table.evictions(), 1);
  std::vector<uint8_t> f = ch.enc.encode(v, 0);
  EXPECT_TRUE(ch.dec.decode(f, n).has_value());
}

// --- TrackingMeter ---------------------------------------------------------

TEST(TrackingMeterTest, AccumulatesPerChannelTotals) {
  const int n = 64;
  TrackingMeter meter(n, /*max_channels=*/128);
  AppMsg m;
  m.from = 0;
  m.to = 1;
  m.born_of = IntervalId{0, 0, 1};
  m.tdv = vec(n, {{0, Entry{0, 1}}, {5, Entry{0, 2}}});

  size_t b1 = meter.on_route(m);
  EXPECT_GT(b1, 0u);
  m.tdv.set(5, Entry{0, 3});
  size_t b2 = meter.on_route(m);
  EXPECT_LT(b2, b1);  // second frame is a delta

  EXPECT_EQ(meter.messages(), 2);
  EXPECT_EQ(meter.bytes(), static_cast<int64_t>(b1 + b2));
  EXPECT_EQ(meter.nnz(), 4);
  EXPECT_EQ(meter.full_frames(), 1);
  EXPECT_EQ(meter.evictions(), 0);
}

TEST(TrackingMeterTest, DistinctChannelsKeepIndependentBases) {
  const int n = 32;
  TrackingMeter meter(n, 128);
  AppMsg m;
  m.born_of = IntervalId{0, 0, 1};
  m.tdv = vec(n, {{2, Entry{0, 1}}});
  m.from = 0;
  m.to = 1;
  (void)meter.on_route(m);
  m.to = 2;  // different channel: needs its own full resync
  (void)meter.on_route(m);
  EXPECT_EQ(meter.full_frames(), 2);
}

}  // namespace
}  // namespace koptlog::wire
