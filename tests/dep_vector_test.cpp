#include <gtest/gtest.h>

#include "common/check.h"
#include "core/dep_vector.h"

namespace koptlog {
namespace {

TEST(DepVectorTest, StartsAllNull) {
  DepVector v(4);
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v.non_null_count(), 0);
  EXPECT_TRUE(v.all_null());
}

TEST(DepVectorTest, SetClearCount) {
  DepVector v(3);
  v.set(1, Entry{0, 4});
  v.set(2, Entry{2, 6});
  EXPECT_EQ(v.non_null_count(), 2);
  EXPECT_FALSE(v.all_null());
  v.clear(1);
  EXPECT_EQ(v.non_null_count(), 1);
  EXPECT_FALSE(v.at(1).has_value());
  ASSERT_TRUE(v.at(2).has_value());
  EXPECT_EQ(*v.at(2), (Entry{2, 6}));
}

TEST(DepVectorTest, MergeMaxIsEntrywiseLexMax) {
  DepVector a(4), b(4);
  a.set(0, Entry{1, 3});
  a.set(1, Entry{0, 4});
  b.set(1, Entry{1, 5});  // newer incarnation wins
  b.set(2, Entry{0, 2});
  a.merge_max(b);
  EXPECT_EQ(*a.at(0), (Entry{1, 3}));  // kept: b had NULL
  EXPECT_EQ(*a.at(1), (Entry{1, 5}));  // overwritten by lex max
  EXPECT_EQ(*a.at(2), (Entry{0, 2}));  // acquired
  EXPECT_FALSE(a.at(3).has_value());
}

TEST(DepVectorTest, MergeMaxSameIncarnationKeepsLargerIndex) {
  DepVector a(2), b(2);
  a.set(0, Entry{2, 6});
  b.set(0, Entry{2, 9});
  a.merge_max(b);
  EXPECT_EQ(*a.at(0), (Entry{2, 9}));
}

TEST(DepVectorTest, MergeSizeMismatchThrows) {
  DepVector a(2), b(3);
  EXPECT_THROW(a.merge_max(b), InvariantViolation);
}

TEST(DepVectorTest, WireBytesOmitNulls) {
  DepVector v(8);
  EXPECT_EQ(v.wire_bytes(), DepVector::kWireHeaderBytes);
  v.set(3, Entry{0, 1});
  v.set(5, Entry{1, 2});
  EXPECT_EQ(v.wire_bytes(),
            DepVector::kWireHeaderBytes + 2 * DepVector::kWireEntryBytes);
  EXPECT_EQ(v.wire_bytes_full(),
            DepVector::kWireHeaderBytes + 8 * DepVector::kWireEntryBytes);
}

TEST(DepVectorTest, EqualityAndFormatting) {
  DepVector a(3), b(3);
  a.set(1, Entry{0, 4});
  EXPECT_NE(a, b);
  b.set(1, Entry{0, 4});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.str(), "{(0,4)_1}");
  EXPECT_EQ(DepVector(2).str(), "{}");
}

// The Figure 1 example, §2: P4's dependency after delivering m2 and m6 in
// the fully-asynchronous single-entry-per-process scheme.
TEST(DepVectorTest, Figure1MergeAtP4) {
  // After m2: {(1,3)_0, (0,4)_1, (2,6)_3, (0,2)_4}
  DepVector p4(6);
  p4.set(0, Entry{1, 3});
  p4.set(1, Entry{0, 4});
  p4.set(3, Entry{2, 6});
  p4.set(4, Entry{0, 2});
  // m6 carries {(1,5)_1, (0,3)_2}; with the Strom–Yemini coupling the P1
  // entry is overwritten by the lexicographic max once (0,4)_1 is stable.
  DepVector m6(6);
  m6.set(1, Entry{1, 5});
  m6.set(2, Entry{0, 3});
  p4.merge_max(m6);
  p4.set(4, Entry{0, 3});  // delivering m6 starts interval (0,3)_4
  EXPECT_EQ(*p4.at(0), (Entry{1, 3}));
  EXPECT_EQ(*p4.at(1), (Entry{1, 5}));
  EXPECT_EQ(*p4.at(2), (Entry{0, 3}));
  EXPECT_EQ(*p4.at(3), (Entry{2, 6}));
  EXPECT_EQ(*p4.at(4), (Entry{0, 3}));
  EXPECT_EQ(p4.non_null_count(), 5);
}

}  // namespace
}  // namespace koptlog
