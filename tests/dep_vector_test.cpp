#include <gtest/gtest.h>

#include "common/check.h"
#include "core/dep_vector.h"

namespace koptlog {
namespace {

TEST(DepVectorTest, StartsAllNull) {
  DepVector v(4);
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v.non_null_count(), 0);
  EXPECT_TRUE(v.all_null());
}

TEST(DepVectorTest, SetClearCount) {
  DepVector v(3);
  v.set(1, Entry{0, 4});
  v.set(2, Entry{2, 6});
  EXPECT_EQ(v.non_null_count(), 2);
  EXPECT_FALSE(v.all_null());
  v.clear(1);
  EXPECT_EQ(v.non_null_count(), 1);
  EXPECT_FALSE(v.at(1).has_value());
  ASSERT_TRUE(v.at(2).has_value());
  EXPECT_EQ(*v.at(2), (Entry{2, 6}));
}

TEST(DepVectorTest, MergeMaxIsEntrywiseLexMax) {
  DepVector a(4), b(4);
  a.set(0, Entry{1, 3});
  a.set(1, Entry{0, 4});
  b.set(1, Entry{1, 5});  // newer incarnation wins
  b.set(2, Entry{0, 2});
  a.merge_max(b);
  EXPECT_EQ(*a.at(0), (Entry{1, 3}));  // kept: b had NULL
  EXPECT_EQ(*a.at(1), (Entry{1, 5}));  // overwritten by lex max
  EXPECT_EQ(*a.at(2), (Entry{0, 2}));  // acquired
  EXPECT_FALSE(a.at(3).has_value());
}

TEST(DepVectorTest, MergeMaxSameIncarnationKeepsLargerIndex) {
  DepVector a(2), b(2);
  a.set(0, Entry{2, 6});
  b.set(0, Entry{2, 9});
  a.merge_max(b);
  EXPECT_EQ(*a.at(0), (Entry{2, 9}));
}

TEST(DepVectorTest, MergeSizeMismatchThrows) {
  DepVector a(2), b(3);
  EXPECT_THROW(a.merge_max(b), InvariantViolation);
}

TEST(DepVectorTest, WireBytesOmitNulls) {
  DepVector v(8);
  EXPECT_EQ(v.wire_bytes(), DepVector::kWireHeaderBytes);
  v.set(3, Entry{0, 1});
  v.set(5, Entry{1, 2});
  EXPECT_EQ(v.wire_bytes(),
            DepVector::kWireHeaderBytes + 2 * DepVector::kWireEntryBytes);
  EXPECT_EQ(v.wire_bytes_full(),
            DepVector::kWireHeaderBytes + 8 * DepVector::kWireEntryBytes);
}

TEST(DepVectorTest, EqualityAndFormatting) {
  DepVector a(3), b(3);
  a.set(1, Entry{0, 4});
  EXPECT_NE(a, b);
  b.set(1, Entry{0, 4});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.str(), "{(0,4)_1}");
  EXPECT_EQ(DepVector(2).str(), "{}");
}

// The Figure 1 example, §2: P4's dependency after delivering m2 and m6 in
// the fully-asynchronous single-entry-per-process scheme.
TEST(DepVectorTest, Figure1MergeAtP4) {
  // After m2: {(1,3)_0, (0,4)_1, (2,6)_3, (0,2)_4}
  DepVector p4(6);
  p4.set(0, Entry{1, 3});
  p4.set(1, Entry{0, 4});
  p4.set(3, Entry{2, 6});
  p4.set(4, Entry{0, 2});
  // m6 carries {(1,5)_1, (0,3)_2}; with the Strom–Yemini coupling the P1
  // entry is overwritten by the lexicographic max once (0,4)_1 is stable.
  DepVector m6(6);
  m6.set(1, Entry{1, 5});
  m6.set(2, Entry{0, 3});
  p4.merge_max(m6);
  p4.set(4, Entry{0, 3});  // delivering m6 starts interval (0,3)_4
  EXPECT_EQ(*p4.at(0), (Entry{1, 3}));
  EXPECT_EQ(*p4.at(1), (Entry{1, 5}));
  EXPECT_EQ(*p4.at(2), (Entry{0, 3}));
  EXPECT_EQ(*p4.at(3), (Entry{2, 6}));
  EXPECT_EQ(*p4.at(4), (Entry{0, 3}));
  EXPECT_EQ(p4.non_null_count(), 5);
}

// --- sparse representation -------------------------------------------------

TEST(DepVectorTest, TryMergeMaxReportsSizeMismatchWithoutMutating) {
  DepVector a(3), b(4);
  a.set(0, Entry{0, 5});
  b.set(0, Entry{0, 9});
  DepVector before = a;
  EXPECT_FALSE(a.try_merge_max(b));
  EXPECT_EQ(a, before);  // untouched on failure
  DepVector c(3);
  c.set(1, Entry{0, 2});
  EXPECT_TRUE(a.try_merge_max(c));
  EXPECT_EQ(*a.at(0), (Entry{0, 5}));
  EXPECT_EQ(*a.at(1), (Entry{0, 2}));
}

TEST(DepVectorTest, SpillsToHeapBeyondInlineCapacityAndBack) {
  const int n = 4 * DepVector::kInlineSlots;
  DepVector v(n);
  // Fill well past the inline capacity, descending pid order to exercise
  // sorted insertion, then verify every lookup.
  for (ProcessId j = n - 1; j >= 0; j -= 2) v.set(j, Entry{0, j});
  EXPECT_EQ(v.non_null_count(), n / 2);
  for (ProcessId j = 0; j < n; ++j) {
    if (j % 2 == 1) {
      ASSERT_TRUE(v.at(j).has_value());
      EXPECT_EQ(v.at(j)->sii, j);
    } else {
      EXPECT_FALSE(v.at(j).has_value());
    }
  }
  // for_each visits them in ascending pid order.
  ProcessId prev = -1;
  v.for_each([&](ProcessId j, const Entry&) {
    EXPECT_GT(j, prev);
    prev = j;
  });
  // Clearing back below the inline capacity keeps behaving correctly.
  for (ProcessId j = 1; j < n; j += 2) {
    if (j > 3) v.clear(j);
  }
  EXPECT_EQ(v.non_null_count(), 2);
  EXPECT_EQ(*v.at(1), (Entry{0, 1}));
  EXPECT_EQ(*v.at(3), (Entry{0, 3}));
}

TEST(DepVectorTest, EqualityIsLogicalAcrossInlineAndHeapForms) {
  const int n = 3 * DepVector::kInlineSlots;
  // `heap` spills past the inline capacity, then shrinks back to two live
  // entries; `inl` never left the inline form. Logically equal.
  DepVector heap(n);
  for (ProcessId j = 0; j < n; ++j) heap.set(j, Entry{0, j + 1});
  for (ProcessId j = 0; j < n; ++j) {
    if (j != 2 && j != 7) heap.clear(j);
  }
  DepVector inl(n);
  inl.set(2, Entry{0, 3});
  inl.set(7, Entry{0, 8});
  EXPECT_EQ(heap, inl);
  inl.set(7, Entry{0, 9});
  EXPECT_FALSE(heap == inl);
  EXPECT_FALSE(DepVector(n) == DepVector(n + 1));  // size is part of identity
}

TEST(DepVectorTest, MergeMaxAcrossSpilledVectors) {
  const int n = 40;
  DepVector a(n), b(n);
  for (ProcessId j = 0; j < n; j += 2) a.set(j, Entry{0, j});
  for (ProcessId j = 1; j < n; j += 2) b.set(j, Entry{0, j});
  b.set(0, Entry{1, 0});  // higher incarnation beats a's (0,0)
  a.merge_max(b);
  EXPECT_EQ(a.non_null_count(), n);
  EXPECT_EQ(*a.at(0), (Entry{1, 0}));
  for (ProcessId j = 1; j < n; ++j) EXPECT_EQ(a.at(j)->sii, j);
}

}  // namespace
}  // namespace koptlog
