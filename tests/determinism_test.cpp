// Determinism regression: the runtime-component decomposition must keep
// the engines bit-for-bit deterministic. Two runs of the same seeded
// uniform workload with one injected failure must produce identical
// committed-output sequences and identical stats counters — for the
// K-optimistic engine and for the direct-tracking engine.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/process.h"
#include "direct/direct_process.h"
#include "obs/event_recorder.h"
#include "obs/live_audit.h"
#include "obs/ring_recorder.h"

namespace koptlog {
namespace {

struct RunResult {
  std::vector<Cluster::CommittedOutput> outputs;
  std::map<std::string, int64_t> counters;
  std::vector<ProtocolEvent> events;
};

RunResult run_once(const ClusterConfig& base,
                   const Cluster::EngineFactory& factory,
                   bool record = true,
                   RecordMode mode = RecordMode::kVector,
                   LiveAudit* live_audit = nullptr) {
  ClusterConfig cfg = base;
  cfg.record_events = record;
  cfg.recording.mode = mode;
  if (mode == RecordMode::kRing) {
    // Large enough that the single-threaded run (nobody drains mid-run)
    // retains everything: the residual window IS the whole stream.
    cfg.recording.ring_capacity = 1 << 16;
  }
  Cluster cluster(cfg, make_uniform_app({.output_every = 4}), factory);
  cluster.start();
  inject_uniform_load(cluster, 120, 1'000, 600'000, 5, 11);
  cluster.fail_at(250'000, 1);
  cluster.run_for(2'000'000);
  cluster.drain();
  RunResult r{cluster.outputs(), cluster.stats().counters(), {}};
  if (const Recording* rec = cluster.recording()) r.events = rec->merged();
  if (live_audit != nullptr) {
    for (const ProtocolEvent& e : r.events) live_audit->on_event(e);
  }
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (size_t i = 0; i < a.outputs.size(); ++i) {
    const Cluster::CommittedOutput& x = a.outputs[i];
    const Cluster::CommittedOutput& y = b.outputs[i];
    EXPECT_EQ(x.id, y.id) << "output " << i;
    EXPECT_EQ(x.pid, y.pid) << "output " << i;
    EXPECT_EQ(x.payload, y.payload) << "output " << i;
    EXPECT_EQ(x.born_of, y.born_of) << "output " << i;
    EXPECT_EQ(x.committed_at, y.committed_at) << "output " << i;
  }
  EXPECT_EQ(a.counters, b.counters);
  // The recorded event streams must match event for event, too: the
  // observability layer is part of the deterministic surface.
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(a.events[i], b.events[i]) << "event " << i;
  }
}

Cluster::EngineFactory k_optimistic_factory() {
  return [](ProcessId pid, const ClusterConfig& cfg, ClusterApi& api,
            std::unique_ptr<Application> app)
             -> std::unique_ptr<RecoveryProcess> {
    return std::make_unique<Process>(pid, cfg.n, cfg.protocol, api,
                                     std::move(app));
  };
}

TEST(Determinism, KOptimisticEngineIsSeedDeterministic) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 8881;
  cfg.protocol.k = 2;
  RunResult first = run_once(cfg, k_optimistic_factory());
  RunResult second = run_once(cfg, k_optimistic_factory());
  ASSERT_GT(first.outputs.size(), 0u);
  ASSERT_GT(first.events.size(), 0u);
  EXPECT_GT(first.counters.at("crash.count"), 0);
  expect_identical(first, second);
}

TEST(Determinism, EventRecordingIsPassive) {
  // Enabling the recorder must not perturb the run: outputs and counters
  // with recording on are identical to the same seed with recording off.
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 8881;
  cfg.protocol.k = 2;
  RunResult on = run_once(cfg, k_optimistic_factory(), /*record=*/true);
  RunResult off = run_once(cfg, k_optimistic_factory(), /*record=*/false);
  ASSERT_GT(on.events.size(), 0u);
  ASSERT_EQ(off.events.size(), 0u);
  off.events = on.events;  // compare everything except the streams
  expect_identical(on, off);
}

TEST(Determinism, RingRecordingWithLiveAuditIsPassive) {
  // The streaming mode must be as passive as the vector mode: the same
  // seeded run with --record=ring + the live auditor attached is bit-for-bit
  // identical (outputs, counters, event streams) to a run with recording
  // off — and the audit itself comes back green.
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 8881;
  cfg.protocol.k = 2;
  LiveAudit audit(cfg.n);
  RunResult ring = run_once(cfg, k_optimistic_factory(), /*record=*/true,
                            RecordMode::kRing, &audit);
  RunResult off = run_once(cfg, k_optimistic_factory(), /*record=*/false);
  ASSERT_GT(ring.events.size(), 0u);
  EXPECT_TRUE(audit.ok()) << audit.first_violation();
  EXPECT_EQ(audit.events_seen(), ring.events.size());
  ASSERT_EQ(off.events.size(), 0u);
  off.events = ring.events;  // compare everything except the streams
  expect_identical(ring, off);

  // And against vector mode: identical streams, too.
  RunResult vec = run_once(cfg, k_optimistic_factory(), /*record=*/true,
                           RecordMode::kVector);
  expect_identical(ring, vec);
}

TEST(Determinism, DirectEngineIsSeedDeterministic) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 8881;
  RunResult first = run_once(cfg, DirectProcess::factory());
  RunResult second = run_once(cfg, DirectProcess::factory());
  ASSERT_GT(first.outputs.size(), 0u);
  ASSERT_GT(first.events.size(), 0u);
  EXPECT_GT(first.counters.at("crash.count"), 0);
  expect_identical(first, second);
}

}  // namespace
}  // namespace koptlog
