// Tests for the direct-dependency-tracking engine (paper §5's comparison
// point): constant-size piggybacks, immediate delivery, cascading rollback
// announcements, and commit-time transitive-closure assembly.
#include <gtest/gtest.h>

#include "app/workloads.h"
#include "core/cluster.h"
#include "direct/direct_process.h"
#include "test_harness.h"

namespace koptlog {
namespace {

std::unique_ptr<DirectProcess> make_direct(TestHarness& h, ProcessId pid,
                                           int n) {
  ProtocolConfig cfg;
  cfg.deliver_cost_us = 0;
  cfg.replay_per_msg_us = 0;
  cfg.ddt_delivery_hold_us = 0;  // manual stepping: deliver synchronously
  cfg.storage.sync_write_us = 0;
  cfg.storage.checkpoint_write_us = 0;
  cfg.storage.async_flush_per_msg_us = 0;
  return std::make_unique<DirectProcess>(pid, n, cfg, h,
                                         std::make_unique<ScriptedApp>());
}

TEST(DirectEngine, MessagesCarryOnlyTheSenderInterval) {
  TestHarness h(4);
  auto p = make_direct(h, 0, 4);
  p->start_process();
  AppPayload cmd;
  cmd.kind = ScriptedApp::kSendCmd;
  cmd.a = 1;
  p->handle_app_msg(h.env_msg(0, cmd));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].tdv.size(), 0);  // no vector at all
  EXPECT_EQ(h.sent[0].born_of, (IntervalId{0, 0, 2}));
}

TEST(DirectEngine, DeliversImmediatelyAcrossIncarnations) {
  TestHarness h(3);
  auto p = make_direct(h, 2, 3);
  p->start_process();
  // Even a message from a new incarnation of P1 is delivered at once —
  // direct tracking has no deliverability rule to wait on.
  AppMsg m = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  m.from = 1;
  m.id = MsgId{1, 1};
  m.born_of = IntervalId{1, 3, 9};
  p->handle_app_msg(m);
  EXPECT_EQ(p->deliveries(), 1);
}

TEST(DirectEngine, DirectOrphansAreDiscarded) {
  TestHarness h(3);
  auto p = make_direct(h, 2, 3);
  p->start_process();
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  AppMsg m = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  m.from = 1;
  m.id = MsgId{1, 7};
  m.born_of = IntervalId{1, 0, 6};  // rolled back
  p->handle_app_msg(m);
  EXPECT_EQ(p->deliveries(), 0);
  EXPECT_EQ(h.stats().counter("msgs.discarded_orphan_recv"), 1);
}

TEST(DirectEngine, RollbackCascadesViaAnnouncement) {
  TestHarness h(3);
  auto p = make_direct(h, 2, 3);
  p->start_process();
  // Deliver a message sent from P1's interval (0,6).
  AppMsg m = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  m.from = 1;
  m.id = MsgId{1, 1};
  m.born_of = IntervalId{1, 0, 6};
  p->handle_app_msg(m);
  h.tick(*p);
  EXPECT_EQ(p->current(), (Entry{0, 3}));
  // P1 fails back to (0,4): our (0,2) delivery is a direct orphan.
  size_t before = h.announcements.size();
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p->rollbacks(), 1);
  // Unlike the Theorem-1 engine, the non-failed rollback IS announced —
  // that is the cascade that reaches transitive orphans.
  ASSERT_EQ(h.announcements.size(), before + 1);
  EXPECT_EQ(h.announcements.back().from, 2);
  EXPECT_FALSE(h.announcements.back().from_failure);
  // The innocent filler was redelivered in incarnation 1.
  EXPECT_EQ(p->current(), (Entry{1, 3}));
}

TEST(DirectEngine, AnswerQueryLifecycle) {
  TestHarness h(3);
  auto p = make_direct(h, 0, 3);
  p->start_process();
  h.tick(*p);  // (0,2), volatile
  // Pending: exists but not stable.
  p->handle_dep_query(DepQuery{2, IntervalId{0, 0, 2}, 1});
  ASSERT_EQ(h.replies.size(), 1u);
  EXPECT_EQ(h.replies[0].second.status, DepReply::Status::kPending);
  // Stable after a flush.
  p->force_flush();
  p->handle_dep_query(DepQuery{2, IntervalId{0, 0, 2}, 2});
  ASSERT_EQ(h.replies.size(), 2u);
  EXPECT_EQ(h.replies[1].second.status, DepReply::Status::kStable);
  // Unknown: an interval we have not reached yet.
  p->handle_dep_query(DepQuery{2, IntervalId{0, 0, 9}, 3});
  EXPECT_EQ(h.replies[2].second.status, DepReply::Status::kUnknown);
}

TEST(DirectEngine, StableReplyListsCrossProcessDeps) {
  TestHarness h(3);
  auto p = make_direct(h, 0, 3);
  p->start_process();
  AppMsg m = h.env_msg(0, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  m.from = 1;
  m.id = MsgId{1, 5};
  m.born_of = IntervalId{1, 0, 7};
  p->handle_app_msg(m);  // (0,2) directly depends on (0,7)_1
  p->force_flush();
  p->handle_dep_query(DepQuery{2, IntervalId{0, 0, 2}, 1});
  ASSERT_EQ(h.replies.size(), 1u);
  const DepReply& r = h.replies[0].second;
  EXPECT_EQ(r.status, DepReply::Status::kStable);
  ASSERT_EQ(r.deps.size(), 1u);
  EXPECT_EQ(r.deps[0], (IntervalId{1, 0, 7}));
}

// ---------------------------------------------------------------------------
// Cluster-level: the engine plugs into the same harness as the main one.
// ---------------------------------------------------------------------------

Cluster make_direct_cluster(ClusterConfig cfg, Cluster::AppFactory app) {
  return Cluster(cfg, app, DirectProcess::factory());
}

TEST(DirectEngine, FailureFreeClusterRunVerifies) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 91;
  cfg.enable_oracle = true;
  Cluster cluster = make_direct_cluster(cfg, make_client_server_app({}));
  cluster.start();
  inject_client_requests(cluster, 30, 1'000, 150'000, 93);
  cluster.run_for(600'000);
  cluster.drain();
  EXPECT_GT(cluster.outputs().size(), 0u);
  // Assembly traffic happened.
  EXPECT_GT(cluster.stats().counter("ddt.queries"), 0);
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(DirectEngine, FailuresRecoverAndVerify) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = 92;
  cfg.enable_oracle = true;
  Cluster cluster = make_direct_cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 40, 1'000, 200'000, 7, 95);
  cluster.fail_at(60'000, 1);
  cluster.fail_at(140'000, 3);
  cluster.run_for(900'000);
  cluster.drain();
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(DirectEngine, CascadeAnnouncesMoreThanFailures) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = 93;
  cfg.enable_oracle = true;
  // Slow logging widens the orphan window so failures actually cascade.
  cfg.protocol.flush_interval_us = 50'000;
  cfg.protocol.notify_interval_us = 60'000;
  cfg.protocol.checkpoint_interval_us = 400'000;
  Cluster cluster = make_direct_cluster(cfg, make_pipeline_app({}));
  cluster.start();
  inject_pipeline_load(cluster, 40, 1'000, 150'000);
  cluster.fail_at(100'000, 1);
  cluster.run_for(900'000);
  cluster.drain();
  if (cluster.stats().counter("rollback.count") > 0) {
    // Every rollback was announced (cascade), so announcements exceed the
    // single failure announcement.
    EXPECT_GT(cluster.stats().counter("announce.sent"), 1);
  }
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(DirectEngine, DeterministicAcrossRuns) {
  auto run_once = [] {
    ClusterConfig cfg;
    cfg.n = 4;
    cfg.seed = 94;
    cfg.enable_oracle = false;
    Cluster cluster = make_direct_cluster(cfg, make_uniform_app({}));
    cluster.start();
    inject_uniform_load(cluster, 20, 1'000, 100'000, 6, 97);
    cluster.fail_at(50'000, 2);
    cluster.run_for(500'000);
    cluster.drain();
    return std::make_tuple(cluster.stats().counter("msgs.delivered"),
                           cluster.outputs().size(),
                           cluster.sim().events_executed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace koptlog
