// EngineRegistry: name resolution for the built-in engines and presets,
// and the extension point — a toy engine defined *here* (outside core/)
// registers itself and runs a full cluster workload through
// make_cluster_with_engine.
#include <gtest/gtest.h>

#include <memory>

#include "app/workloads.h"
#include "baseline/pessimistic.h"
#include "core/cluster.h"
#include "core/engine_registry.h"
#include "core/process.h"

namespace koptlog {
namespace {

TEST(EngineRegistryTest, BuiltinsResolve) {
  EngineRegistry& reg = EngineRegistry::instance();
  for (const char* name : {"kopt", "direct", "pessimistic", "strom-yemini"}) {
    const EngineRegistry::Entry* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_TRUE(e->factory) << name;
    EXPECT_FALSE(e->description.empty()) << name;
  }
  EXPECT_EQ(reg.find("no-such-engine"), nullptr);
  EXPECT_NE(reg.names_joined().find("kopt"), std::string::npos);
  EXPECT_NE(reg.names_joined().find("direct"), std::string::npos);
}

TEST(EngineRegistryTest, PresetsPinTheProtocolConfig) {
  // The preset names run on the kopt engine with a pinned ProtocolConfig;
  // plain engine names leave the caller's config alone.
  const EngineRegistry::Entry* pess =
      EngineRegistry::instance().find("pessimistic");
  ASSERT_NE(pess, nullptr);
  ASSERT_TRUE(static_cast<bool>(pess->configure));
  ClusterConfig cfg;
  cfg.protocol = k_optimistic(3);
  pess->configure(cfg);
  EXPECT_EQ(cfg.protocol.k, pessimistic_baseline().k);

  const EngineRegistry::Entry* sy =
      EngineRegistry::instance().find("strom-yemini");
  ASSERT_NE(sy, nullptr);
  ASSERT_TRUE(static_cast<bool>(sy->configure));
  ClusterConfig sy_cfg;
  sy->configure(sy_cfg);
  EXPECT_TRUE(sy_cfg.fifo);

  const EngineRegistry::Entry* kopt = EngineRegistry::instance().find("kopt");
  ASSERT_NE(kopt, nullptr);
  EXPECT_FALSE(static_cast<bool>(kopt->configure));
}

TEST(EngineRegistryTest, DuplicateNamesAreRejected) {
  EngineRegistry::Entry entry;
  entry.factory = [](ProcessId, const ClusterConfig&, ClusterApi&,
                     std::unique_ptr<Application>)
      -> std::unique_ptr<RecoveryProcess> { return nullptr; };
  entry.description = "must not replace the builtin";
  EXPECT_FALSE(EngineRegistry::instance().add("kopt", entry));
  ASSERT_NE(EngineRegistry::instance().find("kopt"), nullptr);
  EXPECT_NE(EngineRegistry::instance().find("kopt")->description,
            entry.description);
}

TEST(EngineRegistryTest, UnknownEngineYieldsNullCluster) {
  ClusterConfig cfg;
  cfg.n = 2;
  EXPECT_EQ(make_cluster_with_engine("no-such-engine", cfg,
                                     make_uniform_app({})),
            nullptr);
}

// ---- the extension point: an engine defined outside core/ ----

/// A delegating wrapper around the paper's Process: same protocol, but it
/// counts every event crossing the RecoveryProcess surface. Exactly what an
/// out-of-tree experiment engine looks like to the registry.
class CountingEngine : public RecoveryProcess {
 public:
  struct Counters {
    int built = 0;
    int64_t app_msgs = 0;
    int64_t announcements = 0;
    int64_t crashes = 0;
  };

  CountingEngine(std::unique_ptr<Process> inner, Counters* c)
      : inner_(std::move(inner)), c_(c) {
    ++c_->built;
  }

  void start_process() override { inner_->start_process(); }
  void handle_app_msg(const AppMsg& m) override {
    ++c_->app_msgs;
    inner_->handle_app_msg(m);
  }
  void handle_announcement(const Announcement& a) override {
    ++c_->announcements;
    inner_->handle_announcement(a);
  }
  void handle_log_progress(const LogProgressMsg& lp) override {
    inner_->handle_log_progress(lp);
  }
  void handle_ack(const MsgId& id) override { inner_->handle_ack(id); }
  void handle_dep_query(const DepQuery& q) override {
    inner_->handle_dep_query(q);
  }
  void handle_dep_reply(const DepReply& r) override {
    inner_->handle_dep_reply(r);
  }
  void crash() override {
    ++c_->crashes;
    inner_->crash();
  }
  void restart() override { inner_->restart(); }
  void checkpoint_now() override { inner_->checkpoint_now(); }
  void drain_tick() override { inner_->drain_tick(); }
  bool quiescent() const override { return inner_->quiescent(); }
  bool alive() const override { return inner_->alive(); }
  ProcessId pid() const override { return inner_->pid(); }
  Executor& executor() override { return inner_->executor(); }
  Entry current() const override { return inner_->current(); }
  const StableStorage& storage() const override { return inner_->storage(); }
  size_t receive_buffer_size() const override {
    return inner_->receive_buffer_size();
  }
  size_t send_buffer_size() const override {
    return inner_->send_buffer_size();
  }
  size_t output_buffer_size() const override {
    return inner_->output_buffer_size();
  }
  int64_t deliveries() const override { return inner_->deliveries(); }
  int64_t rollbacks() const override { return inner_->rollbacks(); }

 private:
  std::unique_ptr<Process> inner_;
  Counters* c_;
};

TEST(EngineRegistryTest, ToyEngineRegistersAndRuns) {
  static CountingEngine::Counters counters;
  counters = {};
  EngineRegistry::Entry entry;
  entry.description = "kopt wrapped in an event counter (test-only)";
  entry.factory = [](ProcessId pid, const ClusterConfig& cfg, ClusterApi& api,
                     std::unique_ptr<Application> app)
      -> std::unique_ptr<RecoveryProcess> {
    auto inner = std::make_unique<Process>(pid, cfg.n, cfg.protocol, api,
                                           std::move(app));
    return std::make_unique<CountingEngine>(std::move(inner), &counters);
  };
  // First registration wins; a second attempt is a no-op.
  EngineRegistry::instance().add("test-counting", entry);
  EXPECT_FALSE(EngineRegistry::instance().add("test-counting", entry));
  ASSERT_NE(EngineRegistry::instance().find("test-counting"), nullptr);

  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 21;
  cfg.protocol.k = 1;
  std::unique_ptr<Cluster> cluster =
      make_cluster_with_engine("test-counting", cfg, make_uniform_app({}));
  ASSERT_NE(cluster, nullptr);
  cluster->start();
  inject_uniform_load(*cluster, 20, 1'000, 200'000, 4, 9);
  cluster->fail_at(100'000, 1);
  cluster->run_for(1'000'000);
  cluster->drain();

  EXPECT_EQ(counters.built, cfg.n);
  EXPECT_GT(counters.app_msgs, 0);
  EXPECT_EQ(counters.crashes, 1);
  EXPECT_GT(counters.announcements, 0);
  int64_t total_deliveries = 0;
  for (ProcessId p = 0; p < cfg.n; ++p)
    total_deliveries += cluster->engine(p).deliveries();
  EXPECT_GT(total_deliveries, 0);
}

}  // namespace
}  // namespace koptlog
