#include <gtest/gtest.h>

#include <vector>

#include "sim/executor.h"
#include "sim/simulator.h"

namespace koptlog {
namespace {

TEST(ExecutorTest, RunsActionsInSubmissionOrder) {
  Simulator sim;
  Executor ex(sim);
  std::vector<int> order;
  ex.submit([&] { order.push_back(1); });
  ex.submit([&] { order.push_back(2); });
  ex.submit([&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ExecutorTest, OccupyDelaysSubsequentActions) {
  Simulator sim;
  Executor ex(sim);
  SimTime t1 = -1, t2 = -1, t3 = -1;
  ex.submit([&] {
    t1 = sim.now();
    ex.occupy(100);
  });
  ex.submit([&] {
    t2 = sim.now();
    ex.occupy(50);
  });
  ex.submit([&] { t3 = sim.now(); });
  sim.run();
  EXPECT_EQ(t1, 0);
  EXPECT_EQ(t2, 100);
  EXPECT_EQ(t3, 150);
}

TEST(ExecutorTest, ActionsSubmittedWhileBusyWaitForBusyWindow) {
  Simulator sim;
  Executor ex(sim);
  SimTime t2 = -1;
  ex.submit([&] { ex.occupy(200); });
  sim.schedule_at(50, [&] { ex.submit([&] { t2 = sim.now(); }); });
  sim.run();
  EXPECT_EQ(t2, 200);
}

TEST(ExecutorTest, IdleExecutorRunsImmediately) {
  Simulator sim;
  Executor ex(sim);
  SimTime t = -1;
  sim.schedule_at(500, [&] { ex.submit([&] { t = sim.now(); }); });
  sim.run();
  EXPECT_EQ(t, 500);
}

TEST(ExecutorTest, ResetDropsQueuedActions) {
  Simulator sim;
  Executor ex(sim);
  int ran = 0;
  ex.submit([&] {
    ++ran;
    ex.occupy(100);
  });
  ex.submit([&] { ++ran; });  // will be dropped by reset below
  sim.schedule_at(10, [&] { ex.reset(); });
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(ExecutorTest, UsableAgainAfterReset) {
  Simulator sim;
  Executor ex(sim);
  int ran = 0;
  ex.submit([&] { ex.occupy(1000); });
  sim.schedule_at(1, [&] {
    ex.reset();
    ex.submit([&] { ++ran; });
  });
  sim.run();
  EXPECT_EQ(ran, 1);
  // The busy window was cleared by reset, so the action ran at reset time.
  EXPECT_EQ(sim.now(), 1);
}

TEST(ExecutorTest, ActionsMaySubmitMoreActions) {
  Simulator sim;
  Executor ex(sim);
  std::vector<int> order;
  ex.submit([&] {
    order.push_back(1);
    ex.submit([&] { order.push_back(3); });
    ex.occupy(10);
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(ExecutorTest, IdleReflectsQueueState) {
  Simulator sim;
  Executor ex(sim);
  EXPECT_TRUE(ex.idle());
  ex.submit([] {});
  EXPECT_FALSE(ex.idle());
  sim.run();
  EXPECT_TRUE(ex.idle());
}

}  // namespace
}  // namespace koptlog
