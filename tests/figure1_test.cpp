// Reproduction of the paper's Figure 1 scenario (§2-§3), event for event.
//
// Cast (starting interval per the figure):
//   P0 starts at (1,2)   P1 at (0,1)   P2 at (0,1)
//   P3 starts at (2,5)   P4 at (0,1)   P5 at (3,8)
//
// Script:
//   m0: P0 (1,3) -> P1, m1: P1 (0,4) -> P3, m2: P3 (2,6) -> P4 — one causal
//   chain; P4's interval (0,2)_4 emits the output the paper discusses.
//   P1 flushes (making (0,4)_1 stable), delivers one more message — interval
//   (0,5)_1, from which m3 goes to P3 — then FAILS at "X". Restart recovers
//   (0,4)_1, broadcasts r1 = (0,4)_1, and starts incarnation 1.
//   P3, depending on (0,5)_1, must roll back to (2,6)_3; P4, depending only
//   on (0,4)_1, survives. m6 (carrying P1's incarnation-1 entry) is delayed
//   at P4 until r1 arrives; m7 is delivered at P5 with no delay at all
//   (Corollary 1), because P5 holds no entry for P1.
//
// One deviation from the figure's labels: in our implementation a restart
// itself starts the bookkeeping interval (1,5)_1, so P1's first delivery
// after recovery starts (1,6)_1 (the figure labels it (1,5)_1). The
// dependency logic under test is identical.
#include <gtest/gtest.h>

#include "test_harness.h"

namespace koptlog {
namespace {

class Figure1 : public ::testing::Test {
 protected:
  Figure1() : h(6) {
    for (ProcessId pid = 0; pid < 6; ++pid) {
      p.push_back(h.make_process(pid, ProtocolConfig{}));
    }
    p[0]->start(Entry{1, 2});
    p[1]->start(Entry{0, 1});
    p[2]->start(Entry{0, 1});
    p[3]->start(Entry{2, 5});
    p[4]->start(Entry{0, 1});
    p[5]->start(Entry{3, 8});
    // Advance P1 to (0,3) and P2 to (0,2) so the figure's indices line up.
    h.tick(*p[1]);
    h.tick(*p[1]);
    h.tick(*p[2]);
  }

  /// Run the m0 -> m1 -> m2 chain and deliver m2 at P4 (whose interval
  /// (0,2)_4 emits an output). Returns nothing; messages m_[0..2] kept.
  void run_first_chain() {
    AppPayload chain;
    chain.kind = ScriptedApp::kChain;
    chain.a = ScriptedApp::route({1, 3, 4});
    chain.b = 1;   // final hop emits an output
    chain.c = 77;  // output tag
    p[0]->handle_app_msg(h.env_msg(0, chain));  // P0: (1,3)_0 sends m0
    m0 = h.take_sent();
    p[1]->handle_app_msg(m0);  // P1: (0,4)_1 sends m1
    m1 = h.take_sent();
    p[3]->handle_app_msg(m1);  // P3: (2,6)_3 sends m2
    m2 = h.take_sent();
    p[4]->handle_app_msg(m2);  // P4: (0,2)_4 emits the output
  }

  /// P1 becomes stable up to (0,4), delivers one more message — (0,5)_1,
  /// sending m3 to P3 — and then fails at "X". Returns r1.
  Announcement fail_p1() {
    p[1]->force_flush();  // (0,4)_1 stable
    AppPayload chain;
    chain.kind = ScriptedApp::kChain;
    chain.a = ScriptedApp::route({3});
    p[1]->handle_app_msg(h.env_msg(1, chain));  // P1: (0,5)_1 sends m3
    m3 = h.take_sent();
    p[3]->handle_app_msg(m3);  // P3: (2,7)_3
    h.tick(*p[3]);             // P3: (2,8)_3
    size_t before = h.announcements.size();
    p[1]->crash();
    p[1]->restart();
    EXPECT_EQ(h.announcements.size(), before + 1);
    return h.announcements.back();
  }

  TestHarness h;
  std::vector<std::unique_ptr<Process>> p;
  AppMsg m0, m1, m2, m3;
};

TEST_F(Figure1, DependencyAccumulatesAlongTheChain) {
  run_first_chain();
  // "When P4 receives m2, it records dependency associated with (0,2)_4 as
  // {(1,3)_0, (0,4)_1, (2,6)_3, (0,2)_4}."
  const DepVector& tdv = p[4]->tdv();
  ASSERT_TRUE(tdv.at(0) && tdv.at(1) && tdv.at(3) && tdv.at(4));
  EXPECT_EQ(*tdv.at(0), (Entry{1, 3}));
  EXPECT_EQ(*tdv.at(1), (Entry{0, 4}));
  EXPECT_EQ(*tdv.at(3), (Entry{2, 6}));
  EXPECT_EQ(*tdv.at(4), (Entry{0, 2}));
  EXPECT_FALSE(tdv.at(2).has_value());
  EXPECT_FALSE(tdv.at(5).has_value());
  EXPECT_EQ(p[4]->current(), (Entry{0, 2}));
}

TEST_F(Figure1, FailureAnnouncesEndOfIncarnationZeroAtFour) {
  run_first_chain();
  Announcement r1 = fail_p1();
  // P1 failed at X with (0,5)_1 volatile: r1 carries ending index (0,4)_1.
  EXPECT_EQ(r1.from, 1);
  EXPECT_EQ(r1.ended, (Entry{0, 4}));
  EXPECT_TRUE(r1.from_failure);
  // P1 restarted into incarnation 1 (bookkeeping interval (1,5)_1).
  EXPECT_EQ(p[1]->current(), (Entry{1, 5}));
}

TEST_F(Figure1, P3RollsBackToItsPreFailureInterval) {
  run_first_chain();
  Announcement r1 = fail_p1();
  ASSERT_EQ(p[3]->current(), (Entry{2, 8}));
  p[3]->handle_announcement(r1);
  // "P3 detects that the interval (0,5)_1 that its state depends on has
  // been rolled back. P3 then needs to roll back to (2,6)_3."
  EXPECT_EQ(p[3]->rollbacks(), 1);
  // m3 (orphan) was discarded; the innocent filler was redelivered in
  // incarnation 3, so P3 now sits one delivery past the recovery interval.
  EXPECT_EQ(p[3]->current(), (Entry{3, 8}));
  // With Theorem 1 applied, the non-failed rolled-back process does NOT
  // broadcast its own announcement (the paper's improvement over SY).
  EXPECT_EQ(h.announcements.size(), 1u);
  // r1 also served as a logging-progress notification for (0,4)_1
  // (Corollary 1), so the replayed dependency on it was dropped.
  EXPECT_FALSE(p[3]->tdv().at(1).has_value());
  ASSERT_TRUE(p[3]->tdv().at(0).has_value());
  EXPECT_EQ(*p[3]->tdv().at(0), (Entry{1, 3}));
}

TEST_F(Figure1, P4SurvivesAndOmitsTheStableDependency) {
  run_first_chain();
  Announcement r1 = fail_p1();
  p[4]->handle_announcement(r1);
  // "When P4 receives r1, it detects that its state does not depend on any
  // rolled-back intervals of P1" — no rollback...
  EXPECT_EQ(p[4]->rollbacks(), 0);
  EXPECT_EQ(p[4]->current(), (Entry{0, 2}));
  // ...and by Theorem 2, the now-stable (0,4)_1 entry is omitted.
  EXPECT_FALSE(p[4]->tdv().at(1).has_value());
  EXPECT_EQ(*p[4]->tdv().at(0), (Entry{1, 3}));
}

TEST_F(Figure1, Theorem2ExampleDropEntryAfterProgressNotification) {
  run_first_chain();
  // "When P4 receives P3's logging progress notification indicating that
  // (2,6)_3 has become stable, it can remove (2,6)_3 from its vector."
  p[3]->force_flush();
  p[3]->broadcast_progress();
  ASSERT_FALSE(h.progresses.empty());
  p[4]->handle_log_progress(h.progresses.back());
  EXPECT_FALSE(p[4]->tdv().at(3).has_value());
  // "P4's orphan status can still be detected by comparing the entry
  // (1,3)_0 against the failure announcement from P0": simulate P0 losing
  // (1,3)_0 — P4 must roll back even though (2,6)_3 was dropped.
  p[0]->crash();
  p[0]->restart();
  Announcement r0 = h.announcements.back();
  EXPECT_EQ(r0.from, 0);
  EXPECT_EQ(r0.ended, (Entry{1, 2}));
  p[4]->handle_announcement(r0);
  EXPECT_EQ(p[4]->rollbacks(), 1);
}

TEST_F(Figure1, M6DelayedAtP4UntilR1Arrives) {
  run_first_chain();
  Announcement r1 = fail_p1();
  // m5: P2 (0,3)_2 -> P1, whose delivery starts (1,6)_1 and sends m6 -> P4.
  AppPayload chain;
  chain.kind = ScriptedApp::kChain;
  chain.a = ScriptedApp::route({1, 4});
  p[2]->handle_app_msg(h.env_msg(2, chain));
  AppMsg m5 = h.take_sent();
  EXPECT_EQ(m5.born_of, (IntervalId{2, 0, 3}));
  p[1]->handle_app_msg(m5);
  AppMsg m6 = h.take_sent();
  EXPECT_EQ(m6.born_of, (IntervalId{1, 1, 6}));
  ASSERT_TRUE(m6.tdv.at(2).has_value());
  EXPECT_EQ(*m6.tdv.at(2), (Entry{0, 3}));

  // m6 reaches P4 before r1: P4 still holds (0,4)_1, two incarnations of
  // P1 would coexist, and (0,4)_1 is not known stable -> delay.
  p[4]->handle_app_msg(m6);
  EXPECT_EQ(p[4]->receive_buffer_size(), 1u);
  EXPECT_EQ(p[4]->current(), (Entry{0, 2}));

  // r1 arrives: (0,4)_1 is certified stable, the delay ends, and the entry
  // is overwritten by the lexicographic maximum (1,6)_1.
  p[4]->handle_announcement(r1);
  EXPECT_EQ(p[4]->receive_buffer_size(), 0u);
  EXPECT_EQ(p[4]->current(), (Entry{0, 3}));
  const DepVector& tdv = p[4]->tdv();
  EXPECT_EQ(*tdv.at(0), (Entry{1, 3}));
  EXPECT_EQ(*tdv.at(1), (Entry{1, 6}));
  EXPECT_EQ(*tdv.at(2), (Entry{0, 3}));
  EXPECT_EQ(*tdv.at(3), (Entry{2, 6}));
  EXPECT_EQ(*tdv.at(4), (Entry{0, 3}));
}

TEST_F(Figure1, M7DeliveredAtP5WithoutWaitingForR1) {
  run_first_chain();
  fail_p1();
  // m7: P1's incarnation 1 -> P5. "When P5 receives m7 which carries a
  // dependency on (1,5)_1, it can deliver m7 without waiting for r1
  // because it has no existing dependency entry for P1 to be overwritten."
  AppPayload chain;
  chain.kind = ScriptedApp::kChain;
  chain.a = ScriptedApp::route({5});
  p[1]->handle_app_msg(h.env_msg(1, chain));
  AppMsg m7 = h.take_sent();
  EXPECT_EQ(m7.born_of.inc, 1);
  p[5]->handle_app_msg(m7);  // no r1 was ever delivered to P5
  EXPECT_EQ(p[5]->receive_buffer_size(), 0u);
  EXPECT_EQ(p[5]->current(), (Entry{3, 9}));
  ASSERT_TRUE(p[5]->tdv().at(1).has_value());
  EXPECT_EQ(p[5]->tdv().at(1)->inc, 1);
}

TEST_F(Figure1, OutputCommitWaitsForAllThreeNotifications) {
  run_first_chain();
  // P4's output from (0,2)_4 depends on (1,3)_0, (0,4)_1, (2,6)_3 and
  // (0,2)_4 itself (§2 "Output commit").
  ASSERT_EQ(p[4]->output_buffer_size(), 1u);

  // Making (0,2)_4 stable locally is not enough...
  p[4]->force_flush();
  EXPECT_EQ(p[4]->output_buffer_size(), 1u);

  // ...nor are P0's and P1's notifications...
  p[0]->force_flush();
  p[0]->broadcast_progress();
  p[4]->handle_log_progress(h.progresses.back());
  p[1]->force_flush();
  p[1]->broadcast_progress();
  p[4]->handle_log_progress(h.progresses.back());
  EXPECT_EQ(p[4]->output_buffer_size(), 1u);
  EXPECT_TRUE(h.outputs.empty());

  // ...until P3's notification certifies (2,6)_3: all entries NULL, commit.
  p[3]->force_flush();
  p[3]->broadcast_progress();
  p[4]->handle_log_progress(h.progresses.back());
  EXPECT_EQ(p[4]->output_buffer_size(), 0u);
  ASSERT_EQ(h.outputs.size(), 1u);
  EXPECT_EQ(h.outputs[0].payload.b, 77);
  EXPECT_EQ(h.outputs[0].born_of, (IntervalId{4, 0, 2}));
}

}  // namespace
}  // namespace koptlog
