// Garbage collection tests (paper §2: logging progress enables "output
// commit and garbage collection"). The GC rule is Theorem 2 turned around:
// a checkpoint with no live (non-stable) dependency entries can never be
// orphaned, so nothing older than the newest such checkpoint is ever needed
// by rollback or restart.
#include <gtest/gtest.h>

#include "app/workloads.h"
#include "core/cluster.h"
#include "test_harness.h"

namespace koptlog {
namespace {

TEST(GarbageCollection, ReclaimsRecordsAndCheckpointsWhenSafe) {
  TestHarness h(2);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  for (int i = 0; i < 5; ++i) h.tick(*p);
  EXPECT_EQ(p->storage().log().retained_count(), 5u);
  // Checkpoint: everything local is stable, the vector is empty -> the new
  // checkpoint is the GC pivot and the old records/checkpoints go away.
  p->checkpoint_now();
  EXPECT_EQ(p->storage().log().retained_count(), 0u);
  EXPECT_EQ(p->storage().log().base(), 5u);
  EXPECT_EQ(p->storage().checkpoints().size(), 1u);
  EXPECT_EQ(h.stats().counter("gc.records_reclaimed"), 5);
  EXPECT_EQ(h.stats().counter("gc.checkpoints_reclaimed"), 1);
}

TEST(GarbageCollection, CheckpointWithLiveRemoteDependencyIsNotAPivot) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  // Acquire a dependency on a remote interval that is NOT known stable.
  AppMsg dep = h.env_msg(0, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  dep.tdv.set(1, Entry{0, 5});
  dep.born_of = IntervalId{1, 0, 5};
  p->handle_app_msg(dep);
  p->checkpoint_now();
  // The new checkpoint could still be orphaned by P1's failure: it must be
  // restorable *from the older checkpoint*, so nothing is reclaimed past
  // the initial one.
  EXPECT_EQ(p->storage().checkpoints().size(), 2u);
  EXPECT_EQ(p->storage().log().retained_count(), 1u);
  // Once P1 certifies (0,5) stable, the next checkpoint can collect.
  LogProgressMsg lp;
  lp.from = 1;
  lp.stable = {Entry{0, 5}};
  p->handle_log_progress(lp);
  h.tick(*p);
  p->checkpoint_now();
  EXPECT_EQ(p->storage().checkpoints().size(), 1u);
  EXPECT_EQ(p->storage().log().retained_count(), 0u);
}

TEST(GarbageCollection, RollbackAfterGcRestoresThePivot) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  h.tick(*p);
  p->checkpoint_now();  // pivot at (0,2); earlier state reclaimed
  ASSERT_EQ(p->storage().checkpoints().size(), 1u);
  // Now pick up an orphan-to-be dependency and roll back.
  AppMsg dep = h.env_msg(0, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  dep.tdv.set(1, Entry{0, 9});
  dep.born_of = IntervalId{1, 0, 9};
  p->handle_app_msg(dep);
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p->rollbacks(), 1);
  EXPECT_EQ(p->current(), (Entry{1, 3}));  // restored (0,2), new incarnation
}

TEST(GarbageCollection, RestartAfterGcReplaysOnlyRetainedRecords) {
  TestHarness h(2);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  for (int i = 0; i < 4; ++i) h.tick(*p);
  p->checkpoint_now();  // reclaims the 4 records
  h.tick(*p);           // (0,6), volatile
  p->force_flush();
  h.tick(*p);  // (0,7), volatile -> lost in the crash
  p->crash();
  p->restart();
  // Replays exactly the one retained stable record; recovered to (0,6).
  EXPECT_EQ(h.stats().counter("restart.replayed_msgs"), 1);
  ASSERT_FALSE(h.announcements.empty());
  EXPECT_EQ(h.announcements.back().ended, (Entry{0, 6}));
}

TEST(GarbageCollection, SelfWatermarksSurviveGcAndCrash) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  // Build incarnation 1 via a rollback, then checkpoint + GC repeatedly.
  AppMsg dep = h.env_msg(0, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  dep.tdv.set(1, Entry{0, 9});
  dep.born_of = IntervalId{1, 0, 9};
  p->handle_app_msg(dep);
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  ASSERT_EQ(p->current().inc, 1);
  h.tick(*p);
  p->checkpoint_now();
  h.tick(*p);
  p->checkpoint_now();  // GC reclaims incarnation-0-era state
  p->crash();
  p->restart();
  // Despite GC + crash, the restart still knows incarnation 0's stable
  // watermark (carried by the checkpoint's self_watermarks), so remote
  // dependencies on old incarnations can still be certified.
  EXPECT_TRUE(p->log_table().of(0).covers(Entry{0, 1}));
}

TEST(GarbageCollection, DisabledKeepsEverything) {
  TestHarness h(2);
  ProtocolConfig cfg;
  cfg.garbage_collect = false;
  auto p = h.make_process(0, cfg);
  p->start();
  for (int i = 0; i < 5; ++i) h.tick(*p);
  p->checkpoint_now();
  EXPECT_EQ(p->storage().log().retained_count(), 5u);
  EXPECT_EQ(p->storage().checkpoints().size(), 2u);
}

TEST(GarbageCollection, BoundsStorageInLongClusterRuns) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 81;
  cfg.protocol.checkpoint_interval_us = 40'000;
  cfg.enable_oracle = true;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 120, 1'000, 800'000, 7, 83);
  cluster.fail_at(300'000, 1);
  cluster.run_for(2'000'000);
  cluster.drain();
  EXPECT_GT(cluster.stats().counter("gc.records_reclaimed"), 0);
  // The retained log stays far below the total ever delivered.
  double max_retained = cluster.stats().histogram("storage.log_retained").max();
  EXPECT_LT(max_retained,
            static_cast<double>(cluster.stats().counter("msgs.delivered")) / 2);
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

}  // namespace
}  // namespace koptlog
