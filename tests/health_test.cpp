// Runtime health telemetry (obs/health, DESIGN §6.5): cell semantics,
// snapshot/quantile math, the sampler's conservation guarantee, sidecar
// JSONL round-trips (torn tails included), Prometheus export, atomic file
// replacement, and recording-passivity of the instrumented sim backend.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/workloads.h"
#include "core/cluster.h"
#include "obs/audit.h"
#include "obs/event_recorder.h"
#include "obs/health/health.h"
#include "obs/health/health_io.h"
#include "obs/health/health_sampler.h"
#include "obs/trace_io.h"

namespace koptlog {
namespace {

// --- cells -----------------------------------------------------------------

TEST(HealthHistogramTest, BucketBoundaries) {
  // Finite bucket i has inclusive upper bound 2^i; the last bucket is +inf.
  EXPECT_EQ(HealthHistogram::bucket_for(0), 0);
  EXPECT_EQ(HealthHistogram::bucket_for(1), 0);
  EXPECT_EQ(HealthHistogram::bucket_for(2), 1);
  EXPECT_EQ(HealthHistogram::bucket_for(3), 2);
  EXPECT_EQ(HealthHistogram::bucket_for(4), 2);
  EXPECT_EQ(HealthHistogram::bucket_for(5), 3);
  uint64_t top = HealthHistogram::bucket_bound(HealthHistogram::kFiniteBuckets - 1);
  EXPECT_EQ(HealthHistogram::bucket_for(top), HealthHistogram::kFiniteBuckets - 1);
  EXPECT_EQ(HealthHistogram::bucket_for(top + 1), HealthHistogram::kFiniteBuckets);
  EXPECT_EQ(HealthHistogram::bucket_for(UINT64_MAX),
            HealthHistogram::kFiniteBuckets);
}

TEST(HealthHistogramTest, ObserveTracksCountSumMax) {
  HealthHistogram h;
  for (uint64_t v : {3u, 9u, 40u, 40u, 1000u}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1092u);
  EXPECT_EQ(h.max(), 1000u);
  uint64_t bucket_total = 0;
  for (int i = 0; i < HealthHistogram::kBuckets; ++i) bucket_total += h.bucket(i);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(HealthHistogramTest, QuantilesInterpolateAndClampToMax) {
  HealthDomain dom("t");
  HealthHistogram* h = dom.histogram("lat");
  for (int i = 0; i < 100; ++i) h->observe(10);  // all in bucket (8,16]
  h->observe(100000);                            // one far outlier
  HealthSample::Domain snap;
  dom.snapshot(snap);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HealthHistogramSnapshot& s = snap.histograms[0].second;
  EXPECT_EQ(s.count, 101u);
  double p50 = s.quantile(0.5);
  EXPECT_GT(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  // Quantiles are monotone in q and never exceed the observed max.
  EXPECT_LE(s.quantile(0.5), s.quantile(0.99));
  EXPECT_LE(s.quantile(1.0), static_cast<double>(s.max));
  HealthHistogramSnapshot empty;
  empty.buckets.assign(HealthHistogram::kBuckets, 0);
  EXPECT_EQ(empty.quantile(0.99), 0.0);
}

TEST(HealthDomainTest, FindOrCreateReturnsStablePointers) {
  HealthRegistry reg;
  HealthDomain* d = reg.domain("shard0");
  EXPECT_EQ(reg.domain("shard0"), d);
  HealthCounter* c = d->counter("pushes");
  EXPECT_EQ(d->counter("pushes"), c);
  c->inc(3);
  c->inc();
  EXPECT_EQ(c->value(), 4u);
  HealthGauge* g = d->gauge("pending");
  g->set(10);
  g->add(-3);
  EXPECT_EQ(g->value(), 7);
  EXPECT_EQ(reg.domain_names(), std::vector<std::string>{"shard0"});
}

TEST(HealthDomainTest, ProbesEvaluateAtSnapshotTime) {
  HealthRegistry reg;
  HealthDomain* d = reg.domain("obs");
  uint64_t backing = 5;
  d->probe_counter("collected", [&backing] { return backing; });
  d->probe_gauge("lag", [] { return int64_t{-2}; });
  HealthSample s1 = reg.sample(100);
  backing = 9;
  HealthSample s2 = reg.sample(200);
  ASSERT_EQ(s1.domains.size(), 1u);
  EXPECT_EQ(s1.t_us, 100);
  EXPECT_EQ(s1.domains[0].counters[0].second, 5u);
  EXPECT_EQ(s2.domains[0].counters[0].second, 9u);
  EXPECT_EQ(s1.domains[0].gauges[0].second, -2);
}

TEST(HealthCatalogTest, ListsTheBuiltInInstrumentation) {
  const auto& cat = health_metric_catalog();
  ASSERT_FALSE(cat.empty());
  bool saw_drain = false, saw_fsync = false, saw_ring = false;
  for (const HealthMetricInfo& m : cat) {
    if (m.metric == "sched.drain_latency_us") saw_drain = true;
    if (m.metric == "wal.fsync_us") saw_fsync = true;
    if (m.metric == "ring.occupancy") saw_ring = true;
    EXPECT_FALSE(m.help.empty()) << m.metric;
  }
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_fsync);
  EXPECT_TRUE(saw_ring);
}

// --- sampler ---------------------------------------------------------------

TEST(HealthSamplerTest, HistoryIsBoundedAndTicksCount) {
  HealthRegistry reg;
  reg.domain("d")->counter("c");
  HealthSampler sampler(reg, {.interval_us = 1'000'000, .history = 4});
  for (int i = 0; i < 10; ++i) sampler.sample_now();
  EXPECT_EQ(sampler.ticks(), 10u);
  EXPECT_EQ(sampler.history().size(), 4u);
}

TEST(HealthSamplerTest, TickDeltasConserveCounters) {
  // The conservation contract: samples are cumulative, so the sum of
  // per-tick deltas of any counter equals its final value exactly — no
  // sampling loss, no double counting.
  HealthRegistry reg;
  HealthCounter* c = reg.domain("d")->counter("c");
  HealthHistogram* h = reg.domain("d")->histogram("lat");
  HealthSampler sampler(reg, {.interval_us = 500, .history = 512});
  sampler.start();
  const uint64_t kTotal = 20'000;
  for (uint64_t i = 0; i < kTotal; ++i) {
    c->inc();
    h->observe(i % 50);
  }
  sampler.stop();  // takes one final sample
  std::deque<HealthSample> hist = sampler.history();
  ASSERT_FALSE(hist.empty());
  uint64_t prev_c = 0, delta_sum = 0, prev_hn = 0;
  int64_t prev_t = -1;
  for (const HealthSample& s : hist) {
    EXPECT_GE(s.t_us, prev_t);  // monotone timestamps
    prev_t = s.t_us;
    ASSERT_EQ(s.domains.size(), 1u);
    uint64_t cv = s.domains[0].counters[0].second;
    uint64_t hn = s.domains[0].histograms[0].second.count;
    EXPECT_GE(cv, prev_c);  // cumulative, never regresses
    EXPECT_GE(hn, prev_hn);
    delta_sum += cv - prev_c;
    prev_c = cv;
    prev_hn = hn;
  }
  EXPECT_EQ(delta_sum, kTotal);
  EXPECT_EQ(prev_c, c->value());
  EXPECT_EQ(prev_hn, kTotal);
  sampler.stop();  // idempotent
}

// --- sidecar JSONL ---------------------------------------------------------

HealthSample make_sample() {
  HealthRegistry reg;
  HealthDomain* d = reg.domain("shard0");
  d->counter("sched.pushes")->inc(12);
  d->gauge("sched.inbox_pending")->set(-3);
  HealthHistogram* h = d->histogram("sched.drain_latency_us");
  h->observe(9);
  h->observe(40);
  return reg.sample(100000);
}

TEST(HealthIoTest, JsonlRoundTripPreservesValues) {
  std::ostringstream os;
  write_health_meta(os);
  write_health_sample(make_sample(), os);

  std::istringstream is(os.str());
  std::vector<std::string> errors;
  HealthSeries series = read_health_jsonl(is, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_TRUE(series.have_meta);
  ASSERT_EQ(series.bucket_bounds.size(),
            static_cast<size_t>(HealthHistogram::kFiniteBuckets));
  EXPECT_EQ(series.bucket_bounds[0], 1u);
  EXPECT_EQ(series.bucket_bounds[3], 8u);
  ASSERT_EQ(series.ticks.size(), 1u);
  const HealthSeries::Tick& t = series.ticks[0];
  EXPECT_EQ(t.t_us, 100000);
  EXPECT_EQ(t.domain.name, "shard0");
  ASSERT_EQ(t.domain.counters.size(), 1u);
  EXPECT_EQ(t.domain.counters[0].first, "sched.pushes");
  EXPECT_EQ(t.domain.counters[0].second, 12u);
  ASSERT_EQ(t.domain.gauges.size(), 1u);
  EXPECT_EQ(t.domain.gauges[0].second, -3);
  ASSERT_EQ(t.domain.histograms.size(), 1u);
  const HealthHistogramSnapshot& h = t.domain.histograms[0].second;
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 49u);
  EXPECT_EQ(h.max, 40u);
  ASSERT_EQ(h.buckets.size(), static_cast<size_t>(HealthHistogram::kBuckets));
}

TEST(HealthIoTest, TornFinalLineIsToleratedMalformedMidLineIsNot) {
  std::ostringstream os;
  write_health_meta(os);
  write_health_sample(make_sample(), os);
  std::string text = os.str();

  // Chop mid-way through the final line: a live writer mid-append.
  std::string torn = text.substr(0, text.size() - 10);
  std::istringstream is1(torn);
  std::vector<std::string> errors;
  HealthSeries s1 = read_health_jsonl(is1, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(s1.have_meta);
  EXPECT_TRUE(s1.ticks.empty());

  // The same garbage mid-file (newline-terminated) is a real error.
  std::istringstream is2(torn + "\n" + text);
  errors.clear();
  HealthSeries s2 = read_health_jsonl(is2, errors);
  EXPECT_FALSE(errors.empty());
  EXPECT_EQ(s2.ticks.size(), 1u);
}

TEST(HealthIoTest, UnknownKindsAndTraceLinesAreSkipped) {
  std::ostringstream os;
  write_health_meta(os);
  os << R"({"kind":"meta","v":3,"n":4})" << "\n";  // a trace header
  write_health_sample(make_sample(), os);
  std::istringstream is(os.str());
  std::vector<std::string> errors;
  HealthSeries s = read_health_jsonl(is, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(s.ticks.size(), 1u);
}

TEST(HealthIoTest, TraceReaderSkipsHealthLines) {
  // The inverse tolerance: a trace reader pointed at a stream with embedded
  // health lines must ignore them rather than fail (sidecar lines are
  // non-protocol by design).
  std::ostringstream os;
  os << R"({"kind":"meta","version":1,"n":2})" << "\n";
  write_health_meta(os);
  write_health_sample(make_sample(), os);
  std::istringstream is(os.str());
  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(is, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_EQ(trace.n, 2);
  EXPECT_TRUE(trace.events.empty());
}

TEST(HealthIoTest, PrometheusExportNamesSeries) {
  std::ostringstream os;
  write_health_prometheus(make_sample(), os);
  std::string text = os.str();
  EXPECT_NE(text.find("koptlog_health_sched_pushes_total{dom=\"shard0\"} 12"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("koptlog_health_sched_inbox_pending{dom=\"shard0\"} -3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("koptlog_health_sched_drain_latency_us"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("_count{dom=\"shard0\"} 2"), std::string::npos);
}

TEST(HealthIoTest, WriteFileAtomicWritesAllOrNothing) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "koptlog_health_atomic_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string path = (dir / "snap.txt").string();
  std::string err;
  ASSERT_TRUE(write_file_atomic(
      path, [](std::ostream& os) { os << "hello\n"; }, err))
      << err;
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "hello");
  // No temp droppings next to the target.
  size_t entries = 0;
  for (auto it = fs::directory_iterator(dir); it != fs::directory_iterator();
       ++it)
    ++entries;
  EXPECT_EQ(entries, 1u);
  // Unwritable destination: false + err, and nothing created.
  EXPECT_FALSE(write_file_atomic(
      "/nonexistent-dir/snap.txt", [](std::ostream& os) { os << "x"; }, err));
  EXPECT_FALSE(err.empty());
  fs::remove_all(dir);
}

// --- sink + passivity ------------------------------------------------------

TEST(HealthTimeseriesSinkTest, WritesMetaThenSamplesAndReportsBadPaths) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "koptlog_health_sink_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string path = (dir / "health.jsonl").string();
  HealthRegistry reg;
  reg.domain("d")->counter("c")->inc(7);
  {
    HealthTimeseriesSink sink(reg, {.interval_us = 1000, .history = 16}, path);
    ASSERT_TRUE(sink.ok());
    sink.sampler().sample_now();
    sink.close();
    EXPECT_GE(sink.sampler().ticks(), 2u);  // manual + final-on-close
  }
  std::ifstream in(path);
  std::vector<std::string> errors;
  HealthSeries s = read_health_jsonl(in, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(s.have_meta);
  ASSERT_GE(s.ticks.size(), 2u);
  EXPECT_EQ(s.ticks.back().domain.counters[0].second, 7u);

  HealthTimeseriesSink bad(reg, {}, "/nonexistent-dir/health.jsonl");
  EXPECT_FALSE(bad.ok());
  fs::remove_all(dir);
}

TEST(HealthPassivityTest, InstrumentedDiskRunIsBitForBitIdentical) {
  // Recording passivity: attaching a health registry to the (deterministic)
  // sim execution with the real disk backend must not move a single event —
  // telemetry reads the run, never steers it.
  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() / "koptlog_health_passive_test";
  fs::remove_all(root);
  fs::create_directories(root);

  auto run = [&](const std::string& dir,
                 HealthRegistry* health) -> std::vector<ProtocolEvent> {
    ClusterConfig cfg;
    cfg.n = 3;
    cfg.seed = 19;
    cfg.protocol.k = 1;
    cfg.record_events = true;
    cfg.protocol.storage_backend.backend = "disk";
    cfg.protocol.storage_backend.dir = dir;
    cfg.protocol.storage_backend.health = health;
    Cluster cluster(cfg, make_uniform_app({.output_every = 4}));
    cluster.start();
    inject_uniform_load(cluster, 60, 1'000, 400'000, 5, 11);
    cluster.fail_at(200'000, 1);
    cluster.run_for(1'000'000);
    cluster.drain();
    return cluster.recording()->merged();
  };

  HealthRegistry health;
  std::vector<ProtocolEvent> plain = run((root / "a").string(), nullptr);
  std::vector<ProtocolEvent> instrumented = run((root / "b").string(), &health);

  ASSERT_EQ(plain.size(), instrumented.size());
  for (size_t i = 0; i < plain.size(); ++i)
    ASSERT_EQ(plain[i], instrumented[i]) << "event " << i;
  // And the telemetry actually observed the run it rode along on.
  bool saw_storage = false;
  for (const std::string& name : health.domain_names())
    saw_storage |= name.rfind("storage", 0) == 0;
  EXPECT_TRUE(saw_storage);
  fs::remove_all(root);
}

}  // namespace
}  // namespace koptlog
