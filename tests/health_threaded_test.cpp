// Health telemetry under real concurrency (ctest -L threaded, runs under
// ThreadSanitizer via scripts/sanitize_tests.sh): multi-producer cell
// updates racing the sampler's snapshots, the snapshot-merge conservation
// guarantee, a whole threaded-cluster run populating the shard/cluster
// domains, and the atomic Prometheus rewrite racing a reader.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "app/workloads.h"
#include "core/failure_injector.h"
#include "exec/threaded_cluster.h"
#include "obs/audit.h"
#include "obs/health/health.h"
#include "obs/health/health_io.h"
#include "obs/health/health_sampler.h"

namespace koptlog {
namespace {

TEST(HealthThreadedTest, ConcurrentWritersConserveExactTotals) {
  HealthRegistry reg;
  HealthDomain* dom = reg.domain("stress");
  HealthCounter* c = dom->counter("events");
  HealthGauge* g = dom->gauge("level");
  HealthHistogram* h = dom->histogram("lat");

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  std::atomic<bool> stop_sampling{false};
  // A racing reader: keeps snapshotting while writers hammer the cells.
  // Under TSan this is the test — relaxed atomics only, no locks on the
  // update path.
  std::thread sampler([&] {
    uint64_t prev = 0;
    while (!stop_sampling.load(std::memory_order_acquire)) {
      HealthSample s = reg.sample(0);
      uint64_t cv = s.domains[0].counters[0].second;
      EXPECT_GE(cv, prev);  // cumulative values never regress mid-run
      prev = cv;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->inc();
        g->add(t % 2 == 0 ? 1 : -1);
        h->observe(i % 1024);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_sampling.store(true, std::memory_order_release);
  sampler.join();

  // Exact conservation after the writers quiesce: nothing lost, nothing
  // double-counted, buckets sum to the count.
  const uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(c->value(), total);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), total);
  EXPECT_EQ(h->max(), 1023u);
  HealthSample s = reg.sample(0);
  const HealthHistogramSnapshot& snap = s.domains[0].histograms[0].second;
  uint64_t bucket_sum = 0;
  for (uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
  EXPECT_EQ(snap.count, total);
}

TEST(HealthThreadedTest, SamplerThreadConservesAgainstLiveWriters) {
  HealthRegistry reg;
  HealthCounter* c = reg.domain("d")->counter("c");
  HealthSampler sampler(reg, {.interval_us = 200, .history = 4096});
  sampler.start();
  constexpr int kThreads = 2;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& w : writers) w.join();
  sampler.stop();
  uint64_t prev = 0, delta_sum = 0;
  for (const HealthSample& s : sampler.history()) {
    uint64_t cv = s.domains[0].counters[0].second;
    ASSERT_GE(cv, prev);
    delta_sum += cv - prev;
    prev = cv;
  }
  // stop() took a final sample, so the tick deltas add up to exactly the
  // total the writers produced.
  EXPECT_EQ(delta_sum, kThreads * kPerThread);
}

TEST(HealthThreadedTest, ThreadedClusterPopulatesShardAndClusterDomains) {
  HealthRegistry health;
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 29;
  cfg.protocol.k = 2;
  cfg.record_events = true;
  ThreadedOptions opt;
  opt.shards = 2;
  opt.time_scale = 0.02;
  opt.health = &health;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  cluster.start();
  const SimTime load_end = 300'000;
  inject_uniform_load(cluster, 80, 1'000, load_end, /*ttl=*/6, 30);
  // A failure forces an announcement broadcast, so the cluster domain's
  // fan-out counter has something to count.
  apply_failure_plan(cluster, FailurePlan::random(Rng(29).fork("fail"), cfg.n,
                                                  1, load_end / 10, load_end));
  cluster.run_for(load_end);
  cluster.drain();
  cluster.shutdown();

  HealthSample s = health.sample(0);
  bool saw_shard0 = false, saw_cluster = false;
  uint64_t drain_count = 0, pushes = 0, fanout = 0;
  for (const auto& dom : s.domains) {
    if (dom.name == "shard0") saw_shard0 = true;
    if (dom.name == "cluster") saw_cluster = true;
    for (const auto& [name, hist] : dom.histograms) {
      if (name == "sched.drain_latency_us") drain_count += hist.count;
    }
    for (const auto& [name, v] : dom.counters) {
      if (name == "sched.pushes") pushes += v;
      if (name == "announce.fanout_batches") fanout += v;
      if (name == "outputs.committed") {
        EXPECT_EQ(v, cluster.outputs().size());
      }
    }
  }
  EXPECT_TRUE(saw_shard0);
  EXPECT_TRUE(saw_cluster);
  // Every executed event passed through the drain-latency histogram; the
  // load crossed shards, so mailbox pushes and fan-out batches are nonzero.
  EXPECT_GT(drain_count, 0u);
  EXPECT_GT(pushes, 0u);
  EXPECT_GT(fanout, 0u);
  EXPECT_GT(cluster.outputs().size(), 0u);
}

TEST(HealthThreadedTest, TrackingAndTreeHopCountersPopulate) {
  HealthRegistry health;
  ClusterConfig cfg;
  cfg.n = 8;
  cfg.seed = 31;
  cfg.protocol.k = 2;
  cfg.record_events = true;
  cfg.measure_tracking = true;
  ThreadedOptions opt;
  opt.shards = 4;
  opt.time_scale = 0.02;
  opt.announce_fanout = 2;
  opt.health = &health;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  cluster.start();
  const SimTime load_end = 300'000;
  inject_uniform_load(cluster, 80, 1'000, load_end, /*ttl=*/6, 32);
  apply_failure_plan(cluster, FailurePlan::random(Rng(31).fork("fail"), cfg.n,
                                                  1, load_end / 10, load_end));
  cluster.run_for(load_end);
  cluster.drain();
  cluster.shutdown();

  HealthSample s = health.sample(0);
  uint64_t track_bytes = 0, track_nnz = 0, tree_hops = 0;
  for (const auto& dom : s.domains) {
    if (dom.name != "cluster") continue;
    for (const auto& [name, v] : dom.counters) {
      if (name == "track.bytes_sent") track_bytes = v;
      if (name == "track.nnz") track_nnz = v;
      if (name == "announce.tree_hops") tree_hops = v;
    }
  }
  EXPECT_GT(track_bytes, 0u);
  EXPECT_GT(track_nnz, 0u);
  EXPECT_GT(tree_hops, 0u);
  // The health cells and the merged Stats bag count the same stream.
  EXPECT_EQ(track_bytes, static_cast<uint64_t>(
                             cluster.stats().counter("track.bytes_sent")));
  EXPECT_EQ(tree_hops, static_cast<uint64_t>(
                           cluster.stats().counter("announce.tree_hops")));
}

TEST(HealthThreadedTest, AtomicRewriteNeverShowsReadersATornFile) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "koptlog_health_rewrite_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "metrics.txt").string();

  // Writer: rewrites the file via tmp+rename with a header/trailer pair
  // whose round number must match. Reader: any file it manages to open
  // must be internally consistent — rename is the only publish.
  constexpr int kRounds = 400;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int r = 0; r < kRounds; ++r) {
      std::string err;
      bool ok = write_file_atomic(
          path,
          [r](std::ostream& os) {
            os << "round " << r << "\n";
            for (int i = 0; i < 64; ++i) os << "series_" << i << " " << r << "\n";
            os << "end " << r << "\n";
          },
          err);
      ASSERT_TRUE(ok) << err;
    }
    done.store(true, std::memory_order_release);
  });
  uint64_t reads = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::ifstream in(path);
    if (!in) continue;  // before the first rename lands
    std::string first, line, last;
    if (!std::getline(in, first)) continue;
    while (std::getline(in, line)) last = line;
    ++reads;
    ASSERT_EQ(first.rfind("round ", 0), 0u) << first;
    ASSERT_EQ(last.rfind("end ", 0), 0u) << "torn read: " << last;
    EXPECT_EQ(first.substr(6), last.substr(4));
  }
  writer.join();
  // The final published state is the last round, intact.
  std::ifstream in(path);
  std::string first, line, last;
  ASSERT_TRUE(std::getline(in, first));
  while (std::getline(in, line)) last = line;
  EXPECT_EQ(first, "round " + std::to_string(kRounds - 1));
  EXPECT_EQ(last, "end " + std::to_string(kRounds - 1));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  (void)reads;  // best-effort mid-run reads; scheduling may yield zero
  fs::remove_all(dir);
}

}  // namespace
}  // namespace koptlog
