#include <gtest/gtest.h>

#include <vector>

#include "core/interval_table.h"

namespace koptlog {
namespace {

TEST(EntrySetTest, InsertKeepsMaxPerIncarnation) {
  // Figure 3's Insert(se, (t,x')) routine.
  EntrySet se;
  se.insert(Entry{0, 4});
  se.insert(Entry{0, 2});
  se.insert(Entry{0, 7});
  se.insert(Entry{1, 3});
  EXPECT_EQ(se.size(), 2u);
  EXPECT_EQ(se.index_of(0), 7);
  EXPECT_EQ(se.index_of(1), 3);
  EXPECT_FALSE(se.index_of(2).has_value());
}

TEST(EntrySetTest, CoversIsPerIncarnation) {
  EntrySet se;
  se.insert(Entry{1, 5});
  EXPECT_TRUE(se.covers(Entry{1, 5}));
  EXPECT_TRUE(se.covers(Entry{1, 3}));
  EXPECT_FALSE(se.covers(Entry{1, 6}));
  // A watermark for incarnation 1 says nothing about incarnation 0.
  EXPECT_FALSE(se.covers(Entry{0, 2}));
}

TEST(EntrySetTest, OrphansDetectsRolledBackDependencies) {
  // iet entry (t, x0): every interval (s, x) with s <= t and x > x0 was
  // rolled back.
  EntrySet iet;
  iet.insert(Entry{0, 4});  // incarnation 0 ended at index 4
  EXPECT_TRUE(iet.orphans(Entry{0, 5}));
  EXPECT_FALSE(iet.orphans(Entry{0, 4}));
  EXPECT_FALSE(iet.orphans(Entry{0, 1}));
  // A dependency on a *newer* incarnation is untouched by this entry.
  EXPECT_FALSE(iet.orphans(Entry{1, 9}));
}

TEST(EntrySetTest, OrphansAcrossIncarnations) {
  EntrySet iet;
  iet.insert(Entry{3, 10});  // incarnation 3 ended at 10
  // If incarnation 3 ended at 10, incarnation 2 ended at or before 10, so a
  // dependency on (2, 12) is certainly rolled back.
  EXPECT_TRUE(iet.orphans(Entry{2, 12}));
  EXPECT_FALSE(iet.orphans(Entry{2, 9}));
  EXPECT_FALSE(iet.orphans(Entry{4, 12}));
}

TEST(EntrySetTest, OrphansUsesAnyQualifyingEntry) {
  EntrySet iet;
  iet.insert(Entry{1, 20});
  iet.insert(Entry{2, 5});
  // (1, 8): entry (2,5) has inc 2 >= 1 and 5 < 8 -> rolled back, even
  // though incarnation 1's own end (20) would not flag it.
  EXPECT_TRUE(iet.orphans(Entry{1, 8}));
}

TEST(EntrySetTest, MaxIncarnation) {
  EntrySet se;
  EXPECT_FALSE(se.max_incarnation().has_value());
  se.insert(Entry{2, 1});
  se.insert(Entry{0, 9});
  EXPECT_EQ(se.max_incarnation(), 2);
}

TEST(EntrySetTest, Formatting) {
  EntrySet se;
  se.insert(Entry{0, 4});
  se.insert(Entry{1, 5});
  EXPECT_EQ(se.str(), "{(0,4), (1,5)}");
}

TEST(EntrySetTest, CompactDominatedPreservesOrphans) {
  // (s0,x0) is dominated when some (s1>s0, x1<=x0) exists: every interval
  // the lower entry would flag as orphaned, the higher entry flags too.
  EntrySet iet;
  iet.insert(Entry{0, 9});  // dominated by (2,5)
  iet.insert(Entry{1, 7});  // dominated by (2,5)
  iet.insert(Entry{2, 5});
  iet.insert(Entry{3, 8});  // kept: larger index than (2,5)

  // Snapshot the orphan predicate over a grid before compaction.
  std::vector<Entry> probes;
  for (Incarnation t = 0; t <= 4; ++t) {
    for (Sii x = 0; x <= 12; ++x) probes.push_back(Entry{t, x});
  }
  std::vector<bool> before;
  for (const Entry& p : probes) before.push_back(iet.orphans(p));

  EXPECT_EQ(iet.compact_dominated(), 2u);
  EXPECT_EQ(iet.size(), 2u);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(iet.orphans(probes[i]), before[i]) << probes[i].str();
  }
  // Idempotent once the frontier is strictly decreasing.
  EXPECT_EQ(iet.compact_dominated(), 0u);
}

TEST(EntrySetTest, CompactDominatedRandomizedAgainstUncompacted) {
  // Property check: on random entry sets, compacting never changes any
  // orphans() answer. Uses a simple LCG so the test is self-contained.
  uint64_t s = 12345;
  auto rnd = [&s](uint64_t bound) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return (s >> 33) % bound;
  };
  for (int trial = 0; trial < 50; ++trial) {
    EntrySet full;
    for (int i = 0; i < 8; ++i) {
      full.insert(Entry{static_cast<Incarnation>(rnd(5)),
                        static_cast<Sii>(rnd(10))});
    }
    EntrySet compacted = full;
    size_t removed = compacted.compact_dominated();
    EXPECT_EQ(compacted.size() + removed, full.size());
    for (Incarnation t = 0; t < 6; ++t) {
      for (Sii x = 0; x < 12; ++x) {
        Entry p{t, x};
        ASSERT_EQ(compacted.orphans(p), full.orphans(p))
            << "trial " << trial << " probe " << p.str();
      }
    }
  }
}

TEST(IntervalTableTest, PerProcessSetsAndTotal) {
  IntervalTable t(3);
  EXPECT_EQ(t.size(), 3);
  t.insert(0, Entry{0, 1});
  t.insert(0, Entry{1, 2});
  t.insert(2, Entry{0, 5});
  EXPECT_EQ(t.total_entries(), 3u);
  EXPECT_TRUE(t.of(0).covers(Entry{1, 2}));
  EXPECT_TRUE(t.of(2).covers(Entry{0, 4}));
  EXPECT_TRUE(t.of(1).empty());
}

TEST(IntervalTableTest, ClearEmptiesAllSets) {
  IntervalTable t(2);
  t.insert(0, Entry{0, 1});
  t.insert(1, Entry{0, 1});
  t.clear();
  EXPECT_EQ(t.total_entries(), 0u);
}

// Corollary 1 as used at P4 in Figure 1: announcement r1 = (0,4)_1 both
// ends incarnation 0 (iet) and certifies (0,4)_1 stable (log).
TEST(IntervalTableTest, AnnouncementServesBothTables) {
  IntervalTable iet(6), log(6);
  Entry r1{0, 4};
  iet.insert(1, r1);
  log.insert(1, r1);
  // P3 depended on (0,5)_1 -> orphan.
  EXPECT_TRUE(iet.of(1).orphans(Entry{0, 5}));
  // P4 depended on (0,4)_1 -> not orphan, and the entry may be omitted.
  EXPECT_FALSE(iet.of(1).orphans(Entry{0, 4}));
  EXPECT_TRUE(log.of(1).covers(Entry{0, 4}));
}

}  // namespace
}  // namespace koptlog
